package larpredictor_test

import (
	"math"
	"math/rand"
	"testing"

	larpredictor "github.com/acis-lab/larpredictor"
)

func TestFacadeFullPool(t *testing.T) {
	pool := larpredictor.FullPool(6)
	if pool.Size() != 10 {
		t.Fatalf("full pool size = %d, want 10", pool.Size())
	}
	names := pool.Names()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"MA", "ARIMA", "LAST", "AR", "SW_AVG"} {
		if !found[want] {
			t.Errorf("full pool missing %s (have %v)", want, names)
		}
	}
	cfg := larpredictor.DefaultConfig(pool.MaxOrder())
	cfg.Pool = pool
	p, err := larpredictor.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(workload(t)); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeVoteStrategies(t *testing.T) {
	vals := workload(t)
	for _, v := range []larpredictor.VoteStrategy{
		larpredictor.MajorityVote, larpredictor.DistanceWeightedVote, larpredictor.ProbabilityVote,
	} {
		cfg := larpredictor.DefaultConfig(5)
		cfg.Vote = v
		p, err := larpredictor.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Train(vals[:144]); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Forecast(vals[139:144]); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}

func TestFacadeMultiResource(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	mem := make([]float64, n)
	cpu := make([]float64, n)
	for i := 1; i < n; i++ {
		mem[i] = 0.8*mem[i-1] + rng.NormFloat64()
		cpu[i] = 0.4*cpu[i-1] + 0.6*mem[i-1] + 0.5*rng.NormFloat64()
	}
	rho, err := larpredictor.CrossCorrelation(cpu, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.3 {
		t.Fatalf("cross-correlation = %g on coupled series", rho)
	}
	m := larpredictor.NewMultiResource(3, 3)
	if err := m.Fit(cpu[:n/2], mem[:n/2]); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(pred) {
		t.Fatal("NaN prediction")
	}
	if m.CrossGain() <= 0 {
		t.Error("no cross gain on coupled series")
	}
}

func TestFacadeDiagnostics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 3000)
	for i := 1; i < len(v); i++ {
		v[i] = 0.7*v[i-1] + rng.NormFloat64()
	}
	acf, err := larpredictor.ACF(v, 2)
	if err != nil || acf[0] != 1 {
		t.Fatalf("ACF = %v, err %v", acf, err)
	}
	pacf, err := larpredictor.PACF(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pacf[0]-0.7) > 0.1 {
		t.Errorf("PACF[1] = %g, want ~0.7", pacf[0])
	}
	_, autocorr, err := larpredictor.LjungBox(v, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !autocorr {
		t.Error("AR(1) process not flagged as autocorrelated")
	}
}
