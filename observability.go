package larpredictor

import (
	"net/http"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/obs"
)

// Observability surface, re-exported from the internal obs package. A
// Registry is a dependency-free metrics registry (atomic counters, gauges,
// and fixed-bucket latency histograms) that renders in the Prometheus text
// exposition format; a Tracer receives one Span per pipeline stage. Attach
// either to a predictor with WithMetrics / WithTracer. Everything is
// nil-safe: a nil Registry or Tracer disables instrumentation at zero cost.
type (
	// Registry registers and renders metric instruments; see NewRegistry.
	Registry = obs.Registry
	// Counter is a monotonically increasing counter.
	Counter = obs.Counter
	// Gauge is a settable value.
	Gauge = obs.Gauge
	// Histogram is a fixed-bucket latency/size distribution.
	Histogram = obs.Histogram
	// Tracer starts one Span per pipeline stage; implement it to hook
	// spans into an external tracing system.
	Tracer = obs.Tracer
	// Span is one in-flight stage execution; End it exactly once.
	Span = obs.Span
	// Stage names a pipeline stage in a Span.
	Stage = obs.Stage
	// SpanRecorder collects spans in memory for tests (obs.Recorder).
	SpanRecorder = obs.Recorder
)

// Pipeline stages reported to Tracers.
const (
	// StageNormalize is z-score normalization of the prediction window.
	StageNormalize = obs.StageNormalize
	// StagePCAProject is the PCA projection to feature space.
	StagePCAProject = obs.StagePCAProject
	// StageKNNClassify is the k-NN best-expert classification.
	StageKNNClassify = obs.StageKNNClassify
	// StageExpertForecast is the selected expert's forecast.
	StageExpertForecast = obs.StageExpertForecast
	// StageQAAudit is the QA scoring of a pending forecast.
	StageQAAudit = obs.StageQAAudit
	// StageTrain is a full (re)train: labeling, PCA fit, k-NN indexing.
	StageTrain = obs.StageTrain
	// StageFallbackForecast is a degraded-mode forecast.
	StageFallbackForecast = obs.StageFallbackForecast
)

// NewRegistry returns an empty metrics registry. Derive labeled scopes with
// Registry.With (e.g. one per pipeline), pass it to predictors via
// WithMetrics, and serve it with MetricsHandler or Registry.WriteProm.
func NewRegistry() *Registry {
	return obs.NewRegistry()
}

// WithMetrics attaches a metrics registry (or a labeled scope of one): the
// predictor registers its instrument families on it — forecast counters by
// source, classifier decisions by expert, health transitions, retrain and
// breaker state, forecast/train latency histograms — and updates them as it
// runs. A nil registry leaves the predictor uninstrumented at zero cost.
func WithMetrics(r *Registry) Option { return core.WithMetrics(r) }

// WithTracer attaches a per-stage tracer: every pipeline stage is wrapped
// in a span. Combine with NewStageTimer for registry-fed stage latency, or
// implement Tracer to bridge to an external system. A nil tracer disables
// tracing at zero cost.
func WithTracer(t Tracer) Option { return core.WithTracer(t) }

// NewStageTimer returns a Tracer that records every span's duration in a
// larpredictor_stage_seconds histogram (and failures in
// larpredictor_stage_errors_total), labeled by stage, on the given
// registry. A nil registry returns a nil Tracer.
func NewStageTimer(r *Registry) Tracer {
	return obs.NewStageTimer(r)
}

// NewSpanRecorder returns an in-memory Tracer for tests.
func NewSpanRecorder() *SpanRecorder {
	return obs.NewRecorder()
}

// MetricsHandler serves a registry in the Prometheus text exposition
// format (version 0.0.4); mount it at /metrics.
func MetricsHandler(r *Registry) http.Handler {
	return obs.Handler(r)
}
