package larpredictor_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// TestExamplesBuild compiles every directory under examples/ as a standalone
// binary. Unlike a bare `go build ./...`, this asserts each example is a
// complete, runnable main package — a new example directory is covered the
// moment it lands, and one that rots (or silently stops being package main)
// fails by name.
func TestExamplesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example builds in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not on PATH")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	built := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		built++
		dir := e.Name()
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			out := filepath.Join(t.TempDir(), dir)
			if runtime.GOOS == "windows" {
				out += ".exe"
			}
			cmd := exec.Command(goBin, "build", "-o", out, "./"+filepath.Join("examples", dir))
			if msg, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("go build examples/%s: %v\n%s", dir, err, msg)
			}
			if _, err := os.Stat(out); err != nil {
				t.Fatalf("examples/%s built but produced no binary (not package main?): %v", dir, err)
			}
		})
	}
	if built == 0 {
		t.Fatal("no example directories found under examples/")
	}
}
