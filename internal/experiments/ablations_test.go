package experiments

import (
	"strings"
	"testing"
)

func TestAblationsStructure(t *testing.T) {
	res, err := Ablations(Options{Seed: 2007, Folds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("sweeps = %d, want 5", len(res))
	}
	wantDims := []string{"PCA components", "k-NN neighbors", "prediction order", "expert pool", "vote strategy"}
	for i, r := range res {
		if !strings.Contains(r.Dimension, wantDims[i]) {
			t.Errorf("sweep %d dimension = %q", i, r.Dimension)
		}
		if len(r.Rows) < 3 {
			t.Errorf("%s: only %d rows", r.Dimension, len(r.Rows))
		}
		for _, row := range r.Rows {
			if row.LAR <= 0 {
				t.Errorf("%s/%s: MSE %g", r.Dimension, row.Name, row.LAR)
			}
			if row.Accuracy < 0 || row.Accuracy > 1 {
				t.Errorf("%s/%s: accuracy %g", r.Dimension, row.Name, row.Accuracy)
			}
		}
	}
	out := RenderAblations(res)
	for _, want := range []string{"n=2", "k=3", "m=16", "paper3", "majority"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
