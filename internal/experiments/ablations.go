package experiments

import (
	"fmt"
	"strings"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/evaluation"
	"github.com/acis-lab/larpredictor/internal/knn"
	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// AblationRow is one configuration's cross-validated outcome on the
// ablation trace.
type AblationRow struct {
	// Name labels the configuration ("k=3", "pool=extended8", ...).
	Name string
	// LAR is the configuration's cross-validated MSE; Accuracy its
	// best-expert forecasting accuracy.
	LAR      float64
	Accuracy float64
}

// AblationResult is one design-choice sweep.
type AblationResult struct {
	// Dimension names the swept knob ("PCA components", "k", ...).
	Dimension string
	// Trace is the trace the sweep ran on.
	Trace string
	Rows  []AblationRow
}

// Ablations sweeps the design choices DESIGN.md calls out — PCA dimension,
// neighbor count k, window size m, pool composition, and vote strategy — on
// a strongly regime-switching trace, quantifying how far the paper's fixed
// choices (n = 2, k = 3, m = 5, majority vote, 3-expert pool) are from the
// alternatives.
func Ablations(opts Options) ([]*AblationResult, error) {
	ts := vmtrace.StandardTraceSet(opts.Seed)
	s, err := ts.Get(vmtrace.VM4, vmtrace.NIC1RX)
	if err != nil {
		return nil, err
	}

	evalCfg := func(name string, cfg core.Config) (AblationRow, error) {
		o := evaluation.DefaultOptions(cfg, opts.Seed)
		o.Folds = opts.Folds
		r, err := evaluation.EvaluateTrace(s, o)
		if err != nil {
			return AblationRow{}, fmt.Errorf("%s: %w", name, err)
		}
		return AblationRow{Name: name, LAR: r.LAR, Accuracy: r.LARAccuracy}, nil
	}

	var out []*AblationResult

	// PCA dimension.
	pcaSweep := &AblationResult{Dimension: "PCA components (paper: n=2)", Trace: s.Name}
	for _, n := range []int{1, 2, 3, 4} {
		cfg := core.DefaultConfig(5)
		cfg.PCAComponents = n
		row, err := evalCfg(fmt.Sprintf("n=%d", n), cfg)
		if err != nil {
			return nil, err
		}
		pcaSweep.Rows = append(pcaSweep.Rows, row)
	}
	{
		cfg := core.DefaultConfig(5)
		cfg.DisablePCA = true
		row, err := evalCfg("raw windows (no PCA)", cfg)
		if err != nil {
			return nil, err
		}
		pcaSweep.Rows = append(pcaSweep.Rows, row)
	}
	out = append(out, pcaSweep)

	// Neighbor count.
	kSweep := &AblationResult{Dimension: "k-NN neighbors (paper: k=3)", Trace: s.Name}
	for _, k := range []int{1, 3, 5, 7, 9} {
		cfg := core.DefaultConfig(5)
		cfg.K = k
		row, err := evalCfg(fmt.Sprintf("k=%d", k), cfg)
		if err != nil {
			return nil, err
		}
		kSweep.Rows = append(kSweep.Rows, row)
	}
	out = append(out, kSweep)

	// Window size.
	mSweep := &AblationResult{Dimension: "prediction order m (paper: 5/16)", Trace: s.Name}
	for _, m := range []int{4, 5, 8, 16, 32} {
		row, err := evalCfg(fmt.Sprintf("m=%d", m), core.DefaultConfig(m))
		if err != nil {
			return nil, err
		}
		mSweep.Rows = append(mSweep.Rows, row)
	}
	out = append(out, mSweep)

	// Pool composition.
	poolSweep := &AblationResult{Dimension: "expert pool (paper: 3 experts)", Trace: s.Name}
	pools := []struct {
		name string
		pool *predictors.Pool
	}{
		{"paper3 {LAST,AR,SW_AVG}", predictors.PaperPool(5)},
		{"extended8", predictors.ExtendedPool(5)},
		{"full10 (+MA,ARIMA)", predictors.FullPool(6)},
	}
	for _, p := range pools {
		cfg := core.DefaultConfig(p.pool.MaxOrder())
		cfg.Pool = p.pool
		row, err := evalCfg(p.name, cfg)
		if err != nil {
			return nil, err
		}
		poolSweep.Rows = append(poolSweep.Rows, row)
	}
	out = append(out, poolSweep)

	// Vote strategy.
	voteSweep := &AblationResult{Dimension: "vote strategy (paper: majority)", Trace: s.Name}
	for _, v := range []knn.VoteStrategy{knn.MajorityVote, knn.DistanceWeightedVote, knn.ProbabilityVote} {
		cfg := core.DefaultConfig(5)
		cfg.Vote = v
		row, err := evalCfg(v.String(), cfg)
		if err != nil {
			return nil, err
		}
		voteSweep.Rows = append(voteSweep.Rows, row)
	}
	out = append(out, voteSweep)

	return out, nil
}

// RenderAblations prints every sweep as a table.
func RenderAblations(results []*AblationResult) string {
	var b strings.Builder
	for i, r := range results {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "Ablation: %s — trace %s\n", r.Dimension, r.Trace)
		tb := evaluation.NewTable("Configuration", "LAR MSE", "Accuracy")
		for _, row := range r.Rows {
			tb.AddRow(row.Name, evaluation.FormatMSE(row.LAR), evaluation.FormatPct(row.Accuracy))
		}
		b.WriteString(tb.String())
	}
	return b.String()
}
