package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestTournamentCompare pins the acceptance criterion for the fallback
// ladder's tournament tier: across the standard trace set its mean MSE must
// stay within 5% of the k-NN LARPredictor it stands in for, while costing
// O(1) per selection and never retraining.
func TestTournamentCompare(t *testing.T) {
	res, err := TournamentCompare(Options{Seed: 2007, Folds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no comparison rows")
	}
	live := 0
	for _, row := range res.Rows {
		if row.Degenerate {
			continue
		}
		live++
		if math.IsNaN(row.Tournament) || row.Tournament < 0 {
			t.Errorf("%s_%s: tournament MSE = %v", row.VM, row.Metric, row.Tournament)
		}
	}
	if live == 0 {
		t.Fatal("every trace degenerate")
	}
	if md := res.MeanDelta(); math.IsNaN(md) || md > 5 {
		t.Errorf("mean tournament MSE delta vs Knn-LARP = %+.1f%%, want <= +5%%", md)
	}
	out := res.Render()
	for _, want := range []string{"Knn-LARP", "Tournament", "Cum.MSE", "mean Δ%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}
