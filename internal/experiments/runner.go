package experiments

import (
	"fmt"
	"io"
)

// RunAll regenerates every table and figure in order and writes the rendered
// results to w — the backing driver for cmd/experiments and for
// EXPERIMENTS.md.
func RunAll(opts Options, w io.Writer) error {
	fmt.Fprintf(w, "LARPredictor experiment suite (seed=%d, folds=%d)\n\n", opts.Seed, opts.Folds)

	fig4, err := Figure4(opts)
	if err != nil {
		return fmt.Errorf("figure 4: %w", err)
	}
	fmt.Fprintf(w, "== Figure 4 ==\n%s\n", fig4.Render())

	fig5, err := Figure5(opts)
	if err != nil {
		return fmt.Errorf("figure 5: %w", err)
	}
	fmt.Fprintf(w, "== Figure 5 ==\n%s\n", fig5.Render())

	t2, err := Table2(opts)
	if err != nil {
		return fmt.Errorf("table 2: %w", err)
	}
	fmt.Fprintf(w, "== Table 2 ==\n%s\n", t2.Render())

	t3, err := Table3(opts)
	if err != nil {
		return fmt.Errorf("table 3: %w", err)
	}
	fmt.Fprintf(w, "== Table 3 ==\n%s\n", t3.Render())

	fig6, err := Figure6(opts)
	if err != nil {
		return fmt.Errorf("figure 6: %w", err)
	}
	fmt.Fprintf(w, "== Figure 6 ==\n%s\n", fig6.Render())

	tc, err := TournamentCompare(opts)
	if err != nil {
		return fmt.Errorf("tournament: %w", err)
	}
	fmt.Fprintf(w, "== Tournament ==\n%s\n", tc.Render())

	head, err := Headline(opts)
	if err != nil {
		return fmt.Errorf("headline: %w", err)
	}
	fmt.Fprintf(w, "== Headline ==\n%s", head.Render())
	return nil
}
