package experiments

import (
	"fmt"
	"math"

	"github.com/acis-lab/larpredictor/internal/evaluation"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// TournamentRow is one trace's selector comparison: the oracle, the k-NN
// LARPredictor, the tournament meta-selector, and the NWS cumulative-MSE
// baseline on identical folds. Delta is the tournament's MSE relative to
// the k-NN LARPredictor, in percent (negative means the tournament won).
type TournamentRow struct {
	VM         vmtrace.VMID
	Metric     vmtrace.Metric
	PLAR       float64
	LAR        float64
	Tournament float64
	Cum        float64
	Delta      float64
	Degenerate bool
}

// TournamentResult compares the tournament meta-selector against the
// learned and baseline selectors across every (VM, metric) trace.
type TournamentResult struct {
	Rows []TournamentRow
}

// TournamentCompare cross-validates every trace in the standard set and
// scores the tournament meta-selector on the same folds as the k-NN
// LARPredictor, the perfect-selection oracle, and the NWS cumulative-MSE
// selector. It answers the sizing question for the fallback ladder's
// tournament tier: how much accuracy does the O(1), never-retrained
// selector give up against the trained classifier it stands in for?
func TournamentCompare(opts Options) (*TournamentResult, error) {
	ts := vmtrace.StandardTraceSet(opts.Seed)
	evals, err := evaluateAll(ts, opts)
	if err != nil {
		return nil, err
	}
	res := &TournamentResult{}
	for _, ev := range evals {
		row := TournamentRow{VM: ev.vm, Metric: ev.metric, Degenerate: ev.degenerate}
		if ev.degenerate {
			row.PLAR, row.LAR, row.Tournament, row.Cum, row.Delta =
				math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		} else {
			row.PLAR = ev.res.PLAR
			row.LAR = ev.res.LAR
			row.Tournament = ev.res.Tournament
			row.Cum = ev.res.NWSCum
			row.Delta = math.NaN()
			if ev.res.LAR > 0 {
				row.Delta = 100 * (ev.res.Tournament - ev.res.LAR) / ev.res.LAR
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// MeanDelta returns the mean tournament-vs-LARPredictor MSE delta in
// percent over the non-degenerate traces.
func (r *TournamentResult) MeanDelta() float64 {
	sum, n := 0.0, 0
	for _, row := range r.Rows {
		if row.Degenerate || math.IsNaN(row.Delta) {
			continue
		}
		sum += row.Delta
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Render prints the comparison table.
func (r *TournamentResult) Render() string {
	tb := evaluation.NewTable("Trace", "P-LARP", "Knn-LARP", "Tournament", "Cum.MSE", "Δ% vs Knn")
	cell := func(v float64) string {
		if math.IsNaN(v) {
			return "NaN"
		}
		return evaluation.FormatMSE(v)
	}
	for _, row := range r.Rows {
		delta := "NaN"
		if !math.IsNaN(row.Delta) {
			delta = fmt.Sprintf("%+.1f", row.Delta)
		}
		tb.AddRow(fmt.Sprintf("%s_%s", row.VM, row.Metric),
			cell(row.PLAR), cell(row.LAR), cell(row.Tournament), cell(row.Cum), delta)
	}
	return fmt.Sprintf("Tournament meta-selector vs learned and baseline selectors\n%s"+
		"mean Δ%% vs Knn-LARP over non-degenerate traces: %+.1f%%\n",
		tb.String(), r.MeanDelta())
}
