package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// fastOpts keeps the test-suite experiment runs affordable.
func fastOpts() Options { return Options{Seed: 2007, Folds: 2} }

func TestConfigFor(t *testing.T) {
	if ConfigFor(vmtrace.VM1).WindowSize != 16 {
		t.Error("VM1 should use the 16-sample window (Table 2 caption)")
	}
	if ConfigFor(vmtrace.VM2).WindowSize != 5 {
		t.Error("24-hour traces should use the 5-sample window")
	}
}

func TestEvalOptionsSeedsDiffer(t *testing.T) {
	a := evalOptions(fastOpts(), vmtrace.VM2, vmtrace.CPUUsedSec)
	b := evalOptions(fastOpts(), vmtrace.VM3, vmtrace.CPUUsedSec)
	c := evalOptions(fastOpts(), vmtrace.VM2, vmtrace.CPUReady)
	if a.Seed == b.Seed || a.Seed == c.Seed {
		t.Error("per-trace evaluation seeds collide")
	}
	// And they are stable.
	if a.Seed != evalOptions(fastOpts(), vmtrace.VM2, vmtrace.CPUUsedSec).Seed {
		t.Error("evaluation seeds are not reproducible")
	}
}

func TestFigure4Structure(t *testing.T) {
	r, err := Figure4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace != "VM2_load15" {
		t.Errorf("trace = %q", r.Trace)
	}
	if len(r.Classes) != 3 || r.Classes[0] != "LAST" || r.Classes[1] != "AR" || r.Classes[2] != "SW_AVG" {
		t.Errorf("classes = %v", r.Classes)
	}
	n := len(r.ObservedBest)
	if n == 0 || len(r.LARSelected) != n || len(r.NWSSelected) != n {
		t.Fatalf("timeline lengths %d/%d/%d", n, len(r.LARSelected), len(r.NWSSelected))
	}
	for i := 0; i < n; i++ {
		for _, v := range []int{r.ObservedBest[i], r.LARSelected[i], r.NWSSelected[i]} {
			if v < 0 || v >= len(r.Classes) {
				t.Fatalf("class index %d out of range at step %d", v, i)
			}
		}
	}
	// Accuracy fields must agree with the timelines.
	correct := 0
	for i := range r.LARSelected {
		if r.LARSelected[i] == r.ObservedBest[i] {
			correct++
		}
	}
	if got := float64(correct) / float64(n); math.Abs(got-r.LARAccuracy) > 1e-12 {
		t.Errorf("LARAccuracy %g inconsistent with timeline %g", r.LARAccuracy, got)
	}
	out := r.Render()
	for _, want := range []string{"VM2_load15", "observed best", "LARPredictor", "NWS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure5Structure(t *testing.T) {
	r, err := Figure5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace != "VM2_PktIn" {
		t.Errorf("trace = %q", r.Trace)
	}
	if len(r.ObservedBest) == 0 {
		t.Error("empty timeline")
	}
}

func TestTable2Invariants(t *testing.T) {
	r, err := Table2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.VM != vmtrace.VM1 {
		t.Errorf("VM = %s", r.VM)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Degenerate {
			continue
		}
		// The oracle dominates every column.
		for _, v := range []float64{row.LAR, row.LAST, row.AR, row.SW} {
			if row.PLAR > v+1e-9 {
				t.Errorf("%s: P-LAR %g above column %g", row.Metric, row.PLAR, v)
			}
			if math.IsNaN(v) || v < 0 {
				t.Errorf("%s: bad MSE %g", row.Metric, v)
			}
		}
	}
	out := r.Render()
	if !strings.Contains(out, "CPU_usedsec") || !strings.Contains(out, "P-LAR") {
		t.Error("render missing expected content")
	}
	// Exactly one star per non-degenerate row.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "NaN") || strings.Contains(line, "P-LAR") || line == "" {
			continue
		}
		if n := strings.Count(line, "*"); strings.Contains(line, ".") && n != 1 {
			t.Errorf("row %q has %d stars, want 1", line, n)
		}
	}
}

func TestTable3Structure(t *testing.T) {
	r, err := Table3(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Metrics) != 12 || len(r.VMs) != 5 || len(r.Cells) != 12 {
		t.Fatalf("shape %dx%d cells=%d", len(r.Metrics), len(r.VMs), len(r.Cells))
	}
	// The 8 idle cells must be NaN, in the same positions as the paper.
	nan := 0
	for mi, m := range r.Metrics {
		for vi, vm := range r.VMs {
			c := r.Cells[mi][vi]
			if c.NaN {
				nan++
				continue
			}
			switch c.Best {
			case "LAST", "AR", "SW_AVG":
			default:
				t.Errorf("%s/%s: unexpected best %q", vm, m, c.Best)
			}
		}
	}
	if nan != 8 {
		t.Errorf("NaN cells = %d, want 8", nan)
	}
	sf := r.StarFraction()
	if sf < 0 || sf > 1 {
		t.Errorf("star fraction %g", sf)
	}
	wins := r.WinCounts()
	totalWins := 0
	for _, n := range wins {
		totalWins += n
	}
	if totalWins != 52 {
		t.Errorf("win counts sum to %d, want 52", totalWins)
	}
	// AR must be the plurality winner (paper: "the AR model performed
	// better than the LAST and the SW_AVG models").
	if wins["AR"] < wins["LAST"] || wins["AR"] < wins["SW_AVG"] {
		t.Errorf("AR is not the plurality best expert: %v", wins)
	}
	out := r.Render()
	if !strings.Contains(out, "NaN") || !strings.Contains(out, "VM5") {
		t.Error("render missing expected content")
	}
}

func TestFigure6Structure(t *testing.T) {
	r, err := Figure6(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.VM != vmtrace.VM4 {
		t.Errorf("VM = %s", r.VM)
	}
	if len(r.Metrics) != 12 {
		t.Fatalf("metrics = %d", len(r.Metrics))
	}
	for i := range r.Metrics {
		if math.IsNaN(r.LAR[i]) {
			continue
		}
		// Oracle dominates all selectors.
		for _, v := range []float64{r.LAR[i], r.Cum[i], r.WCum[i]} {
			if r.PLAR[i] > v+1e-9 {
				t.Errorf("%s: P-LARP %g above selector %g", r.Metrics[i], r.PLAR[i], v)
			}
		}
	}
	if !strings.Contains(r.Render(), "W-Cum.MSE") {
		t.Error("render missing W-Cum.MSE column")
	}
}

func TestHeadlineShape(t *testing.T) {
	r, err := Headline(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Traces != 52 || r.Degenerate != 8 {
		t.Fatalf("traces=%d degenerate=%d, want 52/8", r.Traces, r.Degenerate)
	}
	for _, v := range []float64{r.MeanLARAccuracy, r.MeanNWSAccuracy, r.LARBeatsBestExpert, r.LARBeatsNWS} {
		if v < 0 || v > 1 {
			t.Fatalf("fraction out of range: %+v", r)
		}
	}
	// The paper's central claim: the learned selector forecasts the best
	// expert far more accurately than cumulative-MSE selection.
	if r.MeanLARAccuracy <= r.MeanNWSAccuracy {
		t.Errorf("LAR accuracy %.3f not above NWS %.3f", r.MeanLARAccuracy, r.MeanNWSAccuracy)
	}
	// And LAR accuracy beats random selection over 3 experts.
	if r.MeanLARAccuracy < 1.0/3 {
		t.Errorf("LAR accuracy %.3f below random", r.MeanLARAccuracy)
	}
	if !strings.Contains(r.Render(), "paper: 44.23%") {
		t.Error("render missing paper reference numbers")
	}
}

func TestRunAllWritesEverySection(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	var sb strings.Builder
	if err := RunAll(fastOpts(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"== Figure 4 ==", "== Figure 5 ==", "== Table 2 ==",
		"== Table 3 ==", "== Figure 6 ==", "== Headline ==",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestIsDegenerateHelper(t *testing.T) {
	if isDegenerate(nil) {
		t.Error("nil is not degenerate")
	}
}
