package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/evaluation"
	"github.com/acis-lab/larpredictor/internal/nws"
	"github.com/acis-lab/larpredictor/internal/timeseries"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// SelectionTimeline reproduces Figures 4 and 5: for each test step, the
// observed best predictor, the LARPredictor's k-NN forecast of it, and the
// NWS cumulative-MSE selection, using the paper's class numbering
// (1 - LAST, 2 - AR, 3 - SW_AVG).
type SelectionTimeline struct {
	// Trace names the series ("VM2_load15").
	Trace string
	// Classes[i] is the display name of class i+1.
	Classes []string
	// ObservedBest, LARSelected, NWSSelected are aligned per-step class
	// indexes (0-based into Classes).
	ObservedBest []int
	LARSelected  []int
	NWSSelected  []int
	// LARAccuracy and NWSAccuracy are the fractions of steps where each
	// selector matched the observed best.
	LARAccuracy float64
	NWSAccuracy float64
}

// selectionTimeline runs the Figure-4/5 protocol on one trace: train on the
// first half, compare selections on the second half.
func selectionTimeline(s *timeseries.Series, cfg core.Config) (*SelectionTimeline, error) {
	split, err := timeseries.SplitFraction(s.Values, 0.5)
	if err != nil {
		return nil, err
	}
	lar, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := lar.Train(split.Train); err != nil {
		return nil, err
	}
	ev, err := lar.Evaluate(split.Test)
	if err != nil {
		return nil, err
	}

	// NWS selection over the same normalized frames, warmed on the train half.
	norm := lar.Normalizer()
	trainFrames, err := timeseries.FrameSeries(norm.Apply(split.Train), cfg.WindowSize)
	if err != nil {
		return nil, err
	}
	testFrames, err := timeseries.FrameSeries(norm.Apply(split.Test), cfg.WindowSize)
	if err != nil {
		return nil, err
	}
	sel, err := nws.NewCumulativeMSE(lar.Pool())
	if err != nil {
		return nil, err
	}
	if _, err := sel.Run(trainFrames); err != nil {
		return nil, err
	}
	nwsRes, err := sel.Run(testFrames)
	if err != nil {
		return nil, err
	}

	correct := 0
	for i, c := range nwsRes.Selected {
		if c == ev.ObservedBest[i] {
			correct++
		}
	}
	nwsAcc := 0.0
	if len(nwsRes.Selected) > 0 {
		nwsAcc = float64(correct) / float64(len(nwsRes.Selected))
	}
	return &SelectionTimeline{
		Trace:        s.Name,
		Classes:      lar.Pool().Names(),
		ObservedBest: ev.ObservedBest,
		LARSelected:  ev.Selected,
		NWSSelected:  nwsRes.Selected,
		LARAccuracy:  ev.ForecastAccuracy,
		NWSAccuracy:  nwsAcc,
	}, nil
}

// Figure4 reproduces the paper's Figure 4: predictor selection for trace
// VM2_load15 (CPU fifteen-minute load average, 12 hours at 5-minute
// sampling).
func Figure4(opts Options) (*SelectionTimeline, error) {
	return selectionTimeline(vmtrace.Load15(opts.Seed), core.DefaultConfig(5))
}

// Figure5 reproduces the paper's Figure 5: predictor selection for trace
// VM2_PktIn (network packets received per second).
func Figure5(opts Options) (*SelectionTimeline, error) {
	return selectionTimeline(vmtrace.PktIn(opts.Seed), core.DefaultConfig(5))
}

// Render draws the three selection timelines as character rows (one column
// per step, the class digit 1..P per the paper's axis) plus the accuracy
// summary.
func (st *SelectionTimeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Best predictor selection for trace %s\n", st.Trace)
	fmt.Fprintf(&b, "Predictor class: ")
	for i, c := range st.Classes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d - %s", i+1, c)
	}
	b.WriteByte('\n')
	rows := []struct {
		label string
		data  []int
	}{
		{"observed best ", st.ObservedBest},
		{"LARPredictor  ", st.LARSelected},
		{"NWS (Cum.MSE) ", st.NWSSelected},
	}
	for _, r := range rows {
		b.WriteString(r.label)
		for _, c := range r.data {
			fmt.Fprintf(&b, "%d", c+1)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "forecast accuracy: LAR %s, NWS %s\n",
		evaluation.FormatPct(st.LARAccuracy), evaluation.FormatPct(st.NWSAccuracy))
	return b.String()
}

// Figure6Result reproduces the paper's Figure 6: per-metric MSE on VM4 for
// the perfect LARPredictor (P-LARP), the k-NN LARPredictor (Knn-LARP), the
// NWS cumulative selector (Cum.MSE), and the window-2 selector (W-Cum.MSE).
// Degenerate metrics hold NaN.
type Figure6Result struct {
	VM      vmtrace.VMID
	Metrics []vmtrace.Metric
	PLAR    []float64
	LAR     []float64
	Cum     []float64
	WCum    []float64
}

// Figure6 runs the comparison for VM4 (the paper's example VM).
func Figure6(opts Options) (*Figure6Result, error) {
	ts := vmtrace.StandardTraceSet(opts.Seed)
	metrics := vmtrace.Metrics()
	res := &Figure6Result{
		VM:      vmtrace.VM4,
		Metrics: metrics,
		PLAR:    make([]float64, len(metrics)),
		LAR:     make([]float64, len(metrics)),
		Cum:     make([]float64, len(metrics)),
		WCum:    make([]float64, len(metrics)),
	}
	for i, m := range metrics {
		s, err := ts.Get(vmtrace.VM4, m)
		if err != nil {
			return nil, err
		}
		tr, err := evaluation.EvaluateTrace(s, evalOptions(opts, vmtrace.VM4, m))
		if isDegenerate(err) {
			res.PLAR[i], res.LAR[i], res.Cum[i], res.WCum[i] =
				math.NaN(), math.NaN(), math.NaN(), math.NaN()
			continue
		}
		if err != nil {
			return nil, err
		}
		res.PLAR[i] = tr.PLAR
		res.LAR[i] = tr.LAR
		res.Cum[i] = tr.NWSCum
		res.WCum[i] = tr.NWSWin
	}
	return res, nil
}

// Render prints the Figure 6 series as a table (the paper draws a grouped
// bar chart; the numbers carry the same information).
func (f *Figure6Result) Render() string {
	tb := evaluation.NewTable("Metric", "P-LARP", "Knn-LARP", "Cum.MSE", "W-Cum.MSE")
	fmtCell := func(v float64) string {
		if math.IsNaN(v) {
			return "NaN"
		}
		return evaluation.FormatMSE(v)
	}
	for i, m := range f.Metrics {
		tb.AddRow(string(m), fmtCell(f.PLAR[i]), fmtCell(f.LAR[i]), fmtCell(f.Cum[i]), fmtCell(f.WCum[i]))
	}
	return fmt.Sprintf("Predictor performance comparison (%s)\n%s", f.VM, tb.String())
}
