package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteCSV emits the selection timeline as machine-readable CSV (one row per
// test step) for external plotting — the data behind the paper's Figure 4/5
// panels.
func (st *SelectionTimeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"step", "observed_best", "lar_selected", "nws_selected"}); err != nil {
		return fmt.Errorf("experiments: write csv header: %w", err)
	}
	for i := range st.ObservedBest {
		rec := []string{
			strconv.Itoa(i),
			st.Classes[st.ObservedBest[i]],
			st.Classes[st.LARSelected[i]],
			st.Classes[st.NWSSelected[i]],
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the per-metric MSE comparison as CSV (one row per metric) —
// the data behind the paper's Figure 6 bar chart. NaN (degenerate) cells
// emit empty fields.
func (f *Figure6Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "p_larp", "knn_larp", "cum_mse", "w_cum_mse"}); err != nil {
		return fmt.Errorf("experiments: write csv header: %w", err)
	}
	cell := func(v float64) string {
		if math.IsNaN(v) {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for i, m := range f.Metrics {
		rec := []string{string(m), cell(f.PLAR[i]), cell(f.LAR[i]), cell(f.Cum[i]), cell(f.WCum[i])}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Table-2 rows as CSV.
func (t *Table2Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "p_lar", "lar", "last", "ar", "sw_avg"}); err != nil {
		return fmt.Errorf("experiments: write csv header: %w", err)
	}
	num := func(v float64, degenerate bool) string {
		if degenerate {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for i, r := range t.Rows {
		rec := []string{
			string(r.Metric),
			num(r.PLAR, r.Degenerate), num(r.LAR, r.Degenerate),
			num(r.LAST, r.Degenerate), num(r.AR, r.Degenerate), num(r.SW, r.Degenerate),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
