package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestSelectionTimelineCSV(t *testing.T) {
	st := &SelectionTimeline{
		Trace:        "x",
		Classes:      []string{"LAST", "AR", "SW_AVG"},
		ObservedBest: []int{0, 1, 2},
		LARSelected:  []int{0, 0, 2},
		NWSSelected:  []int{1, 1, 1},
	}
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 3 rows
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[1][1] != "LAST" || recs[3][3] != "AR" {
		t.Errorf("records = %v", recs)
	}
}

func TestFigure6CSV(t *testing.T) {
	r, err := Figure6(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 13 { // header + 12 metrics
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[0][0] != "metric" || recs[1][0] != "CPU_usedsec" {
		t.Errorf("header/first = %v %v", recs[0], recs[1])
	}
}

func TestTable2CSV(t *testing.T) {
	r, err := Table2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "metric,p_lar,lar,last,ar,sw_avg") {
		t.Errorf("header = %q", strings.SplitN(out, "\n", 2)[0])
	}
	if strings.Count(out, "\n") != 13 {
		t.Errorf("line count = %d", strings.Count(out, "\n"))
	}
}
