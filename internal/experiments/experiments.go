// Package experiments contains one driver per table and figure in the
// paper's evaluation (§7), each regenerating the corresponding result from
// the synthetic trace set:
//
//	Figure4  — best-predictor selection timeline for trace VM2_load15
//	Figure5  — best-predictor selection timeline for trace VM2_PktIn
//	Table2   — normalized prediction MSE for all VM1 metrics
//	Table3   — best single predictor per (VM, metric), with LAR wins starred
//	Figure6  — P-LARP / Knn-LARP / Cum.MSE / W-Cum.MSE comparison on VM4
//	Headline — the paper's aggregate claims (§1, §7.1, §7.2.2)
//
// Absolute values differ from the paper (its traces were production VMware
// measurements; ours are synthetic), but the drivers are written so the
// qualitative shape — who wins, roughly by how much, and where — can be
// compared directly. EXPERIMENTS.md records that comparison.
package experiments

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/evaluation"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// Options parameterizes the experiment drivers.
type Options struct {
	// Seed drives both trace synthesis and cross-validation splits.
	Seed int64
	// Folds is the cross-validation repetition count (10 in the paper).
	Folds int
}

// Default returns the standard configuration: seed 2007 (the paper's year),
// ten folds.
func Default() Options { return Options{Seed: 2007, Folds: 10} }

// ConfigFor returns the paper's LARPredictor configuration for a VM's trace
// geometry: prediction order 16 for the 7-day VM1 trace (Table 2's caption)
// and 5 for the 24-hour traces.
func ConfigFor(vm vmtrace.VMID) core.Config {
	if vm == vmtrace.VM1 {
		return core.DefaultConfig(16)
	}
	return core.DefaultConfig(5)
}

// evalOptions builds per-trace evaluation options with a seed derived from
// the trace identity, so fold cuts differ across traces but stay
// reproducible.
func evalOptions(opts Options, vm vmtrace.VMID, metric vmtrace.Metric) evaluation.Options {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s/%s", opts.Seed, vm, metric)
	o := evaluation.DefaultOptions(ConfigFor(vm), int64(h.Sum64()))
	o.Folds = opts.Folds
	return o
}

// traceEval is one trace's evaluation outcome; Degenerate marks the paper's
// NaN cells.
type traceEval struct {
	vm         vmtrace.VMID
	metric     vmtrace.Metric
	res        *evaluation.TraceResult
	degenerate bool
}

// evaluateAll cross-validates every (VM, metric) trace in the set,
// fanning traces out over the available cores.
func evaluateAll(ts *vmtrace.TraceSet, opts Options) ([]traceEval, error) {
	type job struct {
		vm     vmtrace.VMID
		metric vmtrace.Metric
	}
	var jobs []job
	for _, vm := range vmtrace.VMs() {
		for _, m := range vmtrace.Metrics() {
			jobs = append(jobs, job{vm, m})
		}
	}
	results := make([]traceEval, len(jobs))
	errs := make([]error, len(jobs))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				s, err := ts.Get(j.vm, j.metric)
				if err != nil {
					errs[i] = err
					continue
				}
				res, err := evaluation.EvaluateTrace(s, evalOptions(opts, j.vm, j.metric))
				switch {
				case err == nil:
					results[i] = traceEval{vm: j.vm, metric: j.metric, res: res}
				case isDegenerate(err):
					results[i] = traceEval{vm: j.vm, metric: j.metric, degenerate: true}
				default:
					errs[i] = fmt.Errorf("%s/%s: %w", j.vm, j.metric, err)
				}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func isDegenerate(err error) bool {
	return errors.Is(err, evaluation.ErrDegenerate)
}
