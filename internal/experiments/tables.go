package experiments

import (
	"fmt"
	"strings"

	"github.com/acis-lab/larpredictor/internal/evaluation"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// Table2Row is one metric's row of the paper's Table 2: normalized
// prediction MSE for P-LAR, LAR, and the three single experts.
type Table2Row struct {
	Metric vmtrace.Metric
	PLAR   float64
	LAR    float64
	LAST   float64
	AR     float64
	SW     float64
	// Degenerate marks an idle (constant) trace.
	Degenerate bool
}

// Table2Result is the full table for one VM.
type Table2Result struct {
	VM   vmtrace.VMID
	Rows []Table2Row
}

// Table2 reproduces the paper's Table 2 for VM1 (duration 168 hours,
// interval 30 minutes, prediction order 16).
func Table2(opts Options) (*Table2Result, error) {
	return tableForVM(vmtrace.VM1, opts)
}

// tableForVM computes Table-2-style rows for any VM.
func tableForVM(vm vmtrace.VMID, opts Options) (*Table2Result, error) {
	ts := vmtrace.StandardTraceSet(opts.Seed)
	out := &Table2Result{VM: vm}
	for _, m := range vmtrace.Metrics() {
		s, err := ts.Get(vm, m)
		if err != nil {
			return nil, err
		}
		tr, err := evaluation.EvaluateTrace(s, evalOptions(opts, vm, m))
		if isDegenerate(err) {
			out.Rows = append(out.Rows, Table2Row{Metric: m, Degenerate: true})
			continue
		}
		if err != nil {
			return nil, err
		}
		row := Table2Row{Metric: m, PLAR: tr.PLAR, LAR: tr.LAR}
		for i, name := range tr.ExpertNames {
			switch name {
			case "LAST":
				row.LAST = tr.Expert[i]
			case "AR":
				row.AR = tr.Expert[i]
			case "SW_AVG":
				row.SW = tr.Expert[i]
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the table; the best value among {LAR, LAST, AR, SW} per row
// is marked with a trailing '*' (the paper uses italic bold).
func (t *Table2Result) Render() string {
	tb := evaluation.NewTable("Perf.Metrics", "P-LAR", "LAR", "LAST", "AR", "SW")
	for _, r := range t.Rows {
		if r.Degenerate {
			tb.AddRow(string(r.Metric), "NaN", "NaN", "NaN", "NaN", "NaN")
			continue
		}
		vals := []float64{r.LAR, r.LAST, r.AR, r.SW}
		best := 0
		for i, v := range vals {
			if v < vals[best] {
				best = i
			}
		}
		cells := make([]string, 4)
		for i, v := range vals {
			cells[i] = evaluation.FormatMSE(v)
			if i == best {
				cells[i] += "*"
			}
		}
		tb.AddRow(string(r.Metric), evaluation.FormatMSE(r.PLAR), cells[0], cells[1], cells[2], cells[3])
	}
	return fmt.Sprintf("Normalized Prediction MSE Statistics for Resources of %s\n%s", t.VM, tb.String())
}

// Table3Cell is one cell of the paper's Table 3: the best single predictor
// for a (metric, VM) pair, with Star set when the LARPredictor matched or
// beat it, and NaN for idle traces.
type Table3Cell struct {
	Best string
	Star bool
	NaN  bool
}

// Table3Result is the full best-predictor matrix.
type Table3Result struct {
	Metrics []vmtrace.Metric
	VMs     []vmtrace.VMID
	// Cells[m][v] corresponds to Metrics[m] and VMs[v].
	Cells [][]Table3Cell
}

// Table3 reproduces the paper's Table 3 over the whole trace set.
func Table3(opts Options) (*Table3Result, error) {
	ts := vmtrace.StandardTraceSet(opts.Seed)
	evals, err := evaluateAll(ts, opts)
	if err != nil {
		return nil, err
	}
	byKey := make(map[string]traceEval, len(evals))
	for _, e := range evals {
		byKey[string(e.vm)+"/"+string(e.metric)] = e
	}

	out := &Table3Result{Metrics: vmtrace.Metrics(), VMs: vmtrace.VMs()}
	for _, m := range out.Metrics {
		row := make([]Table3Cell, len(out.VMs))
		for vi, vm := range out.VMs {
			e := byKey[string(vm)+"/"+string(m)]
			if e.degenerate {
				row[vi] = Table3Cell{NaN: true}
				continue
			}
			_, bestName := e.res.BestExpert()
			row[vi] = Table3Cell{Best: bestName, Star: e.res.LARBeatsBestExpert()}
		}
		out.Cells = append(out.Cells, row)
	}
	return out, nil
}

// StarFraction returns the fraction of non-NaN cells where the LARPredictor
// matched or beat the best single expert (the paper reports 44.23%).
func (t *Table3Result) StarFraction() float64 {
	var stars, total int
	for _, row := range t.Cells {
		for _, c := range row {
			if c.NaN {
				continue
			}
			total++
			if c.Star {
				stars++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(stars) / float64(total)
}

// WinCounts tallies how many non-NaN cells each expert wins.
func (t *Table3Result) WinCounts() map[string]int {
	counts := map[string]int{}
	for _, row := range t.Cells {
		for _, c := range row {
			if !c.NaN {
				counts[c.Best]++
			}
		}
	}
	return counts
}

// Render prints the matrix with the paper's cell syntax ("AR*", "LAST",
// "NaN").
func (t *Table3Result) Render() string {
	headers := make([]string, 0, len(t.VMs)+1)
	headers = append(headers, "Perform. Metrics")
	for _, vm := range t.VMs {
		headers = append(headers, string(vm))
	}
	tb := evaluation.NewTable(headers...)
	for mi, m := range t.Metrics {
		cells := make([]string, 0, len(t.VMs)+1)
		cells = append(cells, string(m))
		for _, c := range t.Cells[mi] {
			switch {
			case c.NaN:
				cells = append(cells, "NaN")
			case c.Star:
				cells = append(cells, c.Best+"*")
			default:
				cells = append(cells, c.Best)
			}
		}
		tb.AddRow(cells...)
	}
	var b strings.Builder
	b.WriteString("Best Predictors of All the Trace Data\n")
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "LAR matched or beat the best single predictor on %s of traces\n",
		evaluation.FormatPct(t.StarFraction()))
	return b.String()
}

// HeadlineResult aggregates the paper's headline claims over every
// non-degenerate trace:
//
//   - mean best-predictor forecasting accuracy of LAR vs the NWS selection
//     (paper: 55.98%, a 20.18-point advantage);
//   - the fraction of traces where LAR matches/beats the best single expert
//     (paper: 44.23%);
//   - the fraction where LAR beats the NWS cumulative selector (paper:
//     66.67%);
//   - the mean relative MSE reduction of the perfect LAR versus the NWS
//     selector (paper: 18.63%).
type HeadlineResult struct {
	Traces     int
	Degenerate int

	MeanLARAccuracy float64
	MeanNWSAccuracy float64

	LARBeatsBestExpert float64
	LARBeatsNWS        float64
	PLARvsNWSReduction float64
}

// Headline computes the aggregate result over the full trace set.
func Headline(opts Options) (*HeadlineResult, error) {
	ts := vmtrace.StandardTraceSet(opts.Seed)
	evals, err := evaluateAll(ts, opts)
	if err != nil {
		return nil, err
	}
	out := &HeadlineResult{}
	var beatsBest, beatsNWS int
	var reduction float64
	for _, e := range evals {
		if e.degenerate {
			out.Degenerate++
			continue
		}
		out.Traces++
		out.MeanLARAccuracy += e.res.LARAccuracy
		out.MeanNWSAccuracy += e.res.NWSAccuracy
		if e.res.LARBeatsBestExpert() {
			beatsBest++
		}
		if e.res.LAR < e.res.NWSCum {
			beatsNWS++
		}
		if e.res.NWSCum > 0 {
			reduction += 1 - e.res.PLAR/e.res.NWSCum
		}
	}
	if out.Traces > 0 {
		n := float64(out.Traces)
		out.MeanLARAccuracy /= n
		out.MeanNWSAccuracy /= n
		out.LARBeatsBestExpert = float64(beatsBest) / n
		out.LARBeatsNWS = float64(beatsNWS) / n
		out.PLARvsNWSReduction = reduction / n
	}
	return out, nil
}

// Render prints the headline summary with the paper's reference numbers
// alongside.
func (h *HeadlineResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline statistics over %d traces (%d idle traces skipped as NaN)\n",
		h.Traces, h.Degenerate)
	fmt.Fprintf(&b, "  mean best-predictor forecasting accuracy: LAR %s vs NWS %s (paper: 55.98%% vs 35.80%%)\n",
		evaluation.FormatPct(h.MeanLARAccuracy), evaluation.FormatPct(h.MeanNWSAccuracy))
	fmt.Fprintf(&b, "  accuracy advantage: %+.2f points (paper: +20.18)\n",
		100*(h.MeanLARAccuracy-h.MeanNWSAccuracy))
	fmt.Fprintf(&b, "  LAR matches/beats best single predictor: %s of traces (paper: 44.23%%)\n",
		evaluation.FormatPct(h.LARBeatsBestExpert))
	fmt.Fprintf(&b, "  LAR beats NWS Cum.MSE selector:          %s of traces (paper: 66.67%%)\n",
		evaluation.FormatPct(h.LARBeatsNWS))
	fmt.Fprintf(&b, "  P-LAR mean MSE reduction vs NWS:         %s (paper: 18.63%%)\n",
		evaluation.FormatPct(h.PLARvsNWSReduction))
	return b.String()
}
