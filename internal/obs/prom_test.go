package obs

import (
	"bytes"
	"errors"
	"log"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWithLE(t *testing.T) {
	cases := []struct {
		name   string
		labels string
		le     string
		want   string
	}{
		{"empty label set", "", "0.5", `{le="0.5"}`},
		{"non-empty label set", `{shard="3"}`, "+Inf", `{shard="3",le="+Inf"}`},
		{"two labels", `{a="1",b="2"}`, "10", `{a="1",b="2",le="10"}`},
		{"empty braces", "{}", "1", `{le="1"}`},
		// Malformed renderings must degrade to a valid le-only set, never a
		// blind slice that emits broken exposition text.
		{"missing closing brace", `{a="1"`, "1", `{le="1"}`},
		{"missing opening brace", `a="1"}`, "1", `{le="1"}`},
		{"single char", "x", "1", `{le="1"}`},
	}
	for _, tc := range cases {
		if got := withLE(tc.labels, tc.le); got != tc.want {
			t.Errorf("%s: withLE(%q, %q) = %q, want %q", tc.name, tc.labels, tc.le, got, tc.want)
		}
	}
}

// TestWithLERenderedHistograms checks the merge against labels produced by
// the real rendering path, for both unlabeled and labeled histograms.
func TestWithLERenderedHistograms(t *testing.T) {
	r := NewRegistry()
	r.Histogram1("plain_seconds", "Plain.", []float64{1}).Observe(0.5)
	r.Histogram("scoped_seconds", "Scoped.", []float64{1}, "shard").WithLabels("7").Observe(0.5)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`plain_seconds_bucket{le="1"} 1`,
		`scoped_seconds_bucket{shard="7",le="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// brokenWriter fails every write after headers, simulating a client that
// hung up mid-scrape.
type brokenWriter struct {
	*httptest.ResponseRecorder
}

func (b brokenWriter) Write([]byte) (int, error) {
	return 0, errors.New("client gone")
}

// WriteString shadows the recorder's io.StringWriter so io.WriteString
// cannot bypass the failing Write.
func (b brokenWriter) WriteString(string) (int, error) {
	return 0, errors.New("client gone")
}

func TestHandlerWriteErrorIsLoggedNot500(t *testing.T) {
	var logged bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&logged)
	defer log.SetOutput(prev)

	r := NewRegistry()
	r.Counter1("up_total", "Up.").Inc()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	Handler(r).ServeHTTP(brokenWriter{rec}, req)

	// The handler must not retroactively turn a mid-body failure into a 500.
	if rec.Code != 200 {
		t.Errorf("status = %d, want 200 (headers were already committed)", rec.Code)
	}
	if !strings.Contains(logged.String(), "client gone") {
		t.Errorf("write error was not logged: %q", logged.String())
	}
}
