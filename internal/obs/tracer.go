package obs

import (
	"sync"
	"time"
)

// Stage names the instrumented stages of the prediction pipeline. The
// five core stages mirror the paper's Figure 1 data path; the remaining
// ones cover the operational machinery around it.
type Stage string

// Pipeline stages, in data-path order.
const (
	// StageNormalize is the z-score normalization of the trailing window.
	StageNormalize Stage = "normalize"
	// StagePCAProject is the projection onto the trained PCA basis.
	StagePCAProject Stage = "pca_project"
	// StageKNNClassify is the k-NN best-expert classification.
	StageKNNClassify Stage = "knn_classify"
	// StageExpertForecast is the selected expert's one-step prediction.
	StageExpertForecast Stage = "expert_forecast"
	// StageQAAudit is the Prediction Quality Assuror's scoring of a
	// pending forecast against the arriving observation.
	StageQAAudit Stage = "qa_audit"
	// StageTrain is a full (re)train: labeling, PCA fit, k-NN indexing.
	StageTrain Stage = "train"
	// StageFallbackForecast is a degraded-mode forecast (selector or
	// last-resort rung).
	StageFallbackForecast Stage = "fallback_forecast"
)

// Span is one in-flight stage execution. End is called exactly once, with
// the error the stage produced (nil on success).
type Span interface {
	End(err error)
}

// Tracer receives a span per pipeline-stage execution. Implementations
// must be safe for concurrent use when the instrumented component is;
// StartSpan runs on the hot forecast path, so it should be cheap.
type Tracer interface {
	StartSpan(stage Stage) Span
}

// StartSpan begins a span on t, tolerating a nil tracer (returns nil).
// Pair with EndSpan for nil-safe instrumentation sites.
func StartSpan(t Tracer, stage Stage) Span {
	if t == nil {
		return nil
	}
	return t.StartSpan(stage)
}

// EndSpan ends sp with err, tolerating a nil span.
func EndSpan(sp Span, err error) {
	if sp != nil {
		sp.End(err)
	}
}

// ---------------------------------------------------------------------------
// StageTimer: a Tracer that feeds a registry.

// stageTimer records per-stage latency histograms and error counters into
// a registry. It is the Tracer monitord attaches to every pipeline.
type stageTimer struct {
	seconds *HistogramVec
	errors  *CounterVec
}

// NewStageTimer returns a Tracer that records every span's duration in a
// larpredictor_stage_seconds histogram and every failed span in a
// larpredictor_stage_errors_total counter, both labeled by stage (plus
// whatever const labels the registry scope carries). A nil registry
// returns a nil Tracer.
func NewStageTimer(r *Registry) Tracer {
	if r == nil {
		return nil
	}
	return &stageTimer{
		seconds: r.Histogram("larpredictor_stage_seconds",
			"Latency of each prediction-pipeline stage.", nil, "stage"),
		errors: r.Counter("larpredictor_stage_errors_total",
			"Pipeline-stage executions that returned an error.", "stage"),
	}
}

type timerSpan struct {
	t     *stageTimer
	stage Stage
	start time.Time
}

func (t *stageTimer) StartSpan(stage Stage) Span {
	return &timerSpan{t: t, stage: stage, start: time.Now()}
}

func (s *timerSpan) End(err error) {
	s.t.seconds.WithLabels(string(s.stage)).Observe(time.Since(s.start).Seconds())
	if err != nil {
		s.t.errors.WithLabels(string(s.stage)).Inc()
	}
}

// ---------------------------------------------------------------------------
// Recorder: a Tracer for tests.

// SpanRecord is one completed span captured by a Recorder.
type SpanRecord struct {
	Stage    Stage
	Err      error
	Duration time.Duration
}

// Recorder is a Tracer that captures every completed span, for tests and
// ad-hoc debugging. Safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

type recorderSpan struct {
	r     *Recorder
	stage Stage
	start time.Time
}

// StartSpan implements Tracer.
func (r *Recorder) StartSpan(stage Stage) Span {
	return &recorderSpan{r: r, stage: stage, start: time.Now()}
}

func (s *recorderSpan) End(err error) {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	s.r.spans = append(s.r.spans, SpanRecord{
		Stage: s.stage, Err: err, Duration: time.Since(s.start),
	})
}

// Spans returns a copy of every recorded span, in completion order.
func (r *Recorder) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}

// CountByStage returns how many spans completed per stage.
func (r *Recorder) CountByStage() map[Stage]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Stage]int)
	for _, s := range r.spans {
		out[s.Stage]++
	}
	return out
}

// Reset discards all recorded spans.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = nil
}
