// Package obs is the dependency-free observability layer of the
// LARPredictor system: a metrics registry (counters, gauges, fixed-bucket
// latency histograms) with Prometheus-text-format exposition, and a Tracer
// hook interface that surfaces per-stage spans of the prediction pipeline
// (normalize → PCA project → k-NN classify → expert forecast → QA audit).
//
// The package is built for hot paths. Every instrument is updated with
// atomic operations only; the registry is read-locked exclusively on
// instrument *creation*, never on update. All instrument methods — and the
// registry accessors that mint them — are nil-safe no-ops, so a component
// holding a nil *Registry or nil instrument pays a single predictable
// branch and zero allocations per event. Components therefore thread
// instruments unconditionally and let the caller decide, at construction
// time, whether observability is on.
//
// Label handling follows the const-label scope model: Registry.With
// derives a view of the same underlying metric families with extra
// label key/value pairs bound. monitord uses it to give every
// (VM, metric) pipeline its own labeled child of the shared families:
//
//	reg := obs.NewRegistry()
//	scope := reg.With("pipeline", "VM2/NIC1/NIC1_received")
//	forecasts := scope.Counter("larpredictor_forecasts_total",
//	    "Forecasts served.", "source")
//	forecasts.WithLabels("LAR").Inc()
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric families a Registry holds.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds. They span sub-microsecond in-process forecasts up to the
// seconds-long retrains of very large training windows.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// label is one bound key/value pair.
type label struct{ k, v string }

// family is one named metric: a kind, help text, a label-name schema, and
// the children keyed by their rendered label sets.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string  // full label-name schema, const labels first
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children map[string]any // rendered label string -> *Counter/*Gauge/*Histogram
}

// registryCore is the state shared by a root registry and every scope
// derived from it with With.
type registryCore struct {
	mu       sync.Mutex
	families map[string]*family
}

// Registry is a set of metric families, or a const-labeled view of one
// (see With). The zero value is not usable; a nil *Registry is: every
// method on it returns a nil instrument whose updates are no-ops.
type Registry struct {
	core   *registryCore
	consts []label
}

// NewRegistry returns an empty root registry.
func NewRegistry() *Registry {
	return &Registry{core: &registryCore{families: map[string]*family{}}}
}

// With derives a scope of the registry with extra const label key/value
// pairs bound to every instrument created through it. Instruments from
// different scopes of the same root share metric families and render
// side by side in the exposition. kv alternates key, value; a dangling
// key is paired with "".
func (r *Registry) With(kv ...string) *Registry {
	if r == nil {
		return nil
	}
	consts := make([]label, 0, len(r.consts)+(len(kv)+1)/2)
	consts = append(consts, r.consts...)
	for i := 0; i < len(kv); i += 2 {
		v := ""
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		consts = append(consts, label{k: kv[i], v: v})
	}
	return &Registry{core: r.core, consts: consts}
}

// lookup returns the named family, creating it on first use. Conflicting
// re-registration (same name, different kind or label schema) panics: it is
// a programming error that would silently corrupt the exposition.
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, varLabels []string) *family {
	schema := make([]string, 0, len(r.consts)+len(varLabels))
	for _, c := range r.consts {
		schema = append(schema, c.k)
	}
	schema = append(schema, varLabels...)

	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	f, ok := r.core.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			labels:   schema,
			buckets:  buckets,
			children: map[string]any{},
		}
		r.core.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	if len(f.labels) != len(schema) {
		panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v", name, schema, f.labels))
	}
	return f
}

// renderLabels builds the canonical child key / exposition label string
// for the family's schema bound to the given values.
func renderLabels(consts []label, varLabels, varValues []string) string {
	if len(consts) == 0 && len(varLabels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	write := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for _, c := range consts {
		write(c.k, c.v)
	}
	for i, k := range varLabels {
		v := ""
		if i < len(varValues) {
			v = varValues[i]
		}
		write(k, v)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// child returns the family child bound to the scope's const labels plus
// the given variable label values, creating it on first use.
func (r *Registry) child(f *family, varLabels, varValues []string, mk func(labels string) any) any {
	key := renderLabels(r.consts, varLabels, varValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = mk(key)
		f.children[key] = c
	}
	return c
}

// Counter registers (or finds) a counter family and returns its vector
// handle. With no varLabels the vector has exactly one child, reachable
// via WithLabels() with no values.
func (r *Registry) Counter(name, help string, varLabels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, KindCounter, nil, varLabels)
	return &CounterVec{reg: r, fam: f, varLabels: varLabels}
}

// Counter1 registers a label-less counter and returns its single child.
func (r *Registry) Counter1(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.Counter(name, help).WithLabels()
}

// Gauge registers (or finds) a gauge family and returns its vector handle.
func (r *Registry) Gauge(name, help string, varLabels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, KindGauge, nil, varLabels)
	return &GaugeVec{reg: r, fam: f, varLabels: varLabels}
}

// Gauge1 registers a label-less gauge and returns its single child.
func (r *Registry) Gauge1(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.Gauge(name, help).WithLabels()
}

// Histogram registers (or finds) a histogram family with the given bucket
// upper bounds (nil = DefBuckets) and returns its vector handle. Buckets
// are fixed at first registration; later registrations reuse them.
func (r *Registry) Histogram(name, help string, buckets []float64, varLabels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.lookup(name, help, KindHistogram, buckets, varLabels)
	return &HistogramVec{reg: r, fam: f, varLabels: varLabels}
}

// Histogram1 registers a label-less histogram and returns its single child.
func (r *Registry) Histogram1(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.Histogram(name, help, buckets).WithLabels()
}

// ---------------------------------------------------------------------------
// Counter

// CounterVec is a counter family handle bound to a scope.
type CounterVec struct {
	reg       *Registry
	fam       *family
	varLabels []string
}

// WithLabels returns the child counter for the given label values.
func (v *CounterVec) WithLabels(values ...string) *Counter {
	if v == nil {
		return nil
	}
	c := v.reg.child(v.fam, v.varLabels, values, func(labels string) any {
		return &Counter{labels: labels}
	})
	return c.(*Counter)
}

// Counter is a monotonically increasing counter. All methods are nil-safe.
type Counter struct {
	n      atomic.Uint64
	labels string
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds delta events. Negative deltas are ignored — counters only rise.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.n.Add(delta)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// ---------------------------------------------------------------------------
// Gauge

// GaugeVec is a gauge family handle bound to a scope.
type GaugeVec struct {
	reg       *Registry
	fam       *family
	varLabels []string
}

// WithLabels returns the child gauge for the given label values.
func (v *GaugeVec) WithLabels(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	g := v.reg.child(v.fam, v.varLabels, values, func(labels string) any {
		return &Gauge{labels: labels}
	})
	return g.(*Gauge)
}

// Gauge is a float64 value that can go up and down, stored as IEEE bits in
// a uint64 for atomic access. All methods are nil-safe.
type Gauge struct {
	bits   atomic.Uint64
	labels string
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// ---------------------------------------------------------------------------
// Histogram

// HistogramVec is a histogram family handle bound to a scope.
type HistogramVec struct {
	reg       *Registry
	fam       *family
	varLabels []string
}

// WithLabels returns the child histogram for the given label values.
func (v *HistogramVec) WithLabels(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	h := v.reg.child(v.fam, v.varLabels, values, func(labels string) any {
		return &Histogram{
			labels:  labels,
			buckets: v.fam.buckets,
			counts:  make([]atomic.Uint64, len(v.fam.buckets)),
		}
	})
	return h.(*Histogram)
}

// Histogram is a fixed-bucket histogram of float64 observations. Bucket
// counts are non-cumulative internally and summed at exposition time; the
// sum is accumulated as IEEE bits under CAS. All methods are nil-safe.
type Histogram struct {
	labels  string
	buckets []float64       // upper bounds, ascending
	counts  []atomic.Uint64 // counts[i] = observations <= buckets[i] (and > buckets[i-1])
	inf     atomic.Uint64   // observations above the last bound
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}
