package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives the registry from many goroutines
// the way monitord's concurrent pipeline slices do: each goroutine mints
// its own labeled scope, creates the same shared families, and updates
// counters, gauges, and histograms while another goroutine repeatedly
// renders the exposition. Run under -race this is the registry's
// thread-safety proof; without -race it still checks the totals.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 16
		iters   = 2000
	)
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := r.WriteProm(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scope := r.With("pipeline", fmt.Sprintf("VM%d/CPU", w%4))
			tr := NewStageTimer(scope)
			c := scope.Counter("hammer_events_total", "Events.", "source")
			g := scope.Gauge1("hammer_depth", "Depth.")
			h := scope.Histogram1("hammer_seconds", "Latency.", nil)
			for i := 0; i < iters; i++ {
				c.WithLabels("LAR").Inc()
				g.Set(float64(i))
				h.Observe(float64(i) * 1e-6)
				EndSpan(StartSpan(tr, StageKNNClassify), nil)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()

	// Four workers share each pipeline label, so each child counter must
	// hold exactly 4*iters events.
	var total uint64
	for w := 0; w < 4; w++ {
		scope := r.With("pipeline", fmt.Sprintf("VM%d/CPU", w))
		total += scope.Counter("hammer_events_total", "Events.", "source").WithLabels("LAR").Value()
	}
	if want := uint64(workers * iters); total != want {
		t.Fatalf("hammered counter total = %d, want %d", total, want)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter1("bench_total", "Bench.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram1("bench_seconds", "Bench.", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-6)
	}
}
