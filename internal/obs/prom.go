package obs

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders every family in the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per family
// followed by its children sorted by label set. Histograms render the
// conventional cumulative _bucket series plus _sum and _count.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.core.mu.Lock()
	names := make([]string, 0, len(r.core.families))
	fams := make([]*family, 0, len(r.core.families))
	for n := range r.core.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.core.families[n])
	}
	r.core.mu.Unlock()

	for _, f := range fams {
		if err := f.writeProm(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeProm(w io.Writer) error {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]any, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()

	if len(children) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, c := range children {
		var err error
		switch m := c.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, m.labels, m.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, m.labels, formatFloat(m.Value()))
		case *Histogram:
			err = m.writeProm(w, f.name)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeProm renders one histogram child: cumulative buckets, sum, count.
func (h *Histogram) writeProm(w io.Writer, name string) error {
	var cum uint64
	for i, bound := range h.buckets {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, withLE(h.labels, formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.inf.Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(h.labels, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, h.labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, h.labels, h.count.Load())
	return err
}

// withLE merges an le label into a rendered label set. It is defensive
// about the input: anything that is not a well-formed non-empty "{...}"
// rendering falls back to a bare le-only label set rather than slicing
// blindly and emitting a malformed exposition.
func withLE(labels, le string) string {
	if len(labels) < 2 || labels[0] != '{' || labels[len(labels)-1] != '}' {
		return `{le="` + le + `"}`
	}
	if labels == "{}" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float the way Prometheus clients conventionally do.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text format. A nil registry serves an empty (but valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		var b strings.Builder
		if err := r.WriteProm(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// Rendering already succeeded, so a failure here means the write to
		// the client broke (connection gone, response cut short). Headers are
		// out the door — a 500 would be a lie — so log and move on.
		if _, err := io.WriteString(w, b.String()); err != nil {
			log.Printf("obs: writing /metrics response: %v", err)
		}
	})
}
