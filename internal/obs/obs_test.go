package obs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter1("events_total", "Events.")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge1("depth", "Depth.")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every accessor on a nil registry must return nil instruments whose
	// methods are no-ops — this is the zero-cost uninstrumented path.
	r.With("a", "b").Counter("c", "h", "l").WithLabels("x").Inc()
	r.Counter1("c", "h").Add(7)
	r.Gauge("g", "h").WithLabels().Set(1)
	r.Gauge1("g", "h").Add(1)
	r.Histogram("h", "h", nil, "l").WithLabels("x").Observe(1)
	r.Histogram1("h", "h", nil).Observe(1)
	if err := r.WriteProm(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var c *Counter
	c.Inc()
	var g *Gauge
	g.Set(3)
	var h *Histogram
	h.Observe(2)
	EndSpan(StartSpan(nil, StageTrain), nil)
	if tr := NewStageTimer(nil); tr != nil {
		t.Fatal("NewStageTimer(nil) must return a nil Tracer")
	}
}

func TestLabelsAndScopes(t *testing.T) {
	r := NewRegistry()
	scopeA := r.With("pipeline", "A")
	scopeB := r.With("pipeline", "B")
	v := scopeA.Counter("forecasts_total", "Forecasts.", "source")
	v.WithLabels("LAR").Inc()
	v.WithLabels("LAR").Inc()
	v.WithLabels("W-CUM-MSE").Inc()
	scopeB.Counter("forecasts_total", "Forecasts.", "source").WithLabels("LAR").Inc()

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE forecasts_total counter",
		`forecasts_total{pipeline="A",source="LAR"} 2`,
		`forecasts_total{pipeline="A",source="W-CUM-MSE"} 1`,
		`forecasts_total{pipeline="B",source="LAR"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram1("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary 0.1
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 55.65",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "C.", "k").WithLabels("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if want := `c_total{k="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, b.String())
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter1("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge1("m", "h")
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter1("up_total", "Up.").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("handler output missing counter:\n%s", body)
	}

	post, err := http.Post(srv.URL, "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestStageTimerTracer(t *testing.T) {
	r := NewRegistry().With("pipeline", "p1")
	tr := NewStageTimer(r)
	EndSpan(StartSpan(tr, StageKNNClassify), nil)
	EndSpan(StartSpan(tr, StageTrain), errors.New("boom"))

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`larpredictor_stage_seconds_count{pipeline="p1",stage="knn_classify"} 1`,
		`larpredictor_stage_seconds_count{pipeline="p1",stage="train"} 1`,
		`larpredictor_stage_errors_total{pipeline="p1",stage="train"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRecorder(t *testing.T) {
	rec := NewRecorder()
	EndSpan(StartSpan(rec, StageNormalize), nil)
	EndSpan(StartSpan(rec, StageNormalize), nil)
	EndSpan(StartSpan(rec, StageExpertForecast), errors.New("x"))
	counts := rec.CountByStage()
	if counts[StageNormalize] != 2 || counts[StageExpertForecast] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	spans := rec.Spans()
	if len(spans) != 3 || spans[2].Err == nil {
		t.Fatalf("spans = %v", spans)
	}
	rec.Reset()
	if len(rec.Spans()) != 0 {
		t.Fatal("Reset did not clear spans")
	}
}
