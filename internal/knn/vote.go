package knn

import (
	"fmt"
)

// VoteStrategy selects how the neighbor set is combined into a class
// decision. The paper uses plain majority voting (§5.1); its related work
// (§2, reference [16]) surveys "different combination strategies such as
// weighted voting and probability-based voting", which are provided here for
// the combination-strategy ablation.
type VoteStrategy int

const (
	// MajorityVote counts one vote per neighbor (the paper's rule). Ties
	// break toward the class whose nearest member is closest to the query,
	// then toward the lower class index.
	MajorityVote VoteStrategy = iota
	// DistanceWeightedVote weighs each neighbor by 1/(d+ε), so nearer
	// neighbors dominate.
	DistanceWeightedVote
	// ProbabilityVote normalizes distance weights into a distribution and
	// picks its argmax; use Probabilities to read the full distribution.
	ProbabilityVote
)

func (v VoteStrategy) String() string {
	switch v {
	case MajorityVote:
		return "majority"
	case DistanceWeightedVote:
		return "distance-weighted"
	case ProbabilityVote:
		return "probability"
	}
	return fmt.Sprintf("VoteStrategy(%d)", int(v))
}

// distanceEps regularizes 1/d weights for zero-distance neighbors.
const distanceEps = 1e-9

// vote combines a non-empty neighbor set under the strategy.
func vote(nbrs []Neighbor, numClasses int, strategy VoteStrategy) int {
	return voteScratch(nbrs, numClasses, strategy, nil)
}

// voteScratch is vote using s's reusable tally buffers; a nil s allocates.
func voteScratch(nbrs []Neighbor, numClasses int, strategy VoteStrategy, s *Scratch) int {
	switch strategy {
	case DistanceWeightedVote, ProbabilityVote:
		var w []float64
		if s != nil {
			s.weights = growFloats(s.weights, numClasses)
			w = s.weights
			for i := range w {
				w[i] = 0
			}
			accumWeights(w, nbrs)
		} else {
			w = classWeights(nbrs, numClasses)
		}
		best := -1
		for cls, weight := range w {
			if weight == 0 {
				continue
			}
			if best == -1 || weight > w[best] {
				best = cls
			}
		}
		return best
	default:
		var votes []int
		var closest []float64
		if s != nil {
			if cap(s.votes) < numClasses {
				s.votes = make([]int, numClasses)
			}
			s.closest = growFloats(s.closest, numClasses)
			votes, closest = s.votes[:numClasses], s.closest
			for i := range votes {
				votes[i] = 0
			}
		} else {
			votes = make([]int, numClasses)
			closest = make([]float64, numClasses)
		}
		return majority(nbrs, votes, closest)
	}
}

// growFloats returns a length-n float slice reusing v's backing array when
// possible.
func growFloats(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

// majority implements the paper's voting rule; votes and closest are
// zeroed/overwritten tally buffers of length numClasses.
func majority(nbrs []Neighbor, votes []int, closest []float64) int {
	for i := range closest {
		closest[i] = -1
	}
	for _, n := range nbrs {
		votes[n.Label]++
		if closest[n.Label] < 0 || n.Distance < closest[n.Label] {
			closest[n.Label] = n.Distance
		}
	}
	best := -1
	for cls, v := range votes {
		if v == 0 {
			continue
		}
		switch {
		case best == -1,
			v > votes[best],
			v == votes[best] && closest[cls] < closest[best]:
			best = cls
		}
	}
	return best
}

// classWeights accumulates 1/(d+ε) per class.
func classWeights(nbrs []Neighbor, numClasses int) []float64 {
	w := make([]float64, numClasses)
	accumWeights(w, nbrs)
	return w
}

// accumWeights folds the neighbors' 1/(d+ε) weights into w.
func accumWeights(w []float64, nbrs []Neighbor) {
	for _, n := range nbrs {
		w[n.Label] += 1 / (n.Distance + distanceEps)
	}
}

// Probabilities returns the distance-weighted class distribution over the k
// nearest neighbors of q: probabilities sum to 1 and index by class label.
func (c *Classifier) Probabilities(q []float64) ([]float64, error) {
	nbrs, err := c.search.Nearest(q, c.k)
	if err != nil {
		return nil, err
	}
	if len(nbrs) == 0 {
		return nil, fmt.Errorf("knn: empty neighbor set: %w", ErrBadInput)
	}
	w := classWeights(nbrs, c.numClasses)
	var total float64
	for _, x := range w {
		total += x
	}
	for i := range w {
		w[i] /= total
	}
	return w, nil
}
