package knn

import (
	"fmt"
)

// VoteStrategy selects how the neighbor set is combined into a class
// decision. The paper uses plain majority voting (§5.1); its related work
// (§2, reference [16]) surveys "different combination strategies such as
// weighted voting and probability-based voting", which are provided here for
// the combination-strategy ablation.
type VoteStrategy int

const (
	// MajorityVote counts one vote per neighbor (the paper's rule). Ties
	// break toward the class whose nearest member is closest to the query,
	// then toward the lower class index.
	MajorityVote VoteStrategy = iota
	// DistanceWeightedVote weighs each neighbor by 1/(d+ε), so nearer
	// neighbors dominate.
	DistanceWeightedVote
	// ProbabilityVote normalizes distance weights into a distribution and
	// picks its argmax; use Probabilities to read the full distribution.
	ProbabilityVote
)

func (v VoteStrategy) String() string {
	switch v {
	case MajorityVote:
		return "majority"
	case DistanceWeightedVote:
		return "distance-weighted"
	case ProbabilityVote:
		return "probability"
	}
	return fmt.Sprintf("VoteStrategy(%d)", int(v))
}

// distanceEps regularizes 1/d weights for zero-distance neighbors.
const distanceEps = 1e-9

// vote combines a non-empty neighbor set under the strategy.
func vote(nbrs []Neighbor, numClasses int, strategy VoteStrategy) int {
	switch strategy {
	case DistanceWeightedVote, ProbabilityVote:
		w := classWeights(nbrs, numClasses)
		best := -1
		for cls, weight := range w {
			if weight == 0 {
				continue
			}
			if best == -1 || weight > w[best] {
				best = cls
			}
		}
		return best
	default:
		return majority(nbrs, numClasses)
	}
}

// majority implements the paper's voting rule.
func majority(nbrs []Neighbor, numClasses int) int {
	votes := make([]int, numClasses)
	closest := make([]float64, numClasses)
	for i := range closest {
		closest[i] = -1
	}
	for _, n := range nbrs {
		votes[n.Label]++
		if closest[n.Label] < 0 || n.Distance < closest[n.Label] {
			closest[n.Label] = n.Distance
		}
	}
	best := -1
	for cls, v := range votes {
		if v == 0 {
			continue
		}
		switch {
		case best == -1,
			v > votes[best],
			v == votes[best] && closest[cls] < closest[best]:
			best = cls
		}
	}
	return best
}

// classWeights accumulates 1/(d+ε) per class.
func classWeights(nbrs []Neighbor, numClasses int) []float64 {
	w := make([]float64, numClasses)
	for _, n := range nbrs {
		w[n.Label] += 1 / (n.Distance + distanceEps)
	}
	return w
}

// Probabilities returns the distance-weighted class distribution over the k
// nearest neighbors of q: probabilities sum to 1 and index by class label.
func (c *Classifier) Probabilities(q []float64) ([]float64, error) {
	nbrs, err := c.search.Nearest(q, c.k)
	if err != nil {
		return nil, err
	}
	if len(nbrs) == 0 {
		return nil, fmt.Errorf("knn: empty neighbor set: %w", ErrBadInput)
	}
	w := classWeights(nbrs, c.numClasses)
	var total float64
	for _, x := range w {
		total += x
	}
	for i := range w {
		w[i] /= total
	}
	return w, nil
}
