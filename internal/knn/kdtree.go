package knn

import (
	"fmt"
	"math"
	"sort"

	"github.com/acis-lab/larpredictor/internal/linalg"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// kdTree is a k-d tree searcher implementing the Friedman–Bentley–Finkel
// best-match algorithm (paper reference [13]): median splits on the axis of
// maximum spread, branch-and-bound descent with a bounded candidate list.
type kdTree struct {
	points [][]float64
	labels []int
	dim    int
	root   *kdNode
}

type kdNode struct {
	// index into points for leaf entries; internal nodes also store a point
	// (the median), as in the classic formulation.
	index       int
	axis        int
	left, right *kdNode
}

func newKDTree(points [][]float64, labels []int) *kdTree {
	ps := make([][]float64, len(points))
	for i, p := range points {
		ps[i] = linalg.Clone(p)
	}
	ls := make([]int, len(labels))
	copy(ls, labels)
	t := &kdTree{points: ps, labels: ls, dim: len(ps[0])}
	idx := make([]int, len(ps))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx)
	return t
}

// build recursively constructs the tree over the point indexes in idx.
func (t *kdTree) build(idx []int) *kdNode {
	if len(idx) == 0 {
		return nil
	}
	axis := t.widestAxis(idx)
	// Median split: sort indexes along the axis (index tiebreak keeps the
	// build deterministic for duplicate coordinates).
	sort.Slice(idx, func(a, b int) bool {
		va, vb := t.points[idx[a]][axis], t.points[idx[b]][axis]
		if va != vb {
			return va < vb
		}
		return idx[a] < idx[b]
	})
	mid := len(idx) / 2
	n := &kdNode{index: idx[mid], axis: axis}
	n.left = t.build(idx[:mid])
	n.right = t.build(idx[mid+1:])
	return n
}

// widestAxis picks the coordinate with the largest spread over the subset,
// the FBF heuristic that keeps cells roughly cubical.
func (t *kdTree) widestAxis(idx []int) int {
	bestAxis, bestSpread := 0, -1.0
	for a := 0; a < t.dim; a++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			v := t.points[i][a]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if s := hi - lo; s > bestSpread {
			bestAxis, bestSpread = a, s
		}
	}
	return bestAxis
}

func (t *kdTree) Len() int { return len(t.points) }

func (t *kdTree) Nearest(q []float64, k int) ([]Neighbor, error) {
	return t.NearestInto(q, k, nil)
}

func (t *kdTree) NearestInto(q []float64, k int, buf []Neighbor) ([]Neighbor, error) {
	if len(q) != t.dim {
		return nil, fmt.Errorf("knn: query dimension %d, index dimension %d: %w", len(q), t.dim, ErrBadInput)
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d < 1: %w", k, ErrBadInput)
	}
	if k > len(t.points) {
		k = len(t.points)
	}
	cand := buf
	if cap(cand) < k {
		cand = make([]Neighbor, 0, k)
	}
	cand = cand[:0]
	t.searchNode(t.root, q, k, &cand)
	finishDistances(cand)
	return cand, nil
}

// searchNode performs branch-and-bound descent, maintaining cand as the
// sorted current-best list (squared distances).
func (t *kdTree) searchNode(n *kdNode, q []float64, k int, cand *[]Neighbor) {
	if n == nil {
		return
	}
	p := t.points[n.index]
	d := linalg.SquaredDistance(q, p)
	insertCandidate(cand, k, Neighbor{Index: n.index, Label: t.labels[n.index], Distance: d})

	diff := q[n.axis] - p[n.axis]
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	t.searchNode(near, q, k, cand)
	// Prune the far side unless the splitting plane is closer than the
	// current k-th best (or we do not yet have k candidates).
	if len(*cand) < k || diff*diff <= (*cand)[len(*cand)-1].Distance {
		t.searchNode(far, q, k, cand)
	}
}

// insertCandidate inserts n into the sorted bounded candidate list.
func insertCandidate(cand *[]Neighbor, k int, n Neighbor) {
	c := *cand
	if len(c) == k && !lessNeighbor(n.Distance, n.Index, c[k-1]) {
		return
	}
	pos := sort.Search(len(c), func(j int) bool {
		return lessNeighbor(n.Distance, n.Index, c[j])
	})
	if len(c) < k {
		c = append(c, Neighbor{})
	}
	copy(c[pos+1:], c[pos:])
	c[pos] = n
	*cand = c
}
