// Package knn implements the k-Nearest-Neighbor classifier the LARPredictor
// uses to forecast the best predictor for a workload window (paper §5.1):
// memory-based training (the training phase "is simply to index the N
// training data"), Euclidean distance, and majority vote over the k = 3
// nearest neighbors' class labels.
//
// Two neighbor-search backends are provided: a brute-force linear scan
// (O(N) per query, the paper's quicksort-selection approach) and a k-d tree
// (the Friedman–Bentley–Finkel logarithmic-expected-time algorithm the paper
// cites as a fast alternative). Both return identical neighbor sets; the
// ablation bench compares their throughput.
package knn

import (
	"errors"
	"fmt"
	"sort"

	"github.com/acis-lab/larpredictor/internal/linalg"
)

// ErrBadInput is returned for invalid construction or query arguments.
var ErrBadInput = errors.New("knn: invalid input")

// Neighbor is one result of a nearest-neighbor query.
type Neighbor struct {
	// Index is the position of the neighbor in the training set.
	Index int
	// Label is the neighbor's class label.
	Label int
	// Distance is the Euclidean distance to the query point.
	Distance float64
}

// Searcher finds the k nearest training points to a query.
type Searcher interface {
	// Nearest returns the k nearest neighbors of q, ordered by ascending
	// distance with index as the tiebreaker (deterministic across backends).
	// It returns fewer than k neighbors only when the training set is
	// smaller than k.
	Nearest(q []float64, k int) ([]Neighbor, error)
	// NearestInto is Nearest writing into buf (which must have length 0;
	// its capacity is reused when sufficient), for allocation-free queries.
	NearestInto(q []float64, k int, buf []Neighbor) ([]Neighbor, error)
	// Len returns the number of indexed training points.
	Len() int
}

// Classifier is a k-NN classifier over labeled training points. It is
// immutable after construction and safe for concurrent use.
type Classifier struct {
	search Searcher
	k      int
	vote   VoteStrategy
	// numClasses is 1 + the maximum label seen, used for vote counting.
	numClasses int
}

// Config controls classifier construction.
type Config struct {
	// K is the number of neighbors to vote (odd per the paper; 3 in the
	// reference implementation). Defaults to 3 when zero.
	K int
	// UseKDTree selects the k-d tree backend instead of brute force.
	UseKDTree bool
	// Vote selects the combination strategy; the zero value is the paper's
	// majority vote.
	Vote VoteStrategy
}

// NewClassifier indexes the training points (one row per point, all rows the
// same dimension) with their class labels. Labels must be non-negative.
func NewClassifier(points [][]float64, labels []int, cfg Config) (*Classifier, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("knn: no training points: %w", ErrBadInput)
	}
	if len(points) != len(labels) {
		return nil, fmt.Errorf("knn: %d points but %d labels: %w", len(points), len(labels), ErrBadInput)
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("knn: zero-dimensional points: %w", ErrBadInput)
	}
	maxLabel := 0
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("knn: point %d has dimension %d, want %d: %w", i, len(p), dim, ErrBadInput)
		}
		if labels[i] < 0 {
			return nil, fmt.Errorf("knn: negative label %d at point %d: %w", labels[i], i, ErrBadInput)
		}
		if labels[i] > maxLabel {
			maxLabel = labels[i]
		}
	}
	k := cfg.K
	if k == 0 {
		k = 3
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d < 1: %w", k, ErrBadInput)
	}

	var s Searcher
	if cfg.UseKDTree {
		s = newKDTree(points, labels)
	} else {
		s = newBruteForce(points, labels)
	}
	return &Classifier{search: s, k: k, vote: cfg.Vote, numClasses: maxLabel + 1}, nil
}

// K returns the configured neighbor count.
func (c *Classifier) K() int { return c.k }

// Len returns the number of indexed training points.
func (c *Classifier) Len() int { return c.search.Len() }

// Classify returns the majority-vote label among the k nearest neighbors of
// q. Vote ties break toward the class whose nearest member is closest to the
// query, then toward the lower class index — both deterministic.
func (c *Classifier) Classify(q []float64) (int, error) {
	label, _, err := c.ClassifyNeighbors(q)
	return label, err
}

// Scratch holds the per-query working buffers of a classification —
// neighbor candidates and vote tallies — so steady-state callers can
// classify without allocating. The zero value is ready to use; buffers grow
// on first use and are reused afterwards. A Scratch must not be shared
// between concurrent queries.
type Scratch struct {
	cand    []Neighbor
	votes   []int
	closest []float64
	weights []float64
}

// ClassifyScratch is Classify using s's reusable buffers. After the first
// call with a given Scratch the query path performs no heap allocations.
func (c *Classifier) ClassifyScratch(q []float64, s *Scratch) (int, error) {
	if s == nil {
		return c.Classify(q)
	}
	if cap(s.cand) < c.k {
		s.cand = make([]Neighbor, 0, c.k)
	}
	nbrs, err := c.search.NearestInto(q, c.k, s.cand[:0])
	if err != nil {
		return 0, err
	}
	s.cand = nbrs
	if len(nbrs) == 0 {
		return 0, fmt.Errorf("knn: empty neighbor set: %w", ErrBadInput)
	}
	return voteScratch(nbrs, c.numClasses, c.vote, s), nil
}

// ClassifyNeighbors is Classify but additionally returns the neighbor set
// that produced the vote, for callers that want to inspect or log it.
func (c *Classifier) ClassifyNeighbors(q []float64) (int, []Neighbor, error) {
	nbrs, err := c.search.Nearest(q, c.k)
	if err != nil {
		return 0, nil, err
	}
	if len(nbrs) == 0 {
		return 0, nil, fmt.Errorf("knn: empty neighbor set: %w", ErrBadInput)
	}
	return vote(nbrs, c.numClasses, c.vote), nbrs, nil
}

// bruteForce is the linear-scan searcher.
type bruteForce struct {
	points [][]float64
	labels []int
}

func newBruteForce(points [][]float64, labels []int) *bruteForce {
	ps := make([][]float64, len(points))
	for i, p := range points {
		ps[i] = linalg.Clone(p)
	}
	ls := make([]int, len(labels))
	copy(ls, labels)
	return &bruteForce{points: ps, labels: ls}
}

func (b *bruteForce) Len() int { return len(b.points) }

func (b *bruteForce) Nearest(q []float64, k int) ([]Neighbor, error) {
	return b.NearestInto(q, k, nil)
}

func (b *bruteForce) NearestInto(q []float64, k int, buf []Neighbor) ([]Neighbor, error) {
	if len(q) != len(b.points[0]) {
		return nil, fmt.Errorf("knn: query dimension %d, index dimension %d: %w",
			len(q), len(b.points[0]), ErrBadInput)
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d < 1: %w", k, ErrBadInput)
	}
	if k > len(b.points) {
		k = len(b.points)
	}
	// Maintain a small sorted candidate list; k is tiny (3 in the paper) so
	// insertion into a k-slot array beats a heap.
	cand := buf
	if cap(cand) < k {
		cand = make([]Neighbor, 0, k)
	}
	cand = cand[:0]
	for i, p := range b.points {
		d := linalg.SquaredDistance(q, p)
		if len(cand) == k && !lessNeighbor(d, i, cand[k-1]) {
			continue
		}
		n := Neighbor{Index: i, Label: b.labels[i], Distance: d}
		pos := sort.Search(len(cand), func(j int) bool {
			return lessNeighbor(d, i, cand[j])
		})
		if len(cand) < k {
			cand = append(cand, Neighbor{})
		}
		copy(cand[pos+1:], cand[pos:])
		cand[pos] = n
	}
	finishDistances(cand)
	return cand, nil
}

// lessNeighbor orders candidate (dist d, index i) before existing neighbor n.
// Distances here are squared; ordering is preserved.
func lessNeighbor(d float64, i int, n Neighbor) bool {
	if d != n.Distance {
		return d < n.Distance
	}
	return i < n.Index
}

// finishDistances converts the squared distances accumulated during search
// into true Euclidean distances.
func finishDistances(ns []Neighbor) {
	for i := range ns {
		ns[i].Distance = sqrt(ns[i].Distance)
	}
}
