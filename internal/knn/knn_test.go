package knn

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustClassifier(t *testing.T, pts [][]float64, labels []int, cfg Config) *Classifier {
	t.Helper()
	c, err := NewClassifier(pts, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClassifierValidation(t *testing.T) {
	good := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	labels := []int{0, 1, 0}
	cases := []struct {
		name   string
		pts    [][]float64
		labels []int
		cfg    Config
	}{
		{"empty", nil, nil, Config{}},
		{"mismatch", good, []int{0, 1}, Config{}},
		{"ragged", [][]float64{{1, 2}, {1}}, []int{0, 1}, Config{}},
		{"zero-dim", [][]float64{{}, {}}, []int{0, 0}, Config{}},
		{"negative-label", good, []int{0, -1, 0}, Config{}},
		{"bad-k", good, labels, Config{K: -1}},
	}
	for _, c := range cases {
		if _, err := NewClassifier(c.pts, c.labels, c.cfg); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s: err = %v, want ErrBadInput", c.name, err)
		}
	}
}

func TestDefaultK(t *testing.T) {
	c := mustClassifier(t, [][]float64{{0}, {1}, {2}, {3}}, []int{0, 0, 1, 1}, Config{})
	if c.K() != 3 {
		t.Errorf("default K = %d, want 3", c.K())
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestClassifySimple(t *testing.T) {
	// Two well-separated clusters.
	pts := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, // class 0
		{5, 5}, {5.1, 5}, {5, 5.1}, // class 1
	}
	labels := []int{0, 0, 0, 1, 1, 1}
	for _, kd := range []bool{false, true} {
		c := mustClassifier(t, pts, labels, Config{K: 3, UseKDTree: kd})
		got, err := c.Classify([]float64{0.05, 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("kdtree=%v: near-origin query classified %d", kd, got)
		}
		got, err = c.Classify([]float64{4.9, 5.2})
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Errorf("kdtree=%v: far query classified %d", kd, got)
		}
	}
}

func TestClassifyMajorityOverrulesNearest(t *testing.T) {
	// Nearest point is class 1 but classes 0 dominates the 3-neighborhood.
	pts := [][]float64{{1}, {2}, {3}, {100}}
	labels := []int{1, 0, 0, 0}
	c := mustClassifier(t, pts, labels, Config{K: 3})
	got, err := c.Classify([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("majority vote = %d, want 0", got)
	}
}

func TestClassifyTieBreaksToCloserClass(t *testing.T) {
	// k=2 with one vote each: the class of the nearer neighbor must win.
	pts := [][]float64{{1}, {3}}
	labels := []int{1, 0}
	c := mustClassifier(t, pts, labels, Config{K: 2})
	got, err := c.Classify([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("tie broke to %d, want nearer class 1", got)
	}
}

func TestClassifyNeighborsReturnsOrderedSet(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}, {10}}
	labels := []int{0, 1, 2, 3}
	c := mustClassifier(t, pts, labels, Config{K: 3})
	_, nbrs, err := c.ClassifyNeighbors([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 3 {
		t.Fatalf("got %d neighbors", len(nbrs))
	}
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i].Distance < nbrs[i-1].Distance {
			t.Fatal("neighbors not sorted by distance")
		}
	}
	if nbrs[0].Index != 0 || nbrs[1].Index != 1 || nbrs[2].Index != 2 {
		t.Errorf("neighbor indexes = %v", nbrs)
	}
	if nbrs[1].Distance != 1 {
		t.Errorf("distance to {1} = %g, want 1 (not squared)", nbrs[1].Distance)
	}
}

func TestKLargerThanTrainingSet(t *testing.T) {
	for _, kd := range []bool{false, true} {
		c := mustClassifier(t, [][]float64{{0}, {1}}, []int{0, 1}, Config{K: 5, UseKDTree: kd})
		_, nbrs, err := c.ClassifyNeighbors([]float64{0})
		if err != nil {
			t.Fatal(err)
		}
		if len(nbrs) != 2 {
			t.Errorf("kdtree=%v: got %d neighbors, want 2", kd, len(nbrs))
		}
	}
}

func TestQueryDimensionMismatch(t *testing.T) {
	for _, kd := range []bool{false, true} {
		c := mustClassifier(t, [][]float64{{0, 0}, {1, 1}}, []int{0, 1}, Config{UseKDTree: kd})
		if _, err := c.Classify([]float64{0}); !errors.Is(err, ErrBadInput) {
			t.Errorf("kdtree=%v: dimension mismatch not rejected", kd)
		}
	}
}

func TestClassifierCopiesTrainingData(t *testing.T) {
	pts := [][]float64{{0}, {5}}
	labels := []int{0, 1}
	c := mustClassifier(t, pts, labels, Config{K: 1})
	pts[0][0] = 100 // mutate caller's data
	labels[0] = 1
	got, err := c.Classify([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Error("classifier aliased caller's training data")
	}
}

func TestKDTreeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(200)
		dim := 1 + rng.Intn(5)
		k := 1 + rng.Intn(7)
		pts := make([][]float64, n)
		labels := make([]int, n)
		for i := range pts {
			pts[i] = make([]float64, dim)
			for j := range pts[i] {
				// Quantized coordinates create duplicates, exercising ties.
				pts[i][j] = float64(rng.Intn(8))
			}
			labels[i] = rng.Intn(3)
		}
		bf := newBruteForce(pts, labels)
		kd := newKDTree(pts, labels)
		for trial := 0; trial < 5; trial++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64() * 8
			}
			a, err1 := bf.Nearest(q, k)
			b, err2 := kd.Nearest(q, k)
			if err1 != nil || err2 != nil {
				return false
			}
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i].Index != b[i].Index || a[i].Distance != b[i].Distance {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNearestDeterministicWithDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	labels := []int{0, 1, 2, 3}
	for _, kd := range []bool{false, true} {
		c := mustClassifier(t, pts, labels, Config{K: 2, UseKDTree: kd})
		_, nbrs, err := c.ClassifyNeighbors([]float64{1, 1})
		if err != nil {
			t.Fatal(err)
		}
		// Tie on distance must break by index: 0 then 1.
		if nbrs[0].Index != 0 || nbrs[1].Index != 1 {
			t.Errorf("kdtree=%v: duplicate-point neighbors = %v", kd, nbrs)
		}
	}
}
