package knn

import (
	"math"
	"strings"
	"testing"
)

func TestVoteStrategyStrings(t *testing.T) {
	cases := map[VoteStrategy]string{
		MajorityVote:         "majority",
		DistanceWeightedVote: "distance-weighted",
		ProbabilityVote:      "probability",
		VoteStrategy(42):     "VoteStrategy(42)",
	}
	for s, want := range cases {
		if got := s.String(); !strings.Contains(got, want) {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestDistanceWeightedOverridesMajority(t *testing.T) {
	// Two distant class-0 neighbors vs one very close class-1 neighbor:
	// majority picks 0, distance weighting picks 1.
	pts := [][]float64{{0.1}, {10}, {11}}
	labels := []int{1, 0, 0}
	maj := mustClassifier(t, pts, labels, Config{K: 3, Vote: MajorityVote})
	dw := mustClassifier(t, pts, labels, Config{K: 3, Vote: DistanceWeightedVote})

	q := []float64{0}
	gotMaj, err := maj.Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	gotDW, err := dw.Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	if gotMaj != 0 {
		t.Errorf("majority = %d, want 0", gotMaj)
	}
	if gotDW != 1 {
		t.Errorf("distance-weighted = %d, want 1", gotDW)
	}
}

func TestProbabilityVoteMatchesDistanceWeighted(t *testing.T) {
	pts := [][]float64{{0.5}, {2}, {3}, {9}}
	labels := []int{1, 0, 0, 1}
	p := mustClassifier(t, pts, labels, Config{K: 3, Vote: ProbabilityVote})
	d := mustClassifier(t, pts, labels, Config{K: 3, Vote: DistanceWeightedVote})
	for _, q := range [][]float64{{0}, {2.5}, {8}} {
		a, err := p.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("q=%v: probability %d != distance-weighted %d", q, a, b)
		}
	}
}

func TestProbabilities(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}, {100}}
	labels := []int{0, 1, 1, 2}
	c := mustClassifier(t, pts, labels, Config{K: 3})
	probs, err := c.Probabilities([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 3 {
		t.Fatalf("probs = %v", probs)
	}
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", probs)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	// Neighbor at distance 0 (class 0) must dominate.
	if probs[0] <= probs[1] || probs[0] <= probs[2] {
		t.Errorf("zero-distance class not dominant: %v", probs)
	}
	// Class 2's point is not among the 3 nearest: probability 0.
	if probs[2] != 0 {
		t.Errorf("distant class probability = %g, want 0", probs[2])
	}
	if _, err := c.Probabilities([]float64{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestZeroDistanceNeighborsDoNotBlowUp(t *testing.T) {
	pts := [][]float64{{1}, {1}, {5}}
	labels := []int{0, 0, 1}
	c := mustClassifier(t, pts, labels, Config{K: 3, Vote: DistanceWeightedVote})
	got, err := c.Classify([]float64{1}) // two exact matches
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("exact-match vote = %d, want 0", got)
	}
	probs, err := c.Probabilities([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("probabilities = %v", probs)
		}
	}
}

// TestMajorityTieBreaking pins the documented tie rule: a vote tie breaks
// toward the class whose nearest member is closest to the query, and when
// even those distances tie, toward the lower class index.
func TestMajorityTieBreaking(t *testing.T) {
	cases := []struct {
		name string
		nbrs []Neighbor
		want int
	}{
		{
			name: "tie broken by closest member",
			nbrs: []Neighbor{
				{Label: 0, Distance: 2.0}, {Label: 0, Distance: 3.0},
				{Label: 1, Distance: 0.5}, {Label: 1, Distance: 9.0},
			},
			want: 1,
		},
		{
			name: "tie broken by closest member, reversed classes",
			nbrs: []Neighbor{
				{Label: 1, Distance: 2.0}, {Label: 1, Distance: 3.0},
				{Label: 0, Distance: 0.5}, {Label: 0, Distance: 9.0},
			},
			want: 0,
		},
		{
			name: "equal closest distances fall to lower class index",
			nbrs: []Neighbor{
				{Label: 2, Distance: 1.0}, {Label: 2, Distance: 4.0},
				{Label: 1, Distance: 1.0}, {Label: 1, Distance: 4.0},
			},
			want: 1,
		},
		{
			name: "three-way tie, all equidistant",
			nbrs: []Neighbor{
				{Label: 2, Distance: 1}, {Label: 1, Distance: 1}, {Label: 0, Distance: 1},
			},
			want: 0,
		},
		{
			name: "clear majority ignores a closer minority neighbor",
			nbrs: []Neighbor{
				{Label: 0, Distance: 5}, {Label: 0, Distance: 6},
				{Label: 1, Distance: 0.1},
			},
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := vote(tc.nbrs, 3, MajorityVote); got != tc.want {
				t.Errorf("vote = %d, want %d", got, tc.want)
			}
			// The scratch-buffer path must agree with the allocating path.
			var s Scratch
			if got := voteScratch(tc.nbrs, 3, MajorityVote, &s); got != tc.want {
				t.Errorf("voteScratch = %d, want %d", got, tc.want)
			}
			// Reused (dirty) scratch buffers must not leak tallies between
			// calls.
			if got := voteScratch(tc.nbrs, 3, MajorityVote, &s); got != tc.want {
				t.Errorf("voteScratch (reused) = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestDistanceWeightedDeterministicOnEqualWeights locks in the argmax rule
// for the weighted strategies: exactly equal class weights resolve to the
// lower class index, independent of neighbor order.
func TestDistanceWeightedDeterministicOnEqualWeights(t *testing.T) {
	// One neighbor per class at identical distance: weights are bit-for-bit
	// equal, so the argmax must settle on class 0 for every permutation.
	perms := [][]Neighbor{
		{{Label: 0, Distance: 2}, {Label: 1, Distance: 2}, {Label: 2, Distance: 2}},
		{{Label: 2, Distance: 2}, {Label: 0, Distance: 2}, {Label: 1, Distance: 2}},
		{{Label: 1, Distance: 2}, {Label: 2, Distance: 2}, {Label: 0, Distance: 2}},
	}
	for _, strategy := range []VoteStrategy{DistanceWeightedVote, ProbabilityVote} {
		for i, nbrs := range perms {
			if got := vote(nbrs, 3, strategy); got != 0 {
				t.Errorf("%v perm %d: vote = %d, want 0 (lower class index)", strategy, i, got)
			}
			var s Scratch
			if got := voteScratch(nbrs, 3, strategy, &s); got != 0 {
				t.Errorf("%v perm %d: voteScratch = %d, want 0", strategy, i, got)
			}
		}
	}
	// Two neighbors for class 2 vs one of class 1 at half the distance:
	// 1/(d+ε) weights tie only approximately, so the strictly-greater argmax
	// must still pick deterministically — the first class reaching the
	// maximal weight.
	nbrs := []Neighbor{
		{Label: 2, Distance: 4}, {Label: 2, Distance: 4}, {Label: 1, Distance: 1},
	}
	want := vote(nbrs, 3, DistanceWeightedVote)
	for i := 0; i < 100; i++ {
		if got := vote(nbrs, 3, DistanceWeightedVote); got != want {
			t.Fatalf("iteration %d: vote = %d, want stable %d", i, got, want)
		}
	}
}

func TestMajorityIsDefaultStrategy(t *testing.T) {
	pts := [][]float64{{0.1}, {10}, {11}}
	labels := []int{1, 0, 0}
	c := mustClassifier(t, pts, labels, Config{K: 3})
	got, err := c.Classify([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("default strategy is not majority: got %d", got)
	}
}
