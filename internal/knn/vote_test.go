package knn

import (
	"math"
	"strings"
	"testing"
)

func TestVoteStrategyStrings(t *testing.T) {
	cases := map[VoteStrategy]string{
		MajorityVote:         "majority",
		DistanceWeightedVote: "distance-weighted",
		ProbabilityVote:      "probability",
		VoteStrategy(42):     "VoteStrategy(42)",
	}
	for s, want := range cases {
		if got := s.String(); !strings.Contains(got, want) {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestDistanceWeightedOverridesMajority(t *testing.T) {
	// Two distant class-0 neighbors vs one very close class-1 neighbor:
	// majority picks 0, distance weighting picks 1.
	pts := [][]float64{{0.1}, {10}, {11}}
	labels := []int{1, 0, 0}
	maj := mustClassifier(t, pts, labels, Config{K: 3, Vote: MajorityVote})
	dw := mustClassifier(t, pts, labels, Config{K: 3, Vote: DistanceWeightedVote})

	q := []float64{0}
	gotMaj, err := maj.Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	gotDW, err := dw.Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	if gotMaj != 0 {
		t.Errorf("majority = %d, want 0", gotMaj)
	}
	if gotDW != 1 {
		t.Errorf("distance-weighted = %d, want 1", gotDW)
	}
}

func TestProbabilityVoteMatchesDistanceWeighted(t *testing.T) {
	pts := [][]float64{{0.5}, {2}, {3}, {9}}
	labels := []int{1, 0, 0, 1}
	p := mustClassifier(t, pts, labels, Config{K: 3, Vote: ProbabilityVote})
	d := mustClassifier(t, pts, labels, Config{K: 3, Vote: DistanceWeightedVote})
	for _, q := range [][]float64{{0}, {2.5}, {8}} {
		a, err := p.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("q=%v: probability %d != distance-weighted %d", q, a, b)
		}
	}
}

func TestProbabilities(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}, {100}}
	labels := []int{0, 1, 1, 2}
	c := mustClassifier(t, pts, labels, Config{K: 3})
	probs, err := c.Probabilities([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 3 {
		t.Fatalf("probs = %v", probs)
	}
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", probs)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	// Neighbor at distance 0 (class 0) must dominate.
	if probs[0] <= probs[1] || probs[0] <= probs[2] {
		t.Errorf("zero-distance class not dominant: %v", probs)
	}
	// Class 2's point is not among the 3 nearest: probability 0.
	if probs[2] != 0 {
		t.Errorf("distant class probability = %g, want 0", probs[2])
	}
	if _, err := c.Probabilities([]float64{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestZeroDistanceNeighborsDoNotBlowUp(t *testing.T) {
	pts := [][]float64{{1}, {1}, {5}}
	labels := []int{0, 0, 1}
	c := mustClassifier(t, pts, labels, Config{K: 3, Vote: DistanceWeightedVote})
	got, err := c.Classify([]float64{1}) // two exact matches
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("exact-match vote = %d, want 0", got)
	}
	probs, err := c.Probabilities([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("probabilities = %v", probs)
		}
	}
}

func TestMajorityIsDefaultStrategy(t *testing.T) {
	pts := [][]float64{{0.1}, {10}, {11}}
	labels := []int{1, 0, 0}
	c := mustClassifier(t, pts, labels, Config{K: 3})
	got, err := c.Classify([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("default strategy is not majority: got %d", got)
	}
}
