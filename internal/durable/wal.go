package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// WAL file format: an 8-byte magic header followed by fixed-size records.
// Each record is [int64 timestamp][float64 bits][crc32 of the previous 16
// bytes], all little-endian. The per-record checksum lets recovery tell a
// torn tail (crash mid-append) or a flipped bit from valid data: replay
// stops at the first bad record and the file is truncated back to the last
// good one.
var walMagic = [8]byte{'L', 'A', 'R', 'P', 'W', 'A', 'L', '1'}

const walRecordSize = 8 + 8 + 4

// ErrWALFormat is returned by OpenWAL when the file exists but does not
// start with the WAL magic — it is some other file, or its header itself was
// corrupted. Callers should quarantine it and start a fresh log.
var ErrWALFormat = errors.New("durable: unrecognized WAL format")

// Record is one write-ahead-log entry: an observation timestamp (unix
// seconds) and its value.
type Record struct {
	TS    int64
	Value float64
}

// WAL is an append-only observation log. Appends are buffered by the OS;
// Sync makes everything appended so far durable. Not safe for concurrent
// use — each pipeline owns its own WAL.
type WAL struct {
	f    *os.File
	path string
}

// OpenWAL opens (or creates) a write-ahead log and replays its intact
// records. A torn or corrupt tail is truncated away — the returned records
// are exactly what recovery may trust — and the log is positioned for
// appending. truncated reports how many bytes of bad tail were discarded.
func OpenWAL(path string) (w *WAL, recs []Record, truncated int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("durable: open WAL: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, 0, fmt.Errorf("durable: stat WAL: %w", err)
	}
	if info.Size() == 0 {
		// Fresh log: write and persist the header.
		if _, err = f.Write(walMagic[:]); err != nil {
			return nil, nil, 0, fmt.Errorf("durable: write WAL header: %w", err)
		}
		if err = f.Sync(); err != nil {
			return nil, nil, 0, fmt.Errorf("durable: sync WAL header: %w", err)
		}
		return &WAL{f: f, path: path}, nil, 0, nil
	}

	var magic [8]byte
	if _, rerr := io.ReadFull(f, magic[:]); rerr != nil || magic != walMagic {
		err = fmt.Errorf("durable: %s: %w", path, ErrWALFormat)
		return nil, nil, 0, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("durable: read WAL: %w", err)
	}
	good := 0
	for good+walRecordSize <= len(data) {
		rec := data[good : good+walRecordSize]
		if crc32.ChecksumIEEE(rec[:16]) != binary.LittleEndian.Uint32(rec[16:]) {
			break
		}
		recs = append(recs, Record{
			TS:    int64(binary.LittleEndian.Uint64(rec[0:8])),
			Value: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16])),
		})
		good += walRecordSize
	}
	if bad := int64(len(data) - good); bad > 0 {
		truncated = bad
		end := int64(len(walMagic)) + int64(good)
		if err = f.Truncate(end); err != nil {
			return nil, nil, 0, fmt.Errorf("durable: truncate torn WAL tail: %w", err)
		}
		if err = f.Sync(); err != nil {
			return nil, nil, 0, fmt.Errorf("durable: sync truncated WAL: %w", err)
		}
	}
	if _, err = f.Seek(0, io.SeekEnd); err != nil {
		return nil, nil, 0, fmt.Errorf("durable: seek WAL end: %w", err)
	}
	return &WAL{f: f, path: path}, recs, truncated, nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Append writes one record. The record is durable only after the next Sync.
func (w *WAL) Append(r Record) error {
	var buf [walRecordSize]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(r.TS))
	binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(r.Value))
	binary.LittleEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(buf[:16]))
	if _, err := w.f.Write(buf[:]); err != nil {
		return fmt.Errorf("durable: append WAL record: %w", err)
	}
	return nil
}

// Sync fsyncs the log: every record appended so far survives a crash.
func (w *WAL) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync WAL: %w", err)
	}
	return nil
}

// Reset discards all records, keeping the header — called after a snapshot
// has captured everything the log was protecting.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("durable: reset WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("durable: seek WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync reset WAL: %w", err)
	}
	return nil
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	syncErr := w.f.Sync()
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durable: close WAL: %w", err)
	}
	if syncErr != nil {
		return fmt.Errorf("durable: sync WAL on close: %w", syncErr)
	}
	return nil
}
