package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrFrame covers unreadable or checksum-failing framed snapshot files: a
// missing or wrong magic, a truncated footer, or a CRC mismatch. Callers
// typically quarantine the file and cold-start.
var ErrFrame = errors.New("durable: bad checksummed frame")

// WriteChecksummed frames payload as magic + payload + CRC32-IEEE footer.
// Both daemons persist their per-stream predictor snapshots in this framing;
// pair it with WriteFileAtomic so a crash leaves either the whole old frame
// or the whole new one.
func WriteChecksummed(w io.Writer, magic string, payload []byte) error {
	sum := crc32.NewIEEE()
	mw := io.MultiWriter(w, sum)
	if _, err := io.WriteString(mw, magic); err != nil {
		return err
	}
	if _, err := mw.Write(payload); err != nil {
		return err
	}
	var foot [4]byte
	c := sum.Sum32()
	foot[0] = byte(c)
	foot[1] = byte(c >> 8)
	foot[2] = byte(c >> 16)
	foot[3] = byte(c >> 24)
	_, err := w.Write(foot[:])
	return err
}

// ReadChecksummedFile reads a file written by WriteChecksummed and returns
// the payload. A missing file surfaces as os.IsNotExist; anything malformed
// wraps ErrFrame.
func ReadChecksummedFile(path, magic string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: missing or wrong magic", ErrFrame)
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	want := uint32(foot[0]) | uint32(foot[1])<<8 | uint32(foot[2])<<16 | uint32(foot[3])<<24
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrFrame)
	}
	return body[len(magic):], nil
}
