package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/acis-lab/larpredictor/internal/faults"
)

func openFresh(t *testing.T, path string) *WAL {
	t.Helper()
	w, recs, truncated, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || truncated != 0 {
		t.Fatalf("fresh WAL replayed %d records, truncated %d", len(recs), truncated)
	}
	return w
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	w := openFresh(t, path)
	want := []Record{{TS: 100, Value: 1.5}, {TS: 160, Value: -2.25}, {TS: 220, Value: 0}}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, truncated, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if truncated != 0 {
		t.Fatalf("clean log truncated %d bytes", truncated)
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r != want[i] {
			t.Fatalf("record %d: %+v want %+v", i, r, want[i])
		}
	}
	// Appending after reopen extends the log.
	if err := w2.Append(Record{TS: 280, Value: 9}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err = reopen(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[3].TS != 280 {
		t.Fatalf("after reopen-append: %+v", recs)
	}
}

func reopen(path string) (*WAL, []Record, int64, error) {
	w, recs, truncated, err := OpenWAL(path)
	if err == nil {
		w.Close()
	}
	return w, recs, truncated, err
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	w := openFresh(t, path)
	for i := 0; i < 3; i++ {
		if err := w.Append(Record{TS: int64(i) * 60, Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: a partial record lands on the tail.
	if err := faults.TornWrite(path, make([]byte, walRecordSize), 7); err != nil {
		t.Fatal(err)
	}
	_, recs, truncated, err := reopen(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if truncated != 7 {
		t.Fatalf("truncated %d bytes, want 7", truncated)
	}
	// The truncation is persistent: a further reopen sees a clean log.
	_, recs, truncated, err = reopen(path)
	if err != nil || len(recs) != 3 || truncated != 0 {
		t.Fatalf("second reopen: %d records, %d truncated, err %v", len(recs), truncated, err)
	}
}

func TestWALBitFlipStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	w := openFresh(t, path)
	for i := 0; i < 4; i++ {
		if err := w.Append(Record{TS: int64(i) * 60, Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the value of record 2 (0-indexed): replay must stop at
	// record 2 and discard it and everything after.
	off := int64(len(walMagic)) + 2*walRecordSize + 10
	if err := faults.FlipBit(path, off, 3); err != nil {
		t.Fatal(err)
	}
	_, recs, truncated, err := reopen(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records past a bit flip, want 2", len(recs))
	}
	if truncated != 2*walRecordSize {
		t.Fatalf("truncated %d bytes, want %d", truncated, 2*walRecordSize)
	}
}

func TestWALBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	if err := os.WriteFile(path, []byte("not a WAL at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenWAL(path); !errors.Is(err, ErrWALFormat) {
		t.Fatalf("bad header error = %v, want ErrWALFormat", err)
	}
	// A header truncated mid-magic is equally unrecognizable.
	if err := os.WriteFile(path, walMagic[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenWAL(path); !errors.Is(err, ErrWALFormat) {
		t.Fatalf("short header error = %v, want ErrWALFormat", err)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	w := openFresh(t, path)
	for i := 0; i < 5; i++ {
		if err := w.Append(Record{TS: int64(i), Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	// Records appended after a reset are the only ones replayed.
	if err := w.Append(Record{TS: 99, Value: 42}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, truncated, err := reopen(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0] != (Record{TS: 99, Value: 42}) || truncated != 0 {
		t.Fatalf("after reset: %+v (truncated %d)", recs, truncated)
	}
}
