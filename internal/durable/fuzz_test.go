package durable

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenWAL feeds arbitrary bytes as an on-disk WAL and checks the open
// path never panics, never returns records it cannot vouch for, and always
// leaves a usable log behind.
func FuzzOpenWAL(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LARPWAL1"))
	f.Add([]byte("LARPWAL1short"))
	f.Add([]byte("XXXXXXXX"))
	// A valid one-record log.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.wal")
	w, _, _, err := OpenWAL(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Append(Record{TS: 42, Value: 4.2}); err != nil {
		f.Fatal(err)
	}
	w.Close()
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, _, err := OpenWAL(path)
		if err != nil {
			return // rejected outright (bad magic): fine
		}
		defer w.Close()
		// Whatever was recovered, the log must keep working: append a
		// record and read the whole thing back.
		if err := w.Append(Record{TS: 7, Value: -1}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w2, recs2, truncated, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer w2.Close()
		if truncated != 0 {
			t.Fatalf("reopen truncated %d bytes of a clean log", truncated)
		}
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen saw %d records, want %d", len(recs2), len(recs)+1)
		}
		last := recs2[len(recs2)-1]
		if last.TS != 7 || last.Value != -1 {
			t.Fatalf("appended record came back as %+v", last)
		}
	})
}
