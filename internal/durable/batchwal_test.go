package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openBatch(t *testing.T, path string) (*BatchWAL, [][]byte, int64) {
	t.Helper()
	w, recs, truncated, err := OpenBatchWAL(path)
	if err != nil {
		t.Fatalf("OpenBatchWAL: %v", err)
	}
	return w, recs, truncated
}

func TestBatchWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.wal")
	w, recs, _ := openBatch(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh WAL returned %d records", len(recs))
	}
	payloads := [][]byte{[]byte("one"), {}, []byte("three-three-three"), {0, 1, 2, 255}}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != len(payloads) {
		t.Errorf("Records() = %d, want %d", w.Records(), len(payloads))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, truncated := openBatch(t, path)
	defer w2.Close()
	if truncated != 0 {
		t.Errorf("clean reopen truncated %d bytes", truncated)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("reopen returned %d records, want %d", len(recs), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(recs[i], p) {
			t.Errorf("record %d = %q, want %q", i, recs[i], p)
		}
	}
}

func TestBatchWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.wal")
	w, _, _ := openBatch(t, path)
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte{byte(i), byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, recs, truncated := openBatch(t, path)
	if len(recs) != 2 || truncated == 0 {
		t.Fatalf("torn tail: %d records (want 2), truncated %d bytes (want >0)", len(recs), truncated)
	}
	// The log must be appendable again after truncation.
	if err := w2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _ = openBatch(t, path)
	if len(recs) != 3 || string(recs[2]) != "after" {
		t.Fatalf("post-truncation append lost: %d records, tail %q", len(recs), recs[len(recs)-1])
	}
}

func TestBatchWALBitFlipStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.wal")
	w, _, _ := openBatch(t, path)
	for i := 0; i < 4; i++ {
		if err := w.Append([]byte{1, 2, 3, 4, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside record 1's payload (records are 13 bytes each here).
	data[8+13+6] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, recs, truncated := openBatch(t, path)
	defer w2.Close()
	if len(recs) != 1 {
		t.Errorf("bit flip in record 1: replay returned %d records, want 1", len(recs))
	}
	if truncated == 0 {
		t.Error("bit flip: nothing truncated")
	}
}

func TestBatchWALWrongMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL0 some bytes that are not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := OpenBatchWAL(path)
	if !errors.Is(err, ErrWALFormat) {
		t.Fatalf("foreign file: err = %v, want ErrWALFormat", err)
	}
}

func TestBatchWALResetAndTruncateRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.wal")
	w, _, _ := openBatch(t, path)
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.TruncateRecords(2); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 2 {
		t.Fatalf("after TruncateRecords(2): %d records", w.Records())
	}
	if err := w.Append([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _ := openBatch(t, path)
	if len(recs) != 3 || string(recs[2]) != "new" {
		t.Fatalf("truncate+append: records = %q", recs)
	}

	w2, _, _ := openBatch(t, path)
	if err := w2.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("only")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _ = openBatch(t, path)
	if len(recs) != 1 || string(recs[0]) != "only" {
		t.Fatalf("after reset: records = %q", recs)
	}

	w3, _, _ := openBatch(t, path)
	defer w3.Close()
	if err := w3.TruncateRecords(5); err == nil {
		t.Error("TruncateRecords beyond record count succeeded")
	}
}

func TestBatchWALHugeLengthTreatedAsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.wal")
	w, _, _ := openBatch(t, path)
	if err := w.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a record header claiming a payload far beyond the cap.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, recs, truncated := openBatch(t, path)
	defer w2.Close()
	if len(recs) != 1 || truncated == 0 {
		t.Fatalf("huge length: %d records (want 1), truncated %d", len(recs), truncated)
	}
}
