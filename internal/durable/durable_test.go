package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.db")
	for i, content := range []string{"first version", "second, longer version of the file"} {
		err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("write %d: got %q want %q", i, got, content)
		}
	}
	// No temp litter after successful writes.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "snap.db" {
		t.Fatalf("directory not clean: %v", ents)
	}
}

func TestWriteFileAtomicFailureKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.db")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write crash")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "new partial")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("old content clobbered: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file leaked: %s", e.Name())
		}
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.db")
	if err := os.WriteFile(path, []byte("corrupt bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if q != path+".corrupt" {
		t.Fatalf("quarantine path %q", q)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("original still present: %v", err)
	}
	got, err := os.ReadFile(q)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "corrupt bytes" {
		t.Fatalf("quarantined content %q", got)
	}
	// A second corruption of a rewritten file replaces the old quarantine.
	if err := os.WriteFile(path, []byte("corrupt again"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Quarantine(path); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(q); string(got) != "corrupt again" {
		t.Fatalf("quarantine not replaced: %q", got)
	}
	if _, err := Quarantine(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("quarantining a missing file succeeded")
	}
}

func TestWriteFileAtomicManyVersions(t *testing.T) {
	// Churn through versions to shake out rename/fsync ordering bugs.
	path := filepath.Join(t.TempDir(), "churn")
	for i := 0; i < 25; i++ {
		content := fmt.Sprintf("version %d", i)
		if err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "version 24" {
		t.Fatalf("final content %q", got)
	}
}
