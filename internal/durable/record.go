package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// CRC record framing shared by the batch WAL and the binary ingest wire
// protocol (internal/wire). A record is
//
//	[uint32 length][payload][uint32 crc32-IEEE of length+payload]
//
// all little-endian. The length covers the payload only; the checksum covers
// the length header plus the payload, so a flipped length bit is caught even
// when the (mis)framed payload happens to checksum clean. On disk the records
// follow a file magic; on the wire they follow the connection handshake. The
// contract is identical in both places: a reader trusts exactly the records
// whose checksums verify and treats everything else as a torn tail (disk) or
// a protocol error (wire).

// RecordOverhead is the framing cost per record: 4-byte length header plus
// 4-byte checksum footer.
const RecordOverhead = 8

// ErrRecord marks a framing-level failure: a length field exceeding the
// caller's cap, or a checksum mismatch. Wire readers close the connection on
// it; file readers truncate.
var ErrRecord = errors.New("durable: invalid record")

// AppendRecord appends one framed record holding payload to dst and returns
// the extended slice. The encoding matches BatchWAL records byte for byte.
func AppendRecord(dst, payload []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	sum := crc32.NewIEEE()
	sum.Write(hdr[:])
	sum.Write(payload)
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], sum.Sum32())
	return append(dst, foot[:]...)
}

// SplitRecord parses the record at the head of data. payload aliases data;
// rest is everything after the record. ok is false when data does not start
// with a complete intact record — too short, length above max, or checksum
// mismatch — which file recovery treats uniformly as the torn tail.
func SplitRecord(data []byte, max uint32) (payload, rest []byte, ok bool) {
	if len(data) < RecordOverhead {
		return nil, data, false
	}
	n := binary.LittleEndian.Uint32(data[:4])
	if n > max || 4+int(n)+4 > len(data) {
		return nil, data, false
	}
	end := 4 + int(n)
	if crc32.ChecksumIEEE(data[:end]) != binary.LittleEndian.Uint32(data[end:end+4]) {
		return nil, data, false
	}
	return data[4:end], data[end+4:], true
}

// ReadRecord reads one framed record from r, growing and reusing buf so a
// steady-state caller allocates nothing. payload aliases bufOut and is valid
// until the next call with the same buffer. Errors: io.EOF when the stream
// ends cleanly before a record starts, io.ErrUnexpectedEOF when it ends
// mid-record, and an error wrapping ErrRecord for an oversized length or a
// checksum mismatch (the stream is unsynchronized; the caller must stop).
func ReadRecord(r io.Reader, buf []byte, max uint32) (payload, bufOut []byte, err error) {
	if cap(buf) < RecordOverhead {
		buf = make([]byte, 0, 4096)
	}
	buf = buf[:4]
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, buf, io.EOF
		}
		return nil, buf, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(buf)
	if n > max {
		return nil, buf, fmt.Errorf("%w: length %d exceeds cap %d", ErrRecord, n, max)
	}
	total := 4 + int(n) + 4
	if cap(buf) < total {
		grown := make([]byte, total)
		copy(grown, buf[:4])
		buf = grown
	}
	buf = buf[:total]
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return nil, buf, io.ErrUnexpectedEOF
	}
	end := 4 + int(n)
	if crc32.ChecksumIEEE(buf[:end]) != binary.LittleEndian.Uint32(buf[end:]) {
		return nil, buf, fmt.Errorf("%w: checksum mismatch", ErrRecord)
	}
	return buf[4:end], buf, nil
}
