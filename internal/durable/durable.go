// Package durable provides the crash-safety primitives the monitoring
// daemon's state directory is built from: atomic snapshot files
// (write-to-temp, fsync, rename) and a per-pipeline write-ahead log of
// observations with per-record checksums and torn-tail recovery.
//
// The package deliberately knows nothing about what is inside a snapshot —
// the rrd, preddb, and core packages each own a versioned, checksummed codec
// — it only guarantees that a snapshot file is either the complete old
// version or the complete new version, never a torn mixture, and that WAL
// records survive up to the last fsync.
package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file via write(w), an fsync, and an atomic rename
// into place, then fsyncs the directory so the rename itself is durable. A
// crash at any point leaves either the previous file content or the new one,
// never a prefix. The temp file is created in the target's directory so the
// rename cannot cross filesystems.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("durable: create temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("durable: write %s: %w", filepath.Base(path), err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("durable: sync %s: %w", filepath.Base(path), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("durable: close %s: %w", filepath.Base(path), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("durable: rename into place: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory, making a completed rename durable. Filesystems
// that do not support directory fsync (some CI tmpfs setups) report an
// error; the rename is still atomic, so the error is ignored there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir: %w", err)
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// Quarantine moves a corrupt state file aside by renaming it to
// "<path>.corrupt", replacing any previous quarantined copy, and returns the
// new location. The original path becomes free for a cold-start rewrite
// while the corrupt bytes stay on disk for forensics.
func Quarantine(path string) (string, error) {
	q := path + ".corrupt"
	if err := os.Rename(path, q); err != nil {
		return "", fmt.Errorf("durable: quarantine %s: %w", filepath.Base(path), err)
	}
	_ = syncDir(filepath.Dir(path))
	return q, nil
}
