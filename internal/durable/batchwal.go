package durable

import (
	"fmt"
	"io"
	"os"
)

// BatchWAL file format: an 8-byte magic header followed by variable-length
// records. Each record is [uint32 length][payload][crc32 of length+payload],
// little-endian. Compared to the fixed-record WAL, the payload is opaque —
// predictd logs one encoded ingest batch per record — while recovery keeps
// the same contract: replay trusts exactly the prefix of records whose
// checksums verify, and the torn or corrupt tail is truncated away.
var batchWALMagic = [8]byte{'L', 'A', 'R', 'P', 'B', 'W', 'L', '1'}

// maxBatchRecord caps a single record's payload. A length field larger than
// this is treated as corruption rather than an allocation request.
const maxBatchRecord = 16 << 20

// BatchWAL is an append-only log of opaque batch payloads. Appends are
// buffered by the OS; Sync makes everything appended so far durable. Not
// safe for concurrent use — callers serialize appends (predictd holds its
// commit lock across Append).
type BatchWAL struct {
	f    *os.File
	path string
	// ends[i] is the file offset just past record i, so a reader that finds
	// record i undecodable can truncate back to the last decodable one.
	ends []int64
	// scratch holds the framed record across Append calls so a steady-state
	// appender reaches one Write syscall with no per-record allocation.
	scratch []byte
}

// OpenBatchWAL opens (or creates) a batch write-ahead log and returns its
// intact record payloads in append order. A torn or corrupt tail is truncated
// away — the returned records are exactly what recovery may trust — and the
// log is positioned for appending. truncated reports how many bytes of bad
// tail were discarded. A file that does not start with the batch-WAL magic
// fails with ErrWALFormat; callers quarantine it and start fresh.
func OpenBatchWAL(path string) (w *BatchWAL, recs [][]byte, truncated int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("durable: open batch WAL: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, 0, fmt.Errorf("durable: stat batch WAL: %w", err)
	}
	if info.Size() == 0 {
		if _, err = f.Write(batchWALMagic[:]); err != nil {
			return nil, nil, 0, fmt.Errorf("durable: write batch WAL header: %w", err)
		}
		if err = f.Sync(); err != nil {
			return nil, nil, 0, fmt.Errorf("durable: sync batch WAL header: %w", err)
		}
		return &BatchWAL{f: f, path: path}, nil, 0, nil
	}

	var magic [8]byte
	if _, rerr := io.ReadFull(f, magic[:]); rerr != nil || magic != batchWALMagic {
		err = fmt.Errorf("durable: %s: %w", path, ErrWALFormat)
		return nil, nil, 0, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("durable: read batch WAL: %w", err)
	}
	w = &BatchWAL{f: f, path: path}
	good := 0
	for {
		payload, rest, ok := SplitRecord(data[good:], maxBatchRecord)
		if !ok {
			break
		}
		recs = append(recs, append([]byte(nil), payload...))
		good = len(data) - len(rest)
		w.ends = append(w.ends, int64(len(batchWALMagic))+int64(good))
	}
	if bad := int64(len(data) - good); bad > 0 {
		truncated = bad
		end := int64(len(batchWALMagic)) + int64(good)
		if err = f.Truncate(end); err != nil {
			return nil, nil, 0, fmt.Errorf("durable: truncate torn batch WAL tail: %w", err)
		}
		if err = f.Sync(); err != nil {
			return nil, nil, 0, fmt.Errorf("durable: sync truncated batch WAL: %w", err)
		}
	}
	if _, err = f.Seek(0, io.SeekEnd); err != nil {
		return nil, nil, 0, fmt.Errorf("durable: seek batch WAL end: %w", err)
	}
	return w, recs, truncated, nil
}

// Path returns the log's file path.
func (w *BatchWAL) Path() string { return w.path }

// Records reports how many intact records the log currently holds.
func (w *BatchWAL) Records() int { return len(w.ends) }

// Append writes one record. The record is durable only after the next Sync.
func (w *BatchWAL) Append(payload []byte) error {
	if len(payload) > maxBatchRecord {
		return fmt.Errorf("durable: batch WAL record %d bytes exceeds %d", len(payload), maxBatchRecord)
	}
	// A short write here leaves a torn tail; the next open truncates it, so
	// the record is simply not committed.
	w.scratch = AppendRecord(w.scratch[:0], payload)
	if _, err := w.f.Write(w.scratch); err != nil {
		return fmt.Errorf("durable: append batch WAL record: %w", err)
	}
	prev := int64(len(batchWALMagic))
	if n := len(w.ends); n > 0 {
		prev = w.ends[n-1]
	}
	w.ends = append(w.ends, prev+4+int64(len(payload))+4)
	return nil
}

// Sync fsyncs the log: every record appended so far survives a crash.
func (w *BatchWAL) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync batch WAL: %w", err)
	}
	return nil
}

// TruncateRecords discards every record after the first keep ones — the
// recovery path for a record whose checksum verifies but whose payload no
// longer decodes (a format change or deeper corruption): truncate back to
// the last usable record and carry on, exactly like a torn tail.
func (w *BatchWAL) TruncateRecords(keep int) error {
	if keep < 0 || keep > len(w.ends) {
		return fmt.Errorf("durable: truncate to %d of %d records", keep, len(w.ends))
	}
	end := int64(len(batchWALMagic))
	if keep > 0 {
		end = w.ends[keep-1]
	}
	if err := w.f.Truncate(end); err != nil {
		return fmt.Errorf("durable: truncate batch WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("durable: seek batch WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync truncated batch WAL: %w", err)
	}
	w.ends = w.ends[:keep]
	return nil
}

// Reset discards all records, keeping the header — called after a snapshot
// has captured everything the log was protecting.
func (w *BatchWAL) Reset() error {
	if err := w.TruncateRecords(0); err != nil {
		return err
	}
	return nil
}

// Close syncs and closes the log.
func (w *BatchWAL) Close() error {
	syncErr := w.f.Sync()
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durable: close batch WAL: %w", err)
	}
	if syncErr != nil {
		return fmt.Errorf("durable: sync batch WAL on close: %w", syncErr)
	}
	return nil
}
