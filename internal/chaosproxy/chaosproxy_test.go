package chaosproxy

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startEcho returns a backend that answers every HTTP request with its own
// path, plus its address.
func startEcho(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "echo:%s", r.URL.Path)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func targetOf(ts *httptest.Server) string { return strings.TrimPrefix(ts.URL, "http://") }

// TestTransparentRelay: with all probabilities zero the proxy is invisible.
func TestTransparentRelay(t *testing.T) {
	ts := startEcho(t)
	p, err := Start("127.0.0.1:0", Config{Target: targetOf(ts), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i := 0; i < 5; i++ {
		resp, err := http.Get("http://" + p.Addr() + fmt.Sprintf("/r%d", i))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if want := fmt.Sprintf("echo:/r%d", i); string(body) != want {
			t.Fatalf("body = %q, want %q", body, want)
		}
	}
	if p.Faults() != 0 {
		t.Errorf("transparent proxy injected %d faults", p.Faults())
	}
}

// TestDeterministicFaultSchedule: the same seed yields the same per-
// connection fault pattern; a different seed yields a different one
// (checked over enough connections that collision odds are negligible).
func TestDeterministicFaultSchedule(t *testing.T) {
	ts := startEcho(t)
	pattern := func(seed int64) string {
		p, err := Start("127.0.0.1:0", Config{Target: targetOf(ts), Seed: seed, ResetProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		var b strings.Builder
		client := &http.Client{Timeout: 2 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
		for i := 0; i < 20; i++ {
			resp, err := client.Get("http://" + p.Addr() + "/x")
			if err != nil {
				b.WriteByte('F')
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			b.WriteByte('.')
		}
		return b.String()
	}
	a1, a2, b1 := pattern(7), pattern(7), pattern(8)
	if a1 != a2 {
		t.Errorf("same seed diverged: %q vs %q", a1, a2)
	}
	if a1 == b1 {
		t.Errorf("different seeds produced identical schedule %q", a1)
	}
	if !strings.Contains(a1, "F") || !strings.Contains(a1, ".") {
		t.Errorf("schedule %q should mix faults and passes at p=0.5", a1)
	}
}

// TestBlackholeTimesOutClient: a blackholed connection never reaches the
// backend; a deadlined client escapes.
func TestBlackholeTimesOutClient(t *testing.T) {
	backendHit := make(chan struct{}, 16)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backendHit <- struct{}{}
	}))
	defer ts.Close()
	p, err := Start("127.0.0.1:0", Config{
		Target: targetOf(ts), Seed: 3, BlackholeProb: 1, BlackholeDur: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	client := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, gerr := client.Get("http://" + p.Addr() + "/x")
	if gerr == nil {
		t.Fatal("blackholed request succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("client deadline did not bound the blackhole: %v", elapsed)
	}
	select {
	case <-backendHit:
		t.Error("blackholed connection reached the backend")
	default:
	}
}

// TestSetTargetRetargetsNewConnections: soak tests restart the daemon on a
// new port and repoint the proxy.
func TestSetTargetRetargetsNewConnections(t *testing.T) {
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "A") }))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "B") }))
	defer b.Close()

	p, err := Start("127.0.0.1:0", Config{Target: targetOf(a), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	get := func() string {
		resp, err := client.Get("http://" + p.Addr() + "/")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if got := get(); got != "A" {
		t.Fatalf("pre-retarget body = %q", got)
	}
	p.SetTarget(targetOf(b))
	if got := get(); got != "B" {
		t.Fatalf("post-retarget body = %q", got)
	}
}

// TestCloseSeversLiveConnections: Close unblocks in-flight connections and
// returns promptly.
func TestCloseSeversLiveConnections(t *testing.T) {
	ts := startEcho(t)
	p, err := Start("127.0.0.1:0", Config{
		Target: targetOf(ts), Seed: 1, BlackholeProb: 1, BlackholeDur: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("stuck"))

	done := make(chan error, 1)
	go func() { done <- p.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a live blackholed connection")
	}
}

// TestThrottleDeterministicSchedule: the slow-drip fault honors the same
// seeded-schedule contract as the others — which connections crawl is a
// pure function of (seed, arrival order) — and a throttled connection still
// completes, just slowly. Connections classify by elapsed time: pushing
// ~5 chunks through a 2000 B/s drip takes ≥400ms, while the transparent
// path finishes in a few milliseconds.
func TestThrottleDeterministicSchedule(t *testing.T) {
	payload := strings.Repeat("x", 1000)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, "ok")
	}))
	t.Cleanup(ts.Close)

	pattern := func(seed int64) string {
		p, err := Start("127.0.0.1:0", Config{
			Target:              targetOf(ts),
			Seed:                seed,
			ThrottleProb:        0.5,
			ThrottleBytesPerSec: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		var b strings.Builder
		client := &http.Client{Timeout: 5 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
		for i := 0; i < 12; i++ {
			start := time.Now()
			resp, err := client.Post("http://"+p.Addr()+"/x", "text/plain", strings.NewReader(payload))
			if err != nil {
				t.Fatalf("throttled connection must still complete: %v", err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if time.Since(start) >= 200*time.Millisecond {
				b.WriteByte('T') // throttled
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a1, a2, b1 := pattern(7), pattern(7), pattern(8)
	if a1 != a2 {
		t.Errorf("same seed diverged: %q vs %q", a1, a2)
	}
	if a1 == b1 {
		t.Errorf("different seeds produced identical schedule %q", a1)
	}
	if !strings.Contains(a1, "T") || !strings.Contains(a1, ".") {
		t.Errorf("schedule %q should mix throttled and clean connections at p=0.5", a1)
	}
}
