// Package chaosproxy is a deterministic fault-injecting TCP proxy for
// resilience tests. It sits between a client and a backend and, per
// connection, rolls a seeded RNG to decide whether to add latency, reset
// the connection mid-stream, deliver only a partial write before cutting
// the link, or blackhole traffic entirely (accept, then read and discard
// without forwarding).
//
// Determinism is the point: each accepted connection derives its own RNG
// from Config.Seed and the connection's index, so a failing soak run
// replays byte-for-byte identically from the same seed — chaos you can
// bisect.
package chaosproxy

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config shapes a Proxy. Probabilities are per-connection and evaluated in
// order: blackhole, reset, partial; at most one connection fault applies
// (latency stacks with any of them). All-zero probabilities make a plain
// transparent proxy.
type Config struct {
	// Target is the backend address ("host:port"). It may be changed later
	// with SetTarget — soak tests retarget the proxy at a restarted daemon.
	Target string
	// Seed drives every random decision. Same seed, same connection order,
	// same faults.
	Seed int64

	// LatencyProb adds a uniform [LatencyMin, LatencyMax] delay before the
	// connection starts proxying.
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration

	// ResetProb kills the connection with an RST (SetLinger(0)) after
	// forwarding a random prefix of the client's bytes.
	ResetProb float64

	// PartialProb forwards only part of the client's first write window and
	// then closes — the torn-request case.
	PartialProb float64

	// BlackholeProb accepts the connection and discards everything for
	// BlackholeDur (default 2s) without contacting the backend — the
	// hung-network case clients must deadline their way out of.
	BlackholeProb float64
	BlackholeDur  time.Duration

	// ThrottleProb relays the connection at ThrottleBytesPerSec (default
	// 4096) in the client→backend direction — the slow-drip link that makes
	// requests crawl instead of fail, exercising deadlines and replication
	// lag rather than retries.
	ThrottleProb        float64
	ThrottleBytesPerSec int
}

// Proxy is a running chaos proxy. Close stops the listener and every live
// connection.
type Proxy struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	target string
	conns  map[net.Conn]struct{}
	closed bool

	connIdx atomic.Uint64
	faults  atomic.Uint64 // connections that got any fault

	wg sync.WaitGroup
}

// Start listens on addr (use "127.0.0.1:0" in tests) and begins accepting.
func Start(addr string, cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, errors.New("chaosproxy: Config.Target is required")
	}
	if cfg.BlackholeDur <= 0 {
		cfg.BlackholeDur = 2 * time.Second
	}
	if cfg.ThrottleBytesPerSec <= 0 {
		cfg.ThrottleBytesPerSec = 4096
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, ln: ln, target: cfg.Target, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr is the proxy's listen address for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget repoints the proxy; existing connections keep their old
// backend, new ones dial the new target.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

// Faults reports how many accepted connections received an injected fault.
func (p *Proxy) Faults() uint64 { return p.faults.Load() }

// Close stops accepting, severs every live connection, and waits for the
// connection goroutines to finish.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		idx := p.connIdx.Add(1)
		// Each connection's RNG depends only on (seed, index): the fault
		// schedule is a pure function of the seed and arrival order.
		rng := rand.New(rand.NewSource(p.cfg.Seed + int64(idx)*0x9E3779B9))
		if !p.track(conn) {
			conn.Close()
			return
		}
		p.wg.Add(1)
		go p.serve(conn, rng)
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) serve(client net.Conn, rng *rand.Rand) {
	defer p.wg.Done()
	defer p.untrack(client)
	defer client.Close()

	if p.cfg.LatencyProb > 0 && rng.Float64() < p.cfg.LatencyProb {
		p.faults.Add(1)
		span := p.cfg.LatencyMax - p.cfg.LatencyMin
		d := p.cfg.LatencyMin
		if span > 0 {
			d += time.Duration(rng.Int63n(int64(span)))
		}
		time.Sleep(d)
	}

	switch roll := rng.Float64(); {
	case roll < p.cfg.BlackholeProb:
		p.faults.Add(1)
		p.blackhole(client)
		return
	case roll < p.cfg.BlackholeProb+p.cfg.ResetProb:
		p.faults.Add(1)
		p.relayThenCut(client, rng, true)
		return
	case roll < p.cfg.BlackholeProb+p.cfg.ResetProb+p.cfg.PartialProb:
		p.faults.Add(1)
		p.relayThenCut(client, rng, false)
		return
	case roll < p.cfg.BlackholeProb+p.cfg.ResetProb+p.cfg.PartialProb+p.cfg.ThrottleProb:
		p.faults.Add(1)
		p.relayThrottled(client)
		return
	}

	p.relay(client)
}

// blackhole reads and discards the client's bytes for the configured
// window, never touching the backend, then drops the connection.
func (p *Proxy) blackhole(client net.Conn) {
	client.SetDeadline(time.Now().Add(p.cfg.BlackholeDur))
	io.Copy(io.Discard, client)
}

// relay is the transparent path: dial the backend and pump both ways.
func (p *Proxy) relay(client net.Conn) {
	p.mu.Lock()
	target := p.target
	p.mu.Unlock()
	backend, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		return // backend down: client sees the close, retries
	}
	if !p.track(backend) {
		backend.Close()
		return
	}
	defer p.untrack(backend)
	defer backend.Close()
	done := make(chan struct{}, 2)
	go func() { io.Copy(backend, client); backend.(*net.TCPConn).CloseWrite(); done <- struct{}{} }()
	go func() { io.Copy(client, backend); client.(*net.TCPConn).CloseWrite(); done <- struct{}{} }()
	<-done
	<-done
}

// relayThrottled is the slow-drip path: a full bidirectional relay, but the
// client→backend direction trickles at ThrottleBytesPerSec. Responses flow
// back unthrottled, so the caller sees its request crawl while the
// connection itself stays healthy — the fault deadlines must catch.
func (p *Proxy) relayThrottled(client net.Conn) {
	p.mu.Lock()
	target := p.target
	p.mu.Unlock()
	backend, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		return
	}
	if !p.track(backend) {
		backend.Close()
		return
	}
	defer p.untrack(backend)
	defer backend.Close()
	done := make(chan struct{}, 2)
	go func() {
		p.throttledCopy(backend, client)
		backend.(*net.TCPConn).CloseWrite()
		done <- struct{}{}
	}()
	go func() { io.Copy(client, backend); client.(*net.TCPConn).CloseWrite(); done <- struct{}{} }()
	<-done
	<-done
}

// throttledCopy moves bytes in rate/10 chunks on a 100ms cadence. Close
// stays responsive: both conns are tracked, so Close severs them and the
// blocked Read returns — at worst one sleep interval late.
func (p *Proxy) throttledCopy(dst, src net.Conn) {
	chunk := p.cfg.ThrottleBytesPerSec / 10
	if chunk < 1 {
		chunk = 1
	}
	buf := make([]byte, chunk)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// relayThenCut forwards a bounded random prefix of the client's bytes to
// the backend and then severs the connection — with an RST when reset is
// true (SetLinger(0) discards the close handshake), or a plain close for
// the partial-write case.
func (p *Proxy) relayThenCut(client net.Conn, rng *rand.Rand, reset bool) {
	p.mu.Lock()
	target := p.target
	p.mu.Unlock()
	backend, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		return
	}
	if !p.track(backend) {
		backend.Close()
		return
	}
	defer p.untrack(backend)
	defer backend.Close()
	// Forward at most the first 1..256 bytes the client sends, then cut:
	// the backend sees a torn request. One bounded read (with a safety
	// deadline) rather than CopyN, which would stall waiting for bytes a
	// short request never sends.
	limit := 1 + rng.Intn(256)
	client.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, limit)
	if n, _ := client.Read(buf); n > 0 {
		backend.Write(buf[:n])
	}
	if reset {
		if tc, ok := client.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
	}
}
