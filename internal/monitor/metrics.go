package monitor

import "github.com/acis-lab/larpredictor/internal/obs"

// agentMetrics holds the monitoring agent's instruments, pre-bound at
// Instrument time so the sampling loop pays one atomic add per update. A
// nil *agentMetrics disables everything behind a single branch.
type agentMetrics struct {
	// ticks counts clock advances (one per sample interval).
	ticks *obs.Counter
	// samples counts raw (vm, metric) measurements collected.
	samples *obs.Counter
	// tickErrors counts ticks aborted by an RRD update failure.
	tickErrors *obs.Counter
	// profileQueries/profileErrors count profiler extractions and the
	// failed subset.
	profileQueries *obs.Counter
	profileErrors  *obs.Counter
	// vmSaves/vmRestores count round-robin-database checkpoint writes and
	// warm-restart loads; the *Errors twins count the failed subset.
	vmSaves         *obs.Counter
	vmSaveErrors    *obs.Counter
	vmRestores      *obs.Counter
	vmRestoreErrors *obs.Counter
}

// Instrument binds the agent's instrument families on r (or a labeled
// scope of a registry — see obs.Registry.With). A nil registry leaves the
// agent uninstrumented, which costs nothing on the sampling path. Call
// before the agent starts ticking; Instrument is not synchronized against
// concurrent use.
func (a *Agent) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	a.met = &agentMetrics{
		ticks: r.Counter1("larpredictor_monitor_ticks_total",
			"Sampling-clock advances (one per sample interval)."),
		samples: r.Counter1("larpredictor_monitor_samples_total",
			"Raw (vm, metric) measurements collected."),
		tickErrors: r.Counter1("larpredictor_monitor_tick_errors_total",
			"Ticks aborted by a round-robin-database update failure."),
		profileQueries: r.Counter1("larpredictor_monitor_profile_queries_total",
			"Profiler time-series extractions."),
		profileErrors: r.Counter1("larpredictor_monitor_profile_errors_total",
			"Failed profiler extractions (unknown VM/metric, no data)."),
		vmSaves: r.Counter1("larpredictor_monitor_rrd_saves_total",
			"Per-VM round-robin-database checkpoint writes."),
		vmSaveErrors: r.Counter1("larpredictor_monitor_rrd_save_errors_total",
			"Failed per-VM round-robin-database checkpoint writes."),
		vmRestores: r.Counter1("larpredictor_monitor_rrd_restores_total",
			"Per-VM round-robin-database warm-restart loads."),
		vmRestoreErrors: r.Counter1("larpredictor_monitor_rrd_restore_errors_total",
			"Failed per-VM round-robin-database warm-restart loads."),
	}
}
