package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

func TestStatusSnapshot(t *testing.T) {
	cfg := testConfig(vmtrace.VM1, vmtrace.VM2)
	a, err := NewAgent(cfg, constSampler(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	st := a.Status()
	if len(st.VMs) != 2 {
		t.Errorf("VMs = %v", st.VMs)
	}
	if st.Samples != 30*2*12 {
		t.Errorf("samples = %d", st.Samples)
	}
	if !st.SimulatedTime.Equal(cfg.Start.Add(30 * time.Minute)) {
		t.Errorf("time = %v", st.SimulatedTime)
	}
	if st.SampleInterval != "1m0s" || st.ConsolidationInterval != "5m0s" {
		t.Errorf("intervals = %q %q", st.SampleInterval, st.ConsolidationInterval)
	}
}

func TestStatusHandler(t *testing.T) {
	a, err := NewAgent(testConfig(vmtrace.VM3), constSampler(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	h := NewStatusHandler(a, func() any {
		return map[string]int{"predictions": 7}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Samples != 10*12 {
		t.Errorf("samples = %d", st.Samples)
	}
	extra, ok := st.Extra.(map[string]any)
	if !ok || extra["predictions"] != float64(7) {
		t.Errorf("extra = %#v", st.Extra)
	}

	// HEAD is a liveness probe.
	headResp, err := http.Head(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	headResp.Body.Close()
	if headResp.StatusCode != http.StatusOK {
		t.Errorf("HEAD status = %d", headResp.StatusCode)
	}

	// Other methods rejected.
	postResp, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", postResp.StatusCode)
	}
}

func TestStatusHandlerNoExtra(t *testing.T) {
	a, err := NewAgent(testConfig(vmtrace.VM5), constSampler(1))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	NewStatusHandler(a, nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Extra != nil {
		t.Errorf("extra = %#v, want nil", st.Extra)
	}
}
