package monitor

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/rrd"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// constSampler returns a fixed value for every sample.
func constSampler(v float64) Sampler {
	return func(vmtrace.VMID, vmtrace.Metric, time.Time) (float64, bool) { return v, true }
}

func testConfig(vms ...vmtrace.VMID) Config {
	cfg := DefaultConfig(vms...)
	cfg.Retention = 24 * time.Hour
	return cfg
}

func TestNewAgentValidation(t *testing.T) {
	base := testConfig(vmtrace.VM1)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no vms", func(c *Config) { c.VMs = nil }},
		{"zero sample", func(c *Config) { c.SampleInterval = 0 }},
		{"zero consolidation", func(c *Config) { c.ConsolidationInterval = 0 }},
		{"misaligned", func(c *Config) { c.SampleInterval = 7 * time.Second }},
		{"tiny retention", func(c *Config) { c.Retention = time.Minute }},
	}
	for _, c := range cases {
		cfg := base
		c.mut(&cfg)
		if _, err := NewAgent(cfg, constSampler(1)); err == nil {
			t.Errorf("%s: config accepted", c.name)
		}
	}
	if _, err := NewAgent(base, nil); err == nil {
		t.Error("nil sampler accepted")
	}
}

func TestAgentCollectsAndProfiles(t *testing.T) {
	cfg := testConfig(vmtrace.VM2)
	a, err := NewAgent(cfg, constSampler(7))
	if err != nil {
		t.Fatal(err)
	}
	// Two hours of monitoring = 24 five-minute rows.
	if _, err := a.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := a.Now().Sub(cfg.Start); got != 2*time.Hour {
		t.Errorf("clock advanced %v", got)
	}
	if a.Samples() != 120*12 { // 120 ticks × 12 metrics
		t.Errorf("samples = %d", a.Samples())
	}
	s, err := a.Profile(Query{
		VM: vmtrace.VM2, Metric: vmtrace.CPUUsedSec,
		Start: cfg.Start, End: cfg.Start.Add(2 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Interval != 5*time.Minute {
		t.Errorf("interval = %v", s.Interval)
	}
	if s.Len() < 20 {
		t.Errorf("profiled %d rows, want ~23", s.Len())
	}
	for i, v := range s.Values {
		if math.Abs(v-7) > 1e-9 {
			t.Fatalf("row %d = %g, want 7", i, v)
		}
	}
	if s.Name != "VM2_CPU_usedsec" {
		t.Errorf("name = %q", s.Name)
	}
}

func TestAgentConsolidatesOneMinuteSamplesToFiveMinuteAverages(t *testing.T) {
	// Sample value = minute index; each 5-minute row is the average of the
	// five 1-minute samples it covers.
	cfg := testConfig(vmtrace.VM3)
	tick := 0.0
	sampler := func(vmtrace.VMID, vmtrace.Metric, time.Time) (float64, bool) {
		return tick, true
	}
	a, err := NewAgent(cfg, sampler)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		tick = float64(i)
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	s, err := a.Profile(Query{
		VM: vmtrace.VM3, Metric: vmtrace.MemSize,
		Start: cfg.Start, End: cfg.Start.Add(30 * time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() < 4 {
		t.Fatalf("rows = %d", s.Len())
	}
	// Each row averages 5 consecutive integers; consecutive rows differ by
	// 5. The first row is short (the very first update only seeds the RRD
	// clock), so start the check at the second pair.
	for i := 2; i < s.Len(); i++ {
		if math.Abs((s.At(i)-s.At(i-1))-5) > 1e-9 {
			t.Fatalf("rows not 5-minute averages: %v", s.Values)
		}
	}
}

func TestProfileUnknownVMAndMetric(t *testing.T) {
	a, err := NewAgent(testConfig(vmtrace.VM1), constSampler(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Profile(Query{VM: "VM9"}); !errors.Is(err, ErrUnknownVM) {
		t.Errorf("unknown VM err = %v", err)
	}
	if _, err := a.Profile(Query{VM: vmtrace.VM1, Metric: "bogus"}); !errors.Is(err, ErrNoData) {
		t.Errorf("unknown metric err = %v", err)
	}
}

func TestProfileEmptyWindow(t *testing.T) {
	cfg := testConfig(vmtrace.VM1)
	a, err := NewAgent(cfg, constSampler(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	_, err = a.Profile(Query{
		VM: vmtrace.VM1, Metric: vmtrace.CPUUsedSec,
		Start: cfg.Start.Add(100 * time.Hour), End: cfg.Start.Add(101 * time.Hour),
	})
	if !errors.Is(err, ErrNoData) {
		t.Errorf("future window err = %v", err)
	}
}

func TestProfileForwardFillsGaps(t *testing.T) {
	// Sampler fails for a stretch: the heartbeat turns it into unknown rows
	// which Profile must forward-fill.
	cfg := testConfig(vmtrace.VM4)
	minute := 0
	sampler := func(vmtrace.VMID, vmtrace.Metric, time.Time) (float64, bool) {
		minute++
		if minute > 300*12 && minute < 420*12 { // a ~2h outage (12 metrics/tick)
			return 0, false
		}
		return 42, true
	}
	a, err := NewAgent(cfg, sampler)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(10 * time.Hour); err != nil {
		t.Fatal(err)
	}
	s, err := a.Profile(Query{
		VM: vmtrace.VM4, Metric: vmtrace.NIC1RX,
		Start: cfg.Start, End: cfg.Start.Add(10 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Values {
		if math.IsNaN(v) {
			t.Fatalf("row %d still NaN after forward fill", i)
		}
	}
	if s.Len() < 100 {
		t.Errorf("rows = %d", s.Len())
	}
}

func TestProfileMaxArchive(t *testing.T) {
	cfg := testConfig(vmtrace.VM5)
	a, err := NewAgent(cfg, constSampler(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	s, err := a.Profile(Query{
		VM: vmtrace.VM5, Metric: vmtrace.VD1Read, CF: rrd.Max,
		Start: cfg.Start, End: cfg.Start.Add(4 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Interval != time.Hour {
		t.Errorf("max archive interval = %v, want 1h", s.Interval)
	}
}

func TestTraceSamplerEndToEnd(t *testing.T) {
	// Full integration: synthetic traces → agent → profiler, with the
	// profiled series tracking the source trace.
	traces := vmtrace.StandardTraceSet(21)
	cfg := testConfig(vmtrace.VM2)
	a, err := NewAgent(cfg, TraceSampler(traces))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(12 * time.Hour); err != nil {
		t.Fatal(err)
	}
	got, err := a.Profile(Query{
		VM: vmtrace.VM2, Metric: vmtrace.CPUUsedSec,
		Start: cfg.Start, End: cfg.Start.Add(12 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := traces.Get(vmtrace.VM2, vmtrace.CPUUsedSec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() < 100 {
		t.Fatalf("profiled only %d rows", got.Len())
	}
	// A gauge update at time t covers the minute preceding t, so each
	// 5-minute row blends the trace interval it ends in with its
	// predecessor. The row must therefore lie within the span of those two
	// adjacent source values.
	for i := 1; i < got.Len()-1; i++ {
		rowTime := got.TimeAt(i)
		srcIdx := int(rowTime.Sub(src.Start) / src.Interval)
		if srcIdx < 1 || srcIdx >= src.Len() {
			continue
		}
		lo, hi := src.At(srcIdx-1), src.At(srcIdx)
		if lo > hi {
			lo, hi = hi, lo
		}
		tol := 1e-6 * (1 + math.Abs(hi))
		if got.At(i) < lo-tol || got.At(i) > hi+tol {
			t.Fatalf("row %d (%v) = %g outside source span [%g, %g]",
				i, rowTime, got.At(i), lo, hi)
		}
	}
}

func TestTraceSamplerOutOfRange(t *testing.T) {
	traces := vmtrace.StandardTraceSet(1)
	s := TraceSampler(traces)
	if _, ok := s(vmtrace.VM1, vmtrace.CPUUsedSec, time.Date(1990, 1, 1, 0, 0, 0, 0, time.UTC)); ok {
		t.Error("sampled before trace start")
	}
	if _, ok := s("VM9", vmtrace.CPUUsedSec, time.Now()); ok {
		t.Error("sampled unknown VM")
	}
}

func TestRunReturnsAdvancedDuration(t *testing.T) {
	cfg := testConfig(vmtrace.VM1)
	a, err := NewAgent(cfg, constSampler(1))
	if err != nil {
		t.Fatal(err)
	}
	// 150s with a 1-minute sample interval: only two whole ticks fit; the
	// 30s remainder is not simulated and must be reported as such.
	advanced, err := a.Run(150 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if advanced != 2*time.Minute {
		t.Errorf("Run(150s) advanced %v, want 2m0s", advanced)
	}
	if got := a.Now().Sub(cfg.Start); got != advanced {
		t.Errorf("clock moved %v but Run reported %v", got, advanced)
	}
	// Sub-interval durations advance nothing — and say so.
	if advanced, err = a.Run(30 * time.Second); err != nil || advanced != 0 {
		t.Errorf("Run(30s) = (%v, %v), want (0, nil)", advanced, err)
	}
	if advanced, err = a.Run(0); err != nil || advanced != 0 {
		t.Errorf("Run(0) = (%v, %v), want (0, nil)", advanced, err)
	}
	if _, err := a.Run(-time.Minute); !errors.Is(err, ErrBadInterval) {
		t.Errorf("Run(-1m) err = %v, want ErrBadInterval", err)
	}
}
