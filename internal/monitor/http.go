package monitor

import (
	"encoding/json"
	"net/http"
	"time"

	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// Status is the JSON document served by the status handler.
type Status struct {
	// SimulatedTime is the agent's current clock.
	SimulatedTime time.Time `json:"simulated_time"`
	// Samples is the number of raw samples collected so far.
	Samples int64 `json:"samples"`
	// VMs lists the monitored virtual machines.
	VMs []vmtrace.VMID `json:"vms"`
	// SampleInterval and ConsolidationInterval echo the configuration.
	SampleInterval        string `json:"sample_interval"`
	ConsolidationInterval string `json:"consolidation_interval"`
	// Extra carries application-level state (monitord adds prediction
	// counts and QA results here).
	Extra any `json:"extra,omitempty"`
}

// Status returns a snapshot of the agent's state.
func (a *Agent) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	vms := make([]vmtrace.VMID, len(a.cfg.VMs))
	copy(vms, a.cfg.VMs)
	return Status{
		SimulatedTime:         a.now,
		Samples:               a.samples,
		VMs:                   vms,
		SampleInterval:        a.cfg.SampleInterval.String(),
		ConsolidationInterval: a.cfg.ConsolidationInterval.String(),
	}
}

// NewStatusHandler serves the agent's status as JSON at any path, plus a
// trivial liveness response for HEAD requests. extra, when non-nil, is
// invoked per request and attached to the document — monitord uses it to
// publish pipeline counters.
func NewStatusHandler(a *Agent, extra func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodHead {
			w.WriteHeader(http.StatusOK)
			return
		}
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		st := a.Status()
		if extra != nil {
			st.Extra = extra()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
