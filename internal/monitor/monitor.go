// Package monitor simulates the paper's performance-monitoring pipeline
// (Figure 1): a monitoring agent in the VMM samples every guest VM's
// resource metrics once a minute — as VMware's vmkusage tool does — and the
// samples are consolidated into five-minute averages in a per-VM Round Robin
// Database. A profiler extracts the time series for a given [vmID, deviceID
// (encoded in the metric name), metric, time window] from the RRD, exactly
// the interface the LARPredictor consumes.
//
// Time is explicit: the agent is driven by a simulated clock so that whole
// days of monitoring replay in microseconds of test time.
package monitor

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/rrd"
	"github.com/acis-lab/larpredictor/internal/timeseries"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// Errors returned by the pipeline.
var (
	ErrUnknownVM   = errors.New("monitor: unknown VM")
	ErrNoData      = errors.New("monitor: no data in requested window")
	ErrBadInterval = errors.New("monitor: invalid interval")
)

// Sampler supplies one instantaneous measurement for (vm, metric) at time t.
// ok=false marks the sample as missing (the RRD's heartbeat machinery turns
// prolonged gaps into unknown data).
type Sampler func(vm vmtrace.VMID, metric vmtrace.Metric, t time.Time) (value float64, ok bool)

// Config parameterizes an Agent.
type Config struct {
	// VMs to monitor, each with all canonical metrics.
	VMs []vmtrace.VMID
	// SampleInterval is the raw sampling cadence (vmkusage: 1 minute).
	SampleInterval time.Duration
	// ConsolidationInterval is the RRD base step (vmkusage: 5 minutes,
	// "updates its data every five minutes with an average of the
	// one-minute statistics").
	ConsolidationInterval time.Duration
	// Retention is how much consolidated history each VM's RRD keeps.
	Retention time.Duration
	// Start anchors the simulated clock.
	Start time.Time
}

// DefaultConfig mirrors the paper's collection setup for the given VMs:
// 1-minute samples, 5-minute averages, 14 days of retention.
func DefaultConfig(vms ...vmtrace.VMID) Config {
	return Config{
		VMs:                   vms,
		SampleInterval:        time.Minute,
		ConsolidationInterval: 5 * time.Minute,
		Retention:             14 * 24 * time.Hour,
		Start:                 time.Date(2006, 10, 2, 0, 0, 0, 0, time.UTC),
	}
}

// Agent is the simulated VMM monitoring agent plus its performance database.
// It is safe for concurrent use.
type Agent struct {
	mu      sync.Mutex
	cfg     Config
	sampler Sampler
	now     time.Time
	dbs     map[vmtrace.VMID]*rrd.RRD
	metrics []vmtrace.Metric
	samples int64
	met     *agentMetrics
}

// NewAgent builds the agent and one RRD per VM (one data source per metric,
// an AVERAGE archive at the consolidation interval, plus MAX at 1-hour
// resolution for capacity review).
func NewAgent(cfg Config, sampler Sampler) (*Agent, error) {
	if len(cfg.VMs) == 0 {
		return nil, fmt.Errorf("monitor: no VMs configured: %w", ErrUnknownVM)
	}
	if cfg.SampleInterval <= 0 || cfg.ConsolidationInterval <= 0 {
		return nil, fmt.Errorf("monitor: sample %v consolidation %v: %w",
			cfg.SampleInterval, cfg.ConsolidationInterval, ErrBadInterval)
	}
	if cfg.ConsolidationInterval%cfg.SampleInterval != 0 {
		return nil, fmt.Errorf("monitor: consolidation %v not a multiple of sample %v: %w",
			cfg.ConsolidationInterval, cfg.SampleInterval, ErrBadInterval)
	}
	if cfg.Retention < cfg.ConsolidationInterval {
		return nil, fmt.Errorf("monitor: retention %v below one step: %w", cfg.Retention, ErrBadInterval)
	}
	if sampler == nil {
		return nil, errors.New("monitor: nil sampler")
	}

	metrics := vmtrace.Metrics()
	step := int64(cfg.ConsolidationInterval / time.Second)
	rows := int(cfg.Retention / cfg.ConsolidationInterval)
	hourSteps := int(time.Hour / cfg.ConsolidationInterval)
	if hourSteps < 1 {
		hourSteps = 1
	}

	a := &Agent{
		cfg:     cfg,
		sampler: sampler,
		now:     cfg.Start,
		dbs:     make(map[vmtrace.VMID]*rrd.RRD, len(cfg.VMs)),
		metrics: metrics,
	}
	for _, vm := range cfg.VMs {
		sources := make([]rrd.DS, len(metrics))
		for i, m := range metrics {
			sources[i] = rrd.DS{
				Name:      string(m),
				Type:      rrd.Gauge,
				Heartbeat: 3 * int64(cfg.SampleInterval/time.Second),
				Min:       math.NaN(),
				Max:       math.NaN(),
			}
		}
		db, err := rrd.New(step, sources, []rrd.RRASpec{
			{CF: rrd.Average, XFF: 0.5, Steps: 1, Rows: rows},
			{CF: rrd.Max, XFF: 0.5, Steps: hourSteps, Rows: rows/hourSteps + 1},
		})
		if err != nil {
			return nil, fmt.Errorf("monitor: rrd for %s: %w", vm, err)
		}
		a.dbs[vm] = db
	}
	return a, nil
}

// Now returns the simulated clock.
func (a *Agent) Now() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.now
}

// Samples returns the total number of raw samples collected.
func (a *Agent) Samples() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.samples
}

// SaveVM serializes vm's round-robin database to w in the rrd persistence
// format, so a supervisor can checkpoint the agent one VM at a time.
func (a *Agent) SaveVM(vm vmtrace.VMID, w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	db, ok := a.dbs[vm]
	if !ok {
		return fmt.Errorf("monitor: %q: %w", vm, ErrUnknownVM)
	}
	err := db.Save(w)
	if a.met != nil {
		if err != nil {
			a.met.vmSaveErrors.Inc()
		} else {
			a.met.vmSaves.Inc()
		}
	}
	return err
}

// RestoreVM replaces vm's round-robin database with one previously written
// by SaveVM. The snapshot must match the agent's configuration — same step
// and same data sources — so a stale or foreign file cannot silently change
// what is being monitored. The simulated clock is advanced to the restored
// database's last update if that is later, keeping RRD updates monotonic
// even when a crash interleaved snapshot files from different moments.
func (a *Agent) RestoreVM(vm vmtrace.VMID, r io.Reader) error {
	err := a.restoreVM(vm, r)
	if a.met != nil {
		if err != nil {
			a.met.vmRestoreErrors.Inc()
		} else {
			a.met.vmRestores.Inc()
		}
	}
	return err
}

func (a *Agent) restoreVM(vm vmtrace.VMID, r io.Reader) error {
	db, err := rrd.Load(r)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cur, ok := a.dbs[vm]
	if !ok {
		return fmt.Errorf("monitor: %q: %w", vm, ErrUnknownVM)
	}
	if db.Step() != cur.Step() {
		return fmt.Errorf("monitor: snapshot step %ds, agent step %ds: %w",
			db.Step(), cur.Step(), ErrBadInterval)
	}
	got, want := db.Sources(), cur.Sources()
	if len(got) != len(want) {
		return fmt.Errorf("monitor: snapshot has %d sources, agent %d: %w",
			len(got), len(want), ErrBadInterval)
	}
	for i := range got {
		if got[i].Name != want[i].Name || got[i].Type != want[i].Type {
			return fmt.Errorf("monitor: snapshot source %d is %s/%d, want %s/%d: %w",
				i, got[i].Name, got[i].Type, want[i].Name, want[i].Type, ErrBadInterval)
		}
	}
	a.dbs[vm] = db
	if last := time.Unix(db.LastUpdate(), 0).UTC(); last.After(a.now) {
		a.now = last
	}
	return nil
}

// RestoreClock moves the simulated clock forward to t — never backwards —
// and restores the cumulative raw-sample counter. Warm restart calls it
// with the checkpoint manifest's values after restoring the databases.
func (a *Agent) RestoreClock(t time.Time, samples int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t.After(a.now) {
		a.now = t
	}
	if samples > a.samples {
		a.samples = samples
	}
}

// Tick advances the simulated clock by one sample interval and collects one
// sample for every (vm, metric).
func (a *Agent) Tick() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.now = a.now.Add(a.cfg.SampleInterval)
	ts := a.now.Unix()
	for _, vm := range a.cfg.VMs {
		vals := make([]float64, len(a.metrics))
		for i, m := range a.metrics {
			v, ok := a.sampler(vm, m, a.now)
			if !ok {
				v = math.NaN()
			}
			vals[i] = v
		}
		if err := a.dbs[vm].Update(ts, vals...); err != nil {
			if a.met != nil {
				a.met.tickErrors.Inc()
			}
			return fmt.Errorf("monitor: update %s: %w", vm, err)
		}
		a.samples += int64(len(vals))
		if a.met != nil {
			a.met.samples.Add(uint64(len(vals)))
		}
	}
	if a.met != nil {
		a.met.ticks.Inc()
	}
	return nil
}

// Run advances the clock by d, ticking every sample interval, and returns
// the simulated time actually advanced. d is rounded DOWN to a whole number
// of sample intervals; the remainder is not simulated (a later Run call may
// pick it up by passing it again). A negative d is ErrBadInterval. On a tick
// error the duration advanced before the failure is returned alongside it.
func (a *Agent) Run(d time.Duration) (time.Duration, error) {
	if d < 0 {
		return 0, fmt.Errorf("monitor: negative run duration %v: %w", d, ErrBadInterval)
	}
	ticks := int(d / a.cfg.SampleInterval)
	for i := 0; i < ticks; i++ {
		if err := a.Tick(); err != nil {
			return time.Duration(i) * a.cfg.SampleInterval, err
		}
	}
	return time.Duration(ticks) * a.cfg.SampleInterval, nil
}

// Query selects a profiled time series: the paper's profiler interface
// ("The profiler retrieves the VM performance data, which are identified by
// vmID, deviceID, and a time window"). Device identity is encoded in the
// metric name (NIC1, VD2, ...), matching Table 1.
type Query struct {
	VM     vmtrace.VMID
	Metric vmtrace.Metric
	// Start and End bound the window (inclusive of rows ending within it).
	Start, End time.Time
	// CF selects the consolidation function (default Average).
	CF rrd.CF
}

// Profile extracts the consolidated series for a query. Interior unknown
// rows are forward-filled (a prediction pipeline needs a complete,
// equally-spaced series); leading unknowns are dropped. ErrNoData is
// returned when nothing usable remains.
func (a *Agent) Profile(q Query) (*timeseries.Series, error) {
	s, err := a.profile(q)
	if a.met != nil {
		a.met.profileQueries.Inc()
		if err != nil {
			a.met.profileErrors.Inc()
		}
	}
	return s, err
}

func (a *Agent) profile(q Query) (*timeseries.Series, error) {
	a.mu.Lock()
	db, ok := a.dbs[q.VM]
	a.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("monitor: %q: %w", q.VM, ErrUnknownVM)
	}
	idx := db.DSIndex(string(q.Metric))
	if idx < 0 {
		return nil, fmt.Errorf("monitor: %q has no metric %q: %w", q.VM, q.Metric, ErrNoData)
	}
	a.mu.Lock()
	res, err := db.Fetch(q.CF, q.Start.Unix(), q.End.Unix())
	a.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("monitor: fetch: %w", err)
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("monitor: %s/%s [%s, %s]: %w", q.VM, q.Metric, q.Start, q.End, ErrNoData)
	}

	// Drop leading unknowns, forward-fill the rest.
	values := make([]float64, 0, len(res.Rows))
	var start time.Time
	var last float64
	started := false
	for _, row := range res.Rows {
		v := row.Values[idx]
		if !started {
			if math.IsNaN(v) {
				continue
			}
			started = true
			start = time.Unix(row.End, 0).UTC()
			last = v
		}
		if math.IsNaN(v) {
			v = last
		}
		last = v
		values = append(values, v)
	}
	if !started {
		return nil, fmt.Errorf("monitor: %s/%s: all rows unknown: %w", q.VM, q.Metric, ErrNoData)
	}
	name := fmt.Sprintf("%s_%s", q.VM, q.Metric)
	interval := time.Duration(res.Resolution) * time.Second
	return timeseries.New(name, start, interval, values), nil
}

// TraceSampler adapts a synthetic trace set into a Sampler: the measurement
// at time t is the trace value whose interval contains t. Times outside the
// trace's span report ok=false.
func TraceSampler(ts *vmtrace.TraceSet) Sampler {
	return func(vm vmtrace.VMID, metric vmtrace.Metric, t time.Time) (float64, bool) {
		s, err := ts.Get(vm, metric)
		if err != nil {
			return 0, false
		}
		idx := int(t.Sub(s.Start) / s.Interval)
		if idx < 0 || idx >= s.Len() {
			return 0, false
		}
		return s.At(idx), true
	}
}
