// Package evaluation implements the paper's experimental protocol (§7.2):
// repeated random-split cross-validation of a trace, training the
// LARPredictor on one side of a randomly chosen divide and measuring
// normalized prediction MSE on the other, with the NWS cumulative-MSE and
// windowed-MSE selectors evaluated on exactly the same folds for comparison.
package evaluation

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/nws"
	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/timeseries"
	"github.com/acis-lab/larpredictor/internal/tournament"
)

// ErrDegenerate marks a constant trace, reported as "NaN" in the paper's
// Table 3: with zero variance there is nothing to predict or compare.
var ErrDegenerate = errors.New("evaluation: degenerate (constant) trace")

// Options parameterizes a trace evaluation.
type Options struct {
	// Config is the LARPredictor configuration (window size, PCA, k, pool).
	Config core.Config
	// Folds is the number of random-split repetitions (10 in the paper).
	Folds int
	// NWSWindow is the W-Cum.MSE window (2 in the paper's Figure 6).
	NWSWindow int
	// WarmNWS runs the NWS selectors over the training half before the
	// measured test half, giving them the same history the LARPredictor
	// learned from — the behaviour of a continuously running NWS, and the
	// default. Disable it to start the selectors cold on the test series
	// (a plausible alternative reading of the paper's Matlab protocol,
	// kept as an option; EXPERIMENTS.md reports both).
	WarmNWS bool
	// Seed drives the random split points.
	Seed int64
}

// DefaultOptions mirrors the paper: 10 folds, window-2 W-Cum.MSE, and NWS
// selectors warmed on the training half.
func DefaultOptions(cfg core.Config, seed int64) Options {
	return Options{Config: cfg, Folds: 10, NWSWindow: 2, Seed: seed, WarmNWS: true}
}

// TraceResult aggregates one trace's cross-validated comparison. All MSE
// fields are means over folds, in normalized space.
type TraceResult struct {
	// Name labels the trace ("VM1_CPU_usedsec").
	Name string
	// Folds is the number of folds actually run.
	Folds int

	// PLAR is the perfect-LARPredictor (oracle) MSE — the paper's P-LAR.
	PLAR float64
	// LAR is the k-NN LARPredictor MSE.
	LAR float64
	// NWSCum is the NWS cumulative-MSE selector's MSE (Cum.MSE).
	NWSCum float64
	// NWSWin is the fixed-window selector's MSE (W-Cum.MSE).
	NWSWin float64
	// Tournament is the tournament meta-selector's MSE: saturating
	// per-expert confidence counters indexed by a context hash of the
	// recent regime, run over the same folds as the other selectors.
	Tournament float64
	// Expert[i] is the MSE of pool expert i run alone; ExpertNames aligns.
	Expert      []float64
	ExpertNames []string

	// LARAccuracy is the LARPredictor's best-expert forecasting accuracy;
	// NWSAccuracy the same for the NWS cumulative selector's choices.
	LARAccuracy float64
	NWSAccuracy float64
}

// BestExpert returns the lowest single-expert MSE and its name.
func (r *TraceResult) BestExpert() (float64, string) {
	best, idx := r.Expert[0], 0
	for i, v := range r.Expert {
		if v < best {
			best, idx = v, i
		}
	}
	return best, r.ExpertNames[idx]
}

// LARBeatsBestExpert reports whether the LARPredictor matched or beat the
// best single expert — the paper's "*" cells in Table 3 ("the LARPredictor
// achieved equal or higher prediction accuracy than the best of the three
// predictors").
func (r *TraceResult) LARBeatsBestExpert() bool {
	best, _ := r.BestExpert()
	return r.LAR <= best+1e-12
}

// EvaluateTrace cross-validates one raw trace. It returns ErrDegenerate for
// constant traces (the paper's NaN rows).
func EvaluateTrace(s *timeseries.Series, opts Options) (*TraceResult, error) {
	if opts.Folds < 1 {
		return nil, fmt.Errorf("evaluation: folds %d < 1", opts.Folds)
	}
	if s.IsConstant(0) {
		return nil, fmt.Errorf("evaluation: %s: %w", s.Name, ErrDegenerate)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	splits, err := timeseries.RandomSplits(s.Values, opts.Folds, opts.Config.WindowSize, rng)
	if err != nil {
		return nil, fmt.Errorf("evaluation: %s: %w", s.Name, err)
	}

	lar, err := core.New(opts.Config)
	if err != nil {
		return nil, err
	}
	res := &TraceResult{
		Name:        s.Name,
		Folds:       len(splits),
		Expert:      make([]float64, lar.Pool().Size()),
		ExpertNames: lar.Pool().Names(),
	}

	for _, split := range splits {
		fold, err := evaluateFold(lar, split, opts)
		if err != nil {
			return nil, fmt.Errorf("evaluation: %s: %w", s.Name, err)
		}
		res.PLAR += fold.plar
		res.LAR += fold.lar
		res.NWSCum += fold.nwsCum
		res.NWSWin += fold.nwsWin
		res.Tournament += fold.tournament
		res.LARAccuracy += fold.larAcc
		res.NWSAccuracy += fold.nwsAcc
		for i, e := range fold.expert {
			res.Expert[i] += e
		}
	}
	inv := 1 / float64(len(splits))
	res.PLAR *= inv
	res.LAR *= inv
	res.NWSCum *= inv
	res.NWSWin *= inv
	res.Tournament *= inv
	res.LARAccuracy *= inv
	res.NWSAccuracy *= inv
	for i := range res.Expert {
		res.Expert[i] *= inv
	}
	return res, nil
}

// foldResult carries one fold's metrics.
type foldResult struct {
	plar, lar, nwsCum, nwsWin float64
	tournament                float64
	larAcc, nwsAcc            float64
	expert                    []float64
}

// evaluateFold trains the LARPredictor on the fold's training half and
// compares every selector on the test half. The NWS selectors run over the
// same normalized frames, warmed on the training half exactly as the real
// NWS would have been (it tracks errors continuously).
func evaluateFold(lar *core.LARPredictor, split timeseries.Split, opts Options) (foldResult, error) {
	if err := lar.Train(split.Train); err != nil {
		return foldResult{}, err
	}
	ev, err := lar.Evaluate(split.Test)
	if err != nil {
		return foldResult{}, err
	}

	// NWS selectors share the fitted pool and normalization.
	norm := lar.Normalizer()
	m := lar.Config().WindowSize
	trainFrames, err := timeseries.FrameSeries(norm.Apply(split.Train), m)
	if err != nil {
		return foldResult{}, err
	}
	testFrames, err := timeseries.FrameSeries(norm.Apply(split.Test), m)
	if err != nil {
		return foldResult{}, err
	}

	cum, err := nws.NewCumulativeMSE(lar.Pool())
	if err != nil {
		return foldResult{}, err
	}
	if opts.WarmNWS {
		if _, err := cum.Run(trainFrames); err != nil {
			return foldResult{}, err
		}
	}
	cumRes, err := cum.Run(testFrames)
	if err != nil {
		return foldResult{}, err
	}

	tourMSE, err := runTournament(lar.Pool(), trainFrames, testFrames, opts.WarmNWS)
	if err != nil {
		return foldResult{}, err
	}

	win, err := nws.NewWindowedMSE(lar.Pool(), opts.NWSWindow)
	if err != nil {
		return foldResult{}, err
	}
	if opts.WarmNWS {
		if _, err := win.Run(trainFrames); err != nil {
			return foldResult{}, err
		}
	}
	winRes, err := win.Run(testFrames)
	if err != nil {
		return foldResult{}, err
	}

	// NWS selection accuracy versus the observed best labels.
	correct := 0
	for i, sel := range cumRes.Selected {
		if sel == ev.ObservedBest[i] {
			correct++
		}
	}
	nwsAcc := 0.0
	if len(cumRes.Selected) > 0 {
		nwsAcc = float64(correct) / float64(len(cumRes.Selected))
	}

	return foldResult{
		plar:       ev.OracleMSE,
		lar:        ev.LARMSE,
		nwsCum:     cumRes.MSE,
		nwsWin:     winRes.MSE,
		tournament: tourMSE,
		larAcc:     ev.ForecastAccuracy,
		nwsAcc:     nwsAcc,
		expert:     ev.ExpertMSE,
	}, nil
}

// runTournament scores the tournament meta-selector over the fold's test
// frames: select with the context-indexed counters, publish the chosen
// expert's forecast, then update every expert's counter against the target.
// With warm it first observes the training half — the same treatment the
// NWS selectors get.
func runTournament(pool *predictors.Pool, trainFrames, testFrames []timeseries.Frame, warm bool) (float64, error) {
	tour, err := tournament.New(tournament.Config{Experts: pool.Size()})
	if err != nil {
		return 0, err
	}
	buf := make([]float64, pool.Size())
	if warm {
		for _, f := range trainFrames {
			preds, err := pool.PredictAllInto(buf, f.Window)
			if err != nil {
				return 0, err
			}
			tour.Observe(preds, f.Target)
		}
	}
	var sumSq float64
	for _, f := range testFrames {
		preds, err := pool.PredictAllInto(buf, f.Window)
		if err != nil {
			return 0, err
		}
		d := preds[tour.Select()] - f.Target
		sumSq += d * d
		tour.Observe(preds, f.Target)
	}
	if len(testFrames) == 0 {
		return 0, nil
	}
	return sumSq / float64(len(testFrames)), nil
}
