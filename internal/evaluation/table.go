package evaluation

import (
	"fmt"
	"strings"
)

// Table is a minimal text-table renderer for the experiment drivers: left-
// aligned first column, right-aligned numeric columns, a rule under the
// header — the layout the paper's tables use.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends one row; missing cells render empty, extras are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatMSE renders an MSE the way the paper's tables do (4 significant
// digits).
func FormatMSE(v float64) string { return fmt.Sprintf("%.4f", v) }

// FormatPct renders a fraction as a percentage with two decimals.
func FormatPct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
