package evaluation

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/timeseries"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

func testTrace(t *testing.T) *timeseries.Series {
	t.Helper()
	ts := vmtrace.StandardTraceSet(101)
	s, err := ts.Get(vmtrace.VM2, vmtrace.CPUUsedSec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEvaluateTraceBasics(t *testing.T) {
	s := testTrace(t)
	opts := DefaultOptions(core.DefaultConfig(5), 7)
	res, err := EvaluateTrace(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folds != 10 {
		t.Errorf("folds = %d", res.Folds)
	}
	if res.Name != s.Name {
		t.Errorf("name = %q", res.Name)
	}
	if len(res.Expert) != 3 || len(res.ExpertNames) != 3 {
		t.Fatalf("experts = %v %v", res.Expert, res.ExpertNames)
	}
	// Oracle must dominate everything it is compared with.
	for i, e := range res.Expert {
		if res.PLAR > e+1e-9 {
			t.Errorf("PLAR %g > expert %s %g", res.PLAR, res.ExpertNames[i], e)
		}
	}
	if res.PLAR > res.LAR+1e-9 {
		t.Errorf("PLAR %g > LAR %g", res.PLAR, res.LAR)
	}
	if res.PLAR > res.NWSCum+1e-9 || res.PLAR > res.NWSWin+1e-9 {
		t.Errorf("PLAR %g > NWS (%g, %g)", res.PLAR, res.NWSCum, res.NWSWin)
	}
	for _, acc := range []float64{res.LARAccuracy, res.NWSAccuracy} {
		if acc < 0 || acc > 1 {
			t.Errorf("accuracy out of range: %g", acc)
		}
	}
	best, name := res.BestExpert()
	if name == "" || best <= 0 {
		t.Errorf("BestExpert = (%g, %q)", best, name)
	}
}

func TestEvaluateTraceDeterministicForSeed(t *testing.T) {
	s := testTrace(t)
	opts := DefaultOptions(core.DefaultConfig(5), 3)
	a, err := EvaluateTrace(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateTrace(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.LAR != b.LAR || a.PLAR != b.PLAR || a.NWSCum != b.NWSCum || a.LARAccuracy != b.LARAccuracy {
		t.Error("evaluation not deterministic for a fixed seed")
	}
}

func TestEvaluateTraceRejectsDegenerate(t *testing.T) {
	flat := timeseries.FromValues("flat", make([]float64, 300))
	opts := DefaultOptions(core.DefaultConfig(5), 1)
	if _, err := EvaluateTrace(flat, opts); !errors.Is(err, ErrDegenerate) {
		t.Errorf("err = %v, want ErrDegenerate", err)
	}
}

func TestEvaluateTraceRejectsShort(t *testing.T) {
	short := timeseries.FromValues("short", []float64{1, 2, 3, 4, 5, 6, 7})
	opts := DefaultOptions(core.DefaultConfig(5), 1)
	if _, err := EvaluateTrace(short, opts); !errors.Is(err, timeseries.ErrShort) {
		t.Errorf("err = %v, want ErrShort", err)
	}
	opts.Folds = 0
	if _, err := EvaluateTrace(testTrace(t), opts); err == nil {
		t.Error("folds=0 accepted")
	}
}

func TestLARBeatsBestExpertFlag(t *testing.T) {
	r := &TraceResult{
		LAR:         0.5,
		Expert:      []float64{0.6, 0.7},
		ExpertNames: []string{"A", "B"},
	}
	if !r.LARBeatsBestExpert() {
		t.Error("LAR 0.5 vs best 0.6 should be a win")
	}
	r.LAR = 0.65
	if r.LARBeatsBestExpert() {
		t.Error("LAR 0.65 vs best 0.6 should not be a win")
	}
	// Exact tie counts as a win ("equal or higher prediction accuracy").
	r.LAR = 0.6
	if !r.LARBeatsBestExpert() {
		t.Error("tie should count as a win")
	}
}

func TestEvaluationShapeOnHeterogeneousTraces(t *testing.T) {
	// Across a trace set with smooth and bursty members, the evaluation
	// must produce finite results and LAR accuracy above random (1/3).
	ts := vmtrace.StandardTraceSet(55)
	names := []struct {
		vm vmtrace.VMID
		m  vmtrace.Metric
	}{
		{vmtrace.VM2, vmtrace.NIC1RX},  // bursty
		{vmtrace.VM1, vmtrace.MemSize}, // stepwise-smooth
	}
	for _, c := range names {
		s, err := ts.Get(c.vm, c.m)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(5)
		if c.vm == vmtrace.VM1 {
			cfg = core.DefaultConfig(16)
		}
		res, err := EvaluateTrace(s, DefaultOptions(cfg, 9))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, v := range []float64{res.LAR, res.PLAR, res.NWSCum, res.NWSWin} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite MSE", s.Name)
			}
		}
		if res.LARAccuracy <= 1.0/3 {
			t.Errorf("%s: LAR accuracy %g not above random", s.Name, res.LARAccuracy)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Metric", "LAR", "LAST")
	tb.AddRow("CPU_usedsec", "0.9508", "1.1436")
	tb.AddRow("x") // short row pads
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Metric") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "0.9508") {
		t.Errorf("row = %q", lines[2])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule = %q", lines[1])
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatMSE(0.95083); got != "0.9508" {
		t.Errorf("FormatMSE = %q", got)
	}
	if got := FormatPct(0.5598); got != "55.98%" {
		t.Errorf("FormatPct = %q", got)
	}
}
