package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/faults"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// TestOnlineHealthTransitionMetrics drives an instrumented Online through
// degradation using the PR 1 fault injectors and checks that the metrics
// registry mirrors the health state machine: every transition is counted on
// larpredictor_health_transitions_total{from,to}, and the retrain/breaker
// instruments agree with HealthStats.
func TestOnlineHealthTransitionMetrics(t *testing.T) {
	cfg := resilienceCfg()
	cfg.FailureLimit = -1 // stay Degraded; terminal Failed has its own test
	reg := obs.NewRegistry()
	o, err := NewOnline(cfg, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	// A calm sinusoid poisoned by a periodic NaN burst: one NaN every ten
	// samples, so every 20-sample training window holds at least one and
	// each (re)train attempt fails — the same schedule as
	// TestOnlineFailedTrainArmsBackoff, but produced by the faults package
	// rather than by hand.
	const n = 500
	step := 5 * time.Minute
	epoch := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	clean := make([]float64, n)
	for i := range clean {
		clean[i] = 10 * math.Sin(float64(i)*0.05)
	}
	poisoned, _ := faults.InjectValues(clean, vmtrace.VMID("VM1"), "CPU_usedsec", epoch, step,
		&faults.NaNBurst{Epoch: epoch, Start: 9 * step, Len: step, Period: 10 * step})

	for i, v := range poisoned {
		if _, err := o.Observe(v); err != nil {
			t.Fatalf("observation %d: %v", i, err)
		}
	}
	if got := o.Health(); got != Degraded && got != Fallback {
		t.Fatalf("health = %s after NaN bursts, want Degraded or Fallback", got)
	}
	// One degraded forecast so the selector source shows up in the family.
	if _, err := o.Forecast(); err != nil {
		t.Fatal(err)
	}

	hs := o.HealthStats()
	assertCounter := func(name string, labels []string, want uint64) {
		t.Helper()
		got := reg.Counter(name, "", labelNames(labels)...).WithLabels(labelValues(labels)...).Value()
		if got != want {
			t.Errorf("%s%v = %d, want %d", name, labels, got, want)
		}
	}
	assertCounter("larpredictor_retrain_failures_total", nil, uint64(hs.RetrainFailures))
	assertCounter("larpredictor_breaker_trips_total", nil, uint64(hs.BreakerTrips))
	assertCounter("larpredictor_health_transitions_total",
		[]string{"from", "Healthy", "to", "Degraded"}, 1)
	degraded := uint64(hs.DegradedForecasts)
	lastResort := uint64(hs.FallbackForecasts)
	assertCounter("larpredictor_forecasts_total", []string{"source", SourceSelector}, degraded)
	assertCounter("larpredictor_forecasts_total", []string{"source", SourceLastResort}, lastResort)
	if degraded+lastResort == 0 {
		t.Error("degraded forecast counted on neither fallback source")
	}

	if got := reg.Gauge1("larpredictor_health_state", "").Value(); got != float64(o.Health()) {
		t.Errorf("health_state gauge = %v, want %v", got, float64(o.Health()))
	}
	if got := reg.Gauge1("larpredictor_breaker_open", "").Value(); got != 1 {
		t.Errorf("breaker_open gauge = %v while the breaker is open", got)
	}

	// Recovery: a clean calm stream must close the loop with a counted
	// Degraded/Fallback -> Healthy transition.
	phase := n
	feedCalm(t, o, 300, &phase)
	if got := o.Health(); got != Healthy {
		t.Fatalf("health = %s after clean recovery stream, want Healthy", got)
	}
	vec := reg.Counter("larpredictor_health_transitions_total", "", "from", "to")
	recovered := vec.WithLabels("Degraded", "Healthy").Value() +
		vec.WithLabels("Fallback", "Healthy").Value() +
		vec.WithLabels("Fallback", "Degraded").Value()
	if recovered == 0 {
		t.Error("recovery left no transition back toward Healthy in the metrics")
	}
	if got := reg.Gauge1("larpredictor_health_state", "").Value(); got != float64(Healthy) {
		t.Errorf("health_state gauge = %v after recovery, want 0", got)
	}

	// The exposition must render the transition family with both labels.
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(),
		`larpredictor_health_transitions_total{from="Healthy",to="Degraded"} 1`) {
		t.Errorf("exposition missing the Healthy->Degraded transition:\n%s", sb.String())
	}
}

// labelNames/labelValues split a flat [name, value, name, value] list.
func labelNames(kv []string) []string {
	var out []string
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, kv[i])
	}
	return out
}

func labelValues(kv []string) []string {
	var out []string
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, kv[i+1])
	}
	return out
}
