package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/timeseries"
)

// arSeries generates an AR(1) realization with the given coefficient.
func arSeries(seed int64, n int, phi, noise float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := 1; i < n; i++ {
		v[i] = phi*v[i-1] + noise*rng.NormFloat64()
	}
	return v
}

// regimeSeries alternates between a smooth LAST-friendly regime and a noisy
// mean-reverting SW_AVG-friendly regime, forcing best-expert switches.
func regimeSeries(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	level := 0.0
	for i := 1; i < n; i++ {
		block := (i / 40) % 2
		if block == 0 { // smooth random walk
			level += 0.05 * rng.NormFloat64()
			v[i] = level
		} else { // heavy oscillation around the level
			v[i] = level + 3*math.Sin(float64(i)*2.5) + rng.NormFloat64()
		}
	}
	return v
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{WindowSize: 1, PCAComponents: 2, K: 3},                           // window too small
		{WindowSize: 5, PCAComponents: 2, K: 0},                           // bad k
		{WindowSize: 5, PCAComponents: 0, K: 3},                           // no PCA rule
		{WindowSize: 5, PCAComponents: 0, K: 3, MinFractionVariance: 1.5}, // bad fraction
	}
	for i, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
	// Pool order exceeding window size is rejected.
	cfg := DefaultConfig(3)
	cfg.Pool = predictors.NewPool(predictors.NewSWAvg(10))
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Error("accepted pool with order > window")
	}
	cfg = DefaultConfig(3)
	cfg.Pool = predictors.NewPool()
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Error("accepted empty pool")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(16)
	if cfg.WindowSize != 16 || cfg.PCAComponents != 2 || cfg.K != 3 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := l.Pool().Names()
	want := []string{"LAST", "AR", "SW_AVG"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("default pool = %v", names)
		}
	}
}

func TestTrainRequiresEnoughSamples(t *testing.T) {
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(make([]float64, 6)); !errors.Is(err, timeseries.ErrShort) {
		t.Errorf("err = %v, want ErrShort", err)
	}
	if l.Trained() {
		t.Error("failed Train left predictor marked trained")
	}
}

func TestForecastBeforeTrain(t *testing.T) {
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Forecast(make([]float64, 5)); !errors.Is(err, ErrNotTrained) {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	if _, err := l.Evaluate(make([]float64, 50)); !errors.Is(err, ErrNotTrained) {
		t.Errorf("Evaluate err = %v, want ErrNotTrained", err)
	}
}

func TestTrainForecastSmoke(t *testing.T) {
	series := arSeries(1, 300, 0.8, 1)
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(series[:150]); err != nil {
		t.Fatal(err)
	}
	if !l.Trained() {
		t.Fatal("not trained")
	}
	if len(l.TrainingLabels()) != 150-5 {
		t.Errorf("training labels = %d, want 145", len(l.TrainingLabels()))
	}
	p, err := l.Forecast(series[150:155])
	if err != nil {
		t.Fatal(err)
	}
	if p.Selected < 0 || p.Selected >= l.Pool().Size() {
		t.Errorf("selected = %d", p.Selected)
	}
	if p.SelectedName != l.Pool().At(p.Selected).Name() {
		t.Error("SelectedName mismatch")
	}
	if math.IsNaN(p.Value) || math.IsNaN(p.Normalized) {
		t.Error("NaN forecast")
	}
	// Value and Normalized must be consistent under the normalizer.
	if diff := math.Abs(l.Normalizer().Invert(p.Normalized) - p.Value); diff > 1e-9 {
		t.Errorf("Value/Normalized inconsistent by %g", diff)
	}
}

func TestForecastWindowTooShort(t *testing.T) {
	series := arSeries(2, 100, 0.5, 1)
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(series); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Forecast([]float64{1, 2}); !errors.Is(err, predictors.ErrWindowTooShort) {
		t.Errorf("err = %v, want ErrWindowTooShort", err)
	}
}

func TestForecastUsesTrailingWindow(t *testing.T) {
	series := arSeries(3, 200, 0.9, 1)
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(series); err != nil {
		t.Fatal(err)
	}
	long := series[100:120]
	short := series[115:120]
	a, err := l.Forecast(long)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Forecast(short)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Selected != b.Selected {
		t.Error("Forecast should only use the trailing WindowSize samples")
	}
}

func TestEvaluateInvariants(t *testing.T) {
	series := regimeSeries(5, 400)
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(series[:200]); err != nil {
		t.Fatal(err)
	}
	res, err := l.Evaluate(series[200:])
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 200-5 {
		t.Errorf("N = %d, want 195", res.N)
	}
	// Oracle dominates LAR, which is sandwiched by construction:
	// OracleMSE <= LARMSE (oracle picks per-frame best).
	if res.OracleMSE > res.LARMSE+1e-12 {
		t.Errorf("oracle MSE %g > LAR MSE %g", res.OracleMSE, res.LARMSE)
	}
	// Oracle dominates every single expert.
	for i, e := range res.ExpertMSE {
		if res.OracleMSE > e+1e-12 {
			t.Errorf("oracle MSE %g > expert %d MSE %g", res.OracleMSE, i, e)
		}
	}
	if res.ForecastAccuracy < 0 || res.ForecastAccuracy > 1 {
		t.Errorf("accuracy = %g", res.ForecastAccuracy)
	}
	// Accuracy consistency with the label arrays.
	correct := 0
	for i := range res.Selected {
		if res.Selected[i] == res.ObservedBest[i] {
			correct++
		}
	}
	if got := float64(correct) / float64(res.N); math.Abs(got-res.ForecastAccuracy) > 1e-12 {
		t.Errorf("accuracy %g inconsistent with labels %g", res.ForecastAccuracy, got)
	}
	// LARMSE consistency with Forecasts/Targets.
	mse, err := timeseries.MSE(res.Forecasts, res.Targets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mse-res.LARMSE) > 1e-9 {
		t.Errorf("LARMSE %g != recomputed %g", res.LARMSE, mse)
	}
	best, idx := res.BestExpertMSE()
	if idx < 0 || idx >= len(res.ExpertMSE) || best != res.ExpertMSE[idx] {
		t.Errorf("BestExpertMSE = (%g,%d)", best, idx)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	series := regimeSeries(6, 300)
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(series[:150]); err != nil {
		t.Fatal(err)
	}
	a, err := l.Evaluate(series[150:])
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Evaluate(series[150:])
	if err != nil {
		t.Fatal(err)
	}
	if a.LARMSE != b.LARMSE || a.ForecastAccuracy != b.ForecastAccuracy {
		t.Error("Evaluate is not deterministic despite parallel frames")
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatal("selection timeline not deterministic")
		}
	}
}

func TestLARBeatsWorstExpertOnRegimeSeries(t *testing.T) {
	// On a regime-switching series the adaptive predictor must beat the
	// worst single expert (a very weak but meaningful sanity bound) and be
	// within striking distance of the best.
	series := regimeSeries(7, 600)
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(series[:300]); err != nil {
		t.Fatal(err)
	}
	res, err := l.Evaluate(series[300:])
	if err != nil {
		t.Fatal(err)
	}
	worst := res.ExpertMSE[0]
	for _, e := range res.ExpertMSE {
		if e > worst {
			worst = e
		}
	}
	if res.LARMSE >= worst {
		t.Errorf("LAR MSE %g not better than worst expert %g", res.LARMSE, worst)
	}
	// Forecast accuracy must beat uniform random selection (1/3) on this
	// learnable series.
	if res.ForecastAccuracy < 1.0/3 {
		t.Errorf("forecast accuracy %g below random baseline", res.ForecastAccuracy)
	}
}

func TestDisablePCAAblation(t *testing.T) {
	series := regimeSeries(8, 300)
	cfg := DefaultConfig(5)
	cfg.DisablePCA = true
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(series[:150]); err != nil {
		t.Fatal(err)
	}
	res, err := l.Evaluate(series[150:])
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 {
		t.Fatal("no frames evaluated")
	}
}

func TestKDTreeBackendMatchesBruteForce(t *testing.T) {
	series := regimeSeries(9, 400)
	mk := func(kd bool) *EvalResult {
		cfg := DefaultConfig(5)
		cfg.UseKDTree = kd
		l, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Train(series[:200]); err != nil {
			t.Fatal(err)
		}
		res, err := l.Evaluate(series[200:])
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bf, kd := mk(false), mk(true)
	if bf.LARMSE != kd.LARMSE || bf.ForecastAccuracy != kd.ForecastAccuracy {
		t.Error("kd-tree backend changed results")
	}
}

func TestRetrainReplacesState(t *testing.T) {
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	a := arSeries(10, 200, 0.9, 1)
	if err := l.Train(a); err != nil {
		t.Fatal(err)
	}
	normA := l.Normalizer()
	b := make([]float64, 200)
	for i := range b {
		b[i] = 1000 + a[i]
	}
	if err := l.Train(b); err != nil {
		t.Fatal(err)
	}
	normB := l.Normalizer()
	if normA.Mean == normB.Mean {
		t.Error("retrain did not refresh normalization")
	}
}

func TestMinVarianceSelectionConfig(t *testing.T) {
	cfg := Config{WindowSize: 8, PCAComponents: 0, MinFractionVariance: 0.95, K: 3}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := regimeSeries(11, 300)
	if err := l.Train(series[:150]); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Evaluate(series[150:]); err != nil {
		t.Fatal(err)
	}
}

func TestConstantTrainingSeries(t *testing.T) {
	// A fully constant trace must train and predict without NaN.
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 100)
	for i := range v {
		v[i] = 42
	}
	if err := l.Train(v); err != nil {
		t.Fatal(err)
	}
	p, err := l.Forecast(v[:5])
	if err != nil {
		t.Fatal(err)
	}
	if p.Value != 42 {
		t.Errorf("constant-series forecast = %g, want 42", p.Value)
	}
}
