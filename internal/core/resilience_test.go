package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// resilienceCfg is a small, fast configuration for exercising the health
// state machine: window 5, train on 20, audit 10.
func resilienceCfg() OnlineConfig {
	cfg := onlineCfg(5, 20)
	return cfg
}

// feedCalm drives n observations of a highly predictable slow sinusoid,
// forecasting first when the model is trained (so the QA audit stays fed).
func feedCalm(t *testing.T, o *Online, n int, phase *int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if o.Trained() && o.Health() == Healthy {
			if _, err := o.Forecast(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := o.Observe(10 * math.Sin(float64(*phase)*0.05)); err != nil {
			t.Fatal(err)
		}
		*phase++
	}
}

// TestOnlineFailedTrainArmsBackoff is the retrain-thrash regression test:
// when every (re)train attempt fails — here because the training window
// always contains a NaN — the predictor must back off exponentially and
// eventually rest on the circuit breaker's probe schedule, not retry on
// every observation. Observe must absorb the failures, and the predictor
// must degrade visibly instead of silently staying Healthy.
func TestOnlineFailedTrainArmsBackoff(t *testing.T) {
	cfg := resilienceCfg()
	cfg.FailureLimit = -1 // stay Degraded forever; Failed has its own test
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		v := 10 * math.Sin(float64(i)*0.05)
		if i%10 == 9 {
			v = math.NaN() // the 20-sample train window always holds one
		}
		if _, err := o.Observe(v); err != nil {
			t.Fatalf("observation %d: Observe returned %v; train failures must be absorbed", i, err)
		}
	}
	hs := o.HealthStats()
	if hs.RetrainFailures < 2 {
		t.Fatalf("only %d retrain failures; the failing window was never retried", hs.RetrainFailures)
	}
	// The regression: without backoff the predictor retries on (nearly)
	// every observation once the first attempt fails — hundreds of
	// attempts. Exponential backoff plus the breaker's probe schedule
	// bounds it to a handful.
	if hs.RetrainFailures > 15 {
		t.Errorf("%d retrain attempts over %d observations: failed train did not arm backoff",
			hs.RetrainFailures, n)
	}
	if hs.BreakerTrips == 0 {
		t.Error("breaker never tripped despite persistent train failures")
	}
	if !hs.BreakerOpen {
		t.Error("breaker not open while failures persist")
	}
	if got := o.Health(); got != Degraded && got != Fallback {
		t.Errorf("health = %s, want Degraded or Fallback", got)
	}
	if o.LastError() == nil {
		t.Error("LastError lost the train failure")
	}
	if hs.NextAttemptIn <= 0 {
		t.Error("no backoff armed after a failed attempt")
	}
	// Degraded, not dead: forecasts still flow from the fallback ladder.
	p, err := o.Forecast()
	if err != nil {
		t.Fatalf("Forecast while degraded: %v", err)
	}
	if p.Source == SourceLAR {
		t.Errorf("degraded forecast claims Source %q", p.Source)
	}
}

// TestOnlineFailureBudgetTerminal drives the predictor past FailureLimit
// consecutive failed retrains and checks the terminal Failed contract.
func TestOnlineFailureBudgetTerminal(t *testing.T) {
	cfg := resilienceCfg()
	cfg.BreakerThreshold = 2
	cfg.FailureLimit = 3
	cfg.ProbeSpacing = 15
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400 && o.Health() != Failed; i++ {
		v := 10 * math.Sin(float64(i)*0.05)
		if i%10 == 9 {
			v = math.NaN()
		}
		if _, err := o.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if o.Health() != Failed {
		t.Fatalf("health = %s after exhausting the failure budget, want Failed", o.Health())
	}
	if _, err := o.Forecast(); !errors.Is(err, ErrFailed) {
		t.Errorf("Forecast in Failed state: err = %v, want ErrFailed", err)
	}
	// Failed is terminal: no further attempts, but Observe stays usable.
	before := o.HealthStats().RetrainFailures
	for i := 0; i < 100; i++ {
		if _, err := o.Observe(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if after := o.HealthStats().RetrainFailures; after != before {
		t.Errorf("Failed predictor kept retraining: %d -> %d failures", before, after)
	}
}

// TestOnlineFallbackLadder walks the ladder end to end: Healthy serves LAR;
// a failed retrain degrades to the windowed-MSE selector; a non-finite
// window drops to the last-resort rung; clean data recovers to Healthy.
func TestOnlineFallbackLadder(t *testing.T) {
	cfg := resilienceCfg()
	cfg.MinRetrainSpacing = 10
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	phase := 0
	feedCalm(t, o, 40, &phase)
	if o.Health() != Healthy || !o.Trained() {
		t.Fatalf("health = %s trained=%v after calm warm-up", o.Health(), o.Trained())
	}
	p, err := o.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != SourceLAR {
		t.Fatalf("healthy forecast Source = %q, want %q", p.Source, SourceLAR)
	}

	// Poison the training window, then force a QA breach: the retrain
	// attempt fails on the NaN and the predictor degrades.
	if _, err := o.Observe(math.NaN()); err != nil {
		t.Fatal(err)
	}
	for i := 0; o.Health() == Healthy && i < 30; i++ {
		if _, err := o.Forecast(); err != nil {
			t.Fatal(err)
		}
		v := 1000.0
		if i%2 == 0 {
			v = -1000
		}
		if _, err := o.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if o.Health() != Degraded {
		t.Fatalf("health = %s after failed retrain, want Degraded", o.Health())
	}
	p, err = o.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != SourceSelector {
		t.Errorf("degraded forecast Source = %q, want %q", p.Source, SourceSelector)
	}
	if p.SelectedName == "" {
		t.Error("degraded forecast has no selected expert name")
	}
	if o.HealthStats().DegradedForecasts == 0 {
		t.Error("degraded forecast not counted")
	}

	// Non-finite trailing window: even the selector is unusable, so the
	// ladder drops to the last finite observation.
	if _, err := o.Observe(42.5); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Observe(math.NaN()); err != nil {
		t.Fatal(err)
	}
	if o.Health() != Fallback {
		t.Fatalf("health = %s with NaN in the window, want Fallback", o.Health())
	}
	p, err = o.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != SourceLastResort {
		t.Errorf("fallback forecast Source = %q, want %q", p.Source, SourceLastResort)
	}
	if p.Value != 42.5 {
		t.Errorf("fallback forecast = %g, want last finite observation 42.5", p.Value)
	}
	if o.HealthStats().FallbackForecasts == 0 {
		t.Error("fallback forecast not counted")
	}

	// Recovery: calm data flushes the NaN out of the train window; the
	// backoff expires; the retry succeeds and the ladder climbs back.
	for i := 0; i < 300 && o.Health() != Healthy; i++ {
		feedCalm(t, o, 1, &phase)
	}
	if o.Health() != Healthy {
		t.Fatalf("health = %s after recovery feed, want Healthy", o.Health())
	}
	p, err = o.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != SourceLAR {
		t.Errorf("recovered forecast Source = %q, want %q", p.Source, SourceLAR)
	}
}

// TestOnlineBreakerProbesAndCloses opens the breaker with repeated train
// failures, then removes the fault and checks the half-open choreography:
// a probe retrain succeeds, LAR serves during confirmation, and the breaker
// closes back to Healthy after a clean window.
func TestOnlineBreakerProbesAndCloses(t *testing.T) {
	cfg := resilienceCfg()
	cfg.BreakerThreshold = 2
	cfg.ProbeSpacing = 12
	cfg.HalfOpenWindow = 15
	cfg.FailureLimit = -1
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// NaN every 10 observations keeps the 20-sample train window poisoned
	// until the breaker opens.
	i := 0
	for ; o.HealthStats().BreakerTrips == 0 && i < 400; i++ {
		v := 10 * math.Sin(float64(i)*0.05)
		if i%10 == 9 {
			v = math.NaN()
		}
		if _, err := o.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if !o.HealthStats().BreakerOpen {
		t.Fatal("breaker never opened")
	}

	// Fault cleared: feed calm data until a probe fires and succeeds.
	phase := i
	for j := 0; j < 200 && !o.HealthStats().HalfOpen; j++ {
		feedCalm(t, o, 1, &phase)
	}
	hs := o.HealthStats()
	if !hs.HalfOpen {
		t.Fatal("no successful probe retrain after the fault cleared")
	}
	if o.Health() != Degraded {
		t.Errorf("health = %s during half-open confirmation, want Degraded", o.Health())
	}
	// Half-open serves the fresh LAR model so the audit can judge it.
	p, err := o.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != SourceLAR {
		t.Errorf("half-open forecast Source = %q, want %q", p.Source, SourceLAR)
	}
	for j := 0; j < 100 && o.Health() != Healthy; j++ {
		feedCalm(t, o, 1, &phase)
	}
	hs = o.HealthStats()
	if o.Health() != Healthy || hs.BreakerOpen || hs.HalfOpen {
		t.Errorf("after confirmation window: health=%s open=%v halfOpen=%v, want Healthy closed",
			o.Health(), hs.BreakerOpen, hs.HalfOpen)
	}
	if hs.ConsecutiveFailures != 0 {
		t.Errorf("consecutive failures = %d after recovery, want 0", hs.ConsecutiveFailures)
	}
}

// TestOnlineThrashTripsBreaker feeds a series whose variance keeps doubling:
// every retrain succeeds but is stale within an audit window, so QA fires at
// the minimum spacing over and over. Thrash detection must open the breaker
// instead of letting the retrain storm continue.
func TestOnlineThrashTripsBreaker(t *testing.T) {
	cfg := resilienceCfg()
	cfg.ThrashLimit = 3
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	scale := 1.0
	for i := 0; i < 600 && o.HealthStats().BreakerTrips == 0; i++ {
		if o.Trained() {
			if _, err := o.Forecast(); err != nil && !errors.Is(err, ErrNotReady) {
				t.Fatal(err)
			}
		}
		if i%15 == 14 {
			scale *= 2 // stale within one audit window of any retrain
		}
		if _, err := o.Observe(scale * rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	hs := o.HealthStats()
	if hs.BreakerTrips == 0 {
		t.Fatalf("thrash never tripped the breaker (retrains=%d)", hs.Retrains)
	}
	if hs.Retrains < cfg.ThrashLimit {
		t.Errorf("breaker tripped after only %d retrains, thrash limit is %d", hs.Retrains, cfg.ThrashLimit)
	}
	if o.Health() != Degraded {
		t.Errorf("health = %s after a thrash trip, want Degraded", o.Health())
	}
}

// TestOnlineAuditRingResetAfterRetrain checks the QA ring is cleared by a
// successful retrain and refills — wrapping correctly — before it can fire
// again.
func TestOnlineAuditRingResetAfterRetrain(t *testing.T) {
	cfg := resilienceCfg()
	// Spacing far beyond the refill span below: after the retrain under
	// test, QA cannot re-fire, so the assertions see pure ring mechanics.
	cfg.MinRetrainSpacing = 40
	cfg.MSEThreshold = 0.5
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	phase := 0
	feedCalm(t, o, 65, &phase)
	if !o.Trained() {
		t.Fatal("not trained after warm-up")
	}
	// Regime shift until QA retrains.
	retrained := false
	for i := 0; i < 100 && !retrained; i++ {
		if _, err := o.Forecast(); err != nil {
			t.Fatal(err)
		}
		v := 500.0
		if i%2 == 0 {
			v = -500
		}
		r, err := o.Observe(v)
		if err != nil {
			t.Fatal(err)
		}
		retrained = r
	}
	if !retrained {
		t.Fatal("QA never retrained on the regime shift")
	}
	if _, n := o.AuditMSE(); n != 0 {
		t.Fatalf("audit ring holds %d entries right after a retrain, want 0", n)
	}
	// Refill past the window size with calm data (tiny errors against the
	// freshly fitted wide normalizer, so QA stays quiet): the ring must
	// wrap, keeping exactly AuditWindow entries.
	retrainsBefore := o.Retrains()
	feedCalm(t, o, cfg.AuditWindow+5, &phase)
	if _, n := o.AuditMSE(); n != cfg.AuditWindow {
		t.Errorf("audit ring holds %d entries after wrap-around, want %d", n, cfg.AuditWindow)
	}
	if o.Retrains() != retrainsBefore {
		t.Errorf("QA re-fired on a partial, freshly cleared ring")
	}
}

// TestOnlineForecastAfterNonFiniteObserve covers the Forecast → failed
// Observe → recovery edge: a pending LAR forecast followed by a non-finite
// observation must not be scored into the audit, and the stream recovers.
func TestOnlineForecastAfterNonFiniteObserve(t *testing.T) {
	cfg := resilienceCfg()
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stop the warm-up while the ring is still partially filled so that
	// both "not scored" and "resumed scoring" are observable in the count.
	phase := 0
	feedCalm(t, o, 26, &phase)
	if _, err := o.Forecast(); err != nil {
		t.Fatal(err)
	}
	_, before := o.AuditMSE()
	if before == 0 || before >= 10 {
		t.Fatalf("warm-up left %d audit entries, want a partial ring", before)
	}
	if _, err := o.Observe(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if _, after := o.AuditMSE(); after != before {
		t.Errorf("non-finite observation was scored into the audit: %d -> %d", before, after)
	}
	// The NaN-free path resumes once the Inf has left the prediction
	// window: forecasts from a window still holding it are non-finite and
	// are (correctly) never scored.
	feedCalm(t, o, cfg.Predictor.WindowSize+3, &phase)
	if _, n := o.AuditMSE(); n <= before {
		t.Errorf("audit did not resume after the non-finite observation (%d entries)", n)
	}
	if o.Health() == Failed {
		t.Error("a single non-finite observation killed the predictor")
	}
}

// TestOnlineConfigValidatesResilienceFields rejects nonsensical resilience
// settings.
func TestOnlineConfigValidatesResilienceFields(t *testing.T) {
	bad := []func(*OnlineConfig){
		func(c *OnlineConfig) { c.RetrainBackoff = -1 },
		func(c *OnlineConfig) { c.BackoffFactor = 0.5 },
		func(c *OnlineConfig) { c.MaxBackoff = -2 },
		func(c *OnlineConfig) { c.BreakerThreshold = -1 },
		func(c *OnlineConfig) { c.ProbeSpacing = -3 },
		func(c *OnlineConfig) { c.HalfOpenWindow = -1 },
		func(c *OnlineConfig) { c.FallbackWindow = -1 },
	}
	for i, mutate := range bad {
		cfg := resilienceCfg()
		mutate(&cfg)
		if _, err := NewOnline(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

// TestBackoffStreakResetsAcrossRecovery is the recovery-reset regression
// test: after a degrade -> recover cycle, the retrain-backoff streak must
// restart from RetrainBackoff. If recovery left the grown delay (or the
// consecutive-failure count) behind, the first failure of the NEXT
// degradation would jump straight to the maximum backoff and the predictor
// would sit on the fallback ladder far longer than the failure history
// justifies. The test walks a full cycle — three failures with geometric
// growth, a clean recovery, then a fresh failure — and checks the armed
// delay after every failure against the expected schedule.
func TestBackoffStreakResetsAcrossRecovery(t *testing.T) {
	cfg := resilienceCfg()
	cfg.MinRetrainSpacing = 10 // RetrainBackoff defaults to this
	cfg.BreakerThreshold = 10  // keep the breaker out of this test
	cfg.FailureLimit = -1
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// armedDelays drives n observations from gen (indexed from the start of
	// this segment) and returns the backoff armed after each new retrain
	// failure.
	armedDelays := func(n int, gen func(j int) float64) []int {
		t.Helper()
		var armed []int
		failures := o.HealthStats().RetrainFailures
		for j := 0; j < n; j++ {
			if _, _, err := o.Step(gen(j)); err != nil && !errors.Is(err, ErrNotReady) {
				t.Fatal(err)
			}
			if hs := o.HealthStats(); hs.RetrainFailures > failures {
				failures = hs.RetrainFailures
				armed = append(armed, hs.NextAttemptIn)
			}
		}
		return armed
	}
	calm := func(j int) float64 { return 10 * math.Sin(float64(j)*0.5) }
	// Erratic enough to breach the QA threshold over a few audit entries
	// (but not in one, so the first fire cannot land on a still-clean train
	// window), with a NaN at the head of the segment and every 10th
	// observation after — every 20-sample train window holds one, so every
	// (re)train attempt fails.
	erratic := func(j int) float64 {
		if j%10 == 0 {
			return math.NaN()
		}
		return 15 * float64(1-2*(j%2))
	}

	if armed := armedDelays(100, calm); len(armed) != 0 {
		t.Fatalf("failures during calm warm-up: %v", armed)
	}
	if o.Health() != Healthy {
		t.Fatalf("health = %s after warm-up, want Healthy", o.Health())
	}

	// First degradation: three failures, geometric backoff 10 -> 20 -> 40.
	armed := armedDelays(100, erratic)
	want := []int{10, 20, 40}
	if len(armed) < len(want) {
		t.Fatalf("only %d failures in the first degradation: %v", len(armed), armed)
	}
	for i := range want {
		if armed[i] != want[i] {
			t.Fatalf("first degradation armed %v, want prefix %v", armed, want)
		}
	}

	// Recovery: clean data until the pending retry fires and succeeds.
	if armed := armedDelays(120, calm); len(armed) != 0 {
		t.Fatalf("failures during recovery: %v", armed)
	}
	if o.Health() != Healthy {
		t.Fatalf("health = %s after recovery, want Healthy", o.Health())
	}
	if hs := o.HealthStats(); hs.ConsecutiveFailures != 0 {
		t.Fatalf("recovery left %d consecutive failures on the streak", hs.ConsecutiveFailures)
	}

	// Second degradation: the regression — its first failure must arm the
	// initial delay again, not resume the grown schedule.
	armed = armedDelays(60, erratic)
	if len(armed) == 0 {
		t.Fatal("second degradation never failed a retrain")
	}
	if armed[0] != 10 {
		t.Fatalf("first failure after recovery armed %d, want %d (streak not reset)", armed[0], 10)
	}
}

// TestNaNForecastDoesNotPoisonAudit is the QA-audit poisoning regression
// test. A prediction window holding a NaN makes the trained model forecast
// NaN; that forecast is never served (Forecast degrades it), so it must not
// be scored either. Before the fix it was armed as the pending forecast,
// wrote NaN into the audit ring, and froze the QA for as long as NaNs kept
// arriving (NaN MSE > threshold is always false) — the predictor sat
// "Healthy" on a stale model it could never again audit.
func TestNaNForecastDoesNotPoisonAudit(t *testing.T) {
	cfg := resilienceCfg()
	cfg.BreakerThreshold = 10
	cfg.FailureLimit = -1
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := o.Step(10 * math.Sin(float64(i)*0.5)); err != nil && !errors.Is(err, ErrNotReady) {
			t.Fatal(err)
		}
	}
	if o.Health() != Healthy {
		t.Fatalf("health = %s after warm-up, want Healthy", o.Health())
	}
	// Garbage regime with a NaN every 10th observation: half the prediction
	// windows hold a NaN (NaN model forecast), and every 20-sample train
	// window holds one (every retrain fails).
	for j := 0; j < 100; j++ {
		v := 15 * float64(1-2*(j%2))
		if j%10 == 0 {
			v = math.NaN()
		}
		if _, _, err := o.Step(v); err != nil && !errors.Is(err, ErrNotReady) {
			t.Fatal(err)
		}
		if mse, n := o.AuditMSE(); n > 0 && !isFinite(mse) {
			t.Fatalf("step %d: audit MSE %v over %d entries — NaN forecast reached the audit ring", j, mse, n)
		}
	}
	// With the audit intact the QA fires on the garbage, the retrain fails
	// on the NaN-holding window, and the predictor degrades visibly.
	if hs := o.HealthStats(); hs.RetrainFailures == 0 {
		t.Error("QA never fired on the garbage regime: the audit was poisoned")
	}
	if o.Health() == Healthy {
		t.Error("predictor still Healthy on a regime its model cannot track")
	}
}
