package core

import (
	"sync/atomic"

	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/predictors"
)

// larMetrics holds the LARPredictor's instruments, pre-bound at
// construction so the hot forecast path never touches the registry's
// family maps: counting a forecast is one atomic add through a cached
// pointer. A nil *larMetrics (no registry attached) disables everything
// behind a single branch.
type larMetrics struct {
	// forecastSeconds is the end-to-end latency of the hot forecast path
	// (normalize + project + classify + expert predict). It is sampled —
	// see sampleForecast — because on a path this short the two clock
	// reads cost more than the work being measured; forecastsLAR carries
	// the exact call count.
	forecastSeconds *obs.Histogram
	// forecastTick drives the latency sampling schedule.
	forecastTick atomic.Uint64
	// forecastsLAR counts forecasts served by the trained model
	// (larpredictor_forecasts_total{source="LAR"}).
	forecastsLAR *obs.Counter
	// decisions[i] counts classifier selections of pool expert i.
	decisions []*obs.Counter
	// trainSeconds is the latency of full (re)trains.
	trainSeconds *obs.Histogram
}

// newLARMetrics binds the predictor's instruments on a registry scope.
func newLARMetrics(r *obs.Registry, pool *predictors.Pool) *larMetrics {
	if r == nil {
		return nil
	}
	m := &larMetrics{
		forecastSeconds: r.Histogram1("larpredictor_forecast_seconds",
			"End-to-end latency of the hot forecast path (sampled, 1 in 8 calls).", nil),
		forecastsLAR: r.Counter("larpredictor_forecasts_total",
			"Forecasts served, by fallback-ladder source.", "source").
			WithLabels(SourceLAR),
		trainSeconds: r.Histogram1("larpredictor_train_seconds",
			"Latency of full (re)trains: labeling, PCA fit, k-NN indexing.", nil),
	}
	decisions := r.Counter("larpredictor_classifier_decisions_total",
		"k-NN best-expert classifications, by selected expert.", "expert")
	m.decisions = make([]*obs.Counter, pool.Size())
	for i := 0; i < pool.Size(); i++ {
		m.decisions[i] = decisions.WithLabels(pool.At(i).Name())
	}
	return m
}

// sampleForecast reports whether this forecast's latency should be timed:
// one call in eight, starting with the first, so the histogram stays
// representative while the hot path usually skips both clock reads.
func (m *larMetrics) sampleForecast() bool {
	return m.forecastTick.Add(1)&7 == 1
}

// onlineMetrics holds the streaming predictor's instruments; see
// larMetrics for the binding discipline.
type onlineMetrics struct {
	// healthState exports the current ladder rung as a number
	// (0 Healthy … 3 Failed).
	healthState *obs.Gauge
	// transitions counts health-state machine edges.
	transitions *obs.CounterVec
	// retrainAttempts/retrainFailures count (re)train attempts and the
	// failed subset.
	retrainAttempts *obs.Counter
	retrainFailures *obs.Counter
	// backoffLeft exports observations until the next allowed retrain.
	backoffLeft *obs.Gauge
	// breakerOpen (0/1) and breakerTrips export the circuit breaker.
	breakerOpen  *obs.Gauge
	breakerTrips *obs.Counter
	// auditMSE exports the QA audit-window MSE (normalized space).
	auditMSE *obs.Gauge
	// forecastsSelector/forecastsLastResort/forecastsTournament count
	// degraded-mode serves, completing the forecasts_total source family
	// the LARPredictor starts.
	forecastsSelector   *obs.Counter
	forecastsLastResort *obs.Counter
	forecastsTournament *obs.Counter
	// driftDemotions counts proactive drift demotions off the Healthy rung.
	driftDemotions *obs.Counter
}

func newOnlineMetrics(r *obs.Registry) *onlineMetrics {
	if r == nil {
		return nil
	}
	forecasts := r.Counter("larpredictor_forecasts_total",
		"Forecasts served, by fallback-ladder source.", "source")
	return &onlineMetrics{
		healthState: r.Gauge1("larpredictor_health_state",
			"Current fallback-ladder rung: 0 Healthy, 1 Tournament, 2 Degraded, 3 Fallback, 4 Failed."),
		transitions: r.Counter("larpredictor_health_transitions_total",
			"Health-state machine transitions.", "from", "to"),
		retrainAttempts: r.Counter1("larpredictor_retrain_attempts_total",
			"(Re)train attempts, including initial training and breaker probes."),
		retrainFailures: r.Counter1("larpredictor_retrain_failures_total",
			"Failed (re)train attempts."),
		backoffLeft: r.Gauge1("larpredictor_retrain_backoff_observations",
			"Observations until the next (re)train attempt is allowed."),
		breakerOpen: r.Gauge1("larpredictor_breaker_open",
			"Whether the retrain circuit breaker is open (1) or closed (0)."),
		breakerTrips: r.Counter1("larpredictor_breaker_trips_total",
			"Times the retrain circuit breaker opened (failures or thrash)."),
		auditMSE: r.Gauge1("larpredictor_qa_audit_mse",
			"QA audit-window MSE in normalized space."),
		forecastsSelector:   forecasts.WithLabels(SourceSelector),
		forecastsLastResort: forecasts.WithLabels(SourceLastResort),
		forecastsTournament: forecasts.WithLabels(SourceTournament),
		driftDemotions: r.Counter1("larpredictor_drift_demotions_total",
			"Proactive Healthy-to-Tournament demotions fired by the drift detector."),
	}
}

// recordHealth moves the health state through the metrics: one transition
// count and the state gauge. Call via Online.setHealth.
func (m *onlineMetrics) recordHealth(from, to Health) {
	if m == nil {
		return
	}
	m.transitions.WithLabels(from.String(), to.String()).Inc()
	m.healthState.Set(float64(to))
}

// sync refreshes every gauge from the predictor's current state — used
// after a state restore, when the usual incremental updates were skipped.
func (m *onlineMetrics) sync(o *Online) {
	if m == nil {
		return
	}
	m.healthState.Set(float64(o.health))
	m.backoffLeft.Set(float64(o.backoffLeft))
	m.breakerOpen.Set(boolGauge(o.breakerOpen))
	if mse, n := o.AuditMSE(); n > 0 {
		m.auditMSE.Set(mse)
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
