package core

import (
	"github.com/acis-lab/larpredictor/internal/knn"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/tournament"
)

// Option attaches optional machinery — custom pools, vote strategies,
// metrics, tracing — to New and NewOnline without widening Config for
// every new concern. Options compose left to right; the zero set leaves
// the configuration untouched.
type Option func(*optionSet)

// optionSet is the resolved option state a constructor applies.
type optionSet struct {
	pool       *predictors.Pool
	vote       knn.VoteStrategy
	voteSet    bool
	metrics    *obs.Registry
	tracer     obs.Tracer
	tournament *tournament.Config
	drift      *tournament.DriftConfig
}

func applyOptions(opts []Option) optionSet {
	var set optionSet
	for _, o := range opts {
		if o != nil {
			o(&set)
		}
	}
	return set
}

// apply folds the option set into a Config: options win over the
// corresponding Config fields, which remain supported for compatibility.
func (s *optionSet) apply(cfg *Config) {
	if s.pool != nil {
		cfg.Pool = s.pool
	}
	if s.voteSet {
		cfg.Vote = s.vote
	}
}

// WithPool sets the expert pool, overriding Config.Pool.
func WithPool(p *predictors.Pool) Option {
	return func(s *optionSet) { s.pool = p }
}

// WithVote sets the k-NN neighbor-combination strategy, overriding
// Config.Vote.
func WithVote(v knn.VoteStrategy) Option {
	return func(s *optionSet) { s.vote = v; s.voteSet = true }
}

// WithMetrics attaches a metrics registry (or a labeled scope of one —
// see obs.Registry.With): the predictor registers its instrument families
// on it and updates them as it runs. A nil registry leaves the predictor
// uninstrumented, which costs nothing on the hot path.
func WithMetrics(r *obs.Registry) Option {
	return func(s *optionSet) { s.metrics = r }
}

// WithTracer attaches a per-stage tracer: every pipeline stage (normalize,
// PCA project, k-NN classify, expert forecast, QA audit, train) is wrapped
// in a span. A nil tracer disables tracing at zero cost.
func WithTracer(t obs.Tracer) Option {
	return func(s *optionSet) { s.tracer = t }
}

// applyOnline folds streaming-only options into an OnlineConfig; NewOnline
// calls it after apply. Options win over the corresponding config fields.
func (s *optionSet) applyOnline(cfg *OnlineConfig) {
	if s.tournament != nil {
		cfg.Tournament = s.tournament
	}
	if s.drift != nil {
		cfg.Drift = s.drift
	}
}

// WithTournament enables the tournament meta-selector tier on an Online
// predictor (see OnlineConfig.Tournament), overriding that field. The zero
// Config selects the package defaults; Experts is always overridden to the
// fallback-pool size. Ignored by New.
func WithTournament(cfg tournament.Config) Option {
	return func(s *optionSet) { s.tournament = &cfg }
}

// WithDrift enables proactive drift demotion on an Online predictor (see
// OnlineConfig.Drift), overriding that field. Requires the tournament tier.
// Ignored by New.
func WithDrift(cfg tournament.DriftConfig) Option {
	return func(s *optionSet) { s.drift = &cfg }
}
