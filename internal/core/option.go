package core

import (
	"github.com/acis-lab/larpredictor/internal/knn"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/predictors"
)

// Option attaches optional machinery — custom pools, vote strategies,
// metrics, tracing — to New and NewOnline without widening Config for
// every new concern. Options compose left to right; the zero set leaves
// the configuration untouched.
type Option func(*optionSet)

// optionSet is the resolved option state a constructor applies.
type optionSet struct {
	pool    *predictors.Pool
	vote    knn.VoteStrategy
	voteSet bool
	metrics *obs.Registry
	tracer  obs.Tracer
}

func applyOptions(opts []Option) optionSet {
	var set optionSet
	for _, o := range opts {
		if o != nil {
			o(&set)
		}
	}
	return set
}

// apply folds the option set into a Config: options win over the
// corresponding Config fields, which remain supported for compatibility.
func (s *optionSet) apply(cfg *Config) {
	if s.pool != nil {
		cfg.Pool = s.pool
	}
	if s.voteSet {
		cfg.Vote = s.vote
	}
}

// WithPool sets the expert pool, overriding Config.Pool.
func WithPool(p *predictors.Pool) Option {
	return func(s *optionSet) { s.pool = p }
}

// WithVote sets the k-NN neighbor-combination strategy, overriding
// Config.Vote.
func WithVote(v knn.VoteStrategy) Option {
	return func(s *optionSet) { s.vote = v; s.voteSet = true }
}

// WithMetrics attaches a metrics registry (or a labeled scope of one —
// see obs.Registry.With): the predictor registers its instrument families
// on it and updates them as it runs. A nil registry leaves the predictor
// uninstrumented, which costs nothing on the hot path.
func WithMetrics(r *obs.Registry) Option {
	return func(s *optionSet) { s.metrics = r }
}

// WithTracer attaches a per-stage tracer: every pipeline stage (normalize,
// PCA project, k-NN classify, expert forecast, QA audit, train) is wrapped
// in a span. A nil tracer disables tracing at zero cost.
func WithTracer(t obs.Tracer) Option {
	return func(s *optionSet) { s.tracer = t }
}
