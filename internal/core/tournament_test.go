package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/acis-lab/larpredictor/internal/tournament"
)

// tournamentCfg is resilienceCfg with the tournament tier (and optionally
// drift demotion) enabled.
func tournamentCfg() OnlineConfig {
	cfg := onlineCfg(5, 20)
	cfg.Tournament = &tournament.Config{}
	return cfg
}

// TestTournamentTierServesDegradedForecasts: with the tier enabled,
// demotions land on the Tournament rung and degraded forecasts carry
// SourceTournament — the new tier sits between LAR and the windowed-MSE
// selector.
func TestTournamentTierServesDegradedForecasts(t *testing.T) {
	cfg := tournamentCfg()
	cfg.FailureLimit = -1
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every train window holds a NaN, so every (re)train fails and the
	// predictor lives on the degraded rungs.
	for i := 0; i < 200; i++ {
		v := 10 * math.Sin(float64(i)*0.05)
		if i%10 == 9 {
			v = math.NaN()
		}
		if _, err := o.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	// Put a fully finite window at the head of history so the tier can run.
	for i := 0; i < 6; i++ {
		if _, err := o.Observe(5 + float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := o.Health(); got != Tournament {
		t.Fatalf("health = %s with the tier enabled, want Tournament", got)
	}
	p, err := o.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != SourceTournament {
		t.Errorf("degraded forecast Source = %q, want %q", p.Source, SourceTournament)
	}
	if p.SelectedName == "" {
		t.Error("tournament forecast lost the selected expert name")
	}
	hs := o.HealthStats()
	if hs.TournamentForecasts == 0 {
		t.Error("HealthStats.TournamentForecasts not counted")
	}
}

// TestTournamentDisabledKeepsLadderShape: without the tier the ladder is
// unchanged — demotions land on Degraded and no Tournament rung appears.
func TestTournamentDisabledKeepsLadderShape(t *testing.T) {
	cfg := onlineCfg(5, 20)
	cfg.FailureLimit = -1
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v := 10 * math.Sin(float64(i)*0.05)
		if i%10 == 9 {
			v = math.NaN()
		}
		if _, err := o.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := o.Health(); got == Tournament {
		t.Fatal("Tournament rung reached with the tier disabled")
	}
	if hs := o.HealthStats(); hs.TournamentForecasts != 0 {
		t.Errorf("%d tournament forecasts with the tier disabled", hs.TournamentForecasts)
	}
}

// TestDriftRequiresTournament pins the config invariant.
func TestDriftRequiresTournament(t *testing.T) {
	cfg := onlineCfg(5, 20)
	cfg.Drift = &tournament.DriftConfig{}
	if _, err := NewOnline(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("drift without tournament: err = %v, want ErrBadConfig", err)
	}
}

// TestDriftDemotionFiresBeforeQA: a regime shift that raises the model's
// error well above its own baseline — but below the absolute QA threshold —
// must still demote the model, via the drift detector's relative test.
func TestDriftDemotionFiresBeforeQA(t *testing.T) {
	cfg := onlineCfg(5, 60)
	cfg.MSEThreshold = 1e6 // the absolute audit can never fire
	cfg.Tournament = &tournament.Config{}
	cfg.Drift = &tournament.DriftConfig{}
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	step := func(v float64) {
		// Step arms the pending forecast whenever the model serves, so the
		// drift detector sees the same error stream the QA audits.
		if _, _, err := o.Step(v); err != nil && !errors.Is(err, ErrNotReady) {
			t.Fatal(err)
		}
	}
	// A predictable baseline regime. The period (~13 observations) fits
	// many times into the training window, so the trained model has seen
	// every phase and its error is stationary — the precondition for "no
	// demotion without drift".
	for i := 0; i < 300; i++ {
		step(10*math.Sin(float64(i)*0.5) + 0.05*rng.NormFloat64())
	}
	if o.Health() != Healthy {
		t.Fatalf("health = %s after calm warm-up, want Healthy", o.Health())
	}
	if hs := o.HealthStats(); hs.DriftDemotions != 0 {
		t.Fatalf("%d drift demotions on stationary data", hs.DriftDemotions)
	}
	// Regime shift: same scale, much less predictable.
	for i := 300; i < 500; i++ {
		step(10*math.Sin(float64(i)*0.5) + 4*rng.NormFloat64())
	}
	hs := o.HealthStats()
	if hs.DriftDemotions == 0 {
		t.Fatal("drift never demoted the stale model (QA threshold was unreachable)")
	}
	if hs.Retrains == 0 {
		t.Error("drift demotion did not lead to a proactive retrain")
	}
}

// TestOnlineTournamentStateRoundTrip: snapshots of a predictor with the
// tournament tier and drift detector enabled must round-trip bit-identically
// and resume with identical behavior — the contract WAL replay and cluster
// handoff rely on.
func TestOnlineTournamentStateRoundTrip(t *testing.T) {
	cfg := tournamentCfg()
	cfg.Drift = &tournament.DriftConfig{}
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed diet: train, serve, degrade through a NaN stretch, recover —
	// so the tournament tables, drift state, and ladder state are all
	// non-trivial at snapshot time.
	feed := func(o *Online, i int) {
		v := 10*math.Sin(float64(i)*0.07) + 0.3*float64(i%4)
		if i >= 120 && i < 140 && i%5 == 0 {
			v = math.NaN()
		}
		if _, _, err := o.Step(v); err != nil &&
			!errors.Is(err, ErrNotReady) && !errors.Is(err, ErrFailed) {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		feed(o, i)
	}

	var buf bytes.Buffer
	if err := o.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := r.SaveState(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("tournament state does not round-trip bit-identically through save/restore")
	}

	// Identical continuation, including another degraded stretch.
	for i := 200; i < 320; i++ {
		feed(o, i)
		feed(r, i)
		if o.Health() != r.Health() {
			t.Fatalf("step %d: health %s vs restored %s", i, o.Health(), r.Health())
		}
		po, eo := o.Forecast()
		pr, er := r.Forecast()
		if (eo == nil) != (er == nil) {
			t.Fatalf("step %d: forecast err %v vs restored %v", i, eo, er)
		}
		if eo == nil && (po.Value != pr.Value || po.Source != pr.Source) {
			t.Fatalf("step %d: forecast %v/%s vs restored %v/%s",
				i, po.Value, po.Source, pr.Value, pr.Source)
		}
	}
}

// TestOnlineTournamentPresenceMismatch: a snapshot with the tier enabled
// cannot restore into a predictor without it, and vice versa.
func TestOnlineTournamentPresenceMismatch(t *testing.T) {
	withTier, err := NewOnline(tournamentCfg())
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewOnline(onlineCfg(5, 20))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := withTier.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := without.RestoreState(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrStateMismatch) {
		t.Errorf("tournament snapshot into plain predictor: err = %v, want ErrStateMismatch", err)
	}
	buf.Reset()
	if err := without.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if err := withTier.RestoreState(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrStateMismatch) {
		t.Errorf("plain snapshot into tournament predictor: err = %v, want ErrStateMismatch", err)
	}
}

// TestStepTournamentZeroAlloc extends the steady-state zero-allocation
// contract to a stream with the tournament tier and drift detector enabled:
// both ride the existing selector fold, so they must add no heap traffic.
func TestStepTournamentZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	o, err := NewOnline(OnlineConfig{
		Predictor:   DefaultConfig(5),
		TrainSize:   60,
		AuditWindow: 12,
		Tournament:  &tournament.Config{},
		Drift:       &tournament.DriftConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	next := func() float64 {
		i++
		return 10 + 3*math.Sin(float64(i)/7) + 0.1*float64(i%5)
	}
	for j := 0; j < 500; j++ {
		o.Step(next())
	}
	if !o.Trained() || o.Health() != Healthy {
		t.Fatalf("warm-up did not reach trained/Healthy: trained=%v health=%v",
			o.Trained(), o.Health())
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := o.Step(next()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Step with tournament+drift allocates %v per op, want 0", allocs)
	}
}
