package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/acis-lab/larpredictor/internal/knn"
	"github.com/acis-lab/larpredictor/internal/nws"
	"github.com/acis-lab/larpredictor/internal/pca"
	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/timeseries"
	"github.com/acis-lab/larpredictor/internal/tournament"
)

// Durable-state codec: a trained LARPredictor (and the Online wrapper with
// its full resilience state) serializes to a magic header, a format version,
// a gob payload, and a CRC32 footer covering everything before it — the same
// framing as the rrd and preddb persistence formats, so the state directory
// is uniform. The payload carries the normalizer coefficients, the PCA
// basis, the k-NN training set, the normalized series the parametric experts
// were fitted on, and (for Online) the health/breaker/backoff machinery, so
// a restart resumes forecasting exactly where the crash left off, with no
// retraining.
//
// RestoreState must be called on a predictor constructed with an equivalent
// configuration; a fingerprint embedded in the state rejects anything else.

// Errors returned by the state codec.
var (
	// ErrChecksum reports a CRC32 mismatch: the state file was corrupted at
	// rest (bit flip, torn write past the gob framing).
	ErrChecksum = errors.New("core: state checksum mismatch")
	// ErrBadState reports an unrecognized or structurally invalid state
	// stream.
	ErrBadState = errors.New("core: unrecognized or invalid state")
	// ErrStateMismatch reports a state snapshot taken under a different
	// configuration than the predictor it is being restored into.
	ErrStateMismatch = errors.New("core: state does not match predictor configuration")
)

var (
	larStateMagic    = [8]byte{'L', 'A', 'R', 'P', 'L', 'A', 'R', '1'}
	onlineStateMagic = [8]byte{'L', 'A', 'R', 'P', 'O', 'N', 'L', '1'}
)

// stateVersion 2: the Health enum gained the Tournament rung between
// Healthy and Degraded, renumbering every deeper rung, and the payload
// gained the tournament/drift state — version-1 snapshots would silently
// restore the wrong health, so they are rejected at the frame layer.
const stateVersion uint32 = 2

// writeFramed writes magic + version + gob(payload) + CRC32 footer.
func writeFramed(w io.Writer, magic [8]byte, payload any) error {
	h := crc32.NewIEEE()
	mw := io.MultiWriter(w, h)
	if _, err := mw.Write(magic[:]); err != nil {
		return fmt.Errorf("core: write state magic: %w", err)
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], stateVersion)
	if _, err := mw.Write(ver[:]); err != nil {
		return fmt.Errorf("core: write state version: %w", err)
	}
	if err := gob.NewEncoder(mw).Encode(payload); err != nil {
		return fmt.Errorf("core: encode state: %w", err)
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], h.Sum32())
	if _, err := w.Write(foot[:]); err != nil {
		return fmt.Errorf("core: write state checksum: %w", err)
	}
	return nil
}

// readFramed reads and verifies a stream written by writeFramed.
func readFramed(r io.Reader, magic [8]byte, payload any) error {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return fmt.Errorf("core: read state magic: %w", err)
	}
	if m != magic {
		return fmt.Errorf("core: bad state magic %q: %w", m[:], ErrBadState)
	}
	var ver [4]byte
	if _, err := io.ReadFull(r, ver[:]); err != nil {
		return fmt.Errorf("core: read state version: %w", err)
	}
	if v := binary.LittleEndian.Uint32(ver[:]); v != stateVersion {
		return fmt.Errorf("core: state version %d unsupported: %w", v, ErrBadState)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("core: read state: %w", err)
	}
	if len(data) < 4 {
		return fmt.Errorf("core: state truncated before checksum: %w", ErrBadState)
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	h := crc32.NewIEEE()
	h.Write(m[:])
	h.Write(ver[:])
	h.Write(body)
	if h.Sum32() != binary.LittleEndian.Uint32(foot) {
		return fmt.Errorf("core: %w", ErrChecksum)
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(payload); err != nil {
		return fmt.Errorf("core: decode state: %w: %v", ErrBadState, err)
	}
	return nil
}

// predictorFingerprint identifies the configuration a LARPredictor state was
// captured under. Restore rejects states whose fingerprint differs from the
// target predictor's.
type predictorFingerprint struct {
	WindowSize          int
	PCAComponents       int
	MinFractionVariance float64
	K                   int
	UseKDTree           bool
	Vote                int
	DisablePCA          bool
	Pool                []string
}

func fingerprintOf(cfg Config, pool *predictors.Pool) predictorFingerprint {
	return predictorFingerprint{
		WindowSize:          cfg.WindowSize,
		PCAComponents:       cfg.PCAComponents,
		MinFractionVariance: cfg.MinFractionVariance,
		K:                   cfg.K,
		UseKDTree:           cfg.UseKDTree,
		Vote:                int(cfg.Vote),
		DisablePCA:          cfg.DisablePCA,
		Pool:                pool.Names(),
	}
}

func (a predictorFingerprint) equal(b predictorFingerprint) bool {
	if a.WindowSize != b.WindowSize || a.PCAComponents != b.PCAComponents ||
		a.MinFractionVariance != b.MinFractionVariance || a.K != b.K ||
		a.UseKDTree != b.UseKDTree || a.Vote != b.Vote || a.DisablePCA != b.DisablePCA ||
		len(a.Pool) != len(b.Pool) {
		return false
	}
	for i := range a.Pool {
		if a.Pool[i] != b.Pool[i] {
			return false
		}
	}
	return true
}

// larState is the gob payload of a LARPredictor snapshot.
type larState struct {
	Fingerprint predictorFingerprint
	Trained     bool

	NormMean, NormStd float64
	HasPCA            bool
	PCA               pca.State
	// Feats and Labels are the k-NN training set (projected windows and
	// best-expert classes).
	Feats  [][]float64
	Labels []int
	// TrainRMSE is the per-expert training RMSE (uncertainty estimates).
	TrainRMSE []float64
	// FitSeries is the normalized training series of the last Train call;
	// parametric experts are refitted on it at restore, which reproduces
	// their coefficients exactly.
	FitSeries []float64
}

func (l *LARPredictor) captureState() *larState {
	s := &larState{Fingerprint: fingerprintOf(l.cfg, l.pool), Trained: l.trained}
	if !l.trained {
		return s
	}
	s.NormMean, s.NormStd = l.norm.Mean, l.norm.Std
	if l.proj != nil {
		ps, err := l.proj.State()
		if err == nil {
			s.HasPCA = true
			s.PCA = *ps
		}
	}
	s.Feats = l.trainFeats
	s.Labels = l.trainLabels
	s.TrainRMSE = l.trainRMSE
	s.FitSeries = l.trainFit
	return s
}

// restoreState rebuilds the trained model from a decoded snapshot. All
// structural invariants are validated first so a corrupt-but-checksummed
// (or hand-crafted) state can never leave the predictor in a panicking
// configuration.
func (l *LARPredictor) restoreState(s *larState) error {
	if !s.Fingerprint.equal(fingerprintOf(l.cfg, l.pool)) {
		return fmt.Errorf("core: state for %v, predictor is %v: %w",
			s.Fingerprint, fingerprintOf(l.cfg, l.pool), ErrStateMismatch)
	}
	if !s.Trained {
		l.trained = false
		l.norm = timeseries.Normalizer{}
		l.proj = nil
		l.clf = nil
		l.trainLabels = nil
		l.trainFeats = nil
		l.trainFit = nil
		l.trainRMSE = nil
		return nil
	}

	if !isFinite(s.NormMean) || !isFinite(s.NormStd) || s.NormStd <= 0 {
		return fmt.Errorf("core: state normalizer (mean=%g std=%g): %w",
			s.NormMean, s.NormStd, ErrBadState)
	}
	if s.HasPCA == l.cfg.DisablePCA {
		return fmt.Errorf("core: state PCA presence %v vs DisablePCA %v: %w",
			s.HasPCA, l.cfg.DisablePCA, ErrStateMismatch)
	}
	if len(s.Feats) == 0 || len(s.Feats) != len(s.Labels) {
		return fmt.Errorf("core: state with %d features, %d labels: %w",
			len(s.Feats), len(s.Labels), ErrBadState)
	}
	if len(s.TrainRMSE) != l.pool.Size() {
		return fmt.Errorf("core: state RMSE for %d experts, pool has %d: %w",
			len(s.TrainRMSE), l.pool.Size(), ErrBadState)
	}
	if len(s.FitSeries) < l.cfg.WindowSize+2 || !allFinite(s.FitSeries) {
		return fmt.Errorf("core: state fit series of %d samples: %w",
			len(s.FitSeries), ErrBadState)
	}
	for i, lab := range s.Labels {
		if lab < 0 || lab >= l.pool.Size() {
			return fmt.Errorf("core: state label %d at frame %d outside pool of %d: %w",
				lab, i, l.pool.Size(), ErrBadState)
		}
	}

	var proj *pca.PCA
	wantDim := l.cfg.WindowSize
	if s.HasPCA {
		var err error
		proj, err = pca.FromState(&s.PCA)
		if err != nil {
			return fmt.Errorf("core: restore PCA: %w", err)
		}
		if proj.InputDim() != l.cfg.WindowSize {
			return fmt.Errorf("core: state PCA over %d dims, window is %d: %w",
				proj.InputDim(), l.cfg.WindowSize, ErrStateMismatch)
		}
		wantDim = proj.Components()
	}
	for i, f := range s.Feats {
		if len(f) != wantDim {
			return fmt.Errorf("core: state feature %d has dimension %d, want %d: %w",
				i, len(f), wantDim, ErrBadState)
		}
	}

	// Refit the parametric experts on the captured normalized training
	// series — deterministic, so their coefficients match the snapshot
	// moment exactly — then rebuild the classifier over the captured
	// training set.
	if err := l.pool.Fit(s.FitSeries); err != nil {
		return fmt.Errorf("core: refit pool from state: %w", err)
	}
	clf, err := knn.NewClassifier(s.Feats, s.Labels, knn.Config{
		K:         l.cfg.K,
		UseKDTree: l.cfg.UseKDTree,
		Vote:      l.cfg.Vote,
	})
	if err != nil {
		return fmt.Errorf("core: rebuild classifier from state: %w", err)
	}

	l.norm = timeseries.Normalizer{Mean: s.NormMean, Std: s.NormStd}
	l.proj = proj
	l.clf = clf
	l.trainLabels = s.Labels
	l.trainFeats = s.Feats
	l.trainFit = s.FitSeries
	l.trainRMSE = s.TrainRMSE
	l.trained = true
	return nil
}

// SaveState serializes the predictor — configuration fingerprint,
// normalizer, PCA basis, k-NN training set, expert fit series, uncertainty
// estimates — in the versioned, checksummed core state format. An untrained
// predictor saves a valid (trivial) state.
func (l *LARPredictor) SaveState(w io.Writer) error {
	return writeFramed(w, larStateMagic, l.captureState())
}

// RestoreState loads state written by SaveState into this predictor. The
// predictor must have been constructed with an equivalent Config (including
// pool composition); ErrStateMismatch is returned otherwise, ErrChecksum for
// corrupt bytes, and ErrBadState for structurally invalid payloads. On any
// error the predictor is left unchanged.
func (l *LARPredictor) RestoreState(r io.Reader) error {
	var s larState
	if err := readFramed(r, larStateMagic, &s); err != nil {
		return err
	}
	return l.restoreState(&s)
}

// onlineState is the gob payload of an Online snapshot: the wrapped
// LARPredictor state plus the streaming, QA-audit, fallback-selector, and
// breaker/backoff machinery.
type onlineState struct {
	// Defaulted configuration, compared field-by-field on restore.
	TrainSize, AuditWindow                     int
	MSEThreshold                               float64
	MinRetrainSpacing, MaxHistory              int
	RetrainBackoff                             int
	BackoffFactor                              float64
	MaxBackoff, BreakerThreshold, ProbeSpacing int
	HalfOpenWindow, ThrashLimit, FailureLimit  int
	FallbackWindow                             int

	LAR larState

	History              []float64
	AuditSq              []float64
	AuditNext, AuditLen  int
	Pending              float64
	HasPending           bool
	SinceRetrain         int
	Retrains             int
	Health               int
	Selector             nws.State
	LastFinite           float64
	HasFinite            bool
	BreakerOpen          bool
	HalfOpen             bool
	HalfOpenLeft         int
	Backoff, BackoffLeft int
	ConsecFailures       int
	ThrashRun            int
	LastErr              string
	RetrainFailures      int
	BreakerTrips         int
	DegradedForecasts    int
	FallbackForecasts    int
	TournamentForecasts  int
	DriftDemotions       int

	// Tournament tier and drift detector, present only when the feature was
	// enabled on the saving predictor; presence must match on restore.
	HasTournament   bool
	TournamentCfg   tournament.Config
	TournamentState tournament.State
	HasDrift        bool
	DriftCfg        tournament.DriftConfig
	DriftState      tournament.DriftState
}

// SaveState serializes the streaming predictor: the trained LARPredictor,
// retained history, QA audit ring, fallback-selector statistics, and the
// full health/breaker/backoff state, in the versioned, checksummed core
// state format. A restored predictor resumes forecasting exactly where this
// snapshot was taken.
func (o *Online) SaveState(w io.Writer) error {
	s := &onlineState{
		TrainSize:         o.cfg.TrainSize,
		AuditWindow:       o.cfg.AuditWindow,
		MSEThreshold:      o.cfg.MSEThreshold,
		MinRetrainSpacing: o.cfg.MinRetrainSpacing,
		MaxHistory:        o.cfg.MaxHistory,
		RetrainBackoff:    o.cfg.RetrainBackoff,
		BackoffFactor:     o.cfg.BackoffFactor,
		MaxBackoff:        o.cfg.MaxBackoff,
		BreakerThreshold:  o.cfg.BreakerThreshold,
		ProbeSpacing:      o.cfg.ProbeSpacing,
		HalfOpenWindow:    o.cfg.HalfOpenWindow,
		ThrashLimit:       o.cfg.ThrashLimit,
		FailureLimit:      o.cfg.FailureLimit,
		FallbackWindow:    o.cfg.FallbackWindow,

		LAR: *o.lar.captureState(),

		History:             o.history,
		AuditSq:             o.auditSq,
		AuditNext:           o.auditNext,
		AuditLen:            o.auditLen,
		Pending:             o.pending,
		HasPending:          o.hasPending,
		SinceRetrain:        o.sinceRetrain,
		Retrains:            o.retrains,
		Health:              int(o.health),
		Selector:            o.selector.State(),
		LastFinite:          o.lastFinite,
		HasFinite:           o.hasFinite,
		BreakerOpen:         o.breakerOpen,
		HalfOpen:            o.halfOpen,
		HalfOpenLeft:        o.halfOpenLeft,
		Backoff:             o.backoff,
		BackoffLeft:         o.backoffLeft,
		ConsecFailures:      o.consecFailures,
		ThrashRun:           o.thrashRun,
		RetrainFailures:     o.retrainFailures,
		BreakerTrips:        o.breakerTrips,
		DegradedForecasts:   o.degradedForecasts,
		FallbackForecasts:   o.fallbackForecasts,
		TournamentForecasts: o.tournamentForecasts,
		DriftDemotions:      o.driftDemotions,
	}
	if o.lastErr != nil {
		s.LastErr = o.lastErr.Error()
	}
	if o.tour != nil {
		s.HasTournament = true
		s.TournamentCfg = *o.cfg.Tournament
		s.TournamentState = o.tour.State()
	}
	if o.drift != nil {
		s.HasDrift = true
		s.DriftCfg = *o.cfg.Drift
		s.DriftState = o.drift.State()
	}
	return writeFramed(w, onlineStateMagic, s)
}

// RestoreState loads state written by Online.SaveState. The receiver must
// have been constructed by NewOnline with an equivalent OnlineConfig
// (including the wrapped predictor configuration); ErrStateMismatch is
// returned otherwise, ErrChecksum for corrupt bytes, and ErrBadState for
// structurally invalid payloads. On any error the predictor is left in a
// usable (cold) state.
func (o *Online) RestoreState(r io.Reader) error {
	var s onlineState
	if err := readFramed(r, onlineStateMagic, &s); err != nil {
		return err
	}
	if s.TrainSize != o.cfg.TrainSize || s.AuditWindow != o.cfg.AuditWindow ||
		s.MSEThreshold != o.cfg.MSEThreshold || s.MinRetrainSpacing != o.cfg.MinRetrainSpacing ||
		s.MaxHistory != o.cfg.MaxHistory || s.RetrainBackoff != o.cfg.RetrainBackoff ||
		s.BackoffFactor != o.cfg.BackoffFactor || s.MaxBackoff != o.cfg.MaxBackoff ||
		s.BreakerThreshold != o.cfg.BreakerThreshold || s.ProbeSpacing != o.cfg.ProbeSpacing ||
		s.HalfOpenWindow != o.cfg.HalfOpenWindow || s.ThrashLimit != o.cfg.ThrashLimit ||
		s.FailureLimit != o.cfg.FailureLimit || s.FallbackWindow != o.cfg.FallbackWindow {
		return fmt.Errorf("core: online state under different streaming config: %w", ErrStateMismatch)
	}
	if len(s.AuditSq) != o.cfg.AuditWindow ||
		s.AuditNext < 0 || s.AuditNext >= len(s.AuditSq) ||
		s.AuditLen < 0 || s.AuditLen > len(s.AuditSq) {
		return fmt.Errorf("core: online state audit ring %d/%d/%d: %w",
			len(s.AuditSq), s.AuditNext, s.AuditLen, ErrBadState)
	}
	if len(s.History) > o.cfg.MaxHistory {
		return fmt.Errorf("core: online state history of %d > max %d: %w",
			len(s.History), o.cfg.MaxHistory, ErrBadState)
	}
	if s.Health < int(Healthy) || s.Health > int(Failed) {
		return fmt.Errorf("core: online state health %d: %w", s.Health, ErrBadState)
	}
	if s.HasTournament != (o.tour != nil) || s.HasDrift != (o.drift != nil) {
		return fmt.Errorf("core: online state tournament/drift presence %v/%v, predictor %v/%v: %w",
			s.HasTournament, s.HasDrift, o.tour != nil, o.drift != nil, ErrStateMismatch)
	}
	if o.tour != nil && s.TournamentCfg != *o.cfg.Tournament {
		return fmt.Errorf("core: online state under different tournament config: %w", ErrStateMismatch)
	}
	if o.drift != nil && s.DriftCfg != *o.cfg.Drift {
		return fmt.Errorf("core: online state under different drift config: %w", ErrStateMismatch)
	}
	if err := o.lar.restoreState(&s.LAR); err != nil {
		return err
	}
	if err := o.selector.SetState(s.Selector); err != nil {
		return fmt.Errorf("core: restore fallback selector: %w: %v", ErrBadState, err)
	}
	if o.tour != nil {
		if err := o.tour.SetState(s.TournamentState); err != nil {
			return fmt.Errorf("core: restore tournament selector: %w: %v", ErrBadState, err)
		}
	}
	if o.drift != nil {
		if err := o.drift.SetState(s.DriftState); err != nil {
			return fmt.Errorf("core: restore drift detector: %w: %v", ErrBadState, err)
		}
	}

	o.history = append(o.history[:0], s.History...)
	copy(o.auditSq, s.AuditSq)
	o.auditNext = s.AuditNext
	o.auditLen = s.AuditLen
	o.pending = s.Pending
	o.hasPending = s.HasPending
	o.sinceRetrain = s.SinceRetrain
	o.retrains = s.Retrains
	o.health = Health(s.Health)
	o.lastFinite = s.LastFinite
	o.hasFinite = s.HasFinite
	o.breakerOpen = s.BreakerOpen
	o.halfOpen = s.HalfOpen
	o.halfOpenLeft = s.HalfOpenLeft
	o.backoff = s.Backoff
	o.backoffLeft = s.BackoffLeft
	o.consecFailures = s.ConsecFailures
	o.thrashRun = s.ThrashRun
	o.lastErr = nil
	if s.LastErr != "" {
		o.lastErr = errors.New(s.LastErr)
	}
	o.retrainFailures = s.RetrainFailures
	o.breakerTrips = s.BreakerTrips
	o.degradedForecasts = s.DegradedForecasts
	o.fallbackForecasts = s.FallbackForecasts
	o.tournamentForecasts = s.TournamentForecasts
	o.driftDemotions = s.DriftDemotions
	// A restore is not a transition, so the health field was set directly;
	// resync the exported gauges with the restored state.
	o.met.sync(o)
	return nil
}
