package core

import (
	"errors"
	"math"
	"testing"
)

func TestTrainRejectsNonFiniteData(t *testing.T) {
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	bad := arSeries(1, 100, 0.5, 1)
	bad[50] = math.NaN()
	if err := l.Train(bad); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("NaN training err = %v, want ErrBadTrainingData", err)
	}
	bad[50] = math.Inf(1)
	if err := l.Train(bad); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("Inf training err = %v, want ErrBadTrainingData", err)
	}
	if l.Trained() {
		t.Error("rejected Train left the predictor marked trained")
	}
}

func TestExpertTrainRMSE(t *testing.T) {
	series := regimeSeries(21, 400)
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(series[:200]); err != nil {
		t.Fatal(err)
	}
	rmse := l.ExpertTrainRMSE()
	if len(rmse) != 3 {
		t.Fatalf("rmse = %v", rmse)
	}
	for i, r := range rmse {
		if r <= 0 || math.IsNaN(r) {
			t.Errorf("expert %d RMSE = %g", i, r)
		}
	}
	// Returned slice must be a copy.
	rmse[0] = -1
	if l.ExpertTrainRMSE()[0] == -1 {
		t.Error("ExpertTrainRMSE exposed internal storage")
	}
}

func TestForecastStdEstimate(t *testing.T) {
	series := regimeSeries(22, 400)
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(series[:200]); err != nil {
		t.Fatal(err)
	}
	p, err := l.Forecast(series[200:205])
	if err != nil {
		t.Fatal(err)
	}
	if p.StdEstimate <= 0 || math.IsNaN(p.StdEstimate) {
		t.Fatalf("StdEstimate = %g", p.StdEstimate)
	}
	// The estimate is the selected expert's training RMSE in raw scale.
	want := l.ExpertTrainRMSE()[p.Selected] * l.Normalizer().Std
	if math.Abs(p.StdEstimate-want) > 1e-12 {
		t.Errorf("StdEstimate = %g, want %g", p.StdEstimate, want)
	}
}

func TestStdEstimateCalibrationOrder(t *testing.T) {
	// The one-sigma estimate must be the right order of magnitude: over a
	// test set, the fraction of |error| <= 2σ should be large.
	series := regimeSeries(23, 600)
	l, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Train(series[:300]); err != nil {
		t.Fatal(err)
	}
	within := 0
	total := 0
	for i := 300; i+6 < len(series); i++ {
		p, err := l.Forecast(series[i : i+5])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Value-series[i+5]) <= 2*p.StdEstimate {
			within++
		}
		total++
	}
	frac := float64(within) / float64(total)
	if frac < 0.6 {
		t.Errorf("only %.0f%% of errors within 2σ — estimate badly calibrated", 100*frac)
	}
}
