package core

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// codecSeries produces a deterministic, regime-switching series long enough
// to train on and keep forecasting afterwards.
func codecSeries(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := float64(i)
		out[i] = 10 + 3*math.Sin(t/5) + 0.8*math.Sin(t/1.7) + 0.3*math.Mod(t, 4)
	}
	return out
}

func TestLARSaveRestoreForecastsIdentical(t *testing.T) {
	series := codecSeries(200)
	cfg := DefaultConfig(5)
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Train(series[:120]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := orig.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !restored.Trained() {
		t.Fatal("restored predictor not trained")
	}
	if restored.Normalizer() != orig.Normalizer() {
		t.Fatalf("normalizer %+v != %+v", restored.Normalizer(), orig.Normalizer())
	}
	for i := 120; i+5 < len(series); i++ {
		window := series[i : i+5]
		a, errA := orig.Forecast(window)
		b, errB := restored.Forecast(window)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("window %d: err %v vs %v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Value != b.Value || a.Selected != b.Selected || a.StdEstimate != b.StdEstimate {
			t.Fatalf("window %d: forecast %+v != %+v", i, a, b)
		}
	}
	// The training labels (k-NN training set) round-trip too.
	la, lb := orig.TrainingLabels(), restored.TrainingLabels()
	if len(la) != len(lb) {
		t.Fatalf("label count %d != %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("label %d: %d != %d", i, la[i], lb[i])
		}
	}
}

func TestLARSaveRestoreUntrained(t *testing.T) {
	cfg := DefaultConfig(5)
	orig, _ := New(cfg)
	var buf bytes.Buffer
	if err := orig.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, _ := New(cfg)
	// Pre-train the target to check restore resets it back to untrained.
	if err := restored.Train(codecSeries(100)); err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Trained() {
		t.Fatal("restore of untrained state left predictor trained")
	}
	if _, err := restored.Forecast(codecSeries(5)); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("forecast after untrained restore: %v", err)
	}
}

func TestLARRestoreConfigMismatch(t *testing.T) {
	orig, _ := New(DefaultConfig(5))
	if err := orig.Train(codecSeries(120)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	other, _ := New(DefaultConfig(8)) // different window size
	if err := other.RestoreState(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("mismatched restore error = %v, want ErrStateMismatch", err)
	}
	if other.Trained() {
		t.Fatal("failed restore left predictor trained")
	}
}

func TestLARRestoreCorruptState(t *testing.T) {
	orig, _ := New(DefaultConfig(5))
	if err := orig.Train(codecSeries(120)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bit flip in the payload: checksum catches it.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x10
	target, _ := New(DefaultConfig(5))
	if err := target.RestoreState(bytes.NewReader(flipped)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bit-flipped restore error = %v, want ErrChecksum", err)
	}

	// Wrong magic.
	wrong := append([]byte(nil), data...)
	wrong[0] = 'X'
	if err := target.RestoreState(bytes.NewReader(wrong)); !errors.Is(err, ErrBadState) {
		t.Fatalf("wrong-magic restore error = %v, want ErrBadState", err)
	}

	// Truncations at every boundary never panic and always error.
	for _, n := range []int{0, 3, 8, 10, 12, 20, len(data) - 2} {
		if err := target.RestoreState(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("restore of %d-byte prefix succeeded", n)
		}
	}
	if target.Trained() {
		t.Fatal("corrupt restores left predictor trained")
	}
}

// driveOnline feeds every value of series into a fresh Online built with cfg.
func driveOnline(t *testing.T, cfg OnlineConfig, series []float64) *Online {
	t.Helper()
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range series {
		o.Observe(v)
	}
	return o
}

func onlineTestConfig() OnlineConfig {
	return OnlineConfig{
		Predictor:    DefaultConfig(5),
		TrainSize:    40,
		AuditWindow:  8,
		MSEThreshold: 0.5,
	}
}

func TestOnlineSaveRestoreResumesIdentically(t *testing.T) {
	series := codecSeries(300)
	cfg := onlineTestConfig()

	orig := driveOnline(t, cfg, series[:150])
	var buf bytes.Buffer
	if err := orig.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !restored.Trained() {
		t.Fatal("restored online predictor not trained")
	}
	if restored.Retrains() != orig.Retrains() {
		t.Fatalf("retrains %d != %d", restored.Retrains(), orig.Retrains())
	}
	if restored.HealthStats() != orig.HealthStats() {
		t.Fatalf("health stats %+v != %+v", restored.HealthStats(), orig.HealthStats())
	}

	// Feed both the same continuation; every forecast must match exactly —
	// the restored predictor has the same model, audit ring, selector
	// statistics, and backoff schedule.
	preRetrains := orig.Retrains()
	for i, v := range series[150:] {
		ra, erra := orig.Observe(v)
		rb, errb := restored.Observe(v)
		if ra != rb || (erra == nil) != (errb == nil) {
			t.Fatalf("step %d: observe (%v,%v) vs (%v,%v)", i, ra, erra, rb, errb)
		}
		pa, errA := orig.Forecast()
		pb, errB := restored.Forecast()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("step %d: forecast err %v vs %v", i, errA, errB)
		}
		if errA == nil && (pa.Value != pb.Value || pa.Source != pb.Source || pa.SelectedName != pb.SelectedName) {
			t.Fatalf("step %d: forecast %+v != %+v", i, pa, pb)
		}
	}
	if orig.Retrains() != restored.Retrains() {
		t.Fatalf("diverged retrains after continuation: %d != %d", orig.Retrains(), restored.Retrains())
	}
	t.Logf("continuation retrains: %d (had %d at snapshot)", orig.Retrains(), preRetrains)
}

func TestOnlineSaveRestoreWarmupPhase(t *testing.T) {
	// Snapshot taken before TrainSize observations: restore must land back
	// in warm-up and train at exactly the same step as an uninterrupted run.
	series := codecSeries(120)
	cfg := onlineTestConfig()

	orig := driveOnline(t, cfg, series[:25]) // warm-up: 25 < TrainSize
	if orig.Trained() {
		t.Fatal("trained during warm-up")
	}
	var buf bytes.Buffer
	if err := orig.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, _ := NewOnline(cfg)
	if err := restored.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Trained() || restored.HistoryLen() != 25 {
		t.Fatalf("restored warm-up: trained=%v history=%d", restored.Trained(), restored.HistoryLen())
	}
	for _, v := range series[25:] {
		orig.Observe(v)
		restored.Observe(v)
	}
	pa, errA := orig.Forecast()
	pb, errB := restored.Forecast()
	if errA != nil || errB != nil {
		t.Fatalf("forecast errors %v, %v", errA, errB)
	}
	if pa.Value != pb.Value {
		t.Fatalf("forecasts diverged: %g != %g", pa.Value, pb.Value)
	}
}

func TestOnlineRestoreDegradedState(t *testing.T) {
	// Break the predictor with a non-finite training window so the health
	// machinery engages, then check the whole degraded state round-trips.
	cfg := onlineTestConfig()
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := codecSeries(60)
	for i, v := range series {
		if i%3 == 1 {
			v = math.NaN() // poison training windows: every train fails
		}
		o.Observe(v)
	}
	hs := o.HealthStats()
	if hs.RetrainFailures == 0 {
		t.Fatal("expected retrain failures from poisoned series")
	}

	var buf bytes.Buffer
	if err := o.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, _ := NewOnline(cfg)
	if err := restored.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.HealthStats() != hs {
		t.Fatalf("degraded health stats %+v != %+v", restored.HealthStats(), hs)
	}
	if restored.Health() != o.Health() {
		t.Fatalf("health %v != %v", restored.Health(), o.Health())
	}
	if (restored.LastError() == nil) != (o.LastError() == nil) {
		t.Fatalf("last error %v vs %v", restored.LastError(), o.LastError())
	}
}

func TestOnlineRestoreConfigMismatch(t *testing.T) {
	cfg := onlineTestConfig()
	o := driveOnline(t, cfg, codecSeries(100))
	var buf bytes.Buffer
	if err := o.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.AuditWindow = 9
	target, err := NewOnline(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := target.RestoreState(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("mismatched restore error = %v, want ErrStateMismatch", err)
	}
}

func TestOnlineRestoreCorrupt(t *testing.T) {
	cfg := onlineTestConfig()
	o := driveOnline(t, cfg, codecSeries(100))
	var buf bytes.Buffer
	if err := o.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	target, _ := NewOnline(cfg)
	for i := 10; i < len(data); i += 97 {
		flipped := append([]byte(nil), data...)
		flipped[i] ^= 0x04
		if err := target.RestoreState(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("restore with byte %d corrupted succeeded", i)
		}
	}
	for _, n := range []int{0, 5, 11, 40, len(data) - 1} {
		if err := target.RestoreState(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("restore of %d-byte prefix succeeded", n)
		}
	}
	// After all the failed restores the target is still usable cold.
	for _, v := range codecSeries(60) {
		target.Observe(v)
	}
	if !target.Trained() {
		t.Fatal("target unusable after failed restores")
	}
}
