package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/acis-lab/larpredictor/internal/nws"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/timeseries"
	"github.com/acis-lab/larpredictor/internal/tournament"
)

// ErrNotReady is returned by Online.Forecast before enough samples have been
// observed to train the underlying LARPredictor.
var ErrNotReady = errors.New("core: online predictor not yet trained (insufficient history)")

// ErrFailed is returned by Online.Forecast once the predictor has exhausted
// its failure budget (FailureLimit consecutive failed retrains). A Failed
// predictor is terminal: a supervisor should replace it with a fresh one.
var ErrFailed = errors.New("core: online predictor failed (retrain failure budget exhausted)")

// Health is the online predictor's degradation state. The state machine is
//
//	Healthy → Tournament → Degraded → Fallback → Failed
//
// with recovery transitions back toward Healthy whenever a (re)train
// succeeds and survives the breaker's half-open confirmation window. The
// Tournament rung exists only when the tournament meta-selector is enabled
// (OnlineConfig.Tournament / WithTournament); without it demotions go
// straight to Degraded, preserving the original four-rung ladder.
type Health int

const (
	// Healthy serves forecasts from the trained LARPredictor.
	Healthy Health = iota
	// Tournament serves forecasts from the branch-predictor-style tournament
	// meta-selector over the nonparametric pool: saturating per-expert
	// confidence counters indexed by a context hash of the recent regime.
	// Like Degraded it needs no training, but it is context-sensitive where
	// the windowed-MSE selector is purely recency-weighted.
	Tournament
	// Degraded serves forecasts from the windowed cumulative-MSE selector
	// (the NWS baseline needs no classifier and no training) while retrains
	// are retried under backoff, or while the circuit breaker is open.
	Degraded
	// Fallback serves the last finite observation (the LAST expert): even
	// the selector is unusable, typically because the trailing window holds
	// non-finite samples.
	Fallback
	// Failed is terminal: FailureLimit consecutive retrains failed. Observe
	// still records history but no further retrains are attempted and
	// Forecast returns ErrFailed.
	Failed
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "Healthy"
	case Tournament:
		return "Tournament"
	case Degraded:
		return "Degraded"
	case Fallback:
		return "Fallback"
	case Failed:
		return "Failed"
	}
	return fmt.Sprintf("Health(%d)", int(h))
}

// OnlineConfig parameterizes the streaming predictor with QA-driven
// retraining (the Prediction Quality Assuror of paper Figure 1: "When the
// average MSE of the audit window exceeds a predefined threshold, it directs
// the LARPredictor to re-train the predictors and the classifier using
// recent performance data").
type OnlineConfig struct {
	// Predictor is the LARPredictor configuration.
	Predictor Config
	// TrainSize is the number of most-recent samples used for (re)training.
	TrainSize int
	// AuditWindow is the number of recent forecasts the QA averages. The
	// audit MSE is computed in normalized space.
	AuditWindow int
	// MSEThreshold triggers retraining when the audit-window MSE exceeds
	// it. A non-positive threshold disables QA retraining.
	MSEThreshold float64
	// MinRetrainSpacing is the minimum number of observations between
	// retrains, preventing thrash when a trace shifts regime abruptly.
	// Defaults to AuditWindow when zero.
	MinRetrainSpacing int
	// MaxHistory bounds the retained history buffer (0 = 4×TrainSize).
	MaxHistory int

	// RetrainBackoff is the initial retry delay, in observations, armed
	// when a (re)train fails. Each further consecutive failure multiplies
	// the delay by BackoffFactor up to MaxBackoff. Defaults to
	// MinRetrainSpacing.
	RetrainBackoff int
	// BackoffFactor is the exponential backoff multiplier (default 2; must
	// be >= 1 when set).
	BackoffFactor float64
	// MaxBackoff caps the retry delay in observations (0 = 8×RetrainBackoff).
	MaxBackoff int
	// BreakerThreshold opens the circuit breaker after this many
	// consecutive retrain failures (default 5). While open, retrains are
	// attempted only as probes every ProbeSpacing observations.
	BreakerThreshold int
	// ProbeSpacing is the number of observations between probe retrains
	// while the breaker is open (0 = MaxBackoff).
	ProbeSpacing int
	// HalfOpenWindow is the number of observations a successful probe must
	// survive without a fresh QA breach before the breaker closes
	// (0 = 2×max(MinRetrainSpacing, AuditWindow)).
	HalfOpenWindow int
	// ThrashLimit trips the breaker after this many consecutive QA retrains
	// fired at (close to) the minimum possible spacing — retraining that
	// frequently is not helping, so the breaker stops the storm. Default 4;
	// negative disables thrash detection.
	ThrashLimit int
	// FailureLimit moves the predictor to the terminal Failed state after
	// this many consecutive retrain failures (0 = 3×BreakerThreshold;
	// negative disables, keeping the predictor Degraded forever).
	FailureLimit int
	// FallbackWindow is the sliding window, in observations, of the
	// degraded-mode cumulative-MSE selector (0 = AuditWindow).
	FallbackWindow int

	// Tournament, when non-nil, enables the tournament meta-selector tier
	// between the LARPredictor and the windowed-MSE selector: demotions land
	// on the Tournament rung and degraded forecasts are served by the
	// tournament's context-indexed choice of nonparametric expert. The
	// Experts field is overridden to the fallback-pool size; zero fields
	// take the tournament package defaults.
	Tournament *tournament.Config
	// Drift, when non-nil, enables proactive drift demotion: a windowed
	// error-ratio CUSUM over the active LAR model's squared forecast error
	// (normalized space, the same stream the QA audits) that demotes a
	// stale-but-not-yet-failing model to the tournament tier before the
	// absolute QA threshold would fire. Requires Tournament.
	Drift *tournament.DriftConfig
}

func (c *OnlineConfig) validate() error {
	if err := c.Predictor.validate(); err != nil {
		return err
	}
	if c.TrainSize < c.Predictor.WindowSize+2 {
		return fmt.Errorf("core: train size %d < window+2 (%d): %w",
			c.TrainSize, c.Predictor.WindowSize+2, ErrBadConfig)
	}
	if c.AuditWindow < 1 {
		return fmt.Errorf("core: audit window %d < 1: %w", c.AuditWindow, ErrBadConfig)
	}
	if c.BackoffFactor != 0 && c.BackoffFactor < 1 {
		return fmt.Errorf("core: backoff factor %g < 1: %w", c.BackoffFactor, ErrBadConfig)
	}
	if c.Drift != nil && c.Tournament == nil {
		return fmt.Errorf("core: drift demotion requires the tournament tier: %w", ErrBadConfig)
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"retrain backoff", c.RetrainBackoff},
		{"max backoff", c.MaxBackoff},
		{"breaker threshold", c.BreakerThreshold},
		{"probe spacing", c.ProbeSpacing},
		{"half-open window", c.HalfOpenWindow},
		{"fallback window", c.FallbackWindow},
	} {
		if f.v < 0 {
			return fmt.Errorf("core: %s %d < 0: %w", f.name, f.v, ErrBadConfig)
		}
	}
	return nil
}

// Online wraps a LARPredictor in a streaming interface: feed observations
// one at a time with Observe, read one-step-ahead forecasts with Forecast.
// It trains itself once TrainSize samples have arrived and retrains when the
// QA audit fires.
//
// Online is fault tolerant: a failed (re)train no longer surfaces as an
// Observe error. Instead the predictor degrades down an explicit ladder —
// trained LARPredictor, then the windowed cumulative-MSE selector over a
// nonparametric pool (LAST, SW_AVG, SW_MEDIAN), then the last finite
// observation — while retrains are retried under exponential backoff and a
// circuit breaker. Health reports the current rung. Not safe for concurrent
// use.
type Online struct {
	cfg OnlineConfig
	lar *LARPredictor

	// Observability hooks; both nil (and free) unless attached via
	// WithMetrics/WithTracer.
	met    *onlineMetrics
	tracer obs.Tracer

	history []float64
	// audit ring of recent squared errors (normalized space)
	auditSq   []float64
	auditNext int
	auditLen  int

	// pending holds the last LAR forecast, compared against the next
	// observation. Degraded forecasts never arm pending: the QA audits the
	// LARPredictor, not the safety net.
	pending    float64
	hasPending bool

	sinceRetrain int
	retrains     int

	// Degraded-mode machinery.
	health     Health
	selector   *nws.Selector    // windowed cumulative-MSE fallback selector
	fbPool     *predictors.Pool // nonparametric pool backing selector
	tour       *tournament.Selector
	drift      *tournament.DriftDetector
	lastFinite float64
	hasFinite  bool

	// Backoff and circuit breaker (all delays in observation counts, since
	// time is simulated upstream).
	breakerOpen    bool
	halfOpen       bool
	halfOpenLeft   int
	backoff        int // next armed delay
	backoffLeft    int // observations until the next attempt is allowed
	consecFailures int
	thrashRun      int
	thrashSpacing  int
	lastErr        error

	retrainFailures     int
	breakerTrips        int
	degradedForecasts   int
	fallbackForecasts   int
	tournamentForecasts int
	driftDemotions      int
}

// NewOnline validates the configuration and returns an empty streaming
// predictor. Options attach pools, vote strategies, metrics, and tracing
// to both the wrapper and the inner LARPredictor; see Option.
func NewOnline(cfg OnlineConfig, opts ...Option) (*Online, error) {
	set := applyOptions(opts)
	set.apply(&cfg.Predictor)
	set.applyOnline(&cfg)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MinRetrainSpacing == 0 {
		cfg.MinRetrainSpacing = cfg.AuditWindow
	}
	if cfg.MaxHistory == 0 {
		cfg.MaxHistory = 4 * cfg.TrainSize
	}
	if cfg.MaxHistory < cfg.TrainSize {
		return nil, fmt.Errorf("core: max history %d < train size %d: %w",
			cfg.MaxHistory, cfg.TrainSize, ErrBadConfig)
	}
	if cfg.RetrainBackoff == 0 {
		cfg.RetrainBackoff = cfg.MinRetrainSpacing
	}
	if cfg.BackoffFactor == 0 {
		cfg.BackoffFactor = 2
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 8 * cfg.RetrainBackoff
	}
	if cfg.MaxBackoff < cfg.RetrainBackoff {
		return nil, fmt.Errorf("core: max backoff %d < retrain backoff %d: %w",
			cfg.MaxBackoff, cfg.RetrainBackoff, ErrBadConfig)
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.ProbeSpacing == 0 {
		cfg.ProbeSpacing = cfg.MaxBackoff
	}
	minFire := cfg.MinRetrainSpacing
	if cfg.AuditWindow > minFire {
		minFire = cfg.AuditWindow
	}
	if cfg.HalfOpenWindow == 0 {
		cfg.HalfOpenWindow = 2 * minFire
	}
	if cfg.ThrashLimit == 0 {
		cfg.ThrashLimit = 4
	}
	if cfg.FailureLimit == 0 {
		cfg.FailureLimit = 3 * cfg.BreakerThreshold
	}
	if cfg.FallbackWindow == 0 {
		cfg.FallbackWindow = cfg.AuditWindow
	}
	lar, err := New(cfg.Predictor, opts...)
	if err != nil {
		return nil, err
	}
	m := cfg.Predictor.WindowSize
	fbPool := predictors.NewPool(
		predictors.NewLast(),
		predictors.NewSWAvg(m),
		predictors.NewSWMedian(m),
	)
	selector, err := nws.NewWindowedMSE(fbPool, cfg.FallbackWindow)
	if err != nil {
		return nil, fmt.Errorf("core: fallback selector: %w", err)
	}
	selector.Instrument(set.metrics)
	var tour *tournament.Selector
	var drift *tournament.DriftDetector
	if cfg.Tournament != nil {
		tcfg := *cfg.Tournament
		tcfg.Experts = fbPool.Size()
		tour, err = tournament.New(tcfg)
		if err != nil {
			return nil, fmt.Errorf("core: tournament selector: %w", err)
		}
		tour.Instrument(set.metrics, fbPool.Names())
		// Store the defaulted copy so snapshots compare against the
		// effective configuration, mirroring the other config fields.
		resolved := tour.Config()
		cfg.Tournament = &resolved
	}
	if cfg.Drift != nil {
		drift, err = tournament.NewDetector(*cfg.Drift)
		if err != nil {
			return nil, fmt.Errorf("core: drift detector: %w", err)
		}
		resolved := drift.Config()
		cfg.Drift = &resolved
	}
	return &Online{
		cfg:      cfg,
		lar:      lar,
		met:      newOnlineMetrics(set.metrics),
		tracer:   set.tracer,
		auditSq:  make([]float64, cfg.AuditWindow),
		health:   Healthy,
		selector: selector,
		fbPool:   fbPool,
		tour:     tour,
		drift:    drift,
		backoff:  cfg.RetrainBackoff,
		// A retrain can fire no earlier than max(MinRetrainSpacing,
		// AuditWindow) observations after the last one (the audit ring must
		// refill). Firing within half an audit window of that floor counts
		// as thrash.
		thrashSpacing: minFire + cfg.AuditWindow/2,
	}, nil
}

// degradeRung is the first rung below Healthy: Tournament when the
// tournament tier is enabled, Degraded otherwise. Every demotion from
// Healthy routes through it so the ladder keeps its original shape when
// the tier is off.
func (o *Online) degradeRung() Health {
	if o.tour != nil {
		return Tournament
	}
	return Degraded
}

// setHealth moves the health state machine to h, recording the transition
// in the attached metrics. All live-path health changes go through it;
// RestoreState sets the field directly (a restore is not a transition) and
// resyncs the gauges afterwards.
func (o *Online) setHealth(h Health) {
	if h == o.health {
		return
	}
	o.met.recordHealth(o.health, h)
	o.health = h
}

// Retrains returns how many times QA has retrained the model (the initial
// training does not count).
func (o *Online) Retrains() int { return o.retrains }

// Trained reports whether the underlying model is trained.
func (o *Online) Trained() bool { return o.lar.Trained() }

// HistoryLen returns the number of retained observations.
func (o *Online) HistoryLen() int { return len(o.history) }

// Health returns the predictor's current degradation state.
func (o *Online) Health() Health { return o.health }

// LastError returns the error of the most recent failed (re)train, or nil
// if the last attempt succeeded.
func (o *Online) LastError() error { return o.lastErr }

// HealthStats is a point-in-time snapshot of the resilience machinery, for
// supervisors and status endpoints.
type HealthStats struct {
	// State is the current rung of the degradation ladder.
	State Health
	// BreakerOpen reports an open (or half-open) circuit breaker.
	BreakerOpen bool
	// HalfOpen reports that a probe retrain succeeded and is awaiting
	// confirmation before the breaker closes.
	HalfOpen bool
	// ConsecutiveFailures counts retrain failures since the last success.
	ConsecutiveFailures int
	// RetrainFailures counts all failed (re)train attempts.
	RetrainFailures int
	// Retrains counts successful QA retrains.
	Retrains int
	// BreakerTrips counts how many times the breaker opened (failures or
	// thrash).
	BreakerTrips int
	// DegradedForecasts counts forecasts served by the fallback selector.
	DegradedForecasts int
	// FallbackForecasts counts last-resort (last finite value) forecasts.
	FallbackForecasts int
	// TournamentForecasts counts forecasts served by the tournament
	// meta-selector tier (always 0 when the tier is disabled).
	TournamentForecasts int
	// DriftDemotions counts proactive Healthy→Tournament demotions fired by
	// the drift detector (always 0 when drift demotion is disabled).
	DriftDemotions int
	// NextAttemptIn is the number of observations until the next (re)train
	// attempt is allowed (0 = allowed now).
	NextAttemptIn int
	// LastError is the most recent retrain failure message ("" if the last
	// attempt succeeded).
	LastError string
}

// HealthStats returns a snapshot of the resilience counters.
func (o *Online) HealthStats() HealthStats {
	s := HealthStats{
		State:               o.health,
		BreakerOpen:         o.breakerOpen,
		HalfOpen:            o.halfOpen,
		ConsecutiveFailures: o.consecFailures,
		RetrainFailures:     o.retrainFailures,
		Retrains:            o.retrains,
		BreakerTrips:        o.breakerTrips,
		DegradedForecasts:   o.degradedForecasts,
		FallbackForecasts:   o.fallbackForecasts,
		TournamentForecasts: o.tournamentForecasts,
		DriftDemotions:      o.driftDemotions,
		NextAttemptIn:       o.backoffLeft,
	}
	if o.lastErr != nil {
		s.LastError = o.lastErr.Error()
	}
	return s
}

// AuditMSE returns the QA's current audit-window MSE (normalized space) and
// the number of forecasts it covers.
func (o *Online) AuditMSE() (float64, int) {
	if o.auditLen == 0 {
		return 0, 0
	}
	var s float64
	for i := 0; i < o.auditLen; i++ {
		s += o.auditSq[i]
	}
	return s / float64(o.auditLen), o.auditLen
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func allFinite(v []float64) bool {
	for _, x := range v {
		if !isFinite(x) {
			return false
		}
	}
	return true
}

// Observe feeds one observation. It scores the previous LAR forecast (if
// any) for the QA audit, keeps the fallback selector's error statistics
// warm, appends to history, performs initial training when enough samples
// have arrived, and retrains when the audit MSE breaches the threshold —
// subject to the backoff and circuit-breaker schedule. It reports whether a
// (re)train happened.
//
// A failed (re)train is absorbed into the health state machine (see Health
// and LastError) rather than returned: the predictor degrades but keeps
// serving. Observe never retries a failed train on the very next
// observation; the armed backoff governs the next attempt.
func (o *Online) Observe(v float64) (retrained bool, err error) {
	defer o.observeGauges()
	// Score the pending forecast in normalized space.
	driftFired := false
	if o.hasPending && o.lar.Trained() && isFinite(v) && isFinite(o.pending) {
		sp := obs.StartSpan(o.tracer, obs.StageQAAudit)
		d := o.lar.Normalizer().ApplyValue(o.pending) - o.lar.Normalizer().ApplyValue(v)
		o.auditSq[o.auditNext] = d * d
		o.auditNext = (o.auditNext + 1) % len(o.auditSq)
		if o.auditLen < len(o.auditSq) {
			o.auditLen++
		}
		// The drift detector watches the same normalized error stream the QA
		// audits, but tests it relatively (recent vs long-run level), so it
		// reacts to a regime shift before the absolute threshold is crossed.
		if o.drift != nil {
			driftFired = o.drift.Observe(d * d)
		}
		obs.EndSpan(sp, nil)
	}
	o.hasPending = false

	o.foldSelector(v)
	if isFinite(v) {
		o.lastFinite, o.hasFinite = v, true
	}

	o.history = append(o.history, v)
	if len(o.history) > o.cfg.MaxHistory {
		// Drop the oldest half-excess in one copy to amortize.
		excess := len(o.history) - o.cfg.MaxHistory
		o.history = append(o.history[:0], o.history[excess:]...)
	}
	o.sinceRetrain++
	if o.backoffLeft > 0 {
		o.backoffLeft--
	}

	if o.health == Failed {
		return false, nil
	}

	// Proactive drift demotion: the active model's recent error has run
	// persistently above its own long-run level. Demote to the tournament
	// tier now — the ordinary degraded-rung retry path then retrains it —
	// rather than waiting for the QA audit's absolute threshold. Gated on
	// the same spacing as QA retrains so a shift right after a (re)train
	// cannot thrash the ladder.
	if driftFired && o.health == Healthy && !o.breakerOpen && !o.halfOpen &&
		o.sinceRetrain >= o.cfg.MinRetrainSpacing {
		o.driftDemotions++
		if o.met != nil {
			o.met.driftDemotions.Inc()
		}
		o.setHealth(o.degradeRung())
	}

	// Half-open: a probe model is serving. A fresh QA breach reopens the
	// breaker; surviving the confirmation window closes it.
	if o.halfOpen {
		o.halfOpenLeft--
		if o.qaBreach() {
			o.reopenBreaker()
		} else if o.halfOpenLeft <= 0 {
			o.closeBreaker()
		}
		return false, nil
	}

	switch {
	case !o.lar.Trained():
		// Initial training (or retry after a failed initial training).
		if len(o.history) >= o.cfg.TrainSize && o.backoffLeft == 0 {
			return o.attemptTrain(), nil
		}
	case o.breakerOpen:
		// Probe retrain on the breaker's schedule.
		if o.backoffLeft == 0 {
			return o.attemptTrain(), nil
		}
	case o.health != Healthy:
		// Degraded by a failed retrain with the breaker still closed:
		// retry when the backoff expires, no QA signal needed.
		if o.backoffLeft == 0 {
			return o.attemptTrain(), nil
		}
	case o.qaFires():
		return o.attemptTrain(), nil
	}
	return false, nil
}

// foldSelector folds one observation into the fallback selector's error
// statistics so the safety net is warm the moment a retrain fails. Called
// before v is appended, so the trailing history is the prediction window
// that precedes v.
func (o *Online) foldSelector(v float64) {
	m := o.cfg.Predictor.WindowSize
	if len(o.history) < m {
		return
	}
	w := o.history[len(o.history)-m:]
	if !allFinite(w) || !isFinite(v) {
		// The selectors cannot run on this window; if one is the active
		// forecast source, drop to the last-resort rung.
		if o.health == Degraded || o.health == Tournament {
			o.setHealth(Fallback)
		}
		return
	}
	step, err := o.selector.Step(w, v)
	if err != nil {
		if o.health == Degraded || o.health == Tournament {
			o.setHealth(Fallback)
		}
		return
	}
	// The tournament rides the selector's per-expert forecast buffer: same
	// pool, same predictor runs, no extra allocations. The current health
	// rung tags the context hash so regimes that only differ in ladder
	// position learn separate choice tables.
	if o.tour != nil {
		o.tour.SetTag(uint8(o.health))
		o.tour.Observe(step.All, v)
	}
	if o.health == Fallback {
		o.setHealth(o.degradeRung())
	}
}

// observeGauges refreshes the per-observation gauges (backoff countdown,
// audit MSE). One deferred call per Observe; free when uninstrumented.
func (o *Online) observeGauges() {
	if o.met == nil {
		return
	}
	o.met.backoffLeft.Set(float64(o.backoffLeft))
	if mse, n := o.AuditMSE(); n > 0 {
		o.met.auditMSE.Set(mse)
	}
}

// qaFires reports whether the QA audit demands a retrain.
func (o *Online) qaFires() bool {
	if o.sinceRetrain < o.cfg.MinRetrainSpacing {
		return false
	}
	return o.qaBreach()
}

// qaBreach reports a full audit window above the MSE threshold, ignoring
// retrain spacing.
func (o *Online) qaBreach() bool {
	if o.cfg.MSEThreshold <= 0 {
		return false
	}
	if o.auditLen < len(o.auditSq) {
		return false // audit window not yet full
	}
	mse, _ := o.AuditMSE()
	return mse > o.cfg.MSEThreshold
}

// attemptTrain runs one (re)train attempt and routes the outcome through
// the health state machine. It reports whether the train succeeded.
func (o *Online) attemptTrain() bool {
	wasTrained := o.lar.Trained()
	probe := o.breakerOpen
	spacing := o.sinceRetrain
	if o.met != nil {
		o.met.retrainAttempts.Inc()
	}
	if err := o.train(); err != nil {
		o.trainFailed(err)
		return false
	}
	o.lastErr = nil
	if wasTrained {
		o.retrains++
	}
	if probe {
		// The probe succeeded; serve the fresh model but stay formally on
		// the degraded rung until it survives the half-open confirmation
		// window.
		o.halfOpen = true
		o.halfOpenLeft = o.cfg.HalfOpenWindow
		o.setHealth(o.degradeRung())
		return true
	}
	o.setHealth(Healthy)
	o.consecFailures = 0
	o.backoff = o.cfg.RetrainBackoff
	// Thrash detection: QA retrains firing back-to-back at (close to) the
	// minimum possible spacing mean retraining is not fixing the model.
	if wasTrained && o.cfg.ThrashLimit > 0 && spacing <= o.thrashSpacing {
		o.thrashRun++
		if o.thrashRun >= o.cfg.ThrashLimit {
			o.tripBreaker()
		}
	} else {
		o.thrashRun = 0
	}
	return true
}

// trainFailed arms the backoff, trips the breaker on repeated failures, and
// moves the predictor down the ladder.
func (o *Online) trainFailed(err error) {
	o.lastErr = err
	o.retrainFailures++
	o.consecFailures++
	o.thrashRun = 0
	if o.met != nil {
		o.met.retrainFailures.Inc()
	}
	if o.health == Healthy {
		o.setHealth(o.degradeRung())
	}
	if o.cfg.FailureLimit > 0 && o.consecFailures >= o.cfg.FailureLimit {
		o.setHealth(Failed)
		return
	}
	if o.breakerOpen {
		// Failed probe: wait a full probe interval before the next one.
		o.backoffLeft = o.cfg.ProbeSpacing
		return
	}
	if o.consecFailures >= o.cfg.BreakerThreshold {
		o.tripBreaker()
		return
	}
	o.backoffLeft = o.backoff
	next := int(float64(o.backoff) * o.cfg.BackoffFactor)
	if next <= o.backoff {
		next = o.backoff + 1
	}
	if next > o.cfg.MaxBackoff {
		next = o.cfg.MaxBackoff
	}
	o.backoff = next
}

// tripBreaker opens the circuit breaker: no retrains until the next probe.
func (o *Online) tripBreaker() {
	o.breakerOpen = true
	o.halfOpen = false
	o.breakerTrips++
	o.breakerDegrade()
	o.backoffLeft = o.cfg.ProbeSpacing
	o.thrashRun = 0
	if o.met != nil {
		o.met.breakerTrips.Inc()
		o.met.breakerOpen.Set(1)
	}
}

// reopenBreaker handles a QA breach during half-open confirmation.
func (o *Online) reopenBreaker() {
	o.halfOpen = false
	o.breakerTrips++
	o.breakerDegrade()
	o.backoffLeft = o.cfg.ProbeSpacing
	if o.met != nil {
		o.met.breakerTrips.Inc()
		o.met.breakerOpen.Set(1)
	}
}

// breakerDegrade drops the health off the Healthy rung without clobbering a
// deeper rung (Fallback/Failed).
func (o *Online) breakerDegrade() {
	if o.health == Healthy {
		o.setHealth(o.degradeRung())
	}
}

// closeBreaker confirms a recovered model after a clean half-open window.
func (o *Online) closeBreaker() {
	o.breakerOpen = false
	o.halfOpen = false
	o.setHealth(Healthy)
	o.consecFailures = 0
	o.backoff = o.cfg.RetrainBackoff
	o.thrashRun = 0
	if o.met != nil {
		o.met.breakerOpen.Set(0)
	}
}

// train (re)fits the LARPredictor on the most recent TrainSize samples and
// clears the audit ring. On failure the previous model (if any) and audit
// state are left untouched; the caller arms the retry backoff.
func (o *Online) train() error {
	train := o.history[len(o.history)-o.cfg.TrainSize:]
	if err := o.lar.Train(train); err != nil {
		return fmt.Errorf("core: online (re)train: %w", err)
	}
	o.sinceRetrain = 0
	o.auditNext, o.auditLen = 0, 0
	if o.drift != nil {
		// The fresh model accumulates a fresh error reference.
		o.drift.Reset()
	}
	return nil
}

// Forecast returns the one-step-ahead forecast from the current history,
// served by the highest rung of the fallback ladder that is currently
// usable:
//
//  1. the trained LARPredictor (Healthy, or half-open breaker probes),
//  2. the tournament meta-selector over {LAST, SW_AVG, SW_MEDIAN}, when the
//     tier is enabled,
//  3. the windowed cumulative-MSE selector over the same pool,
//  4. the last finite observation.
//
// Prediction.Source identifies the rung. LAR forecasts are remembered and
// scored against the next Observe; degraded forecasts are not, so the QA
// audit always measures the LARPredictor itself. ErrFailed is returned in
// the terminal Failed state, ErrNotReady when nothing can forecast yet.
func (o *Online) Forecast() (Prediction, error) {
	if o.health == Failed {
		return Prediction{}, ErrFailed
	}
	serveLAR := o.lar.Trained() && (o.health == Healthy || o.halfOpen)
	if serveLAR {
		p, err := o.larForecast()
		if err == nil && isFinite(p.Value) {
			return p, nil
		}
		// A trained model that cannot forecast this window: degrade for
		// this forecast only; the QA/backoff machinery owns state changes.
		return o.degradedForecast()
	}
	if !o.lar.Trained() && o.health == Healthy {
		// Never trained and never failed: preserve warm-up semantics.
		return Prediction{}, ErrNotReady
	}
	return o.degradedForecast()
}

// larForecast is the Healthy-rung forecast path.
func (o *Online) larForecast() (Prediction, error) {
	m := o.cfg.Predictor.WindowSize
	if len(o.history) < m {
		return Prediction{}, fmt.Errorf("core: %d observations, need >= %d: %w",
			len(o.history), m, timeseries.ErrShort)
	}
	p, err := o.lar.Forecast(o.history[len(o.history)-m:])
	if err != nil {
		return Prediction{}, err
	}
	// Arm the QA's pending forecast only when it is finite. A non-finite
	// value (the window held a NaN/Inf) is never served — Forecast degrades
	// it — and scoring it would write NaN into the audit ring, where it
	// disables the MSE comparison (NaN > threshold is always false) until
	// it ages out.
	if isFinite(p.Value) {
		o.pending = p.Value
		o.hasPending = true
	}
	return p, nil
}

// degradedForecast serves the selector rung, falling through to the
// last-resort rung when the selector cannot run.
func (o *Online) degradedForecast() (Prediction, error) {
	sp := obs.StartSpan(o.tracer, obs.StageFallbackForecast)
	p, err := o.degradedForecastInner()
	obs.EndSpan(sp, err)
	return p, err
}

func (o *Online) degradedForecastInner() (Prediction, error) {
	m := o.cfg.Predictor.WindowSize
	if len(o.history) >= m {
		w := o.history[len(o.history)-m:]
		if allFinite(w) {
			// Tournament rung: the context-indexed choice of expert, when
			// the tier is enabled. Falls through to the windowed-MSE
			// selector if the chosen expert cannot forecast this window.
			if o.tour != nil {
				sel := o.tour.Select()
				if v, err := o.fbPool.At(sel).Predict(w); err == nil && isFinite(v) {
					o.tournamentForecasts++
					if o.met != nil {
						o.met.forecastsTournament.Inc()
					}
					var std float64
					if stats := o.selector.ErrStats(); isFinite(stats[sel]) && stats[sel] > 0 {
						std = math.Sqrt(stats[sel])
					}
					return Prediction{
						Value:        v,
						Normalized:   o.normalizedIfTrained(v),
						Selected:     sel,
						SelectedName: o.fbPool.At(sel).Name(),
						StdEstimate:  std,
						Source:       SourceTournament,
					}, nil
				}
			}
			sel := o.selector.Select()
			if v, err := o.fbPool.At(sel).Predict(w); err == nil && isFinite(v) {
				o.degradedForecasts++
				if o.met != nil {
					o.met.forecastsSelector.Inc()
				}
				var std float64
				if stats := o.selector.ErrStats(); stats[sel] > 0 {
					std = math.Sqrt(stats[sel])
				}
				return Prediction{
					Value:        v,
					Normalized:   o.normalizedIfTrained(v),
					Selected:     sel,
					SelectedName: o.fbPool.At(sel).Name(),
					StdEstimate:  std,
					Source:       SourceSelector,
				}, nil
			}
		}
	}
	if !o.hasFinite {
		return Prediction{}, ErrNotReady
	}
	o.fallbackForecasts++
	if o.met != nil {
		o.met.forecastsLastResort.Inc()
	}
	if o.health == Degraded || o.health == Tournament {
		o.setHealth(Fallback)
	}
	return Prediction{
		Value:        o.lastFinite,
		Normalized:   o.normalizedIfTrained(o.lastFinite),
		SelectedName: "LAST",
		Source:       SourceLastResort,
	}, nil
}

// normalizedIfTrained maps a raw value through the trained normalizer, or
// returns 0 when no normalization coefficients exist yet.
func (o *Online) normalizedIfTrained(v float64) float64 {
	if !o.lar.Trained() {
		return 0
	}
	return o.lar.Normalizer().ApplyValue(v)
}

// Step fuses the Observe+Forecast pair every streaming consumer writes:
// it feeds one observation, then returns the one-step-ahead forecast for
// the observation that follows, along with the health rung that served
// it. The error is ErrNotReady during warm-up, ErrFailed in the terminal
// state — the same contracts as Forecast; the observation is recorded
// either way. Use Observe and Forecast separately when the two must be
// interleaved with other work (e.g. scoring the previous forecast against
// v before issuing the next one).
func (o *Online) Step(v float64) (Prediction, Health, error) {
	if _, err := o.Observe(v); err != nil {
		return Prediction{}, o.health, err
	}
	p, err := o.Forecast()
	return p, o.health, err
}
