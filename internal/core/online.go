package core

import (
	"errors"
	"fmt"

	"github.com/acis-lab/larpredictor/internal/timeseries"
)

// ErrNotReady is returned by Online.Forecast before enough samples have been
// observed to train the underlying LARPredictor.
var ErrNotReady = errors.New("core: online predictor not yet trained (insufficient history)")

// OnlineConfig parameterizes the streaming predictor with QA-driven
// retraining (the Prediction Quality Assuror of paper Figure 1: "When the
// average MSE of the audit window exceeds a predefined threshold, it directs
// the LARPredictor to re-train the predictors and the classifier using
// recent performance data").
type OnlineConfig struct {
	// Predictor is the LARPredictor configuration.
	Predictor Config
	// TrainSize is the number of most-recent samples used for (re)training.
	TrainSize int
	// AuditWindow is the number of recent forecasts the QA averages. The
	// audit MSE is computed in normalized space.
	AuditWindow int
	// MSEThreshold triggers retraining when the audit-window MSE exceeds
	// it. A non-positive threshold disables QA retraining.
	MSEThreshold float64
	// MinRetrainSpacing is the minimum number of observations between
	// retrains, preventing thrash when a trace shifts regime abruptly.
	// Defaults to AuditWindow when zero.
	MinRetrainSpacing int
	// MaxHistory bounds the retained history buffer (0 = 4×TrainSize).
	MaxHistory int
}

func (c *OnlineConfig) validate() error {
	if err := c.Predictor.validate(); err != nil {
		return err
	}
	if c.TrainSize < c.Predictor.WindowSize+2 {
		return fmt.Errorf("core: train size %d < window+2 (%d): %w",
			c.TrainSize, c.Predictor.WindowSize+2, ErrBadConfig)
	}
	if c.AuditWindow < 1 {
		return fmt.Errorf("core: audit window %d < 1: %w", c.AuditWindow, ErrBadConfig)
	}
	return nil
}

// Online wraps a LARPredictor in a streaming interface: feed observations
// one at a time with Observe, read one-step-ahead forecasts with Forecast.
// It trains itself once TrainSize samples have arrived and retrains when the
// QA audit fires. Not safe for concurrent use.
type Online struct {
	cfg OnlineConfig
	lar *LARPredictor

	history []float64
	// audit ring of recent squared errors (normalized space)
	auditSq   []float64
	auditNext int
	auditLen  int

	// pending holds the last forecast, compared against the next observation.
	pending    float64
	hasPending bool

	sinceRetrain int
	retrains     int
}

// NewOnline validates the configuration and returns an empty streaming
// predictor.
func NewOnline(cfg OnlineConfig) (*Online, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MinRetrainSpacing == 0 {
		cfg.MinRetrainSpacing = cfg.AuditWindow
	}
	if cfg.MaxHistory == 0 {
		cfg.MaxHistory = 4 * cfg.TrainSize
	}
	if cfg.MaxHistory < cfg.TrainSize {
		return nil, fmt.Errorf("core: max history %d < train size %d: %w",
			cfg.MaxHistory, cfg.TrainSize, ErrBadConfig)
	}
	lar, err := New(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	return &Online{
		cfg:     cfg,
		lar:     lar,
		auditSq: make([]float64, cfg.AuditWindow),
	}, nil
}

// Retrains returns how many times QA has retrained the model (the initial
// training does not count).
func (o *Online) Retrains() int { return o.retrains }

// Trained reports whether the underlying model is trained.
func (o *Online) Trained() bool { return o.lar.Trained() }

// HistoryLen returns the number of retained observations.
func (o *Online) HistoryLen() int { return len(o.history) }

// AuditMSE returns the QA's current audit-window MSE (normalized space) and
// the number of forecasts it covers.
func (o *Online) AuditMSE() (float64, int) {
	if o.auditLen == 0 {
		return 0, 0
	}
	var s float64
	for i := 0; i < o.auditLen; i++ {
		s += o.auditSq[i]
	}
	return s / float64(o.auditLen), o.auditLen
}

// Observe feeds one observation. It scores the previous forecast (if any)
// for the QA audit, appends to history, performs initial training when
// enough samples have arrived, and retrains when the audit MSE breaches the
// threshold. It reports whether a (re)train happened.
func (o *Online) Observe(v float64) (retrained bool, err error) {
	// Score the pending forecast in normalized space.
	if o.hasPending && o.lar.Trained() {
		d := o.lar.Normalizer().ApplyValue(o.pending) - o.lar.Normalizer().ApplyValue(v)
		o.auditSq[o.auditNext] = d * d
		o.auditNext = (o.auditNext + 1) % len(o.auditSq)
		if o.auditLen < len(o.auditSq) {
			o.auditLen++
		}
	}
	o.hasPending = false

	o.history = append(o.history, v)
	if len(o.history) > o.cfg.MaxHistory {
		// Drop the oldest half-excess in one copy to amortize.
		excess := len(o.history) - o.cfg.MaxHistory
		o.history = append(o.history[:0], o.history[excess:]...)
	}
	o.sinceRetrain++

	switch {
	case !o.lar.Trained():
		if len(o.history) >= o.cfg.TrainSize {
			if err := o.train(); err != nil {
				return false, err
			}
			return true, nil
		}
	case o.qaFires():
		if err := o.train(); err != nil {
			return false, err
		}
		o.retrains++
		return true, nil
	}
	return false, nil
}

// qaFires reports whether the QA audit demands a retrain.
func (o *Online) qaFires() bool {
	if o.cfg.MSEThreshold <= 0 {
		return false
	}
	if o.sinceRetrain < o.cfg.MinRetrainSpacing {
		return false
	}
	if o.auditLen < len(o.auditSq) {
		return false // audit window not yet full
	}
	mse, _ := o.AuditMSE()
	return mse > o.cfg.MSEThreshold
}

// train (re)fits the LARPredictor on the most recent TrainSize samples and
// clears the audit ring.
func (o *Online) train() error {
	train := o.history[len(o.history)-o.cfg.TrainSize:]
	if err := o.lar.Train(train); err != nil {
		return fmt.Errorf("core: online (re)train: %w", err)
	}
	o.sinceRetrain = 0
	o.auditNext, o.auditLen = 0, 0
	return nil
}

// Forecast returns the one-step-ahead forecast from the current history.
// The forecast is remembered and scored against the next Observe.
func (o *Online) Forecast() (Prediction, error) {
	if !o.lar.Trained() {
		return Prediction{}, ErrNotReady
	}
	m := o.cfg.Predictor.WindowSize
	if len(o.history) < m {
		return Prediction{}, fmt.Errorf("core: %d observations, need >= %d: %w",
			len(o.history), m, timeseries.ErrShort)
	}
	p, err := o.lar.Forecast(o.history[len(o.history)-m:])
	if err != nil {
		return Prediction{}, err
	}
	o.pending = p.Value
	o.hasPending = true
	return p, nil
}
