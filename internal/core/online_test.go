package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func onlineCfg(window, trainSize int) OnlineConfig {
	return OnlineConfig{
		Predictor:    DefaultConfig(window),
		TrainSize:    trainSize,
		AuditWindow:  10,
		MSEThreshold: 2.0,
	}
}

func TestNewOnlineValidation(t *testing.T) {
	bad := []OnlineConfig{
		{Predictor: DefaultConfig(5), TrainSize: 3, AuditWindow: 5},                  // train size too small
		{Predictor: DefaultConfig(5), TrainSize: 50, AuditWindow: 0},                 // bad audit window
		{Predictor: Config{WindowSize: 1, K: 3}, TrainSize: 50, AuditWindow: 5},      // bad inner config
		{Predictor: DefaultConfig(5), TrainSize: 50, AuditWindow: 5, MaxHistory: 10}, // history < train
	}
	for i, cfg := range bad {
		if _, err := NewOnline(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestOnlineTrainsAfterEnoughSamples(t *testing.T) {
	o, err := NewOnline(onlineCfg(5, 50))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var trainedAt int
	for i := 0; i < 60; i++ {
		if _, err := o.Forecast(); i < 49 && !errors.Is(err, ErrNotReady) {
			t.Fatalf("sample %d: Forecast err = %v, want ErrNotReady", i, err)
		}
		retrained, err := o.Observe(rng.NormFloat64())
		if err != nil {
			t.Fatal(err)
		}
		if retrained && trainedAt == 0 {
			trainedAt = i + 1
		}
	}
	if trainedAt != 50 {
		t.Errorf("initial training at sample %d, want 50", trainedAt)
	}
	if !o.Trained() {
		t.Error("not trained after 60 samples")
	}
	if _, err := o.Forecast(); err != nil {
		t.Errorf("Forecast after training: %v", err)
	}
	if o.Retrains() != 0 {
		t.Errorf("initial training counted as retrain: %d", o.Retrains())
	}
}

func TestOnlineQARetrainsOnRegimeShift(t *testing.T) {
	cfg := onlineCfg(5, 60)
	cfg.MSEThreshold = 0.5
	cfg.MinRetrainSpacing = 10
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Calm regime: a slow, highly predictable sinusoid. Its normalized
	// one-step error is tiny, so the QA stays quiet. (Pure white noise
	// would not do here: its normalized MSE is ~1 by construction.)
	for i := 0; i < 120; i++ {
		if o.Trained() {
			if _, err := o.Forecast(); err != nil {
				t.Fatal(err)
			}
		}
		v := 10*math.Sin(float64(i)*0.05) + 0.001*rng.NormFloat64()
		if _, err := o.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if o.Retrains() != 0 {
		t.Fatalf("QA fired during calm regime: %d retrains", o.Retrains())
	}
	// Violent regime shift: huge oscillations the stale model can't track.
	for i := 0; i < 100; i++ {
		if _, err := o.Forecast(); err != nil {
			t.Fatal(err)
		}
		v := 100.0
		if i%2 == 0 {
			v = -100
		}
		if _, err := o.Observe(v + rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if o.Retrains() == 0 {
		t.Error("QA never retrained despite violent regime shift")
	}
}

func TestOnlineQADisabledByNonPositiveThreshold(t *testing.T) {
	cfg := onlineCfg(5, 40)
	cfg.MSEThreshold = 0
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		if o.Trained() {
			if _, err := o.Forecast(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := o.Observe(100 * rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if o.Retrains() != 0 {
		t.Errorf("QA retrained %d times with threshold disabled", o.Retrains())
	}
}

func TestOnlineHistoryBounded(t *testing.T) {
	cfg := onlineCfg(5, 40)
	cfg.MaxHistory = 100
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if _, err := o.Observe(rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if o.HistoryLen() > 100 {
		t.Errorf("history grew to %d, cap 100", o.HistoryLen())
	}
}

func TestOnlineAuditMSETracksErrors(t *testing.T) {
	cfg := onlineCfg(5, 40)
	cfg.MSEThreshold = 0 // keep the model stale so errors accumulate
	o, err := NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		if _, err := o.Observe(rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if _, n := o.AuditMSE(); n != 0 {
		t.Errorf("audit count before any forecast = %d", n)
	}
	for i := 0; i < 20; i++ {
		if _, err := o.Forecast(); err != nil {
			t.Fatal(err)
		}
		if _, err := o.Observe(rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	mse, n := o.AuditMSE()
	if n != 10 { // audit window size
		t.Errorf("audit count = %d, want 10", n)
	}
	if mse <= 0 {
		t.Errorf("audit MSE = %g, want > 0 on noisy series", mse)
	}
}
