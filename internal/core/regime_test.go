package core

import (
	"math/rand"
	"testing"

	"github.com/acis-lab/larpredictor/internal/vmtrace"
)

// TestClassifierRecoversLatentRegime validates the mechanism behind the
// LARPredictor's advantage with ground truth: on a two-regime workload, the
// expert selected for windows that lie fully inside the quiet regime must
// differ systematically from the expert selected inside the loud regime —
// i.e. the k-NN classification is actually reading the regime off the
// window, not guessing.
func TestClassifierRecoversLatentRegime(t *testing.T) {
	q := vmtrace.QuietLoud{
		PQuietToLoud: 0.030, PLoudToQuiet: 0.035,
		MinDwell: 16, Attack: 4, MixDrift: 0.0, // stationary mix: clean measurement
		Mean: 100, Swing: 20, Period: 48,
		QuietJitter: 0.3, LoudAmp: 50, LoudOffset: 130,
	}
	vals, loud := q.GenerateLabeled(1200, rand.New(rand.NewSource(11)))
	half := len(vals) / 2

	lar, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := lar.Train(vals[:half]); err != nil {
		t.Fatal(err)
	}
	res, err := lar.Evaluate(vals[half:])
	if err != nil {
		t.Fatal(err)
	}

	// Attribute each test frame to a regime when its window AND target are
	// uniformly in one state; skip boundary frames.
	m := lar.Config().WindowSize
	lastIdx := lar.Pool().IndexOf("LAST")
	swIdx := lar.Pool().IndexOf("SW_AVG")
	var quietLast, quietN, loudSW, loudN int
	for i := 0; i < res.N; i++ {
		start := half + i       // window start in vals
		end := half + i + m + 1 // window + target (exclusive)
		state, uniform := loud[start], true
		for j := start + 1; j < end; j++ {
			if loud[j] != state {
				uniform = false
				break
			}
		}
		if !uniform {
			continue
		}
		if state {
			loudN++
			if res.Selected[i] == swIdx {
				loudSW++
			}
		} else {
			quietN++
			if res.Selected[i] == lastIdx {
				quietLast++
			}
		}
	}
	if quietN < 20 || loudN < 20 {
		t.Fatalf("too few uniform frames: quiet=%d loud=%d", quietN, loudN)
	}

	quietLastShare := float64(quietLast) / float64(quietN)
	loudSWShare := float64(loudSW) / float64(loudN)
	// In-regime selections must be strongly regime-appropriate: LAST
	// dominates quiet frames (trend tracking) and SW_AVG is selected far
	// more inside loud frames (noise averaging).
	if quietLastShare < 0.5 {
		t.Errorf("LAST selected on only %.0f%% of quiet frames", 100*quietLastShare)
	}
	if loudSWShare < 0.2 {
		t.Errorf("SW_AVG selected on only %.0f%% of loud frames", 100*loudSWShare)
	}
	// And the preference must flip across regimes.
	var loudLast int
	for i := 0; i < res.N; i++ {
		start := half + i
		end := half + i + m + 1
		state, uniform := loud[start], true
		for j := start + 1; j < end; j++ {
			if loud[j] != state {
				uniform = false
				break
			}
		}
		if uniform && state && res.Selected[i] == lastIdx {
			loudLast++
		}
	}
	loudLastShare := float64(loudLast) / float64(loudN)
	if loudLastShare >= quietLastShare {
		t.Errorf("LAST share did not drop in the loud regime: quiet %.2f vs loud %.2f",
			quietLastShare, loudLastShare)
	}
}
