// Package core implements the paper's primary contribution: the Learning
// Aided Adaptive Resource Predictor (LARPredictor).
//
// Training phase (paper §6.1): the training series is normalized to zero
// mean and unit variance, framed into windows of the prediction order m, and
// every expert in the pool runs in parallel on every window; the expert with
// the smallest absolute prediction error becomes the window's class label.
// The windows are projected to n principal components (n = 2 in the paper)
// and indexed, with their labels, by a k-NN classifier.
//
// Testing phase (paper §6.2): an incoming window is normalized with the
// *training* coefficients, PCA-projected, and classified; the majority vote
// of its k = 3 nearest training windows forecasts the best expert, and only
// that expert runs to produce the forecast.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/knn"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/pca"
	"github.com/acis-lab/larpredictor/internal/predictors"
	"github.com/acis-lab/larpredictor/internal/timeseries"
)

// ErrNotTrained is returned when prediction is attempted before Train.
var ErrNotTrained = errors.New("core: LARPredictor not trained")

// ErrBadConfig is returned for invalid configuration.
var ErrBadConfig = errors.New("core: invalid configuration")

// ErrBadTrainingData is returned by Train for NaN or infinite samples.
var ErrBadTrainingData = errors.New("core: non-finite training data")

// Config parameterizes a LARPredictor. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// WindowSize is the prediction order m — the number of trailing samples
	// each expert sees. The paper uses 5 for 24-hour traces and 16 for the
	// 7-day VM1 trace.
	WindowSize int
	// PCAComponents is the projected dimension n (2 in the paper). Ignored
	// when DisablePCA is set. If 0, MinFractionVariance is used instead.
	PCAComponents int
	// MinFractionVariance selects components by explained variance when
	// PCAComponents == 0.
	MinFractionVariance float64
	// K is the number of nearest neighbors voting (3 in the paper).
	K int
	// UseKDTree switches the neighbor search to the k-d tree backend.
	UseKDTree bool
	// Vote selects the neighbor-combination strategy; the zero value is
	// the paper's majority vote. DistanceWeightedVote and ProbabilityVote
	// implement the alternative strategies the paper's related work
	// surveys.
	Vote knn.VoteStrategy
	// DisablePCA classifies in the raw m-dimensional window space; used by
	// the PCA-dimension ablation.
	DisablePCA bool
	// Pool is the expert pool. When nil, the paper pool
	// {LAST, AR(m), SW_AVG(m)} is constructed.
	Pool *predictors.Pool
}

// DefaultConfig returns the paper's configuration for a given window size:
// PCA to 2 components, 3-NN, the {LAST, AR, SW_AVG} pool.
func DefaultConfig(windowSize int) Config {
	return Config{
		WindowSize:    windowSize,
		PCAComponents: 2,
		K:             3,
	}
}

func (c *Config) validate() error {
	if c.WindowSize < 2 {
		return fmt.Errorf("core: window size %d < 2: %w", c.WindowSize, ErrBadConfig)
	}
	if c.K < 1 {
		return fmt.Errorf("core: k = %d < 1: %w", c.K, ErrBadConfig)
	}
	if !c.DisablePCA && c.PCAComponents == 0 &&
		(c.MinFractionVariance <= 0 || c.MinFractionVariance > 1) {
		return fmt.Errorf("core: no PCA selection rule (components=0, fraction=%g): %w",
			c.MinFractionVariance, ErrBadConfig)
	}
	return nil
}

// LARPredictor is the learning-aided adaptive resource predictor. Construct
// with New, call Train once (or again, to retrain on fresh data), then use
// Forecast/Evaluate. A trained LARPredictor is safe for concurrent
// Forecast/Evaluate calls; Train must not race with them.
type LARPredictor struct {
	cfg  Config
	pool *predictors.Pool

	// Observability hooks; both nil (and free) unless attached via
	// WithMetrics/WithTracer.
	met    *larMetrics
	tracer obs.Tracer

	trained bool
	norm    timeseries.Normalizer
	proj    *pca.PCA
	clf     *knn.Classifier

	// trainLabels[i] is the best-expert label of training frame i; kept for
	// introspection and the experiments' selection-timeline figures.
	trainLabels []int
	// trainFeats[i] is the (projected) feature vector of training frame i —
	// the k-NN training set. Retained so the durable-state codec can
	// serialize the trained classifier without re-labeling.
	trainFeats [][]float64
	// trainFit is the normalized training series of the last successful
	// Train call; restoring a snapshot refits the parametric experts on it,
	// reproducing their state exactly without re-running the labeling pass.
	trainFit []float64
	// trainRMSE[j] is expert j's root-mean-square one-step error over the
	// training frames (normalized space), used as the forecast uncertainty
	// estimate — the quantity conservative scheduling consumes ("using
	// predicted variance to improve scheduling decisions", paper §2).
	trainRMSE []float64
}

// New validates the configuration and returns an untrained LARPredictor.
// Options attach pools, vote strategies, metrics, and tracing; see Option.
func New(cfg Config, opts ...Option) (*LARPredictor, error) {
	set := applyOptions(opts)
	set.apply(&cfg)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pool := cfg.Pool
	if pool == nil {
		pool = predictors.PaperPool(cfg.WindowSize)
	}
	if pool.Size() == 0 {
		return nil, fmt.Errorf("core: empty predictor pool: %w", ErrBadConfig)
	}
	if pool.MaxOrder() > cfg.WindowSize {
		return nil, fmt.Errorf("core: pool max order %d exceeds window size %d: %w",
			pool.MaxOrder(), cfg.WindowSize, ErrBadConfig)
	}
	return &LARPredictor{
		cfg:    cfg,
		pool:   pool,
		met:    newLARMetrics(set.metrics, pool),
		tracer: set.tracer,
	}, nil
}

// Pool returns the expert pool.
func (l *LARPredictor) Pool() *predictors.Pool { return l.pool }

// Config returns the predictor's configuration.
func (l *LARPredictor) Config() Config { return l.cfg }

// Trained reports whether Train has completed successfully.
func (l *LARPredictor) Trained() bool { return l.trained }

// Normalizer returns the training-phase normalization coefficients.
func (l *LARPredictor) Normalizer() timeseries.Normalizer { return l.norm }

// TrainingLabels returns a copy of the per-frame best-expert labels
// identified during the last Train call.
func (l *LARPredictor) TrainingLabels() []int {
	out := make([]int, len(l.trainLabels))
	copy(out, l.trainLabels)
	return out
}

// Train fits the LARPredictor on a raw (unnormalized) training series:
// normalization, framing, parallel expert labeling, PCA fit, and k-NN
// indexing. It needs at least WindowSize+2 samples. Retraining replaces all
// fitted state.
func (l *LARPredictor) Train(train []float64) (err error) {
	if l.met != nil || l.tracer != nil {
		start := time.Now()
		sp := obs.StartSpan(l.tracer, obs.StageTrain)
		defer func() {
			if l.met != nil {
				l.met.trainSeconds.Observe(time.Since(start).Seconds())
			}
			obs.EndSpan(sp, err)
		}()
	}
	m := l.cfg.WindowSize
	if len(train) < m+2 {
		return fmt.Errorf("core: %d training samples, need >= %d: %w",
			len(train), m+2, timeseries.ErrShort)
	}
	for i, v := range train {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: non-finite training sample %g at index %d: %w",
				v, i, ErrBadTrainingData)
		}
	}

	norm := timeseries.FitNormalizer(train)
	z := norm.Apply(train)

	frames, err := timeseries.FrameSeries(z, m)
	if err != nil {
		return fmt.Errorf("core: frame training data: %w", err)
	}
	windows := timeseries.Windows(frames)
	targets := timeseries.Targets(frames)

	// Fit parametric experts (AR) on the normalized training series, then
	// run the full pool in parallel to label every window.
	if err := l.pool.Fit(z); err != nil {
		return fmt.Errorf("core: fit pool: %w", err)
	}
	labeled, err := l.pool.LabelParallel(windows, targets)
	if err != nil {
		return fmt.Errorf("core: label training frames: %w", err)
	}
	labels := make([]int, len(labeled))
	rmse := make([]float64, l.pool.Size())
	for i, r := range labeled {
		labels[i] = r.Best
		for j, p := range r.Predictions {
			d := p - targets[i]
			rmse[j] += d * d
		}
	}
	for j := range rmse {
		rmse[j] = math.Sqrt(rmse[j] / float64(len(labeled)))
	}

	// Project the windows for classification.
	var (
		projector *pca.PCA
		feats     [][]float64
	)
	if l.cfg.DisablePCA {
		feats = windows
	} else {
		sel := pca.FixedComponents(l.cfg.PCAComponents)
		if l.cfg.PCAComponents == 0 {
			sel = pca.MinVariance(l.cfg.MinFractionVariance)
		}
		projector, err = pca.Fit(windows, sel)
		if err != nil {
			return fmt.Errorf("core: fit PCA: %w", err)
		}
		feats, err = projector.TransformAll(windows)
		if err != nil {
			return fmt.Errorf("core: project training windows: %w", err)
		}
	}

	clf, err := knn.NewClassifier(feats, labels, knn.Config{
		K:         l.cfg.K,
		UseKDTree: l.cfg.UseKDTree,
		Vote:      l.cfg.Vote,
	})
	if err != nil {
		return fmt.Errorf("core: build classifier: %w", err)
	}

	l.norm = norm
	l.proj = projector
	l.clf = clf
	l.trainLabels = labels
	l.trainFeats = feats
	l.trainFit = z
	l.trainRMSE = rmse
	l.trained = true
	return nil
}

// ExpertTrainRMSE returns a copy of the per-expert one-step RMSE measured on
// the training frames (normalized space), in pool order.
func (l *LARPredictor) ExpertTrainRMSE() []float64 {
	out := make([]float64, len(l.trainRMSE))
	copy(out, l.trainRMSE)
	return out
}

// Forecast sources, reported in Prediction.Source. A healthy Online
// predictor serves SourceLAR; the degraded-mode fallback chain serves
// SourceTournament (context-indexed tournament meta-selection, when the
// tier is enabled), SourceSelector (windowed cumulative-MSE expert
// selection) and, at the bottom of the ladder, SourceLastResort (last
// finite observation).
const (
	SourceLAR        = "LAR"
	SourceTournament = "TOURNAMENT"
	SourceSelector   = "W-CUM-MSE"
	SourceLastResort = "LAST-RESORT"
)

// Prediction is one LARPredictor forecast.
type Prediction struct {
	// Value is the forecast in the original (denormalized) scale.
	Value float64
	// Normalized is the forecast in normalized space, the space the paper
	// reports MSE in.
	Normalized float64
	// Selected is the pool index of the expert the classifier chose.
	Selected int
	// SelectedName is that expert's name.
	SelectedName string
	// StdEstimate is a one-sigma uncertainty estimate for Value in the
	// original scale: the selected expert's training RMSE mapped back
	// through the normalizer. Conservative schedulers provision at
	// Value + c·StdEstimate.
	StdEstimate float64
	// Source identifies which rung of the fallback ladder produced the
	// forecast (SourceLAR for a trained LARPredictor; see the Source*
	// constants). Empty is equivalent to SourceLAR for callers predating
	// the resilience layer.
	Source string
}

// forecastScratch holds the hot forecast path's working buffers — the
// normalized window, the PCA projection, and the k-NN query scratch. The
// buffers are recycled through forecastScratchPool, so the steady-state
// forecast path of every predictor in a process shares a small set of
// scratches (sized by the worker count, not the stream count) and performs
// zero heap allocations.
type forecastScratch struct {
	z    []float64
	feat []float64
	knn  knn.Scratch
}

var forecastScratchPool = sync.Pool{New: func() any { return new(forecastScratch) }}

// Forecast predicts the value following a raw trailing window of at least
// WindowSize samples. Only the classifier-selected expert runs. The
// steady-state path allocates nothing: working buffers come from a shared
// scratch pool.
func (l *LARPredictor) Forecast(window []float64) (Prediction, error) {
	s := forecastScratchPool.Get().(*forecastScratch)
	p, err := l.forecast(window, s)
	forecastScratchPool.Put(s)
	return p, err
}

// forecast is Forecast against an explicit scratch.
func (l *LARPredictor) forecast(window []float64, s *forecastScratch) (Prediction, error) {
	if !l.trained {
		return Prediction{}, ErrNotTrained
	}
	m := l.cfg.WindowSize
	if len(window) < m {
		return Prediction{}, fmt.Errorf("core: window of %d samples, need >= %d: %w",
			len(window), m, predictors.ErrWindowTooShort)
	}
	var start time.Time
	timed := l.met != nil && l.met.sampleForecast()
	if timed {
		start = time.Now()
	}
	sp := obs.StartSpan(l.tracer, obs.StageNormalize)
	s.z = l.norm.ApplyInto(s.z, window[len(window)-m:])
	z := s.z
	obs.EndSpan(sp, nil)
	sel, err := l.classifyScratch(z, s)
	if err != nil {
		return Prediction{}, err
	}
	sp = obs.StartSpan(l.tracer, obs.StageExpertForecast)
	v, err := l.pool.At(sel).Predict(z)
	obs.EndSpan(sp, err)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: %s predict: %w", l.pool.At(sel).Name(), err)
	}
	if l.met != nil {
		if timed {
			l.met.forecastSeconds.Observe(time.Since(start).Seconds())
		}
		l.met.forecastsLAR.Inc()
		l.met.decisions[sel].Inc()
	}
	return Prediction{
		Value:        l.norm.Invert(v),
		Normalized:   v,
		Selected:     sel,
		SelectedName: l.pool.At(sel).Name(),
		StdEstimate:  l.trainRMSE[sel] * l.norm.Std,
		Source:       SourceLAR,
	}, nil
}

// classify forecasts the best expert for a normalized window.
func (l *LARPredictor) classify(z []float64) (int, error) {
	s := forecastScratchPool.Get().(*forecastScratch)
	sel, err := l.classifyScratch(z, s)
	forecastScratchPool.Put(s)
	return sel, err
}

// classifyScratch is classify against an explicit scratch.
func (l *LARPredictor) classifyScratch(z []float64, s *forecastScratch) (int, error) {
	feat := z
	if l.proj != nil {
		sp := obs.StartSpan(l.tracer, obs.StagePCAProject)
		var err error
		s.feat, err = l.proj.TransformInto(s.feat, z)
		feat = s.feat
		obs.EndSpan(sp, err)
		if err != nil {
			return 0, fmt.Errorf("core: project window: %w", err)
		}
	}
	sp := obs.StartSpan(l.tracer, obs.StageKNNClassify)
	sel, err := l.clf.ClassifyScratch(feat, &s.knn)
	obs.EndSpan(sp, err)
	if err != nil {
		return 0, fmt.Errorf("core: classify window: %w", err)
	}
	return sel, nil
}

// EvalResult aggregates a test-set evaluation. All MSE values are in
// normalized space, matching the paper's "Normalized Prediction MSE"
// (Table 2); Forecasts and Targets are normalized too.
type EvalResult struct {
	// N is the number of evaluated frames.
	N int
	// LARMSE is the MSE of the LARPredictor's published forecasts.
	LARMSE float64
	// OracleMSE is the P-LAR bound: the MSE attained with 100% best-expert
	// forecasting accuracy.
	OracleMSE float64
	// ExpertMSE[i] is the MSE expert i would score running alone.
	ExpertMSE []float64
	// Selected[i] is the expert the classifier chose for frame i.
	Selected []int
	// ObservedBest[i] is the truly best expert for frame i.
	ObservedBest []int
	// ForecastAccuracy is the fraction of frames where Selected matches
	// ObservedBest — the paper's "best predictor forecasting accuracy".
	ForecastAccuracy float64
	// Forecasts[i] is the LAR forecast for frame i (normalized space).
	Forecasts []float64
	// Targets[i] is the observed value for frame i (normalized space).
	Targets []float64
}

// BestExpertMSE returns the lowest single-expert MSE and its pool index.
func (r *EvalResult) BestExpertMSE() (float64, int) {
	best, idx := r.ExpertMSE[0], 0
	for i, v := range r.ExpertMSE {
		if v < best {
			best, idx = v, i
		}
	}
	return best, idx
}

// Evaluate runs the trained LARPredictor over a raw test series: each test
// frame is classified, forecast by the selected expert, and compared against
// the observation. It also runs the full pool on every frame to report the
// observed best expert, per-expert MSE, and the P-LAR oracle bound. Frames
// are processed in parallel.
func (l *LARPredictor) Evaluate(test []float64) (*EvalResult, error) {
	if !l.trained {
		return nil, ErrNotTrained
	}
	z := l.norm.Apply(test)
	frames, err := timeseries.FrameSeries(z, l.cfg.WindowSize)
	if err != nil {
		return nil, fmt.Errorf("core: frame test data: %w", err)
	}

	n := len(frames)
	res := &EvalResult{
		N:            n,
		ExpertMSE:    make([]float64, l.pool.Size()),
		Selected:     make([]int, n),
		ObservedBest: make([]int, n),
		Forecasts:    make([]float64, n),
		Targets:      make([]float64, n),
	}

	type frameOut struct {
		sel, best int
		forecast  float64
		expertSq  []float64
		err       error
	}
	outs := make([]frameOut, n)

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f := frames[i]
				sel, cerr := l.classify(f.Window)
				if cerr != nil {
					outs[i] = frameOut{err: cerr}
					continue
				}
				best, all, perr := l.pool.Best(f.Window, f.Target)
				if perr != nil {
					outs[i] = frameOut{err: perr}
					continue
				}
				sq := make([]float64, len(all))
				for j, p := range all {
					d := p - f.Target
					sq[j] = d * d
				}
				outs[i] = frameOut{sel: sel, best: best, forecast: all[sel], expertSq: sq}
			}
		}()
	}
	for i := range frames {
		next <- i
	}
	close(next)
	wg.Wait()

	var larSq, oracleSq float64
	correct := 0
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("core: evaluate frame %d: %w", i, o.err)
		}
		res.Selected[i] = o.sel
		res.ObservedBest[i] = o.best
		res.Forecasts[i] = o.forecast
		res.Targets[i] = frames[i].Target
		if o.sel == o.best {
			correct++
		}
		larSq += o.expertSq[o.sel]
		oracleSq += o.expertSq[o.best]
		for j, s := range o.expertSq {
			res.ExpertMSE[j] += s
		}
	}
	inv := 1 / float64(n)
	res.LARMSE = larSq * inv
	res.OracleMSE = oracleSq * inv
	for j := range res.ExpertMSE {
		res.ExpertMSE[j] *= inv
	}
	res.ForecastAccuracy = float64(correct) * inv
	return res, nil
}
