package core

import (
	"math"
	"testing"
)

// TestStepSteadyStateZeroAlloc pins the zero-allocation contract of the
// steady-state Online.Step path: once a stream is trained and Healthy,
// observing a sample and serving the next forecast must not touch the heap.
// The sharded engine relies on this to hold its per-sample cost flat across
// hundreds of thousands of streams.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	o, err := NewOnline(OnlineConfig{
		Predictor:   DefaultConfig(5),
		TrainSize:   60,
		AuditWindow: 12,
		// MSEThreshold 0 disables QA retraining: the steady state under
		// test is the pure ingest→forecast path.
	})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	next := func() float64 {
		i++
		return 10 + 3*math.Sin(float64(i)/7) + 0.1*float64(i%5)
	}
	for j := 0; j < 500; j++ {
		o.Step(next())
	}
	if !o.Trained() || o.Health() != Healthy {
		t.Fatalf("warm-up did not reach trained/Healthy: trained=%v health=%v",
			o.Trained(), o.Health())
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := o.Step(next()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %v per op, want 0", allocs)
	}
}

// TestForecastZeroAlloc pins the same contract for the bare LARPredictor
// forecast path (normalize → project → classify → expert predict).
func TestForecastZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	lar, err := New(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	train := make([]float64, 120)
	for i := range train {
		train[i] = 10 + 3*math.Sin(float64(i)/7) + 0.1*float64(i%5)
	}
	if err := lar.Train(train); err != nil {
		t.Fatal(err)
	}
	window := train[len(train)-5:]
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := lar.Forecast(window); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Forecast allocates %v per op, want 0", allocs)
	}
}
