package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/obs"
)

// newOnline returns a predictor that trains after 20 samples, so tests reach
// real forecasts quickly.
func newOnline(t testing.TB) *core.Online {
	t.Helper()
	o, err := core.NewOnline(core.OnlineConfig{
		Predictor:   core.DefaultConfig(5),
		TrainSize:   20,
		AuditWindow: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// testServer bundles a server over a fresh engine with an httptest listener.
type testServer struct {
	eng   *engine.Engine
	cache *ResultCache
	hist  *HistoryStore
	srv   *Server
	ts    *httptest.Server
	reg   *obs.Registry
}

func newTestServer(t testing.TB, ecfg engine.Config, scfg Config) *testServer {
	t.Helper()
	reg := obs.NewRegistry()
	cache := NewResultCache()
	hist := scfg.History
	if hist == nil {
		var err error
		hist, err = NewHistoryStore(HistoryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		scfg.History = hist
	}
	ecfg.Metrics = reg
	prev := ecfg.OnResult
	ecfg.OnResult = func(r engine.Result) {
		cache.Record(r)
		hist.Record(r)
		if prev != nil {
			prev(r)
		}
	}
	if ecfg.NewStream == nil {
		ecfg.NewStream = func(string) (*core.Online, error) { return newOnline(t), nil }
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Engine = eng
	scfg.Cache = cache
	scfg.Registry = reg
	srv, err := New(scfg)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return &testServer{eng: eng, cache: cache, hist: hist, srv: srv, ts: ts, reg: reg}
}

func signal(i int) float64 {
	return 10 + 3*math.Sin(float64(i)/7) + 0.1*float64(i%5)
}

func postJSON(t *testing.T, url string, doc any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, doc any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if doc != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, doc); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, body)
		}
	}
	return resp
}

func TestIngestSingleAndBatch(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 2}, Config{})

	resp, body := postJSON(t, env.ts.URL+"/v1/ingest",
		IngestRequest{Stream: "web/1", TS: 1, Value: 10})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("single ingest status = %d: %s", resp.StatusCode, body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil || ir.Accepted != 1 {
		t.Fatalf("single ingest response = %s (%v)", body, err)
	}

	batch := IngestRequest{}
	for i := 2; i <= 40; i++ {
		batch.Samples = append(batch.Samples,
			IngestSample{Stream: "web/1", TS: int64(i), Value: signal(i)},
			IngestSample{Stream: "web/2", TS: int64(i), Value: signal(i + 3)},
		)
	}
	resp, body = postJSON(t, env.ts.URL+"/v1/ingest", batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch ingest status = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil || ir.Accepted != len(batch.Samples) {
		t.Fatalf("batch ingest response = %s (%v)", body, err)
	}
	env.eng.Drain()

	var fr ForecastResponse
	if resp := getJSON(t, env.ts.URL+"/v1/forecast/web/1", &fr); resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status = %d", resp.StatusCode)
	}
	if fr.Stream != "web/1" || fr.LastTS != 40 {
		t.Errorf("forecast doc = %+v, want stream web/1 last_ts 40", fr)
	}
	if fr.Forecast == nil {
		t.Fatalf("no forecast after %d samples: %+v", 40, fr)
	}
	if fr.Forecast.Value <= 0 || math.IsNaN(fr.Forecast.Value) {
		t.Errorf("forecast value = %g", fr.Forecast.Value)
	}
	if fr.Health == "" || fr.Processed == 0 {
		t.Errorf("missing health/processed: %+v", fr)
	}

	if resp := getJSON(t, env.ts.URL+"/v1/forecast/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown stream status = %d, want 404", resp.StatusCode)
	}
}

func TestIngestValidation(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 1}, Config{MaxBodyBytes: 512})

	resp, err := http.Post(env.ts.URL+"/v1/ingest", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d, want 400", resp.StatusCode)
	}

	if resp, _ := postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request status = %d, want 400", resp.StatusCode)
	}

	bad := IngestRequest{Samples: []IngestSample{{Stream: "", Value: 1}}}
	if resp, _ := postJSON(t, env.ts.URL+"/v1/ingest", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty stream status = %d, want 400", resp.StatusCode)
	}

	big := IngestRequest{}
	for i := 0; i < 100; i++ {
		big.Samples = append(big.Samples, IngestSample{Stream: "padpadpadpad", Value: 1})
	}
	if resp, _ := postJSON(t, env.ts.URL+"/v1/ingest", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}

	resp, err = http.Get(env.ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET ingest status = %d, want 405", resp.StatusCode)
	}
}

func TestStreamsPagination(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 3}, Config{})
	ids := []string{"a", "b", "c", "d", "e"}
	for _, id := range ids {
		if err := env.eng.Register(id, newOnline(t)); err != nil {
			t.Fatal(err)
		}
	}

	var seen []string
	offset := 0
	for page := 0; ; page++ {
		if page > len(ids) {
			t.Fatal("pagination did not terminate")
		}
		var sr StreamsResponse
		url := fmt.Sprintf("%s/v1/streams?offset=%d&limit=2", env.ts.URL, offset)
		if resp := getJSON(t, url, &sr); resp.StatusCode != http.StatusOK {
			t.Fatalf("streams status = %d", resp.StatusCode)
		}
		if sr.Total != len(ids) {
			t.Fatalf("total = %d, want %d", sr.Total, len(ids))
		}
		for _, s := range sr.Streams {
			seen = append(seen, s.ID)
		}
		if sr.NextOffset == nil {
			break
		}
		offset = *sr.NextOffset
	}
	if strings.Join(seen, "") != "abcde" {
		t.Errorf("paginated IDs = %v, want sorted a..e exactly once", seen)
	}

	if resp := getJSON(t, env.ts.URL+"/v1/streams?offset=-1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative offset status = %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, env.ts.URL+"/v1/streams?limit=zero", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status = %d, want 400", resp.StatusCode)
	}
}

// TestRejectBacklogMaps429 saturates a depth-1 queue behind a gated worker
// and checks the Reject policy surfaces as 429 + Retry-After.
func TestRejectBacklogMaps429(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	env := newTestServer(t, engine.Config{
		Shards:     1,
		QueueDepth: 1,
		MaxBatch:   1,
		Policy:     engine.Reject,
		StepHook: func(string) {
			started <- struct{}{}
			<-gate
		},
	}, Config{})
	defer close(gate)

	if resp, body := postJSON(t, env.ts.URL+"/v1/ingest",
		IngestRequest{Stream: "s", TS: 1, Value: 1}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first ingest = %d: %s", resp.StatusCode, body)
	}
	<-started // worker holds sample 1; queue empty
	if resp, body := postJSON(t, env.ts.URL+"/v1/ingest",
		IngestRequest{Stream: "s", TS: 2, Value: 2}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second ingest = %d: %s", resp.StatusCode, body)
	}

	resp, body := postJSON(t, env.ts.URL+"/v1/ingest",
		IngestRequest{Stream: "s", TS: 3, Value: 3})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest status = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil || ir.Accepted != 0 || ir.Rejected != 1 {
		t.Errorf("429 body = %s (%v), want accepted 0 rejected 1", body, err)
	}
}

// TestAdmissionControlShedsExcess fills the in-flight semaphore with a
// request parked on a full Block-policy queue, then checks the next request
// is shed with 503 + Retry-After without touching the engine.
func TestAdmissionControlShedsExcess(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	env := newTestServer(t, engine.Config{
		Shards:     1,
		QueueDepth: 1,
		MaxBatch:   1,
		Policy:     engine.Block,
		StepHook: func(string) {
			started <- struct{}{}
			<-gate
		},
	}, Config{MaxInFlight: 1})
	defer close(gate)

	if resp, _ := postJSON(t, env.ts.URL+"/v1/ingest",
		IngestRequest{Stream: "s", TS: 1, Value: 1}); resp.StatusCode != http.StatusAccepted {
		t.Fatal("first ingest failed")
	}
	<-started
	if resp, _ := postJSON(t, env.ts.URL+"/v1/ingest",
		IngestRequest{Stream: "s", TS: 2, Value: 2}); resp.StatusCode != http.StatusAccepted {
		t.Fatal("second ingest failed")
	}

	// This one blocks inside the engine (queue full, Block policy), pinning
	// the lone in-flight slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Raw client call: t.Fatal must not fire from a non-test goroutine.
		resp, err := http.Post(env.ts.URL+"/v1/ingest", "application/json",
			strings.NewReader(`{"stream":"s","ts":3,"value":3}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return len(env.srv.sem) == 1 })

	resp, body := postJSON(t, env.ts.URL+"/v1/ingest",
		IngestRequest{Stream: "s", TS: 4, Value: 4})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity status = %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed request without Retry-After header")
	}
	// Probes and scrapes must bypass admission control.
	if resp := getJSON(t, env.ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz under load = %d, want 200", resp.StatusCode)
	}
	if resp := getJSON(t, env.ts.URL+"/metrics", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("metrics under load = %d, want 200", resp.StatusCode)
	}

	gate <- struct{}{}
	gate <- struct{}{}
	gate <- struct{}{}
	wg.Wait()
}

// TestRequestTimeout parks an ingest on a full Block-policy queue and checks
// the timeout middleware cuts it loose with 503.
func TestRequestTimeout(t *testing.T) {
	gate := make(chan struct{})
	env := newTestServer(t, engine.Config{
		Shards:     1,
		QueueDepth: 1,
		MaxBatch:   1,
		Policy:     engine.Block,
		StepHook:   func(string) { <-gate },
	}, Config{RequestTimeout: 50 * time.Millisecond})
	defer close(gate)

	for ts := 1; ts <= 2; ts++ { // one into the worker, one filling the queue
		if resp, _ := postJSON(t, env.ts.URL+"/v1/ingest",
			IngestRequest{Stream: "s", TS: int64(ts), Value: 1}); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("setup ingest %d failed", ts)
		}
	}
	resp, _ := postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Stream: "s", TS: 3, Value: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out ingest status = %d, want 503", resp.StatusCode)
	}
	gate <- struct{}{}
	gate <- struct{}{}
	gate <- struct{}{}
}

func TestDrainingFlipsHealthzAndIngest(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 1}, Config{})
	if resp := getJSON(t, env.ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	env.srv.draining.Store(true)
	if resp := getJSON(t, env.ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
	resp, body := postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Stream: "s", Value: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining ingest = %d, want 503: %s", resp.StatusCode, body)
	}
	// Reads keep working during drain so late consumers resolve cleanly.
	if resp := getJSON(t, env.ts.URL+"/v1/streams", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("draining streams = %d, want 200", resp.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 1}, Config{})
	postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Stream: "s", Value: 1})
	getJSON(t, env.ts.URL+"/v1/streams", nil)

	resp, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`predictd_http_requests_total{endpoint="ingest",code="202"} 1`,
		`predictd_http_requests_total{endpoint="streams",code="200"} 1`,
		"predictd_http_request_seconds_bucket",
		"predictd_http_in_flight",
		"predictd_ingest_samples_accepted_total 1",
		"larpredictor_engine_ingested_total", // engine metrics share the registry
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServerConfigValidation(t *testing.T) {
	eng, err := engine.New(engine.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cache := NewResultCache()
	bad := []Config{
		{},
		{Engine: eng},
		{Engine: eng, Cache: cache, MaxInFlight: -1},
		{Engine: eng, Cache: cache, RequestTimeout: -time.Second},
		{Engine: eng, Cache: cache, MaxBodyBytes: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
