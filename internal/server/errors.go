package server

import "net/http"

// Every /v1 JSON error shares one envelope:
//
//	{"error": {"code": "backlog", "message": "ingest backlog"}}
//
// Code is the stable machine-readable contract — clients branch on it;
// Message is human-oriented and free to change. The X-Predictd-Reason
// header duplicates the 503 cause for one more release while clients
// migrate to the body codes; new clients should key on Error.Code.
const (
	// CodeBadRequest — malformed JSON, unknown fields, or an unparsable
	// query parameter.
	CodeBadRequest = "bad_request"
	// CodeEmptyStream — a request path or sample with an empty stream ID.
	CodeEmptyStream = "empty_stream"
	// CodeNoSamples — an ingest request carrying nothing to ingest.
	CodeNoSamples = "no_samples"
	// CodeBadCursor — an unusable pagination cursor.
	CodeBadCursor = "bad_cursor"
	// CodeBadLimit — a non-positive or unparsable limit.
	CodeBadLimit = "bad_limit"
	// CodeBadRange — an unusable from/to/step history range.
	CodeBadRange = "bad_range"
	// CodeTooManyStreams — a bulk request naming more streams than the
	// server's cap.
	CodeTooManyStreams = "too_many_streams"
	// CodeUnknownStream — the stream has never been seen by this node.
	CodeUnknownStream = "unknown_stream"
	// CodeBodyTooLarge — the request body exceeded the configured cap (413).
	CodeBodyTooLarge = "body_too_large"
	// CodeBacklog — Reject-policy ingest backpressure (429); retry after
	// the Retry-After hint.
	CodeBacklog = "backlog"
	// CodeDraining — the server is shutting down or the engine is closed
	// (503, reason "drain"); retry against a healthy replica.
	CodeDraining = "draining"
	// CodeShed — admission control rejected the request before any work
	// (503, reason "shed").
	CodeShed = "shed"
	// CodeTimeout — the server-side deadline fired mid-request (503, reason
	// "timeout"); the work may still complete, so only keyed retries are
	// safe.
	CodeTimeout = "timeout"
	// CodeForwardFailed — a cluster forward to the stream's owner failed
	// (503, reason "forward"); the whole-batch retry is safe under keys.
	CodeForwardFailed = "forward_failed"
	// CodeInternal — an unclassified server-side failure.
	CodeInternal = "internal"
)

// ErrorBody is the machine-readable error inside the envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the uniform /v1 error response document.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// writeError renders one enveloped error.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: message}})
}
