package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestDedupApplyRetryAndRevert(t *testing.T) {
	d := NewDedup()
	if !d.Apply("s", "src", 1) {
		t.Fatal("first apply rejected")
	}
	if d.Apply("s", "src", 1) {
		t.Fatal("duplicate apply accepted")
	}
	if !d.Apply("s", "src", 2) {
		t.Fatal("next seq rejected")
	}
	// Out-of-order older seq that was never applied is still admitted while
	// inside the window.
	if d.Apply("s", "src", 2) {
		t.Fatal("duplicate seq 2 accepted")
	}
	if n, ok := d.Applied("s"); !ok || n != 2 {
		t.Fatalf("applied = %d/%v, want 2/true", n, ok)
	}

	// Distinct sources and streams do not collide.
	if !d.Apply("s", "other", 1) {
		t.Error("other source's seq 1 rejected")
	}
	if !d.Apply("s2", "src", 1) {
		t.Error("other stream's seq 1 rejected")
	}

	d.Revert("s", "src", 2)
	if n, _ := d.Applied("s"); n != 2 { // 1 from src + 1 from other
		t.Errorf("applied after revert = %d, want 2", n)
	}
	if !d.Apply("s", "src", 2) {
		t.Error("reverted seq rejected on retry")
	}
	// Reverting something never applied is a no-op.
	d.Revert("s", "src", 99)
	d.Revert("nope", "src", 1)
}

func TestDedupStateRoundTrip(t *testing.T) {
	d := NewDedup()
	for seq := uint64(1); seq <= 10; seq++ {
		d.Apply("a", "src", seq)
	}
	d.Apply("b", "src2", 7)

	st := d.State()
	d2 := NewDedup()
	d2.Restore(st)
	for seq := uint64(1); seq <= 10; seq++ {
		if d2.Apply("a", "src", seq) {
			t.Fatalf("restored table re-admitted a/src/%d", seq)
		}
	}
	if d2.Apply("b", "src2", 7) {
		t.Error("restored table re-admitted b/src2/7")
	}
	if !d2.Apply("a", "src", 11) {
		t.Error("restored table rejected fresh seq")
	}
	if n, _ := d2.Applied("a"); n != 11 {
		t.Errorf("restored applied = %d, want 11", n)
	}
}

func TestDedupWindowFloor(t *testing.T) {
	d := NewDedup()
	// Push far past the window so compaction must advance the floor.
	top := uint64(3 * dedupWindow)
	for seq := uint64(1); seq <= top; seq++ {
		if !d.Apply("s", "src", seq) {
			t.Fatalf("seq %d rejected on first apply", seq)
		}
	}
	// Anything at or below the floor is treated as applied.
	if d.Apply("s", "src", 1) {
		t.Error("ancient seq admitted after floor advanced")
	}
	if d.Apply("s", "src", top) {
		t.Error("max seq re-admitted")
	}
	if !d.Apply("s", "src", top+1) {
		t.Error("fresh seq rejected")
	}
	w := d.streams["s"]["src"]
	if len(w.seqs) > 2*dedupWindow+1 {
		t.Errorf("window not compacted: %d live seqs", len(w.seqs))
	}
}

func TestDedupConcurrentExactlyOnce(t *testing.T) {
	d := NewDedup()
	const workers = 8
	const seqs = 500
	var wins [seqs + 1]int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := uint64(1); seq <= seqs; seq++ {
				if d.Apply("s", "src", seq) {
					mu.Lock()
					wins[seq]++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for seq := 1; seq <= seqs; seq++ {
		if wins[seq] != 1 {
			t.Fatalf("seq %d applied %d times", seq, wins[seq])
		}
	}
	if n, _ := d.Applied("s"); n != seqs {
		t.Errorf("applied = %d, want %d", n, seqs)
	}
}

func BenchmarkDedupApply(b *testing.B) {
	d := NewDedup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Apply("bench/stream", "src", uint64(i+1))
	}
	if _, ok := d.Applied("bench/stream"); !ok {
		b.Fatal(fmt.Errorf("no applied count"))
	}
}

// TestDedupSeqReuseAfterEviction: once compaction advances the floor, a
// seq that was never applied but has fallen at-or-below the floor is
// *treated* as applied — the documented approximation. The table must stay
// internally consistent: the reuse is refused, the applied count does not
// move, and fresh seqs above the floor still apply.
func TestDedupSeqReuseAfterEviction(t *testing.T) {
	d := NewDedup()
	// Apply odd seqs only, far past the window, so compaction evicts a set
	// with real holes in it.
	top := uint64(6 * dedupWindow)
	applied := uint64(0)
	for seq := uint64(1); seq <= top; seq += 2 {
		if !d.Apply("s", "src", seq) {
			t.Fatalf("seq %d rejected on first apply", seq)
		}
		applied++
	}
	before, _ := d.Applied("s")
	if before != applied {
		t.Fatalf("applied = %d, want %d", before, applied)
	}
	floor := d.streams["s"]["src"].floor
	if floor == 0 {
		t.Fatal("floor never advanced; test needs more samples than 2*window")
	}
	// An even seq below the floor was never applied, but the window can no
	// longer distinguish it: it must be refused (at-least-once side of the
	// approximation never double-applies).
	reuse := floor - 1 // even, never applied
	if reuse%2 != 0 {
		reuse--
	}
	if d.Apply("s", "src", reuse) {
		t.Errorf("seq %d below the floor admitted; window must treat evicted range as applied", reuse)
	}
	if after, _ := d.Applied("s"); after != before {
		t.Errorf("refused reuse moved applied count: %d -> %d", before, after)
	}
	// Above the floor the table still tracks exactly.
	if !d.Apply("s", "src", top+2) {
		t.Error("fresh seq above floor rejected")
	}
	if d.Apply("s", "src", top+2) {
		t.Error("fresh seq re-admitted")
	}
}

// TestDedupRestoreStaleSnapshotThenReplay models the crash-recovery path:
// a snapshot is cut, more batches are acked, the process dies and restores
// the *stale* snapshot, then the WAL replays everything after the snapshot
// — including batches the snapshot already covers. Each sample must land
// exactly once.
func TestDedupRestoreStaleSnapshotThenReplay(t *testing.T) {
	d := NewDedup()
	for seq := uint64(1); seq <= 10; seq++ {
		d.Apply("s", "src", seq)
	}
	snap := d.State() // snapshot covers 1..10
	for seq := uint64(11); seq <= 25; seq++ {
		d.Apply("s", "src", seq)
	}

	// Crash: the post-snapshot marks are lost; the stale snapshot restores.
	d2 := NewDedup()
	d2.Restore(snap)
	if n, _ := d2.Applied("s"); n != 10 {
		t.Fatalf("restored applied = %d, want 10", n)
	}

	// Replay overlaps the snapshot (WAL segments are reset only at
	// snapshot time, so replay legitimately re-offers 6..25).
	appliedByReplay := 0
	for seq := uint64(6); seq <= 25; seq++ {
		if d2.Apply("s", "src", seq) {
			appliedByReplay++
		}
	}
	if appliedByReplay != 15 {
		t.Errorf("replay applied %d samples, want exactly the 15 the snapshot missed", appliedByReplay)
	}
	if n, _ := d2.Applied("s"); n != 25 {
		t.Errorf("post-replay applied = %d, want 25", n)
	}
}

// TestDedupOutOfOrderArrival: keyed samples may arrive in any order (two
// cluster paths can race a client retry); every seq applies exactly once
// regardless of arrival order.
func TestDedupOutOfOrderArrival(t *testing.T) {
	d := NewDedup()
	order := []uint64{7, 2, 9, 1, 5, 3, 8, 4, 10, 6}
	for _, seq := range order {
		if !d.Apply("s", "src", seq) {
			t.Fatalf("seq %d rejected on first (out-of-order) apply", seq)
		}
	}
	for _, seq := range order {
		if d.Apply("s", "src", seq) {
			t.Fatalf("seq %d re-admitted", seq)
		}
	}
	if n, _ := d.Applied("s"); n != 10 {
		t.Errorf("applied = %d, want 10", n)
	}
	// Interleaved sources keep independent windows.
	if !d.Apply("s", "other", 5) {
		t.Error("other source's seq 5 rejected; windows must be per-source")
	}
}

// TestDedupStreamStateAndMerge exercises the handoff export/merge pair:
// merging a peer's coverage unions the windows and recomputes the applied
// count, and replay against the merged table cannot double-apply.
func TestDedupStreamStateAndMerge(t *testing.T) {
	// Node A applied 1..6 from srcX; node B applied 4..10 from srcX and
	// 1..3 from srcY (overlap 4..6 was acked on both sides of a failover).
	a := NewDedup()
	for seq := uint64(1); seq <= 6; seq++ {
		a.Apply("s", "srcX", seq)
	}
	b := NewDedup()
	for seq := uint64(4); seq <= 10; seq++ {
		b.Apply("s", "srcX", seq)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		b.Apply("s", "srcY", seq)
	}

	win, applied, ok := b.StreamState("s")
	if !ok || applied != 10 {
		t.Fatalf("StreamState: applied=%d ok=%v, want 10 true", applied, ok)
	}
	a.MergeStream("s", win)
	if n, _ := a.Applied("s"); n != 13 {
		t.Fatalf("merged applied = %d, want 13 (10 srcX + 3 srcY, overlap counted once)", n)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if a.Apply("s", "srcX", seq) {
			t.Errorf("srcX seq %d re-admitted after merge", seq)
		}
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if a.Apply("s", "srcY", seq) {
			t.Errorf("srcY seq %d re-admitted after merge", seq)
		}
	}
	if !a.Apply("s", "srcX", 11) {
		t.Error("fresh seq rejected after merge")
	}

	// StreamState on an unknown stream reports absence.
	if _, _, ok := a.StreamState("ghost"); ok {
		t.Error("StreamState of unknown stream reported ok")
	}
}

// TestDedupMergeAfterCompaction: merging a peer window whose floor has
// advanced adopts the max floor and drops covered seqs; the recomputed
// count follows the floor+len formula both sides use.
func TestDedupMergeAfterCompaction(t *testing.T) {
	peer := NewDedup()
	top := uint64(3 * dedupWindow)
	for seq := uint64(1); seq <= top; seq++ {
		peer.Apply("s", "src", seq)
	}
	win, _, _ := peer.StreamState("s")
	if win["src"].Floor == 0 {
		t.Fatal("peer window never compacted")
	}

	local := NewDedup()
	local.Apply("s", "src", 1) // ancient local mark, covered by the peer's floor
	local.MergeStream("s", win)
	if n, _ := local.Applied("s"); n != top {
		t.Errorf("merged applied = %d, want %d", n, top)
	}
	if local.Apply("s", "src", 2) {
		t.Error("seq under the merged floor admitted")
	}
	if !local.Apply("s", "src", top+1) {
		t.Error("fresh seq rejected after floor merge")
	}
}
