package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestDedupApplyRetryAndRevert(t *testing.T) {
	d := NewDedup()
	if !d.Apply("s", "src", 1) {
		t.Fatal("first apply rejected")
	}
	if d.Apply("s", "src", 1) {
		t.Fatal("duplicate apply accepted")
	}
	if !d.Apply("s", "src", 2) {
		t.Fatal("next seq rejected")
	}
	// Out-of-order older seq that was never applied is still admitted while
	// inside the window.
	if d.Apply("s", "src", 2) {
		t.Fatal("duplicate seq 2 accepted")
	}
	if n, ok := d.Applied("s"); !ok || n != 2 {
		t.Fatalf("applied = %d/%v, want 2/true", n, ok)
	}

	// Distinct sources and streams do not collide.
	if !d.Apply("s", "other", 1) {
		t.Error("other source's seq 1 rejected")
	}
	if !d.Apply("s2", "src", 1) {
		t.Error("other stream's seq 1 rejected")
	}

	d.Revert("s", "src", 2)
	if n, _ := d.Applied("s"); n != 2 { // 1 from src + 1 from other
		t.Errorf("applied after revert = %d, want 2", n)
	}
	if !d.Apply("s", "src", 2) {
		t.Error("reverted seq rejected on retry")
	}
	// Reverting something never applied is a no-op.
	d.Revert("s", "src", 99)
	d.Revert("nope", "src", 1)
}

func TestDedupStateRoundTrip(t *testing.T) {
	d := NewDedup()
	for seq := uint64(1); seq <= 10; seq++ {
		d.Apply("a", "src", seq)
	}
	d.Apply("b", "src2", 7)

	st := d.State()
	d2 := NewDedup()
	d2.Restore(st)
	for seq := uint64(1); seq <= 10; seq++ {
		if d2.Apply("a", "src", seq) {
			t.Fatalf("restored table re-admitted a/src/%d", seq)
		}
	}
	if d2.Apply("b", "src2", 7) {
		t.Error("restored table re-admitted b/src2/7")
	}
	if !d2.Apply("a", "src", 11) {
		t.Error("restored table rejected fresh seq")
	}
	if n, _ := d2.Applied("a"); n != 11 {
		t.Errorf("restored applied = %d, want 11", n)
	}
}

func TestDedupWindowFloor(t *testing.T) {
	d := NewDedup()
	// Push far past the window so compaction must advance the floor.
	top := uint64(3 * dedupWindow)
	for seq := uint64(1); seq <= top; seq++ {
		if !d.Apply("s", "src", seq) {
			t.Fatalf("seq %d rejected on first apply", seq)
		}
	}
	// Anything at or below the floor is treated as applied.
	if d.Apply("s", "src", 1) {
		t.Error("ancient seq admitted after floor advanced")
	}
	if d.Apply("s", "src", top) {
		t.Error("max seq re-admitted")
	}
	if !d.Apply("s", "src", top+1) {
		t.Error("fresh seq rejected")
	}
	w := d.streams["s"]["src"]
	if len(w.seqs) > 2*dedupWindow+1 {
		t.Errorf("window not compacted: %d live seqs", len(w.seqs))
	}
}

func TestDedupConcurrentExactlyOnce(t *testing.T) {
	d := NewDedup()
	const workers = 8
	const seqs = 500
	var wins [seqs + 1]int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := uint64(1); seq <= seqs; seq++ {
				if d.Apply("s", "src", seq) {
					mu.Lock()
					wins[seq]++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for seq := 1; seq <= seqs; seq++ {
		if wins[seq] != 1 {
			t.Fatalf("seq %d applied %d times", seq, wins[seq])
		}
	}
	if n, _ := d.Applied("s"); n != seqs {
		t.Errorf("applied = %d, want %d", n, seqs)
	}
}

func BenchmarkDedupApply(b *testing.B) {
	d := NewDedup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Apply("bench/stream", "src", uint64(i+1))
	}
	if _, ok := d.Applied("bench/stream"); !ok {
		b.Fatal(fmt.Errorf("no applied count"))
	}
}
