package server

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/acis-lab/larpredictor/internal/engine"
)

// The forecast-history store backs the read path's range queries and the
// subscription feed: per stream, a raw ring of recent forecast-vs-actual
// pairs plus consolidated coarser tiers, following internal/rrd's
// round-robin-archive model (a fixed number of raw points per row, rows in
// a fixed-length ring) — but keyed by sample count instead of wall-clock
// seconds, because sample TS tags are opaque to the engine.
//
// Each recorded step pairs the observation with the forecast that targeted
// it (issued at the previous step), which is the comparison operators
// actually plot, and also keeps the forecast issued at the step so the
// subscription feed can replay complete events from the ring.
//
// The write path is zero-allocation in steady state: rings and bucket
// accumulators are allocated when a stream first appears and reused
// forever after. Writers are the engine's shard workers (one per stream);
// readers are HTTP handlers. A per-stream mutex covers both.

// HistoryEntry is one raw step in a stream's forecast history. It is also
// a wire type: history range responses and SSE backfills serve it as JSON,
// and the snapshot/handoff paths persist it.
type HistoryEntry struct {
	// Seq is the stream's 1-based step counter — the subscription feed's
	// resume cursor. It is rebuilt identically by snapshot restore + WAL
	// replay, so Last-Event-ID resume survives a crash.
	Seq uint64 `json:"seq"`
	// TS is the sample's caller timestamp tag, carried through untouched.
	TS int64 `json:"ts"`
	// Actual is the observed value folded in at this step.
	Actual float64 `json:"actual"`
	// Pred, Std, and Expert describe the forecast that targeted this
	// observation — issued at the previous step — valid when HasPred.
	Pred    float64 `json:"predicted,omitempty"`
	Std     float64 `json:"predicted_std,omitempty"`
	Expert  string  `json:"expert,omitempty"`
	HasPred bool    `json:"has_predicted,omitempty"`
	// Next, NextStd, and NextExpert describe the forecast issued at this
	// step (targeting the next observation), valid when HasNext.
	Next       float64 `json:"forecast,omitempty"`
	NextStd    float64 `json:"forecast_std,omitempty"`
	NextExpert string  `json:"forecast_expert,omitempty"`
	HasNext    bool    `json:"has_forecast,omitempty"`
}

// HistoryRow is one consolidated row: Count raw steps collapsed into
// actual avg/min/max, mean forecast, and mean absolute forecast error,
// attributed to the expert that produced the most forecasts in the bucket.
type HistoryRow struct {
	// StartTS and EndTS bound the row's raw steps (first and last TS tag).
	StartTS int64 `json:"start_ts"`
	EndTS   int64 `json:"end_ts"`
	// StartSeq and EndSeq bound the row's raw steps by step counter.
	StartSeq uint64 `json:"start_seq"`
	EndSeq   uint64 `json:"end_seq"`
	// Count is how many raw steps the row consolidates; Predicted how many
	// of them had a targeting forecast.
	Count     int     `json:"count"`
	Predicted int     `json:"predicted,omitempty"`
	ActualAvg float64 `json:"actual_avg"`
	ActualMin float64 `json:"actual_min"`
	ActualMax float64 `json:"actual_max"`
	// PredAvg and AbsErrAvg aggregate over the Predicted steps only.
	PredAvg   float64 `json:"pred_avg,omitempty"`
	AbsErrAvg float64 `json:"abs_err_avg,omitempty"`
	// Expert is the modal expert over the row's forecasts.
	Expert string `json:"expert,omitempty"`
}

// HistoryTier declares one consolidated tier: every Steps raw entries
// collapse into one row, kept in a ring of Rows rows (mirroring an rrd
// RRASpec's Steps/Rows, with consolidation fixed to avg/min/max).
type HistoryTier struct {
	Steps int
	Rows  int
}

// HistoryConfig shapes a HistoryStore.
type HistoryConfig struct {
	// RawRows is the raw ring's capacity in steps. Default 512.
	RawRows int
	// Tiers are the consolidated tiers, finest first. Default
	// {16, 360}, {256, 360} — with the default raw ring that spans
	// 512 + 16·360 + 256·360 ≈ 98k steps per stream.
	Tiers []HistoryTier
}

// DefaultHistoryTiers is the tier layout used when HistoryConfig.Tiers is
// empty.
var DefaultHistoryTiers = []HistoryTier{{Steps: 16, Rows: 360}, {Steps: 256, Rows: 360}}

func (c HistoryConfig) withDefaults() (HistoryConfig, error) {
	if c.RawRows == 0 {
		c.RawRows = 512
	}
	if c.RawRows < 1 {
		return c, fmt.Errorf("server: history raw rows %d < 1", c.RawRows)
	}
	if len(c.Tiers) == 0 {
		c.Tiers = append([]HistoryTier(nil), DefaultHistoryTiers...)
	}
	prev := 1
	for _, t := range c.Tiers {
		if t.Steps <= prev || t.Rows < 1 {
			return c, fmt.Errorf("server: history tier %+v: steps must increase (> %d) and rows be positive", t, prev)
		}
		prev = t.Steps
	}
	return c, nil
}

// expertCount tracks one expert's forecast count within an open bucket.
// Experts per stream are few (the pool names plus the fallback rungs), so a
// small linear array beats a map and allocates nothing.
type expertCount struct {
	Name  string
	Count int
}

// historyBucket accumulates raw steps toward one consolidated row. All
// fields are exported so the accumulator round-trips through the snapshot
// codec and a restart resumes mid-bucket instead of losing the partial row.
type historyBucket struct {
	Count     int
	Predicted int
	StartTS   int64
	EndTS     int64
	StartSeq  uint64
	EndSeq    uint64
	ActualSum float64
	ActualMin float64
	ActualMax float64
	PredSum   float64
	AbsErrSum float64
	Experts   []expertCount
}

func (b *historyBucket) reset() {
	b.Count, b.Predicted = 0, 0
	b.StartTS, b.EndTS, b.StartSeq, b.EndSeq = 0, 0, 0, 0
	b.ActualSum, b.PredSum, b.AbsErrSum = 0, 0, 0
	b.ActualMin, b.ActualMax = 0, 0
	b.Experts = b.Experts[:0]
}

func (b *historyBucket) add(e HistoryEntry) {
	if b.Count == 0 {
		b.StartTS, b.StartSeq = e.TS, e.Seq
		b.ActualMin, b.ActualMax = e.Actual, e.Actual
	} else {
		if e.Actual < b.ActualMin {
			b.ActualMin = e.Actual
		}
		if e.Actual > b.ActualMax {
			b.ActualMax = e.Actual
		}
	}
	b.Count++
	b.EndTS, b.EndSeq = e.TS, e.Seq
	b.ActualSum += e.Actual
	if e.HasPred {
		b.Predicted++
		b.PredSum += e.Pred
		b.AbsErrSum += math.Abs(e.Pred - e.Actual)
		found := false
		for i := range b.Experts {
			if b.Experts[i].Name == e.Expert {
				b.Experts[i].Count++
				found = true
				break
			}
		}
		if !found {
			b.Experts = append(b.Experts, expertCount{Name: e.Expert, Count: 1})
		}
	}
}

// row flattens the accumulator into a consolidated row.
func (b *historyBucket) row() HistoryRow {
	r := HistoryRow{
		StartTS: b.StartTS, EndTS: b.EndTS,
		StartSeq: b.StartSeq, EndSeq: b.EndSeq,
		Count: b.Count, Predicted: b.Predicted,
		ActualMin: b.ActualMin, ActualMax: b.ActualMax,
	}
	if b.Count > 0 {
		r.ActualAvg = b.ActualSum / float64(b.Count)
	}
	if b.Predicted > 0 {
		r.PredAvg = b.PredSum / float64(b.Predicted)
		r.AbsErrAvg = b.AbsErrSum / float64(b.Predicted)
	}
	best := -1
	for i := range b.Experts {
		if best < 0 || b.Experts[i].Count > b.Experts[best].Count {
			best = i
		}
	}
	if best >= 0 {
		r.Expert = b.Experts[best].Name
	}
	return r
}

// historyTier is one consolidated tier's runtime state: a preallocated row
// ring plus the open bucket.
type historyTier struct {
	steps  int
	ring   []HistoryRow
	head   int // next write slot
	filled int
	bucket historyBucket
}

// streamHistory is one stream's full history state.
type streamHistory struct {
	mu  sync.Mutex
	seq uint64

	raw    []HistoryEntry
	head   int
	filled int

	tiers []historyTier

	// pending is the forecast issued at the newest step, waiting to be
	// paired with the next observation.
	pending        float64
	pendingStd     float64
	pendingExpert  string
	pendingHasPred bool
}

// HistoryStore holds every stream's forecast history. Construct with
// NewHistoryStore; wire Record into the engine's OnResult path alongside
// ResultCache.Record.
type HistoryStore struct {
	cfg HistoryConfig
	m   sync.Map // stream id -> *streamHistory

	// onAppend, when set, receives every appended raw entry on the shard
	// worker goroutine — the subscription feed's publish hook. Atomic so
	// the server can wire it after the store (and engine) already exist.
	onAppend atomic.Pointer[func(stream string, e HistoryEntry)]
}

// OnAppend installs f as the store's append hook; every recorded entry is
// delivered to it on the recording goroutine. One hook; last call wins.
func (h *HistoryStore) OnAppend(f func(stream string, e HistoryEntry)) {
	h.onAppend.Store(&f)
}

// NewHistoryStore validates cfg (zero value is serving-safe) and returns an
// empty store.
func NewHistoryStore(cfg HistoryConfig) (*HistoryStore, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &HistoryStore{cfg: cfg}, nil
}

// Config returns the store's (defaulted) configuration.
func (h *HistoryStore) Config() HistoryConfig { return h.cfg }

func (h *HistoryStore) stream(id string) *streamHistory {
	if v, ok := h.m.Load(id); ok {
		return v.(*streamHistory)
	}
	sh := &streamHistory{
		raw:   make([]HistoryEntry, h.cfg.RawRows),
		tiers: make([]historyTier, len(h.cfg.Tiers)),
	}
	for i, t := range h.cfg.Tiers {
		sh.tiers[i] = historyTier{steps: t.Steps, ring: make([]HistoryRow, t.Rows)}
	}
	if v, loaded := h.m.LoadOrStore(id, sh); loaded {
		return v.(*streamHistory)
	}
	return sh
}

// Record folds one engine result into the stream's history: the observation
// pairs with the previous step's forecast, the new forecast (when the step
// succeeded) becomes pending, and full buckets consolidate into each tier.
// Safe to call from engine.Config.OnResult; zero allocations in steady
// state.
func (h *HistoryStore) Record(r engine.Result) {
	sh := h.stream(r.ID)
	sh.mu.Lock()
	sh.seq++
	e := HistoryEntry{
		Seq:    sh.seq,
		TS:     r.TS,
		Actual: r.Value,
	}
	if sh.pendingHasPred {
		e.Pred, e.Std, e.Expert, e.HasPred = sh.pending, sh.pendingStd, sh.pendingExpert, true
	}
	if r.Err == nil {
		e.Next, e.NextStd, e.NextExpert, e.HasNext = r.Pred.Value, r.Pred.StdEstimate, r.Pred.SelectedName, true
		sh.pending, sh.pendingStd, sh.pendingExpert, sh.pendingHasPred =
			r.Pred.Value, r.Pred.StdEstimate, r.Pred.SelectedName, true
	}
	sh.append(e)
	sh.mu.Unlock()
	if f := h.onAppend.Load(); f != nil {
		(*f)(r.ID, e)
	}
}

// append writes one entry into the raw ring and feeds the tier buckets.
// Callers hold sh.mu.
func (sh *streamHistory) append(e HistoryEntry) {
	sh.raw[sh.head] = e
	sh.head = (sh.head + 1) % len(sh.raw)
	if sh.filled < len(sh.raw) {
		sh.filled++
	}
	for i := range sh.tiers {
		t := &sh.tiers[i]
		t.bucket.add(e)
		if t.bucket.Count >= t.steps {
			t.ring[t.head] = t.bucket.row()
			t.head = (t.head + 1) % len(t.ring)
			if t.filled < len(t.ring) {
				t.filled++
			}
			t.bucket.reset()
		}
	}
}

// Seq returns the stream's current step counter (0 for an unknown stream).
// It is the stream's read-path version: every processed sample bumps it, so
// conditional gets key their ETags on it.
func (h *HistoryStore) Seq(id string) uint64 {
	v, ok := h.m.Load(id)
	if !ok {
		return 0
	}
	sh := v.(*streamHistory)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.seq
}

// RangeQuery selects a consolidated range read.
type RangeQuery struct {
	// From and To bound rows by TS tag, inclusive; zero means unbounded.
	// A raw row matches when From <= TS <= To; a consolidated row when its
	// [StartTS, EndTS] span intersects [From, To].
	From, To int64
	// HasFrom / HasTo distinguish "0" from "unset".
	HasFrom, HasTo bool
	// Step selects the resolution in raw steps per returned row: <= 1
	// serves the raw ring; otherwise the finest tier with Steps >= Step
	// (or the coarsest tier when Step exceeds them all).
	Step int
	// Limit caps returned rows, keeping the newest; <= 0 means no cap.
	Limit int
}

// RangeResult is a consolidated range read: Resolution raw steps per row,
// rows oldest-first. Raw-resolution results carry Entries; consolidated
// results carry Rows.
type RangeResult struct {
	Resolution int
	Entries    []HistoryEntry
	Rows       []HistoryRow
}

// Range serves a range query from the stream's rings. ok is false when the
// stream has no history at all.
func (h *HistoryStore) Range(id string, q RangeQuery) (RangeResult, bool) {
	v, loaded := h.m.Load(id)
	if !loaded {
		return RangeResult{}, false
	}
	sh := v.(*streamHistory)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.seq == 0 {
		return RangeResult{}, false
	}
	res := RangeResult{Resolution: 1}
	if q.Step <= 1 {
		for i := 0; i < sh.filled; i++ {
			pos := (sh.head - sh.filled + i + 2*len(sh.raw)) % len(sh.raw)
			e := sh.raw[pos]
			if (q.HasFrom && e.TS < q.From) || (q.HasTo && e.TS > q.To) {
				continue
			}
			res.Entries = append(res.Entries, e)
		}
		if q.Limit > 0 && len(res.Entries) > q.Limit {
			res.Entries = res.Entries[len(res.Entries)-q.Limit:]
		}
		return res, true
	}
	// Pick the finest tier that consolidates at least q.Step raw rows.
	ti := len(sh.tiers) - 1
	for i := range sh.tiers {
		if sh.tiers[i].steps >= q.Step {
			ti = i
			break
		}
	}
	t := &sh.tiers[ti]
	res.Resolution = t.steps
	for i := 0; i < t.filled; i++ {
		pos := (t.head - t.filled + i + 2*len(t.ring)) % len(t.ring)
		r := t.ring[pos]
		if (q.HasFrom && r.EndTS < q.From) || (q.HasTo && r.StartTS > q.To) {
			continue
		}
		res.Rows = append(res.Rows, r)
	}
	// The open bucket serves as a final partial row so the range reaches
	// the present even between consolidation boundaries.
	if t.bucket.Count > 0 {
		r := t.bucket.row()
		if !((q.HasFrom && r.EndTS < q.From) || (q.HasTo && r.StartTS > q.To)) {
			res.Rows = append(res.Rows, r)
		}
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[len(res.Rows)-q.Limit:]
	}
	return res, true
}

// EntriesSince copies into dst the raw entries with Seq > after, oldest
// first — the subscription feed's backfill read. It reports the stream's
// newest seq; entries older than the ring's tail are gone (the caller sees
// the gap through the first returned Seq).
func (h *HistoryStore) EntriesSince(id string, after uint64, dst []HistoryEntry) ([]HistoryEntry, uint64) {
	v, loaded := h.m.Load(id)
	if !loaded {
		return dst, 0
	}
	sh := v.(*streamHistory)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 0; i < sh.filled; i++ {
		pos := (sh.head - sh.filled + i + 2*len(sh.raw)) % len(sh.raw)
		if sh.raw[pos].Seq > after {
			dst = append(dst, sh.raw[pos])
		}
	}
	return dst, sh.seq
}

// ---- persistence ----

// HistoryTierState is one tier's persisted state.
type HistoryTierState struct {
	Steps  int
	Rows   []HistoryRow // oldest first
	Bucket HistoryBucketState
}

// HistoryBucketState is a mid-bucket accumulator's persisted state.
type HistoryBucketState struct {
	Count     int
	Predicted int
	StartTS   int64
	EndTS     int64
	StartSeq  uint64
	EndSeq    uint64
	ActualSum float64
	ActualMin float64
	ActualMax float64
	PredSum   float64
	AbsErrSum float64
	Experts   []HistoryExpertCount
}

// HistoryExpertCount is one expert's bucket tally in persisted form.
type HistoryExpertCount struct {
	Name  string
	Count int
}

// HistoryState is one stream's complete persisted history: the predictd
// snapshot carries it per stream, and the cluster's warm handoff ships it so
// failover replicas serve range queries without a gap.
type HistoryState struct {
	Seq     uint64
	Raw     []HistoryEntry // oldest first
	Tiers   []HistoryTierState
	Pending struct {
		Pred    float64
		Std     float64
		Expert  string
		HasPred bool
	}
}

// State captures the stream's history for persistence. ok is false when the
// stream has none.
func (h *HistoryStore) State(id string) (HistoryState, bool) {
	v, loaded := h.m.Load(id)
	if !loaded {
		return HistoryState{}, false
	}
	sh := v.(*streamHistory)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := HistoryState{Seq: sh.seq}
	st.Pending.Pred, st.Pending.Std = sh.pending, sh.pendingStd
	st.Pending.Expert, st.Pending.HasPred = sh.pendingExpert, sh.pendingHasPred
	st.Raw = make([]HistoryEntry, 0, sh.filled)
	for i := 0; i < sh.filled; i++ {
		pos := (sh.head - sh.filled + i + 2*len(sh.raw)) % len(sh.raw)
		st.Raw = append(st.Raw, sh.raw[pos])
	}
	for i := range sh.tiers {
		t := &sh.tiers[i]
		ts := HistoryTierState{Steps: t.steps, Rows: make([]HistoryRow, 0, t.filled)}
		for j := 0; j < t.filled; j++ {
			pos := (t.head - t.filled + j + 2*len(t.ring)) % len(t.ring)
			ts.Rows = append(ts.Rows, t.ring[pos])
		}
		b := &t.bucket
		ts.Bucket = HistoryBucketState{
			Count: b.Count, Predicted: b.Predicted,
			StartTS: b.StartTS, EndTS: b.EndTS,
			StartSeq: b.StartSeq, EndSeq: b.EndSeq,
			ActualSum: b.ActualSum, ActualMin: b.ActualMin, ActualMax: b.ActualMax,
			PredSum: b.PredSum, AbsErrSum: b.AbsErrSum,
		}
		for _, ec := range b.Experts {
			ts.Bucket.Experts = append(ts.Bucket.Experts, HistoryExpertCount(ec))
		}
		st.Tiers = append(st.Tiers, ts)
	}
	return st, true
}

// Restore primes a stream's history from persisted state — the warm-restart
// and handoff install path. State captured under a different tier layout
// degrades gracefully: raw entries clamp to the current ring capacity
// (newest kept) and only tiers whose Steps match the current config keep
// their rows; mismatched tiers restart cold.
func (h *HistoryStore) Restore(id string, st HistoryState) {
	sh := &streamHistory{
		raw:   make([]HistoryEntry, h.cfg.RawRows),
		tiers: make([]historyTier, len(h.cfg.Tiers)),
	}
	sh.seq = st.Seq
	sh.pending, sh.pendingStd = st.Pending.Pred, st.Pending.Std
	sh.pendingExpert, sh.pendingHasPred = st.Pending.Expert, st.Pending.HasPred
	raw := st.Raw
	if len(raw) > h.cfg.RawRows {
		raw = raw[len(raw)-h.cfg.RawRows:]
	}
	copy(sh.raw, raw)
	sh.head = len(raw) % len(sh.raw)
	sh.filled = len(raw)
	for i, spec := range h.cfg.Tiers {
		t := historyTier{steps: spec.Steps, ring: make([]HistoryRow, spec.Rows)}
		for _, ts := range st.Tiers {
			if ts.Steps != spec.Steps {
				continue
			}
			rows := ts.Rows
			if len(rows) > spec.Rows {
				rows = rows[len(rows)-spec.Rows:]
			}
			copy(t.ring, rows)
			t.head = len(rows) % len(t.ring)
			t.filled = len(rows)
			b := ts.Bucket
			t.bucket = historyBucket{
				Count: b.Count, Predicted: b.Predicted,
				StartTS: b.StartTS, EndTS: b.EndTS,
				StartSeq: b.StartSeq, EndSeq: b.EndSeq,
				ActualSum: b.ActualSum, ActualMin: b.ActualMin, ActualMax: b.ActualMax,
				PredSum: b.PredSum, AbsErrSum: b.AbsErrSum,
			}
			for _, ec := range b.Experts {
				t.bucket.Experts = append(t.bucket.Experts, expertCount(ec))
			}
			break
		}
		sh.tiers[i] = t
	}
	h.m.Store(id, sh)
}

// Each calls f for every stream with history. Iteration order is
// unspecified.
func (h *HistoryStore) Each(f func(id string)) {
	h.m.Range(func(k, _ any) bool {
		f(k.(string))
		return true
	})
}
