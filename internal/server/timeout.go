package server

import (
	"bytes"
	"context"
	"net/http"
	"sync"
)

// withTimeout bounds each /v1 request. It replaces http.TimeoutHandler so
// the timeout response can carry the X-Predictd-Reason header the client's
// retry policy keys on: a timed-out request answers 503 with reason
// "timeout" (hedge-worthy — the work may still complete server-side),
// distinct from the "drain" and "shed" 503s.
//
// The inner handler runs in its own goroutine against a buffering response
// writer; whichever side finishes first owns the real ResponseWriter. An
// abandoned handler keeps running to completion (its writes land in the
// discarded buffer) — same contract as the stdlib TimeoutHandler.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)

		bw := &bufferedResponse{h: make(http.Header)}
		done := make(chan struct{})
		panicked := make(chan any, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicked <- p
				}
			}()
			next.ServeHTTP(bw, r)
			bw.complete()
			close(done)
		}()

		select {
		case p := <-panicked:
			panic(p)
		case <-done:
			bw.flushTo(w)
		case <-ctx.Done():
			if bw.abandon() {
				// The handler had already produced its response between the
				// deadline firing and the abandon; serve it rather than lying
				// with a 503.
				bw.flushTo(w)
				return
			}
			w.Header().Set(ReasonHeader, ReasonTimeout)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, CodeTimeout, "request timed out")
		}
	})
}

// bufferedResponse buffers an inner handler's response so the timeout
// middleware can atomically decide whether it or the 503 wins.
type bufferedResponse struct {
	mu        sync.Mutex
	h         http.Header
	code      int
	buf       bytes.Buffer
	abandoned bool
	finished  bool
}

func (b *bufferedResponse) Header() http.Header { return b.h }

func (b *bufferedResponse) WriteHeader(code int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.code == 0 {
		b.code = http.StatusOK
	}
	if b.abandoned {
		return len(p), nil // discard; the 503 already went out
	}
	return b.buf.Write(p)
}

// complete records that the inner handler returned with its full response
// buffered.
func (b *bufferedResponse) complete() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.finished = true
}

// abandon marks the response as timed out. It reports true when the handler
// had already completed its response, in which case the caller should serve
// the buffered response instead of the 503.
func (b *bufferedResponse) abandon() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.finished {
		return true
	}
	b.abandoned = true
	return false
}

// flushTo copies the buffered response onto the real writer.
func (b *bufferedResponse) flushTo(w http.ResponseWriter) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k, vs := range b.h {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	code := b.code
	if code == 0 {
		code = http.StatusOK
	}
	w.WriteHeader(code)
	_, _ = w.Write(b.buf.Bytes())
}
