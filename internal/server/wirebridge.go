package server

import (
	"context"
	"errors"
	"sync"

	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/wire"
)

// The binary-transport bridge: wire.Server decodes frames, this adapter
// runs them through the same transport-independent pipeline as the HTTP
// handler (IngestKeyed) and maps the outcome onto an ack status exactly the
// way the handler maps it onto an HTTP status:
//
//	nil error            -> StatusOK       (202)
//	ErrDraining/ErrClosed -> StatusDraining (503 + drain)
//	engine.ErrBacklog    -> StatusBacklog  (429)
//	anything else        -> StatusRetry    (5xx; keys make resends safe)
//
// The conversion buffers are pooled because the wire server calls this from
// one goroutine per connection and the default (non-WAL) path must stay
// allocation-free end to end.

// keyedPool recycles the wire→KeyedSample conversion buffers.
var keyedPool = sync.Pool{
	New: func() any { b := make([]KeyedSample, 0, 256); return &b },
}

// BinaryIngest adapts one decoded wire batch onto the shared ingest path.
// Wire it as the wire.ServerConfig.Ingest callback.
func (s *Server) BinaryIngest(source string, samples []wire.Sample) wire.Ack {
	bp := keyedPool.Get().(*[]KeyedSample)
	batch := *bp
	if cap(batch) < len(samples) {
		batch = make([]KeyedSample, len(samples))
	}
	batch = batch[:len(samples)]
	for i := range samples {
		smp := &samples[i]
		if smp.Stream == "" {
			*bp = batch[:0]
			keyedPool.Put(bp)
			return wire.Ack{Status: wire.StatusInvalid, Msg: "empty stream"}
		}
		batch[i] = KeyedSample{
			Sample: engine.Sample{ID: smp.Stream, TS: smp.TS, Value: smp.Value},
			Source: source, Seq: smp.Seq,
		}
	}
	out := s.IngestKeyed(context.Background(), "", batch)
	// Drop the string references before pooling so retired stream IDs are
	// not pinned by idle buffers.
	clear(batch)
	*bp = batch[:0]
	keyedPool.Put(bp)

	ack := wire.Ack{
		Accepted: out.Accepted + out.FwdAccepted,
		Deduped:  out.Deduped + out.FwdDeduped,
	}
	switch {
	case out.Err == nil:
		ack.Status = wire.StatusOK
	case errors.Is(out.Err, ErrDraining), errors.Is(out.Err, engine.ErrClosed):
		ack.Status = wire.StatusDraining
		ack.Msg = "draining"
	case errors.Is(out.Err, engine.ErrBacklog):
		ack.Status = wire.StatusBacklog
		ack.Msg = "ingest backlog"
	default:
		// Forward failures and internal errors: retryable, the keys dedup
		// whatever portion landed.
		ack.Status = wire.StatusRetry
		ack.Msg = out.Err.Error()
	}
	return ack
}
