package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/engine"
)

func TestEventIDRoundTrip(t *testing.T) {
	pos, err := parseEventID("a@12,b/c@47")
	if err != nil || pos["a"] != 12 || pos["b/c"] != 47 {
		t.Fatalf("parse = %v (%v)", pos, err)
	}
	if got := formatEventID(pos); got != "a@12,b/c@47" {
		t.Errorf("format = %q, want sorted a@12,b/c@47", got)
	}
	if pos, err := parseEventID(""); err != nil || len(pos) != 0 {
		t.Errorf("empty id = %v (%v)", pos, err)
	}
	for _, bad := range []string{"a", "a@", "@12", "a@x", "a@12,,b@1"} {
		if _, err := parseEventID(bad); err == nil {
			t.Errorf("malformed id %q accepted", bad)
		}
	}
}

func TestFeedLagSetsFlag(t *testing.T) {
	f := newFeed()
	sub, ok := f.subscribe([]string{"s"}, 1)
	if !ok {
		t.Fatal("subscribe refused")
	}
	defer f.unsubscribe(sub)
	f.publish("s", HistoryEntry{Seq: 1})
	f.publish("s", HistoryEntry{Seq: 2}) // buffer full: dropped, flagged
	f.publish("other", HistoryEntry{Seq: 9})
	if len(sub.ch) != 1 {
		t.Errorf("buffered = %d, want 1", len(sub.ch))
	}
	if !sub.lagged.Load() {
		t.Error("overflow did not set the lagged flag")
	}
}

// sseEvent is one decoded test-side SSE event.
type sseEvent struct {
	id string
	ev FeedEvent
}

// sseClient reads a /v1/subscribe stream in the background.
type sseClient struct {
	cancel  context.CancelFunc
	events  chan sseEvent
	closed  chan error
	stopped sync.Once
}

// openSSE connects to the feed and parses events until the connection drops
// or stop() is called.
func openSSE(t *testing.T, base, streams, lastID string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	url := base + "/v1/subscribe?streams=" + strings.ReplaceAll(streams, "/", "%2F")
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("subscribe Content-Type = %q", ct)
	}
	c := &sseClient{cancel: cancel, events: make(chan sseEvent, 256), closed: make(chan error, 1)}
	go func() {
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var id, event, data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if event == "forecast" && data != "" {
					var ev FeedEvent
					if err := json.Unmarshal([]byte(data), &ev); err != nil {
						c.closed <- fmt.Errorf("decode %q: %v", data, err)
						return
					}
					c.events <- sseEvent{id: id, ev: ev}
				}
				event, data = "", ""
			case strings.HasPrefix(line, "id: "):
				id = line[4:]
			case strings.HasPrefix(line, "event: "):
				event = line[7:]
			case strings.HasPrefix(line, "data: "):
				data = line[6:]
			}
		}
		c.closed <- sc.Err()
	}()
	t.Cleanup(c.stop)
	return c
}

func (c *sseClient) stop() {
	c.stopped.Do(func() {
		c.cancel()
		select {
		case <-c.closed:
		case <-time.After(2 * time.Second):
		}
	})
}

// next waits for one event.
func (c *sseClient) next(t *testing.T) sseEvent {
	t.Helper()
	select {
	case e := <-c.events:
		return e
	case err := <-c.closed:
		t.Fatalf("stream closed while waiting for an event: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("no SSE event within 5s")
	}
	return sseEvent{}
}

// TestSubscribeLiveAndBackfill drives samples through the engine and checks
// the feed delivers them in order, then that a late subscriber backfills
// from the history ring.
func TestSubscribeLiveAndBackfill(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 1}, Config{})

	live := openSSE(t, env.ts.URL, "s", "")
	batch := IngestRequest{}
	for i := 1; i <= 25; i++ {
		batch.Samples = append(batch.Samples, IngestSample{Stream: "s", TS: int64(i), Value: signal(i)})
	}
	postJSON(t, env.ts.URL+"/v1/ingest", batch)

	var lastID string
	for i := 1; i <= 25; i++ {
		e := live.next(t)
		if e.ev.Stream != "s" || e.ev.Seq != uint64(i) || e.ev.TS != int64(i) {
			t.Fatalf("event %d = %+v", i, e.ev)
		}
		if e.id != fmt.Sprintf("s@%d", i) {
			t.Fatalf("event %d id = %q", i, e.id)
		}
		lastID = e.id
	}
	// Past training (20 samples), events carry the pairing stats.
	postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Stream: "s", TS: 26, Value: signal(26)})
	e := live.next(t)
	if e.ev.Predicted == nil || e.ev.AbsErr == nil || e.ev.Forecast == nil {
		t.Errorf("trained event lacks forecast stats: %+v", e.ev)
	}
	live.stop()

	// A fresh subscriber with no resume position backfills the whole ring.
	late := openSSE(t, env.ts.URL, "s", "")
	if first := late.next(t); first.ev.Seq != 1 {
		t.Errorf("backfill starts at seq %d, want 1", first.ev.Seq)
	}
	late.stop()

	// Resume from the recorded position: exactly the events after it, no
	// duplicates.
	resumed := openSSE(t, env.ts.URL, "s", lastID)
	if e := resumed.next(t); e.ev.Seq != 26 {
		t.Errorf("resume after %s delivered seq %d, want 26", lastID, e.ev.Seq)
	}
	postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Stream: "s", TS: 27, Value: signal(27)})
	if e := resumed.next(t); e.ev.Seq != 27 {
		t.Errorf("live event after resume = seq %d, want 27", e.ev.Seq)
	}
}

// TestSubscribeMultiStream checks stream filtering and the multi-stream
// position vector id.
func TestSubscribeMultiStream(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 2}, Config{})
	sub := openSSE(t, env.ts.URL, "a,b", "")
	postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Samples: []IngestSample{
		{Stream: "a", TS: 1, Value: 1},
		{Stream: "c", TS: 1, Value: 1}, // not subscribed: must not arrive
		{Stream: "b", TS: 1, Value: 1},
	}})
	got := map[string]bool{}
	var lastID string
	for i := 0; i < 2; i++ {
		e := sub.next(t)
		got[e.ev.Stream] = true
		lastID = e.id
	}
	if !got["a"] || !got["b"] {
		t.Fatalf("streams seen = %v, want a and b", got)
	}
	if lastID != "a@1,b@1" {
		t.Errorf("final id = %q, want the sorted position vector a@1,b@1", lastID)
	}
	select {
	case e := <-sub.events:
		t.Fatalf("unsubscribed stream delivered: %+v", e.ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// subscribeHandlers counts live goroutines currently inside the SSE
// handler — the leak detector's probe.
func subscribeHandlers() int {
	buf := make([]byte, 1<<20)
	stacks := string(buf[:runtime.Stack(buf, true)])
	return strings.Count(stacks, ").handleSubscribe(")
}

// TestSubscribeGoroutineDrain is the leak assertion: subscriber handlers
// must end when clients disconnect and when the feed shuts down, leaving no
// handler goroutine behind.
func TestSubscribeGoroutineDrain(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 1}, Config{})
	if err := env.eng.Register("s", newOnline(t)); err != nil {
		t.Fatal(err)
	}

	// Client-side disconnects release their handlers.
	subs := make([]*sseClient, 4)
	for i := range subs {
		subs[i] = openSSE(t, env.ts.URL, "s", "")
	}
	waitFor(t, func() bool { return subscribeHandlers() == 4 })
	for _, c := range subs {
		c.stop()
	}
	waitFor(t, func() bool { return subscribeHandlers() == 0 })

	// Server-side feed shutdown releases handlers with the client still
	// connected.
	hung := openSSE(t, env.ts.URL, "s", "")
	waitFor(t, func() bool { return subscribeHandlers() == 1 })
	env.srv.feed.close()
	select {
	case <-hung.closed:
	case <-time.After(2 * time.Second):
		t.Fatal("feed.close() did not end the open subscription")
	}
	waitFor(t, func() bool { return subscribeHandlers() == 0 })

	// A post-shutdown subscribe is refused with the draining envelope.
	resp, env2 := fetchEnvelope(t, "GET", env.ts.URL+"/v1/subscribe?streams=s", "")
	if resp.StatusCode != http.StatusServiceUnavailable || env2.Error.Code != CodeDraining {
		t.Errorf("post-shutdown subscribe = %d code %q, want 503 draining",
			resp.StatusCode, env2.Error.Code)
	}
}
