package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The subscription feed turns the read path from poll to push: one SSE
// connection per dashboard instead of per-stream polling. Events are keyed
// by each stream's history seq, and the event id carries the subscriber's
// full position vector ("a@12,b@47"), so a dropped connection resumes via
// the standard Last-Event-ID header: the handler backfills everything after
// the resume position from the history ring, then goes live. A subscriber
// that falls behind the ring is not an error — it re-backfills from the
// ring and the gap is visible in the seq numbers.
//
// The feed handler mounts outside admission control and the request
// timeout: a subscription is a long-lived connection, so it must not pin an
// in-flight semaphore slot, and the timeout middleware's buffering writer
// would swallow the stream.

// FeedEvent is one SSE "forecast" event: the step's observation plus the
// forecast issued at it, and (when present) how the forecast targeting this
// observation fared.
type FeedEvent struct {
	Stream string  `json:"stream"`
	Seq    uint64  `json:"seq"`
	TS     int64   `json:"ts"`
	Value  float64 `json:"value"`
	// Forecast is the prediction issued at this step (for the next
	// observation); absent while the stream warms up or on a failed step.
	Forecast *ForecastDoc `json:"forecast,omitempty"`
	// Predicted and AbsErr report the forecast that targeted this
	// observation, when one existed.
	Predicted *float64 `json:"predicted,omitempty"`
	AbsErr    *float64 `json:"abs_err,omitempty"`
	Expert    string   `json:"expert,omitempty"`
}

// feedMsg is one published entry in flight to a subscriber.
type feedMsg struct {
	stream string
	e      HistoryEntry
}

// feedSub is one live SSE subscriber.
type feedSub struct {
	streams map[string]struct{}
	ch      chan feedMsg
	// lagged flips when a publish found the channel full; the handler
	// re-backfills from the ring and clears it.
	lagged atomic.Bool
	// done closes when the server shuts the feed down, releasing the
	// handler (and with it the connection) so Shutdown doesn't hang on
	// open subscriptions.
	done chan struct{}
}

// feed is the broker between the history store's append hook and the SSE
// handlers. Publishing never blocks: a slow subscriber lags and recovers
// from the ring instead of backpressuring the engine's shard workers.
type feed struct {
	mu     sync.RWMutex
	subs   map[*feedSub]struct{}
	closed bool
}

func newFeed() *feed { return &feed{subs: make(map[*feedSub]struct{})} }

// publish fans one recorded entry out to matching subscribers. Runs on the
// engine's shard worker goroutines; must stay non-blocking.
func (f *feed) publish(stream string, e HistoryEntry) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for sub := range f.subs {
		if _, ok := sub.streams[stream]; !ok {
			continue
		}
		select {
		case sub.ch <- feedMsg{stream: stream, e: e}:
		default:
			sub.lagged.Store(true)
		}
	}
}

// subscribe registers a subscriber for the given streams. ok is false once
// the feed has shut down.
func (f *feed) subscribe(streams []string, buffer int) (*feedSub, bool) {
	sub := &feedSub{
		streams: make(map[string]struct{}, len(streams)),
		ch:      make(chan feedMsg, buffer),
		done:    make(chan struct{}),
	}
	for _, s := range streams {
		sub.streams[s] = struct{}{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, false
	}
	f.subs[sub] = struct{}{}
	return sub, true
}

func (f *feed) unsubscribe(sub *feedSub) {
	f.mu.Lock()
	delete(f.subs, sub)
	f.mu.Unlock()
}

// close shuts the feed down: every live subscriber's done channel closes
// (ending its handler) and future subscribes are refused.
func (f *feed) close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for sub := range f.subs {
		close(sub.done)
	}
}

// parseEventID parses a Last-Event-ID position vector ("a@12,b@47") into
// per-stream resume positions. Unknown streams are kept — the subscriber
// chooses its stream set independently — and malformed parts are an error
// so a corrupted id fails loud instead of silently replaying from zero.
func parseEventID(id string) (map[string]uint64, error) {
	pos := make(map[string]uint64)
	if id == "" {
		return pos, nil
	}
	for _, part := range strings.Split(id, ",") {
		at := strings.LastIndex(part, "@")
		if at <= 0 || at == len(part)-1 {
			return nil, fmt.Errorf("bad event id part %q", part)
		}
		seq, err := strconv.ParseUint(part[at+1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad event id part %q", part)
		}
		pos[part[:at]] = seq
	}
	return pos, nil
}

// formatEventID renders the position vector as a stable (sorted) event id.
func formatEventID(pos map[string]uint64) string {
	keys := make([]string, 0, len(pos))
	for k := range pos {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(pos[k], 10))
	}
	return b.String()
}

// feedEvent converts a history entry to its wire document.
func feedEvent(stream string, e HistoryEntry) FeedEvent {
	ev := FeedEvent{Stream: stream, Seq: e.Seq, TS: e.TS, Value: e.Actual}
	if e.HasNext {
		ev.Forecast = &ForecastDoc{
			TS:          e.TS,
			Value:       e.Next,
			Expert:      e.NextExpert,
			StdEstimate: e.NextStd,
		}
	}
	if e.HasPred {
		p, ae := e.Pred, e.Pred-e.Actual
		if ae < 0 {
			ae = -ae
		}
		ev.Predicted, ev.AbsErr, ev.Expert = &p, &ae, e.Expert
	}
	return ev
}

// handleSubscribe serves GET /v1/subscribe?streams=a,b,c as an SSE stream
// of "forecast" events with Last-Event-ID resume.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusNotFound, CodeUnknownStream,
			"forecast history is not enabled on this node")
		return
	}
	streams, errCode, errMsg := splitStreamsParam(r.URL.Query().Get("streams"), s.cfg.MaxBulkStreams)
	if errCode != "" {
		writeError(w, http.StatusBadRequest, errCode, errMsg)
		return
	}
	// EventSource can't set headers on reconnect targets it doesn't control;
	// accept the resume position as a query parameter too (header wins).
	resumeID := r.Header.Get("Last-Event-ID")
	if resumeID == "" {
		resumeID = r.URL.Query().Get("last_event_id")
	}
	pos, err := parseEventID(resumeID)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}

	sub, ok := s.feed.subscribe(streams, 256)
	if !ok {
		w.Header().Set(ReasonHeader, ReasonDrain)
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	defer s.feed.unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	if cl := s.cfg.Cluster; cl != nil {
		h.Set(NodeHeader, cl.NodeID())
	}
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	// Flush the headers now: with no backfill and a quiet stream, nothing
	// else writes until the first heartbeat, and EventSource clients sit in
	// "connecting" until the response head arrives.
	if err := rc.Flush(); err != nil {
		return
	}

	// lastSent is the dedup guard between backfill and the live channel: a
	// subscriber registered before backfill reads the ring, so an entry can
	// arrive both ways; seq ordering makes dropping duplicates trivial.
	lastSent := make(map[string]uint64, len(streams))
	for _, id := range streams {
		lastSent[id] = pos[id]
	}
	var backfill []HistoryEntry
	send := func(stream string, e HistoryEntry) error {
		if e.Seq <= lastSent[stream] {
			return nil
		}
		lastSent[stream] = e.Seq
		buf, jerr := json.Marshal(feedEvent(stream, e))
		if jerr != nil {
			return jerr
		}
		if _, werr := fmt.Fprintf(w, "id: %s\nevent: forecast\ndata: %s\n\n",
			formatEventID(lastSent), buf); werr != nil {
			return werr
		}
		return rc.Flush()
	}
	catchUp := func() error {
		for _, id := range streams {
			backfill, _ = s.history.EntriesSince(id, lastSent[id], backfill[:0])
			for _, e := range backfill {
				if serr := send(id, e); serr != nil {
					return serr
				}
			}
		}
		return nil
	}
	if err := catchUp(); err != nil {
		return
	}

	heartbeat := s.cfg.SSEHeartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.done:
			return
		case m := <-sub.ch:
			if err := send(m.stream, m.e); err != nil {
				return
			}
			if sub.lagged.CompareAndSwap(true, false) {
				if err := catchUp(); err != nil {
					return
				}
			}
		case <-ticker.C:
			// Comment line: keeps intermediaries from idling the connection
			// out and lets the handler notice a dead client.
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}
