package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/acis-lab/larpredictor/internal/engine"
)

// The transport-independent half of the ingest path. The HTTP handler and
// predictd's binary wire listener both decode their own framing into
// []KeyedSample and then run the identical pipeline here — draining check,
// cluster route/forward, durable (or direct-engine) apply, replication, and
// metric accounting — so the two transports cannot drift in durability or
// exactly-once semantics.

// ErrDraining reports that the server is refusing ingest because it is
// shutting down (or its engine is closed). The HTTP path maps it to 503 +
// ReasonDrain; the binary path to StatusDraining. Retryable elsewhere.
var ErrDraining = errors.New("server: draining")

// ErrForwardFailed reports that a cluster owner-forward failed mid-batch.
// The outcome carries what the owners that did respond accepted; the client
// retries the whole batch and its keys dedup the part that landed. The HTTP
// path maps it to 503 + ReasonForward.
var ErrForwardFailed = errors.New("forward to stream owner failed")

// IngestOutcome is the result of pushing one keyed batch through the shared
// ingest path. Accepted/Deduped count the locally applied portion;
// FwdAccepted/FwdDeduped what stream owners acked; Rejected what was neither
// applied nor deduped (backpressure or error). RouteHint, when set, is the
// address of the peer that owns every stream in the batch — transports relay
// it so the client's next batch can go straight to the owner.
type IngestOutcome struct {
	Accepted    int
	Deduped     int
	FwdAccepted int
	FwdDeduped  int
	Rejected    int
	RouteHint   string
	Err         error
}

// plainPool recycles the []engine.Sample conversion buffers used by the
// direct-engine ingest path, keeping the steady state allocation-free (the
// engine copies samples into its shard rings before IngestBatch returns).
var plainPool = sync.Pool{
	New: func() any { b := make([]engine.Sample, 0, 256); return &b },
}

// IngestKeyed runs one decoded batch through the full ingest pipeline. via
// is the ClusterHeader value the batch arrived with ("" for an external
// client batch, ClusterForward/ClusterReplicate for peer traffic). The
// batch slice is not retained.
func (s *Server) IngestKeyed(ctx context.Context, via string, batch []KeyedSample) IngestOutcome {
	var out IngestOutcome
	if s.draining.Load() {
		out.Err = ErrDraining
		out.Rejected = len(batch)
		return out
	}

	// Cluster routing: externally received batches (no ClusterHeader) split
	// into a local portion and per-owner forwards; forwarded and replicated
	// batches from peers are applied locally as-is, which keeps forwarding
	// to one hop. Forwards run before the local apply so a routing failure
	// turns into one clean retry — the client's idempotency keys make the
	// whole-batch retry safe.
	if cl := s.cfg.Cluster; cl != nil && via == "" {
		local, forward := cl.Route(batch)
		if len(local) == 0 && len(forward) == 1 {
			// The whole batch belongs to one peer: hint the client to send
			// the next one straight there.
			for peer := range forward {
				if addr := cl.PeerAddr(peer); addr != "" {
					out.RouteHint = addr
				}
			}
		}
		for peer, sub := range forward {
			fa, fd, ferr := cl.Forward(ctx, peer, sub)
			out.FwdAccepted += fa
			out.FwdDeduped += fd
			if ferr != nil {
				out.Rejected = len(batch) - out.FwdAccepted - out.FwdDeduped
				out.Err = fmt.Errorf("%w: %v", ErrForwardFailed, ferr)
				return out
			}
		}
		batch = local
	}
	if len(batch) == 0 {
		// Everything was forwarded and acked by its owner.
		return out
	}

	var err error
	if s.cfg.Ingest != nil {
		out.Accepted, out.Deduped, err = s.cfg.Ingest(batch)
	} else {
		bp := plainPool.Get().(*[]engine.Sample)
		plain := *bp
		if cap(plain) < len(batch) {
			plain = make([]engine.Sample, len(batch))
		}
		plain = plain[:len(batch)]
		for i := range batch {
			plain[i] = batch[i].Sample
		}
		out.Accepted, err = s.eng.IngestBatch(plain)
		// Drop the string references before pooling so a retired stream ID
		// is not pinned by an idle buffer.
		clear(plain)
		*bp = plain[:0]
		plainPool.Put(bp)
	}
	out.Rejected = len(batch) - out.Accepted - out.Deduped
	s.met.accepted.Add(uint64(out.Accepted))
	s.met.rejected.Add(uint64(out.Rejected))
	if cl := s.cfg.Cluster; cl != nil && err == nil && via != ClusterReplicate {
		// The batch is acked by the caller; queue it for the streams'
		// followers. Replicated samples keep their original (source, seq)
		// keys, so a follower that already saw one (through an earlier
		// forward, or a client retry that landed elsewhere) dedups it.
		cl.Replicate(batch)
	}
	out.Err = err
	return out
}
