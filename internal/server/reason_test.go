package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/engine"
)

// TestDrain503Reason checks the shutdown-path 503 carries reason "drain" and
// its distinct body, on both ingest and the readiness probe.
func TestDrain503Reason(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 1}, Config{})
	env.srv.draining.Store(true)

	resp, body := postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Stream: "s", Value: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining ingest = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(ReasonHeader); got != ReasonDrain {
		t.Errorf("%s = %q, want %q", ReasonHeader, got, ReasonDrain)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain 503 without Retry-After")
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("drain body = %s, want mention of draining", body)
	}

	hresp := getJSON(t, env.ts.URL+"/healthz", nil)
	if hresp.StatusCode != http.StatusServiceUnavailable || hresp.Header.Get(ReasonHeader) != ReasonDrain {
		t.Errorf("healthz during drain: status %d reason %q", hresp.StatusCode, hresp.Header.Get(ReasonHeader))
	}
}

// TestShed503Reason pins the lone in-flight slot on a blocked ingest and
// checks the admission-control 503 carries reason "shed".
func TestShed503Reason(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	env := newTestServer(t, engine.Config{
		Shards:     1,
		QueueDepth: 1,
		MaxBatch:   1,
		Policy:     engine.Block,
		StepHook: func(string) {
			started <- struct{}{}
			<-gate
		},
	}, Config{MaxInFlight: 1})
	defer close(gate)

	for ts := 1; ts <= 2; ts++ {
		if resp, _ := postJSON(t, env.ts.URL+"/v1/ingest",
			IngestRequest{Stream: "s", TS: int64(ts), Value: 1}); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("setup ingest %d failed", ts)
		}
	}
	<-started
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(env.ts.URL+"/v1/ingest", "application/json",
			strings.NewReader(`{"stream":"s","ts":3,"value":3}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return len(env.srv.sem) == 1 })

	resp, body := postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Stream: "s", TS: 4, Value: 4})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(ReasonHeader); got != ReasonShed {
		t.Errorf("%s = %q, want %q", ReasonHeader, got, ReasonShed)
	}
	if !strings.Contains(string(body), "capacity") {
		t.Errorf("shed body = %s, want mention of capacity", body)
	}

	gate <- struct{}{}
	gate <- struct{}{}
	gate <- struct{}{}
	wg.Wait()
}

// TestTimeout503Reason parks an ingest on a full Block-policy queue and
// checks the deadline 503 carries reason "timeout" and its distinct body.
func TestTimeout503Reason(t *testing.T) {
	gate := make(chan struct{})
	env := newTestServer(t, engine.Config{
		Shards:     1,
		QueueDepth: 1,
		MaxBatch:   1,
		Policy:     engine.Block,
		StepHook:   func(string) { <-gate },
	}, Config{RequestTimeout: 50 * time.Millisecond})
	defer close(gate)

	for ts := 1; ts <= 2; ts++ {
		if resp, _ := postJSON(t, env.ts.URL+"/v1/ingest",
			IngestRequest{Stream: "s", TS: int64(ts), Value: 1}); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("setup ingest %d failed", ts)
		}
	}
	resp, body := postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Stream: "s", TS: 3, Value: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out ingest = %d, want 503: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(ReasonHeader); got != ReasonTimeout {
		t.Errorf("%s = %q, want %q", ReasonHeader, got, ReasonTimeout)
	}
	if !strings.Contains(string(body), "timed out") {
		t.Errorf("timeout body = %s, want mention of timing out", body)
	}
	gate <- struct{}{}
	gate <- struct{}{}
	gate <- struct{}{}
}

// TestTimeoutMiddlewarePassesThrough confirms a fast request is served
// unchanged through the custom timeout middleware (headers, code, body).
func TestTimeoutMiddlewarePassesThrough(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 1}, Config{RequestTimeout: 2 * time.Second})
	resp, body := postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Stream: "s", TS: 1, Value: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fast ingest through timeout middleware = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", got)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil || ir.Accepted != 1 {
		t.Errorf("body = %s (%v), want accepted 1", body, err)
	}
}

// TestIngestHookDedupAndApplied exercises the durability hook contract: the
// hook's dedup count surfaces in the response, and the Applied hook
// populates forecast documents.
func TestIngestHookDedupAndApplied(t *testing.T) {
	dedup := NewDedup()
	var mu sync.Mutex
	var sawKeys []KeyedSample
	var envp *testServer
	cfg := Config{
		Ingest: func(batch []KeyedSample) (int, int, error) {
			mu.Lock()
			sawKeys = append(sawKeys, batch...)
			mu.Unlock()
			fresh := make([]engine.Sample, 0, len(batch))
			deduped := 0
			for _, ks := range batch {
				if ks.Source != "" && ks.Seq != 0 && !dedup.Apply(ks.ID, ks.Source, ks.Seq) {
					deduped++
					continue
				}
				fresh = append(fresh, ks.Sample)
			}
			n, err := envp.eng.IngestBatch(fresh)
			return n, deduped, err
		},
		Applied: dedup.Applied,
	}
	envp = newTestServer(t, engine.Config{Shards: 1}, cfg)

	req := IngestRequest{Source: "src-1", Samples: []IngestSample{
		{Stream: "s", TS: 1, Value: 1, Seq: 1},
		{Stream: "s", TS: 2, Value: 2, Seq: 2},
	}}
	resp, body := postJSON(t, envp.ts.URL+"/v1/ingest", req)
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("keyed ingest: status %d body %s (%v)", resp.StatusCode, body, err)
	}
	if ir.Accepted != 2 || ir.Deduped != 0 {
		t.Errorf("first send accepted/deduped = %d/%d, want 2/0", ir.Accepted, ir.Deduped)
	}

	// Resend the identical batch: applied exactly once, acked as deduped.
	resp, body = postJSON(t, envp.ts.URL+"/v1/ingest", req)
	if err := json.Unmarshal(body, &ir); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("retried ingest: status %d body %s (%v)", resp.StatusCode, body, err)
	}
	if ir.Accepted != 0 || ir.Deduped != 2 {
		t.Errorf("retry accepted/deduped = %d/%d, want 0/2", ir.Accepted, ir.Deduped)
	}

	mu.Lock()
	if len(sawKeys) != 4 || sawKeys[0].Source != "src-1" || sawKeys[1].Seq != 2 {
		t.Errorf("hook saw keys %+v", sawKeys)
	}
	mu.Unlock()

	envp.eng.Drain()
	var fr ForecastResponse
	if resp := getJSON(t, envp.ts.URL+"/v1/forecast/s", &fr); resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status %d", resp.StatusCode)
	}
	if fr.Applied != 2 {
		t.Errorf("forecast applied = %d, want 2", fr.Applied)
	}
}
