// Package server exposes the sharded prediction engine over HTTP/JSON — the
// deployment shape of fleet-scale forecasting: many producers POST samples
// into the engine's backpressured ingest path, request-path consumers GET
// the latest forecast for a stream, and operators scrape Prometheus metrics
// and probe readiness. Everything is stdlib net/http.
//
// The serving layer maps the engine's backpressure policies onto HTTP
// status codes: an accepted ingest is 202, a Reject-policy backlog is 429
// with a Retry-After hint, and a draining or closed engine is 503. The
// server itself applies admission control (a bounded in-flight semaphore),
// per-request timeouts, and request-size limits, so overload sheds at the
// edge instead of piling onto the shard queues.
//
// Shutdown is a drain sequence, not a teardown: stop accepting requests,
// wait out the in-flight ones, barrier the engine with Drain, then hand
// control to the OnDrain hook (predictd snapshots durable state there).
package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/obs"
)

// The three causes of a 503 are distinguished for retrying clients by the
// X-Predictd-Reason header (and distinct bodies): "drain" — the server is
// shutting down or the engine is closed, retry against a healthy replica;
// "shed" — admission control rejected the request before any work, retry
// after backoff; "timeout" — the per-request deadline fired mid-flight, so
// the work may still complete server-side (hedge-worthy: an idempotent
// retry is safe, a blind one may double-apply without keys).
const (
	// ReasonHeader names the response header carrying the 503 cause.
	ReasonHeader = "X-Predictd-Reason"
	// ReasonDrain marks a shutdown-path rejection.
	ReasonDrain = "drain"
	// ReasonShed marks an admission-control rejection.
	ReasonShed = "shed"
	// ReasonTimeout marks a request cut off by the server-side deadline.
	ReasonTimeout = "timeout"
)

// KeyedSample is one decoded ingest sample plus its client-assigned
// idempotency key. Source "" (or Seq 0) means the sample is unkeyed and
// bypasses deduplication.
type KeyedSample struct {
	engine.Sample
	// Source identifies the producing client instance.
	Source string
	// Seq is the client's monotonically increasing sequence number for this
	// sample; (Source, Seq) is the per-stream dedup key.
	Seq uint64
}

// Config parameterizes a Server. Engine is required; everything else has a
// serving-safe default.
type Config struct {
	// Engine is the prediction engine the server fronts. Required.
	Engine *engine.Engine
	// Cache is the latest-result cache the forecast endpoint serves from.
	// It must be wired to the engine (Config.OnResult = Cache.Record) by
	// the composer. Required.
	Cache *ResultCache
	// History is the multi-resolution forecast-history store behind the
	// range, bulk conditional-get, and subscription endpoints. Like Cache it
	// must be wired into the engine's OnResult path by the composer. Nil
	// disables the history and subscription endpoints (404) and downgrades
	// bulk ETags to the engine's processed counters.
	History *HistoryStore
	// MaxBulkStreams caps how many streams one bulk forecast or subscribe
	// request may name; more is a 400 "too_many_streams". Defaults to 256.
	MaxBulkStreams int
	// SSEHeartbeat is the subscription feed's keep-alive comment interval.
	// Defaults to 15s; tests shorten it.
	SSEHeartbeat time.Duration
	// Registry instruments the server (request counters by endpoint and
	// code, latency histograms, in-flight gauge) and backs /metrics. Nil
	// serves an empty exposition and skips instrumentation.
	Registry *obs.Registry
	// MaxInFlight bounds concurrently served /v1 requests; excess requests
	// are shed with 503 + Retry-After before touching the engine. Defaults
	// to 256.
	MaxInFlight int
	// RequestTimeout bounds each /v1 request, including time spent blocked
	// on a full ingest queue under the Block policy. Defaults to 10s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps the ingest request body. Defaults to 1 MiB.
	MaxBodyBytes int64
	// OnDrain, when set, runs at the end of Shutdown, after the listener
	// has stopped accepting and the engine has drained — the hook where
	// predictd snapshots durable state.
	OnDrain func()
	// Ingest, when set, replaces direct engine ingest on the request path —
	// predictd's WAL durability mode uses it to deduplicate on idempotency
	// keys and append each batch to the write-ahead log (group-commit fsync)
	// before any sample reaches the engine, so a 202 means the batch
	// survives a crash. It returns how many samples were enqueued, how many
	// were dropped as already-applied duplicates, and the engine's
	// backpressure error, if any (engine.ErrBacklog and engine.ErrClosed map
	// onto 429/503 exactly as in the direct path).
	Ingest func(batch []KeyedSample) (accepted, deduped int, err error)
	// Applied, when set, reports the durable count of keyed samples applied
	// to a stream; it is served in forecast documents so end-to-end audits
	// (and the chaos soak) can assert exactly-once application.
	Applied func(stream string) (uint64, bool)
	// Cluster, when set, makes this server one node of a replicated
	// predictd cluster: externally received ingest batches are routed by
	// stream ownership (non-owned samples forward synchronously to the
	// owner), locally applied batches replicate asynchronously to
	// followers, and forecast reads are served by role — fresh from the
	// owner, flagged stale from a replica, proxied otherwise.
	Cluster Cluster
	// ClusterHandler, when set, is mounted at /v1/cluster/ ahead of the
	// generic /v1 routes, bypassing admission control and the request
	// timeout: a shed heartbeat would read as a dead node, and a handoff
	// transfer may legitimately outlast the request timeout.
	ClusterHandler http.Handler
}

// Server serves the prediction API. Construct with New, start with Serve,
// stop with Shutdown.
type Server struct {
	cfg     Config
	eng     *engine.Engine
	cache   *ResultCache
	history *HistoryStore
	feed    *feed

	handler  http.Handler
	http     *http.Server
	sem      chan struct{}
	draining atomic.Bool

	met serverMetrics
}

// serverMetrics is the server's obs instrumentation; all fields are nil-safe
// when no registry is configured.
type serverMetrics struct {
	requests *obs.CounterVec   // endpoint, code
	latency  *obs.HistogramVec // endpoint
	inflight *obs.Gauge
	accepted *obs.Counter
	rejected *obs.Counter
}

// New validates cfg and builds the server (no listener yet).
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: nil engine")
	}
	if cfg.Cache == nil {
		return nil, errors.New("server: nil result cache")
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.MaxInFlight < 1 {
		return nil, fmt.Errorf("server: max in-flight %d < 1", cfg.MaxInFlight)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.RequestTimeout < 0 {
		return nil, fmt.Errorf("server: negative request timeout %v", cfg.RequestTimeout)
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxBodyBytes < 1 {
		return nil, fmt.Errorf("server: max body bytes %d < 1", cfg.MaxBodyBytes)
	}
	if cfg.MaxBulkStreams == 0 {
		cfg.MaxBulkStreams = 256
	}
	if cfg.MaxBulkStreams < 1 {
		return nil, fmt.Errorf("server: max bulk streams %d < 1", cfg.MaxBulkStreams)
	}
	s := &Server{
		cfg:     cfg,
		eng:     cfg.Engine,
		cache:   cfg.Cache,
		history: cfg.History,
		feed:    newFeed(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
	}
	if s.history != nil {
		s.history.OnAppend(s.feed.publish)
	}
	if reg := cfg.Registry; reg != nil {
		s.met = serverMetrics{
			requests: reg.Counter("predictd_http_requests_total",
				"HTTP requests served, by endpoint and status code.", "endpoint", "code"),
			latency: reg.Histogram("predictd_http_request_seconds",
				"HTTP request latency by endpoint.",
				[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}, "endpoint"),
			inflight: reg.Gauge1("predictd_http_in_flight",
				"HTTP requests currently being served."),
			accepted: reg.Counter1("predictd_ingest_samples_accepted_total",
				"Samples accepted into the engine over HTTP."),
			rejected: reg.Counter1("predictd_ingest_samples_rejected_total",
				"Samples rejected at ingest (backlog, closed, or invalid)."),
		}
	}
	s.handler = s.buildHandler()
	s.http = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s, nil
}

// buildHandler assembles the route table and the middleware stack:
// instrumentation outside, then admission control and the request timeout
// around the /v1 API. /healthz and /metrics bypass admission so probes and
// scrapes keep working under load.
func (s *Server) buildHandler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("POST /v1/ingest", s.handleIngest)
	api.HandleFunc("GET /v1/forecast/{stream...}", s.handleForecast)
	api.HandleFunc("GET /v1/forecasts", s.handleBulkForecasts)
	api.HandleFunc("GET /v1/streams", s.handleStreams)

	var v1 http.Handler = api
	if s.cfg.RequestTimeout > 0 {
		v1 = s.withTimeout(v1)
	}
	v1 = s.admit(v1)

	root := http.NewServeMux()
	root.Handle("/v1/", v1)
	// The subscription feed mounts outside admission control and the
	// timeout middleware: a long-lived SSE connection must not pin an
	// in-flight slot, and the buffering timeout writer would swallow the
	// stream. (More specific than /v1/, so ServeMux routes it here.)
	root.HandleFunc("GET /v1/subscribe", s.handleSubscribe)
	if s.cfg.ClusterHandler != nil {
		// More specific than /v1/, so ServeMux routes cluster traffic here
		// — outside admission control and the request timeout.
		root.Handle("/v1/cluster/", s.cfg.ClusterHandler)
	}
	root.Handle("GET /metrics", obs.Handler(s.cfg.Registry))
	root.HandleFunc("GET /healthz", s.handleHealthz)
	return s.instrument(root)
}

// Handler returns the fully assembled HTTP handler (tests drive it through
// httptest without a real listener).
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on ln until Shutdown. It returns nil after a
// clean Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	err := s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Draining reports whether the server has entered its shutdown sequence.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown runs the graceful drain sequence: flip to draining (readiness
// probes and new ingests see 503), stop accepting and wait out in-flight
// requests (bounded by ctx), barrier the engine with Drain so every accepted
// sample is fully processed, then run the OnDrain hook. The engine itself is
// left open — its owner closes it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Release live SSE subscribers first: http.Shutdown waits for open
	// connections, and a subscription never ends on its own.
	s.feed.close()
	err := s.http.Shutdown(ctx)
	s.eng.Drain()
	if s.cfg.OnDrain != nil {
		s.cfg.OnDrain()
	}
	return err
}

// admit is the admission-control middleware: a full in-flight semaphore
// sheds the request with 503 + Retry-After instead of queueing it.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set(ReasonHeader, ReasonShed)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, CodeShed, "server at capacity")
		}
	})
}

// instrument wraps the whole route table with the request counter, latency
// histogram, and in-flight gauge.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.met.inflight.Add(-1)
		ep := endpointLabel(r)
		s.met.requests.WithLabels(ep, strconv.Itoa(rec.code)).Inc()
		s.met.latency.WithLabels(ep).Observe(time.Since(start).Seconds())
	})
}

// endpointLabel maps a request to a bounded-cardinality metric label.
func endpointLabel(r *http.Request) string {
	switch p := r.URL.Path; {
	case p == "/v1/ingest":
		return "ingest"
	case p == "/v1/streams":
		return "streams"
	case p == "/v1/forecasts":
		return "forecasts"
	case p == "/v1/subscribe":
		return "subscribe"
	case len(p) > len("/v1/cluster/") && p[:len("/v1/cluster/")] == "/v1/cluster/":
		return "cluster"
	case len(p) > len("/v1/forecast/") && p[:len("/v1/forecast/")] == "/v1/forecast/":
		if strings.HasSuffix(p, "/history") {
			return "history"
		}
		return "forecast"
	case p == "/healthz":
		return "healthz"
	case p == "/metrics":
		return "metrics"
	}
	return "other"
}

// statusRecorder captures the response code for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the real writer's Flush — the
// SSE handler streams through this recorder.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// ---- API documents ----

// IngestSample is one observation in an ingest request.
type IngestSample struct {
	// Stream identifies the prediction stream; required, non-empty.
	Stream string `json:"stream"`
	// TS is an opaque caller tag (conventionally a unix timestamp) carried
	// through to the forecast document untouched.
	TS int64 `json:"ts,omitempty"`
	// Value is the observation.
	Value float64 `json:"value"`
	// Seq, together with the request's Source, forms the sample's
	// idempotency key. Zero means unkeyed.
	Seq uint64 `json:"seq,omitempty"`
}

// IngestRequest carries one sample (inline fields) or a batch (Samples).
// Setting both is allowed: the inline sample is ingested first. Source plus
// per-sample Seq form idempotency keys; on a server running with WAL
// durability, a retried keyed batch is applied exactly once.
type IngestRequest struct {
	Stream  string         `json:"stream,omitempty"`
	TS      int64          `json:"ts,omitempty"`
	Value   float64        `json:"value,omitempty"`
	Seq     uint64         `json:"seq,omitempty"`
	Source  string         `json:"source,omitempty"`
	Samples []IngestSample `json:"samples,omitempty"`
}

// IngestResponse reports how a (possibly partially accepted) ingest fared.
// Deduped counts samples recognized as already-applied retries; they are
// acked without being re-applied. Error, when present, follows the unified
// envelope's body shape, so an ingest failure document is the envelope plus
// accounting fields.
type IngestResponse struct {
	Accepted int        `json:"accepted"`
	Rejected int        `json:"rejected,omitempty"`
	Deduped  int        `json:"deduped,omitempty"`
	Error    *ErrorBody `json:"error,omitempty"`
}

// ForecastDoc is the forecast part of a forecast response.
type ForecastDoc struct {
	TS          int64   `json:"ts"`
	Value       float64 `json:"value"`
	Normalized  float64 `json:"normalized"`
	Expert      string  `json:"expert,omitempty"`
	StdEstimate float64 `json:"std_estimate,omitempty"`
	Source      string  `json:"source,omitempty"`
}

// ForecastResponse is the GET /v1/forecast/{stream} document: the latest
// forecast (absent during warm-up), the newest observation, and the
// stream's health and supervision state.
type ForecastResponse struct {
	Stream    string       `json:"stream"`
	Health    string       `json:"health"`
	LastTS    int64        `json:"last_ts"`
	LastValue float64      `json:"last_value"`
	LastError string       `json:"last_error,omitempty"`
	Forecast  *ForecastDoc `json:"forecast,omitempty"`
	Poisoned  bool         `json:"poisoned,omitempty"`
	Fault     string       `json:"fault,omitempty"`
	Processed uint64       `json:"processed"`
	// Applied is the durable count of keyed samples applied to this stream
	// (WAL durability mode only; zero otherwise). Unlike Processed it
	// survives restarts, so it is the number end-to-end audits compare
	// against acked sends.
	Applied uint64 `json:"applied,omitempty"`
}

// StreamDoc is one row of the GET /v1/streams listing.
type StreamDoc struct {
	ID        string `json:"id"`
	Health    string `json:"health"`
	Processed uint64 `json:"processed"`
	Dropped   uint64 `json:"dropped,omitempty"`
	Panics    int    `json:"panics,omitempty"`
	Poisoned  bool   `json:"poisoned,omitempty"`
	Fault     string `json:"fault,omitempty"`
}

// StreamsResponse is the paginated stream listing: streams sorted by ID.
// The current contract is cursor-based — NextCursor carries the opaque
// cursor for the next page while more remain; pass it back as ?cursor=.
// Offset/NextOffset serve the deprecated offset-style contract (answered
// with a Deprecation header) for one more release.
type StreamsResponse struct {
	Total      int         `json:"total"`
	Offset     int         `json:"offset"`
	Streams    []StreamDoc `json:"streams"`
	NextOffset *int        `json:"next_offset,omitempty"`
	NextCursor string      `json:"next_cursor,omitempty"`
}

// BulkForecastsResponse is the GET /v1/forecasts document: one full
// forecast document per known requested stream, the requested-but-unknown
// stream IDs, and — in cursor mode — the next page's cursor.
type BulkForecastsResponse struct {
	Streams    []ForecastResponse `json:"streams"`
	Missing    []string           `json:"missing,omitempty"`
	NextCursor string             `json:"next_cursor,omitempty"`
}

// HistoryResponse is the GET /v1/forecast/{stream}/history document. Raw
// resolution (step <= 1) fills Entries; consolidated resolutions fill Rows,
// whose last row may be the still-open partial bucket. Seq is the stream's
// newest history sequence number — the subscription feed's resume cursor.
type HistoryResponse struct {
	Stream     string         `json:"stream"`
	Seq        uint64         `json:"seq"`
	Resolution int            `json:"resolution"`
	Entries    []HistoryEntry `json:"entries,omitempty"`
	Rows       []HistoryRow   `json:"rows,omitempty"`
}

// ---- handlers ----

// handleIngest decodes a single sample or a batch and pushes it into the
// engine — through the durability hook when one is configured — mapping the
// outcome onto the status code: 202 all accepted (or deduplicated), 429 +
// Retry-After on backlog (Reject policy), 503 when the server is draining
// or the engine is closed.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set(ReasonHeader, ReasonDrain)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req IngestRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request: "+err.Error())
		return
	}

	batch := make([]KeyedSample, 0, len(req.Samples)+1)
	if req.Stream != "" {
		batch = append(batch, KeyedSample{
			Sample: engine.Sample{ID: req.Stream, TS: req.TS, Value: req.Value},
			Source: req.Source, Seq: req.Seq,
		})
	}
	for i, smp := range req.Samples {
		if smp.Stream == "" {
			writeError(w, http.StatusBadRequest, CodeEmptyStream,
				fmt.Sprintf("samples[%d]: empty stream", i))
			return
		}
		batch = append(batch, KeyedSample{
			Sample: engine.Sample{ID: smp.Stream, TS: smp.TS, Value: smp.Value},
			Source: req.Source, Seq: smp.Seq,
		})
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, CodeNoSamples, "no samples")
		return
	}

	// The decoded batch runs the transport-independent pipeline (draining
	// check, cluster route/forward, durable apply, replication) shared with
	// the binary wire listener; this handler only maps the outcome back
	// onto HTTP.
	if cl := s.cfg.Cluster; cl != nil {
		w.Header().Set(NodeHeader, cl.NodeID())
	}
	out := s.IngestKeyed(r.Context(), r.Header.Get(ClusterHeader), batch)
	if out.RouteHint != "" {
		w.Header().Set(RouteHeader, out.RouteHint)
	}
	resp := IngestResponse{
		Accepted: out.Accepted + out.FwdAccepted,
		Rejected: out.Rejected,
		Deduped:  out.Deduped + out.FwdDeduped,
	}
	switch {
	case errors.Is(out.Err, ErrDraining):
		// Draining began between the top-of-handler check and the apply.
		w.Header().Set(ReasonHeader, ReasonDrain)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "draining")
	case errors.Is(out.Err, ErrForwardFailed):
		w.Header().Set(ReasonHeader, ReasonForward)
		w.Header().Set("Retry-After", "1")
		resp.Error = &ErrorBody{Code: CodeForwardFailed, Message: out.Err.Error()}
		writeJSON(w, http.StatusServiceUnavailable, resp)
	case out.Err == nil:
		writeJSON(w, http.StatusAccepted, resp)
	case errors.Is(out.Err, engine.ErrBacklog):
		resp.Error = &ErrorBody{Code: CodeBacklog, Message: "ingest backlog"}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, resp)
	case errors.Is(out.Err, engine.ErrClosed):
		resp.Error = &ErrorBody{Code: CodeDraining, Message: "engine closed"}
		w.Header().Set(ReasonHeader, ReasonDrain)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
	default:
		resp.Error = &ErrorBody{Code: CodeInternal, Message: out.Err.Error()}
		writeJSON(w, http.StatusInternalServerError, resp)
	}
}

// handleForecast serves the stream's latest forecast and health document,
// or — when the path ends in "/history" — the stream's consolidated
// forecast-vs-actual history. Stream IDs may contain slashes, so the
// history suffix is carved off the wildcard rather than routed separately;
// a stream whose own ID ends in "/history" is reachable only through the
// bulk endpoint.
func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("stream")
	if hid, ok := strings.CutSuffix(id, "/history"); ok {
		s.handleHistory(w, r, hid)
		return
	}
	if id == "" {
		writeError(w, http.StatusBadRequest, CodeEmptyStream, "empty stream")
		return
	}
	if cl := s.cfg.Cluster; cl != nil {
		w.Header().Set(NodeHeader, cl.NodeID())
		// Reads already proxied by a peer (ClusterRead) serve the local
		// view unconditionally — one hop, no proxy chains.
		if r.Header.Get(ClusterHeader) == "" {
			switch role, peer := cl.ReadRole(id); role {
			case ReadReplica:
				// This node replicates the stream: serve the local view,
				// flagged stale — correct as of the last replicated batch.
				w.Header().Set(StaleHeader, "true")
				if addr := cl.PeerAddr(peer); addr != "" {
					w.Header().Set(RouteHeader, addr)
				}
			case ReadProxy:
				if body, perr := cl.ProxyForecast(r.Context(), peer, id); perr == nil {
					if addr := cl.PeerAddr(peer); addr != "" {
						w.Header().Set(RouteHeader, addr)
					}
					w.Header().Set("Content-Type", "application/json")
					w.WriteHeader(http.StatusOK)
					w.Write(body)
					return
				}
				// Owner unreachable (likely mid-failover, before the
				// detector confirms it down): fall through to whatever
				// local view exists rather than going dark.
				w.Header().Set(StaleHeader, "true")
			}
		}
	}
	resp, ok := s.forecastDoc(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownStream, "unknown stream "+id)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// forecastDoc assembles a stream's forecast document from the cache and the
// engine's supervision view. ok is false for a never-seen stream.
func (s *Server) forecastDoc(id string) (ForecastResponse, bool) {
	snap, haveSnap := s.cache.Latest(id)
	st, haveStats := s.eng.Stats(id)
	if !haveSnap && !haveStats {
		return ForecastResponse{}, false
	}
	resp := ForecastResponse{
		Stream:    id,
		Health:    snap.Health.String(),
		LastTS:    snap.LastTS,
		LastValue: snap.LastValue,
		LastError: snap.LastErr,
	}
	if haveStats {
		// The engine's supervision view is fresher than the cache for
		// health: a restored-but-idle stream has stats and no snapshot yet.
		resp.Health = st.Health.State.String()
		resp.Poisoned = st.Poisoned
		resp.Fault = st.Fault
		resp.Processed = st.Processed
	}
	if s.cfg.Applied != nil {
		resp.Applied, _ = s.cfg.Applied(id)
	}
	if snap.HasPred {
		resp.Forecast = &ForecastDoc{
			TS:          snap.PredTS,
			Value:       snap.Pred.Value,
			Normalized:  snap.Pred.Normalized,
			Expert:      snap.Pred.SelectedName,
			StdEstimate: snap.Pred.StdEstimate,
			Source:      snap.Pred.Source,
		}
	}
	return resp, true
}

// readFlags stamps the cluster read-role headers for a locally served read
// of the given stream: replica- or proxy-role reads are flagged stale with
// a route hint toward the owner. History and bulk reads are never proxied —
// any replica's ring answers, and the flags tell the client how fresh it is.
func (s *Server) readFlags(w http.ResponseWriter, r *http.Request, id string) {
	cl := s.cfg.Cluster
	if cl == nil || r.Header.Get(ClusterHeader) != "" {
		return
	}
	if role, peer := cl.ReadRole(id); role != ReadOwner {
		w.Header().Set(StaleHeader, "true")
		if addr := cl.PeerAddr(peer); addr != "" {
			w.Header().Set(RouteHeader, addr)
		}
	}
}

// handleHistory serves GET /v1/forecast/{stream}/history?from=&to=&step=:
// the stream's forecast-vs-actual record at the requested resolution — raw
// entries for step <= 1, else the finest consolidated tier covering the
// step — bounded to [from, to] by the samples' TS tags.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request, id string) {
	if id == "" {
		writeError(w, http.StatusBadRequest, CodeEmptyStream, "empty stream")
		return
	}
	if s.history == nil {
		writeError(w, http.StatusNotFound, CodeUnknownStream,
			"forecast history is not enabled on this node")
		return
	}
	if cl := s.cfg.Cluster; cl != nil {
		w.Header().Set(NodeHeader, cl.NodeID())
		s.readFlags(w, r, id)
	}
	q := r.URL.Query()
	var query RangeQuery
	var err error
	if v := q.Get("from"); v != "" {
		query.HasFrom = true
		if query.From, err = strconv.ParseInt(v, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRange, "bad from: "+v)
			return
		}
	}
	if v := q.Get("to"); v != "" {
		query.HasTo = true
		if query.To, err = strconv.ParseInt(v, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRange, "bad to: "+v)
			return
		}
	}
	if query.HasFrom && query.HasTo && query.From > query.To {
		writeError(w, http.StatusBadRequest, CodeBadRange,
			fmt.Sprintf("from %d > to %d", query.From, query.To))
		return
	}
	if v := q.Get("step"); v != "" {
		if query.Step, err = strconv.Atoi(v); err != nil || query.Step < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRange, "bad step: "+v)
			return
		}
	}
	if v := q.Get("limit"); v != "" {
		if query.Limit, err = strconv.Atoi(v); err != nil || query.Limit < 1 {
			writeError(w, http.StatusBadRequest, CodeBadLimit, "bad limit: "+v)
			return
		}
	}
	res, ok := s.history.Range(id, query)
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownStream, "unknown stream "+id)
		return
	}
	writeJSON(w, http.StatusOK, HistoryResponse{
		Stream:     id,
		Seq:        s.history.Seq(id),
		Resolution: res.Resolution,
		Entries:    res.Entries,
		Rows:       res.Rows,
	})
}

// splitStreamsParam parses a comma-separated streams= parameter against the
// bulk cap. An empty parameter or empty element is rejected.
func splitStreamsParam(raw string, maxStreams int) (ids []string, errCode, errMsg string) {
	if raw == "" {
		return nil, CodeBadRequest, "missing streams parameter"
	}
	ids = strings.Split(raw, ",")
	if len(ids) > maxStreams {
		return nil, CodeTooManyStreams,
			fmt.Sprintf("%d streams requested, cap is %d", len(ids), maxStreams)
	}
	for _, id := range ids {
		if id == "" {
			return nil, CodeEmptyStream, "empty stream in streams parameter"
		}
	}
	return ids, "", ""
}

// streamsETag computes the bulk response's strong ETag: a hash over this
// node's identity and every requested stream's version — its history seq
// (bumped by each processed sample) plus the engine's processed counter as
// a fallback when history is disabled. Any new sample on any requested
// stream changes the tag.
func (s *Server) streamsETag(ids []string) string {
	h := fnv.New64a()
	if cl := s.cfg.Cluster; cl != nil {
		io.WriteString(h, cl.NodeID())
	}
	var buf [8]byte
	for _, id := range ids {
		io.WriteString(h, id)
		var v uint64
		if s.history != nil {
			v = s.history.Seq(id)
		} else if st, ok := s.eng.Stats(id); ok {
			v = st.Processed
		}
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return fmt.Sprintf("\"f%016x\"", h.Sum64())
}

// handleBulkForecasts serves GET /v1/forecasts — the dashboard fan-out
// read. With ?streams=a,b,c it returns exactly those streams' forecast
// documents under a strong ETag (If-None-Match answers 304 while no
// requested stream has processed a new sample). Without ?streams= it pages
// through all streams with the shared cursor contract.
func (s *Server) handleBulkForecasts(w http.ResponseWriter, r *http.Request) {
	if cl := s.cfg.Cluster; cl != nil {
		w.Header().Set(NodeHeader, cl.NodeID())
	}
	q := r.URL.Query()
	if raw := q.Get("streams"); raw != "" {
		ids, errCode, errMsg := splitStreamsParam(raw, s.cfg.MaxBulkStreams)
		if errCode != "" {
			writeError(w, http.StatusBadRequest, errCode, errMsg)
			return
		}
		for _, id := range ids {
			s.readFlags(w, r, id)
		}
		etag := s.streamsETag(ids)
		w.Header().Set("ETag", etag)
		if matchesETag(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		resp := BulkForecastsResponse{Streams: []ForecastResponse{}}
		for _, id := range ids {
			if doc, ok := s.forecastDoc(id); ok {
				resp.Streams = append(resp.Streams, doc)
			} else {
				resp.Missing = append(resp.Missing, id)
			}
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	cursor, limit, errCode, errMsg := cursorParams(q, 100)
	if errCode != "" {
		writeError(w, http.StatusBadRequest, errCode, errMsg)
		return
	}
	ids := s.streamIDsAfter(cursor)
	resp := BulkForecastsResponse{Streams: []ForecastResponse{}}
	for _, id := range ids {
		if len(resp.Streams) == limit {
			resp.NextCursor = resp.Streams[len(resp.Streams)-1].Stream
			break
		}
		if doc, ok := s.forecastDoc(id); ok {
			resp.Streams = append(resp.Streams, doc)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// matchesETag reports whether an If-None-Match header matches the ETag
// (strong comparison; "*" matches anything).
func matchesETag(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		if part = strings.TrimSpace(part); part == etag || part == "*" {
			return true
		}
	}
	return false
}

// cursorParams parses the shared cursor-pagination contract: cursor is the
// last stream ID of the previous page (opaque to clients), limit the page
// size.
func cursorParams(q url.Values, defLimit int) (cursor string, limit int, errCode, errMsg string) {
	cursor = q.Get("cursor")
	if !utf8.ValidString(cursor) {
		return "", 0, CodeBadCursor, "cursor is not valid UTF-8"
	}
	limit = defLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return "", 0, CodeBadLimit, "bad limit: " + v
		}
		limit = n
	}
	if limit > maxStreamsPage {
		limit = maxStreamsPage
	}
	return cursor, limit, "", ""
}

// streamIDsAfter lists all stream IDs strictly after cursor, sorted.
func (s *Server) streamIDsAfter(cursor string) []string {
	var ids []string
	s.eng.Each(func(id string, _ engine.StreamStats) {
		if id > cursor {
			ids = append(ids, id)
		}
	})
	sort.Strings(ids)
	return ids
}

// maxStreamsPage caps one page of the stream listing.
const maxStreamsPage = 1000

// handleStreams serves the paginated, ID-sorted stream listing. The
// current contract is cursor-based (?cursor=&limit=, next_cursor in the
// body) and shared with the bulk forecast endpoint; the old offset contract
// still works for one release, answered with a Deprecation header.
func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	type row struct {
		id string
		st engine.StreamStats
	}
	var rows []row
	s.eng.Each(func(id string, st engine.StreamStats) {
		rows = append(rows, row{id, st})
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	streamDoc := func(rw row) StreamDoc {
		return StreamDoc{
			ID:        rw.id,
			Health:    rw.st.Health.State.String(),
			Processed: rw.st.Processed,
			Dropped:   rw.st.Dropped,
			Panics:    rw.st.Panics,
			Poisoned:  rw.st.Poisoned,
			Fault:     rw.st.Fault,
		}
	}

	if r.URL.Query().Get("offset") != "" {
		// Deprecated offset contract: unchanged semantics, flagged so
		// clients migrate to cursors before the param is removed.
		w.Header().Set("Deprecation", "true")
		offset, err := queryInt(r, "offset", 0)
		if err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad offset")
			return
		}
		limit, err := queryInt(r, "limit", 100)
		if err != nil || limit < 1 {
			writeError(w, http.StatusBadRequest, CodeBadLimit, "bad limit")
			return
		}
		if limit > maxStreamsPage {
			limit = maxStreamsPage
		}
		resp := StreamsResponse{Total: len(rows), Offset: offset, Streams: []StreamDoc{}}
		for i := offset; i < len(rows) && i < offset+limit; i++ {
			resp.Streams = append(resp.Streams, streamDoc(rows[i]))
		}
		if next := offset + len(resp.Streams); next < len(rows) && len(resp.Streams) > 0 {
			resp.NextOffset = &next
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	cursor, limit, errCode, errMsg := cursorParams(r.URL.Query(), 100)
	if errCode != "" {
		writeError(w, http.StatusBadRequest, errCode, errMsg)
		return
	}
	resp := StreamsResponse{Total: len(rows), Streams: []StreamDoc{}}
	for _, rw := range rows {
		if rw.id <= cursor {
			continue
		}
		if len(resp.Streams) == limit {
			resp.NextCursor = resp.Streams[len(resp.Streams)-1].ID
			break
		}
		resp.Streams = append(resp.Streams, streamDoc(rw))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the readiness probe: 200 while serving, 503 once the
// drain sequence has begun so load balancers stop routing here.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set(ReasonHeader, ReasonDrain)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

// writeJSON renders one response document.
func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(doc)
}
