package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/acis-lab/larpredictor/internal/engine"
)

// benchReadEnv builds a server with nStreams trained streams (30 samples
// each, past the 20-sample train size) and returns it with the stream names.
func benchReadEnv(b *testing.B, nStreams int) (*testServer, []string) {
	b.Helper()
	env := newTestServer(b, engine.Config{Shards: 4}, Config{})
	names := make([]string, nStreams)
	for i := range names {
		names[i] = fmt.Sprintf("bench/s%03d", i)
	}
	const samples = 30
	for s := 1; s <= samples; s++ {
		req := IngestRequest{Samples: make([]IngestSample, 0, nStreams)}
		for _, n := range names {
			req.Samples = append(req.Samples,
				IngestSample{Stream: n, TS: int64(s), Value: signal(s)})
		}
		body, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		rec := httptest.NewRecorder()
		env.srv.Handler().ServeHTTP(rec,
			httptest.NewRequest("POST", "/v1/ingest", bytes.NewReader(body)))
		if rec.Code != http.StatusAccepted {
			b.Fatalf("ingest status = %d: %s", rec.Code, rec.Body.String())
		}
	}
	for _, n := range names {
		n := n
		waitFor(b, func() bool { return env.hist.Seq(n) == samples })
	}
	return env, names
}

// BenchmarkForecastReadQPS is the read-path regression gate (see CI's
// bench-regression job): single-stream forecast GETs, a 100-stream bulk
// read, and the conditional-get hit path where If-None-Match short-circuits
// the response body.
func BenchmarkForecastReadQPS(b *testing.B) {
	get := func(h http.Handler, url, etag string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", url, nil)
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	b.Run("single", func(b *testing.B) {
		env, names := benchReadEnv(b, 16)
		h := env.srv.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec := get(h, "/v1/forecast/"+names[i%len(names)], ""); rec.Code != http.StatusOK {
				b.Fatalf("status = %d", rec.Code)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})

	b.Run("bulk100", func(b *testing.B) {
		env, names := benchReadEnv(b, 100)
		h := env.srv.Handler()
		url := "/v1/forecasts?streams=" + strings.Join(names, ",")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec := get(h, url, ""); rec.Code != http.StatusOK {
				b.Fatalf("status = %d", rec.Code)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})

	b.Run("conditional", func(b *testing.B) {
		env, names := benchReadEnv(b, 100)
		h := env.srv.Handler()
		url := "/v1/forecasts?streams=" + strings.Join(names, ",")
		etag := get(h, url, "").Header().Get("ETag")
		if etag == "" {
			b.Fatal("bulk response carries no ETag")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec := get(h, url, etag); rec.Code != http.StatusNotModified {
				b.Fatalf("status = %d, want 304", rec.Code)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
}

// BenchmarkHistoryRecord guards the ingest-side cost of the history ring:
// recording one engine result must stay allocation-free.
func BenchmarkHistoryRecord(b *testing.B) {
	h, err := NewHistoryStore(HistoryConfig{})
	if err != nil {
		b.Fatal(err)
	}
	r := engine.Result{Sample: engine.Sample{ID: "s", TS: 1, Value: 10}}
	h.Record(r) // register the stream outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Sample.TS = int64(i + 2)
		h.Record(r)
	}
}
