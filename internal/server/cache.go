package server

import (
	"sync"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/engine"
)

// Snapshot is the latest serving state of one stream: the newest observation
// folded in, the newest forecast issued (when any), and the health rung and
// error the last step reported. It is the document GET /v1/forecast serves
// and the per-stream payload the predictd snapshot persists, which is why
// every field is exported and plainly encodable.
type Snapshot struct {
	// LastTS and LastValue describe the newest observation processed.
	LastTS    int64
	LastValue float64
	// Health is the fallback-ladder rung after the last step.
	Health core.Health
	// LastErr is the last step's error text ("" when the step forecast
	// cleanly); core.ErrNotReady during warm-up, core.ErrFailed when the
	// predictor is terminally failed.
	LastErr string
	// Pred is the newest successful forecast; valid only when HasPred is
	// true. PredTS is the caller timestamp tag of the sample that produced
	// it.
	Pred    core.Prediction
	PredTS  int64
	HasPred bool
}

// ResultCache holds the latest Snapshot per stream. The engine's shard
// workers write it through Record (wired as Config.OnResult); HTTP handlers
// read it lock-free. Per-stream updates are single-writer — one shard owns a
// stream — so a plain atomic pointer swap per key suffices.
type ResultCache struct {
	m sync.Map // stream id -> *Snapshot (immutable once stored)
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	return &ResultCache{}
}

// Record folds one engine result into the stream's snapshot. It is safe to
// wire directly as engine.Config.OnResult.
func (c *ResultCache) Record(r engine.Result) {
	next := Snapshot{
		LastTS:    r.TS,
		LastValue: r.Value,
		Health:    r.Health,
	}
	if prev, ok := c.m.Load(r.ID); ok {
		p := prev.(*Snapshot)
		next.Pred, next.PredTS, next.HasPred = p.Pred, p.PredTS, p.HasPred
	}
	if r.Err != nil {
		next.LastErr = r.Err.Error()
	} else {
		next.Pred, next.PredTS, next.HasPred = r.Pred, r.TS, true
	}
	c.m.Store(r.ID, &next)
}

// Restore primes a stream's snapshot, the warm-restart path: a restarted
// predictd serves the previous run's latest forecasts before any new sample
// arrives.
func (c *ResultCache) Restore(id string, s Snapshot) {
	c.m.Store(id, &s)
}

// Latest returns the stream's snapshot.
func (c *ResultCache) Latest(id string) (Snapshot, bool) {
	v, ok := c.m.Load(id)
	if !ok {
		return Snapshot{}, false
	}
	return *v.(*Snapshot), true
}

// Each calls f for every cached stream. Iteration order is unspecified.
func (c *ResultCache) Each(f func(id string, s Snapshot)) {
	c.m.Range(func(k, v any) bool {
		f(k.(string), *v.(*Snapshot))
		return true
	})
}
