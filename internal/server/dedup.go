package server

import "sync"

// dedupWindow is how many sequence numbers behind a source's highest applied
// seq the table still distinguishes "applied" from "never seen". Anything at
// or below the floor (max - window) is treated as applied: retries arrive
// promptly, so by the time a seq falls out of the window its batch has long
// been resolved one way or the other.
const dedupWindow = 4096

// Dedup is the server-side idempotency table: for every stream it tracks,
// per client source, which sequence numbers have been applied, so a retried
// ingest batch is applied exactly once no matter how many times the network
// forced the client to resend it. It also keeps a durable per-stream count
// of applied keyed samples — the end-to-end audit number the chaos soak
// asserts on.
//
// Apply is the atomic check-and-mark: the caller treats a true return as a
// commitment to apply the sample (predictd logs it in the WAL before
// acking), and calls Revert only when that commitment could not be made.
// All methods are safe for concurrent use.
type Dedup struct {
	mu      sync.Mutex
	streams map[string]map[string]*seqWindow
	applied map[string]uint64
}

// seqWindow is one (stream, source) pair's applied-seq set: everything at or
// below Floor is applied; seqs above Floor are applied iff present in Seqs.
type seqWindow struct {
	floor uint64
	max   uint64
	seqs  map[uint64]struct{}
}

// NewDedup returns an empty table.
func NewDedup() *Dedup {
	return &Dedup{
		streams: map[string]map[string]*seqWindow{},
		applied: map[string]uint64{},
	}
}

// Apply marks (stream, source, seq) applied and reports whether it was new.
// A false return means the sample was already applied (or is so far behind
// the source's window that it must have been) and must be skipped.
func (d *Dedup) Apply(stream, source string, seq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	sources, ok := d.streams[stream]
	if !ok {
		sources = map[string]*seqWindow{}
		d.streams[stream] = sources
	}
	w, ok := sources[source]
	if !ok {
		w = &seqWindow{seqs: map[uint64]struct{}{}}
		sources[source] = w
	}
	if seq <= w.floor {
		return false
	}
	if _, dup := w.seqs[seq]; dup {
		return false
	}
	w.seqs[seq] = struct{}{}
	if seq > w.max {
		w.max = seq
	}
	w.compact()
	d.applied[stream]++
	return true
}

// Revert withdraws a mark made by Apply — the failure path when the durable
// log rejected the batch after the mark, so a client retry must be admitted.
func (d *Dedup) Revert(stream, source string, seq uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sources := d.streams[stream]
	if sources == nil {
		return
	}
	w := sources[source]
	if w == nil || seq <= w.floor {
		return
	}
	if _, ok := w.seqs[seq]; !ok {
		return
	}
	delete(w.seqs, seq)
	d.applied[stream]--
}

// compact advances the floor so the live set stays bounded. Called with the
// table lock held.
func (w *seqWindow) compact() {
	if w.max <= dedupWindow || len(w.seqs) <= 2*dedupWindow {
		return
	}
	newFloor := w.max - dedupWindow
	for s := range w.seqs {
		if s <= newFloor {
			delete(w.seqs, s)
		}
	}
	if newFloor > w.floor {
		w.floor = newFloor
	}
}

// Applied returns the stream's cumulative count of applied keyed samples.
func (d *Dedup) Applied(stream string) (uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.applied[stream]
	return n, ok
}

// DedupState is the table's exported snapshot form, persisted inside the
// predictd snapshot so idempotency survives a restart: without it, a batch
// acked just before a crash would be re-applied when the client retries it
// against the recovered daemon.
type DedupState struct {
	// Streams maps stream -> source -> applied-seq window.
	Streams map[string]map[string]SourceWindow
	// Applied maps stream -> cumulative applied keyed samples.
	Applied map[string]uint64
}

// SourceWindow is one (stream, source) window in exported form.
type SourceWindow struct {
	Floor, Max uint64
	Seqs       []uint64
}

// State captures the table for a snapshot.
func (d *Dedup) State() DedupState {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DedupState{
		Streams: make(map[string]map[string]SourceWindow, len(d.streams)),
		Applied: make(map[string]uint64, len(d.applied)),
	}
	for stream, sources := range d.streams {
		out := make(map[string]SourceWindow, len(sources))
		for source, w := range sources {
			sw := SourceWindow{Floor: w.floor, Max: w.max, Seqs: make([]uint64, 0, len(w.seqs))}
			for s := range w.seqs {
				sw.Seqs = append(sw.Seqs, s)
			}
			out[source] = sw
		}
		st.Streams[stream] = out
	}
	for stream, n := range d.applied {
		st.Applied[stream] = n
	}
	return st
}

// StreamState captures one stream's windows and applied count in exported
// form — the per-stream slice of State that cluster handoff ships. ok is
// false when the table has never seen the stream.
func (d *Dedup) StreamState(stream string) (windows map[string]SourceWindow, applied uint64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sources, okS := d.streams[stream]
	applied, okA := d.applied[stream]
	if !okS && !okA {
		return nil, 0, false
	}
	windows = make(map[string]SourceWindow, len(sources))
	for source, w := range sources {
		sw := SourceWindow{Floor: w.floor, Max: w.max, Seqs: make([]uint64, 0, len(w.seqs))}
		for s := range w.seqs {
			sw.Seqs = append(sw.Seqs, s)
		}
		windows[source] = sw
	}
	return windows, applied, true
}

// MergeStream unions a peer's windows for one stream into the table: per
// source, the floor becomes the max of the two floors and the explicit seq
// sets union (dropping seqs the new floor covers). The stream's applied
// count is then recomputed as Σ(floor + live seqs) per source — exact
// while no window has compacted (floors are zero and every applied seq is
// explicit, which holds until a single source exceeds the dedup window),
// and the same everything-at-or-below-the-floor-was-applied approximation
// Apply itself uses afterwards.
//
// This is the warm-handoff install path: a rejoining node merges the
// coverage of every peer that held its streams, then replays its own WAL
// against the merged table, so each sample is applied exactly once no
// matter which node acked it.
func (d *Dedup) MergeStream(stream string, windows map[string]SourceWindow) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sources, ok := d.streams[stream]
	if !ok {
		sources = map[string]*seqWindow{}
		d.streams[stream] = sources
	}
	for source, sw := range windows {
		w, ok := sources[source]
		if !ok {
			w = &seqWindow{seqs: map[uint64]struct{}{}}
			sources[source] = w
		}
		if sw.Floor > w.floor {
			w.floor = sw.Floor
		}
		if sw.Max > w.max {
			w.max = sw.Max
		}
		for _, s := range sw.Seqs {
			if s > w.floor {
				w.seqs[s] = struct{}{}
			}
		}
		for s := range w.seqs {
			if s <= w.floor {
				delete(w.seqs, s)
			}
		}
	}
	var applied uint64
	for _, w := range sources {
		applied += w.floor + uint64(len(w.seqs))
	}
	d.applied[stream] = applied
}

// Restore replaces the table's contents with a snapshot captured by State.
func (d *Dedup) Restore(st DedupState) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.streams = map[string]map[string]*seqWindow{}
	d.applied = map[string]uint64{}
	for stream, sources := range st.Streams {
		in := map[string]*seqWindow{}
		for source, sw := range sources {
			w := &seqWindow{floor: sw.Floor, max: sw.Max, seqs: make(map[uint64]struct{}, len(sw.Seqs))}
			for _, s := range sw.Seqs {
				if s > w.floor {
					w.seqs[s] = struct{}{}
				}
			}
			in[source] = w
		}
		d.streams[stream] = in
	}
	for stream, n := range st.Applied {
		d.applied[stream] = n
	}
}
