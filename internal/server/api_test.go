package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/acis-lab/larpredictor/internal/engine"
)

// fetchEnvelope performs a request and decodes the unified error envelope,
// failing the test if the body is not one.
func fetchEnvelope(t *testing.T, method, url, body string) (*http.Response, ErrorEnvelope) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("%s %s: body is not an error envelope: %v\n%s", method, url, err, raw)
	}
	return resp, env
}

// TestErrorEnvelopeShapes table-tests every /v1 handler's error responses:
// each must carry the unified {"error":{"code","message"}} envelope with the
// right status and machine code.
func TestErrorEnvelopeShapes(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 1},
		Config{MaxBodyBytes: 512, MaxBulkStreams: 3})
	// One known stream so history/forecast 404s are about the asked-for ID.
	postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Stream: "known", TS: 1, Value: 1})
	env.eng.Drain()

	big := strings.Repeat(`{"stream":"s","value":1},`, 40)
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"ingest malformed json", "POST", "/v1/ingest", "{not json", 400, CodeBadRequest},
		{"ingest no samples", "POST", "/v1/ingest", "{}", 400, CodeNoSamples},
		{"ingest empty stream", "POST", "/v1/ingest",
			`{"samples":[{"stream":"","value":1}]}`, 400, CodeEmptyStream},
		{"ingest oversized body", "POST", "/v1/ingest",
			`{"samples":[` + big[:len(big)-1] + `]}`, 413, CodeBodyTooLarge},
		{"forecast unknown stream", "GET", "/v1/forecast/nope", "", 404, CodeUnknownStream},
		{"history unknown stream", "GET", "/v1/forecast/nope/history", "", 404, CodeUnknownStream},
		{"history bad from", "GET", "/v1/forecast/known/history?from=abc", "", 400, CodeBadRange},
		{"history bad to", "GET", "/v1/forecast/known/history?to=abc", "", 400, CodeBadRange},
		{"history inverted range", "GET", "/v1/forecast/known/history?from=9&to=3", "", 400, CodeBadRange},
		{"history bad step", "GET", "/v1/forecast/known/history?step=-2", "", 400, CodeBadRange},
		{"history bad limit", "GET", "/v1/forecast/known/history?limit=0", "", 400, CodeBadLimit},
		{"bulk empty stream element", "GET", "/v1/forecasts?streams=a,,b", "", 400, CodeEmptyStream},
		{"bulk too many streams", "GET", "/v1/forecasts?streams=a,b,c,d", "", 400, CodeTooManyStreams},
		{"bulk bad limit", "GET", "/v1/forecasts?limit=0", "", 400, CodeBadLimit},
		{"streams bad cursor", "GET", "/v1/streams?cursor=%ff", "", 400, CodeBadCursor},
		{"streams bad limit", "GET", "/v1/streams?limit=zero", "", 400, CodeBadLimit},
		{"streams deprecated bad offset", "GET", "/v1/streams?offset=-1", "", 400, CodeBadRequest},
		{"subscribe missing streams", "GET", "/v1/subscribe", "", 400, CodeBadRequest},
		{"subscribe too many streams", "GET", "/v1/subscribe?streams=a,b,c,d", "", 400, CodeTooManyStreams},
		{"subscribe bad resume id", "GET",
			"/v1/subscribe?streams=known&last_event_id=garbage", "", 400, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, got := fetchEnvelope(t, tc.method, env.ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if got.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", got.Error.Code, tc.wantCode)
			}
			if got.Error.Message == "" {
				t.Error("empty error message")
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
		})
	}

	t.Run("ingest while draining", func(t *testing.T) {
		env.srv.draining.Store(true)
		defer env.srv.draining.Store(false)
		resp, got := fetchEnvelope(t, "POST", env.ts.URL+"/v1/ingest",
			`{"stream":"s","value":1}`)
		if resp.StatusCode != 503 || got.Error.Code != CodeDraining {
			t.Errorf("draining ingest = %d code %q, want 503 %q",
				resp.StatusCode, got.Error.Code, CodeDraining)
		}
	})
}

// TestStreamsCursorPagination walks the cursor contract across /v1/streams
// and checks the deprecated offset form still answers — flagged.
func TestStreamsCursorPagination(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 3}, Config{})
	ids := []string{"a", "b", "c", "d", "e"}
	for _, id := range ids {
		if err := env.eng.Register(id, newOnline(t)); err != nil {
			t.Fatal(err)
		}
	}

	var seen []string
	cursor := ""
	for page := 0; ; page++ {
		if page > len(ids) {
			t.Fatal("cursor pagination did not terminate")
		}
		var sr StreamsResponse
		url := fmt.Sprintf("%s/v1/streams?limit=2&cursor=%s", env.ts.URL, cursor)
		resp := getJSON(t, url, &sr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("streams status = %d", resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "" {
			t.Error("cursor request answered with a Deprecation header")
		}
		if sr.Total != len(ids) {
			t.Fatalf("total = %d, want %d", sr.Total, len(ids))
		}
		for _, s := range sr.Streams {
			seen = append(seen, s.ID)
		}
		if sr.NextCursor == "" {
			break
		}
		cursor = sr.NextCursor
	}
	if strings.Join(seen, "") != "abcde" {
		t.Errorf("paginated IDs = %v, want sorted a..e exactly once", seen)
	}

	// Deprecated offset form: same answer, flagged.
	var sr StreamsResponse
	resp := getJSON(t, env.ts.URL+"/v1/streams?offset=2&limit=2", &sr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offset streams status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("offset request missing Deprecation header")
	}
	if len(sr.Streams) != 2 || sr.Streams[0].ID != "c" || sr.NextOffset == nil || *sr.NextOffset != 4 {
		t.Errorf("offset page = %+v, want c,d with next_offset 4", sr)
	}
}

// TestBulkForecastsNamed covers the dashboard fan-out: named streams with
// missing IDs reported, a strong ETag, a 304 on If-None-Match, and the tag
// changing once any requested stream processes a new sample.
func TestBulkForecastsNamed(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 2}, Config{})
	batch := IngestRequest{}
	for i := 1; i <= 30; i++ {
		batch.Samples = append(batch.Samples,
			IngestSample{Stream: "web/1", TS: int64(i), Value: signal(i)},
			IngestSample{Stream: "web/2", TS: int64(i), Value: signal(i + 3)},
		)
	}
	if resp, body := postJSON(t, env.ts.URL+"/v1/ingest", batch); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, body)
	}
	env.eng.Drain()

	url := env.ts.URL + "/v1/forecasts?streams=" + strings.ReplaceAll("web/1,web/2,ghost", "/", "%2F")
	var br BulkForecastsResponse
	resp := getJSON(t, url, &br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk status = %d", resp.StatusCode)
	}
	if len(br.Streams) != 2 || br.Streams[0].Stream != "web/1" || br.Streams[1].Stream != "web/2" {
		t.Fatalf("bulk streams = %+v, want web/1 and web/2 in request order", br.Streams)
	}
	if len(br.Missing) != 1 || br.Missing[0] != "ghost" {
		t.Errorf("missing = %v, want [ghost]", br.Missing)
	}
	if br.Streams[0].Forecast == nil {
		t.Error("bulk document lacks the forecast")
	}
	etag := resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"f`) {
		t.Fatalf("ETag = %q, want a strong f-prefixed tag", etag)
	}

	// Conditional get: nothing changed, so 304 with an empty body.
	req, _ := http.NewRequest("GET", url, nil)
	req.Header.Set("If-None-Match", etag)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusNotModified || len(raw) != 0 {
		t.Fatalf("conditional get = %d with %d body bytes, want bare 304", cresp.StatusCode, len(raw))
	}

	// One new sample on a requested stream invalidates the tag.
	postJSON(t, env.ts.URL+"/v1/ingest", IngestRequest{Stream: "web/2", TS: 31, Value: 5})
	env.eng.Drain()
	cresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Errorf("post-ingest conditional get = %d, want 200", cresp.StatusCode)
	}
	if fresh := cresp.Header.Get("ETag"); fresh == etag || fresh == "" {
		t.Errorf("ETag did not change after new sample: %q", fresh)
	}
}

// TestBulkForecastsCursor pages all streams through the bulk endpoint's
// cursor form.
func TestBulkForecastsCursor(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 2}, Config{})
	for _, id := range []string{"a", "b", "c"} {
		if err := env.eng.Register(id, newOnline(t)); err != nil {
			t.Fatal(err)
		}
	}
	var br BulkForecastsResponse
	if resp := getJSON(t, env.ts.URL+"/v1/forecasts?limit=2", &br); resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk page 1 = %d", resp.StatusCode)
	}
	if len(br.Streams) != 2 || br.NextCursor != "b" {
		t.Fatalf("page 1 = %d docs next %q, want 2 docs cursor b", len(br.Streams), br.NextCursor)
	}
	var br2 BulkForecastsResponse
	if resp := getJSON(t, env.ts.URL+"/v1/forecasts?limit=2&cursor="+br.NextCursor, &br2); resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk page 2 = %d", resp.StatusCode)
	}
	if len(br2.Streams) != 1 || br2.Streams[0].Stream != "c" || br2.NextCursor != "" {
		t.Errorf("page 2 = %+v, want just c and no cursor", br2)
	}
}

// TestHistoryEndpoint reads a stream's history over HTTP at raw and
// consolidated resolutions, with TS bounds.
func TestHistoryEndpoint(t *testing.T) {
	env := newTestServer(t, engine.Config{Shards: 1}, Config{
		History: func() *HistoryStore {
			h, err := NewHistoryStore(HistoryConfig{RawRows: 32, Tiers: []HistoryTier{{Steps: 8, Rows: 16}}})
			if err != nil {
				t.Fatal(err)
			}
			return h
		}(),
	})
	batch := IngestRequest{}
	for i := 1; i <= 40; i++ {
		batch.Samples = append(batch.Samples, IngestSample{Stream: "s", TS: int64(i), Value: signal(i)})
	}
	if resp, body := postJSON(t, env.ts.URL+"/v1/ingest", batch); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, body)
	}
	env.eng.Drain()

	var hr HistoryResponse
	if resp := getJSON(t, env.ts.URL+"/v1/forecast/s/history", &hr); resp.StatusCode != http.StatusOK {
		t.Fatalf("history status = %d", resp.StatusCode)
	}
	if hr.Stream != "s" || hr.Seq != 40 || hr.Resolution != 1 {
		t.Fatalf("history doc = stream %q seq %d res %d, want s/40/1", hr.Stream, hr.Seq, hr.Resolution)
	}
	if len(hr.Entries) != 32 || hr.Entries[0].Seq != 9 || hr.Entries[31].Seq != 40 {
		t.Fatalf("raw entries = %d spanning %d..%d, want ring capacity 32 (seq 9..40)",
			len(hr.Entries), hr.Entries[0].Seq, hr.Entries[len(hr.Entries)-1].Seq)
	}
	// The predictor trains after 20 samples: late entries must be paired.
	last := hr.Entries[len(hr.Entries)-1]
	if !last.HasPred || last.Pred == 0 {
		t.Errorf("latest entry unpaired after training: %+v", last)
	}

	// TS-bounded raw read.
	var bounded HistoryResponse
	getJSON(t, env.ts.URL+"/v1/forecast/s/history?from=10&to=12", &bounded)
	if len(bounded.Entries) != 3 || bounded.Entries[0].TS != 10 {
		t.Errorf("bounded read = %+v, want TS 10..12", bounded.Entries)
	}

	// Consolidated read: 40 steps = 5 full rows of 8.
	var coarse HistoryResponse
	getJSON(t, env.ts.URL+"/v1/forecast/s/history?step=8", &coarse)
	if coarse.Resolution != 8 || len(coarse.Rows) != 5 {
		t.Fatalf("coarse read = res %d rows %d, want 8/5", coarse.Resolution, len(coarse.Rows))
	}
	r := coarse.Rows[4]
	if r.Count != 8 || r.EndSeq != 40 || r.ActualMin > r.ActualAvg || r.ActualAvg > r.ActualMax {
		t.Errorf("last row inconsistent: %+v", r)
	}
	if r.Predicted == 0 || r.AbsErrAvg <= 0 {
		t.Errorf("trained row has no forecast stats: %+v", r)
	}
}
