package server

import "context"

// Cluster wire contract: the headers clustered nodes exchange. The server
// package owns the names because they are part of its HTTP surface; the
// cluster package implements the behavior behind them.
const (
	// ClusterHeader marks intra-cluster requests and names their kind.
	// External client requests carry no ClusterHeader; the server only
	// routes (and re-replicates) batches that arrive without one, which is
	// what bounds forwarding to a single hop and makes replication fan-out
	// terminate.
	ClusterHeader = "X-Predictd-Cluster"
	// ClusterForward marks a batch forwarded from the node that accepted
	// it to the stream's routing owner. The receiver applies it locally —
	// even if membership views disagree about ownership — and replicates.
	ClusterForward = "forward"
	// ClusterReplicate marks a batch the owner is replicating to a
	// follower. The receiver applies it locally and never re-replicates.
	ClusterReplicate = "replicate"
	// ClusterRead marks a proxied forecast read; the receiver serves its
	// local view and never re-proxies.
	ClusterRead = "read"

	// StaleHeader is set (to "true") on forecast responses served from a
	// replica rather than the stream's routing owner: correct as of the
	// last replicated batch, but possibly behind the owner.
	StaleHeader = "X-Predictd-Stale"
	// RouteHeader carries a routing hint: the address of the node that
	// owns the stream(s) this request touched. Cluster-aware clients pin
	// their next requests there.
	RouteHeader = "X-Predictd-Route"
	// NodeHeader names the node that served the response; purely
	// diagnostic.
	NodeHeader = "X-Predictd-Node"

	// ReasonForward marks a 503 caused by a failed forward to the stream's
	// owner: the batch was not fully acked, so the client must retry (its
	// idempotency keys make the retry safe; by then failover may have
	// elected a reachable owner).
	ReasonForward = "forward"
)

// ReadRole says how this node should serve a forecast read for a stream.
type ReadRole int

const (
	// ReadOwner: this node is the stream's routing owner; serve fresh.
	ReadOwner ReadRole = iota
	// ReadReplica: this node replicates the stream; serve the local view,
	// flagged stale.
	ReadReplica
	// ReadProxy: this node holds nothing for the stream; proxy the read to
	// the owner.
	ReadProxy
)

// Cluster is the server's view of the clustering layer (implemented by
// internal/cluster; an interface here so server never imports it). All
// methods are safe for concurrent use from request handlers.
type Cluster interface {
	// NodeID is this node's member ID.
	NodeID() string
	// Route splits an externally received batch into the samples this node
	// owns (apply locally) and the samples to forward, grouped by owner
	// peer ID.
	Route(batch []KeyedSample) (local []KeyedSample, forward map[string][]KeyedSample)
	// Forward synchronously ships a sub-batch to a peer and returns its
	// accounting; it must inherit the client package's retry discipline.
	Forward(ctx context.Context, peer string, batch []KeyedSample) (accepted, deduped int, err error)
	// Replicate queues locally applied samples for asynchronous
	// replication to the stream's followers. It must not block.
	Replicate(batch []KeyedSample)
	// ReadRole reports how to serve a forecast read for the stream; peer
	// is the routing owner when the role is not ReadOwner.
	ReadRole(stream string) (role ReadRole, peer string)
	// ProxyForecast fetches the raw forecast document from the peer.
	ProxyForecast(ctx context.Context, peer, stream string) ([]byte, error)
	// PeerAddr resolves a peer ID to its advertised address for routing
	// hints ("" when unknown).
	PeerAddr(peer string) string
}
