package server

import (
	"fmt"
	"testing"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/engine"
)

// histResult builds one engine result for feeding Record directly: step i
// observes value v and (unless warming) issues forecast p for the next step.
func histResult(id string, ts int64, v float64, p float64, expert string, warming bool) engine.Result {
	r := engine.Result{Sample: engine.Sample{ID: id, TS: ts, Value: v}}
	if warming {
		r.Err = core.ErrNotReady
	} else {
		r.Pred = core.Prediction{Value: p, SelectedName: expert, StdEstimate: 0.5}
	}
	return r
}

func newHistory(t testing.TB, cfg HistoryConfig) *HistoryStore {
	t.Helper()
	h, err := NewHistoryStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHistoryConfigValidation(t *testing.T) {
	for _, bad := range []HistoryConfig{
		{RawRows: -1},
		{Tiers: []HistoryTier{{Steps: 1, Rows: 10}}},                      // steps must exceed 1
		{Tiers: []HistoryTier{{Steps: 4, Rows: 0}}},                       // rows must be positive
		{Tiers: []HistoryTier{{Steps: 16, Rows: 4}, {Steps: 8, Rows: 4}}}, // steps must increase
	} {
		if _, err := NewHistoryStore(bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	h := newHistory(t, HistoryConfig{})
	if got := h.Config(); got.RawRows != 512 || len(got.Tiers) != 2 {
		t.Errorf("defaults = %+v", got)
	}
}

// TestHistoryPairing checks that each entry carries the forecast that
// targeted it (issued the previous step) and that warm-up steps record the
// observation without one.
func TestHistoryPairing(t *testing.T) {
	h := newHistory(t, HistoryConfig{RawRows: 8, Tiers: []HistoryTier{{Steps: 4, Rows: 4}}})
	h.Record(histResult("s", 1, 10, 0, "", true))      // warming: no forecast out
	h.Record(histResult("s", 2, 11, 99, "lr", false))  // first forecast issued
	h.Record(histResult("s", 3, 12, 88, "knn", false)) // paired with 99
	h.Record(histResult("s", 4, 13, 0, "", true))      // failed step: pending survives
	h.Record(histResult("s", 5, 14, 77, "lr", false))  // paired with 88 (held through the failure)

	res, ok := h.Range("s", RangeQuery{})
	if !ok || len(res.Entries) != 5 {
		t.Fatalf("range = %+v ok=%v, want 5 raw entries", res, ok)
	}
	e := res.Entries
	if e[0].HasPred || e[1].HasPred {
		t.Errorf("steps before any forecast claim a pairing: %+v %+v", e[0], e[1])
	}
	if !e[2].HasPred || e[2].Pred != 99 || e[2].Expert != "lr" {
		t.Errorf("entry 3 = %+v, want paired with forecast 99 by lr", e[2])
	}
	if !e[3].HasPred || e[3].Pred != 88 {
		t.Errorf("entry 4 = %+v, want paired with forecast 88", e[3])
	}
	if !e[4].HasPred || e[4].Pred != 88 {
		t.Errorf("entry 5 = %+v, want pending forecast 88 held across the failed step", e[4])
	}
	if !e[2].HasNext || e[2].Next != 88 {
		t.Errorf("entry 3 outgoing forecast = %+v, want 88", e[2])
	}
	if e[3].HasNext {
		t.Errorf("failed step claims an outgoing forecast: %+v", e[3])
	}
	for i, want := range []uint64{1, 2, 3, 4, 5} {
		if e[i].Seq != want {
			t.Errorf("entry %d seq = %d, want %d", i, e[i].Seq, want)
		}
	}
}

// TestHistoryConsolidation drives enough steps to fill consolidated rows and
// checks the avg/min/max/abs-err math and modal expert attribution.
func TestHistoryConsolidation(t *testing.T) {
	h := newHistory(t, HistoryConfig{RawRows: 4, Tiers: []HistoryTier{{Steps: 4, Rows: 8}}})
	// Steps 1..9: forecasts always 10, actuals 8,12 alternating; experts
	// mostly "a" with one "b".
	for i := 1; i <= 9; i++ {
		v := 8.0
		if i%2 == 0 {
			v = 12
		}
		ex := "a"
		if i == 3 {
			ex = "b"
		}
		h.Record(histResult("s", int64(i), v, 10, ex, false))
	}
	res, ok := h.Range("s", RangeQuery{Step: 4})
	if !ok {
		t.Fatal("no history")
	}
	if res.Resolution != 4 {
		t.Fatalf("resolution = %d, want 4", res.Resolution)
	}
	// 9 steps = 2 full rows of 4 + an open bucket of 1 served as a partial
	// final row.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d (%+v), want 2 full + 1 partial", len(res.Rows), res.Rows)
	}
	r0 := res.Rows[0]
	if r0.Count != 4 || r0.StartSeq != 1 || r0.EndSeq != 4 || r0.StartTS != 1 || r0.EndTS != 4 {
		t.Errorf("row 0 bounds = %+v", r0)
	}
	if r0.ActualAvg != 10 || r0.ActualMin != 8 || r0.ActualMax != 12 {
		t.Errorf("row 0 actuals = avg %g min %g max %g, want 10/8/12", r0.ActualAvg, r0.ActualMin, r0.ActualMax)
	}
	// Steps 2..4 carry forecast 10 against actuals 12,8,12 → |err| avg 2.
	if r0.Predicted != 3 || r0.PredAvg != 10 || r0.AbsErrAvg != 2 {
		t.Errorf("row 0 forecast stats = %+v, want predicted 3 pred_avg 10 abs_err_avg 2", r0)
	}
	if r0.Expert != "a" {
		t.Errorf("row 0 expert = %q, want modal a", r0.Expert)
	}
	last := res.Rows[2]
	if last.Count != 1 || last.StartSeq != 9 {
		t.Errorf("partial row = %+v, want the single open-bucket step 9", last)
	}
}

// TestHistoryRingWrap overfills the raw ring and checks only the newest
// RawRows entries survive, oldest first.
func TestHistoryRingWrap(t *testing.T) {
	h := newHistory(t, HistoryConfig{RawRows: 4, Tiers: []HistoryTier{{Steps: 2, Rows: 3}}})
	for i := 1; i <= 10; i++ {
		h.Record(histResult("s", int64(i), float64(i), 0, "", true))
	}
	res, _ := h.Range("s", RangeQuery{})
	if len(res.Entries) != 4 {
		t.Fatalf("raw entries = %d, want ring capacity 4", len(res.Entries))
	}
	for i, e := range res.Entries {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("entry %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	// Tier ring: 10 steps = 5 full rows of 2, ring keeps the newest 3, plus
	// no open bucket (10 divides evenly).
	tres, _ := h.Range("s", RangeQuery{Step: 2})
	if len(tres.Rows) != 3 || tres.Rows[0].StartSeq != 5 || tres.Rows[2].EndSeq != 10 {
		t.Errorf("tier rows = %+v, want newest 3 rows spanning seq 5..10", tres.Rows)
	}
}

func TestHistoryRangeBounds(t *testing.T) {
	h := newHistory(t, HistoryConfig{RawRows: 16, Tiers: []HistoryTier{{Steps: 4, Rows: 8}}})
	for i := 1; i <= 12; i++ {
		h.Record(histResult("s", int64(i*100), float64(i), 10, "a", false))
	}
	// Raw: from/to inclusive by TS.
	res, _ := h.Range("s", RangeQuery{From: 300, HasFrom: true, To: 500, HasTo: true})
	if len(res.Entries) != 3 || res.Entries[0].TS != 300 || res.Entries[2].TS != 500 {
		t.Errorf("raw bounded range = %+v, want TS 300..500", res.Entries)
	}
	// Limit keeps the newest.
	res, _ = h.Range("s", RangeQuery{Limit: 2})
	if len(res.Entries) != 2 || res.Entries[1].TS != 1200 {
		t.Errorf("limited range = %+v, want newest 2", res.Entries)
	}
	// Consolidated: a row matches when its span intersects the bounds.
	res, _ = h.Range("s", RangeQuery{Step: 4, From: 450, HasFrom: true, To: 450, HasTo: true})
	if len(res.Rows) != 1 || res.Rows[0].StartTS != 100 || res.Rows[0].EndTS != 400 {
		// TS 450 falls between rows; the row ending at 400 has EndTS < From,
		// the row starting at 500 has StartTS > To — neither matches. Accept
		// the empty result too, but pin the current intersect semantics.
		if len(res.Rows) != 0 {
			t.Errorf("intersect range = %+v", res.Rows)
		}
	}
	res, _ = h.Range("s", RangeQuery{Step: 4, From: 350, HasFrom: true, To: 550, HasTo: true})
	if len(res.Rows) != 2 {
		t.Errorf("spanning range = %+v, want the two rows covering TS 350..550", res.Rows)
	}
	// A step coarser than every tier selects the coarsest.
	res, _ = h.Range("s", RangeQuery{Step: 1000})
	if res.Resolution != 4 {
		t.Errorf("oversized step resolution = %d, want coarsest tier 4", res.Resolution)
	}
	// Unknown stream.
	if _, ok := h.Range("nope", RangeQuery{}); ok {
		t.Error("unknown stream reported history")
	}
}

func TestHistoryEntriesSince(t *testing.T) {
	h := newHistory(t, HistoryConfig{RawRows: 4, Tiers: []HistoryTier{{Steps: 8, Rows: 2}}})
	for i := 1; i <= 6; i++ {
		h.Record(histResult("s", int64(i), float64(i), 0, "", true))
	}
	got, seq := h.EntriesSince("s", 4, nil)
	if seq != 6 || len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 {
		t.Errorf("EntriesSince(4) = %+v seq %d, want entries 5,6 of 6", got, seq)
	}
	// A cursor older than the ring's tail returns everything the ring holds;
	// the caller detects the gap from the first Seq.
	got, _ = h.EntriesSince("s", 0, got[:0])
	if len(got) != 4 || got[0].Seq != 3 {
		t.Errorf("EntriesSince(0) = %+v, want ring contents starting at seq 3", got)
	}
	if got, seq := h.EntriesSince("nope", 0, nil); len(got) != 0 || seq != 0 {
		t.Errorf("unknown stream EntriesSince = %v seq %d", got, seq)
	}
}

// TestHistoryStateRoundTrip snapshots mid-bucket, restores into a fresh
// store, and checks ranges and continued recording line up exactly with a
// store that never restarted.
func TestHistoryStateRoundTrip(t *testing.T) {
	cfg := HistoryConfig{RawRows: 8, Tiers: []HistoryTier{{Steps: 4, Rows: 4}}}
	live := newHistory(t, cfg)
	for i := 1; i <= 10; i++ { // 2 full rows + 2 steps into the open bucket
		live.Record(histResult("s", int64(i), float64(i), float64(i)+1, "a", false))
	}
	st, ok := live.State("s")
	if !ok || st.Seq != 10 || len(st.Raw) != 8 || len(st.Tiers) != 1 {
		t.Fatalf("state = seq %d raw %d tiers %d", st.Seq, len(st.Raw), len(st.Tiers))
	}
	if st.Tiers[0].Bucket.Count != 2 {
		t.Fatalf("open bucket count = %d, want 2", st.Tiers[0].Bucket.Count)
	}

	restored := newHistory(t, cfg)
	restored.Restore("s", st)
	for i := 11; i <= 12; i++ { // complete the bucket after restore
		live.Record(histResult("s", int64(i), float64(i), float64(i)+1, "a", false))
		restored.Record(histResult("s", int64(i), float64(i), float64(i)+1, "a", false))
	}
	for _, q := range []RangeQuery{{}, {Step: 4}, {Limit: 3}, {Step: 4, Limit: 2}} {
		a, aok := live.Range("s", q)
		b, bok := restored.Range("s", q)
		if aok != bok || fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("query %+v diverged:\nlive     %+v\nrestored %+v", q, a, b)
		}
	}
	if live.Seq("s") != restored.Seq("s") {
		t.Errorf("seq diverged: %d vs %d", live.Seq("s"), restored.Seq("s"))
	}
}

// TestHistoryRestoreClamps restores state captured under a bigger ring and a
// different tier layout into a smaller store: raw clamps to the newest
// entries, mismatched tiers restart cold.
func TestHistoryRestoreClamps(t *testing.T) {
	big := newHistory(t, HistoryConfig{RawRows: 16, Tiers: []HistoryTier{{Steps: 4, Rows: 8}}})
	for i := 1; i <= 12; i++ {
		big.Record(histResult("s", int64(i), float64(i), 0, "", true))
	}
	st, _ := big.State("s")

	small := newHistory(t, HistoryConfig{RawRows: 4, Tiers: []HistoryTier{{Steps: 8, Rows: 2}}})
	small.Restore("s", st)
	res, ok := small.Range("s", RangeQuery{})
	if !ok || len(res.Entries) != 4 || res.Entries[0].Seq != 9 || res.Entries[3].Seq != 12 {
		t.Errorf("clamped raw = %+v, want newest 4 (seq 9..12)", res.Entries)
	}
	if small.Seq("s") != 12 {
		t.Errorf("restored seq = %d, want 12", small.Seq("s"))
	}
	// The 8-step tier had no matching persisted tier: it must restart cold
	// (no rows yet) but keep consolidating from here.
	tres, _ := small.Range("s", RangeQuery{Step: 8})
	if len(tres.Rows) != 0 {
		t.Errorf("mismatched tier restored rows: %+v", tres.Rows)
	}
}

// TestHistoryRecordZeroAlloc pins the steady-state allocation contract:
// Record on a warmed-up stream allocates nothing.
func TestHistoryRecordZeroAlloc(t *testing.T) {
	h := newHistory(t, HistoryConfig{RawRows: 64, Tiers: []HistoryTier{{Steps: 8, Rows: 8}}})
	for i := 1; i <= 100; i++ { // warm up: ring allocated, expert known
		h.Record(histResult("s", int64(i), float64(i), 10, "a", false))
	}
	n := 0
	avg := testing.AllocsPerRun(1000, func() {
		n++
		h.Record(histResult("s", int64(100+n), 5, 10, "a", false))
	})
	if avg != 0 {
		t.Errorf("Record allocates %.2f objects per call in steady state, want 0", avg)
	}
}

// TestHistoryTierBoundarySelection pins the tier-selection rule at its
// boundaries: a step exactly equal to a tier's resolution must pick that
// tier (not the next coarser one), steps between tiers round up to the
// next coarser tier, and steps beyond the coarsest tier fall back to it.
func TestHistoryTierBoundarySelection(t *testing.T) {
	h := newHistory(t, HistoryConfig{
		RawRows: 16,
		Tiers:   []HistoryTier{{Steps: 4, Rows: 8}, {Steps: 32, Rows: 8}},
	})
	for i := 1; i <= 9; i++ {
		h.Record(histResult("s", int64(i), float64(i), 0, "", true))
	}
	cases := []struct {
		name string
		step int
		want int // resolution; 1 means the raw ring
	}{
		{"zero step serves raw", 0, 1},
		{"step one serves raw", 1, 1},
		{"below finest rounds up", 2, 4},
		{"exactly finest picks finest", 4, 4},
		{"just above finest picks next", 5, 32},
		{"exactly coarsest picks coarsest", 32, 32},
		{"beyond coarsest clamps to coarsest", 33, 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, ok := h.Range("s", RangeQuery{Step: tc.step})
			if !ok {
				t.Fatal("no history")
			}
			if res.Resolution != tc.want {
				t.Fatalf("Step %d resolved to resolution %d, want %d", tc.step, res.Resolution, tc.want)
			}
			if tc.want == 1 {
				if len(res.Entries) != 9 || len(res.Rows) != 0 {
					t.Fatalf("raw read returned %d entries / %d rows, want 9 / 0", len(res.Entries), len(res.Rows))
				}
			} else if len(res.Entries) != 0 {
				t.Fatalf("consolidated read leaked %d raw entries", len(res.Entries))
			}
		})
	}

	// Boundary reads must include the open partial bucket. Tier 4 holds two
	// full rows plus the open bucket of one; tier 32 has consolidated
	// nothing yet, so its read is exactly the open bucket of all nine.
	res, _ := h.Range("s", RangeQuery{Step: 4})
	if len(res.Rows) != 3 || res.Rows[2].Count != 1 || res.Rows[2].StartSeq != 9 {
		t.Fatalf("tier 4 rows = %+v, want 2 full + open bucket of step 9", res.Rows)
	}
	res, _ = h.Range("s", RangeQuery{Step: 32})
	if len(res.Rows) != 1 || res.Rows[0].Count != 9 {
		t.Fatalf("tier 32 rows = %+v, want a single open bucket of 9 steps", res.Rows)
	}
	if res.Rows[0].StartSeq != 1 || res.Rows[0].EndSeq != 9 {
		t.Fatalf("tier 32 open bucket bounds = %+v, want seq 1..9", res.Rows[0])
	}
}
