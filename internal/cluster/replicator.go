package cluster

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/acis-lab/larpredictor/client"
	"github.com/acis-lab/larpredictor/internal/obs"
)

// repBatch is one replication unit: samples from a single client source,
// carrying that source's original (stream, seq) idempotency keys so the
// follower's dedup table records exactly the coverage the owner acked.
type repBatch struct {
	source  string
	samples []client.Sample
}

// replicator ships acked batches to one follower, in order, off the
// request path. The queue is bounded: when the follower is down or slow
// the oldest batch drops (counted, logged) rather than stalling ingest —
// the follower heals any gap at its next warm handoff, because handoff
// merges dedup coverage and predictor state from the nodes that did apply
// those samples.
type replicator struct {
	peer string
	c    *client.Client
	ch   chan repBatch
	stop chan struct{}
	done chan struct{}

	lag   *obs.Gauge   // predictd_cluster_replication_lag{peer}
	sent  *obs.Counter // replicated samples
	drops *obs.Counter // dropped batches
	logw  io.Writer
}

func newReplicator(peer string, c *client.Client, queue int,
	lag *obs.Gauge, sent, drops *obs.Counter, logw io.Writer) *replicator {
	return &replicator{
		peer:  peer,
		c:     c,
		ch:    make(chan repBatch, queue),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		lag:   lag,
		sent:  sent,
		drops: drops,
		logw:  logw,
	}
}

func (r *replicator) start() { go r.loop() }

func (r *replicator) close() {
	close(r.stop)
	<-r.done
}

// enqueue queues a batch without blocking; on overflow it evicts the
// oldest queued batch to keep the newest (the follower is behind either
// way, and recent state is worth more at failover).
func (r *replicator) enqueue(b repBatch) {
	for {
		select {
		case r.ch <- b:
			r.lag.Set(float64(len(r.ch)))
			return
		default:
		}
		select {
		case old := <-r.ch:
			r.drops.Inc()
			fmt.Fprintf(r.logw, "cluster: replication to %s overflowed, dropped batch of %d from %s\n",
				r.peer, len(old.samples), old.source)
		default:
		}
	}
}

// loop drains the queue. Each send retries with backoff until it lands or
// the replicator closes: the send client is configured with unlimited
// attempts, and the context below is cancelled by close, so a dead
// follower pins its queue (visible as lag) instead of losing batches —
// until overflow eviction in enqueue makes the loss explicit.
func (r *replicator) loop() {
	defer close(r.done)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-r.stop
		cancel()
	}()
	for {
		select {
		case <-r.stop:
			return
		case b := <-r.ch:
			r.lag.Set(float64(len(r.ch)))
			if _, err := r.c.IngestFrom(ctx, b.source, b.samples); err != nil {
				select {
				case <-r.stop:
					return
				default:
				}
				r.drops.Inc()
				fmt.Fprintf(r.logw, "cluster: replication to %s failed terminally: %v\n", r.peer, err)
				// brief pause so a terminally failing peer does not spin
				select {
				case <-time.After(100 * time.Millisecond):
				case <-r.stop:
					return
				}
				continue
			}
			r.sent.Add(uint64(len(b.samples)))
		}
	}
}
