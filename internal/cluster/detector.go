package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/obs"
)

// PeerState is a peer's failure-detector verdict.
type PeerState int

const (
	// StateAlive: the peer answers heartbeats; it is routed to normally.
	StateAlive PeerState = iota
	// StateSuspect: the peer missed at least SuspectAfter consecutive probe
	// deadlines. It is still routed to — a suspect node gets the benefit of
	// the doubt until the confirmation window expires.
	StateSuspect
	// StateDown: the peer stayed suspect for the full confirmation window.
	// It is excluded from routing; the next member in rendezvous order
	// serves its streams until it answers a probe again.
	StateDown
)

// String implements fmt.Stringer.
func (s PeerState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	}
	return fmt.Sprintf("PeerState(%d)", int(s))
}

// peerHealth is one peer's detector state. Guarded by detector.mu.
type peerHealth struct {
	state     PeerState
	misses    int       // consecutive missed probe deadlines
	suspectAt time.Time // when the peer entered Suspect
}

// detector is the heartbeat failure detector: one prober goroutine per
// peer GETs the peer's /v1/cluster/heartbeat every HeartbeatEvery under a
// probe deadline. SuspectAfter consecutive misses demote Alive→Suspect;
// staying Suspect for DownAfter confirms Down. Any successful probe
// restores Alive immediately (and fires onAlive — the rejoin signal).
type detector struct {
	self           string
	heartbeatEvery time.Duration
	probeTimeout   time.Duration
	suspectAfter   int
	downAfter      time.Duration

	httpc *http.Client
	logw  io.Writer

	onAlive func(peer string) // fired on Down/Suspect → Alive transitions
	state   *obs.GaugeVec     // predictd_cluster_node_state{node}

	mu    sync.Mutex
	peers map[string]*peerHealth
	addrs map[string]string
	// binAddrs holds each peer's advertised binary ingest address, learned
	// from heartbeat bodies; empty means the peer advertises none.
	binAddrs map[string]string

	stop chan struct{}
	wg   sync.WaitGroup
}

func newDetector(self string, peers map[string]string, hbEvery, probeTimeout time.Duration,
	suspectAfter int, downAfter time.Duration, state *obs.GaugeVec, logw io.Writer) *detector {
	d := &detector{
		self:           self,
		heartbeatEvery: hbEvery,
		probeTimeout:   probeTimeout,
		suspectAfter:   suspectAfter,
		downAfter:      downAfter,
		httpc:          &http.Client{Timeout: probeTimeout},
		logw:           logw,
		state:          state,
		peers:          make(map[string]*peerHealth, len(peers)),
		addrs:          peers,
		binAddrs:       make(map[string]string, len(peers)),
		stop:           make(chan struct{}),
	}
	for id := range peers {
		d.peers[id] = &peerHealth{state: StateAlive}
		d.setGauge(id, StateAlive)
	}
	d.setGauge(self, StateAlive)
	return d
}

// start launches one prober per peer.
func (d *detector) start() {
	for id, addr := range d.addrs {
		d.wg.Add(1)
		go d.probeLoop(id, addr)
	}
}

// close stops every prober and waits them out.
func (d *detector) close() {
	close(d.stop)
	d.wg.Wait()
	d.httpc.CloseIdleConnections()
}

// alive reports whether id should be routed to: the local node is always
// alive to itself; peers count until confirmed Down.
func (d *detector) alive(id string) bool {
	if id == d.self {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ph, ok := d.peers[id]
	return ok && ph.state != StateDown
}

// stateOf returns the detector's verdict for id (the local node is Alive).
func (d *detector) stateOf(id string) PeerState {
	if id == d.self {
		return StateAlive
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ph, ok := d.peers[id]
	if !ok {
		return StateDown
	}
	return ph.state
}

func (d *detector) setGauge(id string, s PeerState) {
	if d.state != nil {
		d.state.WithLabels(id).Set(float64(s))
	}
}

func (d *detector) probeLoop(id, addr string) {
	defer d.wg.Done()
	t := time.NewTicker(d.heartbeatEvery)
	defer t.Stop()
	url := "http://" + addr + "/v1/cluster/heartbeat"
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
		}
		if ok, binAddr := d.probe(url); ok {
			d.noteSuccess(id, binAddr)
		} else {
			d.noteMiss(id)
		}
	}
}

// probe issues one heartbeat GET under the probe deadline. Any 2xx counts;
// everything else — refused, timed out, draining (503) — is a miss. The
// body carries the peer's advertised binary ingest address (empty when the
// peer runs HTTP-only); an unparsable body still counts as alive, just
// without a binary advertisement.
func (d *detector) probe(url string) (ok bool, binaryAddr string) {
	resp, err := d.httpc.Get(url)
	if err != nil {
		return false, ""
	}
	var hb struct {
		Node   string `json:"node"`
		Binary string `json:"binary"`
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return false, ""
	}
	if rerr == nil {
		json.Unmarshal(body, &hb)
	}
	return true, hb.Binary
}

func (d *detector) binaryAddr(id string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.binAddrs[id]
}

func (d *detector) noteSuccess(id, binaryAddr string) {
	d.mu.Lock()
	ph := d.peers[id]
	prev := ph.state
	ph.misses = 0
	ph.state = StateAlive
	d.binAddrs[id] = binaryAddr
	d.mu.Unlock()
	if prev != StateAlive {
		d.setGauge(id, StateAlive)
		fmt.Fprintf(d.logw, "cluster[%s]: peer %s %s -> alive\n", d.self, id, prev)
		if d.onAlive != nil {
			d.onAlive(id)
		}
	}
}

func (d *detector) noteMiss(id string) {
	d.mu.Lock()
	ph := d.peers[id]
	ph.misses++
	misses := ph.misses
	var transition PeerState = -1
	switch ph.state {
	case StateAlive:
		if ph.misses >= d.suspectAfter {
			ph.state = StateSuspect
			ph.suspectAt = time.Now()
			transition = StateSuspect
		}
	case StateSuspect:
		if time.Since(ph.suspectAt) >= d.downAfter {
			ph.state = StateDown
			transition = StateDown
		}
	}
	d.mu.Unlock()
	if transition >= 0 {
		d.setGauge(id, transition)
		fmt.Fprintf(d.logw, "cluster[%s]: peer %s -> %s (%d consecutive misses)\n",
			d.self, id, transition, misses)
	}
}
