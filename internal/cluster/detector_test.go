package cluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startPeer serves /v1/cluster/heartbeat, answering 200 while up is set and
// 503 otherwise — a node that exists but is draining or wedged.
func startPeer(t *testing.T) (addr string, up *atomic.Bool) {
	t.Helper()
	up = &atomic.Bool{}
	up.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, `{"node":"peer"}`)
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://"), up
}

func waitState(t *testing.T, d *detector, peer string, want PeerState, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if d.stateOf(peer) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("peer %s never reached %v (stuck at %v)", peer, want, d.stateOf(peer))
}

func TestDetectorLifecycle(t *testing.T) {
	addr, up := startPeer(t)
	d := newDetector("self", map[string]string{"p": addr},
		10*time.Millisecond, 10*time.Millisecond, 2, 50*time.Millisecond, nil, io.Discard)
	var rejoined atomic.Int32
	d.onAlive = func(peer string) { rejoined.Add(1) }
	d.start()
	defer d.close()

	// Healthy peer stays alive through several probe rounds.
	time.Sleep(60 * time.Millisecond)
	if got := d.stateOf("p"); got != StateAlive {
		t.Fatalf("healthy peer state = %v, want alive", got)
	}
	if !d.alive("p") || !d.alive("self") {
		t.Fatal("healthy peer and self must both be routable")
	}

	// Failing probes walk alive -> suspect -> down; suspect still routes.
	up.Store(false)
	waitState(t, d, "p", StateSuspect, time.Second)
	if !d.alive("p") {
		t.Fatal("suspect peer must still be routable (benefit of the doubt)")
	}
	waitState(t, d, "p", StateDown, time.Second)
	if d.alive("p") {
		t.Fatal("down peer must be excluded from routing")
	}

	// One successful probe restores alive and fires the rejoin signal.
	up.Store(true)
	waitState(t, d, "p", StateAlive, time.Second)
	if rejoined.Load() == 0 {
		t.Fatal("onAlive never fired for the rejoined peer")
	}
}

func TestDetectorUnknownPeerIsDown(t *testing.T) {
	d := newDetector("self", map[string]string{}, time.Second, time.Second, 3, time.Second, nil, io.Discard)
	if d.stateOf("ghost") != StateDown {
		t.Fatal("unknown member must read as down")
	}
	if d.alive("ghost") {
		t.Fatal("unknown member must not be routable")
	}
}
