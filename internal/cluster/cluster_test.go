package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/server"
)

// testNode is one in-process cluster member: engine, dedup table, HTTP
// server, and clustering layer, on a real listener.
type testNode struct {
	id    string
	addr  string
	eng   *engine.Engine
	cache *server.ResultCache
	dedup *server.Dedup
	node  *Node
	srv   *server.Server
	down  bool
}

func quickOnline(t testing.TB) func(string) (*core.Online, error) {
	return func(string) (*core.Online, error) {
		return core.NewOnline(core.OnlineConfig{
			Predictor:   core.DefaultConfig(5),
			TrainSize:   20,
			AuditWindow: 6,
		})
	}
}

// startTestCluster brings up n members with fast detector timings. The
// ingest hook mirrors predictd's WAL path: keyed samples pass the dedup
// check before reaching the engine, so exactly-once assertions hold.
func startTestCluster(t testing.TB, n, replication int) []*testNode {
	t.Helper()
	lns := make([]net.Listener, n)
	members := make([]Member, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		id := fmt.Sprintf("n%d", i)
		members[i] = Member{ID: id, Addr: ln.Addr().String()}
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		tn := &testNode{id: members[i].ID, addr: members[i].Addr}
		cache := server.NewResultCache()
		dedup := server.NewDedup()
		eng, err := engine.New(engine.Config{
			Shards:    1,
			NewStream: quickOnline(t),
			OnResult:  cache.Record,
		})
		if err != nil {
			t.Fatal(err)
		}
		node, err := New(Config{
			Self:           tn.id,
			Members:        members,
			Replication:    replication,
			HeartbeatEvery: 25 * time.Millisecond,
			SuspectAfter:   2,
			DownAfter:      100 * time.Millisecond,
			Engine:         eng,
			Cache:          cache,
			Dedup:          dedup,
			NewStream:      quickOnline(t),
			Registry:       obs.NewRegistry(),
			Logw:           io.Discard,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Engine:         eng,
			Cache:          cache,
			Cluster:        node,
			ClusterHandler: node.Handler(),
			Ingest: func(batch []server.KeyedSample) (int, int, error) {
				deduped := 0
				fresh := make([]engine.Sample, 0, len(batch))
				for _, ks := range batch {
					if ks.Source != "" && ks.Seq != 0 && !dedup.Apply(ks.ID, ks.Source, ks.Seq) {
						deduped++
						continue
					}
					fresh = append(fresh, ks.Sample)
				}
				if len(fresh) > 0 {
					if _, err := eng.IngestBatch(fresh); err != nil {
						return 0, deduped, err
					}
				}
				return len(fresh), deduped, nil
			},
			Applied: dedup.Applied,
		})
		if err != nil {
			t.Fatal(err)
		}
		node.SetDraining(srv.Draining)
		tn.eng, tn.cache, tn.dedup, tn.node, tn.srv = eng, cache, dedup, node, srv
		go srv.Serve(lns[i])
		node.Start()
		nodes[i] = tn
		t.Cleanup(func() {
			if !tn.down {
				tn.node.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				tn.srv.Shutdown(ctx)
				cancel()
			}
			tn.eng.Close()
		})
	}
	return nodes
}

// stop simulates a node death: drain flips (heartbeats 503) and the
// listener closes, so peers see misses and connection refusals.
func (tn *testNode) stop(t testing.TB) {
	t.Helper()
	tn.down = true
	tn.node.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	tn.srv.Shutdown(ctx)
}

func ingestKeyed(t testing.TB, addr, source, stream string, seqBase uint64, values []float64) *http.Response {
	t.Helper()
	type sample struct {
		Stream string  `json:"stream"`
		Value  float64 `json:"value"`
		Seq    uint64  `json:"seq"`
	}
	req := struct {
		Source  string   `json:"source"`
		Samples []sample `json:"samples"`
	}{Source: source}
	for i, v := range values {
		req.Samples = append(req.Samples, sample{Stream: stream, Value: v, Seq: seqBase + uint64(i)})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+addr+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("ingest at %s: %v", addr, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// streamOwnedBy finds a stream name whose rendezvous home is the given
// member — so tests can aim traffic at (or away from) a specific node.
func streamOwnedBy(t testing.TB, members []string, owner string, replica ...string) string {
	t.Helper()
search:
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("stream-%s-%d", owner, i)
		order := Owners(members, name)
		if order[0] != owner {
			continue
		}
		for j, want := range replica {
			if order[j+1] != want {
				continue search
			}
		}
		return name
	}
	t.Fatalf("no stream owned by %s with replicas %v found", owner, replica)
	return ""
}

func memberIDs(nodes []*testNode) []string {
	ids := make([]string, len(nodes))
	for i, tn := range nodes {
		ids[i] = tn.id
	}
	return ids
}

func waitFor(t testing.TB, within time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterForwardAndReplicate drives keyed ingest for a non-owned stream
// into one node and asserts the owner applied every sample exactly once and
// each follower converged to the same applied count via async replication.
func TestClusterForwardAndReplicate(t *testing.T) {
	nodes := startTestCluster(t, 3, 2)
	ids := memberIDs(nodes)
	byID := map[string]*testNode{}
	for _, tn := range nodes {
		byID[tn.id] = tn
	}

	// A stream owned by n1 with follower n2, ingested at n0: every sample
	// must forward, and n0 (outside the replica set) must hold nothing.
	stream := streamOwnedBy(t, ids, "n1", "n2")
	follower := "n2"
	const total = 40
	for i := 0; i < total; i += 10 {
		vals := make([]float64, 10)
		for j := range vals {
			vals[j] = float64(i + j)
		}
		resp := ingestKeyed(t, nodes[0].addr, "src-A", stream, uint64(i+1), vals)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest batch at %d: HTTP %d", i, resp.StatusCode)
		}
		if node := resp.Header.Get(server.NodeHeader); node != "n0" {
			t.Fatalf("NodeHeader = %q, want n0 (the node that accepted)", node)
		}
		if hint := resp.Header.Get(server.RouteHeader); hint != byID["n1"].addr {
			t.Fatalf("RouteHeader = %q, want owner addr %q", hint, byID["n1"].addr)
		}
	}

	if got, _ := byID["n1"].dedup.Applied(stream); got != total {
		t.Fatalf("owner applied %d, want %d", got, total)
	}
	if got, _ := byID["n0"].dedup.Applied(stream); got != 0 {
		t.Fatalf("accepting non-replica node applied %d, want 0", got)
	}
	waitFor(t, 3*time.Second, "replication to follower", func() bool {
		got, _ := byID[follower].dedup.Applied(stream)
		return got == total
	})

	// A duplicate of an already-acked batch dedups wherever it lands:
	// retried at the forwarding node and retried straight at the owner.
	ingestKeyed(t, nodes[0].addr, "src-A", stream, 1, []float64{0})
	ingestKeyed(t, byID["n1"].addr, "src-A", stream, 1, []float64{0})
	if got, _ := byID["n1"].dedup.Applied(stream); got != total {
		t.Fatalf("after duplicate retries owner applied %d, want %d", got, total)
	}
}

// TestClusterReadRoles exercises the three forecast serving roles: owner
// (fresh), replica (stale-flagged local view), and proxy (one hop).
func TestClusterReadRoles(t *testing.T) {
	nodes := startTestCluster(t, 3, 2)
	ids := memberIDs(nodes)
	byID := map[string]*testNode{}
	for _, tn := range nodes {
		byID[tn.id] = tn
	}
	stream := streamOwnedBy(t, ids, "n0", "n1")
	// n2 is neither owner nor follower for this stream.
	resp := ingestKeyed(t, byID["n0"].addr, "src-R", stream, 1, []float64{1, 2, 3})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("seed ingest: HTTP %d", resp.StatusCode)
	}
	waitFor(t, 3*time.Second, "replication to n1", func() bool {
		got, _ := byID["n1"].dedup.Applied(stream)
		return got == 3
	})

	get := func(addr string) *http.Response {
		r, err := http.Get("http://" + addr + "/v1/forecast/" + stream)
		if err != nil {
			t.Fatalf("forecast at %s: %v", addr, err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		return r
	}

	if r := get(byID["n0"].addr); r.StatusCode != http.StatusOK || r.Header.Get(server.StaleHeader) != "" {
		t.Fatalf("owner read: HTTP %d stale=%q, want 200 with no stale flag",
			r.StatusCode, r.Header.Get(server.StaleHeader))
	}
	if r := get(byID["n1"].addr); r.StatusCode != http.StatusOK || r.Header.Get(server.StaleHeader) != "true" {
		t.Fatalf("replica read: HTTP %d stale=%q, want 200 flagged stale",
			r.StatusCode, r.Header.Get(server.StaleHeader))
	}
	r := get(byID["n2"].addr)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("proxy read: HTTP %d, want 200", r.StatusCode)
	}
	if r.Header.Get(server.NodeHeader) != "n2" {
		t.Fatalf("proxy read served by %q, want n2 front", r.Header.Get(server.NodeHeader))
	}
	if r.Header.Get(server.RouteHeader) != byID["n0"].addr {
		t.Fatalf("proxy read RouteHeader = %q, want owner addr", r.Header.Get(server.RouteHeader))
	}
}

// TestClusterFailover kills a stream's owner and asserts the next member in
// rendezvous order takes over ingest and reads without losing samples.
func TestClusterFailover(t *testing.T) {
	nodes := startTestCluster(t, 3, 2)
	ids := memberIDs(nodes)
	byID := map[string]*testNode{}
	for _, tn := range nodes {
		byID[tn.id] = tn
	}
	stream := streamOwnedBy(t, ids, "n1", "n2")
	resp := ingestKeyed(t, byID["n0"].addr, "src-F", stream, 1, []float64{1, 2, 3, 4, 5})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pre-kill ingest: HTTP %d", resp.StatusCode)
	}
	waitFor(t, 3*time.Second, "replication to n2", func() bool {
		got, _ := byID["n2"].dedup.Applied(stream)
		return got == 5
	})

	byID["n1"].stop(t)
	waitFor(t, 5*time.Second, "n0 to confirm n1 down", func() bool {
		return byID["n0"].node.routeOwner(stream) == "n2"
	})

	// Ingest at n0 now forwards to the promoted owner n2.
	resp = ingestKeyed(t, byID["n0"].addr, "src-F", stream, 6, []float64{6, 7, 8})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-failover ingest: HTTP %d", resp.StatusCode)
	}
	if got, _ := byID["n2"].dedup.Applied(stream); got != 8 {
		t.Fatalf("promoted owner applied %d, want 8", got)
	}

	// Reads at the promoted owner serve fresh; at n0 they proxy to n2.
	r, err := http.Get("http://" + byID["n2"].addr + "/v1/forecast/" + stream)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("promoted owner read: HTTP %d, want 200", r.StatusCode)
	}
	if r.Header.Get(server.StaleHeader) != "" {
		t.Fatalf("promoted owner read flagged stale; promotion should serve fresh")
	}
}

// TestClusterHandoff verifies the warm-handoff pull: a node that lost its
// local state merges peers' dedup coverage and predictor state, so its
// applied counts match what the cluster acked and replay cannot double-apply.
func TestClusterHandoff(t *testing.T) {
	nodes := startTestCluster(t, 3, 2)
	ids := memberIDs(nodes)
	byID := map[string]*testNode{}
	for _, tn := range nodes {
		byID[tn.id] = tn
	}
	// Stream homed on n1 with follower n2; n1 will "restart" cold.
	stream := streamOwnedBy(t, ids, "n1", "n2")
	resp := ingestKeyed(t, byID["n1"].addr, "src-H", stream, 1, []float64{1, 2, 3, 4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("seed ingest: HTTP %d", resp.StatusCode)
	}
	waitFor(t, 3*time.Second, "replication to n2", func() bool {
		got, _ := byID["n2"].dedup.Applied(stream)
		return got == 4
	})

	// Simulate n1 restarting with empty state: fresh dedup + engine-level
	// stream removal is overkill in-process, so pull into a brand-new table
	// via a second Node sharing n1's identity but empty serving state.
	cache := server.NewResultCache()
	dedup := server.NewDedup()
	eng, err := engine.New(engine.Config{Shards: 1, NewStream: quickOnline(t), OnResult: cache.Record})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	members := make([]Member, len(nodes))
	for i, tn := range nodes {
		members[i] = Member{ID: tn.id, Addr: tn.addr}
	}
	fresh, err := New(Config{
		Self:        "n1",
		Members:     members,
		Replication: 2,
		Engine:      eng,
		Cache:       cache,
		Dedup:       dedup,
		NewStream:   quickOnline(t),
		Logw:        io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if got := fresh.PullHandoff(ctx); got == 0 {
		t.Fatal("PullHandoff restored nothing; want at least the seeded stream")
	}
	if got, _ := dedup.Applied(stream); got != 4 {
		t.Fatalf("handoff-merged applied = %d, want 4", got)
	}
	// Replaying the already-acked samples against the merged table dedups.
	for seq := uint64(1); seq <= 4; seq++ {
		if dedup.Apply(stream, "src-H", seq) {
			t.Fatalf("seq %d re-applied after handoff merge; exactly-once violated", seq)
		}
	}
	// The predictor shipped over: the engine serves the stream without a
	// cold start.
	if _, ok := eng.Stats(stream); !ok {
		t.Fatal("handoff did not install the stream's predictor")
	}
	if snap, ok := cache.Latest(stream); !ok || snap.LastTS == 0 && snap.LastValue == 0 {
		_ = snap // serving snapshot may legitimately be zero-valued early; presence is what matters
	}
}
