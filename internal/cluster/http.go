package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// StatusDoc is the GET /v1/cluster/status document: this node's view of
// the membership. Peers' verdicts come from the local failure detector, so
// two nodes' status documents can disagree during a transition — that is
// the nature of the beast, and why the soak polls every node.
type StatusDoc struct {
	Node        string                `json:"node"`
	Replication int                   `json:"replication"`
	Members     []MemberStatus        `json:"members"`
	Replicators map[string]ReplStatus `json:"replicators,omitempty"`
	Handoff     HandoffStatus         `json:"handoff"`
}

// MemberStatus is one member's row in the status document.
type MemberStatus struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	State string `json:"state"` // alive | suspect | down
	Self  bool   `json:"self,omitempty"`
}

// ReplStatus is one follower's replication telemetry.
type ReplStatus struct {
	Queued  int    `json:"queued"`
	Sent    uint64 `json:"sent_samples"`
	Dropped uint64 `json:"dropped_batches"`
}

// HandoffStatus counts warm-handoff traffic through this node.
type HandoffStatus struct {
	StreamsServed   uint64 `json:"streams_served"`
	StreamsReceived uint64 `json:"streams_received"`
}

// Status captures the node's current membership view.
func (n *Node) Status() StatusDoc {
	doc := StatusDoc{
		Node:        n.cfg.Self,
		Replication: n.cfg.Replication,
		Replicators: map[string]ReplStatus{},
		Handoff: HandoffStatus{
			StreamsServed:   n.handoffServed.Value(),
			StreamsReceived: n.handoffReceived.Value(),
		},
	}
	for _, id := range n.memberIDs {
		doc.Members = append(doc.Members, MemberStatus{
			ID:    id,
			Addr:  n.allAddrs[id],
			State: n.det.stateOf(id).String(),
			Self:  id == n.cfg.Self,
		})
	}
	for id, r := range n.repl {
		doc.Replicators[id] = ReplStatus{
			Queued:  len(r.ch),
			Sent:    r.sent.Value(),
			Dropped: r.drops.Value(),
		}
	}
	return doc
}

// Handler serves the intra-cluster API under /v1/cluster/: heartbeat
// probes, the status document, and warm-handoff pulls. Mounted by the
// server ahead of its generic /v1 routes so cluster traffic bypasses
// admission control — a shed heartbeat would read as a dead node.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if n.draining != nil && n.draining() {
			// Fail probes ahead of the listener closing so peers start the
			// suspect clock before connections start refusing.
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if n.cfg.BinaryAddr != "" {
			// Advertise the binary ingest listener so peers can forward
			// owner-routed batches over the wire protocol.
			fmt.Fprintf(w, "{\"node\":%q,\"binary\":%q}\n", n.cfg.Self, n.cfg.BinaryAddr)
		} else {
			fmt.Fprintf(w, "{\"node\":%q}\n", n.cfg.Self)
		}
	})
	mux.HandleFunc("/v1/cluster/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.Status())
	})
	mux.HandleFunc("/v1/cluster/handoff", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req handoffRequest
		if err := decodeJSON(r.Body, &req, 1<<20); err != nil || req.Node == "" {
			http.Error(w, "bad handoff request", http.StatusBadRequest)
			return
		}
		if _, ok := n.allAddrs[req.Node]; !ok {
			http.Error(w, "unknown member", http.StatusBadRequest)
			return
		}
		doc := n.handoffFor(req.Node)
		fmt.Fprintf(n.cfg.Logw, "cluster[%s]: served handoff of %d streams to %s\n",
			n.cfg.Self, len(doc.Streams), req.Node)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(doc)
	})
	return mux
}

// jsonBody encodes v for a request body.
func jsonBody(v any) (io.Reader, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return &buf, nil
}

// decodeJSON strictly decodes one JSON document of at most limit bytes.
func decodeJSON(r io.Reader, v any, limit int64) error {
	dec := json.NewDecoder(io.LimitReader(r, limit))
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}
