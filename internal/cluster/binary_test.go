package cluster

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/server"
	"github.com/acis-lab/larpredictor/internal/wire"
)

// startBinaryTestCluster is startTestCluster with a binary ingest listener
// per node: each member advertises its wire address via Config.BinaryAddr,
// so heartbeats teach peers to prefer the binary forward transport.
func startBinaryTestCluster(t testing.TB, n, replication int) ([]*testNode, map[string]*wire.Server) {
	t.Helper()
	lns := make([]net.Listener, n)
	blns := make([]net.Listener, n)
	members := make([]Member, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		bln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i], blns[i] = ln, bln
		members[i] = Member{ID: fmt.Sprintf("n%d", i), Addr: ln.Addr().String()}
	}
	nodes := make([]*testNode, n)
	wsrvs := map[string]*wire.Server{}
	for i := range nodes {
		tn := &testNode{id: members[i].ID, addr: members[i].Addr}
		cache := server.NewResultCache()
		dedup := server.NewDedup()
		eng, err := engine.New(engine.Config{
			Shards:    1,
			NewStream: quickOnline(t),
			OnResult:  cache.Record,
		})
		if err != nil {
			t.Fatal(err)
		}
		node, err := New(Config{
			Self:           tn.id,
			BinaryAddr:     blns[i].Addr().String(),
			Members:        members,
			Replication:    replication,
			HeartbeatEvery: 25 * time.Millisecond,
			SuspectAfter:   2,
			DownAfter:      100 * time.Millisecond,
			Engine:         eng,
			Cache:          cache,
			Dedup:          dedup,
			NewStream:      quickOnline(t),
			Registry:       obs.NewRegistry(),
			Logw:           io.Discard,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Engine:         eng,
			Cache:          cache,
			Cluster:        node,
			ClusterHandler: node.Handler(),
			Ingest: func(batch []server.KeyedSample) (int, int, error) {
				deduped := 0
				fresh := make([]engine.Sample, 0, len(batch))
				for _, ks := range batch {
					if ks.Source != "" && ks.Seq != 0 && !dedup.Apply(ks.ID, ks.Source, ks.Seq) {
						deduped++
						continue
					}
					fresh = append(fresh, ks.Sample)
				}
				if len(fresh) > 0 {
					if _, err := eng.IngestBatch(fresh); err != nil {
						return 0, deduped, err
					}
				}
				return len(fresh), deduped, nil
			},
			Applied: dedup.Applied,
		})
		if err != nil {
			t.Fatal(err)
		}
		node.SetDraining(srv.Draining)
		wsrv, err := wire.NewServer(wire.ServerConfig{
			Ingest:   srv.BinaryIngest,
			Draining: srv.Draining,
		})
		if err != nil {
			t.Fatal(err)
		}
		go wsrv.Serve(blns[i])
		wsrvs[tn.id] = wsrv
		tn.eng, tn.cache, tn.dedup, tn.node, tn.srv = eng, cache, dedup, node, srv
		go srv.Serve(lns[i])
		node.Start()
		nodes[i] = tn
		t.Cleanup(func() {
			wsrv.Close()
			if !tn.down {
				tn.node.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				tn.srv.Shutdown(ctx)
				cancel()
			}
			tn.eng.Close()
		})
	}
	return nodes, wsrvs
}

// TestClusterForwardPrefersBinary: once heartbeats have advertised the
// owner's wire listener, owner-forwards go over the binary transport — and
// when that listener dies, forwarding falls back to HTTP without losing a
// batch.
func TestClusterForwardPrefersBinary(t *testing.T) {
	nodes, wsrvs := startBinaryTestCluster(t, 3, 2)
	ids := memberIDs(nodes)
	byID := map[string]*testNode{}
	for _, tn := range nodes {
		byID[tn.id] = tn
	}

	// Heartbeats must deliver n1's binary advertisement to n0 first;
	// before that, forwards would use HTTP (also correct, but not what
	// this test is pinning down).
	waitFor(t, 3*time.Second, "binary address advertisement", func() bool {
		return byID["n0"].node.binaryAddrOf("n1") != ""
	})

	stream := streamOwnedBy(t, ids, "n1", "n2")
	const total = 30
	for i := 0; i < total; i += 10 {
		vals := make([]float64, 10)
		for j := range vals {
			vals[j] = float64(i + j)
		}
		resp := ingestKeyed(t, nodes[0].addr, "src-B", stream, uint64(i+1), vals)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest batch at %d: HTTP %d", i, resp.StatusCode)
		}
	}
	if got, _ := byID["n1"].dedup.Applied(stream); got != total {
		t.Fatalf("owner applied %d, want %d", got, total)
	}
	binSent := byID["n0"].node.binaryForwards.WithLabels("n1").Value()
	if binSent != total {
		t.Fatalf("binary forwards to n1 = %d samples, want %d (forwards must prefer the wire transport)", binSent, total)
	}

	// Duplicate of an acked batch still dedups through the binary path.
	ingestKeyed(t, nodes[0].addr, "src-B", stream, 1, []float64{0})
	if got, _ := byID["n1"].dedup.Applied(stream); got != total {
		t.Fatalf("after duplicate retry owner applied %d, want %d", got, total)
	}
	binSent = byID["n0"].node.binaryForwards.WithLabels("n1").Value()

	// Kill the owner's wire listener (HTTP stays up): the advertised
	// address now refuses, and forwarding must fall back to HTTP/JSON.
	wsrvs["n1"].Close()
	resp := ingestKeyed(t, nodes[0].addr, "src-B", stream, total+1, []float64{1, 2, 3})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest after binary listener death: HTTP %d", resp.StatusCode)
	}
	if got, _ := byID["n1"].dedup.Applied(stream); got != total+3 {
		t.Fatalf("owner applied %d after fallback, want %d", got, total+3)
	}
	if after := byID["n0"].node.binaryForwards.WithLabels("n1").Value(); after != binSent {
		t.Fatalf("binary forward counter moved %d -> %d with the listener down; fallback must use HTTP", binSent, after)
	}
}
