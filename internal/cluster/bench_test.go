package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"
)

// BenchmarkClusterForward measures the ingest ack latency cost of the
// forward hop: "local" writes a stream owned by the receiving node,
// "forwarded" writes one owned by its peer, so the ack waits on the extra
// intra-cluster round trip. The gap between the two is the price of
// writing to the wrong node — the number the X-Predictd-Route hint exists
// to amortize away.
func BenchmarkClusterForward(b *testing.B) {
	nodes := startTestCluster(b, 2, 1)
	ids := memberIDs(nodes)
	local := streamOwnedBy(b, ids, "n0")
	remote := streamOwnedBy(b, ids, "n1")

	post := func(b *testing.B, stream string, seq uint64) {
		body := fmt.Sprintf(
			`{"source":"bench","samples":[{"stream":%q,"value":1.5,"seq":%d}]}`,
			stream, seq)
		resp, err := http.Post("http://"+nodes[0].addr+"/v1/ingest",
			"application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
	}

	b.Run("local", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			post(b, local, uint64(i+1))
		}
	})
	b.Run("forwarded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			post(b, remote, uint64(i+1))
		}
	})
}
