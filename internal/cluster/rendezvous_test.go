package cluster

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

func TestOwnersIsDeterministicPermutation(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	for i := 0; i < 50; i++ {
		stream := fmt.Sprintf("stream-%d", i)
		got := Owners(members, stream)
		if len(got) != len(members) {
			t.Fatalf("Owners(%q) returned %d members, want %d", stream, len(got), len(members))
		}
		sorted := append([]string(nil), got...)
		sort.Strings(sorted)
		if !reflect.DeepEqual(sorted, members) {
			t.Fatalf("Owners(%q) = %v is not a permutation of %v", stream, got, members)
		}
		again := Owners(members, stream)
		if !reflect.DeepEqual(got, again) {
			t.Fatalf("Owners(%q) not deterministic: %v then %v", stream, got, again)
		}
	}
}

// Removing a member must not reorder the survivors — the property that makes
// failover minimal: only streams the dead node owned move, each to its next
// preference, and nothing else reshuffles.
func TestOwnersMinimalDisruption(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 100; i++ {
		stream := fmt.Sprintf("stream-%d", i)
		full := Owners(members, stream)
		for _, removed := range members {
			var survivors []string
			for _, m := range members {
				if m != removed {
					survivors = append(survivors, m)
				}
			}
			var fullMinus []string
			for _, m := range full {
				if m != removed {
					fullMinus = append(fullMinus, m)
				}
			}
			if got := Owners(survivors, stream); !reflect.DeepEqual(got, fullMinus) {
				t.Fatalf("stream %q: removing %q reordered survivors: %v, want %v",
					stream, removed, got, fullMinus)
			}
		}
	}
}

func TestOwnersBalance(t *testing.T) {
	// Both ID shapes matter: one-letter member IDs with near-identical
	// stream names are the case where unfinalized FNV-1a ranks stayed
	// correlated and skewed ownership to 13%/57%/30%.
	for _, members := range [][]string{
		{"a", "b", "c"},
		{"node-0", "node-1", "node-2"},
	} {
		counts := map[string]int{}
		const n = 3000
		for i := 0; i < n; i++ {
			counts[Owners(members, fmt.Sprintf("s-%d", i))[0]]++
		}
		for _, m := range members {
			frac := float64(counts[m]) / n
			if frac < 0.28 || frac > 0.39 {
				t.Fatalf("member %s owns %.0f%% of streams; want roughly a third (counts %v)",
					m, frac*100, counts)
			}
		}
	}
}

func TestReplicaSetClamps(t *testing.T) {
	members := []string{"a", "b"}
	if got := ReplicaSet(members, "s", 5); len(got) != 2 {
		t.Fatalf("ReplicaSet r=5 over 2 members = %v, want both members", got)
	}
	if got := ReplicaSet(members, "s", 1); len(got) != 1 {
		t.Fatalf("ReplicaSet r=1 = %v, want a single owner", got)
	}
	if got := ReplicaSet(members, "s", 0); got != nil {
		t.Fatalf("ReplicaSet r=0 = %v, want nil", got)
	}
}

func TestParseMembers(t *testing.T) {
	got, err := ParseMembers("a=127.0.0.1:1, b=127.0.0.1:2 ,c=127.0.0.1:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{ID: "a", Addr: "127.0.0.1:1"},
		{ID: "b", Addr: "127.0.0.1:2"},
		{ID: "c", Addr: "127.0.0.1:3"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseMembers = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "a", "a=,b=x", "a=1,a=2", "  ,  "} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) succeeded, want error", bad)
		}
	}
}
