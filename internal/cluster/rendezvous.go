// Package cluster is predictd's static-membership clustering layer: it
// spreads streams across a fixed set of nodes, keeps forecasts serving
// through a node loss, and hands ownership back warm when the node returns.
//
// Placement is rendezvous (highest-random-weight) hashing: every member
// scores hash(member, stream) and the descending score order is the
// stream's preference list. The first R members are its replica set (owner
// plus R−1 followers); the first *alive* member in the full order is its
// routing owner — so when the owner dies, the next node in rendezvous
// order promotes with no reshuffling of any other stream, and when it
// rejoins it resumes exactly the streams it had.
//
// Any node accepts ingest for any stream and batch-forwards non-owned
// samples to the routing owner over the client package, inheriting its
// retry/backoff/breaker discipline. The owner applies a batch locally and
// replicates it asynchronously to the rest of the replica set, carrying
// the original (source, seq) idempotency keys, so replication is
// exactly-once through the same dedup windows that make client retries
// safe. A heartbeat failure detector (suspect after K missed probe
// deadlines, down after a confirmation window) drives failover; a
// rejoining node pulls a warm handoff — durable per-stream predictor
// snapshots plus dedup state — from the peers that covered for it, then
// replays its own WAL on top, deduplicated against the handoff.
package cluster

import (
	"hash/fnv"
	"sort"
)

// rank scores one (member, stream) pair for rendezvous hashing: FNV-1a
// over member\x00stream, then a 64-bit avalanche finalizer. The finalizer
// is load-bearing, not decoration: raw FNV-1a ranks stay correlated across
// members when streams share long suffixes ("probe/1" vs "probe/2" with
// one-letter member IDs skewed ownership 13%/57%/30% over three nodes),
// because a byte-at-a-time multiply-xor never lets late bytes rewrite high
// bits. The fmix64 steps (xor-shift + odd-constant multiplies) avalanche
// every input bit across the whole word, so cross-member score comparisons
// decorrelate per stream.
func rank(member, stream string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write([]byte(stream))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owners returns the stream's full preference list over members: every
// member ID in descending rendezvous order. The first entry is the
// stream's home owner, the first r entries its replica set. Ties (which
// FNV-1a makes vanishingly rare) break by member ID so every node computes
// the identical order.
func Owners(members []string, stream string) []string {
	out := make([]string, len(members))
	copy(out, members)
	scores := make(map[string]uint64, len(members))
	for _, m := range out {
		scores[m] = rank(m, stream)
	}
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := scores[out[i]], scores[out[j]]
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// ReplicaSet returns the stream's first r members in rendezvous order —
// the home owner plus r−1 followers. r is clamped to the membership size;
// r < 1 returns nil.
func ReplicaSet(members []string, stream string, r int) []string {
	if r < 1 {
		return nil
	}
	order := Owners(members, stream)
	if r > len(order) {
		r = len(order)
	}
	return order[:r]
}
