package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/client"
	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/obs"
	"github.com/acis-lab/larpredictor/internal/server"
	"github.com/acis-lab/larpredictor/internal/wire"
)

// Member is one node of the static membership: an ID (stable across
// restarts — it anchors rendezvous placement) and the advertised address
// peers dial it on.
type Member struct {
	ID   string
	Addr string // "host:port"
}

// ParseMembers reads the -peers flag form "a=host:port,b=host:port,...".
func ParseMembers(s string) ([]Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("cluster: empty membership")
	}
	var out []Member
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad member %q (want id=host:port)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", id)
		}
		seen[id] = true
		out = append(out, Member{ID: id, Addr: addr})
	}
	if len(out) == 0 {
		return nil, errors.New("cluster: empty membership")
	}
	return out, nil
}

// Config shapes a Node. Engine, Cache, Dedup, NewStream, Self, and Members
// are required; every duration and count has a serving-safe default.
type Config struct {
	// Self is this node's member ID; Members must contain it (that entry's
	// Addr is the address this node advertises to peers).
	Self    string
	Members []Member
	// BinaryAddr, when set, is the binary ingest listener address this node
	// advertises in heartbeat responses. Peers that learn it forward
	// owner-routed batches over the wire protocol instead of HTTP/JSON,
	// falling back to HTTP whenever the binary transport fails.
	BinaryAddr string
	// Replication is the number of copies of each stream (owner plus
	// Replication−1 followers), clamped to the membership size. Default 2.
	Replication int

	// HeartbeatEvery is the probe interval (default 500ms); ProbeTimeout
	// bounds each probe (default HeartbeatEvery). SuspectAfter consecutive
	// missed probes mark a peer suspect (default 3); a peer that stays
	// suspect for DownAfter is confirmed down (default 2s).
	HeartbeatEvery time.Duration
	ProbeTimeout   time.Duration
	SuspectAfter   int
	DownAfter      time.Duration

	// ReplicaQueue bounds each peer's pending replication queue in batches
	// (default 4096). A full queue drops the oldest batch — the follower
	// heals the gap at its next warm handoff.
	ReplicaQueue int
	// ForwardAttempts bounds the synchronous forward retry loop
	// (default 4; the external client retries above us).
	ForwardAttempts int

	// Engine, Cache, and Dedup are the node's serving state; NewStream
	// builds a predictor shell for handoff restores.
	Engine    *engine.Engine
	Cache     *server.ResultCache
	Dedup     *server.Dedup
	NewStream func(id string) (*core.Online, error)
	// History, when set, ships each stream's forecast-history rings in warm
	// handoffs, so a failover replica (and a rejoining node) serves range
	// queries without a gap instead of rebuilding history from zero.
	History *server.HistoryStore

	// Registry instruments the node; nil leaves it uninstrumented.
	Registry *obs.Registry
	// Logw receives one line per membership event; nil discards.
	Logw io.Writer
}

// Node is one predictd's clustering layer. Construct with New, wire its
// Handler and server hooks, then Start the detector and replicators.
type Node struct {
	cfg       Config
	self      Member
	memberIDs []string          // every member ID, sorted (rendezvous input)
	addrs     map[string]string // peer ID -> addr (self excluded)
	allAddrs  map[string]string // every member ID -> addr

	det  *detector
	fwd  map[string]*client.Client // synchronous forward path, per peer
	repl map[string]*replicator    // async replication, per peer

	// bconns caches one wire connection per peer that advertises a binary
	// ingest address; entries drop on any transport error and redial on the
	// next forward.
	bmu    sync.Mutex
	bconns map[string]*wire.Conn

	proxyc   *http.Client
	handoffc *http.Client

	// draining, when set, reports the server's drain state so heartbeats
	// answer 503 and peers fail over before the listener closes. Set it
	// before Start.
	draining func() bool

	forwards        *obs.CounterVec
	forwardFails    *obs.CounterVec
	binaryForwards  *obs.CounterVec
	handoffServed   *obs.Counter
	handoffReceived *obs.Counter

	started bool
}

// New validates cfg and builds the node (no goroutines yet).
func New(cfg Config) (*Node, error) {
	if cfg.Engine == nil || cfg.Cache == nil || cfg.Dedup == nil || cfg.NewStream == nil {
		return nil, errors.New("cluster: Engine, Cache, Dedup, and NewStream are required")
	}
	if len(cfg.Members) < 2 {
		return nil, errors.New("cluster: need at least 2 members")
	}
	var self Member
	found := false
	for _, m := range cfg.Members {
		if m.ID == cfg.Self {
			self, found = m, true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q not in membership", cfg.Self)
	}
	if cfg.Replication == 0 {
		cfg.Replication = 2
	}
	if cfg.Replication < 1 {
		return nil, fmt.Errorf("cluster: replication %d < 1", cfg.Replication)
	}
	if cfg.Replication > len(cfg.Members) {
		cfg.Replication = len(cfg.Members)
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.HeartbeatEvery
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2 * time.Second
	}
	if cfg.ReplicaQueue <= 0 {
		cfg.ReplicaQueue = 4096
	}
	if cfg.ForwardAttempts <= 0 {
		cfg.ForwardAttempts = 4
	}
	if cfg.Logw == nil {
		cfg.Logw = io.Discard
	}

	n := &Node{
		cfg:      cfg,
		self:     self,
		addrs:    map[string]string{},
		allAddrs: map[string]string{},
		fwd:      map[string]*client.Client{},
		repl:     map[string]*replicator{},
		bconns:   map[string]*wire.Conn{},
		proxyc:   &http.Client{Timeout: 2 * time.Second},
		handoffc: &http.Client{Timeout: 30 * time.Second},
	}
	for _, m := range cfg.Members {
		n.memberIDs = append(n.memberIDs, m.ID)
		n.allAddrs[m.ID] = m.Addr
		if m.ID != cfg.Self {
			n.addrs[m.ID] = m.Addr
		}
	}
	sort.Strings(n.memberIDs)

	var nodeState *obs.GaugeVec
	var lag *obs.GaugeVec
	var replicated, drops *obs.CounterVec
	if reg := cfg.Registry; reg != nil {
		n.forwards = reg.Counter("predictd_cluster_forwards_total",
			"Samples forwarded to their owning node, by peer.", "peer")
		n.forwardFails = reg.Counter("predictd_cluster_forward_failures_total",
			"Forwarded sub-batches that exhausted their retries, by peer.", "peer")
		n.binaryForwards = reg.Counter("predictd_cluster_binary_forwards_total",
			"Samples forwarded to their owning node over the binary wire transport, by peer.", "peer")
		nodeState = reg.Gauge("predictd_cluster_node_state",
			"Failure-detector verdict per member: 0 alive, 1 suspect, 2 down.", "node")
		lag = reg.Gauge("predictd_cluster_replication_lag",
			"Replication batches queued per follower.", "peer")
		replicated = reg.Counter("predictd_cluster_replicated_samples_total",
			"Samples replicated to followers, by peer.", "peer")
		drops = reg.Counter("predictd_cluster_replication_drops_total",
			"Replication batches dropped on queue overflow or terminal send failure, by peer.", "peer")
		n.handoffServed = reg.Counter1("predictd_cluster_handoff_streams_served_total",
			"Stream states shipped to rejoining peers.")
		n.handoffReceived = reg.Counter1("predictd_cluster_handoff_streams_received_total",
			"Stream states installed from peers at warm handoff.")
	}

	n.det = newDetector(cfg.Self, n.addrs, cfg.HeartbeatEvery, cfg.ProbeTimeout,
		cfg.SuspectAfter, cfg.DownAfter, nodeState, cfg.Logw)
	n.det.onAlive = func(peer string) { /* routing recomputes lazily; nothing to do */ }

	for id, addr := range n.addrs {
		fc, err := client.New(client.Config{
			BaseURL:          "http://" + addr,
			RequestTimeout:   2 * time.Second,
			MaxAttempts:      cfg.ForwardAttempts,
			BaseBackoff:      20 * time.Millisecond,
			MaxBackoff:       500 * time.Millisecond,
			BreakerThreshold: 5,
			BreakerCooldown:  cfg.HeartbeatEvery,
			Headers:          map[string]string{server.ClusterHeader: server.ClusterForward},
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: forward client for %s: %w", id, err)
		}
		n.fwd[id] = fc
		rc, err := client.New(client.Config{
			BaseURL:          "http://" + addr,
			RequestTimeout:   2 * time.Second,
			MaxAttempts:      -1, // the replicator owns the batch until it lands
			BaseBackoff:      20 * time.Millisecond,
			MaxBackoff:       time.Second,
			BreakerThreshold: -1,
			Headers:          map[string]string{server.ClusterHeader: server.ClusterReplicate},
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: replication client for %s: %w", id, err)
		}
		var lagG *obs.Gauge
		var repC, dropC *obs.Counter
		if lag != nil {
			lagG = lag.WithLabels(id)
			repC = replicated.WithLabels(id)
			dropC = drops.WithLabels(id)
		}
		n.repl[id] = newReplicator(id, rc, cfg.ReplicaQueue, lagG, repC, dropC, cfg.Logw)
	}
	return n, nil
}

// SetDraining wires the server's drain state into heartbeat responses;
// call before Start.
func (n *Node) SetDraining(f func() bool) { n.draining = f }

// Start launches the failure detector's probers and the per-peer
// replication workers.
func (n *Node) Start() {
	if n.started {
		return
	}
	n.started = true
	n.det.start()
	for _, r := range n.repl {
		r.start()
	}
}

// Close stops the probers and replicators. Queued replication batches are
// dropped — every acked sample is already durable locally, and followers
// heal through handoff.
func (n *Node) Close() {
	if !n.started {
		return
	}
	n.started = false
	n.det.close()
	for _, r := range n.repl {
		r.close()
	}
	n.closeBinaryConns()
}

// ---- placement ----

// routeOwner is the stream's current serving owner: the first member in
// rendezvous order the detector has not confirmed down. When the home
// owner dies, this is exactly "the next node in rendezvous order
// promotes"; when every member looks down (a partitioned node's view),
// the node serves locally rather than going dark.
func (n *Node) routeOwner(stream string) string {
	for _, id := range Owners(n.memberIDs, stream) {
		if n.det.alive(id) {
			return id
		}
	}
	return n.cfg.Self
}

// replicaSet is the stream's owner-plus-followers over the full static
// membership — deliberately not filtered by liveness, so batches for a
// down follower queue up and drain when it rejoins.
func (n *Node) replicaSet(stream string) []string {
	return ReplicaSet(n.memberIDs, stream, n.cfg.Replication)
}

// NodeID implements server.Cluster.
func (n *Node) NodeID() string { return n.cfg.Self }

// PeerAddr implements server.Cluster.
func (n *Node) PeerAddr(peer string) string { return n.allAddrs[peer] }

// Route implements server.Cluster: samples whose routing owner is this
// node stay local; the rest group by owner for forwarding.
func (n *Node) Route(batch []server.KeyedSample) (local []server.KeyedSample, forward map[string][]server.KeyedSample) {
	for _, ks := range batch {
		owner := n.routeOwner(ks.ID)
		if owner == n.cfg.Self {
			local = append(local, ks)
			continue
		}
		if forward == nil {
			forward = map[string][]server.KeyedSample{}
		}
		forward[owner] = append(forward[owner], ks)
	}
	return local, forward
}

// Forward implements server.Cluster: ship a sub-batch to its owner, one
// request per distinct source so each request's idempotency keys stay
// coherent. When the owner's heartbeats advertise a binary ingest address
// the batch goes over the wire protocol on a cached persistent connection;
// any binary failure falls back to the retrying HTTP client for this call
// and redials on the next (the keys make the double-path retry safe).
func (n *Node) Forward(ctx context.Context, peer string, batch []server.KeyedSample) (accepted, deduped int, err error) {
	fc, ok := n.fwd[peer]
	if !ok {
		return 0, 0, fmt.Errorf("cluster: forward to unknown peer %q", peer)
	}
	if addr := n.binaryAddrOf(peer); addr != "" {
		if acc, ded, berr := n.forwardBinary(ctx, peer, addr, batch); berr == nil {
			return acc, ded, nil
		} else {
			fmt.Fprintf(n.cfg.Logw, "cluster[%s]: binary forward to %s: %v (falling back to HTTP)\n",
				n.cfg.Self, peer, berr)
		}
	}
	for _, group := range groupBySource(batch) {
		resp, ferr := fc.IngestFrom(ctx, group.source, group.samples)
		if ferr != nil {
			if n.forwardFails != nil {
				n.forwardFails.WithLabels(peer).Inc()
			}
			return accepted, deduped, fmt.Errorf("cluster: forward to %s: %w", peer, ferr)
		}
		accepted += resp.Accepted
		deduped += resp.Deduped
		if n.forwards != nil {
			n.forwards.WithLabels(peer).Add(uint64(len(group.samples)))
		}
	}
	return accepted, deduped, nil
}

// Replicate implements server.Cluster: queue locally applied samples for
// every follower in the stream's replica set. Non-blocking; a follower
// that cannot keep up (or is down) accumulates queue, visible as
// predictd_cluster_replication_lag.
func (n *Node) Replicate(batch []server.KeyedSample) {
	type key struct{ peer, source string }
	groups := map[key][]client.Sample{}
	var order []key
	for _, ks := range batch {
		for _, peer := range n.replicaSet(ks.ID) {
			if peer == n.cfg.Self {
				continue
			}
			k := key{peer, ks.Source}
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], client.Sample{
				Stream: ks.ID, TS: ks.TS, Value: ks.Value, Seq: ks.Seq,
			})
		}
	}
	for _, k := range order {
		if r, ok := n.repl[k.peer]; ok {
			r.enqueue(repBatch{source: k.source, samples: groups[k]})
		}
	}
}

// ReadRole implements server.Cluster.
func (n *Node) ReadRole(stream string) (server.ReadRole, string) {
	owner := n.routeOwner(stream)
	if owner == n.cfg.Self {
		return server.ReadOwner, ""
	}
	for _, id := range n.replicaSet(stream) {
		if id == n.cfg.Self {
			return server.ReadReplica, owner
		}
	}
	return server.ReadProxy, owner
}

// ProxyForecast implements server.Cluster: one marked GET at the owner, no
// retries — the caller decides the fallback.
func (n *Node) ProxyForecast(ctx context.Context, peer, stream string) ([]byte, error) {
	addr, ok := n.allAddrs[peer]
	if !ok {
		return nil, fmt.Errorf("cluster: proxy to unknown peer %q", peer)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/v1/forecast/"+stream, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(server.ClusterHeader, server.ClusterRead)
	resp, err := n.proxyc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: proxy read %s at %s: HTTP %d", stream, peer, resp.StatusCode)
	}
	return body, nil
}

// sourceGroup is one source's run of a batch, in arrival order.
type sourceGroup struct {
	source  string
	samples []client.Sample
}

func groupBySource(batch []server.KeyedSample) []sourceGroup {
	var out []sourceGroup
	idx := map[string]int{}
	for _, ks := range batch {
		i, ok := idx[ks.Source]
		if !ok {
			i = len(out)
			idx[ks.Source] = i
			out = append(out, sourceGroup{source: ks.Source})
		}
		out[i].samples = append(out[i].samples, client.Sample{
			Stream: ks.ID, TS: ks.TS, Value: ks.Value, Seq: ks.Seq,
		})
	}
	return out
}

// ---- warm handoff ----

// handoffStream is one stream's shipped state: the core codec's framed
// predictor bytes, the serving snapshot, and the dedup coverage proving
// which keyed samples it reflects.
type handoffStream struct {
	Online  []byte                         `json:"online"`
	Cache   server.Snapshot                `json:"cache"`
	Applied uint64                         `json:"applied"`
	Windows map[string]server.SourceWindow `json:"windows,omitempty"`
	// History carries the stream's forecast-history rings (raw + tiers);
	// zero Seq means the sender had none (or runs without a history store).
	History server.HistoryState `json:"history,omitempty"`
}

// handoffDoc is the POST /v1/cluster/handoff response.
type handoffDoc struct {
	Node    string                   `json:"node"`
	Streams map[string]handoffStream `json:"streams"`
}

// handoffRequest is the POST /v1/cluster/handoff body.
type handoffRequest struct {
	Node string `json:"node"`
}

// handoffFor captures every local stream the requester owns or follows.
// The engine is drained first so predictor state reflects every sample the
// dedup table has admitted; per-stream capture runs under the shard lock,
// exactly like the durable snapshot path.
func (n *Node) handoffFor(requester string) handoffDoc {
	doc := handoffDoc{Node: n.cfg.Self, Streams: map[string]handoffStream{}}
	n.cfg.Engine.Drain()
	var ids []string
	n.cfg.Engine.Each(func(id string, _ engine.StreamStats) { ids = append(ids, id) })
	for _, id := range ids {
		wanted := false
		for _, m := range n.replicaSet(id) {
			if m == requester {
				wanted = true
				break
			}
		}
		if !wanted {
			continue
		}
		var hs handoffStream
		captured := false
		n.cfg.Engine.Do(id, func(o *core.Online) {
			var buf bytes.Buffer
			if err := o.SaveState(&buf); err != nil {
				fmt.Fprintf(n.cfg.Logw, "cluster[%s]: handoff capture %s: %v\n", n.cfg.Self, id, err)
				return
			}
			hs.Online = buf.Bytes()
			hs.Cache, _ = n.cfg.Cache.Latest(id)
			hs.Windows, hs.Applied, _ = n.cfg.Dedup.StreamState(id)
			if n.cfg.History != nil {
				hs.History, _ = n.cfg.History.State(id)
			}
			captured = true
		})
		if captured {
			doc.Streams[id] = hs
			if n.handoffServed != nil {
				n.handoffServed.Inc()
			}
		}
	}
	return doc
}

// PullHandoff asks every peer for the streams this node owns or follows
// and installs the results: per stream, the response with the highest
// applied count supplies the predictor and serving snapshot (when it is
// ahead of local state), and the dedup windows of every response merge
// into the local table. Callers run it after restoring their own snapshot
// and before replaying their WAL, so replay applies exactly the samples no
// copy has seen. Peer failures are logged and skipped — at cold bootstrap
// nobody answers and that is fine.
func (n *Node) PullHandoff(ctx context.Context) (restored int) {
	type remote struct {
		hs   handoffStream
		from string
	}
	best := map[string]remote{}
	// localApplied is each stream's applied count before any merge — the
	// comparison base for "is the remote predictor ahead of mine". Captured
	// lazily, because MergeStream rewrites the count as coverage unions in.
	localApplied := map[string]uint64{}
	for id, addr := range n.addrs {
		doc, err := n.requestHandoff(ctx, addr)
		if err != nil {
			fmt.Fprintf(n.cfg.Logw, "cluster[%s]: handoff pull from %s: %v\n", n.cfg.Self, id, err)
			continue
		}
		for stream, hs := range doc.Streams {
			if _, seen := localApplied[stream]; !seen {
				la, _ := n.cfg.Dedup.Applied(stream)
				localApplied[stream] = la
			}
			n.cfg.Dedup.MergeStream(stream, hs.Windows)
			cur, ok := best[stream]
			if !ok || hs.Applied > cur.hs.Applied ||
				(hs.Applied == cur.hs.Applied && hs.Cache.LastTS > cur.hs.Cache.LastTS) {
				best[stream] = remote{hs: hs, from: id}
			}
		}
	}
	for stream, r := range best {
		// Install the remote predictor only when it has provably applied
		// more than the local copy had; ties (including the all-unkeyed
		// case, 0 == 0) break on serving-snapshot freshness. Otherwise the
		// local snapshot + WAL replay is at least as complete.
		if r.hs.Applied < localApplied[stream] {
			continue
		}
		if r.hs.Applied == localApplied[stream] {
			if local, ok := n.cfg.Cache.Latest(stream); ok && local.LastTS >= r.hs.Cache.LastTS {
				continue
			}
		}
		online, err := n.cfg.NewStream(stream)
		if err != nil {
			fmt.Fprintf(n.cfg.Logw, "cluster[%s]: handoff restore %s: %v\n", n.cfg.Self, stream, err)
			continue
		}
		if err := online.RestoreState(bytes.NewReader(r.hs.Online)); err != nil {
			fmt.Fprintf(n.cfg.Logw, "cluster[%s]: handoff restore %s from %s: %v\n", n.cfg.Self, stream, r.from, err)
			continue
		}
		if err := n.cfg.Engine.Replace(stream, online); err != nil {
			fmt.Fprintf(n.cfg.Logw, "cluster[%s]: handoff install %s: %v\n", n.cfg.Self, stream, err)
			continue
		}
		n.cfg.Cache.Restore(stream, r.hs.Cache)
		if n.cfg.History != nil && r.hs.History.Seq > n.cfg.History.Seq(stream) {
			// Take the peer's history only when it is ahead: the winner was
			// picked on applied count, but a local ring rebuilt by WAL replay
			// could still be longer for unkeyed traffic.
			n.cfg.History.Restore(stream, r.hs.History)
		}
		restored++
		if n.handoffReceived != nil {
			n.handoffReceived.Inc()
		}
	}
	return restored
}

func (n *Node) requestHandoff(ctx context.Context, addr string) (*handoffDoc, error) {
	body, err := jsonBody(handoffRequest{Node: n.cfg.Self})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+addr+"/v1/cluster/handoff", body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.handoffc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, raw)
	}
	var doc handoffDoc
	if err := decodeJSON(resp.Body, &doc, 256<<20); err != nil {
		return nil, err
	}
	return &doc, nil
}
