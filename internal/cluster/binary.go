package cluster

import (
	"context"
	"fmt"
	"net"

	"github.com/acis-lab/larpredictor/internal/server"
	"github.com/acis-lab/larpredictor/internal/wire"
)

// The binary forward path: peers advertise their wire-protocol listener in
// heartbeat responses, the detector records it, and Forward prefers one
// cached persistent connection per peer over the per-request HTTP client.
// Everything here is best-effort — any failure drops the cached connection
// and the caller falls back to HTTP, so a peer without the listener (or a
// mid-upgrade cluster) just runs the old path.

// binaryAddrOf resolves the advertised binary address for peer, or "" when
// the peer has not advertised one. An advertised address with an
// unspecified host (":8200", "[::]:8200") is completed with the peer's HTTP
// host, since the advertiser only knows its own bind address.
func (n *Node) binaryAddrOf(peer string) string {
	adv := n.det.binaryAddr(peer)
	if adv == "" {
		return ""
	}
	host, port, err := net.SplitHostPort(adv)
	if err != nil {
		return ""
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		httpHost, _, herr := net.SplitHostPort(n.allAddrs[peer])
		if herr != nil {
			return ""
		}
		return net.JoinHostPort(httpHost, port)
	}
	return adv
}

// binaryConn returns the cached wire connection for peer, dialing if needed.
func (n *Node) binaryConn(ctx context.Context, peer, addr string) (*wire.Conn, error) {
	n.bmu.Lock()
	if c := n.bconns[peer]; c != nil {
		select {
		case <-c.Dead():
			delete(n.bconns, peer)
		default:
			n.bmu.Unlock()
			return c, nil
		}
	}
	n.bmu.Unlock()
	// Dial outside the lock; a concurrent forward may race to a second
	// connection, and the loser's is adopted or closed below.
	c, err := wire.Dial(ctx, addr, wire.ConnConfig{Window: 8})
	if err != nil {
		return nil, err
	}
	n.bmu.Lock()
	if cur := n.bconns[peer]; cur != nil {
		n.bmu.Unlock()
		c.Close()
		return cur, nil
	}
	n.bconns[peer] = c
	n.bmu.Unlock()
	return c, nil
}

func (n *Node) dropBinaryConn(peer string, c *wire.Conn) {
	n.bmu.Lock()
	if n.bconns[peer] == c {
		delete(n.bconns, peer)
	}
	n.bmu.Unlock()
	c.Close()
}

// closeBinaryConns tears down every cached forward connection (Node.Close).
func (n *Node) closeBinaryConns() {
	n.bmu.Lock()
	conns := n.bconns
	n.bconns = map[string]*wire.Conn{}
	n.bmu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// forwardBinary ships the batch to peer over the wire protocol, one framed
// batch per distinct source. A non-OK ack is an error here: the HTTP
// fallback owns retry discipline (backoff, Retry-After, breaker), and the
// idempotency keys dedup anything the binary attempt landed.
func (n *Node) forwardBinary(ctx context.Context, peer, addr string, batch []server.KeyedSample) (accepted, deduped int, err error) {
	conn, err := n.binaryConn(ctx, peer, addr)
	if err != nil {
		return 0, 0, err
	}
	for _, group := range groupBySource(batch) {
		samples := make([]wire.Sample, len(group.samples))
		for i, s := range group.samples {
			samples[i] = wire.Sample{Stream: s.Stream, TS: s.TS, Value: s.Value, Seq: s.Seq}
		}
		ack, ierr := conn.Ingest(ctx, group.source, samples)
		if ierr != nil {
			n.dropBinaryConn(peer, conn)
			return accepted, deduped, ierr
		}
		if ack.Status != wire.StatusOK {
			return accepted, deduped, fmt.Errorf("peer acked %s: %s", ack.Status, ack.Msg)
		}
		accepted += ack.Accepted
		deduped += ack.Deduped
		if n.binaryForwards != nil {
			n.binaryForwards.WithLabels(peer).Add(uint64(len(group.samples)))
		}
	}
	return accepted, deduped, nil
}
