package pca

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randomRows(rng *rand.Rand, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * float64(1+j)
		}
	}
	return rows
}

func TestPowerBackendMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := randomRows(rng, 200, 6)

	jac, err := FitBackend(rows, FixedComponents(2), JacobiBackend)
	if err != nil {
		t.Fatal(err)
	}
	pow, err := FitBackend(rows, FixedComponents(2), PowerIterationBackend)
	if err != nil {
		t.Fatal(err)
	}
	if pow.Components() != 2 {
		t.Fatalf("power kept %d", pow.Components())
	}
	// Same leading eigenvalues.
	je, pe := jac.Eigenvalues(), pow.Eigenvalues()
	for i := 0; i < 2; i++ {
		if math.Abs(je[i]-pe[i]) > 1e-6*(1+je[i]) {
			t.Errorf("eigenvalue %d: jacobi %g power %g", i, je[i], pe[i])
		}
	}
	// Same projections up to sign (the sign convention should make them
	// exactly equal, but allow per-component flips for robustness).
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, 6)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		a, err := jac.Transform(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pow.Transform(q)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 2; c++ {
			if math.Abs(a[c]-b[c]) > 1e-5*(1+math.Abs(a[c])) &&
				math.Abs(a[c]+b[c]) > 1e-5*(1+math.Abs(a[c])) {
				t.Fatalf("projection mismatch: %v vs %v", a, b)
			}
		}
	}
	// Explained variance agrees.
	if math.Abs(jac.ExplainedVariance()-pow.ExplainedVariance()) > 1e-6 {
		t.Errorf("explained variance: jacobi %g power %g",
			jac.ExplainedVariance(), pow.ExplainedVariance())
	}
}

func TestPowerBackendRejectsMinVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := randomRows(rng, 50, 4)
	if _, err := FitBackend(rows, MinVariance(0.9), PowerIterationBackend); !errors.Is(err, ErrBadInput) {
		t.Errorf("err = %v, want ErrBadInput", err)
	}
}

func TestPowerBackendZeroVariance(t *testing.T) {
	rows := [][]float64{{3, 3}, {3, 3}, {3, 3}}
	p, err := FitBackend(rows, FixedComponents(1), PowerIterationBackend)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := p.Transform([]float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if proj[0] != 0 {
		t.Errorf("degenerate projection = %v", proj)
	}
	if p.ExplainedVariance() != 1 {
		t.Errorf("degenerate explained variance = %g", p.ExplainedVariance())
	}
}
