package pca

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// correlatedRows builds rows whose variance is concentrated along a known
// direction: row = t·dir + small noise.
func correlatedRows(rng *rand.Rand, n, d int, dir []float64) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		t := rng.NormFloat64() * 10
		row := make([]float64, d)
		for j := range row {
			row[j] = t*dir[j] + 0.01*rng.NormFloat64()
		}
		rows[i] = row
	}
	return rows
}

func TestFitRecoversDominantDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dir := []float64{3.0 / 5, 4.0 / 5} // unit vector
	rows := correlatedRows(rng, 200, 2, dir)
	p, err := Fit(rows, FixedComponents(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Components() != 1 {
		t.Fatalf("kept %d components", p.Components())
	}
	// First eigenvector ≈ ±dir. The sign convention makes the largest
	// component positive, so it should be +dir.
	v0, err := p.Transform([]float64{dir[0], dir[1]})
	if err != nil {
		t.Fatal(err)
	}
	// Projection of a unit step along dir onto the first component must be
	// ±1 relative to the mean; check magnitude via two points.
	a, _ := p.Transform([]float64{0, 0})
	if !almostEqual(math.Abs(v0[0]-a[0]), 1, 0.01) {
		t.Errorf("unit step along dominant direction projects to %g, want ±1", v0[0]-a[0])
	}
	if p.ExplainedVariance() < 0.999 {
		t.Errorf("explained variance = %g, want ~1", p.ExplainedVariance())
	}
}

func TestMinVarianceSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Two strong directions, one weak.
	rows := make([][]float64, 300)
	for i := range rows {
		a, b, c := rng.NormFloat64()*10, rng.NormFloat64()*5, rng.NormFloat64()*0.01
		rows[i] = []float64{a, b, c}
	}
	p, err := Fit(rows, MinVariance(0.99))
	if err != nil {
		t.Fatal(err)
	}
	if p.Components() != 2 {
		t.Errorf("kept %d components, want 2 for 99%% variance", p.Components())
	}
	pAll, err := Fit(rows, MinVariance(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if pAll.Components() != 3 {
		t.Errorf("kept %d components, want 3 for 100%% variance", pAll.Components())
	}
}

func TestMinVarianceBadFraction(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	for _, f := range []float64{0, -1, 1.5} {
		if _, err := Fit(rows, MinVariance(f)); !errors.Is(err, ErrBadInput) {
			t.Errorf("fraction %g: err = %v, want ErrBadInput", f, err)
		}
	}
}

func TestFixedComponentsClamped(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 7}}
	p, err := Fit(rows, FixedComponents(10))
	if err != nil {
		t.Fatal(err)
	}
	if p.Components() != 2 {
		t.Errorf("kept %d, want clamped to 2", p.Components())
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([][]float64{{1, 2}}, FixedComponents(1)); !errors.Is(err, ErrBadInput) {
		t.Error("accepted single row")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, FixedComponents(1)); err == nil {
		t.Error("accepted ragged rows")
	}
	if _, err := Fit(nil, FixedComponents(1)); err == nil {
		t.Error("accepted nil rows")
	}
}

func TestTransformErrors(t *testing.T) {
	var p PCA
	if _, err := p.Transform([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted Transform did not error")
	}
	fittedP, err := Fit([][]float64{{1, 2}, {2, 1}, {0, 0}}, FixedComponents(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fittedP.Transform([]float64{1}); !errors.Is(err, ErrBadInput) {
		t.Error("wrong-dimension Transform did not error")
	}
	if _, err := fittedP.InverseTransform([]float64{1, 2, 3}); !errors.Is(err, ErrBadInput) {
		t.Error("wrong-dimension InverseTransform did not error")
	}
}

func TestTransformAll(t *testing.T) {
	rows := [][]float64{{1, 0}, {0, 1}, {1, 1}, {0, 0}}
	p, err := Fit(rows, FixedComponents(2))
	if err != nil {
		t.Fatal(err)
	}
	proj, err := p.TransformAll(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != 4 || len(proj[0]) != 2 {
		t.Fatalf("projected shape %dx%d", len(proj), len(proj[0]))
	}
	if _, err := p.TransformAll([][]float64{{1}}); err == nil {
		t.Error("TransformAll accepted bad row")
	}
}

func TestFullRankRoundTrip(t *testing.T) {
	// Keeping all components makes Transform/InverseTransform lossless.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(6)
		n := d + 2 + rng.Intn(20)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64() * 10
			}
		}
		p, err := Fit(rows, FixedComponents(d))
		if err != nil {
			return false
		}
		for _, r := range rows {
			proj, err := p.Transform(r)
			if err != nil {
				return false
			}
			back, err := p.InverseTransform(proj)
			if err != nil {
				return false
			}
			for j := range r {
				if !almostEqual(back[j], r[j], 1e-6*(1+math.Abs(r[j]))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestProjectionPreservesVarianceOrdering(t *testing.T) {
	// Variance of the first projected coordinate >= variance of the second.
	rng := rand.New(rand.NewSource(9))
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 7, rng.NormFloat64() * 3, rng.NormFloat64()}
	}
	p, err := Fit(rows, FixedComponents(2))
	if err != nil {
		t.Fatal(err)
	}
	proj, err := p.TransformAll(rows)
	if err != nil {
		t.Fatal(err)
	}
	var m0, m1 float64
	for _, r := range proj {
		m0 += r[0]
		m1 += r[1]
	}
	m0 /= float64(len(proj))
	m1 /= float64(len(proj))
	var v0, v1 float64
	for _, r := range proj {
		v0 += (r[0] - m0) * (r[0] - m0)
		v1 += (r[1] - m1) * (r[1] - m1)
	}
	if v0 < v1 {
		t.Errorf("component variances out of order: %g < %g", v0, v1)
	}
}

func TestZeroVarianceTrainingData(t *testing.T) {
	rows := [][]float64{{2, 2}, {2, 2}, {2, 2}}
	p, err := Fit(rows, MinVariance(0.9))
	if err != nil {
		t.Fatal(err)
	}
	proj, err := p.Transform([]float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range proj {
		if v != 0 {
			t.Errorf("zero-variance projection = %v, want zeros", proj)
		}
	}
	if p.ExplainedVariance() != 1 {
		t.Errorf("degenerate explained variance = %g, want 1", p.ExplainedVariance())
	}
}

func TestEigenvaluesCopy(t *testing.T) {
	rows := [][]float64{{1, 0}, {0, 1}, {2, 2}}
	p, err := Fit(rows, FixedComponents(2))
	if err != nil {
		t.Fatal(err)
	}
	ev := p.Eigenvalues()
	ev[0] = -999
	if p.Eigenvalues()[0] == -999 {
		t.Error("Eigenvalues exposed internal storage")
	}
	if p.InputDim() != 2 {
		t.Errorf("InputDim = %d", p.InputDim())
	}
}
