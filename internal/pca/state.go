package pca

import (
	"fmt"
	"math"

	"github.com/acis-lab/larpredictor/internal/linalg"
)

// State is the exported form of a fitted PCA, used by the durable-state
// codec in internal/core to checkpoint a trained LARPredictor without
// re-running the eigendecomposition on restart.
type State struct {
	// Mean holds the column means subtracted before projection.
	Mean []float64
	// Components holds the kept eigenvectors as rows of length len(Mean):
	// Components[c][d] is dimension d of component c.
	Components [][]float64
	// Eigenvalues is the known descending spectrum (full for the Jacobi
	// backend, leading-only for power iteration).
	Eigenvalues []float64
	// TotalVariance is the covariance trace at fit time.
	TotalVariance float64
}

// State exports the fitted transform. It returns ErrNotFitted on an
// unfitted PCA.
func (p *PCA) State() (*State, error) {
	if !p.fitted {
		return nil, ErrNotFitted
	}
	s := &State{
		Mean:          append([]float64(nil), p.mean...),
		Components:    make([][]float64, p.kept),
		Eigenvalues:   append([]float64(nil), p.eigvals...),
		TotalVariance: p.totVar,
	}
	for c := 0; c < p.kept; c++ {
		s.Components[c] = p.comps.Col(c)
	}
	return s, nil
}

// FromState rebuilds a fitted PCA from an exported State, validating
// dimensions and finiteness so that a corrupt or adversarial snapshot can
// never produce a transform that panics at projection time.
func FromState(s *State) (*PCA, error) {
	if s == nil {
		return nil, fmt.Errorf("pca: nil state: %w", ErrBadInput)
	}
	d := len(s.Mean)
	if d == 0 {
		return nil, fmt.Errorf("pca: state with zero-dimensional mean: %w", ErrBadInput)
	}
	k := len(s.Components)
	if k == 0 || k > d {
		return nil, fmt.Errorf("pca: state keeps %d of %d components: %w", k, d, ErrBadInput)
	}
	if !linalg.AllFinite(s.Mean) || !linalg.AllFinite(s.Eigenvalues) ||
		math.IsNaN(s.TotalVariance) || math.IsInf(s.TotalVariance, 0) {
		return nil, fmt.Errorf("pca: non-finite state: %w", ErrBadInput)
	}
	comps := linalg.NewMatrix(d, k)
	for c, col := range s.Components {
		if len(col) != d {
			return nil, fmt.Errorf("pca: component %d has dimension %d, want %d: %w",
				c, len(col), d, ErrBadInput)
		}
		if !linalg.AllFinite(col) {
			return nil, fmt.Errorf("pca: non-finite component %d: %w", c, ErrBadInput)
		}
		for r := 0; r < d; r++ {
			comps.Set(r, c, col[r])
		}
	}
	return &PCA{
		fitted:  true,
		mean:    append([]float64(nil), s.Mean...),
		comps:   comps,
		eigvals: append([]float64(nil), s.Eigenvalues...),
		totVar:  s.TotalVariance,
		kept:    k,
	}, nil
}
