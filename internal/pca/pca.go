// Package pca implements Principal Component Analysis for the LARPredictor's
// classification front end (paper §5.2): the prediction windows of size m are
// projected onto their first n principal components (n = 2 in the paper's
// implementation) before k-NN classification, cutting the cost of the
// distance computations and suppressing noise dimensions.
//
// The decomposition is computed from the covariance matrix of the training
// windows with the Jacobi eigensolver in internal/linalg. Components are
// selected either by a fixed count or by a minimum fraction of explained
// variance ("selects the principal components based on the predefined
// minimal fraction variance", paper §6).
package pca

import (
	"errors"
	"fmt"

	"github.com/acis-lab/larpredictor/internal/linalg"
)

// ErrNotFitted is returned when Transform is called before Fit.
var ErrNotFitted = errors.New("pca: not fitted")

// ErrBadInput is returned for invalid training data or configuration.
var ErrBadInput = errors.New("pca: invalid input")

// Selection controls how many components Fit keeps.
type Selection struct {
	// Components, when > 0, keeps exactly that many leading components
	// (clamped to the input dimension). The paper fixes this to 2.
	Components int
	// MinFractionVariance, used when Components == 0, keeps the smallest
	// number of leading components whose cumulative explained variance is
	// at least this fraction (0 < f <= 1).
	MinFractionVariance float64
}

// FixedComponents selects exactly n components.
func FixedComponents(n int) Selection { return Selection{Components: n} }

// MinVariance selects the fewest components explaining at least fraction f
// of the variance.
func MinVariance(f float64) Selection { return Selection{MinFractionVariance: f} }

// Backend selects the eigensolver.
type Backend int

const (
	// JacobiBackend computes the full spectrum with cyclic Jacobi — exact
	// and required for MinVariance selection.
	JacobiBackend Backend = iota
	// PowerIterationBackend computes only the leading components by
	// subspace iteration (the cheaper route the paper's §7.3 cites for
	// "finding only a few eigenvectors ... of a large matrix"). It
	// supports FixedComponents selection only.
	PowerIterationBackend
)

// PCA is a fitted principal component transform. The zero value is unfitted;
// use Fit. A fitted PCA is immutable and safe for concurrent use.
type PCA struct {
	fitted  bool
	mean    []float64      // column means of the training windows
	comps   *linalg.Matrix // d×k, eigenvectors as columns
	eigvals []float64      // known leading eigenvalues, descending
	totVar  float64        // trace of the covariance (total variance)
	kept    int
}

// Fit computes the principal components of the training rows (one window per
// row) with the Jacobi backend and keeps components per the selection rule.
// It needs at least two rows and one column.
func Fit(rows [][]float64, sel Selection) (*PCA, error) {
	return FitBackend(rows, sel, JacobiBackend)
}

// FitBackend is Fit with an explicit eigensolver backend. The power-
// iteration backend requires FixedComponents selection (it never computes
// the full spectrum a variance-fraction rule needs).
func FitBackend(rows [][]float64, sel Selection, backend Backend) (*PCA, error) {
	x, err := linalg.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("pca: %w", err)
	}
	if x.Rows() < 2 {
		return nil, fmt.Errorf("pca: need >= 2 training rows, have %d: %w", x.Rows(), ErrBadInput)
	}
	if x.Cols() < 1 {
		return nil, fmt.Errorf("pca: zero-dimensional rows: %w", ErrBadInput)
	}
	cov, err := x.Covariance()
	if err != nil {
		return nil, fmt.Errorf("pca: covariance: %w", err)
	}
	d := x.Cols()
	var trace float64
	for i := 0; i < d; i++ {
		trace += cov.At(i, i)
	}

	var ed *linalg.EigenDecomposition
	switch backend {
	case PowerIterationBackend:
		if sel.Components < 1 {
			return nil, fmt.Errorf("pca: power-iteration backend requires FixedComponents selection: %w", ErrBadInput)
		}
		if trace <= 0 {
			// Degenerate zero-variance data: fall back to the exact solver,
			// which handles it uniformly.
			ed, err = linalg.SymEigen(cov)
		} else {
			ed, err = linalg.TopEigen(cov, sel.Components)
		}
	default:
		ed, err = linalg.SymEigen(cov)
	}
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition: %w", err)
	}

	k, err := chooseComponents(ed.Values, sel, d)
	if err != nil {
		return nil, err
	}
	if k > len(ed.Values) {
		k = len(ed.Values)
	}

	comps := linalg.NewMatrix(d, k)
	for c := 0; c < k; c++ {
		col := ed.Vectors.Col(c)
		for r := 0; r < d; r++ {
			comps.Set(r, c, col[r])
		}
	}
	return &PCA{
		fitted:  true,
		mean:    x.ColumnMeans(),
		comps:   comps,
		eigvals: ed.Values,
		totVar:  trace,
		kept:    k,
	}, nil
}

// chooseComponents applies the selection rule to the descending eigenvalue
// spectrum of a d-dimensional decomposition.
func chooseComponents(eigvals []float64, sel Selection, d int) (int, error) {
	if sel.Components > 0 {
		k := sel.Components
		if k > d {
			k = d
		}
		return k, nil
	}
	f := sel.MinFractionVariance
	if f <= 0 || f > 1 {
		return 0, fmt.Errorf("pca: min fraction variance %g outside (0,1]: %w", f, ErrBadInput)
	}
	var total float64
	for _, v := range eigvals {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		// Zero-variance training data: a single component carries everything
		// (all projections will be 0, which is the right degenerate answer).
		return 1, nil
	}
	var cum float64
	for i, v := range eigvals {
		if v > 0 {
			cum += v
		}
		if cum/total >= f {
			return i + 1, nil
		}
	}
	return d, nil
}

// Components returns the number of components kept.
func (p *PCA) Components() int { return p.kept }

// InputDim returns the dimensionality the transform was fitted on.
func (p *PCA) InputDim() int { return len(p.mean) }

// ExplainedVariance returns the fraction of total variance captured by the
// kept components (1 for degenerate zero-variance fits). The total is the
// covariance trace, so the fraction is exact for both backends.
func (p *PCA) ExplainedVariance() float64 {
	if p.totVar <= 0 {
		return 1
	}
	var kept float64
	for i, v := range p.eigvals {
		if i >= p.kept {
			break
		}
		if v > 0 {
			kept += v
		}
	}
	f := kept / p.totVar
	if f > 1 {
		f = 1
	}
	return f
}

// Eigenvalues returns a copy of the known descending eigenvalue spectrum
// (the full spectrum for the Jacobi backend; the leading components for the
// power-iteration backend).
func (p *PCA) Eigenvalues() []float64 {
	out := make([]float64, len(p.eigvals))
	copy(out, p.eigvals)
	return out
}

// Transform projects a single window onto the kept components.
func (p *PCA) Transform(row []float64) ([]float64, error) {
	return p.TransformInto(nil, row)
}

// TransformInto projects a single window onto the kept components, writing
// the projection into dst when its capacity suffices (allocating otherwise)
// and returning the slice holding the result. Centering is fused into the
// projection loop, so a sufficiently large dst makes the call allocation
// free; dst may be nil.
func (p *PCA) TransformInto(dst, row []float64) ([]float64, error) {
	if !p.fitted {
		return nil, ErrNotFitted
	}
	if len(row) != len(p.mean) {
		return nil, fmt.Errorf("pca: transform row of %d values, fitted on %d: %w",
			len(row), len(p.mean), ErrBadInput)
	}
	if cap(dst) < p.kept {
		dst = make([]float64, p.kept)
	}
	dst = dst[:p.kept]
	for c := 0; c < p.kept; c++ {
		var s float64
		for r := 0; r < len(row); r++ {
			s += p.comps.At(r, c) * (row[r] - p.mean[r])
		}
		dst[c] = s
	}
	return dst, nil
}

// TransformAll projects each row, returning a new slice of projected rows.
func (p *PCA) TransformAll(rows [][]float64) ([][]float64, error) {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		t, err := p.Transform(r)
		if err != nil {
			return nil, fmt.Errorf("pca: row %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// InverseTransform maps a projected vector back to the original space
// (the least-squares reconstruction µ + V·λ of paper Eq. 7).
func (p *PCA) InverseTransform(proj []float64) ([]float64, error) {
	if !p.fitted {
		return nil, ErrNotFitted
	}
	if len(proj) != p.kept {
		return nil, fmt.Errorf("pca: inverse transform of %d values, kept %d components: %w",
			len(proj), p.kept, ErrBadInput)
	}
	out := make([]float64, len(p.mean))
	copy(out, p.mean)
	for c := 0; c < p.kept; c++ {
		lambda := proj[c]
		if lambda == 0 {
			continue
		}
		for r := 0; r < len(out); r++ {
			out[r] += lambda * p.comps.At(r, c)
		}
	}
	return out, nil
}
