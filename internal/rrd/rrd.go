// Package rrd is a from-scratch Round Robin Database, the fixed-footprint
// time-series store the paper's monitoring pipeline writes vmkusage samples
// into ("The collected data is stored in a Round Robin Database (RRD)",
// paper §3.2). It follows the rrdtool model:
//
//   - one or more data sources (DS) with type GAUGE/COUNTER/DERIVE/ABSOLUTE,
//     a heartbeat, and optional min/max sanity clamps;
//   - a primary data point (PDP) per base step, built by time-weighted
//     accumulation of updates;
//   - one or more round-robin archives (RRA), each consolidating a fixed
//     number of PDPs per row with AVERAGE/MIN/MAX/LAST and an xff
//     unknown-data tolerance, into a fixed-length ring.
//
// Timestamps are Unix seconds. Unknown data is represented as NaN.
package rrd

import (
	"errors"
	"fmt"
	"math"
)

// DSType enumerates data-source semantics.
type DSType int

// Data-source types, following rrdtool.
const (
	// Gauge stores the value as-is (temperatures, load averages).
	Gauge DSType = iota
	// Counter stores the per-second rate of an ever-increasing counter,
	// with 32/64-bit wrap detection (packet and byte counters).
	Counter
	// Derive is Counter without wrap handling; rates may be negative.
	Derive
	// Absolute divides each update by the elapsed interval (counters that
	// reset on read).
	Absolute
)

func (t DSType) String() string {
	switch t {
	case Gauge:
		return "GAUGE"
	case Counter:
		return "COUNTER"
	case Derive:
		return "DERIVE"
	case Absolute:
		return "ABSOLUTE"
	}
	return fmt.Sprintf("DSType(%d)", int(t))
}

// CF enumerates consolidation functions.
type CF int

// Consolidation functions.
const (
	Average CF = iota
	Min
	Max
	Last
)

func (c CF) String() string {
	switch c {
	case Average:
		return "AVERAGE"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Last:
		return "LAST"
	}
	return fmt.Sprintf("CF(%d)", int(c))
}

// DS declares one data source.
type DS struct {
	// Name identifies the source within the database.
	Name string
	// Type selects the update semantics.
	Type DSType
	// Heartbeat is the maximum seconds between updates before the interval
	// is treated as unknown.
	Heartbeat int64
	// Min and Max clamp sanity bounds; NaN disables a bound. Values outside
	// become unknown.
	Min, Max float64
}

// RRASpec declares one archive.
type RRASpec struct {
	// CF is the consolidation function.
	CF CF
	// XFF is the maximum fraction of unknown PDPs a consolidated row may
	// contain before the row itself becomes unknown (0 <= XFF < 1).
	XFF float64
	// Steps is how many PDPs one row consolidates.
	Steps int
	// Rows is the ring length.
	Rows int
}

// Resolution returns the archive's row duration for a base step.
func (s RRASpec) Resolution(step int64) int64 { return step * int64(s.Steps) }

// Errors returned by the database.
var (
	ErrBadConfig    = errors.New("rrd: invalid configuration")
	ErrTimeTravel   = errors.New("rrd: update not after last update")
	ErrWrongArity   = errors.New("rrd: wrong number of values")
	ErrNoMatchingCF = errors.New("rrd: no archive with requested consolidation function")
)

// cdp accumulates PDPs toward one archive row for one data source.
type cdp struct {
	sum     float64 // Average: running sum; Min/Max/Last: running aggregate
	known   int
	unknown int
}

// rra is one archive's runtime state.
type rra struct {
	spec RRASpec
	// ring[r][d] is row r's value for DS d. head is the next write slot;
	// filled counts valid rows; lastRowEnd is the end timestamp of the most
	// recently written row.
	ring       [][]float64
	head       int
	filled     int
	lastRowEnd int64
	cdps       []cdp
}

// RRD is the database. Not safe for concurrent use; wrap with a mutex if
// shared (internal/monitor does).
type RRD struct {
	step       int64
	ds         []DS
	rras       []*rra
	lastUpdate int64
	started    bool
	lastRaw    []float64 // previous raw values, for Counter/Derive
	pdpAccum   []float64
	pdpKnown   []int64 // known seconds accumulated into the current PDP
}

// New creates a database with the given base step (seconds), data sources,
// and archives. The first update's timestamp seeds the clock; PDPs align to
// multiples of step.
func New(step int64, sources []DS, archives []RRASpec) (*RRD, error) {
	if step < 1 {
		return nil, fmt.Errorf("rrd: step %d < 1: %w", step, ErrBadConfig)
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("rrd: no data sources: %w", ErrBadConfig)
	}
	seen := map[string]bool{}
	for _, d := range sources {
		if d.Name == "" {
			return nil, fmt.Errorf("rrd: unnamed data source: %w", ErrBadConfig)
		}
		if seen[d.Name] {
			return nil, fmt.Errorf("rrd: duplicate data source %q: %w", d.Name, ErrBadConfig)
		}
		seen[d.Name] = true
		if d.Heartbeat < 1 {
			return nil, fmt.Errorf("rrd: ds %q heartbeat %d < 1: %w", d.Name, d.Heartbeat, ErrBadConfig)
		}
	}
	if len(archives) == 0 {
		return nil, fmt.Errorf("rrd: no archives: %w", ErrBadConfig)
	}
	r := &RRD{
		step:     step,
		ds:       append([]DS(nil), sources...),
		lastRaw:  make([]float64, len(sources)),
		pdpAccum: make([]float64, len(sources)),
		pdpKnown: make([]int64, len(sources)),
	}
	for _, spec := range archives {
		if spec.Steps < 1 || spec.Rows < 1 {
			return nil, fmt.Errorf("rrd: archive steps=%d rows=%d: %w", spec.Steps, spec.Rows, ErrBadConfig)
		}
		if spec.XFF < 0 || spec.XFF >= 1 {
			return nil, fmt.Errorf("rrd: archive xff=%g outside [0,1): %w", spec.XFF, ErrBadConfig)
		}
		a := &rra{spec: spec, cdps: make([]cdp, len(sources))}
		a.ring = make([][]float64, spec.Rows)
		for i := range a.ring {
			row := make([]float64, len(sources))
			for j := range row {
				row[j] = math.NaN()
			}
			a.ring[i] = row
		}
		r.rras = append(r.rras, a)
	}
	for i := range r.lastRaw {
		r.lastRaw[i] = math.NaN()
	}
	return r, nil
}

// Step returns the base step in seconds.
func (r *RRD) Step() int64 { return r.step }

// Sources returns a copy of the data-source declarations.
func (r *RRD) Sources() []DS { return append([]DS(nil), r.ds...) }

// LastUpdate returns the timestamp of the most recent update (0 before the
// first).
func (r *RRD) LastUpdate() int64 {
	if !r.started {
		return 0
	}
	return r.lastUpdate
}

// DSIndex returns the index of the named data source, or -1.
func (r *RRD) DSIndex(name string) int {
	for i, d := range r.ds {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// Update feeds one sample per data source at timestamp ts (Unix seconds).
// Timestamps must be strictly increasing. Use math.NaN() for a missing
// value.
func (r *RRD) Update(ts int64, values ...float64) error {
	if len(values) != len(r.ds) {
		return fmt.Errorf("rrd: %d values for %d data sources: %w", len(values), len(r.ds), ErrWrongArity)
	}
	if !r.started {
		// First update only establishes the clock and raw baselines.
		r.lastUpdate = ts
		copy(r.lastRaw, values)
		r.started = true
		return nil
	}
	if ts <= r.lastUpdate {
		return fmt.Errorf("rrd: update at %d, last %d: %w", ts, r.lastUpdate, ErrTimeTravel)
	}
	elapsed := ts - r.lastUpdate

	// Convert raw values to PDP-space rates/values.
	rates := make([]float64, len(values))
	for i, v := range values {
		rates[i] = r.toRate(i, v, elapsed)
	}

	// Walk step boundaries from lastUpdate to ts, distributing each rate
	// over the time it covers.
	cursor := r.lastUpdate
	for cursor < ts {
		boundary := (cursor/r.step + 1) * r.step
		segEnd := boundary
		if ts < segEnd {
			segEnd = ts
		}
		seg := segEnd - cursor
		for i, rate := range rates {
			if !math.IsNaN(rate) {
				r.pdpAccum[i] += rate * float64(seg)
				r.pdpKnown[i] += seg
			}
		}
		if segEnd == boundary {
			r.finalizePDP(boundary)
		}
		cursor = segEnd
	}

	r.lastUpdate = ts
	copy(r.lastRaw, values)
	return nil
}

// toRate converts a raw update to the PDP value space per DS type and
// applies heartbeat and min/max checks.
func (r *RRD) toRate(i int, v float64, elapsed int64) float64 {
	d := r.ds[i]
	if elapsed > d.Heartbeat || math.IsNaN(v) {
		return math.NaN()
	}
	var rate float64
	switch d.Type {
	case Gauge:
		rate = v
	case Counter:
		prev := r.lastRaw[i]
		if math.IsNaN(prev) {
			return math.NaN()
		}
		delta := v - prev
		if delta < 0 {
			// Counter wrap: try 32-bit then 64-bit wrap.
			delta += 1 << 32
			if delta < 0 {
				delta += float64(1<<63) * 2 // 2^64 as float
			}
			if delta < 0 {
				return math.NaN()
			}
		}
		rate = delta / float64(elapsed)
	case Derive:
		prev := r.lastRaw[i]
		if math.IsNaN(prev) {
			return math.NaN()
		}
		rate = (v - prev) / float64(elapsed)
	case Absolute:
		rate = v / float64(elapsed)
	default:
		return math.NaN()
	}
	if !math.IsNaN(d.Min) && rate < d.Min {
		return math.NaN()
	}
	if !math.IsNaN(d.Max) && rate > d.Max {
		return math.NaN()
	}
	return rate
}

// finalizePDP closes the primary data point ending at the given boundary and
// feeds it to every archive.
func (r *RRD) finalizePDP(boundary int64) {
	pdp := make([]float64, len(r.ds))
	for i := range r.ds {
		// rrdtool's rule: a PDP is known if at least half its interval had
		// known data.
		if r.pdpKnown[i]*2 >= r.step {
			pdp[i] = r.pdpAccum[i] / float64(r.pdpKnown[i])
		} else {
			pdp[i] = math.NaN()
		}
		r.pdpAccum[i] = 0
		r.pdpKnown[i] = 0
	}
	for _, a := range r.rras {
		a.consume(pdp, boundary, r.step)
	}
}

// consume folds one PDP (ending at boundary) into the archive's CDPs and
// writes a row when the aligned consolidation interval completes.
func (a *rra) consume(pdp []float64, boundary, step int64) {
	for i, v := range pdp {
		c := &a.cdps[i]
		if math.IsNaN(v) {
			c.unknown++
		} else {
			switch a.spec.CF {
			case Average:
				c.sum += v
			case Min:
				if c.known == 0 || v < c.sum {
					c.sum = v
				}
			case Max:
				if c.known == 0 || v > c.sum {
					c.sum = v
				}
			case Last:
				c.sum = v
			}
			c.known++
		}
	}
	// A row completes when the boundary aligns with the archive resolution.
	if (boundary/step)%int64(a.spec.Steps) != 0 {
		return
	}
	row := a.ring[a.head]
	for i := range a.cdps {
		c := &a.cdps[i]
		total := c.known + c.unknown
		switch {
		case total == 0,
			float64(c.unknown) > a.spec.XFF*float64(a.spec.Steps):
			row[i] = math.NaN()
		case a.spec.CF == Average:
			row[i] = c.sum / float64(c.known)
		default:
			row[i] = c.sum
		}
		a.cdps[i] = cdp{}
	}
	a.lastRowEnd = boundary
	a.head = (a.head + 1) % a.spec.Rows
	if a.filled < a.spec.Rows {
		a.filled++
	}
}

// Row is one fetched archive row.
type Row struct {
	// End is the timestamp (Unix seconds) at which the row's interval ends;
	// the interval is (End-Resolution, End].
	End int64
	// Values holds one value per data source (NaN = unknown).
	Values []float64
}

// FetchResult is the outcome of a Fetch.
type FetchResult struct {
	// CF is the consolidation function served.
	CF CF
	// Resolution is the row duration in seconds.
	Resolution int64
	// Rows are in chronological order.
	Rows []Row
}

// Fetch returns consolidated rows with the given CF whose intervals
// intersect [start, end]. Among archives with that CF it picks the finest
// resolution whose retention still covers start; if none reaches back that
// far, the longest-retention archive is used (rrdtool behaviour).
func (r *RRD) Fetch(cf CF, start, end int64) (*FetchResult, error) {
	if end < start {
		return nil, fmt.Errorf("rrd: fetch end %d before start %d: %w", end, start, ErrBadConfig)
	}
	var candidates []*rra
	for _, a := range r.rras {
		if a.spec.CF == cf {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("rrd: %s: %w", cf, ErrNoMatchingCF)
	}
	best := candidates[0]
	bestCovers := covers(best, start, r.step)
	for _, a := range candidates[1:] {
		c := covers(a, start, r.step)
		switch {
		case c && !bestCovers:
			best, bestCovers = a, true
		case c == bestCovers:
			res := a.spec.Resolution(r.step)
			bestRes := best.spec.Resolution(r.step)
			if (c && res < bestRes) || (!c && retention(a, r.step) > retention(best, r.step)) {
				best = a
			}
		}
	}

	resolution := best.spec.Resolution(r.step)
	var rows []Row
	// Oldest row first: rows end at lastRowEnd - i*resolution, i = filled-1..0.
	for i := best.filled - 1; i >= 0; i-- {
		endTS := best.lastRowEnd - int64(i)*resolution
		if endTS <= start || endTS-resolution >= end {
			continue
		}
		pos := (best.head - 1 - i + 2*best.spec.Rows) % best.spec.Rows
		vals := make([]float64, len(best.ring[pos]))
		copy(vals, best.ring[pos])
		rows = append(rows, Row{End: endTS, Values: vals})
	}
	return &FetchResult{CF: cf, Resolution: resolution, Rows: rows}, nil
}

// covers reports whether archive a's retention reaches back to start.
func covers(a *rra, start, step int64) bool {
	if a.filled == 0 {
		return false
	}
	oldest := a.lastRowEnd - int64(a.filled)*a.spec.Resolution(step)
	return oldest <= start
}

// retention returns the archive's total time span in seconds.
func retention(a *rra, step int64) int64 {
	return int64(a.spec.Rows) * a.spec.Resolution(step)
}
