package rrd

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{gaugeDS("cpu"), {Name: "net", Type: Counter, Heartbeat: 300, Min: math.NaN(), Max: math.NaN()}},
		[]RRASpec{
			{CF: Average, XFF: 0.5, Steps: 1, Rows: 20},
			{CF: Max, XFF: 0.5, Steps: 5, Rows: 10},
		})
	if err := r.Update(0, 0, 1000); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 17; i++ {
		if err := r.Update(int64(60*i), float64(i), float64(1000+100*i)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Same fetch results before and after.
	a, err := r.Fetch(Average, 0, 17*60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Fetch(Average, 0, 17*60)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i].End != b.Rows[i].End {
			t.Fatal("row timestamps differ")
		}
		for j := range a.Rows[i].Values {
			av, bv := a.Rows[i].Values[j], b.Rows[i].Values[j]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("row %d ds %d: %g vs %g", i, j, av, bv)
			}
		}
	}

	// The loaded DB must continue accepting updates, preserving in-flight
	// PDP/CDP state: push to the next Max row and compare end-to-end.
	for i := 18; i <= 20; i++ {
		if err := loaded.Update(int64(60*i), float64(i), float64(1000+100*i)); err != nil {
			t.Fatal(err)
		}
		if err := r.Update(int64(60*i), float64(i), float64(1000+100*i)); err != nil {
			t.Fatal(err)
		}
	}
	am, err := r.Fetch(Max, 0, 20*60)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := loaded.Fetch(Max, 0, 20*60)
	if err != nil {
		t.Fatal(err)
	}
	if len(am.Rows) != len(bm.Rows) {
		t.Fatalf("max rows differ: %d vs %d", len(am.Rows), len(bm.Rows))
	}
	for i := range am.Rows {
		if am.Rows[i].Values[0] != bm.Rows[i].Values[0] {
			t.Fatalf("max row %d differs: %g vs %g", i, am.Rows[i].Values[0], bm.Rows[i].Values[0])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an rrd file at all"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("garbage err = %v, want ErrBadFormat", err)
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Correct magic, wrong version.
	var buf bytes.Buffer
	buf.Write(persistMagic[:])
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := Load(&buf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad version err = %v, want ErrBadFormat", err)
	}
}

func TestLoadTruncated(t *testing.T) {
	r := simpleRRD(t)
	if err := r.Update(0, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Load(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Error("truncated input accepted")
	}
}
