package rrd

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{gaugeDS("cpu"), {Name: "net", Type: Counter, Heartbeat: 300, Min: math.NaN(), Max: math.NaN()}},
		[]RRASpec{
			{CF: Average, XFF: 0.5, Steps: 1, Rows: 20},
			{CF: Max, XFF: 0.5, Steps: 5, Rows: 10},
		})
	if err := r.Update(0, 0, 1000); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 17; i++ {
		if err := r.Update(int64(60*i), float64(i), float64(1000+100*i)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Same fetch results before and after.
	a, err := r.Fetch(Average, 0, 17*60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Fetch(Average, 0, 17*60)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i].End != b.Rows[i].End {
			t.Fatal("row timestamps differ")
		}
		for j := range a.Rows[i].Values {
			av, bv := a.Rows[i].Values[j], b.Rows[i].Values[j]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("row %d ds %d: %g vs %g", i, j, av, bv)
			}
		}
	}

	// The loaded DB must continue accepting updates, preserving in-flight
	// PDP/CDP state: push to the next Max row and compare end-to-end.
	for i := 18; i <= 20; i++ {
		if err := loaded.Update(int64(60*i), float64(i), float64(1000+100*i)); err != nil {
			t.Fatal(err)
		}
		if err := r.Update(int64(60*i), float64(i), float64(1000+100*i)); err != nil {
			t.Fatal(err)
		}
	}
	am, err := r.Fetch(Max, 0, 20*60)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := loaded.Fetch(Max, 0, 20*60)
	if err != nil {
		t.Fatal(err)
	}
	if len(am.Rows) != len(bm.Rows) {
		t.Fatalf("max rows differ: %d vs %d", len(am.Rows), len(bm.Rows))
	}
	for i := range am.Rows {
		if am.Rows[i].Values[0] != bm.Rows[i].Values[0] {
			t.Fatalf("max row %d differs: %g vs %g", i, am.Rows[i].Values[0], bm.Rows[i].Values[0])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an rrd file at all"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("garbage err = %v, want ErrBadFormat", err)
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Correct magic, wrong version.
	var buf bytes.Buffer
	buf.Write(persistMagic[:])
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := Load(&buf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad version err = %v, want ErrBadFormat", err)
	}
}

func TestLoadTruncated(t *testing.T) {
	r := simpleRRD(t)
	if err := r.Update(0, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every short read fails cleanly: mid-magic, mid-version, mid-gob, and
	// with the checksum footer cut off.
	cuts := []struct {
		name string
		n    int
	}{
		{"empty", 0},
		{"mid-magic", 5},
		{"magic-only", 8},
		{"mid-version", 10},
		{"header-only", 12},
		{"mid-gob", 12 + (len(full)-16)/2},
		{"missing-footer", len(full) - 4},
		{"partial-footer", len(full) - 2},
	}
	for _, c := range cuts {
		if _, err := Load(bytes.NewReader(full[:c.n])); err == nil {
			t.Errorf("%s (%d bytes) accepted", c.name, c.n)
		}
	}
}

func TestLoadChecksumMismatch(t *testing.T) {
	r := simpleRRD(t)
	if err := r.Update(0, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// A single flipped bit anywhere after the header is a checksum error,
	// not a gob decode error or a silent misload.
	for _, off := range []int{12, len(full) / 2, len(full) - 5} {
		bad := append([]byte(nil), full...)
		bad[off] ^= 0x20
		if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
			t.Errorf("flip at %d: err = %v, want ErrChecksum", off, err)
		}
	}
	// Corrupting the footer itself is also a checksum error.
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
		t.Errorf("footer flip: err = %v, want ErrChecksum", err)
	}
}

func TestLoadV1Compat(t *testing.T) {
	r := simpleRRD(t)
	for i := 0; i <= 5; i++ {
		if err := r.Update(int64(60*i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Rewrite the v2 file as the legacy v1 layout: same gob payload, version
	// byte 1, no footer.
	full := buf.Bytes()
	v1 := append([]byte(nil), full[:len(full)-4]...)
	v1[8] = 1
	loaded, err := Load(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	a, err := r.Fetch(Average, 0, 5*60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Fetch(Average, 0, 5*60)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("v1 rows %d vs %d", len(b.Rows), len(a.Rows))
	}
	for i := range a.Rows {
		av, bv := a.Rows[i].Values[0], b.Rows[i].Values[0]
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			t.Fatalf("v1 row %d: %g vs %g", i, bv, av)
		}
	}
}
