package rrd

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func gaugeDS(name string) DS {
	return DS{Name: name, Type: Gauge, Heartbeat: 600, Min: math.NaN(), Max: math.NaN()}
}

func mustRRD(t *testing.T, step int64, ds []DS, rras []RRASpec) *RRD {
	t.Helper()
	r, err := New(step, ds, rras)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func simpleRRD(t *testing.T) *RRD {
	return mustRRD(t, 60,
		[]DS{gaugeDS("cpu")},
		[]RRASpec{{CF: Average, XFF: 0.5, Steps: 1, Rows: 100}})
}

func TestNewValidation(t *testing.T) {
	ds := []DS{gaugeDS("x")}
	rras := []RRASpec{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}}
	cases := []struct {
		name string
		step int64
		ds   []DS
		rras []RRASpec
	}{
		{"zero step", 0, ds, rras},
		{"no ds", 60, nil, rras},
		{"unnamed ds", 60, []DS{{Heartbeat: 60}}, rras},
		{"dup ds", 60, []DS{gaugeDS("a"), gaugeDS("a")}, rras},
		{"bad heartbeat", 60, []DS{{Name: "a", Heartbeat: 0}}, rras},
		{"no rra", 60, ds, nil},
		{"bad steps", 60, ds, []RRASpec{{CF: Average, Steps: 0, Rows: 10}}},
		{"bad rows", 60, ds, []RRASpec{{CF: Average, Steps: 1, Rows: 0}}},
		{"bad xff", 60, ds, []RRASpec{{CF: Average, XFF: 1, Steps: 1, Rows: 10}}},
	}
	for _, c := range cases {
		if _, err := New(c.step, c.ds, c.rras); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", c.name, err)
		}
	}
}

func TestUpdateArityAndOrdering(t *testing.T) {
	r := simpleRRD(t)
	if err := r.Update(1000, 1, 2); !errors.Is(err, ErrWrongArity) {
		t.Errorf("arity err = %v", err)
	}
	if err := r.Update(1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(1000, 1); !errors.Is(err, ErrTimeTravel) {
		t.Errorf("same-timestamp err = %v", err)
	}
	if err := r.Update(999, 1); !errors.Is(err, ErrTimeTravel) {
		t.Errorf("backwards err = %v", err)
	}
	if r.LastUpdate() != 1000 {
		t.Errorf("LastUpdate = %d", r.LastUpdate())
	}
}

func TestGaugeStepAlignedUpdates(t *testing.T) {
	r := simpleRRD(t)
	// First update at a boundary seeds the clock; following updates land
	// exactly on boundaries so PDP == value.
	if err := r.Update(600, 0); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := r.Update(600+60*i, float64(10*i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Fetch(Average, 600, 900)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("fetched %d rows: %+v", len(res.Rows), res.Rows)
	}
	for i, row := range res.Rows {
		want := float64(10 * (i + 1))
		if math.Abs(row.Values[0]-want) > 1e-9 {
			t.Errorf("row %d = %g, want %g", i, row.Values[0], want)
		}
		if row.End != 600+60*int64(i+1) {
			t.Errorf("row %d end = %d", i, row.End)
		}
	}
}

func TestGaugeSubStepAveraging(t *testing.T) {
	// Two half-step updates: the PDP is the time-weighted average.
	r := simpleRRD(t)
	if err := r.Update(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(30, 10); err != nil { // covers (0,30] at 10
		t.Fatal(err)
	}
	if err := r.Update(60, 20); err != nil { // covers (30,60] at 20
		t.Fatal(err)
	}
	res, err := r.Fetch(Average, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if got := res.Rows[0].Values[0]; math.Abs(got-15) > 1e-9 {
		t.Errorf("PDP = %g, want time-weighted 15", got)
	}
}

func TestCounterRates(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{{Name: "pkts", Type: Counter, Heartbeat: 600, Min: math.NaN(), Max: math.NaN()}},
		[]RRASpec{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	if err := r.Update(0, 1000); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(60, 1600); err != nil { // +600 over 60s = 10/s
		t.Fatal(err)
	}
	res, err := r.Fetch(Average, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].Values[0]; math.Abs(got-10) > 1e-9 {
		t.Errorf("counter rate = %g, want 10", got)
	}
}

func TestCounterWrap32(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{{Name: "c", Type: Counter, Heartbeat: 600, Min: math.NaN(), Max: math.NaN()}},
		[]RRASpec{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	max32 := float64(1<<32) - 1
	if err := r.Update(0, max32-50); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(60, 50); err != nil { // wrapped: delta = 101
		t.Fatal(err)
	}
	res, err := r.Fetch(Average, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	want := 101.0 / 60
	if got := res.Rows[0].Values[0]; math.Abs(got-want) > 1e-6 {
		t.Errorf("wrapped rate = %g, want %g", got, want)
	}
}

func TestDeriveNegativeRate(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{{Name: "d", Type: Derive, Heartbeat: 600, Min: math.NaN(), Max: math.NaN()}},
		[]RRASpec{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	if err := r.Update(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(60, 40); err != nil { // -60 over 60s = -1/s
		t.Fatal(err)
	}
	res, err := r.Fetch(Average, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].Values[0]; math.Abs(got+1) > 1e-9 {
		t.Errorf("derive rate = %g, want -1", got)
	}
}

func TestAbsolute(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{{Name: "a", Type: Absolute, Heartbeat: 600, Min: math.NaN(), Max: math.NaN()}},
		[]RRASpec{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	if err := r.Update(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(60, 120); err != nil { // 120 events / 60s = 2/s
		t.Fatal(err)
	}
	res, err := r.Fetch(Average, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].Values[0]; math.Abs(got-2) > 1e-9 {
		t.Errorf("absolute rate = %g, want 2", got)
	}
}

func TestHeartbeatGapProducesNaN(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{{Name: "g", Type: Gauge, Heartbeat: 90, Min: math.NaN(), Max: math.NaN()}},
		[]RRASpec{{CF: Average, XFF: 0.3, Steps: 1, Rows: 10}})
	if err := r.Update(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(60, 1); err != nil {
		t.Fatal(err)
	}
	// 5-minute gap >> heartbeat: intervening PDPs must be unknown.
	if err := r.Update(360, 1); err != nil {
		t.Fatal(err)
	}
	res, err := r.Fetch(Average, 0, 360)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !math.IsNaN(res.Rows[3].Values[0]) {
		t.Errorf("gap row = %g, want NaN", res.Rows[3].Values[0])
	}
	if math.IsNaN(res.Rows[0].Values[0]) {
		t.Error("pre-gap row should be known")
	}
}

func TestMinMaxClamp(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{{Name: "g", Type: Gauge, Heartbeat: 600, Min: 0, Max: 100}},
		[]RRASpec{{CF: Average, XFF: 0.4, Steps: 1, Rows: 10}})
	if err := r.Update(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(60, 500); err != nil { // above Max → unknown
		t.Fatal(err)
	}
	res, err := r.Fetch(Average, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Rows[0].Values[0]) {
		t.Errorf("out-of-range value = %g, want NaN", res.Rows[0].Values[0])
	}
}

func TestConsolidationFunctions(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{gaugeDS("g")},
		[]RRASpec{
			{CF: Average, XFF: 0.5, Steps: 5, Rows: 10},
			{CF: Min, XFF: 0.5, Steps: 5, Rows: 10},
			{CF: Max, XFF: 0.5, Steps: 5, Rows: 10},
			{CF: Last, XFF: 0.5, Steps: 5, Rows: 10},
		})
	if err := r.Update(0, 0); err != nil {
		t.Fatal(err)
	}
	vals := []float64{10, 30, 20, 50, 40}
	for i, v := range vals {
		if err := r.Update(int64(60*(i+1)), v); err != nil {
			t.Fatal(err)
		}
	}
	check := func(cf CF, want float64) {
		t.Helper()
		res, err := r.Fetch(cf, 0, 300)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("%s rows = %d", cf, len(res.Rows))
		}
		if got := res.Rows[0].Values[0]; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %g, want %g", cf, got, want)
		}
	}
	check(Average, 30)
	check(Min, 10)
	check(Max, 50)
	check(Last, 40)
}

func TestXFFTolerance(t *testing.T) {
	// 5-step consolidation with xff 0.5: 2 unknown of 5 is fine, 3 is not.
	build := func(unknowns int) float64 {
		r := mustRRD(t, 60,
			[]DS{{Name: "g", Type: Gauge, Heartbeat: 61, Min: math.NaN(), Max: math.NaN()}},
			[]RRASpec{{CF: Average, XFF: 0.5, Steps: 5, Rows: 10}})
		if err := r.Update(0, 0); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 5; i++ {
			v := 10.0
			if i <= unknowns {
				v = math.NaN()
			}
			if err := r.Update(int64(60*i), v); err != nil {
				t.Fatal(err)
			}
		}
		res, err := r.Fetch(Average, 0, 300)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0].Values[0]
	}
	if v := build(2); math.IsNaN(v) || math.Abs(v-10) > 1e-9 {
		t.Errorf("2/5 unknown → %g, want 10", v)
	}
	if v := build(3); !math.IsNaN(v) {
		t.Errorf("3/5 unknown → %g, want NaN", v)
	}
}

func TestRingWrapAround(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{gaugeDS("g")},
		[]RRASpec{{CF: Average, XFF: 0.5, Steps: 1, Rows: 3}})
	if err := r.Update(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := r.Update(int64(60*i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Fetch(Average, 0, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (ring capacity)", len(res.Rows))
	}
	// Only the newest 3 survive: values 8, 9, 10.
	for i, want := range []float64{8, 9, 10} {
		if got := res.Rows[i].Values[0]; math.Abs(got-want) > 1e-9 {
			t.Errorf("row %d = %g, want %g", i, got, want)
		}
	}
}

func TestFetchSelectsFinestCoveringArchive(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{gaugeDS("g")},
		[]RRASpec{
			{CF: Average, XFF: 0.5, Steps: 1, Rows: 5},  // fine, short retention
			{CF: Average, XFF: 0.5, Steps: 5, Rows: 50}, // coarse, long retention
		})
	if err := r.Update(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := r.Update(int64(60*i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Recent range: fine archive covers it.
	res, err := r.Fetch(Average, 50*60-4*60, 50*60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolution != 60 {
		t.Errorf("recent fetch resolution = %d, want 60", res.Resolution)
	}
	// Old range: only the coarse archive reaches back.
	res, err = r.Fetch(Average, 0, 50*60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolution != 300 {
		t.Errorf("deep fetch resolution = %d, want 300", res.Resolution)
	}
}

func TestFetchNoMatchingCF(t *testing.T) {
	r := simpleRRD(t)
	if _, err := r.Fetch(Max, 0, 100); !errors.Is(err, ErrNoMatchingCF) {
		t.Errorf("err = %v, want ErrNoMatchingCF", err)
	}
	if _, err := r.Fetch(Average, 100, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("inverted range err = %v", err)
	}
}

func TestAverageConservationProperty(t *testing.T) {
	// For gauge data with step-aligned updates and a 1-step archive, the
	// mean of fetched rows equals the mean of the inputs (conservation of
	// mass under consolidation).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, err := New(10,
			[]DS{{Name: "g", Type: Gauge, Heartbeat: 100, Min: math.NaN(), Max: math.NaN()}},
			[]RRASpec{{CF: Average, XFF: 0, Steps: 1, Rows: 1000}})
		if err != nil {
			return false
		}
		if err := r.Update(0, 0); err != nil {
			return false
		}
		n := 10 + rng.Intn(100)
		var sum float64
		for i := 1; i <= n; i++ {
			v := rng.Float64() * 100
			sum += v
			if err := r.Update(int64(10*i), v); err != nil {
				return false
			}
		}
		res, err := r.Fetch(Average, 0, int64(10*n))
		if err != nil || len(res.Rows) != n {
			return false
		}
		var got float64
		for _, row := range res.Rows {
			got += row.Values[0]
		}
		return math.Abs(got-sum) < 1e-6*(1+math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMultiDS(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{gaugeDS("a"), gaugeDS("b")},
		[]RRASpec{{CF: Average, XFF: 0.5, Steps: 1, Rows: 10}})
	if r.DSIndex("b") != 1 || r.DSIndex("zz") != -1 {
		t.Error("DSIndex wrong")
	}
	if err := r.Update(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(60, 10, 20); err != nil {
		t.Fatal(err)
	}
	res, err := r.Fetch(Average, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Values[0] != 10 || res.Rows[0].Values[1] != 20 {
		t.Errorf("multi-DS row = %v", res.Rows[0].Values)
	}
}
