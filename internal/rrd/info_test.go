package rrd

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestLatest(t *testing.T) {
	r := mustRRD(t, 60,
		[]DS{gaugeDS("g")},
		[]RRASpec{
			{CF: Average, XFF: 0.5, Steps: 1, Rows: 10},
			{CF: Average, XFF: 0.5, Steps: 5, Rows: 10},
		})
	if _, err := r.Latest(Average); !errors.Is(err, ErrNoRecentData) {
		t.Errorf("empty Latest err = %v", err)
	}
	if err := r.Update(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		if err := r.Update(int64(60*i), float64(10*i)); err != nil {
			t.Fatal(err)
		}
	}
	row, err := r.Latest(Average)
	if err != nil {
		t.Fatal(err)
	}
	// Finest archive: the 1-step row ending at 7*60 with value 70.
	if row.End != 7*60 {
		t.Errorf("latest end = %d, want 420", row.End)
	}
	if math.Abs(row.Values[0]-70) > 1e-9 {
		t.Errorf("latest value = %g, want 70", row.Values[0])
	}
	if _, err := r.Latest(Max); !errors.Is(err, ErrNoRecentData) {
		t.Error("Latest for absent CF did not error")
	}
	// Mutating the returned row must not corrupt the ring.
	row.Values[0] = -1
	again, err := r.Latest(Average)
	if err != nil {
		t.Fatal(err)
	}
	if again.Values[0] != 70 {
		t.Error("Latest exposed internal storage")
	}
}

func TestInfo(t *testing.T) {
	r := mustRRD(t, 300,
		[]DS{
			{Name: "cpu", Type: Gauge, Heartbeat: 600, Min: 0, Max: 100},
			{Name: "net", Type: Counter, Heartbeat: 600, Min: math.NaN(), Max: math.NaN()},
		},
		[]RRASpec{
			{CF: Average, XFF: 0.5, Steps: 1, Rows: 288},
			{CF: Max, XFF: 0.5, Steps: 12, Rows: 48},
		})
	if err := r.Update(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(300, 2, 2); err != nil {
		t.Fatal(err)
	}
	info := r.Info()
	for _, want := range []string{
		"step=300s", "ds cpu", "type=GAUGE", "min=0", "max=100",
		"ds net", "type=COUNTER", "min=U", "max=U",
		"cf=AVERAGE", "cf=MAX", "steps=12", "filled=1/288",
	} {
		if !strings.Contains(info, want) {
			t.Errorf("Info missing %q:\n%s", want, info)
		}
	}
}
