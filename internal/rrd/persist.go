package rrd

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// persistence format: a fixed magic header, a format version, then a gob
// stream of the snapshot struct. The magic guards against feeding arbitrary
// files to Load; the version allows future layout changes.
var persistMagic = [8]byte{'L', 'A', 'R', 'P', 'R', 'R', 'D', '1'}

const persistVersion uint32 = 1

// ErrBadFormat is returned by Load for unrecognized input.
var ErrBadFormat = errors.New("rrd: unrecognized database format")

// snapshot is the serialized form of an RRD.
type snapshot struct {
	Step       int64
	DS         []DS
	LastUpdate int64
	Started    bool
	LastRaw    []float64
	PDPAccum   []float64
	PDPKnown   []int64
	Archives   []archiveSnapshot
}

type archiveSnapshot struct {
	Spec       RRASpec
	Ring       [][]float64
	Head       int
	Filled     int
	LastRowEnd int64
	CDPs       []cdpSnapshot
}

// cdpSnapshot mirrors the unexported cdp accumulator with exported fields
// for gob.
type cdpSnapshot struct {
	Sum     float64
	Known   int
	Unknown int
}

func snapshotCDPs(cs []cdp) []cdpSnapshot {
	out := make([]cdpSnapshot, len(cs))
	for i, c := range cs {
		out[i] = cdpSnapshot{Sum: c.sum, Known: c.known, Unknown: c.unknown}
	}
	return out
}

func restoreCDPs(cs []cdpSnapshot) []cdp {
	out := make([]cdp, len(cs))
	for i, c := range cs {
		out[i] = cdp{sum: c.Sum, known: c.Known, unknown: c.Unknown}
	}
	return out
}

// Save serializes the database.
func (r *RRD) Save(w io.Writer) error {
	if _, err := w.Write(persistMagic[:]); err != nil {
		return fmt.Errorf("rrd: write magic: %w", err)
	}
	var ver [4]byte
	ver[0] = byte(persistVersion)
	ver[1] = byte(persistVersion >> 8)
	ver[2] = byte(persistVersion >> 16)
	ver[3] = byte(persistVersion >> 24)
	if _, err := w.Write(ver[:]); err != nil {
		return fmt.Errorf("rrd: write version: %w", err)
	}
	snap := snapshot{
		Step:       r.step,
		DS:         r.ds,
		LastUpdate: r.lastUpdate,
		Started:    r.started,
		LastRaw:    r.lastRaw,
		PDPAccum:   r.pdpAccum,
		PDPKnown:   r.pdpKnown,
	}
	for _, a := range r.rras {
		snap.Archives = append(snap.Archives, archiveSnapshot{
			Spec:       a.spec,
			Ring:       a.ring,
			Head:       a.head,
			Filled:     a.filled,
			LastRowEnd: a.lastRowEnd,
			CDPs:       snapshotCDPs(a.cdps),
		})
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("rrd: encode: %w", err)
	}
	return nil
}

// Load deserializes a database written by Save.
func Load(r io.Reader) (*RRD, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("rrd: read magic: %w", err)
	}
	if magic != persistMagic {
		return nil, ErrBadFormat
	}
	var ver [4]byte
	if _, err := io.ReadFull(r, ver[:]); err != nil {
		return nil, fmt.Errorf("rrd: read version: %w", err)
	}
	v := uint32(ver[0]) | uint32(ver[1])<<8 | uint32(ver[2])<<16 | uint32(ver[3])<<24
	if v != persistVersion {
		return nil, fmt.Errorf("rrd: version %d unsupported: %w", v, ErrBadFormat)
	}
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("rrd: decode: %w", err)
	}
	specs := make([]RRASpec, len(snap.Archives))
	for i, a := range snap.Archives {
		specs[i] = a.Spec
	}
	db, err := New(snap.Step, snap.DS, specs)
	if err != nil {
		return nil, fmt.Errorf("rrd: rebuild: %w", err)
	}
	db.lastUpdate = snap.LastUpdate
	db.started = snap.Started
	copy(db.lastRaw, snap.LastRaw)
	copy(db.pdpAccum, snap.PDPAccum)
	copy(db.pdpKnown, snap.PDPKnown)
	for i, a := range snap.Archives {
		db.rras[i].ring = a.Ring
		db.rras[i].head = a.Head
		db.rras[i].filled = a.Filled
		db.rras[i].lastRowEnd = a.LastRowEnd
		db.rras[i].cdps = restoreCDPs(a.CDPs)
	}
	return db, nil
}
