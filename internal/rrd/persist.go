package rrd

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// persistence format: a fixed magic header, a format version, a gob stream
// of the snapshot struct, and (since v2) a CRC32-IEEE footer over everything
// preceding it. The magic guards against feeding arbitrary files to Load;
// the version allows layout changes; the checksum detects torn writes and
// bit rot before gob gets a chance to misdecode them.
var persistMagic = [8]byte{'L', 'A', 'R', 'P', 'R', 'R', 'D', '1'}

const persistVersion uint32 = 2

// ErrBadFormat is returned by Load for unrecognized input.
var ErrBadFormat = errors.New("rrd: unrecognized database format")

// ErrChecksum is returned by Load when the v2 footer does not match the
// file contents — the file is the right format but damaged.
var ErrChecksum = errors.New("rrd: database checksum mismatch")

// snapshot is the serialized form of an RRD.
type snapshot struct {
	Step       int64
	DS         []DS
	LastUpdate int64
	Started    bool
	LastRaw    []float64
	PDPAccum   []float64
	PDPKnown   []int64
	Archives   []archiveSnapshot
}

type archiveSnapshot struct {
	Spec       RRASpec
	Ring       [][]float64
	Head       int
	Filled     int
	LastRowEnd int64
	CDPs       []cdpSnapshot
}

// cdpSnapshot mirrors the unexported cdp accumulator with exported fields
// for gob.
type cdpSnapshot struct {
	Sum     float64
	Known   int
	Unknown int
}

func snapshotCDPs(cs []cdp) []cdpSnapshot {
	out := make([]cdpSnapshot, len(cs))
	for i, c := range cs {
		out[i] = cdpSnapshot{Sum: c.sum, Known: c.known, Unknown: c.unknown}
	}
	return out
}

func restoreCDPs(cs []cdpSnapshot) []cdp {
	out := make([]cdp, len(cs))
	for i, c := range cs {
		out[i] = cdp{sum: c.Sum, known: c.Known, unknown: c.Unknown}
	}
	return out
}

// Save serializes the database in the v2 checksummed format.
func (r *RRD) Save(w io.Writer) error {
	sum := crc32.NewIEEE()
	cw := io.MultiWriter(w, sum)
	if _, err := cw.Write(persistMagic[:]); err != nil {
		return fmt.Errorf("rrd: write magic: %w", err)
	}
	var ver [4]byte
	ver[0] = byte(persistVersion)
	ver[1] = byte(persistVersion >> 8)
	ver[2] = byte(persistVersion >> 16)
	ver[3] = byte(persistVersion >> 24)
	if _, err := cw.Write(ver[:]); err != nil {
		return fmt.Errorf("rrd: write version: %w", err)
	}
	snap := snapshot{
		Step:       r.step,
		DS:         r.ds,
		LastUpdate: r.lastUpdate,
		Started:    r.started,
		LastRaw:    r.lastRaw,
		PDPAccum:   r.pdpAccum,
		PDPKnown:   r.pdpKnown,
	}
	for _, a := range r.rras {
		snap.Archives = append(snap.Archives, archiveSnapshot{
			Spec:       a.spec,
			Ring:       a.ring,
			Head:       a.head,
			Filled:     a.filled,
			LastRowEnd: a.lastRowEnd,
			CDPs:       snapshotCDPs(a.cdps),
		})
	}
	if err := gob.NewEncoder(cw).Encode(&snap); err != nil {
		return fmt.Errorf("rrd: encode: %w", err)
	}
	var foot [4]byte
	c := sum.Sum32()
	foot[0] = byte(c)
	foot[1] = byte(c >> 8)
	foot[2] = byte(c >> 16)
	foot[3] = byte(c >> 24)
	if _, err := w.Write(foot[:]); err != nil {
		return fmt.Errorf("rrd: write checksum: %w", err)
	}
	return nil
}

// Load deserializes a database written by Save. It reads both the current
// v2 checksummed layout and the checksum-less v1 layout written by earlier
// releases.
func Load(r io.Reader) (*RRD, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("rrd: read magic: %w", err)
	}
	if magic != persistMagic {
		return nil, ErrBadFormat
	}
	var ver [4]byte
	if _, err := io.ReadFull(r, ver[:]); err != nil {
		return nil, fmt.Errorf("rrd: read version: %w", err)
	}
	v := uint32(ver[0]) | uint32(ver[1])<<8 | uint32(ver[2])<<16 | uint32(ver[3])<<24
	var body io.Reader
	switch v {
	case 1:
		// v1 had no footer: gob consumes the remainder of the stream.
		body = r
	case persistVersion:
		// gob.Decoder reads ahead, so the footer must be split off before
		// decoding rather than read from the same stream afterwards.
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("rrd: read body: %w", err)
		}
		if len(rest) < 4 {
			return nil, fmt.Errorf("rrd: truncated before checksum: %w", ErrBadFormat)
		}
		payload, foot := rest[:len(rest)-4], rest[len(rest)-4:]
		want := uint32(foot[0]) | uint32(foot[1])<<8 | uint32(foot[2])<<16 | uint32(foot[3])<<24
		sum := crc32.NewIEEE()
		sum.Write(magic[:])
		sum.Write(ver[:])
		sum.Write(payload)
		if sum.Sum32() != want {
			return nil, ErrChecksum
		}
		body = bytes.NewReader(payload)
	default:
		return nil, fmt.Errorf("rrd: version %d unsupported: %w", v, ErrBadFormat)
	}
	var snap snapshot
	if err := gob.NewDecoder(body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("rrd: decode: %w", err)
	}
	specs := make([]RRASpec, len(snap.Archives))
	for i, a := range snap.Archives {
		specs[i] = a.Spec
	}
	db, err := New(snap.Step, snap.DS, specs)
	if err != nil {
		return nil, fmt.Errorf("rrd: rebuild: %w", err)
	}
	db.lastUpdate = snap.LastUpdate
	db.started = snap.Started
	copy(db.lastRaw, snap.LastRaw)
	copy(db.pdpAccum, snap.PDPAccum)
	copy(db.pdpKnown, snap.PDPKnown)
	for i, a := range snap.Archives {
		db.rras[i].ring = a.Ring
		db.rras[i].head = a.Head
		db.rras[i].filled = a.Filled
		db.rras[i].lastRowEnd = a.LastRowEnd
		db.rras[i].cdps = restoreCDPs(a.CDPs)
	}
	return db, nil
}
