package rrd

import (
	"math"
	"strings"
)

// sparkTicks are the eight block glyphs a sparkline is quantized to.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders one data source's values from a fetch result as a
// compact unicode strip — the at-a-glance view monitord prints next to each
// pipeline. Unknown samples render as spaces; a constant series renders at
// mid height.
func Sparkline(rows []Row, ds int) string {
	if len(rows) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		if ds < 0 || ds >= len(r.Values) {
			return ""
		}
		v := r.Values[ds]
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	if math.IsInf(lo, 1) { // all unknown
		return strings.Repeat(" ", len(rows))
	}
	span := hi - lo
	for _, r := range rows {
		v := r.Values[ds]
		if math.IsNaN(v) {
			b.WriteByte(' ')
			continue
		}
		idx := len(sparkTicks) / 2
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkTicks)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkTicks) {
				idx = len(sparkTicks) - 1
			}
		}
		b.WriteRune(sparkTicks[idx])
	}
	return b.String()
}
