package rrd

import (
	"math"
	"testing"
)

func benchDB(b *testing.B) *RRD {
	b.Helper()
	db, err := New(60,
		[]DS{{Name: "g", Type: Gauge, Heartbeat: 300, Min: math.NaN(), Max: math.NaN()}},
		[]RRASpec{
			{CF: Average, XFF: 0.5, Steps: 1, Rows: 2048},
			{CF: Max, XFF: 0.5, Steps: 12, Rows: 512},
		})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkUpdate(b *testing.B) {
	db := benchDB(b)
	if err := db.Update(0, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Update(int64(60*(i+1)), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetch(b *testing.B) {
	db := benchDB(b)
	if err := db.Update(0, 0); err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= 2000; i++ {
		if err := db.Update(int64(60*i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Fetch(Average, 0, 2000*60); err != nil {
			b.Fatal(err)
		}
	}
}
