package rrd

import (
	"fmt"
	"math"
	"strings"
)

// Latest returns the most recent consolidated row for the given CF, or
// ErrNoRecentData when no row has completed yet.
//
// This is the "what is the resource doing right now" query the paper's
// resource manager issues between full profiler extractions.
func (r *RRD) Latest(cf CF) (Row, error) {
	var best *rra
	for _, a := range r.rras {
		if a.spec.CF != cf || a.filled == 0 {
			continue
		}
		// Prefer the finest resolution among archives with data.
		if best == nil || a.spec.Resolution(r.step) < best.spec.Resolution(r.step) {
			best = a
		}
	}
	if best == nil {
		return Row{}, fmt.Errorf("rrd: %s: %w", cf, ErrNoRecentData)
	}
	pos := (best.head - 1 + best.spec.Rows) % best.spec.Rows
	vals := make([]float64, len(best.ring[pos]))
	copy(vals, best.ring[pos])
	return Row{End: best.lastRowEnd, Values: vals}, nil
}

// ErrNoRecentData is returned by Latest before any row has consolidated.
var ErrNoRecentData = fmt.Errorf("rrd: no consolidated data yet")

// Info renders a human-readable summary of the database: step, data
// sources, archives with fill levels, and the last update — the `rrdtool
// info` equivalent operators reach for first.
func (r *RRD) Info() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rrd step=%ds last_update=%d\n", r.step, r.LastUpdate())
	for _, d := range r.ds {
		minStr, maxStr := "U", "U"
		if !math.IsNaN(d.Min) {
			minStr = fmt.Sprintf("%g", d.Min)
		}
		if !math.IsNaN(d.Max) {
			maxStr = fmt.Sprintf("%g", d.Max)
		}
		fmt.Fprintf(&b, "  ds %-16s type=%s heartbeat=%ds min=%s max=%s\n",
			d.Name, d.Type, d.Heartbeat, minStr, maxStr)
	}
	for i, a := range r.rras {
		fmt.Fprintf(&b, "  rra[%d] cf=%s steps=%d rows=%d xff=%g filled=%d/%d span=%ds\n",
			i, a.spec.CF, a.spec.Steps, a.spec.Rows, a.spec.XFF,
			a.filled, a.spec.Rows, retention(a, r.step))
	}
	return b.String()
}
