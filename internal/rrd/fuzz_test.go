package rrd

import (
	"bytes"
	"math"
	"testing"
)

// FuzzLoad checks that arbitrary bytes never panic the persistence decoder.
func FuzzLoad(f *testing.F) {
	// Seed with a valid snapshot and mutations of it.
	db, err := New(60,
		[]DS{{Name: "g", Type: Gauge, Heartbeat: 120, Min: math.NaN(), Max: math.NaN()}},
		[]RRASpec{{CF: Average, XFF: 0.5, Steps: 1, Rows: 8}})
	if err != nil {
		f.Fatal(err)
	}
	if err := db.Update(0, 1); err != nil {
		f.Fatal(err)
	}
	if err := db.Update(60, 2); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("LARPRRD1garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the decoder accepts must be usable.
		if _, err := loaded.Fetch(Average, 0, 1<<30); err != nil && err != ErrNoMatchingCF {
			// Fetch may legitimately fail only on CF mismatch.
			t.Logf("fetch on loaded db: %v", err)
		}
	})
}

// FuzzUpdateSequence feeds arbitrary update sequences and checks invariants:
// no panics, monotonic-time enforcement, and finite consolidation output for
// finite input.
func FuzzUpdateSequence(f *testing.F) {
	f.Add(int64(60), 5.0, int64(120), 10.0)
	f.Add(int64(1), 0.0, int64(2), -3.5)
	f.Add(int64(100), math.MaxFloat64, int64(200), -math.MaxFloat64)
	f.Fuzz(func(t *testing.T, t1 int64, v1 float64, t2 int64, v2 float64) {
		db, err := New(60,
			[]DS{{Name: "g", Type: Gauge, Heartbeat: 600, Min: math.NaN(), Max: math.NaN()}},
			[]RRASpec{{CF: Average, XFF: 0.5, Steps: 1, Rows: 16}})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Update(t1, v1); err != nil {
			t.Fatal(err) // the first update only seeds the clock
		}
		err = db.Update(t2, v2)
		if t2 <= t1 && err == nil {
			t.Fatal("non-monotonic update accepted")
		}
		if t2 > t1 && t2-t1 < 1<<32 && err != nil {
			t.Fatalf("monotonic update rejected: %v", err)
		}
	})
}
