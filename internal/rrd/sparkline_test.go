package rrd

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func rowsOf(vals ...float64) []Row {
	rows := make([]Row, len(vals))
	for i, v := range vals {
		rows[i] = Row{End: int64(i), Values: []float64{v}}
	}
	return rows
}

func TestSparklineShape(t *testing.T) {
	s := Sparkline(rowsOf(0, 1, 2, 3, 4, 5, 6, 7), 0)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("sparkline %q has %d runes", s, utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("monotone ramp rendered %q", s)
	}
	// Monotone input → monotone glyph levels.
	for i := 1; i < len(runes); i++ {
		if strings.IndexRune(string(sparkTicks), runes[i]) < strings.IndexRune(string(sparkTicks), runes[i-1]) {
			t.Fatalf("non-monotone sparkline %q", s)
		}
	}
}

func TestSparklineConstant(t *testing.T) {
	s := Sparkline(rowsOf(5, 5, 5), 0)
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("constant sparkline = %q", s)
	}
	r := []rune(s)
	if r[0] != r[1] || r[1] != r[2] {
		t.Errorf("constant series rendered unevenly: %q", s)
	}
}

func TestSparklineUnknowns(t *testing.T) {
	rows := rowsOf(1, math.NaN(), 3)
	s := Sparkline(rows, 0)
	if []rune(s)[1] != ' ' {
		t.Errorf("NaN rendered as %q", s)
	}
	allNaN := rowsOf(math.NaN(), math.NaN())
	if got := Sparkline(allNaN, 0); got != "  " {
		t.Errorf("all-unknown = %q", got)
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if Sparkline(nil, 0) != "" {
		t.Error("empty rows should render empty")
	}
	if Sparkline(rowsOf(1, 2), 5) != "" {
		t.Error("out-of-range ds should render empty")
	}
}

func TestSparklineFromFetch(t *testing.T) {
	r := simpleRRD(t)
	if err := r.Update(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := r.Update(int64(60*i), float64(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Fetch(Average, 0, 600)
	if err != nil {
		t.Fatal(err)
	}
	s := Sparkline(res.Rows, 0)
	if utf8.RuneCountInString(s) != len(res.Rows) {
		t.Errorf("sparkline %q length mismatch", s)
	}
}
