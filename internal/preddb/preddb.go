// Package preddb implements the paper's prediction database: observed and
// predicted resource-performance values keyed by [vmID, deviceID, timeStamp,
// metricName] (the combinational primary key of paper §3.2), plus the
// Prediction Quality Assuror that "periodically audits the prediction
// performance by calculating the average MSE of historical prediction data
// stored in the prediction DB" and orders retraining when a threshold is
// breached.
package preddb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/timeseries"
)

// Errors returned by the database.
var (
	ErrNoRecords = errors.New("preddb: no matching records")
	ErrBadWindow = errors.New("preddb: invalid audit window")
)

// Key identifies one monitored series, the non-time part of the paper's
// combinational primary key.
type Key struct {
	VM     string
	Device string
	Metric string
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s", k.VM, k.Device, k.Metric)
}

// Record is one timestamped row: the observed value, the prediction that was
// made for that timestamp, and which expert produced it. Either side may be
// absent (observation arrives before the next prediction and vice versa).
type Record struct {
	Time          time.Time
	Observed      float64
	HasObserved   bool
	Predicted     float64
	HasPredicted  bool
	PredictorName string
}

// DB is an in-memory prediction database, safe for concurrent use.
type DB struct {
	mu   sync.RWMutex
	rows map[Key][]Record // sorted by Time
	met  *dbMetrics       // nil when uninstrumented
}

// New returns an empty database.
func New() *DB {
	return &DB{rows: make(map[Key][]Record)}
}

// PutObservation records an observed value for (key, t).
func (db *DB) PutObservation(key Key, t time.Time, v float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r := db.rowAt(key, t)
	r.Observed = v
	r.HasObserved = true
	if db.met != nil {
		db.met.observations.Inc()
	}
}

// PutPrediction records a prediction (and the expert that made it) for
// (key, t) — t being the time the prediction is *for*.
func (db *DB) PutPrediction(key Key, t time.Time, v float64, predictor string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r := db.rowAt(key, t)
	r.Predicted = v
	r.HasPredicted = true
	r.PredictorName = predictor
	if db.met != nil {
		db.met.predictions.Inc()
	}
}

// rowAt returns a pointer to the record for (key, t), inserting in timestamp
// order if absent. Callers hold the write lock.
func (db *DB) rowAt(key Key, t time.Time) *Record {
	rows := db.rows[key]
	i := sort.Search(len(rows), func(i int) bool { return !rows[i].Time.Before(t) })
	if i < len(rows) && rows[i].Time.Equal(t) {
		return &db.rows[key][i]
	}
	rows = append(rows, Record{})
	copy(rows[i+1:], rows[i:])
	rows[i] = Record{Time: t}
	db.rows[key] = rows
	return &db.rows[key][i]
}

// Keys returns every key with at least one record, sorted for determinism.
func (db *DB) Keys() []Key {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]Key, 0, len(db.rows))
	for k := range db.rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].VM != keys[j].VM {
			return keys[i].VM < keys[j].VM
		}
		if keys[i].Device != keys[j].Device {
			return keys[i].Device < keys[j].Device
		}
		return keys[i].Metric < keys[j].Metric
	})
	return keys
}

// Len returns the number of records stored for a key.
func (db *DB) Len(key Key) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.rows[key])
}

// Range returns copies of the records for key with Time in [start, end],
// in time order.
func (db *DB) Range(key Key, start, end time.Time) []Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rows := db.rows[key]
	lo := sort.Search(len(rows), func(i int) bool { return !rows[i].Time.Before(start) })
	hi := sort.Search(len(rows), func(i int) bool { return rows[i].Time.After(end) })
	out := make([]Record, hi-lo)
	copy(out, rows[lo:hi])
	return out
}

// ObservationSeries extracts the observed values in [start, end] as a
// Series. Rows lacking an observation are skipped; the interval is inferred
// from the first two surviving rows.
func (db *DB) ObservationSeries(key Key, start, end time.Time) (*timeseries.Series, error) {
	recs := db.Range(key, start, end)
	var (
		values []float64
		times  []time.Time
	)
	for _, r := range recs {
		if r.HasObserved {
			values = append(values, r.Observed)
			times = append(times, r.Time)
		}
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("preddb: %s: %w", key, ErrNoRecords)
	}
	interval := time.Second
	if len(times) > 1 {
		interval = times[1].Sub(times[0])
	}
	name := fmt.Sprintf("%s_%s", key.VM, key.Metric)
	return timeseries.New(name, times[0], interval, values), nil
}

// AuditMSE computes the mean squared prediction error over the most recent
// `window` records of key that carry both an observation and a prediction.
// It returns the MSE and how many records it covered.
func (db *DB) AuditMSE(key Key, window int) (float64, int, error) {
	if window < 1 {
		return 0, 0, fmt.Errorf("preddb: window %d: %w", window, ErrBadWindow)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	rows := db.rows[key]
	var (
		sumSq float64
		n     int
	)
	for i := len(rows) - 1; i >= 0 && n < window; i-- {
		r := rows[i]
		if !r.HasObserved || !r.HasPredicted {
			continue
		}
		d := r.Predicted - r.Observed
		sumSq += d * d
		n++
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("preddb: %s: %w", key, ErrNoRecords)
	}
	return sumSq / float64(n), n, nil
}

// Assuror is the Prediction Quality Assuror: it audits a key's recent
// prediction MSE against a threshold and invokes the retrain callback when
// the threshold is breached.
type Assuror struct {
	db *DB
	// Window is the number of scored predictions each audit covers.
	Window int
	// Threshold is the MSE above which the Assuror orders retraining.
	Threshold float64
	// OnRetrain is called with the offending key and its audit MSE.
	OnRetrain func(key Key, mse float64)
}

// NewAssuror builds a QA bound to db.
func NewAssuror(db *DB, window int, threshold float64, onRetrain func(Key, float64)) (*Assuror, error) {
	if window < 1 {
		return nil, fmt.Errorf("preddb: window %d: %w", window, ErrBadWindow)
	}
	return &Assuror{db: db, Window: window, Threshold: threshold, OnRetrain: onRetrain}, nil
}

// Audit checks one key; it reports whether retraining was ordered, and the
// audit MSE. Keys with no scored predictions do not fire.
func (a *Assuror) Audit(key Key) (fired bool, mse float64) {
	met := a.db.metrics()
	if met != nil {
		met.audits.Inc()
	}
	m, n, err := a.db.AuditMSE(key, a.Window)
	if err != nil || n < a.Window {
		return false, m
	}
	if m > a.Threshold {
		if met != nil {
			met.auditFires.Inc()
		}
		if a.OnRetrain != nil {
			a.OnRetrain(key, m)
		}
		return true, m
	}
	return false, m
}

// AuditAll audits every key in the database, returning those that fired.
func (a *Assuror) AuditAll() []Key {
	var fired []Key
	for _, k := range a.db.Keys() {
		if ok, _ := a.Audit(k); ok {
			fired = append(fired, k)
		}
	}
	return fired
}
