package preddb

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

var (
	t0   = time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC)
	key1 = Key{VM: "VM1", Device: "NIC1", Metric: "received"}
	key2 = Key{VM: "VM2", Device: "VD1", Metric: "read"}
)

func at(i int) time.Time { return t0.Add(time.Duration(i) * 5 * time.Minute) }

func TestPutAndRange(t *testing.T) {
	db := New()
	db.PutObservation(key1, at(1), 10)
	db.PutPrediction(key1, at(1), 12, "AR")
	db.PutObservation(key1, at(0), 5) // out-of-order insert
	db.PutPrediction(key1, at(2), 20, "LAST")

	recs := db.Range(key1, at(0), at(2))
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if !recs[0].Time.Equal(at(0)) || !recs[2].Time.Equal(at(2)) {
		t.Fatal("records not in time order")
	}
	r1 := recs[1]
	if !r1.HasObserved || r1.Observed != 10 || !r1.HasPredicted || r1.Predicted != 12 || r1.PredictorName != "AR" {
		t.Errorf("merged record = %+v", r1)
	}
	if recs[2].HasObserved {
		t.Error("prediction-only record claims an observation")
	}
	if db.Len(key1) != 3 || db.Len(key2) != 0 {
		t.Error("Len wrong")
	}
}

func TestRangeBounds(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		db.PutObservation(key1, at(i), float64(i))
	}
	recs := db.Range(key1, at(3), at(6))
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (inclusive bounds)", len(recs))
	}
	if recs[0].Observed != 3 || recs[3].Observed != 6 {
		t.Error("wrong bounds")
	}
	if len(db.Range(key2, at(0), at(9))) != 0 {
		t.Error("unknown key returned records")
	}
}

func TestKeysSorted(t *testing.T) {
	db := New()
	db.PutObservation(key2, at(0), 1)
	db.PutObservation(key1, at(0), 1)
	db.PutObservation(Key{VM: "VM1", Device: "NIC1", Metric: "transmitted"}, at(0), 1)
	keys := db.Keys()
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	if keys[0] != key1 || keys[2] != key2 {
		t.Errorf("keys order = %v", keys)
	}
}

func TestObservationSeries(t *testing.T) {
	db := New()
	for i := 0; i < 5; i++ {
		db.PutObservation(key1, at(i), float64(10*i))
	}
	db.PutPrediction(key1, at(5), 99, "AR") // no observation: excluded
	s, err := db.ObservationSeries(key1, at(0), at(5))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("series has %d values", s.Len())
	}
	if s.Interval != 5*time.Minute {
		t.Errorf("interval = %v", s.Interval)
	}
	if s.At(4) != 40 {
		t.Errorf("values = %v", s.Values)
	}
	if _, err := db.ObservationSeries(key2, at(0), at(5)); !errors.Is(err, ErrNoRecords) {
		t.Errorf("empty key err = %v", err)
	}
}

func TestAuditMSE(t *testing.T) {
	db := New()
	// 4 scored rows with errors 1, 2, 3, 4.
	for i := 1; i <= 4; i++ {
		db.PutObservation(key1, at(i), 0)
		db.PutPrediction(key1, at(i), float64(i), "AR")
	}
	// Unscored rows must be ignored.
	db.PutPrediction(key1, at(5), 100, "AR")
	db.PutObservation(key1, at(6), 100)

	mse, n, err := db.AuditMSE(key1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("covered %d rows, want 4", n)
	}
	want := (1.0 + 4 + 9 + 16) / 4
	if math.Abs(mse-want) > 1e-12 {
		t.Errorf("MSE = %g, want %g", mse, want)
	}
	// Window limits to most recent scored rows (errors 3 and 4).
	mse, n, err = db.AuditMSE(key1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || math.Abs(mse-(9.0+16)/2) > 1e-12 {
		t.Errorf("windowed MSE = %g over %d", mse, n)
	}
	if _, _, err := db.AuditMSE(key1, 0); !errors.Is(err, ErrBadWindow) {
		t.Error("window 0 accepted")
	}
	if _, _, err := db.AuditMSE(key2, 5); !errors.Is(err, ErrNoRecords) {
		t.Error("empty key audit did not error")
	}
}

func TestAssurorFiresAboveThreshold(t *testing.T) {
	db := New()
	var firedKey Key
	var firedMSE float64
	calls := 0
	qa, err := NewAssuror(db, 3, 1.0, func(k Key, mse float64) {
		firedKey, firedMSE = k, mse
		calls++
	})
	if err != nil {
		t.Fatal(err)
	}

	// Accurate predictions: no fire.
	for i := 0; i < 3; i++ {
		db.PutObservation(key1, at(i), 10)
		db.PutPrediction(key1, at(i), 10.1, "LAST")
	}
	if fired, _ := qa.Audit(key1); fired {
		t.Error("QA fired on accurate predictions")
	}

	// Bad predictions push the window MSE over threshold.
	for i := 3; i < 6; i++ {
		db.PutObservation(key1, at(i), 10)
		db.PutPrediction(key1, at(i), 20, "LAST")
	}
	fired, mse := qa.Audit(key1)
	if !fired {
		t.Fatal("QA did not fire")
	}
	if calls != 1 || firedKey != key1 || firedMSE != mse {
		t.Errorf("callback: calls=%d key=%v mse=%g", calls, firedKey, firedMSE)
	}
}

func TestAssurorNeedsFullWindow(t *testing.T) {
	db := New()
	qa, err := NewAssuror(db, 5, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only 2 scored rows — fewer than the window: must not fire even with
	// terrible error.
	for i := 0; i < 2; i++ {
		db.PutObservation(key1, at(i), 0)
		db.PutPrediction(key1, at(i), 100, "AR")
	}
	if fired, _ := qa.Audit(key1); fired {
		t.Error("QA fired on a partial window")
	}
}

func TestAssurorAuditAll(t *testing.T) {
	db := New()
	qa, err := NewAssuror(db, 2, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		db.PutObservation(key1, at(i), 0)
		db.PutPrediction(key1, at(i), 10, "AR") // bad
		db.PutObservation(key2, at(i), 0)
		db.PutPrediction(key2, at(i), 0.1, "AR") // good
	}
	fired := qa.AuditAll()
	if len(fired) != 1 || fired[0] != key1 {
		t.Errorf("fired = %v", fired)
	}
	if _, err := NewAssuror(db, 0, 1, nil); !errors.Is(err, ErrBadWindow) {
		t.Error("bad window accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.PutObservation(key1, at(i), float64(i))
				db.PutPrediction(key1, at(i), float64(i)+1, "AR")
				db.Range(key1, at(0), at(i))
				db.AuditMSE(key1, 5)
			}
		}(w)
	}
	wg.Wait()
	if db.Len(key1) != 200 {
		t.Errorf("records = %d, want 200 (idempotent merge)", db.Len(key1))
	}
}
