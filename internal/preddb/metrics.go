package preddb

import "github.com/acis-lab/larpredictor/internal/obs"

// dbMetrics holds the prediction database's instruments, pre-bound at
// Instrument time. A nil *dbMetrics disables everything behind a single
// branch.
type dbMetrics struct {
	// observations/predictions count rows written by the two put paths.
	observations *obs.Counter
	predictions  *obs.Counter
	// saves counts successful persistence snapshots of the database.
	saves *obs.Counter
	// pruned counts records dropped by retention pruning.
	pruned *obs.Counter
	// audits counts QA audits run against the database; auditFires counts
	// the subset that breached the threshold and ordered retraining.
	audits     *obs.Counter
	auditFires *obs.Counter
}

// Instrument binds the database's instrument families on r (or a labeled
// scope of one — see obs.Registry.With). Assurors bound to this database
// report their audit counters through it too. A nil registry leaves the
// database uninstrumented at zero cost.
func (db *DB) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	m := &dbMetrics{
		observations: r.Counter1("larpredictor_preddb_observations_total",
			"Observed values recorded in the prediction database."),
		predictions: r.Counter1("larpredictor_preddb_predictions_total",
			"Predictions recorded in the prediction database."),
		saves: r.Counter1("larpredictor_preddb_saves_total",
			"Successful prediction-database persistence snapshots."),
		pruned: r.Counter1("larpredictor_preddb_pruned_records_total",
			"Records dropped by retention pruning."),
		audits: r.Counter1("larpredictor_qa_audits_total",
			"QA audits run against the prediction database."),
		auditFires: r.Counter1("larpredictor_qa_audit_fires_total",
			"QA audits that breached the MSE threshold and ordered retraining."),
	}
	db.mu.Lock()
	db.met = m
	db.mu.Unlock()
}

// metrics returns the bound instrument set (nil when uninstrumented)
// without racing Instrument.
func (db *DB) metrics() *dbMetrics {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.met
}
