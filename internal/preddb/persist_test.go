package preddb

import (
	"bytes"
	"errors"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		db.PutObservation(key1, at(i), float64(i))
		db.PutPrediction(key1, at(i), float64(i)+0.5, "AR")
		db.PutObservation(key2, at(i), float64(2*i))
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Keys()) != 2 {
		t.Fatalf("keys = %v", loaded.Keys())
	}
	a := db.Range(key1, at(0), at(9))
	b := loaded.Range(key1, at(0), at(9))
	if len(a) != len(b) {
		t.Fatalf("records %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Loaded DB keeps working.
	loaded.PutObservation(key1, at(10), 99)
	if loaded.Len(key1) != 11 {
		t.Error("loaded DB rejected new writes")
	}
	mse, n, err := loaded.AuditMSE(key1, 5)
	if err != nil || n != 5 || mse != 0.25 {
		t.Errorf("audit on loaded DB: mse=%g n=%d err=%v", mse, n, err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage data here......"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("garbage err = %v", err)
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	var buf bytes.Buffer
	buf.Write(persistMagic[:])
	buf.Write([]byte{9, 9, 9, 9})
	if _, err := Load(&buf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad version err = %v", err)
	}
}

func TestLoadTruncated(t *testing.T) {
	db := New()
	for i := 0; i < 8; i++ {
		db.PutObservation(key1, at(i), float64(i))
		db.PutPrediction(key1, at(i), float64(i)+0.25, "AR")
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every short read fails cleanly: mid-magic, mid-version, mid-gob, and
	// with the checksum footer cut off.
	cuts := []struct {
		name string
		n    int
	}{
		{"empty", 0},
		{"mid-magic", 3},
		{"magic-only", 8},
		{"mid-version", 11},
		{"header-only", 12},
		{"mid-gob", 12 + (len(full)-16)/2},
		{"missing-footer", len(full) - 4},
		{"partial-footer", len(full) - 1},
	}
	for _, c := range cuts {
		if _, err := Load(bytes.NewReader(full[:c.n])); err == nil {
			t.Errorf("%s (%d bytes) accepted", c.name, c.n)
		}
	}
}

func TestLoadChecksumMismatch(t *testing.T) {
	db := New()
	for i := 0; i < 8; i++ {
		db.PutObservation(key1, at(i), float64(i))
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, off := range []int{12, len(full) / 2, len(full) - 5, len(full) - 1} {
		bad := append([]byte(nil), full...)
		bad[off] ^= 0x40
		if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
			t.Errorf("flip at %d: err = %v, want ErrChecksum", off, err)
		}
	}
}

func TestLoadV1Compat(t *testing.T) {
	db := New()
	for i := 0; i < 6; i++ {
		db.PutObservation(key1, at(i), float64(i))
		db.PutPrediction(key2, at(i), float64(i)+1, "MEAN")
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Rewrite the v2 file as the legacy v1 layout: same gob payload, version
	// byte 1, no footer.
	full := buf.Bytes()
	v1 := append([]byte(nil), full[:len(full)-4]...)
	v1[8] = 1
	loaded, err := Load(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	for _, k := range []Key{key1, key2} {
		a := db.Range(k, at(0), at(5))
		b := loaded.Range(k, at(0), at(5))
		if len(a) != len(b) {
			t.Fatalf("v1 key %v: %d vs %d records", k, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("v1 record %d differs: %+v vs %+v", i, b[i], a[i])
			}
		}
	}
}

func TestPrune(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		db.PutObservation(key1, at(i), float64(i))
	}
	db.PutObservation(key2, at(0), 1) // fully-pruned key

	removed := db.Prune(at(5))
	if removed != 6 { // key1 rows 0..4 plus key2 row 0
		t.Errorf("removed = %d, want 6", removed)
	}
	if db.Len(key1) != 5 {
		t.Errorf("key1 rows = %d, want 5", db.Len(key1))
	}
	if db.Len(key2) != 0 {
		t.Error("fully-pruned key still has rows")
	}
	recs := db.Range(key1, at(0), at(9))
	if len(recs) != 5 || !recs[0].Time.Equal(at(5)) {
		t.Errorf("surviving records = %+v", recs)
	}
	// Pruning nothing.
	if n := db.Prune(at(0)); n != 0 {
		t.Errorf("no-op prune removed %d", n)
	}
}
