package preddb

import (
	"bytes"
	"errors"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		db.PutObservation(key1, at(i), float64(i))
		db.PutPrediction(key1, at(i), float64(i)+0.5, "AR")
		db.PutObservation(key2, at(i), float64(2*i))
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Keys()) != 2 {
		t.Fatalf("keys = %v", loaded.Keys())
	}
	a := db.Range(key1, at(0), at(9))
	b := loaded.Range(key1, at(0), at(9))
	if len(a) != len(b) {
		t.Fatalf("records %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Loaded DB keeps working.
	loaded.PutObservation(key1, at(10), 99)
	if loaded.Len(key1) != 11 {
		t.Error("loaded DB rejected new writes")
	}
	mse, n, err := loaded.AuditMSE(key1, 5)
	if err != nil || n != 5 || mse != 0.25 {
		t.Errorf("audit on loaded DB: mse=%g n=%d err=%v", mse, n, err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage data here......"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("garbage err = %v", err)
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	var buf bytes.Buffer
	buf.Write(persistMagic[:])
	buf.Write([]byte{9, 9, 9, 9})
	if _, err := Load(&buf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad version err = %v", err)
	}
}

func TestPrune(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		db.PutObservation(key1, at(i), float64(i))
	}
	db.PutObservation(key2, at(0), 1) // fully-pruned key

	removed := db.Prune(at(5))
	if removed != 6 { // key1 rows 0..4 plus key2 row 0
		t.Errorf("removed = %d, want 6", removed)
	}
	if db.Len(key1) != 5 {
		t.Errorf("key1 rows = %d, want 5", db.Len(key1))
	}
	if db.Len(key2) != 0 {
		t.Error("fully-pruned key still has rows")
	}
	recs := db.Range(key1, at(0), at(9))
	if len(recs) != 5 || !recs[0].Time.Equal(at(5)) {
		t.Errorf("surviving records = %+v", recs)
	}
	// Pruning nothing.
	if n := db.Prune(at(0)); n != 0 {
		t.Errorf("no-op prune removed %d", n)
	}
}
