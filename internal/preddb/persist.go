package preddb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"time"
)

// persistence format: magic header, version, gob stream — same scheme as
// internal/rrd so operators can identify the files.
var persistMagic = [8]byte{'L', 'A', 'R', 'P', 'P', 'D', 'B', '1'}

const persistVersion uint32 = 1

// ErrBadFormat is returned by Load for unrecognized input.
var ErrBadFormat = errors.New("preddb: unrecognized database format")

// snapshot is the serialized form.
type snapshot struct {
	Keys []Key
	Rows [][]Record
}

// Save serializes the database. It holds the read lock for the duration.
func (db *DB) Save(w io.Writer) error {
	if _, err := w.Write(persistMagic[:]); err != nil {
		return fmt.Errorf("preddb: write magic: %w", err)
	}
	var ver [4]byte
	ver[0] = byte(persistVersion)
	ver[1] = byte(persistVersion >> 8)
	ver[2] = byte(persistVersion >> 16)
	ver[3] = byte(persistVersion >> 24)
	if _, err := w.Write(ver[:]); err != nil {
		return fmt.Errorf("preddb: write version: %w", err)
	}

	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := snapshot{}
	for k, rows := range db.rows {
		snap.Keys = append(snap.Keys, k)
		cp := make([]Record, len(rows))
		copy(cp, rows)
		snap.Rows = append(snap.Rows, cp)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("preddb: encode: %w", err)
	}
	return nil
}

// Load deserializes a database written by Save.
func Load(r io.Reader) (*DB, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("preddb: read magic: %w", err)
	}
	if magic != persistMagic {
		return nil, ErrBadFormat
	}
	var ver [4]byte
	if _, err := io.ReadFull(r, ver[:]); err != nil {
		return nil, fmt.Errorf("preddb: read version: %w", err)
	}
	v := uint32(ver[0]) | uint32(ver[1])<<8 | uint32(ver[2])<<16 | uint32(ver[3])<<24
	if v != persistVersion {
		return nil, fmt.Errorf("preddb: version %d unsupported: %w", v, ErrBadFormat)
	}
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("preddb: decode: %w", err)
	}
	if len(snap.Keys) != len(snap.Rows) {
		return nil, fmt.Errorf("preddb: corrupt snapshot (%d keys, %d row sets): %w",
			len(snap.Keys), len(snap.Rows), ErrBadFormat)
	}
	db := New()
	for i, k := range snap.Keys {
		db.rows[k] = snap.Rows[i]
	}
	return db, nil
}

// Prune drops records older than cutoff for every key, returning how many
// records were removed. The prediction DB grows forever otherwise; the
// paper's RRD bounds raw samples the same way.
func (db *DB) Prune(cutoff time.Time) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	removed := 0
	for k, rows := range db.rows {
		i := 0
		for i < len(rows) && rows[i].Time.Before(cutoff) {
			i++
		}
		if i == 0 {
			continue
		}
		removed += i
		if i == len(rows) {
			delete(db.rows, k)
			continue
		}
		kept := make([]Record, len(rows)-i)
		copy(kept, rows[i:])
		db.rows[k] = kept
	}
	return removed
}
