package preddb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// persistence format: magic header, version, gob stream, and (since v2) a
// CRC32-IEEE footer over everything preceding it — same scheme as
// internal/rrd so operators can identify the files.
var persistMagic = [8]byte{'L', 'A', 'R', 'P', 'P', 'D', 'B', '1'}

const persistVersion uint32 = 2

// ErrBadFormat is returned by Load for unrecognized input.
var ErrBadFormat = errors.New("preddb: unrecognized database format")

// ErrChecksum is returned by Load when the v2 footer does not match the
// file contents — the file is the right format but damaged.
var ErrChecksum = errors.New("preddb: database checksum mismatch")

// snapshot is the serialized form.
type snapshot struct {
	Keys []Key
	Rows [][]Record
}

// Save serializes the database in the v2 checksummed format. It holds the
// read lock for the duration.
func (db *DB) Save(w io.Writer) error {
	sum := crc32.NewIEEE()
	cw := io.MultiWriter(w, sum)
	if _, err := cw.Write(persistMagic[:]); err != nil {
		return fmt.Errorf("preddb: write magic: %w", err)
	}
	var ver [4]byte
	ver[0] = byte(persistVersion)
	ver[1] = byte(persistVersion >> 8)
	ver[2] = byte(persistVersion >> 16)
	ver[3] = byte(persistVersion >> 24)
	if _, err := cw.Write(ver[:]); err != nil {
		return fmt.Errorf("preddb: write version: %w", err)
	}

	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := snapshot{}
	for k, rows := range db.rows {
		snap.Keys = append(snap.Keys, k)
		cp := make([]Record, len(rows))
		copy(cp, rows)
		snap.Rows = append(snap.Rows, cp)
	}
	if err := gob.NewEncoder(cw).Encode(&snap); err != nil {
		return fmt.Errorf("preddb: encode: %w", err)
	}
	var foot [4]byte
	c := sum.Sum32()
	foot[0] = byte(c)
	foot[1] = byte(c >> 8)
	foot[2] = byte(c >> 16)
	foot[3] = byte(c >> 24)
	if _, err := w.Write(foot[:]); err != nil {
		return fmt.Errorf("preddb: write checksum: %w", err)
	}
	if db.met != nil {
		db.met.saves.Inc()
	}
	return nil
}

// Load deserializes a database written by Save. It reads both the current
// v2 checksummed layout and the checksum-less v1 layout written by earlier
// releases.
func Load(r io.Reader) (*DB, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("preddb: read magic: %w", err)
	}
	if magic != persistMagic {
		return nil, ErrBadFormat
	}
	var ver [4]byte
	if _, err := io.ReadFull(r, ver[:]); err != nil {
		return nil, fmt.Errorf("preddb: read version: %w", err)
	}
	v := uint32(ver[0]) | uint32(ver[1])<<8 | uint32(ver[2])<<16 | uint32(ver[3])<<24
	var body io.Reader
	switch v {
	case 1:
		// v1 had no footer: gob consumes the remainder of the stream.
		body = r
	case persistVersion:
		// gob.Decoder reads ahead, so the footer must be split off before
		// decoding rather than read from the same stream afterwards.
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("preddb: read body: %w", err)
		}
		if len(rest) < 4 {
			return nil, fmt.Errorf("preddb: truncated before checksum: %w", ErrBadFormat)
		}
		payload, foot := rest[:len(rest)-4], rest[len(rest)-4:]
		want := uint32(foot[0]) | uint32(foot[1])<<8 | uint32(foot[2])<<16 | uint32(foot[3])<<24
		sum := crc32.NewIEEE()
		sum.Write(magic[:])
		sum.Write(ver[:])
		sum.Write(payload)
		if sum.Sum32() != want {
			return nil, ErrChecksum
		}
		body = bytes.NewReader(payload)
	default:
		return nil, fmt.Errorf("preddb: version %d unsupported: %w", v, ErrBadFormat)
	}
	var snap snapshot
	if err := gob.NewDecoder(body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("preddb: decode: %w", err)
	}
	if len(snap.Keys) != len(snap.Rows) {
		return nil, fmt.Errorf("preddb: corrupt snapshot (%d keys, %d row sets): %w",
			len(snap.Keys), len(snap.Rows), ErrBadFormat)
	}
	db := New()
	for i, k := range snap.Keys {
		db.rows[k] = snap.Rows[i]
	}
	return db, nil
}

// Prune drops records older than cutoff for every key, returning how many
// records were removed. The prediction DB grows forever otherwise; the
// paper's RRD bounds raw samples the same way.
func (db *DB) Prune(cutoff time.Time) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	removed := 0
	for k, rows := range db.rows {
		i := 0
		for i < len(rows) && rows[i].Time.Before(cutoff) {
			i++
		}
		if i == 0 {
			continue
		}
		removed += i
		if i == len(rows) {
			delete(db.rows, k)
			continue
		}
		kept := make([]Record, len(rows)-i)
		copy(kept, rows[i:])
		db.rows[k] = kept
	}
	if db.met != nil && removed > 0 {
		db.met.pruned.Add(uint64(removed))
	}
	return removed
}
