package preddb

import (
	"bytes"
	"testing"
)

// FuzzLoad checks that arbitrary bytes never panic the persistence decoder,
// mirroring internal/rrd's fuzz coverage.
func FuzzLoad(f *testing.F) {
	// Seed with a valid snapshot and mutations of it.
	db := New()
	for i := 0; i < 5; i++ {
		db.PutObservation(key1, at(i), float64(i))
		db.PutPrediction(key1, at(i), float64(i)+0.5, "AR")
		db.PutObservation(key2, at(i), float64(3*i))
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-4]) // footer cut off
	f.Add([]byte("LARPPDB1garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the decoder accepts must be usable.
		for _, k := range loaded.Keys() {
			loaded.Range(k, at(0), at(100))
			loaded.Len(k)
		}
		loaded.PutObservation(key1, at(1000), 1)
		if loaded.Len(key1) == 0 {
			t.Fatal("loaded DB rejected writes")
		}
	})
}
