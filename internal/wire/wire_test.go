package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/durable"
)

func testSamples(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{
			Stream: fmt.Sprintf("vm%d/cpu", i%4),
			TS:     int64(i) - 2, // exercise negative zigzag
			Value:  float64(i) * 1.5,
			Seq:    uint64(100 + i),
		}
	}
	return out
}

func TestCodecBatchRoundTrip(t *testing.T) {
	var enc Encoder
	var dec BatchDecoder
	want := testSamples(9)
	frame := enc.AppendBatch(nil, 42, "src-a", want)

	payload, rest, ok := durable.SplitRecord(frame, DefaultMaxFrame)
	if !ok || len(rest) != 0 {
		t.Fatalf("SplitRecord ok=%v rest=%d", ok, len(rest))
	}
	if payload[0] != FrameBatch {
		t.Fatalf("frame type = %#x", payload[0])
	}
	id, source, got, err := dec.Decode(payload[1:])
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || source != "src-a" || len(got) != len(want) {
		t.Fatalf("decoded id=%d source=%q n=%d", id, source, len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestCodecAckRoundTrip(t *testing.T) {
	var enc Encoder
	in := Ack{BatchID: 7, Status: StatusBacklog, Accepted: 3, Deduped: 2, Msg: "busy"}
	frame := enc.AppendAck(nil, in)
	payload, _, ok := durable.SplitRecord(frame, DefaultMaxFrame)
	if !ok || payload[0] != FrameAck {
		t.Fatalf("bad ack frame")
	}
	out, err := ParseAck(payload[1:])
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v want %+v", out, in)
	}
}

func TestDecodeRejectsTruncationAndTrailer(t *testing.T) {
	var enc Encoder
	var dec BatchDecoder
	frame := enc.AppendBatch(nil, 1, "s", testSamples(4))
	payload, _, _ := durable.SplitRecord(frame, DefaultMaxFrame)
	body := payload[1:]
	for cut := 0; cut < len(body); cut++ {
		if _, _, _, err := dec.Decode(body[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		} else if !errors.Is(err, ErrProtocol) {
			t.Fatalf("truncation at %d: %v not ErrProtocol", cut, err)
		}
	}
	if _, _, _, err := dec.Decode(append(append([]byte(nil), body...), 0xff)); err == nil {
		t.Fatal("trailing byte decoded")
	}
}

// startServer runs a wire.Server over a real listener and returns its addr.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func TestServerEndToEnd(t *testing.T) {
	var total atomic.Int64
	_, addr := startServer(t, ServerConfig{
		Ingest: func(source string, samples []Sample) Ack {
			total.Add(int64(len(samples)))
			return Ack{Status: StatusOK, Accepted: len(samples)}
		},
	})
	ctx := context.Background()
	conn, err := Dial(ctx, addr, ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Version() != MaxVersion {
		t.Fatalf("version %d", conn.Version())
	}
	for i := 0; i < 5; i++ {
		ack, err := conn.Ingest(ctx, "src", testSamples(10))
		if err != nil {
			t.Fatal(err)
		}
		if ack.Status != StatusOK || ack.Accepted != 10 {
			t.Fatalf("ack %+v", ack)
		}
	}
	if got := total.Load(); got != 50 {
		t.Fatalf("ingested %d samples, want 50", got)
	}
}

func TestServerPipelinedAcksMatchByID(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Ingest: func(source string, samples []Sample) Ack {
			// Echo the first seq back through Accepted so each ack is
			// distinguishable per batch.
			return Ack{Status: StatusOK, Accepted: int(samples[0].Seq)}
		},
	})
	ctx := context.Background()
	conn, err := Dial(ctx, addr, ConnConfig{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 64
	pendings := make([]*Pending, n)
	for i := 0; i < n; i++ {
		p, err := conn.Send(ctx, "src", []Sample{{Stream: "s", Seq: uint64(i + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		pendings[i] = p
	}
	for i, p := range pendings {
		ack, err := p.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ack.Status != StatusOK || ack.Accepted != i+1 {
			t.Fatalf("batch %d ack %+v", i, ack)
		}
	}
}

func TestServerDrainingShortCircuits(t *testing.T) {
	called := false
	_, addr := startServer(t, ServerConfig{
		Ingest:   func(string, []Sample) Ack { called = true; return Ack{Status: StatusOK} },
		Draining: func() bool { return true },
	})
	ctx := context.Background()
	conn, err := Dial(ctx, addr, ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ack, err := conn.Ingest(ctx, "src", testSamples(1))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Status != StatusDraining || !ack.Status.Retryable() {
		t.Fatalf("ack %+v", ack)
	}
	if called {
		t.Fatal("Ingest called while draining")
	}
}

// rawHandshake dials and handshakes by hand so tests can misbehave.
func rawHandshake(t *testing.T, addr string, offer uint16) (net.Conn, uint16) {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeHandshake(nc, offer); err != nil {
		t.Fatal(err)
	}
	got, err := readHandshake(nc)
	if err != nil {
		t.Fatal(err)
	}
	return nc, got
}

func TestHandshakeVersionSkew(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Ingest: func(string, []Sample) Ack { return Ack{Status: StatusOK} },
	})
	// A newer client is clamped to the server's max, not rejected.
	nc, got := rawHandshake(t, addr, MaxVersion+7)
	if got != MaxVersion {
		t.Fatalf("offer %d negotiated %d, want %d", MaxVersion+7, got, MaxVersion)
	}
	// The clamped connection still works.
	var enc Encoder
	if _, err := nc.Write(enc.AppendBatch(nil, 1, "s", testSamples(1))); err != nil {
		t.Fatal(err)
	}
	payload, _, err := durable.ReadRecord(bufio.NewReader(nc), nil, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != FrameAck {
		t.Fatalf("frame %#x", payload[0])
	}

	// An offer below MinVersion is answered with version 0, then closed.
	nc2, got2 := rawHandshake(t, addr, 0)
	if got2 != 0 {
		t.Fatalf("offer 0 negotiated %d, want reject", got2)
	}
	if _, err := nc2.Read(make([]byte, 1)); err == nil {
		t.Fatal("rejected connection stayed open")
	}
}

func TestBadMagicClosesConnection(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Ingest: func(string, []Sample) Ack { return Ack{Status: StatusOK} },
	})
	nc, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Write([]byte("HTTP/1.1 GET /v1/ingest")); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("bad-magic connection stayed open")
	}
}

// TestCorruptFrameNeverAcked is the mis-ack guard: after a checksum-corrupt
// frame the server must close without acking it — acking would claim an
// outcome for a batch ID it cannot trust.
func TestCorruptFrameNeverAcked(t *testing.T) {
	var calls atomic.Int64
	_, addr := startServer(t, ServerConfig{
		Ingest: func(string, []Sample) Ack {
			calls.Add(1)
			return Ack{Status: StatusOK, Accepted: 1}
		},
	})
	nc, got := rawHandshake(t, addr, MaxVersion)
	if got != MaxVersion {
		t.Fatal("handshake failed")
	}
	var enc Encoder
	good := enc.AppendBatch(nil, 1, "s", testSamples(1))
	bad := enc.AppendBatch(nil, 2, "s", testSamples(1))
	bad[len(bad)-1] ^= 0xff // break the checksum
	if _, err := nc.Write(append(append([]byte(nil), good...), bad...)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	var acks []Ack
	var buf []byte
	var payload []byte
	var rerr error
	for {
		payload, buf, rerr = durable.ReadRecord(br, buf, DefaultMaxFrame)
		if rerr != nil {
			break // connection closed (possibly after an Error frame)
		}
		switch payload[0] {
		case FrameAck:
			a, err := ParseAck(payload[1:])
			if err != nil {
				t.Fatal(err)
			}
			acks = append(acks, a)
		case FrameError:
			if !strings.Contains(string(payload[1:]), "record") {
				t.Fatalf("error frame %q does not mention the record failure", payload[1:])
			}
		default:
			t.Fatalf("unexpected frame %#x", payload[0])
		}
	}
	if len(acks) != 1 || acks[0].BatchID != 1 {
		t.Fatalf("acks %+v: exactly batch 1 must be acked, batch 2 never", acks)
	}
	if calls.Load() != 1 {
		t.Fatalf("ingest called %d times, want 1", calls.Load())
	}
}

// TestOversizedFrameRejected: a length field beyond the cap is treated as
// corruption, never an allocation.
func TestOversizedFrameRejected(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Ingest:        func(string, []Sample) Ack { return Ack{Status: StatusOK} },
		MaxFrameBytes: 1 << 10,
	})
	nc, _ := rawHandshake(t, addr, MaxVersion)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		nc.SetReadDeadline(deadline)
		if _, err := nc.Read(make([]byte, 256)); err != nil {
			if errors.Is(err, io.EOF) {
				return // server closed, as required
			}
			t.Fatalf("read: %v", err)
		}
	}
}

// TestConnResendAfterClose: batches unacked when the connection dies resolve
// as ErrConnClosed so the caller knows to resend.
func TestConnResendAfterClose(t *testing.T) {
	block := make(chan struct{})
	_, addr := startServer(t, ServerConfig{
		Ingest: func(string, []Sample) Ack {
			<-block
			return Ack{Status: StatusOK}
		},
	})
	ctx := context.Background()
	conn, err := Dial(ctx, addr, ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := conn.Send(ctx, "src", testSamples(1))
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := p.Wait(ctx); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Wait after close: %v, want ErrConnClosed", err)
	}
	close(block)
}

// TestServerDecodeZeroAlloc locks the acceptance criterion: the steady-state
// server decode path (record read + batch decode) allocates nothing once the
// intern table and buffers are warm.
func TestServerDecodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	var enc Encoder
	var stream []byte
	const frames = 16
	for i := 0; i < frames; i++ {
		stream = enc.AppendBatch(stream, uint64(i+1), "src", testSamples(32))
	}
	var dec BatchDecoder
	var buf []byte
	rd := bytes.NewReader(nil)
	br := bufio.NewReaderSize(nil, 64<<10)
	decodeAll := func() {
		rd.Reset(stream)
		br.Reset(rd)
		for {
			payload, nbuf, err := durable.ReadRecord(br, buf, DefaultMaxFrame)
			buf = nbuf
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := dec.Decode(payload[1:]); err != nil {
				t.Fatal(err)
			}
		}
	}
	decodeAll() // warm the intern table and buffers
	if avg := testing.AllocsPerRun(50, decodeAll); avg != 0 {
		t.Fatalf("server decode path allocates %.1f allocs per pass, want 0", avg)
	}
}
