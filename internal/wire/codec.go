package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/acis-lab/larpredictor/internal/durable"
)

// Frame payload encodings (everything after the 1-byte frame type).
//
// Batch: uvarint batchID, uvarint len(source) + source bytes, uvarint count,
// then per sample: uvarint len(stream) + stream bytes, zigzag-varint TS,
// 8-byte LE float64 bits, uvarint seq. One source per batch — the batching
// client already groups by source, and it keeps the hot decode loop free of
// per-sample source strings.
//
// Ack: uvarint batchID, 1-byte status, uvarint accepted, uvarint deduped,
// uvarint len(msg) + msg bytes.
//
// Error: message bytes, verbatim.
//
// The varint vocabulary is the same one the predictd WAL batch codec uses,
// so the wire batch is within a few bytes of the durable form.

// maxSamplesPerBatch bounds a decoded batch before any per-sample work: a
// count that cannot fit the remaining payload even at the minimum sample
// size is corruption, not an allocation request.
const maxSamplesPerBatch = 1 << 20

// minSampleLen is the smallest encodable sample: 1-byte stream length (empty
// stream), 1-byte TS, 8-byte value, 1-byte seq.
const minSampleLen = 11

// maxInterned caps the decoder's stream/source intern table. Past it the
// table resets; a fleet cycling through more than this many distinct stream
// IDs per connection pays an allocation per fresh name, nothing worse.
const maxInterned = 1 << 16

// Encoder builds framed wire messages. The zero value is ready; it keeps one
// scratch buffer so steady-state encoding allocates nothing. Not safe for
// concurrent use.
type Encoder struct {
	scratch []byte
}

// AppendBatch appends a complete Batch frame (record framing included) to
// dst and returns the extended slice.
func (e *Encoder) AppendBatch(dst []byte, batchID uint64, source string, samples []Sample) []byte {
	p := append(e.scratch[:0], FrameBatch)
	p = binary.AppendUvarint(p, batchID)
	p = binary.AppendUvarint(p, uint64(len(source)))
	p = append(p, source...)
	p = binary.AppendUvarint(p, uint64(len(samples)))
	for i := range samples {
		s := &samples[i]
		p = binary.AppendUvarint(p, uint64(len(s.Stream)))
		p = append(p, s.Stream...)
		p = binary.AppendVarint(p, s.TS)
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(s.Value))
		p = binary.AppendUvarint(p, s.Seq)
	}
	e.scratch = p
	return durable.AppendRecord(dst, p)
}

// AppendAck appends a complete Ack frame to dst and returns the extended
// slice.
func (e *Encoder) AppendAck(dst []byte, ack Ack) []byte {
	p := append(e.scratch[:0], FrameAck)
	p = binary.AppendUvarint(p, ack.BatchID)
	p = append(p, byte(ack.Status))
	p = binary.AppendUvarint(p, uint64(ack.Accepted))
	p = binary.AppendUvarint(p, uint64(ack.Deduped))
	p = binary.AppendUvarint(p, uint64(len(ack.Msg)))
	p = append(p, ack.Msg...)
	e.scratch = p
	return durable.AppendRecord(dst, p)
}

// AppendError appends a complete Error frame to dst and returns the extended
// slice.
func (e *Encoder) AppendError(dst []byte, msg string) []byte {
	p := append(e.scratch[:0], FrameError)
	p = append(p, msg...)
	e.scratch = p
	return durable.AppendRecord(dst, p)
}

// BatchDecoder decodes Batch frame payloads with zero steady-state
// allocations: stream and source names are interned per decoder (one
// allocation the first time each distinct name appears), and the sample
// slice is reused across calls. The decoded batch aliases that slice — it is
// valid until the next Decode. Not safe for concurrent use; the server keeps
// one per connection.
type BatchDecoder struct {
	names   map[string]string
	samples []Sample
}

func (d *BatchDecoder) intern(b []byte) string {
	if d.names == nil {
		d.names = make(map[string]string, 64)
	}
	// The string(b) map key does not allocate on lookup; only a miss pays
	// for the copy that the table then retains.
	if s, ok := d.names[string(b)]; ok {
		return s
	}
	if len(d.names) >= maxInterned {
		d.names = make(map[string]string, 64)
	}
	s := string(b)
	d.names[s] = s
	return s
}

// Decode parses a Batch frame payload (without its leading frame-type byte,
// which the caller has already consumed to dispatch here). Every decode
// error wraps ErrProtocol: a batch that does not parse cannot be acked,
// because its ID cannot be trusted.
func (d *BatchDecoder) Decode(payload []byte) (batchID uint64, source string, samples []Sample, err error) {
	p := payload
	batchID, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, "", nil, fmt.Errorf("%w: batch id", ErrProtocol)
	}
	p = p[n:]
	srcLen, n := binary.Uvarint(p)
	if n <= 0 || srcLen > uint64(len(p[n:])) {
		return 0, "", nil, fmt.Errorf("%w: source length", ErrProtocol)
	}
	source = d.intern(p[n : n+int(srcLen)])
	p = p[n+int(srcLen):]
	count, n := binary.Uvarint(p)
	if n <= 0 || count > maxSamplesPerBatch || count*minSampleLen > uint64(len(p[n:])) {
		return 0, "", nil, fmt.Errorf("%w: sample count", ErrProtocol)
	}
	p = p[n:]
	if cap(d.samples) < int(count) {
		d.samples = make([]Sample, count)
	}
	out := d.samples[:count]
	for i := range out {
		streamLen, n := binary.Uvarint(p)
		if n <= 0 || streamLen > uint64(len(p[n:])) {
			return 0, "", nil, fmt.Errorf("%w: sample %d stream", ErrProtocol, i)
		}
		out[i].Stream = d.intern(p[n : n+int(streamLen)])
		p = p[n+int(streamLen):]
		ts, n := binary.Varint(p)
		if n <= 0 {
			return 0, "", nil, fmt.Errorf("%w: sample %d ts", ErrProtocol, i)
		}
		out[i].TS = ts
		p = p[n:]
		if len(p) < 8 {
			return 0, "", nil, fmt.Errorf("%w: sample %d value", ErrProtocol, i)
		}
		out[i].Value = math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
		seq, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, "", nil, fmt.Errorf("%w: sample %d seq", ErrProtocol, i)
		}
		out[i].Seq = seq
		p = p[n:]
	}
	if len(p) != 0 {
		return 0, "", nil, fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(p))
	}
	return batchID, source, out, nil
}

// ParseAck parses an Ack frame payload (without its frame-type byte).
func ParseAck(payload []byte) (Ack, error) {
	var a Ack
	p := payload
	id, n := binary.Uvarint(p)
	if n <= 0 {
		return a, fmt.Errorf("%w: ack batch id", ErrProtocol)
	}
	a.BatchID = id
	p = p[n:]
	if len(p) < 1 {
		return a, fmt.Errorf("%w: ack status", ErrProtocol)
	}
	a.Status = Status(p[0])
	p = p[1:]
	acc, n := binary.Uvarint(p)
	if n <= 0 || acc > maxSamplesPerBatch {
		return a, fmt.Errorf("%w: ack accepted", ErrProtocol)
	}
	a.Accepted = int(acc)
	p = p[n:]
	ded, n := binary.Uvarint(p)
	if n <= 0 || ded > maxSamplesPerBatch {
		return a, fmt.Errorf("%w: ack deduped", ErrProtocol)
	}
	a.Deduped = int(ded)
	p = p[n:]
	msgLen, n := binary.Uvarint(p)
	if n <= 0 || msgLen != uint64(len(p[n:])) {
		return a, fmt.Errorf("%w: ack message", ErrProtocol)
	}
	a.Msg = string(p[n:])
	return a, nil
}
