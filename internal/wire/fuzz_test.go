package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"github.com/acis-lab/larpredictor/internal/durable"
)

func mathBits(v float64) uint64 { return math.Float64bits(v) }

// FuzzWireDecode throws arbitrary bytes at the server's frame pipeline —
// record framing, frame-type dispatch, batch decode, ack parse. The
// invariants under fuzz: never panic, never accept a frame whose checksum
// fails, and any batch that does decode re-encodes to a byte-identical
// frame (so an ack can never be attached to a batch ID the codec only
// half-understood).
func FuzzWireDecode(f *testing.F) {
	var enc Encoder
	f.Add(enc.AppendBatch(nil, 1, "src", []Sample{{Stream: "vm/cpu", TS: 9, Value: 1.5, Seq: 3}}))
	f.Add(enc.AppendAck(nil, Ack{BatchID: 2, Status: StatusBacklog, Accepted: 1, Deduped: 1, Msg: "m"}))
	f.Add(enc.AppendError(nil, "boom"))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	truncated := enc.AppendBatch(nil, 7, "s", []Sample{{Stream: "x"}})
	f.Add(truncated[:len(truncated)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var dec BatchDecoder
		var buf []byte
		for {
			payload, nbuf, err := durable.ReadRecord(br, buf, DefaultMaxFrame)
			buf = nbuf
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, durable.ErrRecord) {
					t.Fatalf("ReadRecord: unexpected error class %v", err)
				}
				return
			}
			if len(payload) == 0 {
				continue
			}
			switch payload[0] {
			case FrameBatch:
				id, source, samples, err := dec.Decode(payload[1:])
				if err != nil {
					if !errors.Is(err, ErrProtocol) {
						t.Fatalf("Decode: unexpected error class %v", err)
					}
					continue
				}
				// A decodable batch must re-encode to the identical frame:
				// the codec understood every byte it acked.
				var re Encoder
				reframed := re.AppendBatch(nil, id, source, samples)
				rp, rest, ok := durable.SplitRecord(reframed, DefaultMaxFrame)
				if !ok || len(rest) != 0 {
					t.Fatal("re-encoded frame does not reframe")
				}
				if !bytes.Equal(rp[1:], payload[1:]) {
					t.Fatalf("re-encode mismatch:\n in %x\nout %x", payload[1:], rp[1:])
				}
			case FrameAck:
				if _, err := ParseAck(payload[1:]); err != nil && !errors.Is(err, ErrProtocol) {
					t.Fatalf("ParseAck: unexpected error class %v", err)
				}
			}
		}
	})
}

// FuzzWireRoundTrip builds a structurally valid batch from fuzzed primitives
// and requires exact encode → decode identity, including the corner values
// (negative timestamps, NaN bit patterns, empty strings, huge seqs).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint64(1), "src", "vm/cpu", int64(-5), 3.14, uint64(9), uint8(3))
	f.Add(uint64(0), "", "", int64(0), 0.0, uint64(0), uint8(0))
	f.Add(^uint64(0), "s", "t", int64(1)<<62, -1e308, ^uint64(0), uint8(200))

	f.Fuzz(func(t *testing.T, batchID uint64, source, stream string, ts int64, value float64, seq uint64, n uint8) {
		samples := make([]Sample, int(n)%33)
		for i := range samples {
			samples[i] = Sample{
				Stream: stream,
				TS:     ts + int64(i),
				Value:  value,
				Seq:    seq + uint64(i),
			}
		}
		var enc Encoder
		frame := enc.AppendBatch(nil, batchID, source, samples)
		payload, rest, ok := durable.SplitRecord(frame, uint32(len(frame)))
		if !ok || len(rest) != 0 || payload[0] != FrameBatch {
			t.Fatalf("encoded frame does not parse: ok=%v rest=%d", ok, len(rest))
		}
		var dec BatchDecoder
		id, src, got, err := dec.Decode(payload[1:])
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if id != batchID || src != source || len(got) != len(samples) {
			t.Fatalf("round trip header: id=%d src=%q n=%d", id, src, len(got))
		}
		for i := range samples {
			w, g := samples[i], got[i]
			// NaN != NaN: compare values through their bit patterns.
			if g.Stream != w.Stream || g.TS != w.TS || g.Seq != w.Seq ||
				mathBits(g.Value) != mathBits(w.Value) {
				t.Fatalf("sample %d: got %+v want %+v", i, g, w)
			}
		}

		// Acks round-trip through the same framing.
		ack := Ack{BatchID: batchID, Status: Status(n % 5), Accepted: len(samples), Deduped: int(n) % 7, Msg: source}
		aframe := enc.AppendAck(nil, ack)
		ap, _, ok := durable.SplitRecord(aframe, uint32(len(aframe)))
		if !ok || ap[0] != FrameAck {
			t.Fatal("encoded ack does not parse")
		}
		back, err := ParseAck(ap[1:])
		if err != nil {
			t.Fatalf("ack round trip: %v", err)
		}
		if back != ack {
			t.Fatalf("ack got %+v want %+v", back, ack)
		}
	})
}
