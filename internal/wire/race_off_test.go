//go:build !race

package wire

// raceEnabled reports that the race detector is instrumenting this build.
const raceEnabled = false
