package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/durable"
	"github.com/acis-lab/larpredictor/internal/obs"
)

// ServerConfig configures a binary ingest listener.
type ServerConfig struct {
	// Ingest is called once per decoded batch with the interned source and
	// the decoded samples. The samples slice is reused after Ingest returns;
	// implementations that keep samples past the call must copy (the
	// predictd bridge hands them straight to engine IngestBatch, which
	// copies into the shard rings). Required. BatchID and Msg on the
	// returned Ack are managed by the server; implementations fill Status,
	// Accepted, and Deduped.
	Ingest func(source string, samples []Sample) Ack
	// Draining, when set, short-circuits batches with StatusDraining without
	// calling Ingest — the binary twin of the HTTP 503 drain check.
	Draining func() bool
	// MaxFrameBytes caps a frame payload (default DefaultMaxFrame).
	MaxFrameBytes int
	// HandshakeTimeout bounds how long an accepted connection may take to
	// complete the handshake (default 5s).
	HandshakeTimeout time.Duration
	// Registry receives the wire metrics; nil disables instrumentation.
	Registry *obs.Registry
	// Logw receives one line per rejected or failed connection; nil
	// silences.
	Logw io.Writer
}

// Server accepts persistent binary ingest connections and pumps decoded
// batches into the configured Ingest callback. Each connection is one
// goroutine running decode → ingest → ack; acks are buffered and flushed
// when the reader has no further frame already buffered, so a pipelining
// client pays one syscall per burst, not per batch.
type Server struct {
	cfg ServerConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	mConns     *obs.Gauge
	mBatches   *obs.Counter
	mSamples   *obs.Counter
	mProtoErrs *obs.Counter
	// mAcks holds the per-status ack counters, resolved once so the hot
	// ack path never touches the registry.
	mAcks [StatusInvalid + 1]*obs.Counter
}

// NewServer validates cfg and returns a Server ready to Serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Ingest == nil {
		return nil, errors.New("wire: ServerConfig.Ingest is required")
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrame
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	r := cfg.Registry
	s := &Server{
		cfg:        cfg,
		conns:      make(map[net.Conn]struct{}),
		mConns:     r.Gauge1("predictd_wire_connections", "Open binary ingest connections."),
		mBatches:   r.Counter1("predictd_wire_batches_total", "Batch frames decoded on the binary ingest listener."),
		mSamples:   r.Counter1("predictd_wire_samples_total", "Samples decoded on the binary ingest listener."),
		mProtoErrs: r.Counter1("predictd_wire_protocol_errors_total", "Binary ingest connections dropped for protocol violations (bad magic, version reject, corrupt or undecodable frames)."),
	}
	acks := r.Counter("predictd_wire_acks_total", "Binary ingest acks by status.", "status")
	for st := StatusOK; st <= StatusInvalid; st++ {
		s.mAcks[st] = acks.WithLabels(st.String())
	}
	return s, nil
}

// Serve accepts connections on ln until Close. It returns nil after Close,
// or the accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// Close stops accepting, closes every open connection, and waits for the
// per-connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logw != nil {
		fmt.Fprintf(s.cfg.Logw, "wire: "+format+"\n", args...)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
	s.wg.Done()
}

func (s *Server) handleConn(c net.Conn) {
	defer s.dropConn(c)
	defer func() {
		// An ingest-callback panic must not take the daemon down; the
		// connection dies, the client resends elsewhere, keys dedup.
		if p := recover(); p != nil {
			s.logf("connection %s: panic: %v", c.RemoteAddr(), p)
		}
	}()

	c.SetDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	offer, err := readHandshake(c)
	if err != nil {
		s.mProtoErrs.Inc()
		s.logf("connection %s: %v", c.RemoteAddr(), err)
		return
	}
	version := negotiate(offer)
	if err := writeHandshake(c, version); err != nil {
		s.logf("connection %s: handshake write: %v", c.RemoteAddr(), err)
		return
	}
	if version == 0 {
		s.mProtoErrs.Inc()
		s.logf("connection %s: rejected version offer %d (speak %d..%d)", c.RemoteAddr(), offer, MinVersion, MaxVersion)
		return
	}
	c.SetDeadline(time.Time{})

	s.mConns.Add(1)
	defer s.mConns.Add(-1)

	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var (
		enc     Encoder
		dec     BatchDecoder
		readBuf []byte
		payload []byte
		ackBuf  []byte
	)
	fail := func(msg string) {
		s.mProtoErrs.Inc()
		s.logf("connection %s: %s", c.RemoteAddr(), msg)
		// Best-effort terminal error frame so a live peer learns why,
		// bounded so a dead one cannot wedge the goroutine.
		c.SetWriteDeadline(time.Now().Add(2 * time.Second))
		bw.Write(enc.AppendError(ackBuf[:0], msg))
		bw.Flush()
	}
	for {
		payload, readBuf, err = durable.ReadRecord(br, readBuf, uint32(s.cfg.MaxFrameBytes))
		if err != nil {
			if errors.Is(err, io.EOF) {
				return // clean close between frames
			}
			if errors.Is(err, durable.ErrRecord) {
				// Corrupt frame: the batch ID inside cannot be trusted, so
				// never ack — close and let the client resend everything
				// unacked. The keys make the resend exactly-once.
				fail(err.Error())
			}
			return
		}
		if len(payload) == 0 {
			fail("empty frame")
			return
		}
		switch payload[0] {
		case FrameBatch:
			batchID, source, samples, derr := dec.Decode(payload[1:])
			if derr != nil {
				fail(derr.Error())
				return
			}
			s.mBatches.Inc()
			s.mSamples.Add(uint64(len(samples)))
			var ack Ack
			if s.cfg.Draining != nil && s.cfg.Draining() {
				ack = Ack{Status: StatusDraining, Msg: "draining"}
			} else {
				ack = s.cfg.Ingest(source, samples)
			}
			ack.BatchID = batchID
			if int(ack.Status) < len(s.mAcks) {
				s.mAcks[ack.Status].Inc()
			}
			ackBuf = enc.AppendAck(ackBuf[:0], ack)
			if _, err := bw.Write(ackBuf); err != nil {
				return
			}
			// Flush only when no further frame is already buffered: a
			// pipelining client gets its acks coalesced, a synchronous one
			// gets each ack immediately.
			if br.Buffered() == 0 {
				if err := bw.Flush(); err != nil {
					return
				}
			}
		case FrameError:
			s.logf("connection %s: peer error: %s", c.RemoteAddr(), payload[1:])
			return
		default:
			fail(fmt.Sprintf("unknown frame type 0x%02x", payload[0]))
			return
		}
	}
}
