// Package wire implements predictd's persistent-connection binary ingest
// protocol: the fast path past HTTP/JSON decode for collectors that push at
// engine speed.
//
// A connection opens with a fixed handshake — the client sends the 8-byte
// protocol magic plus the highest version it speaks (uint16 little-endian);
// the server answers with the same magic plus the chosen version,
// min(client, server). Version 0 in the reply means the server rejects the
// connection (unknown magic is simply closed). After the handshake every
// message in both directions is one CRC-framed record in exactly the
// internal/durable batch-WAL record format:
//
//	[uint32 LE length][payload][uint32 LE crc32-IEEE(length+payload)]
//
// The first payload byte is the frame type. Clients send Batch frames (one
// ingest batch, single source, client-assigned (source, seq) idempotency keys
// per sample); servers answer each with an Ack frame carrying the batch ID,
// a status, and accepted/deduped counts — the same accounting the HTTP
// response body carries. Acks are pipelined: a client may keep a window of
// unacknowledged batches in flight and match acks back by batch ID. Either
// side sends an Error frame before closing when the peer violates the
// protocol; a frame that fails its checksum cannot be trusted enough even to
// extract a batch ID, so the receiver never acks it — it closes, and the
// sender treats every unacked batch as unknown-outcome and resends (safe
// because the keys dedup).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic opens the handshake in both directions. The trailing '1' names the
// handshake format, not the protocol version, which is negotiated explicitly.
var Magic = [8]byte{'L', 'A', 'R', 'P', 'W', 'I', 'R', '1'}

// Protocol versions this build speaks. A server offered a newer version
// clamps to MaxVersion; one offered an older version below MinVersion
// rejects with version 0.
const (
	MinVersion uint16 = 1
	MaxVersion uint16 = 1
)

// handshakeLen is the byte length of each handshake half: magic + uint16.
const handshakeLen = len(Magic) + 2

// Frame types (first payload byte of every record).
const (
	FrameBatch byte = 0x01 // client → server: one ingest batch
	FrameAck   byte = 0x02 // server → client: outcome for one batch
	FrameError byte = 0x03 // either direction: terminal protocol error, then close
)

// DefaultMaxFrame caps a frame payload, mirroring the HTTP ingest body limit.
// Both sides enforce it; a length above the cap is a protocol error, not an
// allocation request.
const DefaultMaxFrame = 1 << 20

// Status is the per-batch ack outcome. The mapping mirrors the HTTP ingest
// status codes so a client can share one retry policy across transports.
type Status uint8

const (
	// StatusOK: the batch is accepted (and, on a WAL-mode server, durable).
	StatusOK Status = 0
	// StatusBacklog: engine backpressure, the HTTP 429. Retry after a pause;
	// the batch was not applied.
	StatusBacklog Status = 1
	// StatusDraining: the server is shutting down or closed, the HTTP 503 +
	// drain. Retry against another endpoint.
	StatusDraining Status = 2
	// StatusRetry: a transient server-side failure (cluster forward failed,
	// internal error), the HTTP 5xx. Safe to resend: keys dedup anything
	// that did land.
	StatusRetry Status = 3
	// StatusInvalid: the batch was decoded but is unacceptable (e.g. over
	// the sample cap). Non-retryable, the HTTP 4xx.
	StatusInvalid Status = 4
)

// Retryable reports whether a client should resend the batch unchanged.
func (s Status) Retryable() bool {
	switch s {
	case StatusBacklog, StatusDraining, StatusRetry:
		return true
	}
	return false
}

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBacklog:
		return "backlog"
	case StatusDraining:
		return "draining"
	case StatusRetry:
		return "retry"
	case StatusInvalid:
		return "invalid"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Sample is one keyed observation on the wire: the engine sample plus the
// (source, seq) idempotency key half that, with the batch's source, makes
// retries exactly-once on a WAL-mode server.
type Sample struct {
	Stream string
	TS     int64
	Value  float64
	Seq    uint64
}

// Ack is the server's outcome for one batch, matched to its Batch frame by
// ID. Accepted and Deduped carry the same accounting as the HTTP response
// body; Msg is human-readable detail for non-OK statuses.
type Ack struct {
	BatchID  uint64
	Status   Status
	Accepted int
	Deduped  int
	Msg      string
}

// ErrProtocol marks a peer protocol violation: bad magic, an unknown frame
// type, an undecodable payload. The connection is unusable after it.
var ErrProtocol = errors.New("wire: protocol error")

// writeHandshake emits one handshake half (magic + version).
func writeHandshake(w io.Writer, version uint16) error {
	var buf [10]byte
	copy(buf[:], Magic[:])
	binary.LittleEndian.PutUint16(buf[8:], version)
	_, err := w.Write(buf[:handshakeLen])
	return err
}

// readHandshake consumes one handshake half and returns the peer's version.
func readHandshake(r io.Reader) (uint16, error) {
	var buf [10]byte
	if _, err := io.ReadFull(r, buf[:handshakeLen]); err != nil {
		return 0, fmt.Errorf("wire: handshake read: %w", err)
	}
	if [8]byte(buf[:8]) != Magic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrProtocol, buf[:8])
	}
	return binary.LittleEndian.Uint16(buf[8:]), nil
}

// negotiate picks the server-side version for a client offer: min(offer,
// MaxVersion), or 0 (reject) when the offer predates MinVersion.
func negotiate(offer uint16) uint16 {
	if offer < MinVersion {
		return 0
	}
	if offer > MaxVersion {
		return MaxVersion
	}
	return offer
}
