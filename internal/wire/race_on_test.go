//go:build race

package wire

// raceEnabled reports that the race detector is instrumenting this build;
// its shadow-memory bookkeeping allocates, so zero-allocation assertions
// are skipped under -race.
const raceEnabled = true
