package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/acis-lab/larpredictor/internal/durable"
)

// ErrConnClosed reports that the connection died (peer close, network error,
// or local Close) with the batch outcome unknown. Batches in flight when it
// happens were never acked — the caller resends them, over this transport or
// HTTP, and the (source, seq) keys dedup whatever did land.
var ErrConnClosed = errors.New("wire: connection closed")

// ConnConfig configures a client connection.
type ConnConfig struct {
	// DialTimeout bounds dial + handshake (default 5s).
	DialTimeout time.Duration
	// Window caps unacknowledged batches in flight; Send blocks when the
	// window is full (default 16).
	Window int
	// MaxFrameBytes caps received frame payloads (default DefaultMaxFrame).
	MaxFrameBytes int
}

// Pending is the ack handle for one sent batch.
type Pending struct {
	ack  chan Ack
	conn *Conn
}

// Wait blocks for the batch's ack, the connection dying, or ctx.
func (p *Pending) Wait(ctx context.Context) (Ack, error) {
	select {
	case a := <-p.ack:
		return a, nil
	case <-p.conn.dead:
		// The ack may have been resolved concurrently with the connection
		// dying; prefer it, the outcome is real.
		select {
		case a := <-p.ack:
			return a, nil
		default:
		}
		return Ack{}, fmt.Errorf("%w: %v", ErrConnClosed, p.conn.deadErr())
	case <-ctx.Done():
		return Ack{}, ctx.Err()
	}
}

// Conn is a client connection speaking the binary ingest protocol. Sends are
// pipelined: Send transmits immediately (blocking only while the in-flight
// window is full) and returns a Pending resolved by the reader goroutine
// when the matching ack arrives. Safe for concurrent use.
type Conn struct {
	c       net.Conn
	version uint16
	window  chan struct{}
	maxFr   uint32

	wmu    sync.Mutex // serializes writers
	bw     *bufio.Writer
	enc    Encoder
	sendBf []byte
	nextID uint64

	pmu     sync.Mutex
	pending map[uint64]*Pending

	dead     chan struct{}
	deadOnce sync.Once
	errMu    sync.Mutex
	err      error
}

// Dial connects, handshakes, and starts the ack reader.
func Dial(ctx context.Context, addr string, cfg ConnConfig) (*Conn, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrame
	}
	dctx, cancel := context.WithTimeout(ctx, cfg.DialTimeout)
	defer cancel()
	var d net.Dialer
	nc, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	nc.SetDeadline(time.Now().Add(cfg.DialTimeout))
	if err := writeHandshake(nc, MaxVersion); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake %s: %w", addr, err)
	}
	version, err := readHandshake(nc)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake %s: %w", addr, err)
	}
	if version == 0 || version < MinVersion || version > MaxVersion {
		nc.Close()
		return nil, fmt.Errorf("%w: server chose unsupported version %d", ErrProtocol, version)
	}
	nc.SetDeadline(time.Time{})
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Conn{
		c:       nc,
		version: version,
		window:  make(chan struct{}, cfg.Window),
		maxFr:   uint32(cfg.MaxFrameBytes),
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]*Pending),
		dead:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Version reports the negotiated protocol version.
func (c *Conn) Version() uint16 { return c.version }

func (c *Conn) deadErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.err == nil {
		return errors.New("closed")
	}
	return c.err
}

func (c *Conn) fail(err error) {
	c.deadOnce.Do(func() {
		c.errMu.Lock()
		c.err = err
		c.errMu.Unlock()
		close(c.dead)
		c.c.Close()
	})
}

// Close tears the connection down. Unacked batches resolve as ErrConnClosed.
func (c *Conn) Close() error {
	c.fail(errors.New("locally closed"))
	return nil
}

// Dead returns a channel closed when the connection dies.
func (c *Conn) Dead() <-chan struct{} { return c.dead }

func (c *Conn) readLoop() {
	br := bufio.NewReaderSize(c.c, 64<<10)
	var buf []byte
	var payload []byte
	var err error
	for {
		payload, buf, err = durable.ReadRecord(br, buf, c.maxFr)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				c.fail(fmt.Errorf("server closed connection"))
			} else {
				c.fail(err)
			}
			return
		}
		if len(payload) == 0 {
			c.fail(fmt.Errorf("%w: empty frame", ErrProtocol))
			return
		}
		switch payload[0] {
		case FrameAck:
			ack, perr := ParseAck(payload[1:])
			if perr != nil {
				c.fail(perr)
				return
			}
			c.pmu.Lock()
			p := c.pending[ack.BatchID]
			delete(c.pending, ack.BatchID)
			c.pmu.Unlock()
			if p != nil {
				p.ack <- ack
				<-c.window // release the in-flight slot
			}
		case FrameError:
			c.fail(fmt.Errorf("%w: server error: %s", ErrProtocol, payload[1:]))
			return
		default:
			c.fail(fmt.Errorf("%w: unexpected frame type 0x%02x", ErrProtocol, payload[0]))
			return
		}
	}
}

// Send transmits one batch and returns its ack handle. It blocks while the
// in-flight window is full. The samples slice is fully encoded before Send
// returns; the caller may reuse it.
func (c *Conn) Send(ctx context.Context, source string, samples []Sample) (*Pending, error) {
	select {
	case c.window <- struct{}{}:
	case <-c.dead:
		return nil, fmt.Errorf("%w: %v", ErrConnClosed, c.deadErr())
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	p := &Pending{ack: make(chan Ack, 1), conn: c}

	c.wmu.Lock()
	c.nextID++
	id := c.nextID
	c.pmu.Lock()
	c.pending[id] = p
	c.pmu.Unlock()
	c.sendBf = c.enc.AppendBatch(c.sendBf[:0], id, source, samples)
	_, werr := c.bw.Write(c.sendBf)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()

	if werr != nil {
		c.fail(fmt.Errorf("write: %w", werr))
		return nil, fmt.Errorf("%w: %v", ErrConnClosed, werr)
	}
	return p, nil
}

// Ingest sends one batch and waits for its ack: the synchronous convenience
// for callers without their own pipelining (cluster owner-forwarding).
func (c *Conn) Ingest(ctx context.Context, source string, samples []Sample) (Ack, error) {
	p, err := c.Send(ctx, source, samples)
	if err != nil {
		return Ack{}, err
	}
	return p.Wait(ctx)
}
