package wire_test

// End-to-end transport comparison: the same predictd ingest pipeline
// (server.IngestKeyed -> engine enqueue) fed over HTTP/JSON and over the
// framed binary protocol. External test package so the harness can compose
// internal/server on top of internal/wire the way cmd/predictd does.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/engine"
	"github.com/acis-lab/larpredictor/internal/server"
	"github.com/acis-lab/larpredictor/internal/wire"
)

const (
	benchBatchLen = 256
	benchStreams  = 64
	benchWindow   = 16
)

// newBenchEngine builds the engine all three sub-benchmarks share. A huge
// TrainSize keeps every stream in the cheap accumulation phase for the
// whole run: the benchmark compares transports, so per-sample predictor
// compute — identical for both — is kept off the scale (it would otherwise
// dominate on small machines). No OnResult hook for the same reason.
func newBenchEngine(b *testing.B) *engine.Engine {
	b.Helper()
	shards := runtime.GOMAXPROCS(0)
	if shards > 8 {
		shards = 8
	}
	eng, err := engine.New(engine.Config{
		Shards:     shards,
		QueueDepth: 1 << 15,
		NewStream: func(string) (*core.Online, error) {
			return core.NewOnline(core.OnlineConfig{
				Predictor:   core.DefaultConfig(5),
				TrainSize:   1 << 20,
				MaxHistory:  1 << 20,
				AuditWindow: 6,
			})
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// startBenchDaemon builds the real ingest stack — engine, server, HTTP
// listener, wire listener — and returns both transport addresses.
func startBenchDaemon(b *testing.B) (httpAddr, binAddr string) {
	b.Helper()
	cache := server.NewResultCache()
	eng := newBenchEngine(b)
	srv, err := server.New(server.Config{Engine: eng, Cache: cache})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	wsrv, err := wire.NewServer(wire.ServerConfig{Ingest: srv.BinaryIngest, Logw: io.Discard})
	if err != nil {
		b.Fatal(err)
	}
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go wsrv.Serve(bln)
	b.Cleanup(func() {
		wsrv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		cancel()
		eng.Close()
	})
	return ln.Addr().String(), bln.Addr().String()
}

func benchStreamNames() []string {
	names := make([]string, benchStreams)
	for i := range names {
		names[i] = fmt.Sprintf("bench/stream-%02d", i)
	}
	return names
}

// reportLatencies emits p50/p99 ack latency for one transport run.
func reportLatencies(b *testing.B, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p := func(q float64) float64 {
		idx := int(q * float64(len(lats)-1))
		return float64(lats[idx])
	}
	b.ReportMetric(p(0.50), "p50-ack-ns")
	b.ReportMetric(p(0.99), "p99-ack-ns")
}

// BenchmarkIngestBinaryVsJSON measures end-to-end ingest throughput of the
// two transports against the identical server pipeline: sequential
// HTTP/JSON batches versus pipelined binary frames. One op is one sample,
// so ns/op is the per-sample cost the benchguard gate locks in; samples/sec
// and ack-latency percentiles are reported alongside.
//
// transport=none is the raw in-process engine ingest rate — the ceiling no
// transport can beat. The saturation claim reads directly off the output:
// transport=binary's ns/op should sit within a few tens of ns of
// transport=none (the wire protocol's whole overhead), while
// transport=json sits an order of magnitude above both.
func BenchmarkIngestBinaryVsJSON(b *testing.B) {
	b.Run("transport=none", func(b *testing.B) {
		eng := newBenchEngine(b)
		b.Cleanup(func() { eng.Close() })
		streams := benchStreamNames()
		batch := make([]engine.Sample, benchBatchLen)
		var ts int64
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; done += benchBatchLen {
			n := benchBatchLen
			if rem := b.N - done; rem < n {
				n = rem
			}
			run := batch[:n]
			for i := range run {
				ts++
				run[i] = engine.Sample{
					ID: streams[int(ts)%benchStreams], TS: ts, Value: float64(ts % 97),
				}
			}
			if _, err := eng.IngestBatch(run); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
	})

	b.Run("transport=json", func(b *testing.B) {
		httpAddr, _ := startBenchDaemon(b)
		streams := benchStreamNames()
		url := "http://" + httpAddr + "/v1/ingest"
		hc := &http.Client{}
		var lats []time.Duration
		var ts int64
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; done += benchBatchLen {
			n := benchBatchLen
			if rem := b.N - done; rem < n {
				n = rem
			}
			req := server.IngestRequest{Source: "bench-json", Samples: make([]server.IngestSample, n)}
			for i := range req.Samples {
				ts++
				req.Samples[i] = server.IngestSample{
					Stream: streams[int(ts)%benchStreams], TS: ts, Value: float64(ts % 97),
				}
			}
			body, err := json.Marshal(req)
			if err != nil {
				b.Fatal(err)
			}
			t0 := time.Now()
			resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lats = append(lats, time.Since(t0))
			if resp.StatusCode != http.StatusAccepted {
				b.Fatalf("HTTP %d", resp.StatusCode)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
		reportLatencies(b, lats)
	})

	b.Run("transport=binary", func(b *testing.B) {
		_, binAddr := startBenchDaemon(b)
		streams := benchStreamNames()
		ctx := context.Background()
		conn, err := wire.Dial(ctx, binAddr, wire.ConnConfig{Window: benchWindow})
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()

		// The collector settles acks in send order while the send loop keeps
		// the window full — the pipelining a BinaryIngester client does.
		type sent struct {
			p  *wire.Pending
			t0 time.Time
		}
		acks := make(chan sent, benchWindow)
		latCh := make(chan []time.Duration, 1)
		go func() {
			var lats []time.Duration
			for e := range acks {
				ack, werr := e.p.Wait(ctx)
				if werr != nil {
					b.Errorf("ack: %v", werr)
					break
				}
				lats = append(lats, time.Since(e.t0))
				if ack.Status != wire.StatusOK {
					b.Errorf("ack status %s: %s", ack.Status, ack.Msg)
					break
				}
			}
			latCh <- lats
		}()

		batch := make([]wire.Sample, 0, benchBatchLen)
		var ts int64
		b.ReportAllocs()
		b.ResetTimer()
		for done := 0; done < b.N; done += benchBatchLen {
			n := benchBatchLen
			if rem := b.N - done; rem < n {
				n = rem
			}
			batch = batch[:n]
			for i := range batch {
				ts++
				batch[i] = wire.Sample{
					Stream: streams[int(ts)%benchStreams], TS: ts, Value: float64(ts % 97),
				}
			}
			p, serr := conn.Send(ctx, "bench-binary", batch)
			if serr != nil {
				b.Fatal(serr)
			}
			acks <- sent{p: p, t0: time.Now()}
		}
		close(acks)
		lats := <-latCh
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
		reportLatencies(b, lats)
	})
}
