package predictors

import (
	"errors"
	"fmt"
)

// ErrBadTier is returned by BuildPool for an unknown tier or a window size
// the tier's experts cannot support.
var ErrBadTier = errors.New("predictors: bad pool tier")

// PoolTier selects one of the canonical expert rosters for BuildPool. The
// tiers nest: each one extends the previous, preserving pool order (and
// therefore the classifier's class labels) across tiers.
type PoolTier int

const (
	// TierPaper is the paper's three-expert pool {LAST, AR(m), SW_AVG(m)}.
	TierPaper PoolTier = iota
	// TierExtended adds the related-work models used by the pool-size
	// ablation: running average, sliding-window median, exponential
	// smoothing, the tendency model, and polynomial extrapolation.
	TierExtended
	// TierFull adds the MA and ARIMA models from Dinda's host-load study,
	// completing the paper's §8 future-work roster. Requires windowSize >= 3.
	TierFull
)

// String names the tier for errors and logs.
func (t PoolTier) String() string {
	switch t {
	case TierPaper:
		return "paper"
	case TierExtended:
		return "extended"
	case TierFull:
		return "full"
	default:
		return fmt.Sprintf("PoolTier(%d)", int(t))
	}
}

// BuildPool is the single constructor behind the canonical pools: it builds
// the tier's roster for windowSize and appends any extra experts (their
// class labels follow the tier's, in argument order). It subsumes
// PaperPool, ExtendedPool, and FullPool, which remain as thin wrappers.
func BuildPool(windowSize int, tier PoolTier, extra ...Predictor) (*Pool, error) {
	switch tier {
	case TierPaper:
		if windowSize < 1 {
			return nil, fmt.Errorf("predictors: window size %d < 1: %w", windowSize, ErrBadTier)
		}
	case TierExtended, TierFull:
		// POLY_FIT(degree 2) needs windows above its degree; MA(m-1) and
		// ARIMA(m-1, 1) need at least two lags. Both floors are 3.
		if windowSize < 3 {
			return nil, fmt.Errorf("predictors: %v tier needs window size >= 3, got %d: %w",
				tier, windowSize, ErrBadTier)
		}
	default:
		return nil, fmt.Errorf("predictors: %v: %w", tier, ErrBadTier)
	}
	preds := []Predictor{
		NewLast(),
		NewAR(windowSize),
		NewSWAvg(windowSize),
	}
	if tier >= TierExtended {
		preds = append(preds,
			NewRunAvg(),
			NewSWMedian(windowSize),
			NewExpSmooth(0.5),
			NewTendency(0.5),
			NewPolyFit(2, windowSize),
		)
	}
	if tier >= TierFull {
		preds = append(preds,
			NewMA(windowSize-1),
			NewARIMA(windowSize-1, 1),
		)
	}
	return NewPool(append(preds, extra...)...), nil
}
