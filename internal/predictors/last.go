package predictors

// Last is the LAST model (paper Eq. 2): it predicts the next value to equal
// the most recent observation, Z_t = Z_{t-1}. It excels on smooth traces
// (the paper's memory-size series) and is the cheapest expert in the pool.
type Last struct{}

// NewLast returns a LAST predictor.
func NewLast() *Last { return &Last{} }

// Name implements Predictor.
func (*Last) Name() string { return "LAST" }

// Order implements Predictor: LAST needs a single trailing sample.
func (*Last) Order() int { return 1 }

// Fit implements Predictor; LAST has no parameters.
func (*Last) Fit([]float64) error { return nil }

// Predict implements Predictor.
func (l *Last) Predict(window []float64) (float64, error) {
	if err := checkWindow(l.Name(), window, l.Order()); err != nil {
		return 0, err
	}
	return window[len(window)-1], nil
}
