package predictors

import (
	"fmt"
	"math"

	"github.com/acis-lab/larpredictor/internal/linalg"
	"github.com/acis-lab/larpredictor/internal/timeseries"
)

// AR is a p-th order autoregressive model (paper Eq. 4) fitted with the
// Yule–Walker equations ("Yule-Walker technique is used in the AR model
// fitting in this work", §4), solved by Levinson–Durbin recursion.
//
// The one-step-ahead prediction from a trailing window is
//
//	ẑ_t = μ + Σ_{i=1..p} φ_i (z_{t-i} - μ)
//
// where μ is the training-series mean. For the normalized series the
// LARPredictor feeds it, μ ≈ 0 and this reduces to the paper's form.
type AR struct {
	p int

	fitted   bool
	fallback bool // degenerate training data: behave like LAST
	mean     float64
	phi      []float64 // phi[0] multiplies z_{t-1}
	variance float64   // innovation variance estimate from Levinson–Durbin
}

// NewAR returns an unfitted AR(p) model. It panics if p < 1.
func NewAR(p int) *AR {
	if p < 1 {
		panic(fmt.Sprintf("predictors: AR order %d < 1", p))
	}
	return &AR{p: p}
}

// Name implements Predictor.
func (*AR) Name() string { return "AR" }

// Order implements Predictor.
func (a *AR) Order() int { return a.p }

// Coefficients returns a copy of the fitted AR coefficients (phi[0]
// multiplies the most recent sample) or nil if unfitted or degenerate.
func (a *AR) Coefficients() []float64 {
	if !a.fitted || a.fallback {
		return nil
	}
	out := make([]float64, len(a.phi))
	copy(out, a.phi)
	return out
}

// InnovationVariance returns the Levinson–Durbin innovation variance
// estimate, or 0 for an unfitted/degenerate model.
func (a *AR) InnovationVariance() float64 {
	if !a.fitted || a.fallback {
		return 0
	}
	return a.variance
}

// Fit estimates the AR coefficients from the training series via
// Yule–Walker. Degenerate inputs — series shorter than p+2 samples, constant
// series, or numerically singular autocovariances — switch the model into a
// LAST-equivalent fallback rather than failing: the LARPredictor must keep
// running when one expert cannot be fit on a pathological trace, and
// last-value prediction is the conventional fallback.
func (a *AR) Fit(train []float64) error {
	a.fitted = true
	a.fallback = true
	a.phi = nil
	a.mean = timeseries.Mean(train)
	a.variance = 0

	if len(train) < a.p+2 {
		return nil
	}
	r, err := timeseries.AutocovarianceSeq(train, a.p)
	if err != nil {
		return nil
	}
	if r[0] <= 0 || !linalg.AllFinite(r) {
		return nil
	}
	phi, v, err := linalg.LevinsonDurbin(r)
	if err != nil {
		return nil
	}
	// A wildly non-stationary fit (|phi| huge) would explode predictions;
	// keep the fallback in that case.
	for _, c := range phi {
		if math.Abs(c) > 1e6 {
			return nil
		}
	}
	a.phi = phi
	a.variance = v
	a.fallback = false
	return nil
}

// Predict implements Predictor.
func (a *AR) Predict(window []float64) (float64, error) {
	if !a.fitted {
		return 0, fmt.Errorf("AR(%d): %w", a.p, ErrNotFitted)
	}
	if err := checkWindow(a.Name(), window, a.p); err != nil {
		return 0, err
	}
	if a.fallback {
		return window[len(window)-1], nil
	}
	var s float64
	n := len(window)
	for i, c := range a.phi {
		// phi[i] multiplies z_{t-1-i}.
		s += c * (window[n-1-i] - a.mean)
	}
	return a.mean + s, nil
}
