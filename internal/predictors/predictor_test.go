package predictors

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// fitted returns a predictor of the given name fitted on train, failing the
// test on error.
func fitted(t *testing.T, p Predictor, train []float64) Predictor {
	t.Helper()
	if err := p.Fit(train); err != nil {
		t.Fatalf("fit %s: %v", p.Name(), err)
	}
	return p
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"LAST", "AR", "SW_AVG", "RUN_AVG", "SW_MEDIAN",
		"EXP_SMOOTH", "TENDENCY", "POLY_FIT", "ADAPT_AVG", "ADAPT_MEDIAN", "MEAN"} {
		p, err := NewByName(name)
		if err != nil {
			t.Errorf("NewByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("NewByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := NewByName("NO_SUCH"); !errors.Is(err, ErrUnknownPredictor) {
		t.Errorf("unknown predictor err = %v", err)
	}
	if len(RegisteredNames()) < 11 {
		t.Errorf("registry has %d entries, want >= 11", len(RegisteredNames()))
	}
}

func TestRegisterCustom(t *testing.T) {
	Register("CUSTOM_TEST", func() Predictor { return NewLast() })
	p, err := NewByName("CUSTOM_TEST")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "LAST" {
		t.Error("custom factory not used")
	}
}

func TestPaperPoolOrder(t *testing.T) {
	pool := PaperPool(5)
	want := []string{"LAST", "AR", "SW_AVG"}
	got := pool.Names()
	if len(got) != len(want) {
		t.Fatalf("pool names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pool names = %v, want %v", got, want)
		}
	}
	if pool.IndexOf("AR") != 1 || pool.IndexOf("NOPE") != -1 {
		t.Error("IndexOf wrong")
	}
	if pool.MaxOrder() != 5 {
		t.Errorf("MaxOrder = %d, want 5", pool.MaxOrder())
	}
}

func TestExtendedPoolSize(t *testing.T) {
	pool := ExtendedPool(5)
	if pool.Size() != 8 {
		t.Errorf("extended pool size = %d, want 8", pool.Size())
	}
}

func TestPoolPredictAllAndBest(t *testing.T) {
	pool := PaperPool(3)
	train := []float64{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	if err := pool.Fit(train); err != nil {
		t.Fatal(err)
	}
	window := []float64{1, 0, 1}
	preds, err := pool.PredictAll(window)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 {
		t.Fatalf("PredictAll returned %d values", len(preds))
	}
	// LAST predicts 1; SW_AVG predicts 2/3. The alternating series should
	// make AR predict near 0 (next value of the 0,1,0,1 pattern).
	if preds[0] != 1 {
		t.Errorf("LAST = %g", preds[0])
	}
	if !almostEqual(preds[2], 2.0/3, 1e-12) {
		t.Errorf("SW_AVG = %g", preds[2])
	}
	best, _, err := pool.Best(window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pool.At(best).Name() != "AR" {
		t.Errorf("best for alternating series = %s, want AR (preds=%v)", pool.At(best).Name(), preds)
	}
}

func TestPoolBestTieBreaksLow(t *testing.T) {
	// Two LAST predictors tie exactly; index 0 must win.
	pool := NewPool(NewLast(), NewLast())
	best, _, err := pool.Best([]float64{5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if best != 0 {
		t.Errorf("tie broke to %d, want 0", best)
	}
}

func TestLabelParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	train := make([]float64, 300)
	for i := 1; i < len(train); i++ {
		train[i] = 0.7*train[i-1] + rng.NormFloat64()
	}
	pool := PaperPool(5)
	if err := pool.Fit(train); err != nil {
		t.Fatal(err)
	}
	var windows [][]float64
	var targets []float64
	for i := 0; i+5 < len(train); i++ {
		windows = append(windows, train[i:i+5])
		targets = append(targets, train[i+5])
	}
	par, err := pool.LabelParallel(windows, targets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range windows {
		best, preds, err := pool.Best(windows[i], targets[i])
		if err != nil {
			t.Fatal(err)
		}
		if par[i].Best != best {
			t.Fatalf("window %d: parallel best %d != sequential %d", i, par[i].Best, best)
		}
		for j := range preds {
			if par[i].Predictions[j] != preds[j] {
				t.Fatalf("window %d: prediction mismatch", i)
			}
		}
	}
}

func TestLabelParallelErrors(t *testing.T) {
	pool := PaperPool(3)
	if err := pool.Fit([]float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.LabelParallel([][]float64{{1, 2, 3}}, []float64{1, 2}); err == nil {
		t.Error("accepted mismatched windows/targets")
	}
	// Window shorter than pool order propagates the predictor error.
	if _, err := pool.LabelParallel([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("accepted unframeable window")
	}
}

func TestPredictorsDeterministicProperty(t *testing.T) {
	// Every predictor must be a pure function of (fit data, window).
	train := make([]float64, 64)
	rng := rand.New(rand.NewSource(5))
	for i := range train {
		train[i] = rng.NormFloat64()
	}
	pool := ExtendedPool(5)
	if err := pool.Fit(train); err != nil {
		t.Fatal(err)
	}
	f := func(raw [8]float64) bool {
		w := raw[:]
		for _, x := range w {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		for _, p := range pool.Predictors() {
			a, err1 := p.Predict(w)
			b, err2 := p.Predict(w)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 == nil && a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPredictorsRejectShortWindows(t *testing.T) {
	pool := ExtendedPool(5)
	if err := pool.Fit(make([]float64, 32)); err != nil {
		t.Fatal(err)
	}
	for _, p := range pool.Predictors() {
		if p.Order() <= 1 {
			continue
		}
		short := make([]float64, p.Order()-1)
		if _, err := p.Predict(short); !errors.Is(err, ErrWindowTooShort) {
			t.Errorf("%s accepted short window (err=%v)", p.Name(), err)
		}
	}
}
