package predictors

import (
	"fmt"
	"sort"
)

// SWMedian is the sliding-window median expert from the NWS forecaster
// suite: the prediction is the median of the last m observations. Medians
// resist the transient spikes that corrupt window means on bursty traces.
type SWMedian struct {
	m int
}

// NewSWMedian returns a sliding-window median predictor over m samples.
// It panics if m < 1.
func NewSWMedian(m int) *SWMedian {
	if m < 1 {
		panic(fmt.Sprintf("predictors: SW_MEDIAN window %d < 1", m))
	}
	return &SWMedian{m: m}
}

// Name implements Predictor.
func (*SWMedian) Name() string { return "SW_MEDIAN" }

// Order implements Predictor.
func (s *SWMedian) Order() int { return s.m }

// Fit implements Predictor; SW_MEDIAN has no parameters.
func (*SWMedian) Fit([]float64) error { return nil }

// Predict implements Predictor.
func (s *SWMedian) Predict(window []float64) (float64, error) {
	if err := checkWindow(s.Name(), window, s.m); err != nil {
		return 0, err
	}
	return median(window[len(window)-s.m:]), nil
}

// median returns the median of v without modifying it.
func median(v []float64) float64 {
	tmp := make([]float64, len(v))
	copy(tmp, v)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
