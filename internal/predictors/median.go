package predictors

import (
	"fmt"
	"sort"
)

// SWMedian is the sliding-window median expert from the NWS forecaster
// suite: the prediction is the median of the last m observations. Medians
// resist the transient spikes that corrupt window means on bursty traces.
type SWMedian struct {
	m int
}

// NewSWMedian returns a sliding-window median predictor over m samples.
// It panics if m < 1.
func NewSWMedian(m int) *SWMedian {
	if m < 1 {
		panic(fmt.Sprintf("predictors: SW_MEDIAN window %d < 1", m))
	}
	return &SWMedian{m: m}
}

// Name implements Predictor.
func (*SWMedian) Name() string { return "SW_MEDIAN" }

// Order implements Predictor.
func (s *SWMedian) Order() int { return s.m }

// Fit implements Predictor; SW_MEDIAN has no parameters.
func (*SWMedian) Fit([]float64) error { return nil }

// Predict implements Predictor.
func (s *SWMedian) Predict(window []float64) (float64, error) {
	if err := checkWindow(s.Name(), window, s.m); err != nil {
		return 0, err
	}
	return median(window[len(window)-s.m:]), nil
}

// medianStackMax bounds the window size handled with a stack buffer; the
// prediction orders in this system are small (5–16), so the steady-state
// forecast path never allocates here.
const medianStackMax = 64

// median returns the median of v without modifying it. Windows up to
// medianStackMax samples are sorted by insertion into a stack buffer —
// allocation free and faster than the library sort at these sizes.
func median(v []float64) float64 {
	n := len(v)
	if n <= medianStackMax {
		var buf [medianStackMax]float64
		tmp := buf[:0]
		for _, x := range v {
			// Insert x into the sorted prefix.
			i := len(tmp)
			tmp = append(tmp, x)
			for i > 0 && tmp[i-1] > x {
				tmp[i] = tmp[i-1]
				i--
			}
			tmp[i] = x
		}
		if n%2 == 1 {
			return tmp[n/2]
		}
		return (tmp[n/2-1] + tmp[n/2]) / 2
	}
	tmp := make([]float64, n)
	copy(tmp, v)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
