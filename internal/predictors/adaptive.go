package predictors

import (
	"fmt"

	"github.com/acis-lab/larpredictor/internal/timeseries"
)

// adaptiveWindow implements the NWS adaptive-window strategy shared by the
// mean and median variants: for each candidate trailing length w, score how
// well an aggregate over the w samples *preceding* the final window sample
// would have predicted that final sample, pick the w with the smallest
// error, and predict with that length over the true trailing samples.
type adaptiveWindow struct {
	name      string
	maxWindow int
	aggregate func(v []float64) float64
}

func (a *adaptiveWindow) Name() string        { return a.name }
func (a *adaptiveWindow) Order() int          { return 2 } // need 1 sample to score + 1 to aggregate
func (a *adaptiveWindow) Fit([]float64) error { return nil }

func (a *adaptiveWindow) Predict(window []float64) (float64, error) {
	if err := checkWindow(a.name, window, a.Order()); err != nil {
		return 0, err
	}
	n := len(window)
	target := window[n-1] // score candidates by how well they predict this
	history := window[:n-1]

	maxW := a.maxWindow
	if maxW > len(history) {
		maxW = len(history)
	}
	bestW, bestErr := 1, absErr(a.aggregate(history[len(history)-1:]), target)
	for w := 2; w <= maxW; w++ {
		e := absErr(a.aggregate(history[len(history)-w:]), target)
		if e < bestErr {
			bestW, bestErr = w, e
		}
	}
	// Predict the next value with the winning window length over the real
	// trailing samples (which include the scoring target).
	if bestW > n {
		bestW = n
	}
	return a.aggregate(window[n-bestW:]), nil
}

// AdaptiveWindowAvg is the NWS adaptive-window mean expert.
type AdaptiveWindowAvg struct {
	adaptiveWindow
}

// NewAdaptiveWindowAvg returns an adaptive-window mean predictor that
// considers trailing lengths up to maxWindow. It panics if maxWindow < 1.
func NewAdaptiveWindowAvg(maxWindow int) *AdaptiveWindowAvg {
	if maxWindow < 1 {
		panic(fmt.Sprintf("predictors: ADAPT_AVG max window %d < 1", maxWindow))
	}
	return &AdaptiveWindowAvg{adaptiveWindow{
		name:      "ADAPT_AVG",
		maxWindow: maxWindow,
		aggregate: timeseries.Mean,
	}}
}

// AdaptiveWindowMedian is the NWS adaptive-window median expert.
type AdaptiveWindowMedian struct {
	adaptiveWindow
}

// NewAdaptiveWindowMedian returns an adaptive-window median predictor that
// considers trailing lengths up to maxWindow. It panics if maxWindow < 1.
func NewAdaptiveWindowMedian(maxWindow int) *AdaptiveWindowMedian {
	if maxWindow < 1 {
		panic(fmt.Sprintf("predictors: ADAPT_MEDIAN max window %d < 1", maxWindow))
	}
	return &AdaptiveWindowMedian{adaptiveWindow{
		name:      "ADAPT_MEDIAN",
		maxWindow: maxWindow,
		aggregate: median,
	}}
}
