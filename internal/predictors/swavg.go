package predictors

import "fmt"

// SWAvg is the sliding-window average model (paper Eq. 3): the prediction is
// the mean of the last m observations.
type SWAvg struct {
	m int
}

// NewSWAvg returns a sliding-window average predictor over windows of m
// samples. It panics if m < 1; window sizes are construction-time constants
// in this system and a zero window is a programming error.
func NewSWAvg(m int) *SWAvg {
	if m < 1 {
		panic(fmt.Sprintf("predictors: SW_AVG window %d < 1", m))
	}
	return &SWAvg{m: m}
}

// Name implements Predictor.
func (*SWAvg) Name() string { return "SW_AVG" }

// Order implements Predictor.
func (s *SWAvg) Order() int { return s.m }

// Fit implements Predictor; SW_AVG has no parameters.
func (*SWAvg) Fit([]float64) error { return nil }

// Predict implements Predictor: the mean of the trailing m samples.
func (s *SWAvg) Predict(window []float64) (float64, error) {
	if err := checkWindow(s.Name(), window, s.m); err != nil {
		return 0, err
	}
	tail := window[len(window)-s.m:]
	var sum float64
	for _, v := range tail {
		sum += v
	}
	return sum / float64(s.m), nil
}
