package predictors

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestMARecoversKnownProcess(t *testing.T) {
	// MA(1) with θ = 0.6: z_t = a_t + 0.6 a_{t-1}.
	theta := 0.6
	rng := rand.New(rand.NewSource(8))
	const n = 200000
	v := make([]float64, n)
	prev := rng.NormFloat64()
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		v[i] = a + theta*prev
		prev = a
	}
	m := NewMA(1)
	if err := m.Fit(v); err != nil {
		t.Fatal(err)
	}
	coef := m.Coefficients()
	if coef == nil {
		t.Fatal("MA fell back on healthy data")
	}
	if math.Abs(coef[0]-theta) > 0.03 {
		t.Errorf("theta = %v, want ~%g", coef, theta)
	}
}

func TestMABeatsMeanOnMAProcess(t *testing.T) {
	// On a true MA(1) process the fitted MA expert must predict better
	// than the unconditional mean.
	theta := 0.8
	rng := rand.New(rand.NewSource(9))
	const n = 5000
	v := make([]float64, n)
	prev := rng.NormFloat64()
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		v[i] = a + theta*prev
		prev = a
	}
	m := NewMA(1)
	if err := m.Fit(v[:n/2]); err != nil {
		t.Fatal(err)
	}
	var maSq, meanSq float64
	cnt := 0
	for i := n / 2; i+8 < n; i++ {
		pred, err := m.Predict(v[i : i+8])
		if err != nil {
			t.Fatal(err)
		}
		target := v[i+8]
		maSq += (pred - target) * (pred - target)
		meanSq += target * target // process mean is 0
		cnt++
	}
	if maSq >= meanSq {
		t.Errorf("MA MSE %.4f not below mean-prediction MSE %.4f", maSq/float64(cnt), meanSq/float64(cnt))
	}
}

func TestMAUnfittedAndShortWindow(t *testing.T) {
	m := NewMA(2)
	if _, err := m.Predict(make([]float64, 5)); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted MA did not error")
	}
	if err := m.Fit(make([]float64, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(make([]float64, 2)); !errors.Is(err, ErrWindowTooShort) {
		t.Error("short window accepted")
	}
}

func TestMAFallbackOnDegenerateData(t *testing.T) {
	cases := [][]float64{
		{},
		{1, 2, 3},                            // too short
		{5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5}, // constant
	}
	for i, train := range cases {
		m := NewMA(2)
		if err := m.Fit(train); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if m.Coefficients() != nil {
			t.Errorf("case %d: expected fallback", i)
		}
		got, err := m.Predict([]float64{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if got != 3 {
			t.Errorf("case %d: fallback = %g, want LAST", i, got)
		}
	}
}

func TestMAPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMA(0) did not panic")
		}
	}()
	NewMA(0)
}

func TestARIMAExactOnLinearTrend(t *testing.T) {
	// A pure linear trend differences to a constant; ARIMA(p,1,0) should
	// forecast the trend almost exactly while a stationary AR is biased.
	v := make([]float64, 200)
	for i := range v {
		v[i] = 3*float64(i) + 10
	}
	a := NewARIMA(2, 1)
	if err := a.Fit(v[:150]); err != nil {
		t.Fatal(err)
	}
	got, err := a.Predict(v[150:160])
	if err != nil {
		t.Fatal(err)
	}
	want := 3*160.0 + 10
	if math.Abs(got-want) > 0.5 {
		t.Errorf("ARIMA trend forecast = %g, want ~%g", got, want)
	}
}

func TestARIMARandomWalkTracksLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	v := make([]float64, 2000)
	for i := 1; i < len(v); i++ {
		v[i] = v[i-1] + rng.NormFloat64()
	}
	a := NewARIMA(3, 1)
	if err := a.Fit(v[:1000]); err != nil {
		t.Fatal(err)
	}
	// Forecast must stay near the last observed value (random-walk optimum).
	got, err := a.Predict(v[1000:1010])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-v[1009]) > 3 {
		t.Errorf("ARIMA random-walk forecast %g too far from last value %g", got, v[1009])
	}
}

func TestARIMAOrderAndErrors(t *testing.T) {
	a := NewARIMA(3, 2)
	if a.Order() != 5 {
		t.Errorf("Order = %d, want p+d = 5", a.Order())
	}
	if a.Differencing() != 2 {
		t.Errorf("Differencing = %d", a.Differencing())
	}
	if _, err := a.Predict(make([]float64, 5)); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted ARIMA did not error")
	}
	if err := a.Fit(make([]float64, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Predict(make([]float64, 4)); !errors.Is(err, ErrWindowTooShort) {
		t.Error("short window accepted")
	}
}

func TestARIMAPanicsOnBadDifferencing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewARIMA(1,0) did not panic")
		}
	}()
	NewARIMA(1, 0)
}

func TestDifference(t *testing.T) {
	d := difference([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("difference = %v", d)
		}
	}
	if difference([]float64{1}) != nil {
		t.Error("single-element difference should be nil")
	}
}
