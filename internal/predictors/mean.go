package predictors

import "github.com/acis-lab/larpredictor/internal/timeseries"

// RunAvg is the running-average expert from the NWS forecaster suite: the
// prediction is the mean of all samples in the supplied window (which, fed a
// growing history, is the cumulative mean). It differs from SWAvg in that it
// has no fixed window length — it uses everything it is given.
type RunAvg struct{}

// NewRunAvg returns a running-average predictor.
func NewRunAvg() *RunAvg { return &RunAvg{} }

// Name implements Predictor.
func (*RunAvg) Name() string { return "RUN_AVG" }

// Order implements Predictor.
func (*RunAvg) Order() int { return 1 }

// Fit implements Predictor; RUN_AVG has no parameters.
func (*RunAvg) Fit([]float64) error { return nil }

// Predict implements Predictor: the mean of the whole window.
func (r *RunAvg) Predict(window []float64) (float64, error) {
	if err := checkWindow(r.Name(), window, r.Order()); err != nil {
		return 0, err
	}
	return timeseries.Mean(window), nil
}

// MeanPredictor predicts the training-series mean for every future value —
// the window-mean model of Dinda's study, a useful sanity floor for the
// pool-size ablation.
type MeanPredictor struct {
	fitted bool
	mean   float64
}

// NewMeanPredictor returns an unfitted MEAN model.
func NewMeanPredictor() *MeanPredictor { return &MeanPredictor{} }

// Name implements Predictor.
func (*MeanPredictor) Name() string { return "MEAN" }

// Order implements Predictor. MEAN ignores the window but still requires a
// non-empty one so pool bookkeeping stays uniform.
func (*MeanPredictor) Order() int { return 1 }

// Fit implements Predictor.
func (m *MeanPredictor) Fit(train []float64) error {
	m.mean = timeseries.Mean(train)
	m.fitted = true
	return nil
}

// Predict implements Predictor.
func (m *MeanPredictor) Predict(window []float64) (float64, error) {
	if !m.fitted {
		return 0, ErrNotFitted
	}
	if err := checkWindow(m.Name(), window, m.Order()); err != nil {
		return 0, err
	}
	return m.mean, nil
}
