// Package predictors implements the time-series prediction models that form
// the LARPredictor's mix-of-experts pool (paper §4): LAST, sliding-window
// average (SW_AVG), and the Yule–Walker-fitted autoregressive model (AR).
//
// It also provides the extended pool the paper's related-work and future-work
// sections point at — running mean, sliding-window median, adaptive-window
// mean/median, exponential smoothing (all from the Network Weather Service
// forecaster suite), the tendency-based model of Yang et al., and the
// polynomial-fitting model of Zhang et al. — so that the "more predictors in
// the pool" amortization argument of §7.3 can be benchmarked.
//
// All predictors perform one-step-ahead prediction from a trailing window of
// observations. Parametric models estimate their parameters in Fit; Predict
// must be safe for concurrent use once Fit has returned.
package predictors

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrWindowTooShort is returned by Predict when the supplied window has
// fewer samples than the predictor's Order.
var ErrWindowTooShort = errors.New("predictors: window shorter than predictor order")

// ErrNotFitted is returned when a parametric predictor is used before Fit.
var ErrNotFitted = errors.New("predictors: model not fitted")

// ErrUnknownPredictor is returned by the registry for unrecognized names.
var ErrUnknownPredictor = errors.New("predictors: unknown predictor")

// Predictor is a one-step-ahead time-series prediction model.
type Predictor interface {
	// Name returns the model's stable identifier (e.g. "AR", "LAST").
	Name() string
	// Order returns the minimum number of trailing samples Predict needs.
	Order() int
	// Fit estimates model parameters from a training series. Nonparametric
	// models (LAST, SW_AVG, ...) treat Fit as a no-op and never fail.
	Fit(train []float64) error
	// Predict forecasts the value following the given trailing window.
	// The window is not modified. Predict is safe for concurrent use after
	// Fit has returned.
	Predict(window []float64) (float64, error)
}

// checkWindow validates a prediction window against a required order.
func checkWindow(name string, window []float64, order int) error {
	if len(window) < order {
		return fmt.Errorf("%s: window of %d samples, need >= %d: %w",
			name, len(window), order, ErrWindowTooShort)
	}
	return nil
}

// Factory constructs a fresh, unfitted predictor. Window-based factories
// capture their window size.
type Factory func() Predictor

// registry maps canonical predictor names to factories. Names are the class
// labels used throughout the system ("LAST", "AR", "SW_AVG", ...).
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named predictor factory to the global registry,
// overwriting any previous registration with the same name. It is intended
// to be called from init functions or application setup.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = f
}

// NewByName constructs a registered predictor.
func NewByName(name string) (Predictor, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrUnknownPredictor)
	}
	return f(), nil
}

// RegisteredNames returns the names in the registry (unordered).
func RegisteredNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	return names
}

// Pool is an ordered collection of predictors — the mix-of-experts. The
// order is significant: class labels used by the classifier are indexes into
// the pool, matching the paper's "Predictor Class: 1 - LAST, 2 - AR,
// 3 - SW_AVG" convention (figures 4 and 5).
type Pool struct {
	preds []Predictor
}

// NewPool builds a pool from the given predictors. The slice is copied.
func NewPool(preds ...Predictor) *Pool {
	p := make([]Predictor, len(preds))
	copy(p, preds)
	return &Pool{preds: p}
}

// PaperPool returns the three-predictor pool used in the paper's
// experiments: LAST, AR(p = windowSize), SW_AVG(windowSize).
//
// Deprecated: Use BuildPool(windowSize, TierPaper).
func PaperPool(windowSize int) *Pool {
	return mustBuild(windowSize, TierPaper)
}

// ExtendedPool returns the eight-predictor pool used by the pool-size
// ablation: the paper pool plus the related-work models.
//
// Deprecated: Use BuildPool(windowSize, TierExtended).
func ExtendedPool(windowSize int) *Pool {
	return mustBuild(windowSize, TierExtended)
}

// FullPool returns the ten-predictor pool: the extended pool plus the MA and
// ARIMA models from Dinda's host-load study (paper §2), completing the §8
// future-work roster. Window sizes below 3 panic, as the inner constructors
// always did.
//
// Deprecated: Use BuildPool(windowSize, TierFull), which returns an error
// instead of panicking.
func FullPool(windowSize int) *Pool {
	return mustBuild(windowSize, TierFull)
}

// mustBuild adapts BuildPool to the legacy panic-on-misuse constructors.
func mustBuild(windowSize int, tier PoolTier) *Pool {
	p, err := BuildPool(windowSize, tier)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the number of predictors in the pool.
func (p *Pool) Size() int { return len(p.preds) }

// Predictors returns the pool contents in order. The returned slice is a
// copy; the predictors themselves are shared.
func (p *Pool) Predictors() []Predictor {
	out := make([]Predictor, len(p.preds))
	copy(out, p.preds)
	return out
}

// At returns predictor i.
func (p *Pool) At(i int) Predictor { return p.preds[i] }

// Names returns the predictor names in pool order.
func (p *Pool) Names() []string {
	names := make([]string, len(p.preds))
	for i, pr := range p.preds {
		names[i] = pr.Name()
	}
	return names
}

// IndexOf returns the pool index of the predictor with the given name, or -1.
func (p *Pool) IndexOf(name string) int {
	for i, pr := range p.preds {
		if pr.Name() == name {
			return i
		}
	}
	return -1
}

// MaxOrder returns the largest Order over the pool, i.e. the minimum window
// length that satisfies every expert.
func (p *Pool) MaxOrder() int {
	mx := 0
	for _, pr := range p.preds {
		if o := pr.Order(); o > mx {
			mx = o
		}
	}
	return mx
}

// Fit fits every parametric predictor in the pool on the training series,
// returning the first error encountered.
func (p *Pool) Fit(train []float64) error {
	for _, pr := range p.preds {
		if err := pr.Fit(train); err != nil {
			return fmt.Errorf("fit %s: %w", pr.Name(), err)
		}
	}
	return nil
}

// PredictAll runs every expert on the window and returns their predictions
// in pool order. This is the training-phase "run all prediction models in
// parallel" step; for the small pools here the experts run sequentially
// within one window and callers parallelize across windows instead (see
// LabelParallel), which has far better granularity.
func (p *Pool) PredictAll(window []float64) ([]float64, error) {
	return p.PredictAllInto(nil, window)
}

// PredictAllInto is PredictAll writing into dst when its capacity suffices
// (allocating otherwise) and returning the slice holding the predictions.
// With a sufficiently large dst and allocation-free experts, the call does
// not touch the heap; dst may be nil.
func (p *Pool) PredictAllInto(dst []float64, window []float64) ([]float64, error) {
	if cap(dst) < len(p.preds) {
		dst = make([]float64, len(p.preds))
	}
	dst = dst[:len(p.preds)]
	for i, pr := range p.preds {
		v, err := pr.Predict(window)
		if err != nil {
			return nil, fmt.Errorf("predict %s: %w", pr.Name(), err)
		}
		dst[i] = v
	}
	return dst, nil
}

// Best returns the pool index of the expert whose prediction for the window
// has the smallest absolute error versus the observed target — the paper's
// best-predictor identification rule ("the model that gave the smallest
// absolute value of the error was identified as the best predictor", §7.2.1).
// Ties break toward the lower pool index, keeping labels deterministic.
func (p *Pool) Best(window []float64, target float64) (best int, preds []float64, err error) {
	preds, err = p.PredictAll(window)
	if err != nil {
		return 0, nil, err
	}
	best = 0
	bestErr := absErr(preds[0], target)
	for i := 1; i < len(preds); i++ {
		if e := absErr(preds[i], target); e < bestErr {
			best, bestErr = i, e
		}
	}
	return best, preds, nil
}

func absErr(pred, obs float64) float64 {
	d := pred - obs
	if d < 0 {
		return -d
	}
	return d
}

// LabelResult carries the per-window labeling produced by the training
// phase: the best expert's index and every expert's prediction.
type LabelResult struct {
	Best        int
	Predictions []float64
}

// LabelParallel labels every (window, target) pair with its best expert,
// fanning the windows out over min(GOMAXPROCS, len(windows)) workers. It is
// the parallel mix-of-experts pass of the training phase.
func (p *Pool) LabelParallel(windows [][]float64, targets []float64) ([]LabelResult, error) {
	if len(windows) != len(targets) {
		return nil, fmt.Errorf("predictors: %d windows but %d targets", len(windows), len(targets))
	}
	results := make([]LabelResult, len(windows))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(windows) {
		workers = len(windows)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				best, preds, err := p.Best(windows[i], targets[i])
				if err != nil {
					errOnce.Do(func() { firstEr = err })
					continue
				}
				results[i] = LabelResult{Best: best, Predictions: preds}
			}
		}()
	}
	for i := range windows {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return results, nil
}

func init() {
	Register("LAST", func() Predictor { return NewLast() })
	Register("AR", func() Predictor { return NewAR(DefaultWindow) })
	Register("SW_AVG", func() Predictor { return NewSWAvg(DefaultWindow) })
	Register("RUN_AVG", func() Predictor { return NewRunAvg() })
	Register("SW_MEDIAN", func() Predictor { return NewSWMedian(DefaultWindow) })
	Register("EXP_SMOOTH", func() Predictor { return NewExpSmooth(0.5) })
	Register("TENDENCY", func() Predictor { return NewTendency(0.5) })
	Register("POLY_FIT", func() Predictor { return NewPolyFit(2, DefaultWindow) })
	Register("ADAPT_AVG", func() Predictor { return NewAdaptiveWindowAvg(DefaultWindow) })
	Register("ADAPT_MEDIAN", func() Predictor { return NewAdaptiveWindowMedian(DefaultWindow) })
	Register("MEAN", func() Predictor { return NewMeanPredictor() })
	Register("MA", func() Predictor { return NewMA(DefaultWindow - 1) })
	Register("ARIMA", func() Predictor { return NewARIMA(DefaultWindow-1, 1) })
}

// DefaultWindow is the window size used by registry-constructed window
// predictors; the paper uses m = 5 for the 24-hour traces.
const DefaultWindow = 5
