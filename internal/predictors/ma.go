package predictors

import (
	"fmt"
	"math"

	"github.com/acis-lab/larpredictor/internal/timeseries"
)

// MA is a q-th order moving-average model,
//
//	Z_t = μ + a_t + θ_1 a_{t-1} + ... + θ_q a_{t-q},
//
// one of the Dinda-study models the paper's §8 proposes folding into the
// pool. The coefficients are fitted with the innovations algorithm (Brockwell
// & Davis §5.3), which needs only the sample autocovariances; prediction
// reconstructs the recent innovation sequence by filtering the window.
type MA struct {
	q int

	fitted   bool
	fallback bool // degenerate training data: behave like MEAN/LAST
	mean     float64
	theta    []float64 // theta[0] multiplies a_{t-1}
}

// NewMA returns an unfitted MA(q) model. It panics if q < 1.
func NewMA(q int) *MA {
	if q < 1 {
		panic(fmt.Sprintf("predictors: MA order %d < 1", q))
	}
	return &MA{q: q}
}

// Name implements Predictor.
func (*MA) Name() string { return "MA" }

// Order implements Predictor: reconstructing innovations needs a few extra
// samples beyond q to wash out the unknown initial innovation.
func (m *MA) Order() int { return m.q + 1 }

// Coefficients returns a copy of the fitted θ (nil if unfitted/degenerate).
func (m *MA) Coefficients() []float64 {
	if !m.fitted || m.fallback {
		return nil
	}
	out := make([]float64, len(m.theta))
	copy(out, m.theta)
	return out
}

// Fit estimates θ via the innovations algorithm on the training series'
// sample autocovariances. Degenerate inputs switch to a last-value fallback,
// mirroring the AR expert's behaviour.
func (m *MA) Fit(train []float64) error {
	m.fitted = true
	m.fallback = true
	m.theta = nil
	m.mean = timeseries.Mean(train)

	if len(train) < 2*m.q+4 {
		return nil
	}
	// The innovations algorithm needs autocovariances up to lag q; run it
	// for a few extra iterations so the θ estimates settle.
	iters := 4 * m.q
	if iters > len(train)/2 {
		iters = len(train) / 2
	}
	if iters <= m.q {
		return nil
	}
	r, err := timeseries.AutocovarianceSeq(train, iters)
	if err != nil || r[0] <= 0 {
		return nil
	}
	for _, x := range r {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil
		}
	}

	// Innovations algorithm: v[0] = r[0];
	// θ_{n,n-k} = (r[n-k] − Σ_{j=0}^{k-1} θ_{k,k-j} θ_{n,n-j} v[j]) / v[k]
	theta := make([][]float64, iters+1) // theta[n][j] = θ_{n,j}, j=1..n
	v := make([]float64, iters+1)
	v[0] = r[0]
	for n := 1; n <= iters; n++ {
		theta[n] = make([]float64, n+1)
		for k := 0; k < n; k++ {
			sum := r[n-k]
			for j := 0; j < k; j++ {
				sum -= theta[k][k-j] * theta[n][n-j] * v[j]
			}
			if v[k] == 0 {
				return nil
			}
			theta[n][n-k] = sum / v[k]
		}
		v[n] = r[0]
		for j := 0; j < n; j++ {
			v[n] -= theta[n][n-j] * theta[n][n-j] * v[j]
		}
		if v[n] <= 0 {
			return nil
		}
	}
	// θ_{iters,1..q} approximates the MA(q) coefficients.
	out := make([]float64, m.q)
	for j := 1; j <= m.q; j++ {
		c := theta[iters][j]
		if math.Abs(c) > 10 {
			return nil // wildly non-invertible fit
		}
		out[j-1] = c
	}
	m.theta = out
	m.fallback = false
	return nil
}

// Predict implements Predictor: it reconstructs innovations over the window
// by inverting the MA filter (assuming zero innovations before the window),
// then forecasts μ + Σ θ_i a_{t-i}.
func (m *MA) Predict(window []float64) (float64, error) {
	if !m.fitted {
		return 0, fmt.Errorf("MA(%d): %w", m.q, ErrNotFitted)
	}
	if err := checkWindow(m.Name(), window, m.Order()); err != nil {
		return 0, err
	}
	if m.fallback {
		return window[len(window)-1], nil
	}
	// a_t = (z_t − μ) − Σ θ_i a_{t-i}
	a := make([]float64, len(window))
	for t, z := range window {
		acc := z - m.mean
		for i, c := range m.theta {
			if t-1-i >= 0 {
				acc -= c * a[t-1-i]
			}
		}
		// Non-invertible filters can blow up the recursion; clamp to keep
		// the forecast finite (the expert will simply score poorly).
		if math.Abs(acc) > 1e12 {
			return window[len(window)-1], nil
		}
		a[t] = acc
	}
	var s float64
	n := len(a)
	for i, c := range m.theta {
		if n-1-i >= 0 {
			s += c * a[n-1-i]
		}
	}
	return m.mean + s, nil
}
