package predictors

import "fmt"

// Tendency is the tendency-based model of Yang et al. (paper §2, [32]):
// the next value is predicted by following the direction of the most recent
// change. If the series is rising, an increment proportional to the last
// step is added to the current measurement; if falling, subtracted; if flat,
// the current value is kept.
//
//	ẑ_t = z_{t-1} + β·(z_{t-1} - z_{t-2})
type Tendency struct {
	beta float64
}

// NewTendency returns a tendency predictor with step gain beta in (0, 2].
// The original formulation adds a fraction of the observed change; beta = 1
// is pure linear extrapolation, beta = 0.5 the conservative variant. It
// panics on an out-of-range beta.
func NewTendency(beta float64) *Tendency {
	if beta <= 0 || beta > 2 {
		panic(fmt.Sprintf("predictors: TENDENCY beta %g outside (0,2]", beta))
	}
	return &Tendency{beta: beta}
}

// Name implements Predictor.
func (*Tendency) Name() string { return "TENDENCY" }

// Order implements Predictor: it needs the last two samples.
func (*Tendency) Order() int { return 2 }

// Fit implements Predictor; beta is fixed at construction.
func (*Tendency) Fit([]float64) error { return nil }

// Predict implements Predictor.
func (t *Tendency) Predict(window []float64) (float64, error) {
	if err := checkWindow(t.Name(), window, t.Order()); err != nil {
		return 0, err
	}
	n := len(window)
	cur, prev := window[n-1], window[n-2]
	return cur + t.beta*(cur-prev), nil
}
