package predictors

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestLast(t *testing.T) {
	p := NewLast()
	got, err := p.Predict([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("LAST = %g, want 3", got)
	}
	if _, err := p.Predict(nil); !errors.Is(err, ErrWindowTooShort) {
		t.Error("LAST accepted empty window")
	}
	if err := p.Fit(nil); err != nil {
		t.Error("LAST Fit should never fail")
	}
}

func TestSWAvg(t *testing.T) {
	p := NewSWAvg(3)
	got, err := p.Predict([]float64{100, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("SW_AVG = %g, want 2 (mean of trailing 3)", got)
	}
	if _, err := p.Predict([]float64{1, 2}); !errors.Is(err, ErrWindowTooShort) {
		t.Error("SW_AVG accepted short window")
	}
}

func TestSWAvgPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSWAvg(0) did not panic")
		}
	}()
	NewSWAvg(0)
}

func TestARRecoversKnownProcess(t *testing.T) {
	// Long AR(2) realization; Yule–Walker should recover the coefficients.
	phi1, phi2 := 0.6, -0.3
	rng := rand.New(rand.NewSource(2))
	const n = 100000
	v := make([]float64, n)
	for i := 2; i < n; i++ {
		v[i] = phi1*v[i-1] + phi2*v[i-2] + rng.NormFloat64()
	}
	ar := NewAR(2)
	if err := ar.Fit(v); err != nil {
		t.Fatal(err)
	}
	coef := ar.Coefficients()
	if coef == nil {
		t.Fatal("AR fell back despite healthy data")
	}
	if math.Abs(coef[0]-phi1) > 0.02 || math.Abs(coef[1]-phi2) > 0.02 {
		t.Errorf("coefficients = %v, want [%g %g]", coef, phi1, phi2)
	}
	if iv := ar.InnovationVariance(); math.Abs(iv-1) > 0.05 {
		t.Errorf("innovation variance = %g, want ~1", iv)
	}
}

func TestARPredictUsesRecentSamplesFirst(t *testing.T) {
	// phi = [1] (approx): prediction should track the last window sample.
	rng := rand.New(rand.NewSource(3))
	v := make([]float64, 50000)
	for i := 1; i < len(v); i++ {
		v[i] = 0.95*v[i-1] + 0.1*rng.NormFloat64()
	}
	ar := NewAR(1)
	if err := ar.Fit(v); err != nil {
		t.Fatal(err)
	}
	got, err := ar.Predict([]float64{0, 0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got < 5 {
		t.Errorf("AR(1) prediction %g should follow the last sample (≈9.5)", got)
	}
}

func TestARUnfitted(t *testing.T) {
	ar := NewAR(2)
	if _, err := ar.Predict([]float64{1, 2}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted AR err = %v, want ErrNotFitted", err)
	}
}

func TestARFallbackOnDegenerateData(t *testing.T) {
	cases := [][]float64{
		{},                          // empty
		{1, 2},                      // too short for p=3
		{5, 5, 5, 5, 5, 5},          // constant: zero variance
		{1, math.NaN(), 2, 3, 4, 5}, // NaN poisons autocovariance
	}
	for i, train := range cases {
		ar := NewAR(3)
		if err := ar.Fit(train); err != nil {
			t.Fatalf("case %d: Fit should not fail on degenerate data: %v", i, err)
		}
		if ar.Coefficients() != nil {
			t.Errorf("case %d: expected fallback, got coefficients", i)
		}
		got, err := ar.Predict([]float64{7, 8, 9})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != 9 {
			t.Errorf("case %d: fallback prediction = %g, want LAST (9)", i, got)
		}
	}
}

func TestARWindowTooShort(t *testing.T) {
	ar := fitted(t, NewAR(3), []float64{1, 2, 1, 2, 1, 2, 1, 2})
	if _, err := ar.Predict([]float64{1, 2}); !errors.Is(err, ErrWindowTooShort) {
		t.Error("AR accepted short window")
	}
}

func TestRunAvg(t *testing.T) {
	p := NewRunAvg()
	got, err := p.Predict([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("RUN_AVG = %g, want 2.5", got)
	}
}

func TestMeanPredictor(t *testing.T) {
	p := NewMeanPredictor()
	if _, err := p.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted MEAN did not error")
	}
	fitted(t, p, []float64{2, 4, 6})
	got, err := p.Predict([]float64{999})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("MEAN = %g, want 4", got)
	}
}

func TestSWMedian(t *testing.T) {
	p := NewSWMedian(3)
	got, err := p.Predict([]float64{-100, 1, 100, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("SW_MEDIAN = %g, want 2 (median of 1,100,2)", got)
	}
	// Even-length median averages the middle pair.
	p2 := NewSWMedian(4)
	got, err = p2.Predict([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("even SW_MEDIAN = %g, want 2.5", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	w := []float64{3, 1, 2}
	p := NewSWMedian(3)
	if _, err := p.Predict(w); err != nil {
		t.Fatal(err)
	}
	if w[0] != 3 || w[1] != 1 || w[2] != 2 {
		t.Error("SW_MEDIAN sorted the caller's window")
	}
}

func TestExpSmooth(t *testing.T) {
	p := NewExpSmooth(0.5)
	// s = 0; s = .5*4+.5*0 = 2; s = .5*4+.5*2 = 3
	got, err := p.Predict([]float64{0, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("EXP_SMOOTH = %g, want 3", got)
	}
	// alpha = 1 is LAST.
	p1 := NewExpSmooth(1)
	got, _ = p1.Predict([]float64{1, 2, 9})
	if got != 9 {
		t.Errorf("EXP_SMOOTH(1) = %g, want 9", got)
	}
}

func TestExpSmoothPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewExpSmooth(%g) did not panic", alpha)
				}
			}()
			NewExpSmooth(alpha)
		}()
	}
}

func TestTendency(t *testing.T) {
	p := NewTendency(0.5)
	got, err := p.Predict([]float64{1, 3}) // rising by 2 → 3 + 0.5*2 = 4
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("TENDENCY rising = %g, want 4", got)
	}
	got, _ = p.Predict([]float64{3, 1}) // falling by 2 → 1 - 1 = 0
	if got != 0 {
		t.Errorf("TENDENCY falling = %g, want 0", got)
	}
	got, _ = p.Predict([]float64{2, 2}) // flat
	if got != 2 {
		t.Errorf("TENDENCY flat = %g, want 2", got)
	}
}

func TestPolyFitExactOnPolynomialData(t *testing.T) {
	// A quadratic fit over exact quadratic data must extrapolate exactly.
	w := make([]float64, 6)
	for i := range w {
		x := float64(i)
		w[i] = 2*x*x - 3*x + 1
	}
	p := NewPolyFit(2, 6)
	got, err := p.Predict(w)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*36.0 - 3*6 + 1
	if !almostEqual(got, want, 1e-6) {
		t.Errorf("POLY_FIT = %g, want %g", got, want)
	}
}

func TestPolyFitLinearData(t *testing.T) {
	p := NewPolyFit(1, 4)
	got, err := p.Predict([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 5, 1e-9) {
		t.Errorf("linear POLY_FIT = %g, want 5", got)
	}
}

func TestPolyFitConstructorPanics(t *testing.T) {
	for _, c := range []struct{ d, m int }{{0, 5}, {3, 3}, {5, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPolyFit(%d,%d) did not panic", c.d, c.m)
				}
			}()
			NewPolyFit(c.d, c.m)
		}()
	}
}

func TestAdaptiveWindowAvgPicksGoodWindow(t *testing.T) {
	p := NewAdaptiveWindowAvg(8)
	// Level shift: old level 0, new level 10. A short window adapts; the
	// adaptive expert should predict near 10, not the long-window mean.
	w := []float64{0, 0, 0, 0, 10, 10, 10, 10}
	got, err := p.Predict(w)
	if err != nil {
		t.Fatal(err)
	}
	if got < 9 {
		t.Errorf("ADAPT_AVG = %g, want ~10 after level shift", got)
	}
}

func TestAdaptiveWindowMedianRobustToSpike(t *testing.T) {
	p := NewAdaptiveWindowMedian(8)
	w := []float64{5, 5, 5, 100, 5, 5, 5, 5}
	got, err := p.Predict(w)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("ADAPT_MEDIAN = %g, want 5 despite spike", got)
	}
}

func TestAdaptiveConstructorsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAdaptiveWindowAvg(0) did not panic")
		}
	}()
	NewAdaptiveWindowAvg(0)
}

func TestTendencyPanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTendency(0) did not panic")
		}
	}()
	NewTendency(0)
}
