package predictors

import (
	"math/rand"
	"testing"
)

func benchSeries(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, n)
	for i := 1; i < n; i++ {
		v[i] = 0.7*v[i-1] + rng.NormFloat64()
	}
	return v
}

func BenchmarkARFit(b *testing.B) {
	train := benchSeries(288)
	for i := 0; i < b.N; i++ {
		ar := NewAR(16)
		if err := ar.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMAFit(b *testing.B) {
	train := benchSeries(288)
	for i := 0; i < b.N; i++ {
		m := NewMA(4)
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolPredictAll(b *testing.B) {
	train := benchSeries(288)
	window := train[100:105]
	for _, tc := range []struct {
		name string
		pool *Pool
	}{
		{"paper3", PaperPool(5)},
		{"extended8", ExtendedPool(5)},
		{"full10", FullPool(5)},
	} {
		if err := tc.pool.Fit(train); err != nil {
			b.Fatal(err)
		}
		w := window
		if tc.pool.MaxOrder() > len(w) {
			w = train[100 : 100+tc.pool.MaxOrder()]
		}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tc.pool.PredictAll(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLabelParallel(b *testing.B) {
	train := benchSeries(288)
	pool := PaperPool(5)
	if err := pool.Fit(train); err != nil {
		b.Fatal(err)
	}
	var windows [][]float64
	var targets []float64
	for i := 0; i+5 < len(train); i++ {
		windows = append(windows, train[i:i+5])
		targets = append(targets, train[i+5])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.LabelParallel(windows, targets); err != nil {
			b.Fatal(err)
		}
	}
}
