package predictors

import (
	"fmt"

	"github.com/acis-lab/larpredictor/internal/linalg"
)

// PolyFit is the polynomial-fitting model of Zhang et al. (paper §2, [35]):
// a degree-d polynomial is least-squares fitted to the last m samples
// (abscissae 0..m-1) and evaluated at m to extrapolate one step ahead.
//
// The normal equations are solved with Gaussian elimination; if they are
// singular (e.g. a constant window with degree > 0 and heavy cancellation)
// the model degrades gracefully to last-value prediction.
type PolyFit struct {
	degree int
	m      int
}

// NewPolyFit returns a polynomial extrapolation predictor of the given
// degree over windows of m samples. It panics unless 1 <= degree < m.
func NewPolyFit(degree, m int) *PolyFit {
	if degree < 1 {
		panic(fmt.Sprintf("predictors: POLY_FIT degree %d < 1", degree))
	}
	if m <= degree {
		panic(fmt.Sprintf("predictors: POLY_FIT window %d must exceed degree %d", m, degree))
	}
	return &PolyFit{degree: degree, m: m}
}

// Name implements Predictor.
func (*PolyFit) Name() string { return "POLY_FIT" }

// Order implements Predictor.
func (p *PolyFit) Order() int { return p.m }

// Fit implements Predictor; the polynomial is refit per window.
func (*PolyFit) Fit([]float64) error { return nil }

// Predict implements Predictor.
func (p *PolyFit) Predict(window []float64) (float64, error) {
	if err := checkWindow(p.Name(), window, p.m); err != nil {
		return 0, err
	}
	tail := window[len(window)-p.m:]

	// Build the normal equations XᵀX c = Xᵀy for the Vandermonde system
	// with x = 0..m-1. Dimensions are (degree+1)², tiny.
	k := p.degree + 1
	xtx := linalg.NewMatrix(k, k)
	xty := make([]float64, k)
	for i, y := range tail {
		// powers[j] = x^j
		x := float64(i)
		pow := 1.0
		powers := make([]float64, k)
		for j := 0; j < k; j++ {
			powers[j] = pow
			pow *= x
		}
		for r := 0; r < k; r++ {
			xty[r] += powers[r] * y
			for c := 0; c < k; c++ {
				xtx.Set(r, c, xtx.At(r, c)+powers[r]*powers[c])
			}
		}
	}
	coef, err := linalg.Solve(xtx, xty)
	if err != nil {
		// Degenerate window: fall back to last value.
		return tail[len(tail)-1], nil
	}
	// Evaluate at x = m (one step past the window) via Horner.
	x := float64(p.m)
	val := coef[k-1]
	for j := k - 2; j >= 0; j-- {
		val = val*x + coef[j]
	}
	if !linalg.AllFinite([]float64{val}) {
		return tail[len(tail)-1], nil
	}
	return val, nil
}
