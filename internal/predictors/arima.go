package predictors

import (
	"fmt"
)

// ARIMA is an integrated autoregressive model ARIMA(p, d, 0): the series is
// differenced d times, an AR(p) is fitted to the differences via Yule–Walker,
// and forecasts are integrated back. Dinda's host-load study (paper §2)
// evaluated ARIMA alongside AR; d = 1 handles the level-wandering traces
// where a stationary AR's mean-reversion bias hurts.
type ARIMA struct {
	d  int
	ar *AR

	fitted bool
}

// NewARIMA returns an unfitted ARIMA(p, d, 0). It panics if p < 1 or d < 1
// (for d = 0 use AR directly).
func NewARIMA(p, d int) *ARIMA {
	if d < 1 {
		panic(fmt.Sprintf("predictors: ARIMA differencing order %d < 1", d))
	}
	return &ARIMA{d: d, ar: NewAR(p)}
}

// Name implements Predictor.
func (*ARIMA) Name() string { return "ARIMA" }

// Order implements Predictor: differencing d times consumes d samples
// before the AR window.
func (a *ARIMA) Order() int { return a.ar.Order() + a.d }

// Differencing returns d.
func (a *ARIMA) Differencing() int { return a.d }

// Fit differences the training series d times and fits the inner AR.
func (a *ARIMA) Fit(train []float64) error {
	diffed := train
	for i := 0; i < a.d; i++ {
		diffed = difference(diffed)
	}
	if err := a.ar.Fit(diffed); err != nil {
		return err
	}
	a.fitted = true
	return nil
}

// Predict implements Predictor: forecast the next difference, then integrate
// it back onto the window's trailing values.
func (a *ARIMA) Predict(window []float64) (float64, error) {
	if !a.fitted {
		return 0, fmt.Errorf("ARIMA: %w", ErrNotFitted)
	}
	if err := checkWindow(a.Name(), window, a.Order()); err != nil {
		return 0, err
	}
	// Difference the window d times, remembering the last value at each
	// level for re-integration.
	cur := window
	lasts := make([]float64, a.d)
	for i := 0; i < a.d; i++ {
		lasts[i] = cur[len(cur)-1]
		cur = difference(cur)
	}
	dPred, err := a.ar.Predict(cur)
	if err != nil {
		return 0, fmt.Errorf("ARIMA inner AR: %w", err)
	}
	// Integrate: each level adds back its last observed value.
	pred := dPred
	for i := a.d - 1; i >= 0; i-- {
		pred += lasts[i]
	}
	return pred, nil
}

// difference returns the first differences of v (length len(v)-1).
func difference(v []float64) []float64 {
	if len(v) < 2 {
		return nil
	}
	out := make([]float64, len(v)-1)
	for i := 1; i < len(v); i++ {
		out[i-1] = v[i] - v[i-1]
	}
	return out
}
