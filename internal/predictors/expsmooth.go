package predictors

import "fmt"

// ExpSmooth is simple exponential smoothing, another member of the NWS
// forecaster suite:
//
//	s_t = α·z_t + (1-α)·s_{t-1},  ẑ_{t+1} = s_t
//
// The smoothed state is recomputed over the supplied window on every call,
// which keeps the predictor stateless and safe for concurrent use.
type ExpSmooth struct {
	alpha float64
}

// NewExpSmooth returns an exponential-smoothing predictor with smoothing
// factor alpha in (0, 1]. It panics on an out-of-range alpha.
func NewExpSmooth(alpha float64) *ExpSmooth {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("predictors: EXP_SMOOTH alpha %g outside (0,1]", alpha))
	}
	return &ExpSmooth{alpha: alpha}
}

// Name implements Predictor.
func (*ExpSmooth) Name() string { return "EXP_SMOOTH" }

// Order implements Predictor.
func (*ExpSmooth) Order() int { return 1 }

// Fit implements Predictor; alpha is fixed at construction.
func (*ExpSmooth) Fit([]float64) error { return nil }

// Predict implements Predictor.
func (e *ExpSmooth) Predict(window []float64) (float64, error) {
	if err := checkWindow(e.Name(), window, e.Order()); err != nil {
		return 0, err
	}
	s := window[0]
	for _, z := range window[1:] {
		s = e.alpha*z + (1-e.alpha)*s
	}
	return s, nil
}
