package vmtrace

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/acis-lab/larpredictor/internal/timeseries"
)

func TestStandardTraceSetGeometry(t *testing.T) {
	ts := StandardTraceSet(1)
	for _, prof := range Profiles() {
		for _, m := range Metrics() {
			s, err := ts.Get(prof.VM, m)
			if err != nil {
				t.Fatal(err)
			}
			if s.Len() != prof.Samples {
				t.Errorf("%s/%s: %d samples, want %d", prof.VM, m, s.Len(), prof.Samples)
			}
			if s.Interval != prof.Interval {
				t.Errorf("%s/%s: interval %v, want %v", prof.VM, m, s.Interval, prof.Interval)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%s/%s: %v", prof.VM, m, err)
			}
		}
	}
	if len(ts.All()) != 60 {
		t.Errorf("All returned %d traces, want 60", len(ts.All()))
	}
}

func TestTraceSetDeterministic(t *testing.T) {
	a := StandardTraceSet(42)
	b := StandardTraceSet(42)
	for _, vm := range VMs() {
		for _, m := range Metrics() {
			sa, _ := a.Get(vm, m)
			sb, _ := b.Get(vm, m)
			for i := range sa.Values {
				if sa.Values[i] != sb.Values[i] {
					t.Fatalf("%s/%s: not deterministic at %d", vm, m, i)
				}
			}
		}
	}
}

func TestTraceSetSeedSensitivity(t *testing.T) {
	a := StandardTraceSet(1)
	b := StandardTraceSet(2)
	sa, _ := a.Get(VM2, CPUUsedSec)
	sb, _ := b.Get(VM2, CPUUsedSec)
	same := true
	for i := range sa.Values {
		if sa.Values[i] != sb.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestTracesIndependentAcrossVMsAndMetrics(t *testing.T) {
	ts := StandardTraceSet(7)
	a, _ := ts.Get(VM2, CPUUsedSec)
	b, _ := ts.Get(VM4, CPUUsedSec)
	same := true
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("VM2 and VM4 CPU traces are identical")
	}
}

func TestIdleDevicesAreConstant(t *testing.T) {
	ts := StandardTraceSet(3)
	idleCells := []struct {
		vm VMID
		m  Metric
	}{
		{VM3, MemSwap}, {VM3, NIC2RX}, {VM3, NIC2TX}, {VM3, VD1Read}, {VM3, VD1Write},
		{VM5, NIC1RX}, {VM5, NIC1TX}, {VM5, VD2Read},
	}
	for _, c := range idleCells {
		s, err := ts.Get(c.vm, c.m)
		if err != nil {
			t.Fatal(err)
		}
		if !s.IsConstant(0) {
			t.Errorf("%s/%s should be an idle (constant) trace", c.vm, c.m)
		}
	}
	// And a busy cell must not be constant.
	s, _ := ts.Get(VM2, NIC1RX)
	if s.IsConstant(0) {
		t.Error("VM2 NIC1_received should be bursty, not constant")
	}
}

func TestNonNegativityOfResourceTraces(t *testing.T) {
	ts := StandardTraceSet(5)
	for _, s := range ts.All() {
		for i, v := range s.Values {
			if v < 0 {
				t.Fatalf("%s[%d] = %g < 0", s.Name, i, v)
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	ts := StandardTraceSet(1)
	if _, err := ts.Get("VM9", CPUUsedSec); err == nil {
		t.Error("accepted unknown VM")
	}
	if _, err := ts.Get(VM1, "bogus"); err == nil {
		t.Error("accepted unknown metric")
	}
}

func TestCPUTracesAreAutocorrelated(t *testing.T) {
	// The central premise (Dinda): CPU load is strongly correlated over
	// time, making history-based prediction feasible.
	ts := StandardTraceSet(11)
	for _, vm := range VMs() {
		s, _ := ts.Get(vm, CPUUsedSec)
		rho, err := timeseries.Autocorrelation(s.Values, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rho < 0.3 {
			t.Errorf("%s CPU lag-1 autocorrelation = %g, want >= 0.3", vm, rho)
		}
	}
}

func TestMemoryTracesAreSmootherThanNetwork(t *testing.T) {
	// Coefficient of step-to-step change: memory must be much smoother than
	// the bursty VNC network trace (the paper's smooth-vs-peaky contrast).
	ts := StandardTraceSet(13)
	roughness := func(v []float64) float64 {
		sd := timeseries.StdDev(v)
		if sd == 0 {
			return 0
		}
		var s float64
		for i := 1; i < len(v); i++ {
			s += math.Abs(v[i] - v[i-1])
		}
		return s / float64(len(v)-1) / sd
	}
	mem, _ := ts.Get(VM1, MemSize)
	net, _ := ts.Get(VM2, NIC1RX)
	if roughness(mem.Values) >= roughness(net.Values) {
		t.Errorf("memory roughness %g >= network roughness %g",
			roughness(mem.Values), roughness(net.Values))
	}
}

func TestBatchJobsLoadConservation(t *testing.T) {
	// Total integrated demand must roughly equal the sum of job durations
	// times their load (jobs that overrun the trace end are truncated, and
	// background load adds a floor, so check within a tolerant band).
	b := BatchJobs{
		TotalJobs: 50,
		Mix:       []JobClass{{Fraction: 1, MinDur: 30 * time.Minute, MaxDur: 30 * time.Minute, Load: 1}},
		Interval:  30 * time.Minute,
	}
	rng := rand.New(rand.NewSource(1))
	v := b.Generate(1000, rng)
	var total float64
	for _, x := range v {
		total += x
	}
	// 50 jobs × 1 sample × load 1 = 50 sample-units of demand.
	if total < 40 || total > 55 {
		t.Errorf("integrated batch demand = %g, want ≈50", total)
	}
}

func TestBatchJobsNonNegative(t *testing.T) {
	b := BatchJobs{TotalJobs: 310, Mix: PaperJobMix(), Interval: 30 * time.Minute, Background: 0.05, Jitter: 0.3}
	rng := rand.New(rand.NewSource(2))
	for _, x := range b.Generate(336, rng) {
		if x < 0 {
			t.Fatal("negative batch demand")
		}
	}
}

func TestPaperJobMixFractions(t *testing.T) {
	var sum float64
	for _, c := range PaperJobMix() {
		sum += c.Fraction
	}
	if math.Abs(sum-1) > 0.001 {
		t.Errorf("job mix fractions sum to %g", sum)
	}
}

func TestLoad15Shape(t *testing.T) {
	s := Load15(1)
	if s.Len() != 144 {
		t.Errorf("Load15 has %d samples, want 144 (12h at 5min)", s.Len())
	}
	if s.Name != "VM2_load15" {
		t.Errorf("name = %q", s.Name)
	}
	// A 15-minute load average is smooth: lag-1 autocorrelation high.
	rho, err := timeseries.Autocorrelation(s.Values, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.6 {
		t.Errorf("Load15 lag-1 autocorrelation = %g, want >= 0.6", rho)
	}
	for _, v := range s.Values {
		if v < 0 {
			t.Fatal("negative load average")
		}
	}
}

func TestPktInShape(t *testing.T) {
	s := PktIn(1)
	if s.Len() != 144 || s.Name != "VM2_PktIn" {
		t.Errorf("PktIn = %q with %d samples", s.Name, s.Len())
	}
	// Bursty: the trace must span a wide dynamic range.
	lo, hi := s.Values[0], s.Values[0]
	for _, v := range s.Values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < 10*(lo+1) {
		t.Errorf("PktIn range [%g, %g] not bursty", lo, hi)
	}
}

func TestProcessGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		p    Process
	}{
		{"ARSource", ARSource{Phi: []float64{0.5}, Noise: 1, Mean: 10, Scale: 2}},
		{"OnOff", OnOff{POnToOff: 0.1, POffToOn: 0.1, OffLevel: 0, OnLevel: 10, Jitter: 1}},
		{"Diurnal", Diurnal{Amplitude: 5, Period: 288}},
		{"RandomSteps", RandomSteps{PJump: 0.05, LevelMin: 0, LevelMax: 10, Jitter: 0.1}},
		{"Spikes", Spikes{Rate: 0.1, Floor: 1, MagMin: 5, MagMax: 10, Decay: 0.5}},
		{"MeanReverting", MeanReverting{Reversion: 0.3, LevelDrift: 0.5, Noise: 1, Mean: 5}},
		{"Constant", Constant{Level: 3}},
		{"Sum", Sum{Constant{Level: 1}, Constant{Level: 2}}},
		{"ClampMin", ClampMin{P: ARSource{Phi: nil, Noise: 5}, Min: 0}},
		{"Couple", Couple{Base: Constant{Level: 2}, Driver: Diurnal{Amplitude: 1, Period: 10}, Gain: 1}},
	}
	for _, c := range cases {
		v := c.p.Generate(100, rng)
		if len(v) != 100 {
			t.Errorf("%s: %d samples", c.name, len(v))
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("%s[%d] = %g", c.name, i, x)
				break
			}
		}
	}
	// Spot-check semantics.
	sum := Sum{Constant{Level: 1}, Constant{Level: 2}}.Generate(5, rng)
	for _, x := range sum {
		if x != 3 {
			t.Errorf("Sum = %g, want 3", x)
		}
	}
	cl := ClampMin{P: Constant{Level: -5}, Min: 0}.Generate(5, rng)
	for _, x := range cl {
		if x != 0 {
			t.Errorf("ClampMin = %g, want 0", x)
		}
	}
}

func TestDiurnalPeriodicity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := Diurnal{Amplitude: 2, Period: 24}.Generate(48, rng)
	for i := 0; i < 24; i++ {
		if math.Abs(v[i]-v[i+24]) > 1e-9 {
			t.Fatalf("diurnal not periodic at %d", i)
		}
	}
}
