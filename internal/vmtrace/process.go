// Package vmtrace synthesizes the virtual-machine resource-usage traces the
// paper's evaluation runs on. The originals — vmkusage measurements of five
// production VMs on a VMware ESX 2.5.2 host — are proprietary, so this
// package implements the closest synthetic equivalent: stochastic workload
// processes composed per VM and per metric so that the trace set exhibits
// the statistical regimes the paper's analysis depends on (autocorrelated
// peaky CPU load, step-wise memory allocations, bursty on/off network and
// disk traffic, near-idle devices, and regime changes over time).
//
// Every trace is a deterministic function of (base seed, VM, metric), so the
// experiment drivers and benchmarks are exactly reproducible.
package vmtrace

import (
	"math"
	"math/rand"
)

// Process is a stochastic time-series generator. Generate draws n samples
// using the supplied source of randomness; implementations must consume
// randomness only from rng so composite processes stay reproducible.
type Process interface {
	Generate(n int, rng *rand.Rand) []float64
}

// ARSource is an autoregressive noise process with configurable mean and
// scale: the workhorse for CPU-style metrics that are strongly correlated
// over time (Dinda's host-load finding, paper §2).
type ARSource struct {
	// Phi holds the AR coefficients (Phi[0] multiplies the previous value).
	Phi []float64
	// Noise is the innovation standard deviation.
	Noise float64
	// Mean and Scale map the zero-mean process into metric units.
	Mean, Scale float64
}

// Generate implements Process.
func (a ARSource) Generate(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j, c := range a.Phi {
			if i-1-j >= 0 {
				s += c * v[i-1-j]
			}
		}
		v[i] = s + a.Noise*rng.NormFloat64()
	}
	out := make([]float64, n)
	for i, x := range v {
		out[i] = a.Mean + a.Scale*x
	}
	return out
}

// OnOff is a two-state burst source: it alternates between an idle level
// and a busy level with geometric dwell times, the classic model for
// packet-train network traffic and user-session activity.
type OnOff struct {
	// POnToOff and POffToOn are the per-sample transition probabilities.
	POnToOff, POffToOn float64
	// OffLevel and OnLevel are the state means; Jitter is the in-state
	// noise standard deviation.
	OffLevel, OnLevel, Jitter float64
}

// Generate implements Process.
func (o OnOff) Generate(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	on := rng.Float64() < 0.5
	for i := 0; i < n; i++ {
		if on {
			if rng.Float64() < o.POnToOff {
				on = false
			}
		} else if rng.Float64() < o.POffToOn {
			on = true
		}
		level := o.OffLevel
		if on {
			level = o.OnLevel
		}
		v[i] = level + o.Jitter*rng.NormFloat64()
	}
	return v
}

// Diurnal is a deterministic daily cycle: amplitude·sin(2π·i/period + phase).
// Web-server traffic in the paper's VMs follows the workday.
type Diurnal struct {
	Amplitude float64
	// Period is the cycle length in samples (e.g. 288 for a day of 5-minute
	// samples).
	Period float64
	Phase  float64
}

// Generate implements Process.
func (d Diurnal) Generate(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		v[i] = d.Amplitude * math.Sin(2*math.Pi*float64(i)/d.Period+d.Phase)
	}
	return v
}

// RandomSteps holds a level for a geometrically distributed time, then jumps
// to a new level — the shape of memory-size traces, which move only when the
// guest balloons or an application (de)allocates.
type RandomSteps struct {
	// PJump is the per-sample probability of a level change.
	PJump float64
	// LevelMin and LevelMax bound the uniformly drawn levels.
	LevelMin, LevelMax float64
	// Jitter is a small per-sample noise so traces are not exactly constant.
	Jitter float64
}

// Generate implements Process.
func (r RandomSteps) Generate(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	level := r.LevelMin + rng.Float64()*(r.LevelMax-r.LevelMin)
	for i := 0; i < n; i++ {
		if rng.Float64() < r.PJump {
			level = r.LevelMin + rng.Float64()*(r.LevelMax-r.LevelMin)
		}
		v[i] = level + r.Jitter*rng.NormFloat64()
	}
	return v
}

// Spikes is a Poisson spike train over a quiet floor — disk I/O bursts from
// periodic flushes, cron jobs, and interactive storms.
type Spikes struct {
	// Rate is the per-sample spike probability.
	Rate float64
	// Floor is the quiescent level; FloorJitter its noise.
	Floor, FloorJitter float64
	// MagMin and MagMax bound the uniformly drawn spike magnitude.
	MagMin, MagMax float64
	// Decay carries a fraction of a spike into following samples
	// (0 = impulse, 0.5 = geometric tail).
	Decay float64
}

// Generate implements Process.
func (s Spikes) Generate(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	var carry float64
	for i := 0; i < n; i++ {
		carry *= s.Decay
		if rng.Float64() < s.Rate {
			carry += s.MagMin + rng.Float64()*(s.MagMax-s.MagMin)
		}
		v[i] = s.Floor + carry + s.FloorJitter*rng.NormFloat64()
	}
	return v
}

// MeanReverting is an Ornstein–Uhlenbeck-style process: heavy noise around a
// slowly wandering level. Window averages beat both last-value and global
// mean here, giving the SW_AVG expert traces it can win.
type MeanReverting struct {
	// Reversion in (0,1) pulls toward the wandering level each step.
	Reversion float64
	// LevelDrift is the random-walk step of the level itself.
	LevelDrift float64
	// Noise is the per-sample observation noise.
	Noise float64
	// Mean is the starting level.
	Mean float64
}

// Generate implements Process.
func (m MeanReverting) Generate(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	level := m.Mean
	x := m.Mean
	for i := 0; i < n; i++ {
		level += m.LevelDrift * rng.NormFloat64()
		x += m.Reversion*(level-x) + m.Noise*rng.NormFloat64()
		v[i] = x
	}
	return v
}

// QuietLoud is a two-regime workload: a *quiet* state where the metric
// tracks a slowly drifting level with small jitter (last-value prediction is
// nearly exact) and a *loud* state where heavy noise erupts around the level
// (a window average is the best one-step predictor, and last-value is the
// worst). Dwell times are geometric.
//
// This is the regime structure the paper's production traces exhibit — "the
// best prediction model for a specific type of resource of a given VM trace
// varies as a function of time" (§1, finding 3) — and it is what gives an
// adaptive per-window selector its edge over the NWS cumulative selector,
// which can only lock onto the single expert that is best on time-average.
type QuietLoud struct {
	// PQuietToLoud and PLoudToQuiet are per-sample transition probabilities.
	PQuietToLoud, PLoudToQuiet float64
	// Mean is the base level. Swing bounds a piecewise-linear demand trend
	// around it: the level ramps with a constant slope for a geometrically
	// distributed stretch, then picks a new random slope. Period sets the
	// mean stretch length in samples. The smooth trend is what separates
	// the experts in the quiet state: last-value prediction trails it by
	// one step while a window average lags by half a window and pays
	// quadratically for it — and slope breaks keep the trend from being a
	// stationary pattern a global AR fit can lock onto.
	Mean, Swing, Period float64
	// MinDwell is the minimum number of samples spent in a state before a
	// transition roll is allowed. Geometric dwell times alone produce many
	// one-sample regime blips that no window-based selector can act on;
	// real sessions and bursts have a natural minimum duration.
	MinDwell int
	// Attack is the number of samples over which the loud offset ramps in
	// on regime entry and decays on exit (0 = instantaneous). Real bursts
	// build up — connections pile on over minutes — and the ramp is what
	// lets a window-shape classifier see a regime change coming instead of
	// paying the full surprise jump.
	Attack int
	// MixDrift in [0,1) skews the loud-state occupancy across the trace:
	// the probability of entering the loud state ramps from
	// (1-MixDrift)·PQuietToLoud at the start to (1+MixDrift)·PQuietToLoud
	// at the end. Real daily traces do this — sessions pile up toward the
	// busy hours — and it is the nonstationarity that defeats selectors
	// that trust the whole history equally: the regime mix the NWS
	// cumulative selector averaged over is no longer the mix it faces.
	MixDrift float64
	// QuietJitter is the small noise amplitude in the quiet state.
	QuietJitter float64
	// LoudAmp is the heavy uniform ±noise amplitude in the loud state —
	// the regime where the window average wins and last-value pays the
	// full sample-to-sample swing.
	LoudAmp float64
	// LoudOffset raises the level while loud: activity bursts shift the
	// mean as well as the variance (an idle NIC jumps to a busy plateau,
	// not to zero-mean noise). The offset is what makes the regime visible
	// to a window-mean feature — the first principal component — so the
	// k-NN classifier can tell the regimes apart.
	LoudOffset float64
}

// Generate implements Process.
func (q QuietLoud) Generate(n int, rng *rand.Rand) []float64 {
	v, _ := q.GenerateLabeled(n, rng)
	return v
}

// GenerateLabeled is Generate plus the ground-truth regime sequence
// (loud[i] reports whether sample i was drawn in the loud state). The labels
// let tests and research code measure how well a window classifier recovers
// the latent regime — the quantity the LARPredictor's accuracy ultimately
// rests on.
func (q QuietLoud) GenerateLabeled(n int, rng *rand.Rand) (values []float64, loudAt []bool) {
	v := make([]float64, n)
	loudAt = make([]bool, n)
	loud := rng.Float64() < 0.5
	period := q.Period
	if period <= 0 {
		period = 48
	}
	// Piecewise-linear trend state.
	level := q.Mean
	newSlope := func() float64 {
		if period <= 1 {
			return 0
		}
		// A slope magnitude that traverses up to the full swing within one
		// stretch; the sign is random.
		return (2*rng.Float64() - 1) * 2 * q.Swing / period
	}
	slope := newSlope()
	intensity := 0.0
	if loud {
		intensity = 1
	}
	dwell := 0

	for i := 0; i < n; i++ {
		// Regime transitions, with the loud-entry rate drifting over the
		// trace.
		ramp := 1.0
		if n > 1 {
			ramp = 1 + q.MixDrift*(2*float64(i)/float64(n-1)-1)
		}
		dwell++
		if dwell >= q.MinDwell {
			if loud {
				if rng.Float64() < q.PLoudToQuiet {
					loud = false
					dwell = 0
				}
			} else if rng.Float64() < q.PQuietToLoud*ramp {
				loud = true
				dwell = 0
			}
		}

		// Trend evolution: follow the slope, bounce at the swing bounds,
		// occasionally break to a fresh slope.
		if rng.Float64() < 1/period {
			slope = newSlope()
		}
		level += slope
		if level > q.Mean+q.Swing {
			level = q.Mean + q.Swing
			slope = -absFloat(slope)
		} else if level < q.Mean-q.Swing {
			level = q.Mean - q.Swing
			slope = absFloat(slope)
		}

		// Loud intensity follows the regime with an attack/decay ramp.
		target := 0.0
		if loud {
			target = 1
		}
		if q.Attack > 0 {
			step := 1 / float64(q.Attack)
			if intensity < target {
				intensity += step
				if intensity > target {
					intensity = target
				}
			} else if intensity > target {
				intensity -= step
				if intensity < target {
					intensity = target
				}
			}
		} else {
			intensity = target
		}

		if intensity > 0 {
			v[i] = level + intensity*(q.LoudOffset+q.LoudAmp*(2*rng.Float64()-1))
		} else {
			v[i] = level + q.QuietJitter*rng.NormFloat64()
		}
		loudAt[i] = loud
	}
	return v, loudAt
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Constant is a flat line with optional jitter — the "NaN" device traces of
// the paper's Table 3, where a virtual device simply was not exercised.
type Constant struct {
	Level  float64
	Jitter float64
}

// Generate implements Process.
func (c Constant) Generate(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		v[i] = c.Level + c.Jitter*rng.NormFloat64()
	}
	return v
}

// Sum superimposes component processes sample-wise.
type Sum []Process

// Generate implements Process.
func (s Sum) Generate(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for _, p := range s {
		for i, x := range p.Generate(n, rng) {
			v[i] += x
		}
	}
	return v
}

// ClampMin floors every sample of the inner process — resource counters
// cannot go negative.
type ClampMin struct {
	P   Process
	Min float64
}

// Generate implements Process.
func (c ClampMin) Generate(n int, rng *rand.Rand) []float64 {
	v := c.P.Generate(n, rng)
	for i, x := range v {
		if x < c.Min {
			v[i] = c.Min
		}
	}
	return v
}

// Couple scales a base process by (1 + Gain·driver), modelling metrics that
// shadow another metric — e.g. CPU_ready grows with CPU contention, packet
// counts follow byte counts.
type Couple struct {
	Base, Driver Process
	Gain         float64
}

// Generate implements Process.
func (c Couple) Generate(n int, rng *rand.Rand) []float64 {
	base := c.Base.Generate(n, rng)
	drv := c.Driver.Generate(n, rng)
	// Normalize the driver to [0,1] by its own range to keep Gain portable.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range drv {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	span := hi - lo
	v := make([]float64, n)
	for i := range v {
		d := 0.0
		if span > 0 {
			d = (drv[i] - lo) / span
		}
		v[i] = base[i] * (1 + c.Gain*d)
	}
	return v
}
