package vmtrace

import (
	"math/rand"
	"sort"
	"time"
)

// JobClass describes one class in a batch-job mix.
type JobClass struct {
	// Fraction of all jobs belonging to this class (fractions should sum
	// to ~1).
	Fraction float64
	// MinDur and MaxDur bound the class's uniformly drawn job duration.
	MinDur, MaxDur time.Duration
	// Load is the CPU demand one running job of this class contributes
	// (1.0 = one fully busy virtual CPU).
	Load float64
}

// PaperJobMix is the VM1 workload of the paper's §7: "total 310 jobs were
// executed varying with a mix of 93.55% short running jobs (1-2 seconds),
// 3.87% medium running jobs (2-10 minutes), and 2.58% long running jobs
// (45-50 minutes)" over a 7-day trace.
func PaperJobMix() []JobClass {
	return []JobClass{
		{Fraction: 0.9355, MinDur: 1 * time.Second, MaxDur: 2 * time.Second, Load: 0.9},
		{Fraction: 0.0387, MinDur: 2 * time.Minute, MaxDur: 10 * time.Minute, Load: 0.8},
		{Fraction: 0.0258, MinDur: 45 * time.Minute, MaxDur: 50 * time.Minute, Load: 0.7},
	}
}

// BatchJobs simulates a batch queue (the PBS head node of VM1): TotalJobs
// arrive at uniformly random times across the trace, run for a
// class-dependent duration, and contribute CPU demand while active. The
// generated series is the average CPU demand in each sample interval.
type BatchJobs struct {
	// TotalJobs arrive over the whole trace (310 in the paper).
	TotalJobs int
	// Mix is the job-class mix; see PaperJobMix.
	Mix []JobClass
	// Interval is the sample interval the demand is averaged over.
	Interval time.Duration
	// Background is an additive idle-load floor with jitter.
	Background, Jitter float64
}

// Generate implements Process. It draws each job's class, arrival, and
// duration, then integrates per-sample CPU demand.
func (b BatchJobs) Generate(n int, rng *rand.Rand) []float64 {
	type job struct {
		start, end float64 // in sample units
		load       float64
	}
	span := float64(n)
	jobs := make([]job, 0, b.TotalJobs)
	for j := 0; j < b.TotalJobs; j++ {
		cls := b.drawClass(rng)
		start := rng.Float64() * span
		durSamples := b.drawDuration(cls, rng)
		jobs = append(jobs, job{start: start, end: start + durSamples, load: cls.Load})
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].start < jobs[k].start })

	v := make([]float64, n)
	for _, jb := range jobs {
		lo := int(jb.start)
		hi := int(jb.end)
		if hi >= n {
			hi = n - 1
		}
		for i := lo; i <= hi && i < n; i++ {
			// Fraction of sample i covered by [start, end).
			cover := overlap(float64(i), float64(i+1), jb.start, jb.end)
			v[i] += jb.load * cover
		}
	}
	for i := range v {
		v[i] += b.Background + b.Jitter*rng.NormFloat64()
		if v[i] < 0 {
			v[i] = 0
		}
	}
	return v
}

func (b BatchJobs) drawClass(rng *rand.Rand) JobClass {
	x := rng.Float64()
	var cum float64
	for _, c := range b.Mix {
		cum += c.Fraction
		if x < cum {
			return c
		}
	}
	return b.Mix[len(b.Mix)-1]
}

// drawDuration returns a uniformly drawn duration in sample units.
func (b BatchJobs) drawDuration(c JobClass, rng *rand.Rand) float64 {
	d := c.MinDur + time.Duration(rng.Float64()*float64(c.MaxDur-c.MinDur))
	return float64(d) / float64(b.Interval)
}

// overlap returns the length of the intersection of [a0,a1) and [b0,b1).
func overlap(a0, a1, b0, b1 float64) float64 {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
