package vmtrace

import (
	"math"
	"math/rand"
	"testing"
)

// strongQL returns the calibrated strong-regime process used by the trace
// set, at unit scale.
func strongQL() QuietLoud {
	return QuietLoud{
		PQuietToLoud: 0.030, PLoudToQuiet: 0.035,
		MinDwell: 16, Attack: 4, MixDrift: 0.6,
		Mean: 100, Swing: 20, Period: 48,
		QuietJitter: 0.3, LoudAmp: 50, LoudOffset: 130,
	}
}

func TestGenerateLabeledConsistentWithGenerate(t *testing.T) {
	q := strongQL()
	a := q.Generate(288, rand.New(rand.NewSource(3)))
	b, labels := q.GenerateLabeled(288, rand.New(rand.NewSource(3)))
	if len(b) != 288 || len(labels) != 288 {
		t.Fatalf("lengths %d/%d", len(b), len(labels))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Generate and GenerateLabeled diverge for the same seed")
		}
	}
}

func TestLabeledRegimesSeparateLevels(t *testing.T) {
	q := strongQL()
	vals, labels := q.GenerateLabeled(2000, rand.New(rand.NewSource(4)))
	var quietSum, loudSum float64
	var quietN, loudN int
	for i, v := range vals {
		if labels[i] {
			loudSum += v
			loudN++
		} else {
			quietSum += v
			quietN++
		}
	}
	if quietN == 0 || loudN == 0 {
		t.Fatalf("degenerate regime occupancy: quiet=%d loud=%d", quietN, loudN)
	}
	quietMean := quietSum / float64(quietN)
	loudMean := loudSum / float64(loudN)
	// The loud offset is 1.3×mean; the regime means must be well separated.
	if loudMean-quietMean < 0.5*q.LoudOffset {
		t.Errorf("regime means too close: quiet %g loud %g", quietMean, loudMean)
	}
}

func TestLabeledMinDwellRespected(t *testing.T) {
	q := strongQL()
	_, labels := q.GenerateLabeled(5000, rand.New(rand.NewSource(5)))
	run := 1
	for i := 1; i < len(labels); i++ {
		if labels[i] == labels[i-1] {
			run++
			continue
		}
		if run < q.MinDwell {
			t.Fatalf("dwell of %d below MinDwell %d at %d", run, q.MinDwell, i)
		}
		run = 1
	}
}

func TestLabeledMixDriftSkewsOccupancy(t *testing.T) {
	q := strongQL()
	q.MixDrift = 0.9
	_, labels := q.GenerateLabeled(4000, rand.New(rand.NewSource(6)))
	half := len(labels) / 2
	early, late := 0, 0
	for i, l := range labels {
		if !l {
			continue
		}
		if i < half {
			early++
		} else {
			late++
		}
	}
	if late <= early {
		t.Errorf("mix drift did not skew loud occupancy: early=%d late=%d", early, late)
	}
}

func TestLabeledValuesFiniteNonNegativeAfterClamp(t *testing.T) {
	q := strongQL()
	vals, _ := q.GenerateLabeled(1000, rand.New(rand.NewSource(7)))
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("value[%d] = %g", i, v)
		}
	}
}
