package vmtrace

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"github.com/acis-lab/larpredictor/internal/timeseries"
)

// Metric names the twelve vmkusage performance metrics of the paper's
// Table 2.
type Metric string

// The canonical metric set, in the paper's table order.
const (
	CPUUsedSec Metric = "CPU_usedsec"
	CPUReady   Metric = "CPU_ready"
	MemSize    Metric = "Memory_size"
	MemSwap    Metric = "Memory_swapped"
	NIC1RX     Metric = "NIC1_received"
	NIC1TX     Metric = "NIC1_transmitted"
	NIC2RX     Metric = "NIC2_received"
	NIC2TX     Metric = "NIC2_transmitted"
	VD1Read    Metric = "VD1_read"
	VD1Write   Metric = "VD1_write"
	VD2Read    Metric = "VD2_read"
	VD2Write   Metric = "VD2_write"
)

// Metrics lists all twelve metrics in table order.
func Metrics() []Metric {
	return []Metric{
		CPUUsedSec, CPUReady, MemSize, MemSwap,
		NIC1RX, NIC1TX, NIC2RX, NIC2TX,
		VD1Read, VD1Write, VD2Read, VD2Write,
	}
}

// VMID names one of the five traced virtual machines.
type VMID string

// The five VMs of the paper's §7.
const (
	VM1 VMID = "VM1" // web server, Globus GRAM/MDS, GridFTP, PBS head node
	VM2 VMID = "VM2" // Linux port-forwarding proxy for VNC sessions
	VM3 VMID = "VM3" // WindowsXP-based calendar
	VM4 VMID = "VM4" // web server, list server, Wiki server
	VM5 VMID = "VM5" // web server
)

// VMs lists the five VMs in paper order.
func VMs() []VMID { return []VMID{VM1, VM2, VM3, VM4, VM5} }

// Profile describes one VM's trace-collection parameters.
type Profile struct {
	VM          VMID
	Description string
	// Samples and Interval define the trace geometry: VM1 is 7 days at
	// 30-minute intervals (336 samples); the others are 24 hours at
	// 5-minute intervals (288 samples).
	Samples  int
	Interval time.Duration
}

// Profiles returns the five paper profiles.
func Profiles() []Profile {
	return []Profile{
		{VM: VM1, Description: "web server, Globus GRAM/MDS + GridFTP, PBS head node", Samples: 336, Interval: 30 * time.Minute},
		{VM: VM2, Description: "Linux port-forwarding proxy for VNC sessions", Samples: 288, Interval: 5 * time.Minute},
		{VM: VM3, Description: "WindowsXP based calendar", Samples: 288, Interval: 5 * time.Minute},
		{VM: VM4, Description: "web server, list server, Wiki server", Samples: 288, Interval: 5 * time.Minute},
		{VM: VM5, Description: "web server", Samples: 288, Interval: 5 * time.Minute},
	}
}

// traceStart anchors all generated traces at a fixed instant so trace
// timestamps — and hence CSV output — are reproducible.
var traceStart = time.Date(2006, 10, 2, 0, 0, 0, 0, time.UTC)

// TraceSet is the full five-VM × twelve-metric synthetic trace collection.
type TraceSet struct {
	seed   int64
	series map[VMID]map[Metric]*timeseries.Series
}

// StandardTraceSet generates the complete trace set for a base seed. Every
// (vm, metric) trace is an independent deterministic function of the seed.
func StandardTraceSet(seed int64) *TraceSet {
	ts := &TraceSet{seed: seed, series: make(map[VMID]map[Metric]*timeseries.Series)}
	for _, prof := range Profiles() {
		ts.series[prof.VM] = make(map[Metric]*timeseries.Series)
		for _, metric := range Metrics() {
			proc := processFor(prof.VM, metric, prof)
			rng := rand.New(rand.NewSource(subSeed(seed, string(prof.VM), string(metric))))
			values := proc.Generate(prof.Samples, rng)
			name := fmt.Sprintf("%s_%s", prof.VM, metric)
			ts.series[prof.VM][metric] = timeseries.New(name, traceStart, prof.Interval, values)
		}
	}
	return ts
}

// Seed returns the base seed the set was generated from.
func (ts *TraceSet) Seed() int64 { return ts.seed }

// Get returns the trace for one VM and metric.
func (ts *TraceSet) Get(vm VMID, metric Metric) (*timeseries.Series, error) {
	byMetric, ok := ts.series[vm]
	if !ok {
		return nil, fmt.Errorf("vmtrace: unknown VM %q", vm)
	}
	s, ok := byMetric[metric]
	if !ok {
		return nil, fmt.Errorf("vmtrace: unknown metric %q", metric)
	}
	return s, nil
}

// All returns every trace in deterministic (VM, metric) order.
func (ts *TraceSet) All() []*timeseries.Series {
	var out []*timeseries.Series
	for _, vm := range VMs() {
		for _, m := range Metrics() {
			out = append(out, ts.series[vm][m])
		}
	}
	return out
}

// subSeed derives a stable per-trace seed from the base seed and labels.
func subSeed(seed int64, labels ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
	}
	h.Write(buf[:])
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	return int64(h.Sum64())
}

// idle reports whether a (vm, metric) device is unused — the paper's NaN
// cells in Table 3: devices the workload never exercised, whose traces are
// exactly constant.
func idle(vm VMID, metric Metric) bool {
	switch vm {
	case VM3:
		switch metric {
		case MemSwap, NIC2RX, NIC2TX, VD1Read, VD1Write:
			return true
		}
	case VM5:
		switch metric {
		case NIC1RX, NIC1TX, VD2Read:
			return true
		}
	}
	return false
}

// regime intensity classes for the workload mixture. The paper's production
// traces mix all three: some metrics sit in one statistical regime for the
// whole day (stationary — a single expert dominates and the LARPredictor has
// nothing to exploit), some drift between regimes slowly (mild — the NWS
// cumulative selector locks onto a stale expert but the best single expert
// still beats per-window selection), and some switch hard between quiet and
// loud phases (strong — per-window selection beats every single expert).
const (
	regimeStationary = iota
	regimeMild
	regimeStrong
)

// quietLoud builds a QuietLoud process at a given mean scale and intensity.
// The demand-cycle period is given in samples (a day for the 5-minute
// traces).
func quietLoud(mean float64, period float64, intensity int) Process {
	switch intensity {
	case regimeMild:
		return QuietLoud{
			PQuietToLoud: 0.030, PLoudToQuiet: 0.035,
			MinDwell: 12, Attack: 4, MixDrift: 0.6,
			Mean: mean, Swing: 0.25 * mean, Period: period,
			QuietJitter: 0.005 * mean,
			LoudAmp:     0.30 * mean, LoudOffset: 0.60 * mean,
		}
	default: // regimeStrong
		return QuietLoud{
			PQuietToLoud: 0.030, PLoudToQuiet: 0.035,
			MinDwell: 16, Attack: 4, MixDrift: 0.6,
			Mean: mean, Swing: 0.20 * mean, Period: period,
			QuietJitter: 0.003 * mean,
			LoudAmp:     0.50 * mean, LoudOffset: 1.30 * mean,
		}
	}
}

// stationaryAR builds an autocorrelated single-regime process (AR's home
// turf, the paper's CPU finding).
func stationaryAR(mean, scale float64) Process {
	return ARSource{Phi: []float64{0.55, 0.25}, Noise: 1, Mean: mean, Scale: scale}
}

// processFor composes the stochastic process for one (vm, metric) trace.
// The shapes follow the paper's workload descriptions: VM1 is dominated by
// the PBS batch mix, VM2 by VNC sessions, VM3 is a near-idle desktop, VM4
// and VM5 are diurnal web servers. Memory metrics are step-wise (LAST
// territory), CPU metrics autocorrelated (AR territory), network and disk
// bursty — with the stationary/mild/strong regime mixture chosen per cell so
// the trace set reproduces Table 3's heterogeneity.
// intensityTable assigns each (vm, metric) cell its regime intensity. The
// mixture mirrors the paper's Table 3 heterogeneity: most cells switch
// regimes (that is what production consolidation hosts do and what gives the
// LARPredictor its wins), a band of cells is mild, and a residue is
// stationary AR/step/spike territory where a single expert rules unstarred.
var intensityTable = map[VMID]map[Metric]int{
	VM1: {
		CPUReady: regimeStrong, NIC1RX: regimeStrong, NIC1TX: regimeMild,
		NIC2RX: regimeStrong, NIC2TX: regimeStrong,
		VD1Read: regimeMild, VD1Write: regimeStrong, VD2Write: regimeMild,
	},
	VM2: {
		CPUUsedSec: regimeStrong, CPUReady: regimeStrong,
		MemSize: regimeStrong, MemSwap: regimeStrong,
		NIC1RX: regimeStrong, NIC1TX: regimeStrong, NIC2TX: regimeStrong,
		VD1Read: regimeStrong, VD1Write: regimeStrong, VD2Write: regimeMild,
	},
	VM3: {
		CPUUsedSec: regimeMild, CPUReady: regimeStrong,
		MemSize: regimeStrong,
		NIC1RX:  regimeStrong, NIC1TX: regimeStrong,
		VD2Read: regimeStrong, VD2Write: regimeMild,
	},
	VM4: {
		CPUUsedSec: regimeStrong, CPUReady: regimeStrong, MemSwap: regimeStrong,
		NIC1RX: regimeStrong, NIC1TX: regimeStrong,
		NIC2RX: regimeStrong, NIC2TX: regimeMild,
		VD1Read: regimeStrong, VD2Read: regimeStrong, VD2Write: regimeStrong,
	},
	// VM5 below.
	VM5: {
		CPUUsedSec: regimeStrong, CPUReady: regimeMild,
		MemSize: regimeStrong, MemSwap: regimeStrong,
		NIC2TX: regimeStrong, VD1Read: regimeMild, VD1Write: regimeStrong,
		VD2Write: regimeStrong,
	},
}

// meanTable gives each metric a characteristic scale in its native unit.
var meanTable = map[Metric]float64{
	CPUUsedSec: 20, CPUReady: 6,
	MemSize: 200e6, MemSwap: 16e6,
	NIC1RX: 180, NIC1TX: 150, NIC2RX: 60, NIC2TX: 70,
	VD1Read: 60, VD1Write: 90, VD2Read: 40, VD2Write: 45,
}

// processFor composes the stochastic process for one (vm, metric) trace.
// The shapes follow the paper's workload descriptions: VM1 is dominated by
// the PBS batch mix, VM2 by VNC sessions, VM3 is a near-idle desktop, VM4
// and VM5 are diurnal web servers. Memory on the batch/wiki hosts is
// step-wise (LAST territory), a few wandering-load devices are SW_AVG
// territory, the idle devices are the paper's NaN cells, and the rest carry
// the quiet/loud regime mixture from intensityTable.
func processFor(vm VMID, metric Metric, prof Profile) Process {
	if idle(vm, metric) {
		return Constant{Level: 0, Jitter: 0}
	}
	day := float64((24 * time.Hour) / prof.Interval) // samples per day
	// Demand-cycle period for the trend component: a few-hour load swing.
	cycle := day / 6
	if vm == VM1 {
		// 30-minute samples and a 16-sample prediction window: keep the
		// regime structure well above the window span.
		cycle = day
	}

	// Fixed-shape special cells first.
	switch {
	case vm == VM1 && metric == CPUUsedSec:
		// The PBS batch mix drives VM1's CPU (paper section 7).
		return ClampMin{P: Sum{
			BatchJobs{TotalJobs: 310, Mix: PaperJobMix(), Interval: prof.Interval, Background: 0.05, Jitter: 0.02},
			ARSource{Phi: []float64{0.6, 0.2}, Noise: 0.4, Mean: 0.2, Scale: 0.08},
		}, Min: 0}
	case (vm == VM1 || vm == VM4) && metric == MemSize:
		// Step-wise allocations: LAST's home turf.
		return RandomSteps{PJump: 0.02, LevelMin: 128e6, LevelMax: 512e6, Jitter: 1e5}
	case vm == VM1 && metric == MemSwap:
		return RandomSteps{PJump: 0.015, LevelMin: 0, LevelMax: 64e6, Jitter: 5e4}
	case vm == VM1 && metric == VD2Read,
		vm == VM5 && metric == NIC2RX:
		// Wandering-load devices: the paper's SW_AVG cells.
		return ClampMin{P: MeanReverting{Reversion: 0.25, LevelDrift: 1.0, Noise: 9, Mean: 60}, Min: 0}
	case vm == VM4 && metric == VD1Write:
		return ClampMin{P: MeanReverting{Reversion: 0.3, LevelDrift: 1.2, Noise: 10, Mean: 120}, Min: 0}
	}

	mean := meanTable[metric]
	if intensity, ok := intensityTable[vm][metric]; ok {
		q := quietLoud(mean, cycle, intensity).(QuietLoud)
		if vm == VM1 {
			// Scale dwell and ramps to the wider 16-sample window, and
			// keep the regime mix drift gentle enough that both halves of
			// any random split still see both regimes (the halved
			// transition rates make all-quiet halves likely otherwise).
			q.MinDwell *= 3
			q.Attack *= 2
			q.PQuietToLoud /= 2
			q.PLoudToQuiet /= 2
			q.MixDrift = 0.3
		}
		return ClampMin{P: q, Min: 0}
	}

	// Stationary residue: autocorrelated AR or spiky disk traffic.
	switch metric {
	case VD1Read, VD1Write, VD2Read, VD2Write:
		rate := 0.05
		if metric == VD1Write || metric == VD2Write {
			rate = 0.1
		}
		return ClampMin{P: Sum{
			Spikes{Rate: rate, Floor: 5, FloorJitter: 1, MagMin: 50, MagMax: 300, Decay: 0.4},
			ARSource{Phi: []float64{0.5, 0.2}, Noise: 1, Mean: 0, Scale: 4},
		}, Min: 0}
	default:
		return ClampMin{P: stationaryAR(mean, 0.15*mean), Min: 0}
	}
}

// phaseFor staggers diurnal peaks across VMs so their cycles are not
// synchronized.
func phaseFor(vm VMID) float64 {
	switch vm {
	case VM1:
		return 0
	case VM2:
		return 0.9
	case VM3:
		return 1.7
	case VM4:
		return 2.6
	default:
		return 3.4
	}
}

// Load15 generates the Figure 4 trace "VM2_load15": the CPU fifteen-minute
// load average of VM2 over a 12-hour period sampled every 5 minutes (144
// samples). A 15-minute load average is a heavily smoothed view of
// instantaneous demand, so the trace is built by exponentially smoothing a
// bursty demand process.
func Load15(seed int64) *timeseries.Series {
	const n = 144
	rng := rand.New(rand.NewSource(subSeed(seed, "VM2", "load15")))
	demand := ClampMin{P: Sum{
		OnOff{POnToOff: 0.1, POffToOn: 0.07, OffLevel: 0.1, OnLevel: 2.5, Jitter: 0.2},
		ARSource{Phi: []float64{0.6}, Noise: 1, Mean: 0.3, Scale: 0.15},
	}, Min: 0}.Generate(n, rng)
	// 15-minute EWMA over 5-minute samples (alpha ≈ 1 - exp(-5/15)).
	const alpha = 0.2835
	v := make([]float64, n)
	s := demand[0]
	for i, d := range demand {
		s = alpha*d + (1-alpha)*s
		v[i] = s
	}
	return timeseries.New("VM2_load15", traceStart, 5*time.Minute, v)
}

// PktIn generates the Figure 5 trace "VM2_PktIn": network packets received
// per second on VM2's VNC-facing interface, a bursty session-driven trace
// over the same 12-hour window as Load15.
func PktIn(seed int64) *timeseries.Series {
	const n = 144
	rng := rand.New(rand.NewSource(subSeed(seed, "VM2", "PktIn")))
	v := ClampMin{P: Sum{
		OnOff{POnToOff: 0.15, POffToOn: 0.1, OffLevel: 10, OnLevel: 900, Jitter: 60},
		Spikes{Rate: 0.05, MagMin: 200, MagMax: 1500, Decay: 0.2},
		ARSource{Phi: []float64{0.4}, Noise: 1, Mean: 20, Scale: 8},
	}, Min: 0}.Generate(n, rng)
	return timeseries.New("VM2_PktIn", traceStart, 5*time.Minute, v)
}
