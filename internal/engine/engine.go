// Package engine implements the sharded, batched multi-stream prediction
// engine: the fleet-scale front end of the LARPredictor system. One engine
// owns N shards (default GOMAXPROCS); stream IDs hash to shards; each
// shard's streams are driven by a single worker goroutine that drains a
// bounded MPSC ingest queue in batches. The design follows the
// one-lightweight-model-per-device regime of fleet monitoring: millions of
// independent streams, each with a microsecond-budget per-sample hot path.
//
// The steady-state ingest→forecast path performs zero heap allocations:
// enqueueing copies a Sample into a preallocated ring, the shard worker
// drains into a preallocated batch buffer, and core.Online.Step recycles
// its frame/projection scratch buffers through a shared sync.Pool — so the
// per-sample cost stays flat whether the engine drives one stream or a
// hundred thousand.
//
// Backpressure is explicit per engine: Block (lossless, producers wait),
// DropOldest (bounded staleness, oldest queued sample evicted), or Reject
// (shed load at the caller, ErrBacklog). Every stream is supervised: a
// panic while stepping one stream poisons only that stream — subsequent
// samples for it are dropped and counted until a supervisor swaps in a
// fresh predictor with Replace — and can never take down the shard worker
// or sibling streams.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/obs"
)

// Engine errors.
var (
	// ErrClosed is returned by ingest on a closed engine.
	ErrClosed = errors.New("engine: closed")
	// ErrBacklog is returned under the Reject policy when a shard's queue
	// is full.
	ErrBacklog = errors.New("engine: ingest queue full")
	// ErrUnknownStream is returned when a sample names a stream that is not
	// registered and the engine has no NewStream factory to create it.
	ErrUnknownStream = errors.New("engine: unknown stream")
	// ErrDuplicateStream is returned by Register for an already-registered
	// stream ID.
	ErrDuplicateStream = errors.New("engine: stream already registered")
	// ErrPoisoned marks the Result of a sample whose step panicked: the
	// stream is poisoned and drops samples until Replace swaps in a fresh
	// predictor. Delivered wrapped, so test with errors.Is.
	ErrPoisoned = errors.New("engine: stream poisoned by panic")
)

// FaultFailed is the fault string recorded for a stream whose predictor
// reached the terminal Failed health state (the stream itself keeps
// processing; restart policy belongs to the supervisor).
const FaultFailed = "health: Failed"

// Sample is one observation of one stream.
type Sample struct {
	// ID identifies the stream; it is hashed to pick the owning shard.
	ID string
	// TS is an opaque caller tag (conventionally a unix timestamp) carried
	// through to the Result untouched. The engine never interprets it.
	TS int64
	// Value is the observation.
	Value float64
}

// Result is delivered to Config.OnResult for every processed sample, on
// the owning shard's worker goroutine.
type Result struct {
	Sample
	// Pred is the one-step-ahead forecast issued after folding the sample
	// in; meaningful only when Err is nil.
	Pred core.Prediction
	// Health is the stream's fallback-ladder rung after the step.
	Health core.Health
	// Err is core.ErrNotReady during warm-up, core.ErrFailed for a
	// terminally failed predictor; the observation is recorded either way.
	Err error
}

// Policy selects the behavior of ingest against a full shard queue.
type Policy int

const (
	// Block makes producers wait for queue space: lossless, applies
	// backpressure upstream. The default.
	Block Policy = iota
	// DropOldest evicts the oldest queued sample to admit the newest:
	// bounded memory and bounded staleness, never blocks producers.
	DropOldest
	// Reject fails the ingest with ErrBacklog, shedding load at the caller.
	Reject
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case Reject:
		return "reject"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps the flag spellings ("block", "drop-oldest", "reject")
// to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest", "dropoldest", "drop":
		return DropOldest, nil
	case "reject":
		return Reject, nil
	}
	return 0, fmt.Errorf("engine: unknown backpressure policy %q (want block, drop-oldest, or reject)", s)
}

// Config parameterizes an Engine. The zero value of every field is usable;
// a zero Config yields a GOMAXPROCS-sharded engine that rejects samples
// for unregistered streams.
type Config struct {
	// Shards is the number of shards, each with its own worker goroutine
	// and ingest queue. Defaults to runtime.GOMAXPROCS(0).
	Shards int
	// QueueDepth is each shard's ingest queue capacity. Defaults to 1024.
	QueueDepth int
	// Policy is the backpressure policy for full queues.
	Policy Policy
	// MaxBatch caps how many samples a worker drains per queue visit
	// (and sizes its reusable batch buffer). Defaults to 256.
	MaxBatch int
	// NewStream, when set, creates the predictor for a stream ID seen for
	// the first time. When nil, samples for unregistered streams are
	// dropped and counted (Stats.UnknownDropped).
	NewStream func(id string) (*core.Online, error)
	// OnResult, when set, receives every processed sample's outcome on the
	// owning shard's worker goroutine. It must not call back into the
	// engine's ingest or stats methods for the same shard.
	OnResult func(Result)
	// StepHook, when set, runs inside the per-sample supervision envelope
	// just before the stream steps. Chaos tests use it to inject panics.
	StepHook func(id string)
	// Metrics instruments the engine on this registry: per-shard queue
	// depth gauges, ingest/drop counters, and the worker batch-size
	// histogram. Nil leaves the engine uninstrumented.
	Metrics *obs.Registry
}

// stream is one supervised prediction stream, owned by its shard.
type stream struct {
	id     string
	online *core.Online

	processed uint64
	dropped   uint64 // samples skipped while poisoned
	panics    int
	poisoned  bool   // a panic unwound this stream's step; skip until Replace
	fault     string // last panic or terminal-health fault ("" when clean)
}

// StreamStats is a point-in-time snapshot of one stream's supervision
// state, for status endpoints and supervisors.
type StreamStats struct {
	// Processed counts samples stepped through the predictor.
	Processed uint64
	// Dropped counts samples discarded while the stream was poisoned.
	Dropped uint64
	// Panics counts recovered panics while stepping this stream.
	Panics int
	// Poisoned reports that the stream is skipping samples until a
	// supervisor calls Replace.
	Poisoned bool
	// Fault is the last recorded fault ("" when clean).
	Fault string
	// Health is the predictor's resilience snapshot.
	Health core.HealthStats
}

// Stats aggregates engine-wide counters.
type Stats struct {
	// Shards is the shard count.
	Shards int
	// Streams is the number of registered streams.
	Streams int
	// Ingested counts accepted samples.
	Ingested uint64
	// Processed counts samples stepped through a predictor.
	Processed uint64
	// Dropped counts samples evicted by DropOldest across all shards.
	Dropped uint64
	// UnknownDropped counts samples for unregistered streams with no
	// NewStream factory.
	UnknownDropped uint64
	// Poisoned counts currently poisoned streams.
	Poisoned int
}

// Engine is the sharded multi-stream prediction engine. All exported
// methods are safe for concurrent use.
type Engine struct {
	cfg    Config
	shards []*shard
	met    *engineMetrics

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	batchPool sync.Pool // *[][]Sample staging for IngestBatch
}

// New validates cfg, starts one worker per shard, and returns the running
// engine. Close releases the workers.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards == 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("engine: %d shards < 1", cfg.Shards)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("engine: queue depth %d < 1", cfg.QueueDepth)
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 256
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("engine: max batch %d < 1", cfg.MaxBatch)
	}
	switch cfg.Policy {
	case Block, DropOldest, Reject:
	default:
		return nil, fmt.Errorf("engine: unknown policy %d", int(cfg.Policy))
	}
	e := &Engine{cfg: cfg, met: newEngineMetrics(cfg.Metrics, cfg.Shards)}
	e.batchPool.New = func() any {
		per := make([][]Sample, cfg.Shards)
		return &per
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = newShard(e, i)
	}
	e.wg.Add(len(e.shards))
	for _, sh := range e.shards {
		go sh.run()
	}
	return e, nil
}

// shardOf hashes a stream ID to its shard with FNV-1a; allocation free.
func (e *Engine) shardOf(id string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return e.shards[h%uint64(len(e.shards))]
}

// Register adds a stream with an existing predictor — warm restarts hand
// restored state to the engine this way. It fails on duplicate IDs.
func (e *Engine) Register(id string, online *core.Online) error {
	if online == nil {
		return fmt.Errorf("engine: register %q: nil predictor", id)
	}
	sh := e.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.streams[id]; ok {
		return fmt.Errorf("engine: %q: %w", id, ErrDuplicateStream)
	}
	sh.streams[id] = &stream{id: id, online: online}
	e.met.streamsUp()
	return nil
}

// Replace swaps a stream's predictor for a fresh one and clears its
// poisoned/fault state — the supervisor's restart primitive. It registers
// the stream if it does not exist yet.
func (e *Engine) Replace(id string, online *core.Online) error {
	if online == nil {
		return fmt.Errorf("engine: replace %q: nil predictor", id)
	}
	sh := e.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[id]
	if !ok {
		sh.streams[id] = &stream{id: id, online: online}
		e.met.streamsUp()
		return nil
	}
	st.online = online
	st.poisoned = false
	st.fault = ""
	return nil
}

// Ingest enqueues one observation for a stream. Under the Block policy it
// waits for queue space; under Reject it may return ErrBacklog.
func (e *Engine) Ingest(id string, v float64) error {
	return e.IngestSample(Sample{ID: id, Value: v})
}

// IngestSample is Ingest with an explicit Sample (callers that thread a
// timestamp tag use it).
func (e *Engine) IngestSample(s Sample) error {
	sh := e.shardOf(s.ID)
	if err := sh.q.enqueue(s, e.cfg.Policy); err != nil {
		return err
	}
	sh.noteIngest(1)
	return nil
}

// IngestBatch enqueues a batch of samples, grouping them by shard so each
// shard's queue lock is taken once per run of samples rather than once per
// sample. Sample order is preserved per stream. Each shard's run stops at
// that shard's first rejection while other shards' runs proceed
// independently, so under Reject a partially accepted batch returns the
// total accepted count (not an original-batch prefix) plus the first error
// observed; accepted samples are counted as ingested exactly once and are
// always processed. ErrClosed is reported as ErrClosed even when the losing
// shard's queue was also full.
func (e *Engine) IngestBatch(batch []Sample) (int, error) {
	if len(batch) == 0 {
		return 0, nil
	}
	perp := e.batchPool.Get().(*[][]Sample)
	per := *perp
	for i := range per {
		per[i] = per[i][:0]
	}
	for _, s := range batch {
		i := e.shardIndex(s.ID)
		per[i] = append(per[i], s)
	}
	accepted := 0
	var firstErr error
	for i, run := range per {
		if len(run) == 0 {
			continue
		}
		sh := e.shards[i]
		n, err := sh.q.enqueueBatch(run, e.cfg.Policy)
		accepted += n
		sh.noteIngest(n)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		per[i] = per[i][:0] // release Sample IDs promptly
	}
	*perp = per
	e.batchPool.Put(perp)
	return accepted, firstErr
}

func (e *Engine) shardIndex(id string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int(h % uint64(len(e.shards)))
}

// Drain blocks until every sample enqueued before the call has been fully
// processed — the barrier batch-oriented drivers (and tests) use between
// an ingest phase and a read phase.
func (e *Engine) Drain() {
	for _, sh := range e.shards {
		sh.q.drain()
	}
}

// Close drains and stops every shard worker. Ingest after Close fails with
// ErrClosed. Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	for _, sh := range e.shards {
		sh.q.close()
	}
	e.wg.Wait()
	return nil
}

// Stats returns one stream's supervision snapshot.
func (e *Engine) Stats(id string) (StreamStats, bool) {
	sh := e.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[id]
	if !ok {
		return StreamStats{}, false
	}
	return st.snapshot(), true
}

// Each calls f with every stream's supervision snapshot, shard by shard.
// f must not call back into the engine.
func (e *Engine) Each(f func(id string, st StreamStats)) {
	for _, sh := range e.shards {
		sh.mu.Lock()
		for id, st := range sh.streams {
			f(id, st.snapshot())
		}
		sh.mu.Unlock()
	}
}

// Do runs f against a stream's predictor while holding the shard lock —
// the checkpoint path uses it to serialize predictor state without racing
// the shard worker. f must not call back into the engine.
func (e *Engine) Do(id string, f func(*core.Online)) bool {
	sh := e.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[id]
	if !ok {
		return false
	}
	f(st.online)
	return true
}

// EngineStats aggregates counters across shards.
func (e *Engine) EngineStats() Stats {
	s := Stats{Shards: len(e.shards)}
	for _, sh := range e.shards {
		sh.mu.Lock()
		s.Streams += len(sh.streams)
		s.Processed += sh.processed
		s.UnknownDropped += sh.unknownDropped
		for _, st := range sh.streams {
			if st.poisoned {
				s.Poisoned++
			}
		}
		sh.mu.Unlock()
		s.Ingested += sh.ingested.Load()
		s.Dropped += sh.evicted.Load()
	}
	return s
}

func (st *stream) snapshot() StreamStats {
	return StreamStats{
		Processed: st.processed,
		Dropped:   st.dropped,
		Panics:    st.panics,
		Poisoned:  st.poisoned,
		Fault:     st.fault,
		Health:    st.online.HealthStats(),
	}
}
