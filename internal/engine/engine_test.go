package engine

import (
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/acis-lab/larpredictor/internal/core"
	"github.com/acis-lab/larpredictor/internal/obs"
)

// newTestOnline returns a fresh online predictor with QA retraining
// disabled, so tests exercise the pure ingest→forecast path.
func newTestOnline(t testing.TB) *core.Online {
	t.Helper()
	o, err := core.NewOnline(core.OnlineConfig{
		Predictor:   core.DefaultConfig(5),
		TrainSize:   60,
		AuditWindow: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// signal generates a deterministic smooth workload trace.
func signal(i int) float64 {
	return 10 + 3*math.Sin(float64(i)/7) + 0.1*float64(i%5)
}

func TestEngineIngestForecastDrain(t *testing.T) {
	type got struct {
		ts   []int64
		errs int
	}
	var mu sync.Mutex
	byStream := map[string]*got{}
	e, err := New(Config{
		Shards: 4,
		OnResult: func(r Result) {
			mu.Lock()
			g := byStream[r.ID]
			if g == nil {
				g = &got{}
				byStream[r.ID] = g
			}
			g.ts = append(g.ts, r.TS)
			if r.Err != nil && !errors.Is(r.Err, core.ErrNotReady) {
				g.errs++
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ids := []string{"vm-01/cpu", "vm-02/cpu", "vm-03/net", "vm-04/mem", "vm-05/mem"}
	for _, id := range ids {
		if err := e.Register(id, newTestOnline(t)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Register(ids[0], newTestOnline(t)); !errors.Is(err, ErrDuplicateStream) {
		t.Fatalf("duplicate Register err = %v, want ErrDuplicateStream", err)
	}

	const steps = 200
	for i := 0; i < steps; i++ {
		for _, id := range ids {
			if err := e.IngestSample(Sample{ID: id, TS: int64(i), Value: signal(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.Drain()

	mu.Lock()
	defer mu.Unlock()
	for _, id := range ids {
		g := byStream[id]
		if g == nil {
			t.Fatalf("stream %s: no results", id)
		}
		if len(g.ts) != steps {
			t.Fatalf("stream %s: got %d results, want %d", id, len(g.ts), steps)
		}
		for i, ts := range g.ts {
			if ts != int64(i) {
				t.Fatalf("stream %s: result %d has TS %d — per-stream FIFO order violated", id, i, ts)
			}
		}
		if g.errs != 0 {
			t.Errorf("stream %s: %d unexpected step errors", id, g.errs)
		}
		st, ok := e.Stats(id)
		if !ok {
			t.Fatalf("stream %s: no stats", id)
		}
		if st.Processed != steps || st.Poisoned || st.Fault != "" {
			t.Errorf("stream %s: stats = %+v, want %d processed and clean", id, st, steps)
		}
		if st.Health.State != core.Healthy {
			t.Errorf("stream %s: health %v, want Healthy", id, st.Health.State)
		}
	}
	es := e.EngineStats()
	want := uint64(steps * len(ids))
	if es.Ingested != want || es.Processed != want {
		t.Errorf("EngineStats ingested/processed = %d/%d, want %d", es.Ingested, es.Processed, want)
	}
	if es.Streams != len(ids) || es.Poisoned != 0 || es.Dropped != 0 {
		t.Errorf("EngineStats = %+v", es)
	}
}

func TestEngineNewStreamFactory(t *testing.T) {
	var created atomic.Int32
	e, err := New(Config{
		Shards: 2,
		NewStream: func(id string) (*core.Online, error) {
			created.Add(1)
			return newTestOnline(t), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 50; i++ {
		if err := e.Ingest("auto-a", signal(i)); err != nil {
			t.Fatal(err)
		}
		if err := e.Ingest("auto-b", signal(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if got := created.Load(); got != 2 {
		t.Errorf("factory created %d streams, want 2", got)
	}
	st, ok := e.Stats("auto-a")
	if !ok || st.Processed != 50 {
		t.Errorf("auto-a stats = %+v ok=%v, want 50 processed", st, ok)
	}
}

func TestEngineUnknownStreamDropped(t *testing.T) {
	e, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 7; i++ {
		if err := e.Ingest("nobody", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if es := e.EngineStats(); es.UnknownDropped != 7 || es.Streams != 0 {
		t.Errorf("EngineStats = %+v, want 7 unknown-dropped, 0 streams", es)
	}
}

// blockedWorkerEngine builds a single-shard engine whose worker signals on
// started each time it picks up a sample, then waits for a token on gate —
// letting tests hold the queue at a known occupancy.
func blockedWorkerEngine(t *testing.T, depth int, policy Policy, onResult func(Result)) (*Engine, chan struct{}, chan struct{}) {
	t.Helper()
	started := make(chan struct{}, 64)
	gate := make(chan struct{}, 64)
	e, err := New(Config{
		Shards:     1,
		QueueDepth: depth,
		MaxBatch:   1,
		Policy:     policy,
		OnResult:   onResult,
		StepHook: func(string) {
			started <- struct{}{}
			<-gate
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, started, gate
}

func TestEngineRejectPolicy(t *testing.T) {
	e, started, gate := blockedWorkerEngine(t, 1, Reject, nil)
	defer e.Close()
	if err := e.Register("s", newTestOnline(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("s", 1); err != nil {
		t.Fatal(err)
	}
	<-started // worker holds sample 1; queue is empty
	if err := e.Ingest("s", 2); err != nil {
		t.Fatal(err) // fills the depth-1 queue
	}
	if err := e.Ingest("s", 3); !errors.Is(err, ErrBacklog) {
		t.Fatalf("ingest into full queue err = %v, want ErrBacklog", err)
	}
	gate <- struct{}{}
	gate <- struct{}{}
	<-started
	e.Drain()
	if st, _ := e.Stats("s"); st.Processed != 2 {
		t.Errorf("processed = %d, want 2", st.Processed)
	}
}

func TestEngineDropOldestPolicy(t *testing.T) {
	var mu sync.Mutex
	var order []int64
	e, started, gate := blockedWorkerEngine(t, 2, DropOldest, func(r Result) {
		mu.Lock()
		order = append(order, r.TS)
		mu.Unlock()
	})
	defer e.Close()
	if err := e.Register("s", newTestOnline(t)); err != nil {
		t.Fatal(err)
	}
	ingest := func(ts int64) {
		if err := e.IngestSample(Sample{ID: "s", TS: ts, Value: float64(ts)}); err != nil {
			t.Fatal(err)
		}
	}
	ingest(1)
	<-started // worker holds sample 1; queue empty
	ingest(2)
	ingest(3) // queue [2 3]
	ingest(4) // evicts 2 → [3 4]
	ingest(5) // evicts 3 → [4 5]
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	e.Drain()
	mu.Lock()
	got := append([]int64(nil), order...)
	mu.Unlock()
	want := []int64{1, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("processed TS = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("processed TS = %v, want %v (drop-oldest must keep the freshest samples)", got, want)
		}
	}
	if es := e.EngineStats(); es.Dropped != 2 {
		t.Errorf("EngineStats.Dropped = %d, want 2", es.Dropped)
	}
	// Unblock the remaining started signals if any (none expected).
	close(gate)
}

func TestEngineBlockPolicy(t *testing.T) {
	e, started, gate := blockedWorkerEngine(t, 1, Block, nil)
	defer e.Close()
	if err := e.Register("s", newTestOnline(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("s", 1); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := e.Ingest("s", 2); err != nil { // fills the queue
		t.Fatal(err)
	}
	entered := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(entered)
		finished <- e.Ingest("s", 3) // must block until the worker frees a slot
	}()
	<-entered
	select {
	case err := <-finished:
		t.Fatalf("ingest into full queue returned early (err=%v); Block policy must wait", err)
	default:
	}
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	if err := <-finished; err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if st, _ := e.Stats("s"); st.Processed != 3 {
		t.Errorf("processed = %d, want 3", st.Processed)
	}
}

func TestEnginePanicPoisonsOnlyThatStream(t *testing.T) {
	var arm atomic.Bool
	var results sync.Map // id -> last Err
	e, err := New(Config{
		Shards: 2,
		StepHook: func(id string) {
			if id == "victim" && arm.CompareAndSwap(true, false) {
				panic("boom")
			}
		},
		OnResult: func(r Result) {
			if r.Err != nil && !errors.Is(r.Err, core.ErrNotReady) {
				results.Store(r.ID, r.Err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, id := range []string{"victim", "bystander"} {
		if err := e.Register(id, newTestOnline(t)); err != nil {
			t.Fatal(err)
		}
	}
	feed := func(n int) {
		for i := 0; i < n; i++ {
			if err := e.Ingest("victim", signal(i)); err != nil {
				t.Fatal(err)
			}
			if err := e.Ingest("bystander", signal(i)); err != nil {
				t.Fatal(err)
			}
		}
		e.Drain()
	}
	feed(10)
	arm.Store(true)
	feed(10) // first victim sample panics; the other 9 are dropped

	st, _ := e.Stats("victim")
	if !st.Poisoned || st.Panics != 1 || !strings.Contains(st.Fault, "panic: boom") {
		t.Fatalf("victim stats = %+v, want poisoned with 1 recorded panic", st)
	}
	if st.Processed != 10 || st.Dropped != 9 {
		t.Errorf("victim processed/dropped = %d/%d, want 10/9", st.Processed, st.Dropped)
	}
	if errAny, ok := results.Load("victim"); !ok || !errors.Is(errAny.(error), ErrPoisoned) {
		t.Errorf("victim OnResult error = %v, want ErrPoisoned", errAny)
	}
	if by, _ := e.Stats("bystander"); by.Processed != 20 || by.Poisoned {
		t.Errorf("bystander stats = %+v; a sibling panic must not affect it", by)
	}
	if es := e.EngineStats(); es.Poisoned != 1 {
		t.Errorf("EngineStats.Poisoned = %d, want 1", es.Poisoned)
	}

	// Replace is the supervisor's restart: fault cleared, processing resumes.
	if err := e.Replace("victim", newTestOnline(t)); err != nil {
		t.Fatal(err)
	}
	st, _ = e.Stats("victim")
	if st.Poisoned || st.Fault != "" {
		t.Fatalf("after Replace: stats = %+v, want clean", st)
	}
	feed(5)
	if st, _ = e.Stats("victim"); st.Processed != 15 {
		t.Errorf("victim processed after restart = %d, want 15", st.Processed)
	}
}

func TestEngineIngestBatch(t *testing.T) {
	e, err := New(Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ids := []string{"a", "b", "c", "d", "e", "f"}
	for _, id := range ids {
		if err := e.Register(id, newTestOnline(t)); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]Sample, 0, len(ids))
	for i := 0; i < 120; i++ {
		batch = batch[:0]
		for _, id := range ids {
			batch = append(batch, Sample{ID: id, TS: int64(i), Value: signal(i)})
		}
		n, err := e.IngestBatch(batch)
		if err != nil || n != len(ids) {
			t.Fatalf("IngestBatch = %d, %v", n, err)
		}
	}
	e.Drain()
	for _, id := range ids {
		if st, _ := e.Stats(id); st.Processed != 120 {
			t.Errorf("stream %s processed = %d, want 120", id, st.Processed)
		}
	}
}

func TestEngineCloseRejectsIngest(t *testing.T) {
	e, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register("s", newTestOnline(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := e.Ingest("s", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("ingest after Close err = %v, want ErrClosed", err)
	}
	if _, err := e.IngestBatch([]Sample{{ID: "s", Value: 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("batch ingest after Close err = %v, want ErrClosed", err)
	}
}

func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e, err := New(Config{Shards: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Register("m1", newTestOnline(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := e.Ingest("m1", signal(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Ingest("ghost", 1) // unknown stream, dropped
	e.Drain()

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"larpredictor_engine_streams 1",
		"larpredictor_engine_ingested_total{shard=",
		"larpredictor_engine_queue_depth{shard=",
		"larpredictor_engine_unknown_dropped_total 1",
		"larpredictor_engine_batch_size",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"block": Block, "drop-oldest": DropOldest, "dropoldest": DropOldest,
		"drop": DropOldest, "reject": Reject,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) succeeded, want error")
	}
	for p, s := range map[Policy]string{Block: "block", DropOldest: "drop-oldest", Reject: "reject"} {
		if p.String() != s {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

// TestEngineSteadyStateZeroAlloc pins the tentpole contract: once streams
// are warm, pushing a sample through ingest → shard queue → worker →
// Online.Step allocates nothing, so the engine's per-sample cost stays
// flat at fleet scale.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	e, err := New(Config{Shards: 1, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Register("hot", newTestOnline(t)); err != nil {
		t.Fatal(err)
	}
	i := 0
	next := func() float64 { i++; return signal(i) }
	for j := 0; j < 500; j++ {
		if err := e.Ingest("hot", next()); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if st, _ := e.Stats("hot"); st.Health.State != core.Healthy {
		t.Fatalf("warm-up did not reach Healthy: %+v", st)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := e.Ingest("hot", next()); err != nil {
			t.Fatal(err)
		}
		e.Drain()
	})
	if allocs != 0 {
		t.Errorf("steady-state ingest+drain allocates %v per op, want 0", allocs)
	}
}
