package engine

import "sync"

// queue is the bounded MPSC ingest queue of one shard: many producers
// (Ingest/IngestBatch callers) enqueue under a mutex, exactly one shard
// worker dequeues in batches. The ring buffer is allocated once at
// construction, so steady-state enqueue/dequeue never touches the heap.
//
// pending counts samples enqueued but not yet fully processed by the
// worker (not merely dequeued): Drain waits for it to reach zero, giving
// callers a precise ingest barrier.
type queue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	idle     sync.Cond

	buf     []Sample
	head    int // index of the oldest queued sample
	n       int // queued samples
	pending int // enqueued but not fully processed
	closed  bool
	dropped uint64 // samples evicted by the drop-oldest policy
}

func newQueue(depth int) *queue {
	q := &queue{buf: make([]Sample, depth)}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	q.idle.L = &q.mu
	return q
}

// enqueue adds one sample under the backpressure policy. It reports whether
// the sample was accepted; ErrClosed after close, ErrBacklog when the
// Reject policy meets a full queue.
func (q *queue) enqueue(s Sample, policy Policy) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.enqueueLocked(s, policy)
}

// enqueueBatch adds a run of samples under one lock acquisition, stopping
// at the first rejection.
func (q *queue) enqueueBatch(batch []Sample, policy Policy) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, s := range batch {
		if err := q.enqueueLocked(s, policy); err != nil {
			return i, err
		}
	}
	return len(batch), nil
}

func (q *queue) enqueueLocked(s Sample, policy Policy) error {
	// Closed wins over every policy: a full queue must not report backlog
	// (Reject) or evict into a dead queue (DropOldest) after close.
	if q.closed {
		return ErrClosed
	}
	for q.n == len(q.buf) {
		switch policy {
		case DropOldest:
			// Evict the oldest queued sample to admit the newest: fresh
			// telemetry beats stale telemetry when the consumer lags.
			q.head = (q.head + 1) % len(q.buf)
			q.n--
			q.pending--
			q.dropped++
		case Reject:
			return ErrBacklog
		default: // Block
			if q.closed {
				return ErrClosed
			}
			q.notFull.Wait()
		}
	}
	if q.closed {
		return ErrClosed
	}
	q.buf[(q.head+q.n)%len(q.buf)] = s
	q.n++
	q.pending++
	q.notEmpty.Signal()
	return nil
}

// dequeueBatch copies up to len(dst) samples into dst, blocking until at
// least one is available or the queue is closed and empty (in which case it
// returns 0, false).
func (q *queue) dequeueBatch(dst []Sample) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		if q.closed {
			return 0, false
		}
		q.notEmpty.Wait()
	}
	n := q.n
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = q.buf[q.head]
		q.buf[q.head] = Sample{} // release the ID string
		q.head = (q.head + 1) % len(q.buf)
	}
	q.n -= n
	q.notFull.Broadcast()
	return n, true
}

// done reports n samples fully processed by the worker; the idle broadcast
// wakes Drain waiters once nothing is queued or in flight.
func (q *queue) done(n int) {
	q.mu.Lock()
	q.pending -= n
	if q.pending == 0 {
		q.idle.Broadcast()
	}
	q.mu.Unlock()
}

// drain blocks until every previously enqueued sample has been processed.
func (q *queue) drain() {
	q.mu.Lock()
	for q.pending > 0 {
		q.idle.Wait()
	}
	q.mu.Unlock()
}

// close marks the queue closed and wakes everyone. Queued samples are still
// drained by the worker; new enqueues fail with ErrClosed.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
	q.idle.Broadcast()
	q.mu.Unlock()
}

// depth returns the current queue occupancy.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// takeDropped returns and resets the drop-oldest eviction count.
func (q *queue) takeDropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	d := q.dropped
	q.dropped = 0
	return d
}
