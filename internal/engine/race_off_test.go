//go:build !race

package engine

// raceEnabled reports that the race detector is instrumenting this build.
const raceEnabled = false
