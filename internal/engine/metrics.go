package engine

import (
	"strconv"

	"github.com/acis-lab/larpredictor/internal/obs"
)

// engineMetrics holds the engine's instruments, pre-bound at construction
// so the ingest and worker hot paths never format labels or hash lookup a
// metric family. Every instrument is nil when the engine is built without
// a registry; obs instruments are nil-safe, so call sites stay unguarded.
type engineMetrics struct {
	streams   *obs.Gauge     // registered streams
	panics    *obs.Counter   // recovered per-stream panics
	unknown   *obs.Counter   // samples dropped for unregistered streams
	batchSize *obs.Histogram // samples drained per worker batch
	perShard  []shardMetrics
}

// shardMetrics is one shard's pre-bound slice of the engine instruments.
type shardMetrics struct {
	ingested *obs.Counter // accepted samples
	dropped  *obs.Counter // drop-oldest evictions
	depth    *obs.Gauge   // current ingest queue occupancy
}

// batchBuckets spans the worker batch-size range 1..MaxBatch in powers of
// two; a drain of the default 256-cap batch lands in the last finite bucket.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

func newEngineMetrics(r *obs.Registry, shards int) *engineMetrics {
	m := &engineMetrics{perShard: make([]shardMetrics, shards)}
	if r == nil {
		return m
	}
	m.streams = r.Gauge1("larpredictor_engine_streams",
		"Streams registered with the prediction engine.")
	m.panics = r.Counter1("larpredictor_engine_stream_panics_total",
		"Panics recovered while stepping a stream (the stream is poisoned).")
	m.unknown = r.Counter1("larpredictor_engine_unknown_dropped_total",
		"Samples dropped because their stream is unregistered and the engine has no factory.")
	m.batchSize = r.Histogram1("larpredictor_engine_batch_size",
		"Samples drained per shard-worker batch.", batchBuckets)
	ingested := r.Counter("larpredictor_engine_ingested_total",
		"Samples accepted into a shard ingest queue.", "shard")
	dropped := r.Counter("larpredictor_engine_dropped_total",
		"Samples evicted by the drop-oldest backpressure policy.", "shard")
	depth := r.Gauge("larpredictor_engine_queue_depth",
		"Current shard ingest queue occupancy.", "shard")
	for i := range m.perShard {
		label := strconv.Itoa(i)
		m.perShard[i] = shardMetrics{
			ingested: ingested.WithLabels(label),
			dropped:  dropped.WithLabels(label),
			depth:    depth.WithLabels(label),
		}
	}
	return m
}

func (m *engineMetrics) streamsUp() { m.streams.Add(1) }
