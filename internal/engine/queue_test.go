package engine

import (
	"errors"
	"testing"
)

// TestQueueClosedBeatsPolicy locks in that close wins over every
// backpressure policy, even when the queue is also full: Reject must not
// misreport closure as backlog, and DropOldest must not evict into a dead
// queue.
func TestQueueClosedBeatsPolicy(t *testing.T) {
	for _, policy := range []Policy{Block, DropOldest, Reject} {
		q := newQueue(1)
		if err := q.enqueue(Sample{ID: "s", TS: 1}, policy); err != nil {
			t.Fatalf("%v: fill enqueue: %v", policy, err)
		}
		q.close()
		if err := q.enqueue(Sample{ID: "s", TS: 2}, policy); !errors.Is(err, ErrClosed) {
			t.Errorf("%v: enqueue on closed+full queue = %v, want ErrClosed", policy, err)
		}
		if d := q.depth(); d != 1 {
			t.Errorf("%v: depth after rejected enqueue = %d, want 1", policy, d)
		}
		if d := q.takeDropped(); d != 0 {
			t.Errorf("%v: dropped after close = %d, want 0 (must not evict into a closed queue)", policy, d)
		}
	}
}

// TestQueueEnqueueBatchTable pins the partial-acceptance contract of
// enqueueBatch: the returned count is exactly how many samples landed in the
// queue, pending tracks it one-for-one, and the error names the real cause.
func TestQueueEnqueueBatchTable(t *testing.T) {
	mk := func(n int) []Sample {
		s := make([]Sample, n)
		for i := range s {
			s[i] = Sample{ID: "s", TS: int64(i)}
		}
		return s
	}
	cases := []struct {
		name        string
		depth       int
		prefill     int
		close       bool
		policy      Policy
		batch       int
		wantN       int
		wantErr     error
		wantPending int
		wantDropped uint64
	}{
		{name: "reject partial", depth: 3, prefill: 1, policy: Reject, batch: 4,
			wantN: 2, wantErr: ErrBacklog, wantPending: 3},
		{name: "reject exact fit", depth: 3, policy: Reject, batch: 3,
			wantN: 3, wantPending: 3},
		{name: "reject first sample", depth: 2, prefill: 2, policy: Reject, batch: 2,
			wantN: 0, wantErr: ErrBacklog, wantPending: 2},
		{name: "closed empty", depth: 3, close: true, policy: Reject, batch: 2,
			wantN: 0, wantErr: ErrClosed},
		{name: "closed and full reports closed", depth: 2, prefill: 2, close: true, policy: Reject, batch: 2,
			wantN: 0, wantErr: ErrClosed, wantPending: 2},
		{name: "drop-oldest never rejects", depth: 2, policy: DropOldest, batch: 5,
			wantN: 5, wantPending: 2, wantDropped: 3},
		{name: "drop-oldest closed reports closed", depth: 2, prefill: 2, close: true, policy: DropOldest, batch: 1,
			wantN: 0, wantErr: ErrClosed, wantPending: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := newQueue(tc.depth)
			for i := 0; i < tc.prefill; i++ {
				if err := q.enqueue(Sample{ID: "s", TS: int64(-1 - i)}, tc.policy); err != nil {
					t.Fatalf("prefill: %v", err)
				}
			}
			if tc.close {
				q.close()
			}
			n, err := q.enqueueBatch(mk(tc.batch), tc.policy)
			if n != tc.wantN {
				t.Errorf("accepted = %d, want %d", n, tc.wantN)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want %v", err, tc.wantErr)
			}
			q.mu.Lock()
			pending, dropped := q.pending, q.dropped
			q.mu.Unlock()
			if pending != tc.wantPending {
				t.Errorf("pending = %d, want %d", pending, tc.wantPending)
			}
			if dropped != tc.wantDropped {
				t.Errorf("dropped = %d, want %d", dropped, tc.wantDropped)
			}
		})
	}
}

// TestEngineIngestBatchPartialAccounting drives a partially accepted batch
// through the full engine under Reject and checks the engine-wide counters:
// accepted samples are counted as ingested exactly once, rejected samples
// are not counted at all, and after releasing the worker every accepted
// sample is processed (pending drains to zero, so Drain returns).
func TestEngineIngestBatchPartialAccounting(t *testing.T) {
	e, started, gate := blockedWorkerEngine(t, 2, Reject, nil)
	defer e.Close()
	if err := e.Register("s", newTestOnline(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("s", 1); err != nil {
		t.Fatal(err)
	}
	<-started // worker holds sample 1; queue is empty

	batch := []Sample{
		{ID: "s", TS: 2, Value: 2},
		{ID: "s", TS: 3, Value: 3},
		{ID: "s", TS: 4, Value: 4}, // queue depth 2: rejected
		{ID: "s", TS: 5, Value: 5}, // never attempted (same shard run)
	}
	n, err := e.IngestBatch(batch)
	if n != 2 || !errors.Is(err, ErrBacklog) {
		t.Fatalf("IngestBatch = (%d, %v), want (2, ErrBacklog)", n, err)
	}
	// The worker is parked inside step holding the shard lock, so read the
	// producer-side counter atomically rather than through EngineStats.
	if got := e.shards[0].ingested.Load(); got != 3 {
		t.Fatalf("after partial batch: ingested = %d, want 3 (1 single + 2 accepted)", got)
	}

	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	e.Drain()
	es := e.EngineStats()
	if es.Processed != 3 {
		t.Errorf("Processed = %d, want 3 (every accepted sample, nothing more)", es.Processed)
	}
	if es.Ingested != es.Processed {
		t.Errorf("Ingested %d != Processed %d after Drain", es.Ingested, es.Processed)
	}
	close(gate)
}
