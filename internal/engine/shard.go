package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/acis-lab/larpredictor/internal/core"
)

// shard owns a partition of the engine's streams: one bounded ingest queue,
// one worker goroutine, and the stream table for the IDs that hash here.
// The worker holds mu for the duration of each batch, so external readers
// (Stats, Each, Do, EngineStats) always observe stream state between
// samples, never mid-step.
type shard struct {
	e   *Engine
	idx int
	q   *queue
	met shardMetrics

	ingested atomic.Uint64 // accepted samples (producers bump this)
	evicted  atomic.Uint64 // drop-oldest evictions (worker reconciles)

	mu             sync.Mutex
	streams        map[string]*stream
	processed      uint64
	unknownDropped uint64

	batch []Sample // worker-private drain buffer, allocated once
}

func newShard(e *Engine, idx int) *shard {
	return &shard{
		e:       e,
		idx:     idx,
		q:       newQueue(e.cfg.QueueDepth),
		met:     e.met.perShard[idx],
		streams: make(map[string]*stream),
		batch:   make([]Sample, e.cfg.MaxBatch),
	}
}

// noteIngest records n accepted samples and refreshes the depth gauge.
func (sh *shard) noteIngest(n int) {
	if n <= 0 {
		return
	}
	sh.ingested.Add(uint64(n))
	sh.met.ingested.Add(uint64(n))
	if sh.met.depth != nil {
		sh.met.depth.Set(float64(sh.q.depth()))
	}
}

// run is the shard worker loop: drain a batch, step every sample under the
// shard lock, then retire the batch from the pending count so Drain can
// observe a precise barrier. Exits when the queue is closed and empty.
func (sh *shard) run() {
	defer sh.e.wg.Done()
	for {
		n, ok := sh.q.dequeueBatch(sh.batch)
		if !ok {
			return
		}
		sh.e.met.batchSize.Observe(float64(n))
		if sh.met.depth != nil {
			sh.met.depth.Set(float64(sh.q.depth()))
		}
		sh.mu.Lock()
		for i := 0; i < n; i++ {
			sh.step(sh.batch[i])
			sh.batch[i] = Sample{} // release the ID string
		}
		sh.mu.Unlock()
		// Reconcile drop-oldest evictions observed since the last batch.
		if d := sh.q.takeDropped(); d > 0 {
			sh.evicted.Add(d)
			sh.met.dropped.Add(d)
		}
		sh.q.done(n)
	}
}

// step processes one sample for its stream under the shard lock. A panic
// in the predictor poisons the stream — matching the old monitord
// semantics where a panic unwound the rest of the pipeline's slice — but
// never escapes to the worker or sibling streams. A terminal Failed health
// is recorded as a fault while processing continues; quarantine and
// restart policy stay with the supervisor (Replace clears both).
func (sh *shard) step(s Sample) {
	st, ok := sh.streams[s.ID]
	if !ok {
		st = sh.admit(s.ID)
		if st == nil {
			return
		}
	}
	if st.poisoned {
		st.dropped++
		return
	}
	res := Result{Sample: s}
	sh.supervisedStep(st, &res)
	if !st.poisoned {
		st.processed++
		sh.processed++
		if res.Health == core.Failed {
			st.fault = FaultFailed
		}
	}
	if cb := sh.e.cfg.OnResult; cb != nil {
		cb(res)
	}
}

// supervisedStep runs one predictor step inside the per-sample recover
// envelope.
func (sh *shard) supervisedStep(st *stream, res *Result) {
	defer func() {
		if r := recover(); r != nil {
			st.panics++
			st.poisoned = true
			st.fault = fmt.Sprintf("panic: %v", r)
			sh.e.met.panics.Inc()
			res.Err = fmt.Errorf("stream %q: %w: %v", st.id, ErrPoisoned, r)
		}
	}()
	if hook := sh.e.cfg.StepHook; hook != nil {
		hook(st.id)
	}
	res.Pred, res.Health, res.Err = st.online.Step(res.Value)
}

// admit creates the stream for a first-seen ID via the NewStream factory,
// or counts the sample as unknown-dropped when the engine has none.
func (sh *shard) admit(id string) *stream {
	if sh.e.cfg.NewStream == nil {
		sh.unknownDropped++
		sh.e.met.unknown.Inc()
		return nil
	}
	online, err := sh.e.cfg.NewStream(id)
	if err != nil || online == nil {
		sh.unknownDropped++
		sh.e.met.unknown.Inc()
		return nil
	}
	st := &stream{id: id, online: online}
	sh.streams[id] = st
	sh.e.met.streamsUp()
	return st
}
