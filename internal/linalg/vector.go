// Package linalg provides the dense linear algebra kernels used by the
// LARPredictor reproduction: vector arithmetic, a dense matrix type,
// symmetric eigendecomposition (cyclic Jacobi), Gaussian elimination with
// partial pivoting, Cholesky factorization, and a Levinson–Durbin solver for
// the symmetric Toeplitz systems arising in Yule–Walker AR fitting.
//
// Everything is implemented from scratch on float64 slices; there are no
// external dependencies. The matrix type is row-major and small-matrix
// oriented — the workloads in this repository are covariance matrices of
// prediction windows (tens of columns), so cache-blocked or SIMD kernels are
// deliberately out of scope.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned when operands have incompatible shapes.
var ErrDimension = errors.New("linalg: dimension mismatch")

// Dot returns the inner product of a and b.
// It panics if the lengths differ, mirroring the behaviour of slice indexing.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, computed with scaling to avoid
// premature overflow/underflow for extreme magnitudes.
func Norm2(v []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Distance length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SquaredDistance returns the squared Euclidean distance between a and b.
// It is the preferred comparison key for nearest-neighbor search because it
// avoids the square root while preserving ordering.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SquaredDistance length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Add returns a new slice holding a + b element-wise.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Add length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a new slice holding a - b element-wise.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// AllFinite reports whether every element of v is finite (no NaN or Inf).
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
