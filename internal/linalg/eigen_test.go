package linalg

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := mustFromRows(t, [][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	ed, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if !almostEqual(ed.Values[i], w, 1e-10) {
			t.Fatalf("eigenvalues = %v, want %v", ed.Values, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors (1,1)/√2 and
	// (1,-1)/√2.
	a := mustFromRows(t, [][]float64{{2, 1}, {1, 2}})
	ed, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ed.Values[0], 3, 1e-10) || !almostEqual(ed.Values[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v", ed.Values)
	}
	v0 := ed.Vectors.Col(0)
	if !almostEqual(math.Abs(v0[0]), 1/math.Sqrt2, 1e-9) || !almostEqual(math.Abs(v0[1]), 1/math.Sqrt2, 1e-9) {
		t.Fatalf("first eigenvector = %v", v0)
	}
	// Components of v0 must share a sign (eigvec of eigenvalue 3 is (1,1)).
	if v0[0]*v0[1] <= 0 {
		t.Fatalf("first eigenvector direction wrong: %v", v0)
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {5, 1}})
	if _, err := SymEigen(a); !errors.Is(err, ErrNotSymmetric) {
		t.Fatalf("err = %v, want ErrNotSymmetric", err)
	}
}

func TestSymEigenRejectsRectangular(t *testing.T) {
	if _, err := SymEigen(NewMatrix(2, 3)); !errors.Is(err, ErrDimension) {
		t.Fatal("SymEigen accepted a rectangular matrix")
	}
}

func TestSymEigenEmpty(t *testing.T) {
	ed, err := SymEigen(NewMatrix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(ed.Values) != 0 {
		t.Fatal("empty matrix should have no eigenvalues")
	}
}

// randomSymmetric builds a random symmetric matrix A = QᵀDQ-ish by
// symmetrizing a random matrix.
func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64() * 5
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestSymEigenProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomSymmetric(rng, n)
		ed, err := SymEigen(a)
		if err != nil {
			return false
		}
		// 1. Values sorted descending.
		if !sort.SliceIsSorted(ed.Values, func(i, j int) bool { return ed.Values[i] > ed.Values[j] }) {
			return false
		}
		// 2. Trace preserved: sum of eigenvalues == trace(A).
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += ed.Values[i]
		}
		if !almostEqual(trace, sum, 1e-7*(1+math.Abs(trace))) {
			return false
		}
		// 3. Columns orthonormal.
		for i := 0; i < n; i++ {
			vi := ed.Vectors.Col(i)
			if !almostEqual(Norm2(vi), 1, 1e-7) {
				return false
			}
			for j := i + 1; j < n; j++ {
				if !almostEqual(Dot(vi, ed.Vectors.Col(j)), 0, 1e-7) {
					return false
				}
			}
		}
		// 4. A·v = λ·v for each pair.
		for i := 0; i < n; i++ {
			v := ed.Vectors.Col(i)
			av, err := a.MulVec(v)
			if err != nil {
				return false
			}
			for k := range av {
				if !almostEqual(av[k], ed.Values[i]*v[k], 1e-6*(1+math.Abs(ed.Values[i]))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSymEigenDeterministicSign(t *testing.T) {
	a := mustFromRows(t, [][]float64{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}})
	ed1, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	ed2, err := SymEigen(a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v1, v2 := ed1.Vectors.Col(i), ed2.Vectors.Col(i)
		for k := range v1 {
			if v1[k] != v2[k] {
				t.Fatal("eigenvectors are not deterministic across runs")
			}
		}
	}
}

func TestSymEigenDoesNotMutateInput(t *testing.T) {
	a := mustFromRows(t, [][]float64{{2, 1}, {1, 2}})
	orig := a.Clone()
	if _, err := SymEigen(a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if a.At(i, j) != orig.At(i, j) {
				t.Fatal("SymEigen mutated its input")
			}
		}
	}
}
