package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrNotPositiveDefinite is returned by Cholesky when the input is not
// positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Solve solves the square linear system a·x = b by Gaussian elimination with
// partial pivoting. Neither input is modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("linalg: Solve on %dx%d matrix: %w", a.Rows(), a.Cols(), ErrDimension)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve rhs length %d for %dx%d matrix: %w", len(b), n, n, ErrDimension)
	}
	// Augmented working copies.
	m := a.Clone()
	x := Clone(b)

	for col := 0; col < n; col++ {
		// Partial pivot: pick the largest |entry| in this column.
		pivot, pivotVal := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > pivotVal {
				pivot, pivotVal = r, v
			}
		}
		if pivotVal == 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := m.At(r, col) * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Set(r, c, m.At(r, c)-factor*m.At(col, c))
			}
			x[r] -= factor * x[col]
		}
	}
	// Back-substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= m.At(r, c) * x[c]
		}
		x[r] = s / m.At(r, r)
	}
	if !AllFinite(x) {
		return nil, ErrSingular
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Cholesky factors the symmetric positive definite matrix a as L·Lᵀ and
// returns the lower-triangular factor L. The input is not modified.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("linalg: Cholesky on %dx%d matrix: %w", a.Rows(), a.Cols(), ErrDimension)
	}
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s*inv)
		}
	}
	return l, nil
}

// LevinsonDurbin solves the symmetric Toeplitz system arising from the
// Yule–Walker equations:
//
//	R·phi = r
//
// where R is the p×p Toeplitz matrix built from autocovariances
// r[0..p-1] and the right-hand side is r[1..p]. The input slice r must hold
// p+1 autocovariances r[0..p]. It returns the AR coefficients phi[1..p]
// (as a slice of length p) and the innovation variance.
//
// The recursion is O(p²) versus O(p³) for general elimination, and is the
// standard fitting routine for AR models (paper §4, "Yule-Walker technique is
// used in the AR model fitting").
func LevinsonDurbin(r []float64) (phi []float64, variance float64, err error) {
	if len(r) < 2 {
		return nil, 0, fmt.Errorf("linalg: LevinsonDurbin needs >= 2 autocovariances, have %d: %w", len(r), ErrDimension)
	}
	p := len(r) - 1
	if r[0] <= 0 {
		return nil, 0, fmt.Errorf("linalg: LevinsonDurbin zero-lag autocovariance %g must be positive: %w", r[0], ErrSingular)
	}

	phi = make([]float64, p)
	prev := make([]float64, p)
	variance = r[0]

	for k := 1; k <= p; k++ {
		// Reflection coefficient.
		acc := r[k]
		for j := 1; j < k; j++ {
			acc -= prev[j-1] * r[k-j]
		}
		if variance == 0 {
			return nil, 0, ErrSingular
		}
		kappa := acc / variance
		// Update coefficients.
		phi[k-1] = kappa
		for j := 1; j < k; j++ {
			phi[j-1] = prev[j-1] - kappa*prev[k-j-1]
		}
		variance *= 1 - kappa*kappa
		if variance < 0 {
			// Numerically the process is not stationary enough; clamp.
			variance = 0
		}
		copy(prev, phi[:k])
	}
	if !AllFinite(phi) {
		return nil, 0, ErrSingular
	}
	return phi, variance, nil
}

// ToeplitzFromAutocov builds the p×p symmetric Toeplitz matrix whose (i,j)
// entry is r[|i-j|]. It is used by tests to cross-check LevinsonDurbin
// against the general Solve path.
func ToeplitzFromAutocov(r []float64, p int) (*Matrix, error) {
	if p < 1 || len(r) < p {
		return nil, fmt.Errorf("linalg: ToeplitzFromAutocov needs %d autocovariances, have %d: %w", p, len(r), ErrDimension)
	}
	m := NewMatrix(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			m.Set(i, j, r[d])
		}
	}
	return m, nil
}
