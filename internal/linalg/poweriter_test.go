package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPSD builds a random positive semi-definite matrix BᵀB.
func randomPSD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	bt := b.T()
	a, _ := bt.Mul(b)
	return a
}

func TestTopEigenMatchesJacobi(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		k := 1 + rng.Intn(n)
		a := randomPSD(rng, n)

		full, err := SymEigen(a)
		if err != nil {
			return false
		}
		top, err := TopEigen(a, k)
		if err != nil {
			return false
		}
		if len(top.Values) != k {
			return false
		}
		for j := 0; j < k; j++ {
			want := full.Values[j]
			if math.Abs(top.Values[j]-want) > 1e-6*(1+math.Abs(want)) {
				// Power iteration can struggle to split near-equal
				// eigenvalues; accept if the value matches either
				// neighbor of a cluster.
				ok := false
				for _, w := range full.Values {
					if math.Abs(top.Values[j]-w) <= 1e-6*(1+math.Abs(w)) {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
			// Residual check: ||A v − λ v|| small.
			v := top.Vectors.Col(j)
			av, err := a.MulVec(v)
			if err != nil {
				return false
			}
			for i := range av {
				av[i] -= top.Values[j] * v[i]
			}
			if Norm2(av) > 1e-5*(1+math.Abs(top.Values[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTopEigenOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomPSD(rng, 8)
	ed, err := TopEigen(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		vi := ed.Vectors.Col(i)
		if math.Abs(Norm2(vi)-1) > 1e-8 {
			t.Errorf("column %d norm %g", i, Norm2(vi))
		}
		for j := i + 1; j < 3; j++ {
			if d := Dot(vi, ed.Vectors.Col(j)); math.Abs(d) > 1e-8 {
				t.Errorf("columns %d,%d not orthogonal: %g", i, j, d)
			}
		}
	}
	// Values descending.
	for i := 1; i < 3; i++ {
		if ed.Values[i] > ed.Values[i-1]+1e-12 {
			t.Errorf("values not descending: %v", ed.Values)
		}
	}
}

func TestTopEigenDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomPSD(rng, 6)
	e1, err := TopEigen(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := TopEigen(a.Clone(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if e1.Values[j] != e2.Values[j] {
			t.Fatal("values not deterministic")
		}
		for i := 0; i < 6; i++ {
			if e1.Vectors.At(i, j) != e2.Vectors.At(i, j) {
				t.Fatal("vectors not deterministic")
			}
		}
	}
}

func TestTopEigenErrors(t *testing.T) {
	if _, err := TopEigen(NewMatrix(2, 3), 1); !errors.Is(err, ErrDimension) {
		t.Error("rectangular accepted")
	}
	if _, err := TopEigen(Identity(3), 0); !errors.Is(err, ErrDimension) {
		t.Error("k=0 accepted")
	}
	asym := mustFromRows(t, [][]float64{{1, 2}, {5, 1}})
	if _, err := TopEigen(asym, 1); !errors.Is(err, ErrNotSymmetric) {
		t.Error("asymmetric accepted")
	}
}

func TestTopEigenKClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomPSD(rng, 3)
	ed, err := TopEigen(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ed.Values) != 3 {
		t.Errorf("values = %d, want clamped to 3", len(ed.Values))
	}
}

func TestTopEigenRankDeficient(t *testing.T) {
	// Rank-1 matrix: second eigenvalue is 0; iteration must still converge.
	v := []float64{1, 2, 3}
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, v[i]*v[j])
		}
	}
	ed, err := TopEigen(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ed.Values[0]-14) > 1e-8 { // ‖v‖² = 14
		t.Errorf("lead eigenvalue = %g, want 14", ed.Values[0])
	}
	if math.Abs(ed.Values[1]) > 1e-8 {
		t.Errorf("null eigenvalue = %g, want 0", ed.Values[1])
	}
}
