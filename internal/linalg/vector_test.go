package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{}, []float64{}, 0},
		{[]float64{1}, []float64{2}, 2},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{-1, 0, 1}, []float64{1, 100, 1}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Dot(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm2(3,4) = %g, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %g, want 0", got)
	}
	// Scaling should prevent overflow for huge components.
	big := math.MaxFloat64 / 4
	got := Norm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Norm2 overflowed for large inputs: %g", got)
	}
}

func TestDistanceAxioms(t *testing.T) {
	// Property: distance is symmetric, non-negative, zero iff identical,
	// and satisfies the triangle inequality.
	f := func(a, b, c [4]float64) bool {
		av, bv, cv := a[:], b[:], c[:]
		dab := Distance(av, bv)
		dba := Distance(bv, av)
		if dab != dba || dab < 0 {
			return false
		}
		if Distance(av, av) != 0 {
			return false
		}
		dac := Distance(av, cv)
		dcb := Distance(cv, bv)
		return dab <= dac+dcb+1e-9*(1+dab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSquaredDistanceMatchesDistance(t *testing.T) {
	f := func(a, b [5]float64) bool {
		d := Distance(a[:], b[:])
		sq := SquaredDistance(a[:], b[:])
		if math.IsInf(sq, 0) || math.IsInf(d, 0) {
			return true // overflow regime: ordering is all we care about
		}
		return almostEqual(d*d, sq, 1e-6*(1+sq))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAXPYAndScale(t *testing.T) {
	y := []float64{1, 2, 3}
	AXPY(2, []float64{1, 1, 1}, y)
	want := []float64{3, 4, 5}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AXPY result %v, want %v", y, want)
		}
	}
	Scale(0.5, y)
	want = []float64{1.5, 2, 2.5}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Scale result %v, want %v", y, want)
		}
	}
}

func TestAddSub(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	sum := Add(a, b)
	diff := Sub(b, a)
	if sum[0] != 4 || sum[1] != 7 {
		t.Errorf("Add = %v", sum)
	}
	if diff[0] != 2 || diff[1] != 3 {
		t.Errorf("Sub = %v", diff)
	}
	// Inputs untouched.
	if a[0] != 1 || b[0] != 3 {
		t.Error("Add/Sub mutated inputs")
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{2, 4, 6}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Mean = %g, want 4", got)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{0, -1, 1e300}) {
		t.Error("AllFinite rejected finite slice")
	}
	if AllFinite([]float64{0, math.NaN()}) {
		t.Error("AllFinite accepted NaN")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("AllFinite accepted +Inf")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2, 3}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares storage with input")
	}
}
