package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromRows(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return m
}

func TestFromRowsRagged(t *testing.T) {
	_, err := FromRows([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrDimension) {
		t.Fatalf("ragged FromRows error = %v, want ErrDimension", err)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty FromRows gave %dx%d", m.Rows(), m.Cols())
	}
}

func TestAtSetRowCol(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	row := m.Row(1)
	row[0] = 5 // Row is a view
	if m.At(1, 0) != 5 {
		t.Error("Row should be a mutable view")
	}
	col := m.Col(0)
	col[0] = 42 // Col is a copy
	if m.At(0, 0) == 42 {
		t.Error("Col should be a copy")
	}
}

func TestIdentityMul(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	i2 := Identity(2)
	prod, err := a.Mul(i2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if prod.At(r, c) != a.At(r, c) {
				t.Fatalf("A·I != A at (%d,%d)", r, c)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	b := mustFromRows(t, [][]float64{{7, 8}, {9, 10}, {11, 12}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for r := range want {
		for c := range want[r] {
			if got.At(r, c) != want[r][c] {
				t.Fatalf("Mul[%d][%d] = %g, want %g", r, c, got.At(r, c), want[r][c])
			}
		}
	}
}

func TestMulDimensionError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrDimension) {
		t.Fatalf("Mul shape error = %v, want ErrDimension", err)
	}
}

func TestMulVec(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	got, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatal("MulVec accepted wrong-length vector")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		tt := m.T().T()
		if tt.Rows() != rows || tt.Cols() != cols {
			return false
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubMatrix(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0, 0) != 5 || sum.At(1, 1) != 5 {
		t.Errorf("Add wrong: %v", sum)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if diff.At(r, c) != a.At(r, c) {
				t.Fatal("Add then Sub is not identity")
			}
		}
	}
}

func TestColumnMeans(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 10}, {3, 20}})
	means := m.ColumnMeans()
	if means[0] != 2 || means[1] != 15 {
		t.Fatalf("ColumnMeans = %v", means)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Perfectly correlated columns: covariance matrix is rank 1.
	m := mustFromRows(t, [][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov, err := m.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	// var(col0) = 1, var(col1) = 4, cov = 2.
	if !almostEqual(cov.At(0, 0), 1, 1e-12) ||
		!almostEqual(cov.At(1, 1), 4, 1e-12) ||
		!almostEqual(cov.At(0, 1), 2, 1e-12) ||
		!almostEqual(cov.At(1, 0), 2, 1e-12) {
		t.Fatalf("Covariance = %v", cov)
	}
}

func TestCovarianceSymmetricPSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(20), 1+rng.Intn(6)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.NormFloat64()*10)
			}
		}
		cov, err := m.Covariance()
		if err != nil {
			return false
		}
		if !cov.IsSymmetric(1e-9) {
			return false
		}
		// Positive semi-definite: xᵀCx >= 0 for random x.
		x := make([]float64, cols)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		cx, err := cov.MulVec(x)
		if err != nil {
			return false
		}
		return Dot(x, cx) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCovarianceTooFewRows(t *testing.T) {
	m := NewMatrix(1, 3)
	if _, err := m.Covariance(); !errors.Is(err, ErrDimension) {
		t.Fatalf("Covariance on 1 row err = %v, want ErrDimension", err)
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := mustFromRows(t, [][]float64{{1, 2}, {2, 3}})
	if !sym.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	asym := mustFromRows(t, [][]float64{{1, 2}, {2.1, 3}})
	if asym.IsSymmetric(1e-3) {
		t.Error("asymmetric matrix reported symmetric")
	}
	rect := NewMatrix(2, 3)
	if rect.IsSymmetric(math.Inf(1)) {
		t.Error("rectangular matrix cannot be symmetric")
	}
}

func TestCloneMatrixIndependence(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestStringSmoke(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}})
	if s := m.String(); s == "" {
		t.Error("String returned empty")
	}
}
