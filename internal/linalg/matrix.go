package linalg

import (
	"fmt"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
//
// The zero value is an empty 0x0 matrix. Use NewMatrix or FromRows to build
// one. Methods that return a Matrix allocate fresh storage; in-place variants
// are provided where the hot paths in this repository need them.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: NewMatrix negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied. An empty input yields a 0x0 matrix.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: FromRows ragged input: row %d has %d cols, want %d: %w",
				i, len(r), cols, ErrDimension)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a view (not a copy) of row i. Mutating the returned slice
// mutates the matrix.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("linalg: Mul %dx%d by %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrDimension)
	}
	out := NewMatrix(m.rows, b.cols)
	// ikj loop order: stream through b's rows for locality.
	for i := 0; i < m.rows; i++ {
		arow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("linalg: MulVec %dx%d by vector of %d: %w", m.rows, m.cols, len(x), ErrDimension)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.data[i*m.cols:(i+1)*m.cols], x)
	}
	return out, nil
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("linalg: Add %dx%d and %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrDimension)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("linalg: Sub %dx%d and %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrDimension)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out, nil
}

// ScaleInPlace multiplies every element by alpha.
func (m *Matrix) ScaleInPlace(alpha float64) {
	for i := range m.data {
		m.data[i] *= alpha
	}
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			d := m.data[i*m.cols+j] - m.data[j*m.cols+i]
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// ColumnMeans returns the mean of each column. For a 0-row matrix it returns
// a zero vector of length Cols.
func (m *Matrix) ColumnMeans() []float64 {
	means := make([]float64, m.cols)
	if m.rows == 0 {
		return means
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(m.rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// Covariance returns the sample covariance matrix (cols×cols) of the rows of
// m, using the unbiased 1/(n-1) normalization. It requires at least two rows.
func (m *Matrix) Covariance() (*Matrix, error) {
	if m.rows < 2 {
		return nil, fmt.Errorf("linalg: Covariance needs >= 2 rows, have %d: %w", m.rows, ErrDimension)
	}
	means := m.ColumnMeans()
	cov := NewMatrix(m.cols, m.cols)
	for r := 0; r < m.rows; r++ {
		row := m.data[r*m.cols : (r+1)*m.cols]
		for i := 0; i < m.cols; i++ {
			di := row[i] - means[i]
			if di == 0 {
				continue
			}
			crow := cov.data[i*m.cols:]
			for j := i; j < m.cols; j++ {
				crow[j] += di * (row[j] - means[j])
			}
		}
	}
	inv := 1 / float64(m.rows-1)
	for i := 0; i < m.cols; i++ {
		for j := i; j < m.cols; j++ {
			v := cov.data[i*m.cols+j] * inv
			cov.data[i*m.cols+j] = v
			cov.data[j*m.cols+i] = v
		}
	}
	return cov, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.data[i*m.cols+j])
		}
	}
	b.WriteByte(']')
	return b.String()
}
