package linalg

import (
	"fmt"
	"math"
)

// TopEigen computes the k largest eigenvalue/eigenvector pairs of the
// symmetric positive semi-definite matrix a by orthogonal (subspace) power
// iteration with deflation-free Rayleigh–Ritz extraction.
//
// The paper's §7.3 notes that "there also exist computationally less
// expensive methods for finding only a few eigenvectors and eigenvalues of a
// large matrix" (Sirovich & Everson): for PCA keeping n = 2 components of a
// d×d covariance, subspace iteration costs O(k·d²) per sweep versus the
// Jacobi solver's O(d³)-ish full decomposition. BenchmarkPCABackend compares
// them.
//
// Eigenvalues are returned descending; eigenvectors are the corresponding
// orthonormal columns. The input must be symmetric PSD within tolerance
// (covariance matrices are); indefinite inputs return ErrNotSymmetric or
// fail to converge.
func TopEigen(a *Matrix, k int) (*EigenDecomposition, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("linalg: TopEigen on %dx%d matrix: %w", a.Rows(), a.Cols(), ErrDimension)
	}
	if k < 1 {
		return nil, fmt.Errorf("linalg: TopEigen k=%d < 1: %w", k, ErrDimension)
	}
	if !a.IsSymmetric(1e-8 * (1 + maxAbs(a))) {
		return nil, ErrNotSymmetric
	}
	if k > n {
		k = n
	}
	if n == 0 {
		return &EigenDecomposition{Values: nil, Vectors: NewMatrix(0, 0)}, nil
	}

	// Iterate a block of k+2 guard vectors so clusters around the k-th
	// eigenvalue still converge; only the top k Ritz pairs are returned.
	block := k + 2
	if block > n {
		block = n
	}

	// Deterministic starting block: shifted unit-ish vectors, then
	// orthonormalized. A fixed start keeps results reproducible.
	q := NewMatrix(n, block)
	for j := 0; j < block; j++ {
		for i := 0; i < n; i++ {
			// A spread of deterministic values with no shared zeros.
			q.Set(i, j, math.Sin(float64(1+i*k+j))+0.01*float64(i%7))
		}
	}
	if err := gramSchmidt(q); err != nil {
		return nil, err
	}

	const (
		maxSweeps = 500
		tol       = 1e-12
	)
	prev := make([]float64, block)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		aq, err := a.Mul(q)
		if err != nil {
			return nil, err
		}
		if err := gramSchmidt(aq); err != nil {
			return nil, err
		}
		q = aq

		// Rayleigh quotient estimates for convergence.
		vals, err := rayleigh(a, q)
		if err != nil {
			return nil, err
		}
		var diff, scale float64
		for j := 0; j < block; j++ {
			diff += math.Abs(vals[j] - prev[j])
			scale += math.Abs(vals[j])
		}
		copy(prev, vals)
		if diff <= tol*(1+scale) {
			break
		}
		// Clustered spectra can keep the Rayleigh estimates oscillating in
		// the last digits indefinitely; after the sweep budget the iterated
		// subspace is still an excellent Ritz basis, so proceed rather
		// than fail — the Rayleigh–Ritz step below extracts the best
		// eigenpairs the subspace contains.
	}

	// Rayleigh–Ritz: project a onto span(q) and solve the small block×block
	// problem exactly with Jacobi, which resolves clustered eigenvalues.
	small, err := project(a, q)
	if err != nil {
		return nil, err
	}
	ed, err := SymEigen(small)
	if err != nil {
		return nil, err
	}
	// Rotate the basis (vectors = q · smallVectors) and keep the top k.
	rotated, err := q.Mul(ed.Vectors)
	if err != nil {
		return nil, err
	}
	vectors := NewMatrix(n, k)
	for c := 0; c < k; c++ {
		for r := 0; r < n; r++ {
			vectors.Set(r, c, rotated.At(r, c))
		}
	}
	values := make([]float64, k)
	copy(values, ed.Values[:k])
	// Deterministic sign convention matching SymEigen.
	for c := 0; c < k; c++ {
		maxAbsVal, sign := 0.0, 1.0
		for r := 0; r < n; r++ {
			x := vectors.At(r, c)
			if math.Abs(x) > maxAbsVal {
				maxAbsVal = math.Abs(x)
				if x < 0 {
					sign = -1
				} else {
					sign = 1
				}
			}
		}
		if sign < 0 {
			for r := 0; r < n; r++ {
				vectors.Set(r, c, -vectors.At(r, c))
			}
		}
	}
	return &EigenDecomposition{Values: values, Vectors: vectors}, nil
}

// gramSchmidt orthonormalizes the columns of q in place (modified
// Gram–Schmidt). Rank deficiency (a zero column after projection) is
// replaced with a fresh deterministic direction re-orthonormalized against
// the previous columns.
func gramSchmidt(q *Matrix) error {
	n, k := q.Rows(), q.Cols()
	for j := 0; j < k; j++ {
		col := q.Col(j)
		for prev := 0; prev < j; prev++ {
			p := q.Col(prev)
			proj := Dot(col, p)
			for i := 0; i < n; i++ {
				col[i] -= proj * p[i]
			}
		}
		norm := Norm2(col)
		if norm < 1e-12 {
			// Rank repair: try each canonical basis vector until one has a
			// usable component orthogonal to the previous columns. With
			// j < n columns fixed, at least one e_m must work.
			repaired := false
			for m := 0; m < n && !repaired; m++ {
				for i := 0; i < n; i++ {
					col[i] = 0
				}
				col[m] = 1
				for prev := 0; prev < j; prev++ {
					p := q.Col(prev)
					proj := Dot(col, p)
					for i := 0; i < n; i++ {
						col[i] -= proj * p[i]
					}
				}
				if norm = Norm2(col); norm >= 1e-7 {
					repaired = true
				}
			}
			if !repaired {
				return ErrSingular
			}
		}
		inv := 1 / norm
		for i := 0; i < n; i++ {
			q.Set(i, j, col[i]*inv)
		}
	}
	return nil
}

// rayleigh returns the per-column Rayleigh quotients qⱼᵀ A qⱼ.
func rayleigh(a, q *Matrix) ([]float64, error) {
	k := q.Cols()
	out := make([]float64, k)
	for j := 0; j < k; j++ {
		col := q.Col(j)
		av, err := a.MulVec(col)
		if err != nil {
			return nil, err
		}
		out[j] = Dot(col, av)
	}
	return out, nil
}

// project computes qᵀ A q (k×k).
func project(a, q *Matrix) (*Matrix, error) {
	aq, err := a.Mul(q)
	if err != nil {
		return nil, err
	}
	qt := q.T()
	return qt.Mul(aq)
}
