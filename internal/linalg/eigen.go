package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNotSymmetric is returned by SymEigen when the input matrix is not
// symmetric within the solver's tolerance.
var ErrNotSymmetric = errors.New("linalg: matrix is not symmetric")

// ErrNoConvergence is returned when an iterative solver exceeds its sweep
// budget without meeting the off-diagonal tolerance.
var ErrNoConvergence = errors.New("linalg: eigensolver failed to converge")

// EigenDecomposition holds the result of a symmetric eigendecomposition.
// Values are sorted in descending order and Vectors' column i is the unit
// eigenvector for Values[i].
type EigenDecomposition struct {
	Values  []float64
	Vectors *Matrix // n×n, eigenvectors as columns
}

const (
	jacobiMaxSweeps = 100
	jacobiTol       = 1e-12
)

// SymEigen computes all eigenvalues and eigenvectors of the symmetric matrix
// a using the cyclic Jacobi rotation method. The input is not modified.
//
// Jacobi is quadratic-cost per sweep but unconditionally stable and exact for
// the small covariance matrices (window-size × window-size, typically 5–32)
// that PCA produces in this system, which is why it is chosen over a
// Householder/QL pipeline.
func SymEigen(a *Matrix) (*EigenDecomposition, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("linalg: SymEigen on %dx%d matrix: %w", a.Rows(), a.Cols(), ErrDimension)
	}
	if !a.IsSymmetric(1e-8 * (1 + maxAbs(a))) {
		return nil, ErrNotSymmetric
	}
	if n == 0 {
		return &EigenDecomposition{Values: nil, Vectors: NewMatrix(0, 0)}, nil
	}

	// Work on copies: s is rotated toward diagonal, v accumulates rotations.
	s := a.Clone()
	v := Identity(n)

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		off := offDiagNorm(s)
		if off <= jacobiTol*(1+frobeniusNorm(s)) {
			return assembleEigen(s, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := s.At(p, q)
				if math.Abs(apq) <= jacobiTol*math.Sqrt(math.Abs(s.At(p, p)*s.At(q, q))+jacobiTol) {
					continue
				}
				rotate(s, v, p, q)
			}
		}
	}
	// One last check: tiny residual off-diagonals are acceptable.
	if offDiagNorm(s) <= 1e-8*(1+frobeniusNorm(s)) {
		return assembleEigen(s, v), nil
	}
	return nil, ErrNoConvergence
}

// rotate applies a single Jacobi rotation zeroing s[p][q], updating the
// eigenvector accumulator v.
func rotate(s, v *Matrix, p, q int) {
	n := s.Rows()
	app := s.At(p, p)
	aqq := s.At(q, q)
	apq := s.At(p, q)

	// Compute the rotation (c, s) following Golub & Van Loan 8.4.
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	sn := t * c

	for k := 0; k < n; k++ {
		skp := s.At(k, p)
		skq := s.At(k, q)
		s.Set(k, p, c*skp-sn*skq)
		s.Set(k, q, sn*skp+c*skq)
	}
	for k := 0; k < n; k++ {
		spk := s.At(p, k)
		sqk := s.At(q, k)
		s.Set(p, k, c*spk-sn*sqk)
		s.Set(q, k, sn*spk+c*sqk)
	}
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-sn*vkq)
		v.Set(k, q, sn*vkp+c*vkq)
	}
}

// assembleEigen extracts the diagonal of s, sorts eigenpairs descending by
// eigenvalue, and fixes each eigenvector's sign so the largest-magnitude
// component is positive (deterministic output across runs).
func assembleEigen(s, v *Matrix) *EigenDecomposition {
	n := s.Rows()
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{val: s.At(i, i), idx: i}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	values := make([]float64, n)
	vectors := NewMatrix(n, n)
	for col, p := range pairs {
		values[col] = p.val
		// Sign convention: flip so the largest-|.| component is positive.
		maxAbsVal, sign := 0.0, 1.0
		for r := 0; r < n; r++ {
			x := v.At(r, p.idx)
			if math.Abs(x) > maxAbsVal {
				maxAbsVal = math.Abs(x)
				if x < 0 {
					sign = -1
				} else {
					sign = 1
				}
			}
		}
		for r := 0; r < n; r++ {
			vectors.Set(r, col, sign*v.At(r, p.idx))
		}
	}
	return &EigenDecomposition{Values: values, Vectors: vectors}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	n := m.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := m.At(i, j)
			s += v * v
		}
	}
	return math.Sqrt(s)
}

func frobeniusNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.Row(i) {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

func maxAbs(m *Matrix) float64 {
	var mx float64
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
	}
	return mx
}
