package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnown(t *testing.T) {
	a := mustFromRows(t, [][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	a := mustFromRows(t, [][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("Solve = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 3), []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Fatal("Solve accepted non-square matrix")
	}
	if _, err := Solve(Identity(2), []float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatal("Solve accepted wrong-length rhs")
	}
}

func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance → well-conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax, err := a.MulVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-8*(1+math.Abs(b[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveDoesNotMutate(t *testing.T) {
	a := mustFromRows(t, [][]float64{{0, 1}, {1, 0}})
	b := []float64{2, 3}
	orig := a.Clone()
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != orig.At(0, 0) || a.At(0, 1) != orig.At(0, 1) {
		t.Error("Solve mutated matrix input")
	}
	if b[0] != 2 || b[1] != 3 {
		t.Error("Solve mutated rhs input")
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := mustFromRows(t, [][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L = [[2,0],[1,√2]]
	if !almostEqual(l.At(0, 0), 2, 1e-12) ||
		!almostEqual(l.At(1, 0), 1, 1e-12) ||
		!almostEqual(l.At(1, 1), math.Sqrt2, 1e-12) ||
		l.At(0, 1) != 0 {
		t.Fatalf("Cholesky = %v", l)
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		// Build SPD matrix as BᵀB + εI.
		b := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		bt := b.T()
		a, err := bt.Mul(b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+0.5)
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		lt := l.T()
		recon, err := l.Mul(lt)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEqual(recon.At(i, j), a.At(i, j), 1e-8*(1+math.Abs(a.At(i, j)))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestLevinsonDurbinKnownAR1(t *testing.T) {
	// AR(1) with phi = 0.7 and unit innovation variance has autocovariance
	// r[k] = sigma² phi^k / (1 - phi²).
	phi := 0.7
	r0 := 1 / (1 - phi*phi)
	r := []float64{r0, phi * r0}
	coef, v, err := LevinsonDurbin(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(coef) != 1 || !almostEqual(coef[0], phi, 1e-10) {
		t.Fatalf("phi = %v, want [0.7]", coef)
	}
	if !almostEqual(v, 1, 1e-10) {
		t.Fatalf("variance = %g, want 1", v)
	}
}

func TestLevinsonDurbinMatchesDirectSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(8)
		// Build a valid autocovariance sequence from a random spectral mass:
		// r[k] = Σ w_i cos(k θ_i) with w_i > 0 is positive definite.
		nComp := 1 + rng.Intn(4)
		ws := make([]float64, nComp)
		thetas := make([]float64, nComp)
		for i := range ws {
			ws[i] = 0.1 + rng.Float64()
			thetas[i] = rng.Float64() * math.Pi
		}
		r := make([]float64, p+1)
		for k := 0; k <= p; k++ {
			for i := range ws {
				r[k] += ws[i] * math.Cos(float64(k)*thetas[i])
			}
		}
		r[0] += 0.5 // strengthen the diagonal

		coef, _, err := LevinsonDurbin(r)
		if err != nil {
			return false
		}
		toep, err := ToeplitzFromAutocov(r, p)
		if err != nil {
			return false
		}
		direct, err := Solve(toep, r[1:p+1])
		if err != nil {
			return false
		}
		for i := range coef {
			if !almostEqual(coef[i], direct[i], 1e-6*(1+math.Abs(direct[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLevinsonDurbinErrors(t *testing.T) {
	if _, _, err := LevinsonDurbin([]float64{1}); !errors.Is(err, ErrDimension) {
		t.Error("accepted too-short autocovariance")
	}
	if _, _, err := LevinsonDurbin([]float64{0, 0.5}); !errors.Is(err, ErrSingular) {
		t.Error("accepted non-positive zero-lag autocovariance")
	}
}

func TestToeplitzFromAutocov(t *testing.T) {
	m, err := ToeplitzFromAutocov([]float64{3, 2, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{3, 2, 1}, {2, 3, 2}, {1, 2, 3}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("Toeplitz[%d][%d] = %g, want %g", i, j, m.At(i, j), want[i][j])
			}
		}
	}
	if _, err := ToeplitzFromAutocov([]float64{1}, 3); !errors.Is(err, ErrDimension) {
		t.Error("Toeplitz accepted short autocovariance")
	}
}
