package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkSymEigen(b *testing.B) {
	for _, n := range []int{5, 16, 32} {
		rng := rand.New(rand.NewSource(1))
		a := randomPSD(rng, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SymEigen(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTopEigen2(b *testing.B) {
	for _, n := range []int{5, 16, 32} {
		rng := rand.New(rand.NewSource(1))
		a := randomPSD(rng, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := TopEigen(a, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLevinsonDurbin(b *testing.B) {
	for _, p := range []int{5, 16, 64} {
		r := make([]float64, p+1)
		for k := range r {
			r[k] = 1.0 / float64(1+k)
		}
		r[0] = 2
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := LevinsonDurbin(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolveVsLevinson(b *testing.B) {
	// Quantifies the O(p²) vs O(p³) gap for Yule–Walker systems.
	const p = 32
	r := make([]float64, p+1)
	for k := range r {
		r[k] = 1.0 / float64(1+k)
	}
	r[0] = 2
	toep, err := ToeplitzFromAutocov(r, p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gauss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(toep, r[1:p+1]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("levinson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := LevinsonDurbin(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}
