package tournament

import (
	"bytes"
	"testing"
)

// FuzzTournamentState fuzzes the state codec: arbitrary bytes must either
// fail to decode, or decode into a State that SetState cleanly accepts or
// rejects — never a panic, and never a selector left holding counters or
// codes outside their invariants. Valid states must round-trip
// bit-identically.
func FuzzTournamentState(f *testing.F) {
	// Seed with real encodings: a cold selector and a stepped one.
	cold, err := New(Config{Experts: 3})
	if err != nil {
		f.Fatal(err)
	}
	if b, err := cold.State().Encode(); err == nil {
		f.Add(b)
	}
	warm, err := New(Config{Experts: 3})
	if err != nil {
		f.Fatal(err)
	}
	v := 0.0
	for i := 0; i < 64; i++ {
		v += float64(i%5) - 2
		warm.Observe([]float64{v + 1, v - 1, v}, v)
	}
	if b, err := warm.State().Encode(); err == nil {
		f.Add(b)
		// A few structured corruptions of a valid payload.
		for _, cut := range []int{1, len(b) / 2, len(b) - 1} {
			f.Add(b[:cut])
		}
		flip := append([]byte(nil), b...)
		flip[len(flip)/3] ^= 0x40
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("not a gob payload"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var st State
		if err := st.Decode(data); err != nil {
			return // corrupt payloads must simply be rejected
		}
		target, err := New(Config{Experts: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := target.SetState(st); err != nil {
			return // structurally invalid: rejected without panic
		}
		// Accepted states round-trip bit-identically.
		b1, err := target.State().Encode()
		if err != nil {
			t.Fatalf("re-encode accepted state: %v", err)
		}
		second, err := New(Config{Experts: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := second.SetState(target.State()); err != nil {
			t.Fatalf("re-restore accepted state: %v", err)
		}
		b2, err := second.State().Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("accepted state does not round-trip bit-identically")
		}
		// The restored selector must be usable.
		_ = target.Select()
		target.Observe([]float64{1, 2, 3}, 2)
	})
}
