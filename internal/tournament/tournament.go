// Package tournament implements a branch-predictor-style meta-selector over
// a pool of prediction experts: every expert carries a saturating confidence
// counter updated on each observation from its instantaneous error, and a
// context hash over a recent regime signature indexes fixed-size per-context
// choice tables with a global fallback table. Selection is O(1) per step,
// allocation-free, and never retrains — the branch-prediction answer to the
// same choose-an-expert problem the paper's k-NN classifier solves with
// periodic retraining.
//
// The design borrows the three load-bearing ideas of hardware tournament
// predictors: power-of-two table sizes indexed by a masked hash (never a
// modulo on the hot path), saturating counter arithmetic so confidence
// adapts without overflow, and updating every expert's counter on every
// observation regardless of which expert was selected.
package tournament

import (
	"errors"
	"fmt"
	"math"

	"github.com/acis-lab/larpredictor/internal/obs"
)

// ErrBadConfig is returned by New for invalid configuration.
var ErrBadConfig = errors.New("tournament: invalid configuration")

// Config parameterizes a Selector. The zero value of every field but
// Experts selects the default.
type Config struct {
	// Experts is the number of pool experts the tournament arbitrates
	// between. Required; must match the prediction slices fed to Observe.
	Experts int
	// CounterBits is the saturating confidence counter width in bits
	// (default 3, so counters run 0..7 around a midpoint of 4).
	CounterBits int
	// ContextBits is log2 of the per-context choice table count (default 6,
	// so 64 context slots). The context hash is masked to this many bits.
	ContextBits int
	// SignatureLen is the number of recent observation deltas folded into
	// the regime signature (default 4).
	SignatureLen int
	// Warmup is the number of observations a context must accumulate before
	// its choice table overrides the global fallback table (default 8).
	Warmup int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.CounterBits == 0 {
		c.CounterBits = 3
	}
	if c.ContextBits == 0 {
		c.ContextBits = 6
	}
	if c.SignatureLen == 0 {
		c.SignatureLen = 4
	}
	if c.Warmup == 0 {
		c.Warmup = 8
	}
	return c
}

func (c Config) validate() error {
	if c.Experts < 1 {
		return fmt.Errorf("tournament: %d experts: %w", c.Experts, ErrBadConfig)
	}
	if c.CounterBits < 1 || c.CounterBits > 8 {
		return fmt.Errorf("tournament: counter width %d bits outside 1..8: %w", c.CounterBits, ErrBadConfig)
	}
	if c.ContextBits < 1 || c.ContextBits > 16 {
		return fmt.Errorf("tournament: context bits %d outside 1..16: %w", c.ContextBits, ErrBadConfig)
	}
	if c.SignatureLen < 1 || c.SignatureLen > 64 {
		return fmt.Errorf("tournament: signature length %d outside 1..64: %w", c.SignatureLen, ErrBadConfig)
	}
	if c.Warmup < 1 {
		return fmt.Errorf("tournament: warmup %d < 1: %w", c.Warmup, ErrBadConfig)
	}
	return nil
}

// Delta codes folded into the regime signature: the sign of each recent
// observation delta crossed with its magnitude relative to a running mean of
// |delta| (small = below, large = at or above).
const (
	codeZero uint8 = iota
	codeUpSmall
	codeUpLarge
	codeDownSmall
	codeDownLarge
	numCodes
)

// emaDecay is the per-observation decay of the |delta| running mean that
// splits small from large moves. ~1/32 ≈ a 22-observation half-life: slow
// enough to describe the prevailing regime, fast enough to re-bucket after
// a shift.
const emaDecay = 1.0 / 32

// Selector is the tournament meta-selector. It is stateful and not safe for
// concurrent use. Construct with New.
type Selector struct {
	cfg Config
	max uint8 // counter ceiling (2^CounterBits - 1)
	mid uint8 // counter midpoint, the cold-start confidence

	// global is the fallback choice table (one counter per expert); tables
	// holds numCtx per-context tables laid out contiguously
	// (tables[ctx*Experts+i] is expert i's counter in context ctx); seen
	// counts observations folded per context, gating table warm-up.
	global []uint8
	tables []uint8
	seen   []uint32

	// sig is the ring of recent delta codes; sigNext the write position.
	sig     []uint8
	sigNext int
	// emaAbs is the running mean of |delta| (magnitude bucket boundary);
	// prev/hasPrev track the previous finite observation.
	emaAbs  float64
	prev    float64
	hasPrev bool
	// tag is an external context byte mixed into the hash (the core layer
	// feeds the current health rung).
	tag uint8

	observations uint64

	// selections[i] counts selections of expert i; confidence exports the
	// last selection's counter confidence. Both nil when uninstrumented.
	selections []*obs.Counter
	confidence *obs.Gauge
}

// New validates cfg (after applying defaults) and returns a cold selector:
// every counter at the midpoint, every context unseen, so the first
// selection deterministically picks expert 0.
func New(cfg Config) (*Selector, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	numCtx := 1 << cfg.ContextBits
	s := &Selector{
		cfg:    cfg,
		max:    uint8(1<<cfg.CounterBits - 1),
		mid:    uint8(1 << (cfg.CounterBits - 1)),
		global: make([]uint8, cfg.Experts),
		tables: make([]uint8, numCtx*cfg.Experts),
		seen:   make([]uint32, numCtx),
		sig:    make([]uint8, cfg.SignatureLen),
	}
	s.resetCounters()
	return s, nil
}

// Config returns the selector's defaulted configuration.
func (s *Selector) Config() Config { return s.cfg }

// resetCounters returns every counter to the midpoint.
func (s *Selector) resetCounters() {
	for i := range s.global {
		s.global[i] = s.mid
	}
	for i := range s.tables {
		s.tables[i] = s.mid
	}
}

// Instrument binds the selector's instruments on r: selection counts per
// expert (larpredictor_tournament_selections_total) and the confidence of
// the most recent selection (larpredictor_tournament_confidence). names must
// align with the expert pool. A nil registry leaves the selector
// uninstrumented at zero cost.
func (s *Selector) Instrument(r *obs.Registry, names []string) {
	if r == nil {
		return
	}
	vec := r.Counter("larpredictor_tournament_selections_total",
		"Tournament meta-selector decisions, by selected expert.", "expert")
	s.selections = make([]*obs.Counter, s.cfg.Experts)
	for i := 0; i < s.cfg.Experts; i++ {
		name := fmt.Sprintf("expert%d", i)
		if i < len(names) {
			name = names[i]
		}
		s.selections[i] = vec.WithLabels(name)
	}
	s.confidence = r.Gauge1("larpredictor_tournament_confidence",
		"Saturating-counter confidence of the latest tournament selection (0..1).")
}

// SetTag sets the external context byte mixed into the context hash. The
// core layer feeds its health rung, so the same delta pattern under a
// different ladder state lands in a different choice table.
func (s *Selector) SetTag(tag uint8) { s.tag = tag }

// ctxIndex hashes the regime signature (delta-code ring, oldest to newest,
// plus the external tag) into a choice table index. FNV-1a over a handful of
// bytes, masked to ContextBits — no modulo, no allocation.
func (s *Selector) ctxIndex() int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	n := len(s.sig)
	for i := 0; i < n; i++ {
		h ^= uint64(s.sig[(s.sigNext+i)%n])
		h *= prime64
	}
	h ^= uint64(s.tag)
	h *= prime64
	// Fold the high bits down so short signatures still spread across the
	// table, then mask.
	h ^= h >> 32
	return int(h) & (1<<s.cfg.ContextBits - 1)
}

// table returns the choice table the current context selects from: the
// per-context table once warm, the global fallback table before that.
func (s *Selector) table() []uint8 {
	ctx := s.ctxIndex()
	if s.seen[ctx] >= uint32(s.cfg.Warmup) {
		e := s.cfg.Experts
		return s.tables[ctx*e : ctx*e+e]
	}
	return s.global
}

// Select returns the pool index of the most confident expert in the current
// context (ties break to the lowest index, the deterministic rule used
// pool-wide). O(Experts) counter reads, no allocation.
func (s *Selector) Select() int {
	tbl := s.table()
	best := 0
	for i := 1; i < len(tbl); i++ {
		if tbl[i] > tbl[best] {
			best = i
		}
	}
	if s.selections != nil {
		s.selections[best].Inc()
		s.confidence.Set(s.normalize(tbl[best]))
	}
	return best
}

// Confidence returns the current selection's counter confidence in 0..1
// without recording a selection.
func (s *Selector) Confidence() float64 {
	tbl := s.table()
	best := 0
	for i := 1; i < len(tbl); i++ {
		if tbl[i] > tbl[best] {
			best = i
		}
	}
	return s.normalize(tbl[best])
}

// normalize maps a saturating counter onto 0..1 with the midpoint pinned at
// exactly 0.5 (the cold/no-evidence level) — for odd counter ranges a plain
// counter/max would report a cold selector as biased.
func (s *Selector) normalize(c uint8) float64 {
	if c >= s.mid {
		return 0.5 + 0.5*float64(c-s.mid)/float64(s.max-s.mid)
	}
	return 0.5 * float64(c) / float64(s.mid)
}

// Observations returns the number of observations folded so far.
func (s *Selector) Observations() uint64 { return s.observations }

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Observe folds one observation: every expert whose prediction ties the
// smallest absolute error gets a saturating increment in both the global
// table and the current context's table, every other expert a decrement
// (a non-finite prediction always decrements). The regime signature then
// absorbs the observation's delta, so the context Select consults next step
// includes this step — matching the context the following Observe will
// update. A non-finite actual is skipped entirely: there is no error signal
// to score against. preds must have Config.Experts entries; allocation-free.
func (s *Selector) Observe(preds []float64, actual float64) {
	if len(preds) != s.cfg.Experts || !isFinite(actual) {
		return
	}
	// Score against the context that was live when preds were issued —
	// before this observation's delta enters the signature.
	ctx := s.ctxIndex()
	bestErr := math.Inf(1)
	for _, p := range preds {
		if !isFinite(p) {
			continue
		}
		if e := math.Abs(p - actual); e < bestErr {
			bestErr = e
		}
	}
	e := s.cfg.Experts
	ctxTbl := s.tables[ctx*e : ctx*e+e]
	for i, p := range preds {
		if isFinite(p) && math.Abs(p-actual) <= bestErr {
			s.global[i] = satInc(s.global[i], s.max)
			ctxTbl[i] = satInc(ctxTbl[i], s.max)
		} else {
			s.global[i] = satDec(s.global[i])
			ctxTbl[i] = satDec(ctxTbl[i])
		}
	}
	s.seen[ctx]++
	s.observations++
	s.foldDelta(actual)
}

// foldDelta pushes the observation's delta code into the regime signature.
func (s *Selector) foldDelta(actual float64) {
	if !s.hasPrev {
		s.prev, s.hasPrev = actual, true
		return
	}
	delta := actual - s.prev
	s.prev = actual
	abs := math.Abs(delta)
	code := codeZero
	if delta != 0 {
		large := abs >= s.emaAbs && s.emaAbs > 0
		switch {
		case delta > 0 && large:
			code = codeUpLarge
		case delta > 0:
			code = codeUpSmall
		case large:
			code = codeDownLarge
		default:
			code = codeDownSmall
		}
	}
	s.emaAbs += emaDecay * (abs - s.emaAbs)
	s.sig[s.sigNext] = code
	s.sigNext = (s.sigNext + 1) % len(s.sig)
}

// satInc and satDec are saturating counter arithmetic.
func satInc(v, max uint8) uint8 {
	if v < max {
		return v + 1
	}
	return v
}

func satDec(v uint8) uint8 {
	if v > 0 {
		return v - 1
	}
	return v
}

// Reset returns the selector to its cold state: counters at the midpoint,
// contexts unseen, signature cleared.
func (s *Selector) Reset() {
	s.resetCounters()
	for i := range s.seen {
		s.seen[i] = 0
	}
	for i := range s.sig {
		s.sig[i] = 0
	}
	s.sigNext = 0
	s.emaAbs = 0
	s.prev, s.hasPrev = 0, false
	s.tag = 0
	s.observations = 0
}
