package tournament

import (
	"bytes"
	"reflect"
	"testing"
)

// steppedSelector builds a selector with non-trivial state.
func steppedSelector(t *testing.T) *Selector {
	t.Helper()
	s := mustNew(t, Config{Experts: 3})
	s.SetTag(2)
	v := 0.0
	for i := 0; i < 120; i++ {
		v += float64(i%7) - 3
		s.Observe([]float64{v + 0.2, v - 1, v + float64(i%3)}, v)
	}
	return s
}

func TestStateRoundTripBitIdentical(t *testing.T) {
	s := steppedSelector(t)
	st := s.State()
	b1, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}

	r := mustNew(t, Config{Experts: 3})
	if err := r.SetState(st); err != nil {
		t.Fatal(err)
	}
	b2, err := r.State().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("state round-trip is not bit-identical")
	}

	// The restored selector must behave identically, not just encode
	// identically: drive both forward and compare selections.
	v := 5.0
	for i := 0; i < 50; i++ {
		v += float64(i%5) - 2
		preds := []float64{v + 1, v - 0.3, v + float64(i%2)}
		if got, want := r.Select(), s.Select(); got != want {
			t.Fatalf("step %d: restored selects %d, original %d", i, got, want)
		}
		s.Observe(preds, v)
		r.Observe(preds, v)
	}
}

func TestSetStateRejectsMismatch(t *testing.T) {
	s := steppedSelector(t)
	st := s.State()

	cases := []struct {
		name   string
		mutate func(State) State
	}{
		{"experts", func(st State) State { st.Experts = 4; return st }},
		{"counter bits", func(st State) State { st.CounterBits = 2; return st }},
		{"context bits", func(st State) State { st.ContextBits = 5; return st }},
		{"signature length", func(st State) State { st.SignatureLen = 8; return st }},
		{"global length", func(st State) State { st.Global = st.Global[:1]; return st }},
		{"table length", func(st State) State { st.Tables = append(st.Tables, 0); return st }},
		{"counter overflow", func(st State) State { st.Global[0] = 200; return st }},
		{"bad delta code", func(st State) State { st.Sig[0] = 99; return st }},
		{"sig position", func(st State) State { st.SigNext = -1; return st }},
		{"ema", func(st State) State { st.EMAAbs = -1; return st }},
	}
	for _, c := range cases {
		target := mustNew(t, Config{Experts: 3})
		want := target.State()
		if err := target.SetState(c.mutate(s.State())); err == nil {
			t.Errorf("%s: corrupt state accepted", c.name)
		}
		if !statesEqual(target.State(), want) {
			t.Errorf("%s: rejected state mutated the selector", c.name)
		}
	}
	_ = st
}

func TestDriftStateRoundTrip(t *testing.T) {
	d := mustDetector(t, DriftConfig{})
	for i := 0; i < 100; i++ {
		d.Observe(1 + float64(i%9)*0.1)
	}
	st := d.State()
	r := mustDetector(t, DriftConfig{})
	if err := r.SetState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.State(), st) {
		t.Fatal("drift state round-trip diverged")
	}
	// Identical continuation.
	for i := 0; i < 200; i++ {
		e := 1 + float64(i%13)*0.3
		if got, want := r.Observe(e), d.Observe(e); got != want {
			t.Fatalf("step %d: restored detector fired=%v, original %v", i, got, want)
		}
	}
}

func TestDriftSetStateRejectsInvalid(t *testing.T) {
	d := mustDetector(t, DriftConfig{})
	for i := 0; i < 50; i++ {
		d.Observe(1)
	}
	for _, c := range []struct {
		name   string
		mutate func(DriftState) DriftState
	}{
		{"window", func(st DriftState) DriftState { st.Short = 4; return st }},
		{"ring length", func(st DriftState) DriftState { st.Ring = st.Ring[:2]; return st }},
		{"ring position", func(st DriftState) DriftState { st.Next = 99; return st }},
		{"negative entry", func(st DriftState) DriftState { st.Ring[0] = -1; return st }},
		{"negative cum", func(st DriftState) DriftState { st.Cum = -1; return st }},
		{"negative n", func(st DriftState) DriftState { st.N = -1; return st }},
	} {
		target := mustDetector(t, DriftConfig{})
		if err := target.SetState(c.mutate(d.State())); err == nil {
			t.Errorf("%s: invalid drift state accepted", c.name)
		}
	}
}
