package tournament

import (
	"fmt"
	"math"
)

// DriftConfig parameterizes a DriftDetector. The zero value of every field
// selects the default.
type DriftConfig struct {
	// Short is the length of the recent-error window whose mean forms the
	// numerator of the drift ratio (default 8).
	Short int
	// RefDecay in (0,1) is the per-observation EWMA decay of the long-run
	// reference error level (default 1/128 ≈ an 89-observation half-life).
	RefDecay float64
	// Allowance is the ratio slack absorbed per observation before the
	// CUSUM accumulates: recent error up to (1+Allowance)× the reference
	// contributes nothing (default 0.25 — about 4σ of an 8-wide window's
	// sampling noise, so stationary regimes stay quiescent while slow ramps
	// whose ratio plateaus against the adapting reference still accumulate).
	Allowance float64
	// Threshold is the CUSUM level at which the detector fires (default 6).
	Threshold float64
	// MinSamples is the number of observations the reference must absorb
	// before the detector may fire (default 4×Short).
	MinSamples int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c DriftConfig) withDefaults() DriftConfig {
	if c.Short == 0 {
		c.Short = 8
	}
	if c.RefDecay == 0 {
		c.RefDecay = 1.0 / 128
	}
	if c.Allowance == 0 {
		c.Allowance = 0.25
	}
	if c.Threshold == 0 {
		c.Threshold = 6
	}
	if c.MinSamples == 0 {
		c.MinSamples = 4 * c.Short
	}
	return c
}

func (c DriftConfig) validate() error {
	if c.Short < 1 {
		return fmt.Errorf("tournament: drift window %d < 1: %w", c.Short, ErrBadConfig)
	}
	if c.RefDecay <= 0 || c.RefDecay >= 1 {
		return fmt.Errorf("tournament: drift reference decay %g outside (0,1): %w", c.RefDecay, ErrBadConfig)
	}
	if c.Allowance < 0 {
		return fmt.Errorf("tournament: drift allowance %g < 0: %w", c.Allowance, ErrBadConfig)
	}
	if c.Threshold <= 0 {
		return fmt.Errorf("tournament: drift threshold %g <= 0: %w", c.Threshold, ErrBadConfig)
	}
	if c.MinSamples < c.Short {
		return fmt.Errorf("tournament: drift min samples %d < window %d: %w", c.MinSamples, c.Short, ErrBadConfig)
	}
	return nil
}

// DriftDetector is a one-sided CUSUM on the ratio of a short windowed mean
// of a model's squared forecast error to a slow EWMA reference of the same
// error. It detects that the active model has gone stale — its recent error
// persistently exceeding its own long-run level — well before an absolute
// audit threshold would, because the test is relative and the window short.
// Stateful, not safe for concurrent use.
type DriftDetector struct {
	cfg DriftConfig

	ring   []float64
	next   int
	filled int
	sum    float64

	ref    float64
	refSum float64 // warm-up accumulator: ref is the plain mean until MinSamples
	n      int
	cum    float64
}

// NewDetector validates cfg (after applying defaults) and returns a cold
// detector.
func NewDetector(cfg DriftConfig) (*DriftDetector, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &DriftDetector{cfg: cfg, ring: make([]float64, cfg.Short)}, nil
}

// Config returns the detector's defaulted configuration.
func (d *DriftDetector) Config() DriftConfig { return d.cfg }

// Level returns the current CUSUM level (0 when quiescent) and the fraction
// of Threshold it represents.
func (d *DriftDetector) Level() (cum, fraction float64) {
	return d.cum, d.cum / d.cfg.Threshold
}

// Observe folds one squared forecast error and reports whether the CUSUM
// crossed the drift threshold on this observation. Non-finite or negative
// errors are skipped. The caller owns the response to a firing (demotion,
// retrain) and should Reset the detector once the model is refreshed;
// without a Reset the detector keeps reporting true while the error level
// stays elevated. Allocation-free.
func (d *DriftDetector) Observe(sqErr float64) bool {
	if !isFinite(sqErr) || sqErr < 0 {
		return false
	}
	d.sum += sqErr - d.ring[d.next]
	d.ring[d.next] = sqErr
	d.next = (d.next + 1) % len(d.ring)
	if d.filled < len(d.ring) {
		d.filled++
	}
	d.n++
	if d.n <= d.cfg.MinSamples || d.ref <= 0 {
		// Warm-up: the reference is the plain mean of everything seen, so
		// it has fully converged on the baseline when testing begins (a
		// cold EWMA would still be low, inflating the first ratios).
		d.refSum += sqErr
		d.ref = d.refSum / float64(d.n)
		return false
	}
	short := d.sum / float64(d.filled)
	ratio := short / math.Max(d.ref, math.SmallestNonzeroFloat64)
	d.cum += ratio - 1 - d.cfg.Allowance
	if d.cum < 0 {
		d.cum = 0
	}
	// The reference adapts after the test, so a shift is measured against
	// the pre-shift level for as long as the slow EWMA remembers it.
	d.ref += d.cfg.RefDecay * (sqErr - d.ref)
	return d.cum > d.cfg.Threshold
}

// Reset returns the detector to its cold state — call after the monitored
// model retrains, so the fresh model accumulates a fresh reference.
func (d *DriftDetector) Reset() {
	for i := range d.ring {
		d.ring[i] = 0
	}
	d.next, d.filled = 0, 0
	d.sum = 0
	d.ref = 0
	d.refSum = 0
	d.n = 0
	d.cum = 0
}
