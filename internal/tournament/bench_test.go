package tournament

import "testing"

// BenchmarkTournamentSelect pins the steady-state selection cost: one
// Select plus one Observe per observation over a warm selector, which the
// benchguard gate holds at zero allocations and within 10% time/op. This is
// the tier's whole pitch — adaptive selection at O(1) per step with no
// retraining — so a regression here defeats the feature.
func BenchmarkTournamentSelect(b *testing.B) {
	s, err := New(Config{Experts: 3})
	if err != nil {
		b.Fatal(err)
	}
	preds := make([]float64, 3)
	v := 0.0
	// Warm the tables so the benchmark measures steady state.
	for i := 0; i < 256; i++ {
		v += float64(i%5) - 2
		preds[0], preds[1], preds[2] = v+0.1, v-0.5, v+float64(i%3)
		s.Observe(preds, v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v += float64(i%5) - 2
		preds[0], preds[1], preds[2] = v+0.1, v-0.5, v+float64(i%3)
		_ = s.Select()
		s.Observe(preds, v)
	}
}
