package tournament

import (
	"math"
	"math/rand"
	"testing"
)

func mustDetector(t *testing.T, cfg DriftConfig) *DriftDetector {
	t.Helper()
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// qaFireIndex simulates the core QA audit on the same squared-error stream:
// the first index at which a full trailing window of `window` errors has a
// mean above the absolute threshold. Returns len(errs) if it never fires —
// the comparison baseline for "demotion fires before QA audit would".
func qaFireIndex(errs []float64, window int, threshold float64) int {
	var sum float64
	for i, e := range errs {
		sum += e
		if i >= window {
			sum -= errs[i-window]
		}
		if i >= window-1 && sum/float64(window) > threshold {
			return i
		}
	}
	return len(errs)
}

// driftFireIndex runs the detector over the stream and returns the first
// firing index (len(errs) if never).
func driftFireIndex(t *testing.T, errs []float64) int {
	t.Helper()
	d := mustDetector(t, DriftConfig{})
	for i, e := range errs {
		if d.Observe(e) {
			return i
		}
	}
	return len(errs)
}

// noisy returns a baseline squared error around level with ±30% deterministic
// noise.
func noisy(rng *rand.Rand, level float64) float64 {
	return level * (0.7 + 0.6*rng.Float64())
}

func TestDriftNeverFiresOnStationaryNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	errs := make([]float64, 5000)
	for i := range errs {
		errs[i] = noisy(rng, 1)
	}
	if idx := driftFireIndex(t, errs); idx != len(errs) {
		t.Fatalf("drift fired at %d on stationary noise", idx)
	}
}

func TestDriftFiresOnAbruptShiftBeforeQA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const shift = 300
	errs := make([]float64, 600)
	for i := range errs {
		level := 1.0
		if i >= shift {
			level = 3.0 // the model is suddenly 3× worse
		}
		errs[i] = noisy(rng, level)
	}
	// QA with a realistic absolute threshold at 2× the baseline error and
	// the audit window the core defaults would use.
	qa := qaFireIndex(errs, 24, 2.0)
	drift := driftFireIndex(t, errs)
	if drift >= len(errs) {
		t.Fatal("drift never fired on an abrupt 3× error shift")
	}
	if drift < shift {
		t.Fatalf("drift fired at %d, before the shift at %d", drift, shift)
	}
	if drift >= qa {
		t.Errorf("drift fired at %d, QA audit at %d: demotion must beat the audit", drift, qa)
	}
}

func TestDriftFiresOnSlowRampBeforeQA(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const rampStart = 300
	errs := make([]float64, 1200)
	for i := range errs {
		level := 1.0
		if i >= rampStart {
			level = 1.0 + 0.01*float64(i-rampStart) // +1% of baseline per step
		}
		errs[i] = noisy(rng, level)
	}
	qa := qaFireIndex(errs, 24, 2.0)
	drift := driftFireIndex(t, errs)
	if drift >= len(errs) {
		t.Fatal("drift never fired on a slow error ramp")
	}
	if drift < rampStart {
		t.Fatalf("drift fired at %d, before the ramp start at %d", drift, rampStart)
	}
	if drift >= qa {
		t.Errorf("drift fired at %d, QA audit at %d: demotion must beat the audit", drift, qa)
	}
}

func TestDriftFiresOnOscillationOnset(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const onset = 300
	errs := make([]float64, 900)
	for i := range errs {
		level := 1.0
		// After the onset the error oscillates between the baseline and 4×
		// it in 20-observation phases — a thrashing regime.
		if i >= onset && (i-onset)/20%2 == 0 {
			level = 4.0
		}
		errs[i] = noisy(rng, level)
	}
	// A QA window longer than one oscillation period averages the phases
	// out and never breaches a 2.5× threshold; the drift detector's short
	// window sees each high phase against the pre-onset reference.
	qa := qaFireIndex(errs, 48, 2.5)
	drift := driftFireIndex(t, errs)
	if drift >= len(errs) {
		t.Fatal("drift never fired on oscillation onset")
	}
	if drift < onset {
		t.Fatalf("drift fired at %d, before the onset at %d", drift, onset)
	}
	if drift >= qa {
		t.Errorf("drift fired at %d, QA audit at %d: demotion must beat the audit", drift, qa)
	}
}

func TestDriftSkipsNonScorableErrors(t *testing.T) {
	d := mustDetector(t, DriftConfig{})
	for i := 0; i < 100; i++ {
		if d.Observe(math.NaN()) || d.Observe(math.Inf(1)) || d.Observe(-1) {
			t.Fatal("fired on a non-scorable error")
		}
	}
	if d.n != 0 {
		t.Fatalf("non-scorable errors were folded: n=%d", d.n)
	}
}

func TestDriftResetQuiesces(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := mustDetector(t, DriftConfig{})
	for i := 0; i < 200; i++ {
		d.Observe(noisy(rng, 1))
	}
	fired := false
	for i := 0; i < 50 && !fired; i++ {
		fired = d.Observe(noisy(rng, 5))
	}
	if !fired {
		t.Fatal("drift never fired on a 5× shift")
	}
	d.Reset()
	if cum, _ := d.Level(); cum != 0 || d.n != 0 {
		t.Fatalf("Reset left cum=%g n=%d", cum, d.n)
	}
	// After a reset (post-retrain) the detector re-learns the new level and
	// stays quiet on it.
	for i := 0; i < 500; i++ {
		if d.Observe(noisy(rng, 5)) {
			t.Fatalf("fired at %d on the re-learned stationary level", i)
		}
	}
}

func TestDriftConfigValidation(t *testing.T) {
	for _, bad := range []DriftConfig{
		{Short: -1},
		{RefDecay: 1.5},
		{Allowance: -0.1},
		{Threshold: -2},
		{Short: 8, MinSamples: 2},
	} {
		if _, err := NewDetector(bad); err == nil {
			t.Errorf("NewDetector(%+v) accepted", bad)
		}
	}
}

func TestDriftObserveAllocationFree(t *testing.T) {
	d := mustDetector(t, DriftConfig{})
	v := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		v += 0.001
		d.Observe(1 + v)
	})
	if allocs != 0 {
		t.Errorf("DriftDetector.Observe allocates %.1f/op, want 0", allocs)
	}
}
