package tournament

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// State is the exported durable state of a Selector, carried inside the
// internal/core online-predictor snapshot so predictd state files, WAL
// replay, and cluster handoff round-trip the tournament bit-identically.
// All fields mirror the live selector; SetState validates every structural
// invariant so a corrupt-but-decodable payload can never panic selection.
type State struct {
	// Experts, CounterBits, ContextBits, SignatureLen echo the configuration
	// the state was captured under; SetState rejects mismatches.
	Experts, CounterBits, ContextBits, SignatureLen int

	Global  []uint8
	Tables  []uint8
	Seen    []uint32
	Sig     []uint8
	SigNext int
	EMAAbs  float64
	Prev    float64
	HasPrev bool
	Tag     uint8
	Obs     uint64
}

// State exports a deep copy of the selector's durable state.
func (s *Selector) State() State {
	return State{
		Experts:      s.cfg.Experts,
		CounterBits:  s.cfg.CounterBits,
		ContextBits:  s.cfg.ContextBits,
		SignatureLen: s.cfg.SignatureLen,
		Global:       append([]uint8(nil), s.global...),
		Tables:       append([]uint8(nil), s.tables...),
		Seen:         append([]uint32(nil), s.seen...),
		Sig:          append([]uint8(nil), s.sig...),
		SigNext:      s.sigNext,
		EMAAbs:       s.emaAbs,
		Prev:         s.prev,
		HasPrev:      s.hasPrev,
		Tag:          s.tag,
		Obs:          s.observations,
	}
}

// SetState restores state exported by State. The state must come from a
// selector with the same geometry (experts, counter width, context bits,
// signature length); anything structurally invalid is rejected without
// modifying the selector.
func (s *Selector) SetState(st State) error {
	if st.Experts != s.cfg.Experts || st.CounterBits != s.cfg.CounterBits ||
		st.ContextBits != s.cfg.ContextBits || st.SignatureLen != s.cfg.SignatureLen {
		return fmt.Errorf("tournament: state geometry %d/%d/%d/%d, selector %d/%d/%d/%d",
			st.Experts, st.CounterBits, st.ContextBits, st.SignatureLen,
			s.cfg.Experts, s.cfg.CounterBits, s.cfg.ContextBits, s.cfg.SignatureLen)
	}
	if len(st.Global) != len(s.global) || len(st.Tables) != len(s.tables) ||
		len(st.Seen) != len(s.seen) || len(st.Sig) != len(s.sig) {
		return fmt.Errorf("tournament: state tables %d/%d/%d/%d, want %d/%d/%d/%d",
			len(st.Global), len(st.Tables), len(st.Seen), len(st.Sig),
			len(s.global), len(s.tables), len(s.seen), len(s.sig))
	}
	for _, c := range st.Global {
		if c > s.max {
			return fmt.Errorf("tournament: state counter %d exceeds ceiling %d", c, s.max)
		}
	}
	for _, c := range st.Tables {
		if c > s.max {
			return fmt.Errorf("tournament: state counter %d exceeds ceiling %d", c, s.max)
		}
	}
	for _, c := range st.Sig {
		if c >= uint8(numCodes) {
			return fmt.Errorf("tournament: state delta code %d outside 0..%d", c, numCodes-1)
		}
	}
	if st.SigNext < 0 || st.SigNext >= len(s.sig) {
		return fmt.Errorf("tournament: state signature position %d outside ring of %d", st.SigNext, len(s.sig))
	}
	if !isFinite(st.EMAAbs) || st.EMAAbs < 0 {
		return fmt.Errorf("tournament: state |delta| mean %g invalid", st.EMAAbs)
	}
	if st.HasPrev && !isFinite(st.Prev) {
		return fmt.Errorf("tournament: state previous observation %g not finite", st.Prev)
	}
	copy(s.global, st.Global)
	copy(s.tables, st.Tables)
	copy(s.seen, st.Seen)
	copy(s.sig, st.Sig)
	s.sigNext = st.SigNext
	s.emaAbs = st.EMAAbs
	s.prev = st.Prev
	s.hasPrev = st.HasPrev
	s.tag = st.Tag
	s.observations = st.Obs
	return nil
}

// Encode serializes the state as a gob payload — the same encoding the
// internal/core snapshot codec embeds it with. Exposed (with Decode) so the
// state codec can be fuzzed in isolation. Deliberately NOT named
// MarshalBinary: gob special-cases that interface, which would recurse.
func (st State) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("tournament: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode parses a payload written by Encode. Structural validation happens
// in SetState; this only guarantees decode never panics.
func (st *State) Decode(data []byte) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(st); err != nil {
		return fmt.Errorf("tournament: decode state: %w", err)
	}
	return nil
}

// DriftState is the exported durable state of a DriftDetector.
type DriftState struct {
	// Short echoes the window the state was captured under.
	Short  int
	Ring   []float64
	Next   int
	Filled int
	Sum    float64
	Ref    float64
	RefSum float64
	N      int
	Cum    float64
}

// State exports a deep copy of the detector's durable state.
func (d *DriftDetector) State() DriftState {
	return DriftState{
		Short:  d.cfg.Short,
		Ring:   append([]float64(nil), d.ring...),
		Next:   d.next,
		Filled: d.filled,
		Sum:    d.sum,
		Ref:    d.ref,
		RefSum: d.refSum,
		N:      d.n,
		Cum:    d.cum,
	}
}

// SetState restores state exported by DriftDetector.State, rejecting
// anything structurally invalid without modifying the detector.
func (d *DriftDetector) SetState(st DriftState) error {
	if st.Short != d.cfg.Short || len(st.Ring) != len(d.ring) {
		return fmt.Errorf("tournament: drift state window %d/%d, detector %d", st.Short, len(st.Ring), d.cfg.Short)
	}
	if st.Next < 0 || st.Next >= len(d.ring) || st.Filled < 0 || st.Filled > len(d.ring) {
		return fmt.Errorf("tournament: drift state ring position %d/%d outside window %d", st.Next, st.Filled, len(d.ring))
	}
	for _, v := range st.Ring {
		if !isFinite(v) || v < 0 {
			return fmt.Errorf("tournament: drift state ring entry %g invalid", v)
		}
	}
	if !isFinite(st.Sum) || !isFinite(st.Ref) || !isFinite(st.Cum) || !isFinite(st.RefSum) ||
		st.Ref < 0 || st.RefSum < 0 || st.Cum < 0 || st.N < 0 {
		return fmt.Errorf("tournament: drift state accumulators (sum=%g ref=%g refsum=%g n=%d cum=%g) invalid",
			st.Sum, st.Ref, st.RefSum, st.N, st.Cum)
	}
	copy(d.ring, st.Ring)
	d.next = st.Next
	d.filled = st.Filled
	d.sum = st.Sum
	d.ref = st.Ref
	d.refSum = st.RefSum
	d.n = st.N
	d.cum = st.Cum
	return nil
}
