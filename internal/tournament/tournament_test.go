package tournament

import (
	"math"
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Selector {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewDefaultsAndValidation(t *testing.T) {
	s := mustNew(t, Config{Experts: 3})
	cfg := s.Config()
	if cfg.CounterBits != 3 || cfg.ContextBits != 6 || cfg.SignatureLen != 4 || cfg.Warmup != 8 {
		t.Errorf("defaults = %+v", cfg)
	}
	if s.max != 7 || s.mid != 4 {
		t.Errorf("3-bit counters: max=%d mid=%d, want 7/4", s.max, s.mid)
	}
	for _, bad := range []Config{
		{Experts: 0},
		{Experts: 3, CounterBits: 9},
		{Experts: 3, CounterBits: -1},
		{Experts: 3, ContextBits: 17},
		{Experts: 3, SignatureLen: 65},
		{Experts: 3, Warmup: -1},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%+v) accepted", bad)
		}
	}
}

func TestColdSelectorPicksLowestIndex(t *testing.T) {
	s := mustNew(t, Config{Experts: 4})
	if got := s.Select(); got != 0 {
		t.Errorf("cold selection = %d, want 0 (deterministic tie-break)", got)
	}
	if c := s.Confidence(); c != 0.5 {
		t.Errorf("cold confidence = %g, want 0.5 (midpoint)", c)
	}
}

func TestTracksConsistentlyBestExpert(t *testing.T) {
	s := mustNew(t, Config{Experts: 3})
	// Expert 2 is always closest to the actual.
	for i := 0; i < 20; i++ {
		v := float64(i)
		s.Observe([]float64{v + 5, v + 2, v + 0.1}, v)
	}
	if got := s.Select(); got != 2 {
		t.Errorf("selection = %d after 20 wins by expert 2, want 2", got)
	}
	if c := s.Confidence(); c != 1 {
		t.Errorf("confidence = %g after saturation, want 1", c)
	}
}

func TestTieBreaksToLowestIndex(t *testing.T) {
	s := mustNew(t, Config{Experts: 3})
	// Experts 1 and 2 tie exactly on every observation; both saturate.
	for i := 0; i < 20; i++ {
		v := float64(i)
		s.Observe([]float64{v + 5, v + 1, v + 1}, v)
	}
	if got := s.Select(); got != 1 {
		t.Errorf("selection = %d with experts 1 and 2 tied, want 1", got)
	}
}

// TestContextSwitchesSelection is the point of the context tables: two
// regimes with opposite best experts, distinguishable by their delta
// signature, must select differently once both contexts are warm.
func TestContextSwitchesSelection(t *testing.T) {
	s := mustNew(t, Config{Experts: 2, Warmup: 4})
	up := func(v float64) []float64 { return []float64{v + 0.1, v + 5} }   // expert 0 wins rising
	down := func(v float64) []float64 { return []float64{v + 5, v + 0.1} } // expert 1 wins falling
	v := 0.0
	// Interleave rising and falling regimes, long enough that each regime's
	// steady-state context passes warm-up.
	for round := 0; round < 6; round++ {
		for i := 0; i < 25; i++ {
			v += 1
			s.Observe(up(v), v)
		}
		for i := 0; i < 25; i++ {
			v -= 1
			s.Observe(down(v), v)
		}
	}
	// End of a falling run: the falling-regime context should be live.
	if got := s.Select(); got != 1 {
		t.Errorf("selection in falling regime = %d, want 1", got)
	}
	// Re-enter the rising regime and give the signature time to refill.
	for i := 0; i < 6; i++ {
		v += 1
		s.Observe(up(v), v)
	}
	if got := s.Select(); got != 0 {
		t.Errorf("selection back in rising regime = %d, want 0", got)
	}
}

func TestNonFiniteInputs(t *testing.T) {
	s := mustNew(t, Config{Experts: 2})
	before := s.State()
	// Non-finite actual: skipped entirely.
	s.Observe([]float64{1, 2}, math.NaN())
	s.Observe([]float64{1, 2}, math.Inf(1))
	// Wrong arity: skipped.
	s.Observe([]float64{1}, 1)
	if s.Observations() != 0 {
		t.Fatalf("non-scorable observations were folded: %d", s.Observations())
	}
	after := s.State()
	if len(after.Global) != len(before.Global) || after.Obs != before.Obs {
		t.Fatal("skipped observations mutated state")
	}
	// A non-finite prediction is a loss for that expert.
	for i := 0; i < 6; i++ {
		s.Observe([]float64{math.NaN(), 1}, 1)
	}
	if got := s.Select(); got != 1 {
		t.Errorf("selection = %d with expert 0 returning NaN, want 1", got)
	}
	if s.global[0] != 0 {
		t.Errorf("NaN expert's counter = %d, want decremented to 0", s.global[0])
	}
}

func TestSaturationBounds(t *testing.T) {
	s := mustNew(t, Config{Experts: 2, CounterBits: 2})
	for i := 0; i < 50; i++ {
		s.Observe([]float64{1, 100}, 1)
	}
	if s.global[0] != 3 || s.global[1] != 0 {
		t.Errorf("counters = %d/%d after 50 one-sided wins, want 3/0 (2-bit saturation)", s.global[0], s.global[1])
	}
}

func TestResetRestoresColdState(t *testing.T) {
	s := mustNew(t, Config{Experts: 2})
	for i := 0; i < 30; i++ {
		s.Observe([]float64{1, float64(i)}, 1)
	}
	s.SetTag(3)
	s.Reset()
	fresh := mustNew(t, Config{Experts: 2})
	if got, want := s.State(), fresh.State(); !statesEqual(got, want) {
		t.Errorf("Reset state != fresh state:\n%+v\n%+v", got, want)
	}
}

func statesEqual(a, b State) bool {
	ab, err1 := a.Encode()
	bb, err2 := b.Encode()
	if err1 != nil || err2 != nil {
		return false
	}
	return string(ab) == string(bb)
}

func TestSelectAndObserveAllocationFree(t *testing.T) {
	s := mustNew(t, Config{Experts: 3})
	preds := []float64{1, 2, 3}
	v := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		v += 0.5
		preds[0], preds[1], preds[2] = v+0.1, v+0.2, v-0.4
		_ = s.Select()
		s.Observe(preds, v)
	})
	if allocs != 0 {
		t.Errorf("Select+Observe allocates %.1f/op, want 0", allocs)
	}
}
